# Development entry points. Everything is plain `go` underneath; the
# targets just bundle the flags used by CI and the perf trajectory.

.PHONY: all build test race test-noasm bench bench-smoke fmt vet clean-data

all: build test

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# test-noasm builds and tests the portable configuration: the AVX2+FMA
# assembly and its dispatch compiled out, generic Go kernels everywhere —
# what every non-amd64 platform runs. CI runs this plus a GOARCH=arm64
# cross-compile on every push.
test-noasm:
	go build -tags noasm ./...
	go test -tags noasm ./...

# bench runs the nn-kernel, wire-codec, compute-core and serving benchmarks
# (including the concurrent serving benchmarks at -cpu 1,4, the large-pool
# top-K benchmarks with the inverted index on AND off plus batch-level
# candidate sharing, the saturated-pool eviction benchmarks, the
# feedback-loop trainer-idle/active benchmarks, the PR 6 durability
# benchmarks, the PR 7 guarded serving benchmark with its <= 5% overhead
# gate, the PR 8 index gate, the PR 9 gates — dispatched MatMul128 >= 2x
# the noasm build where AVX2+FMA was selected, binary batch codec allocs
# <= 20% of JSON — and the PR 10 telemetry gate: the fully instrumented
# estimator <= 3% over the bare one on the parallel serving point) with
# -benchmem and records results (plus the frozen pre-PR baseline and the
# per-stage latency breakdown of the HTTP estimate path) in BENCH_10.json.
# Kernel and wire rows record minima over repeated runs — see the noise
# policy note in BENCH_10.json.
bench:
	scripts/bench.sh

# bench-smoke compiles and runs every perf-critical benchmark exactly once
# (no timing assertions): a fast CI gate that kernel, workspace, cache,
# coalescer, pool-index, adaptation-loop or durability changes still
# execute. The parallel serving benchmarks run at -cpu 1,4 so both the
# single- and multi-GOMAXPROCS dispatch paths execute; the large-pool
# benchmarks exercise inverted-index selection, the index-off linear scan,
# the unbounded full scan and batch-level candidate sharing once per size
# point; the trainer benchmarks run one whole retrain/promotion cycle under
# estimate traffic, the pool benchmarks one heap eviction per size, the
# WAL benchmarks one append per sync policy plus a full 10k-record
# recovery replay, the feedback-path benchmarks one journaled record
# per variant, the guarded serving benchmark one pass through the
# admission gate + breaker + deadline stack, and the telemetry benchmark
# one pass through the fully instrumented estimator.
bench-smoke:
	go test ./internal/nn ./internal/crn ./internal/wire -run '^$$' -bench . -benchtime 1x -benchmem
	go test . -run '^$$' -bench 'EstimateCardinality(Parallel|SoloCoalesced|Guarded|Telemetry)' -cpu 1,4 -benchtime 1x -benchmem
	go test . -run '^$$' -bench 'EstimateCardinalityLargePool' -benchtime 1x -benchmem
	go test . -run '^$$' -bench 'EstimateCardinalityTrainer' -cpu 4 -benchtime 1x -benchmem
	go test ./internal/pool -run '^$$' -bench 'AddSaturated' -benchtime 1x -benchmem
	go test ./internal/durable -run '^$$' -bench 'WALAppend|RecoveryReplay' -benchtime 1x -benchmem
	go test . -run '^$$' -bench 'RecordFeedback' -benchtime 1x -benchmem

# clean-data removes local crnserve data directories (WAL segments and
# checkpoints) created by ad-hoc -data-dir runs at the conventional ./data
# path. Never touches anything outside the repo.
clean-data:
	rm -rf ./data

fmt:
	gofmt -l .

vet:
	go vet ./...
