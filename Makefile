# Development entry points. Everything is plain `go` underneath; the
# targets just bundle the flags used by CI and the perf trajectory.

.PHONY: all build test race bench bench-smoke fmt vet

all: build test

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# bench runs the nn-kernel, compute-core and serving benchmarks (including
# the concurrent serving benchmarks at -cpu 1,4, the large-pool top-K
# benchmarks, the saturated-pool eviction benchmarks and the feedback-loop
# trainer-idle/active benchmarks) with -benchmem and records results (plus
# the frozen pre-PR baseline) in BENCH_5.json.
bench:
	scripts/bench.sh

# bench-smoke compiles and runs every perf-critical benchmark exactly once
# (no timing assertions): a fast CI gate that kernel, workspace, cache,
# coalescer, pool-index or adaptation-loop changes still execute. The
# parallel serving benchmarks run at -cpu 1,4 so both the single- and
# multi-GOMAXPROCS dispatch paths execute; the large-pool benchmarks
# exercise signature selection and the solo bypass once per size point;
# the trainer benchmarks run one whole retrain/promotion cycle under
# estimate traffic, and the pool benchmarks one heap eviction per size.
bench-smoke:
	go test ./internal/nn ./internal/crn -run '^$$' -bench . -benchtime 1x -benchmem
	go test . -run '^$$' -bench 'EstimateCardinality(Parallel|SoloCoalesced)' -cpu 1,4 -benchtime 1x -benchmem
	go test . -run '^$$' -bench 'EstimateCardinalityLargePool' -benchtime 1x -benchmem
	go test . -run '^$$' -bench 'EstimateCardinalityTrainer' -cpu 4 -benchtime 1x -benchmem
	go test ./internal/pool -run '^$$' -bench 'AddSaturated' -benchtime 1x -benchmem

fmt:
	gofmt -l .

vet:
	go vet ./...
