package crn

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"crn/internal/card"
	"crn/internal/contain"
	icrn "crn/internal/crn"
	"crn/internal/durable"
	"crn/internal/guard"
	"crn/internal/online"
	"crn/internal/pool"
	"crn/internal/telemetry"
)

// This file is the facade over internal/online: the execution-feedback
// adaptation loop of the §5.2 deployment. A DBMS that serves estimates also
// executes queries, so (query, true cardinality) ground truth arrives
// continuously; an AdaptiveEstimator ingests that feedback, grows the pool
// with it, incrementally retrains the containment model in the background,
// and atomically hot-swaps improved model generations under live traffic.

// AdaptiveEstimator is a CardinalityEstimator with the online-adaptation
// loop attached. All CardinalityEstimator methods work unchanged (and run
// against the current model generation through one atomic load per pass);
// RecordFeedback feeds the loop, the background trainer promotes improved
// generations, and Close tears the loop down.
//
// Construction starts the background trainer immediately; a deployment
// that wants full manual control passes WithRetrainInterval(-1) and calls
// Retrain itself.
type AdaptiveEstimator struct {
	*CardinalityEstimator
	sys     *System
	col     *online.Collector
	trainer *online.Trainer
	drift   *online.DriftMonitor
	cancel  context.CancelFunc

	// store is the durability layer (nil without WithDataDir).
	store         *durable.Store
	ckptErrs      atomic.Uint64
	replaySkipped atomic.Uint64
	closed        atomic.Bool

	// reprobe* drive the degraded-durability recovery loop: while the
	// collector is staging in memory only (a WAL append failed), a
	// background goroutine re-probes the disk with exponential backoff,
	// re-journals the staged records on recovery, and writes a catch-up
	// checkpoint. Nil without WithDataDir.
	reprobeStop    chan struct{}
	reprobeDone    chan struct{}
	reupgradeCkpts atomic.Uint64
}

// CollectorStats reports feedback-ingestion counters (see
// AdaptiveEstimator.AdaptationStats).
type CollectorStats = online.CollectorStats

// TrainerStats reports background-retraining counters.
type TrainerStats = online.TrainerStats

// DriftStats reports the drift monitor's windowed q-error quantiles and
// trigger state.
type DriftStats = online.DriftStats

// AdaptationStats is a point-in-time snapshot of the whole adaptation
// loop, shaped for health endpoints.
type AdaptationStats struct {
	// Generation is the live model generation (1 at startup, +1 per
	// promotion).
	Generation uint64         `json:"generation"`
	Collector  CollectorStats `json:"collector"`
	Trainer    TrainerStats   `json:"trainer"`
	Drift      DriftStats     `json:"drift"`
}

// AdaptiveEstimator builds the paper's Cnt2Crd(CRN) estimator with the
// online-adaptation loop attached. It accepts every CardinalityEstimator
// option plus the adaptation options (WithFeedbackBuffer, WithRetrainBatch,
// WithRetrainInterval, WithRetrainEpochs, WithPromoteTolerance,
// WithFeedbackPairs, WithDriftTrigger).
//
// The returned estimator owns a background trainer goroutine and a pool
// subscription; call Close when discarding it. The supplied model is
// generation 1; the model handle itself is never mutated (retraining works
// on clones), so it remains valid for containment estimation throughout.
//
// With WithDataDir the construction can fail (I/O, corrupt state, sync
// policy); this legacy constructor panics on those errors — durable
// deployments should call OpenAdaptiveEstimator instead.
func (s *System) AdaptiveEstimator(m *ContainmentModel, p *QueriesPool, opts ...EstimatorOption) *AdaptiveEstimator {
	ae, err := s.OpenAdaptiveEstimator(m, p, opts...)
	if err != nil {
		panic(fmt.Sprintf("crn: AdaptiveEstimator: %v (use OpenAdaptiveEstimator to handle durability errors)", err))
	}
	return ae
}

// OpenAdaptiveEstimator is AdaptiveEstimator with an error return and, with
// WithDataDir, crash recovery: the newest valid checkpoint (model
// generation, queries pool with recency, drift window) is restored — older
// checkpoints are fallbacks when the newest is corrupt — and the feedback
// WAL is replayed from the checkpoint's applied LSN so un-checkpointed
// feedback re-enters the training pipeline. A torn WAL tail (crash
// mid-append) is truncated silently; unparseable replayed records are
// skipped and counted, never fatal.
//
// When a checkpoint exists, its model supersedes m; m may then be nil (a
// resumed deployment needs no retraining from scratch — see
// crn.HasCheckpoint). Without a data dir the construction is identical to
// PR-era AdaptiveEstimator and the only error is a nil model.
func (s *System) OpenAdaptiveEstimator(m *ContainmentModel, p *QueriesPool, opts ...EstimatorOption) (*AdaptiveEstimator, error) {
	set := estimatorSettings{cacheSize: icrn.DefaultRepCacheSize}
	est := card.New(nil, p)
	if m != nil {
		est.Rates = m.rates
	}
	set.est = est
	for _, o := range opts {
		o(&set)
	}

	var (
		store *durable.Store
		ck    *durable.Checkpoint
	)
	fail := func(err error) (*AdaptiveEstimator, error) {
		if store != nil {
			store.Close()
		}
		return nil, err
	}
	if set.dataDir != "" {
		policy, err := durable.ParseSyncPolicy(set.walSync)
		if err != nil {
			return nil, err
		}
		store, err = durable.Open(set.dataDir, durable.StoreOptions{
			WAL:    durable.WALOptions{Sync: policy},
			Retain: set.ckptRetain,
		})
		if err != nil {
			return nil, err
		}
		if ck, err = store.Recover(); err != nil {
			return fail(err)
		}
	}

	model := (*icrn.Model)(nil)
	if m != nil {
		model = m.model
	}
	if ck != nil {
		restored, err := icrn.Load(ck.Model)
		if err != nil {
			return fail(fmt.Errorf("crn: recover checkpoint model: %w", err))
		}
		if restored.Dim() != s.enc.Dim() {
			return fail(fmt.Errorf("%w: checkpoint model expects dimension %d, this database's featurization has %d",
				ErrDimMismatch, restored.Dim(), s.enc.Dim()))
		}
		model = restored
	}
	if model == nil {
		return fail(errors.New("crn: adaptive estimator needs a model or a recoverable checkpoint"))
	}

	box := online.NewModelBox(model, s.enc, set.cacheSize, p)
	if ck != nil {
		if _, err := pool.LoadInto(p, s.schema, bytes.NewReader(ck.Pool)); err != nil {
			return fail(fmt.Errorf("crn: recover pool snapshot: %w", err))
		}
		if ck.Generation > 1 {
			// Resume the recorded generation number so the sequence stays
			// continuous across restarts (done after the pool restore: the
			// restored generation's cache subscription then sees the final
			// pool, not a stream of replay mutations).
			box.Restore(model, ck.Generation)
		}
	}
	est.Rates = box
	ce := &CardinalityEstimator{est: est, pool: p, box: box}
	ce.initCoalescer(set)
	ce.applyGuards(set)
	ce.applyTelemetry(set)

	cfg := set.adapt
	ae := &AdaptiveEstimator{
		CardinalityEstimator: ce,
		sys:                  s,
		col:                  online.NewCollector(p, cfg.BufferCap),
		drift:                online.NewDriftMonitor(cfg.DriftThreshold, cfg.DriftWindow, cfg.DriftMinSamples),
		store:                store,
	}
	if set.breaker != nil && set.breaker.Alarm == nil {
		// The adaptive deployment has a live unreliability signal the plain
		// estimator lacks: wire the drift monitor's alarm bit into the
		// breaker, so a drifted model diverts to the fallback immediately
		// instead of waiting for the error window to fill.
		bc := *set.breaker
		bc.Alarm = ae.drift.Drifted
		ce.breaker = guard.NewBreaker(bc)
	}
	if ck != nil {
		ae.drift.Restore(ck.Drift)
		ae.col.SetAppliedLSN(ck.AppliedLSN)
	}
	if store != nil {
		// Write-ahead ordering: feedback reaches the WAL before the staging
		// buffer, so everything the collector ever accepted is recoverable.
		ae.col.SetJournal(store.Append)
		since := uint64(0)
		if ck != nil {
			since = ck.AppliedLSN
		}
		// Re-stage journaled feedback the checkpoint does not cover. A
		// corrupt record ends the usable log right there (everything before
		// it was delivered); anything else is a real I/O failure.
		_, err := store.Replay(since, func(rec durable.FeedbackRecord) error {
			q, perr := s.ParseQuery(rec.SQL)
			if perr != nil {
				ae.replaySkipped.Add(1)
				return nil
			}
			_, _ = ae.col.Restage(q, rec.Card, rec.ObservedAt, rec.LSN)
			return nil
		})
		if err != nil && !errors.Is(err, durable.ErrCorrupt) {
			return fail(fmt.Errorf("crn: replay feedback wal: %w", err))
		}
	}

	// The trainer's labeling oracle runs under a context cancelled by
	// Close, so an in-flight retrain aborts promptly at teardown.
	ctx, cancel := context.WithCancel(context.Background())
	ae.cancel = cancel
	ae.trainer = online.NewTrainer(cfg, box, ae.col, p, ctxOracle{ctx: ctx, ex: s.exec}, ae.drift)
	if set.tel != nil {
		if store != nil {
			store.SetTelemetry(set.tel.WALFsync, set.tel.Checkpoint)
		}
		ae.registerAdaptiveCollectors()
	}
	if store != nil {
		// Checkpoint inside the promotion path (still under the retrain
		// lock): the persisted (generation, pool, drift, applied LSN) tuple
		// is exactly the promoted cycle's, never a torn mix of two cycles.
		ae.trainer.SetOnPromote(func(g *online.Generation) { ae.checkpoint(g) })
		ae.reprobeStop = make(chan struct{})
		ae.reprobeDone = make(chan struct{})
		go ae.reprobeLoop()
	}
	ae.trainer.Start()
	return ae, nil
}

// registerAdaptiveCollectors bridges the adaptation loop's and the
// durability layer's stats onto the telemetry registry, gathered at
// exposition time from the same atomics /healthz reports.
func (e *AdaptiveEstimator) registerAdaptiveCollectors() {
	r := e.tel.Registry()

	r.GaugeFunc("crn_model_generation", "Live model generation (1 at startup, +1 per promotion).",
		func() float64 { return float64(e.box.Generation()) })
	r.CollectCounter("crn_trainer_events_total",
		"Background-trainer lifecycle events.",
		"event", func(emit telemetry.Emit) {
			ts := e.trainer.Stats()
			emit(float64(ts.Retrains), "retrain")
			emit(float64(ts.Promotions), "promotion")
			emit(float64(ts.Rejections), "rejection")
			emit(float64(ts.DriftRetrains), "drift_retrain")
			emit(float64(ts.TrainErrors), "train_error")
			emit(float64(ts.Panics), "panic")
		})
	r.CollectCounter("crn_feedback_total",
		"Execution-feedback ingestion results.",
		"result", func(emit telemetry.Emit) {
			cs := e.col.Stats()
			emit(float64(cs.Accepted), "accepted")
			emit(float64(cs.Duplicates), "duplicate")
			emit(float64(cs.Corrected), "corrected")
			emit(float64(cs.Invalid), "invalid")
			emit(float64(cs.Overflow), "overflow")
		})
	r.GaugeFunc("crn_drift_score", "Windowed median q-error of live estimates against arriving truths.",
		func() float64 { return e.drift.Stats().QError.P50 })
	r.GaugeFunc("crn_drift_alarm", "1 while the drift monitor is tripped, else 0.",
		func() float64 {
			if e.drift.Stats().Drifted {
				return 1
			}
			return 0
		})

	if e.store != nil {
		r.CollectCounter("crn_wal_records_total",
			"Feedback WAL activity: appended records, fsyncs, segment rolls, I/O errors.",
			"kind", func(emit telemetry.Emit) {
				ws := e.store.Stats().WAL
				emit(float64(ws.Appends), "append")
				emit(float64(ws.Syncs), "sync")
				emit(float64(ws.Rolls), "roll")
				emit(float64(ws.IOErrors), "io_error")
			})
		r.CollectCounter("crn_checkpoints_total", "Checkpoints written by this process.",
			"", func(emit telemetry.Emit) { emit(float64(e.store.Stats().Checkpoints), "") })
		r.GaugeFunc("crn_durability_degraded", "1 while feedback is staged in memory only (WAL down), else 0.",
			func() float64 {
				if e.col.Degraded() {
					return 1
				}
				return 0
			})
	}
}

// reprobeLoop restores durability after a degradation. While the collector
// reports Degraded (a journal append failed; feedback is staged in memory
// only), the loop re-journals the staged records with exponential backoff —
// each attempt doubles as a disk probe. On success it syncs the WAL and
// writes a catch-up checkpoint, shrinking the recovery tail that grew while
// the disk was down, and the collector resumes journaling inline.
func (e *AdaptiveEstimator) reprobeLoop() {
	defer close(e.reprobeDone)
	const minBackoff, maxBackoff = 50 * time.Millisecond, 5 * time.Second
	backoff := minBackoff
	for {
		select {
		case <-e.reprobeStop:
			return
		case <-time.After(backoff):
		}
		if !e.col.Degraded() {
			backoff = minBackoff
			continue
		}
		if _, err := e.col.ReJournal(); err != nil {
			if backoff *= 2; backoff > maxBackoff {
				backoff = maxBackoff
			}
			continue
		}
		_ = e.store.Sync()
		e.checkpoint(e.box.Current())
		e.reupgradeCkpts.Add(1)
		backoff = minBackoff
	}
}

// HasCheckpoint reports whether dataDir holds at least one completed
// checkpoint — whether OpenAdaptiveEstimator with that dir would resume a
// previous deployment rather than start fresh. Boot logic uses it to skip
// seed training/pool seeding on restart.
func HasCheckpoint(dataDir string) bool { return durable.HasCheckpoint(dataDir) }

// checkpoint persists one generation's full deployment state. Failures are
// counted, not fatal: the WAL still covers everything since the last good
// checkpoint, so serving and adaptation continue with a longer recovery
// tail.
func (e *AdaptiveEstimator) checkpoint(g *online.Generation) {
	blob, err := g.Model.Save()
	if err != nil {
		e.ckptErrs.Add(1)
		return
	}
	var poolBuf bytes.Buffer
	if err := e.pool.Save(&poolBuf); err != nil {
		e.ckptErrs.Add(1)
		return
	}
	err = e.store.Checkpoint(&durable.Checkpoint{
		Generation: g.Gen,
		AppliedLSN: e.col.AppliedLSN(),
		Model:      blob,
		Pool:       poolBuf.Bytes(),
		Drift:      e.drift.Values(),
		WrittenAt:  time.Now().UTC(),
	})
	if err != nil {
		e.ckptErrs.Add(1)
	}
}

// RecordFeedback ingests one piece of execution feedback: the SQL text of
// a query the workload actually executed and its observed true
// cardinality. The query is parsed and validated (unparseable text wraps
// ErrDialect), its truth is compared against the live estimate to feed the
// drift monitor (a drifted window kicks an early retrain), and the record
// is staged for the background trainer — deduplicated against the pool and
// the staged buffer, bounded by the feedback buffer. accepted reports
// whether the record was staged (false: duplicate or buffer full).
//
// The call never blocks on retraining; its cost is one parse plus one
// estimate (for drift accounting) plus a buffered append.
func (e *AdaptiveEstimator) RecordFeedback(ctx context.Context, sql string, card int64) (accepted bool, err error) {
	q, err := e.sys.ParseQuery(sql)
	if err != nil {
		return false, err
	}
	return e.RecordFeedbackQuery(ctx, q, card)
}

// RecordFeedbackQuery is RecordFeedback for an already parsed query.
func (e *AdaptiveEstimator) RecordFeedbackQuery(ctx context.Context, q Query, card int64) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	if card < 0 {
		// Invalid feedback must not touch the drift window; the collector
		// rejects it with the error and counts it.
		return e.col.Offer(q, card, time.Now())
	}
	// Live accuracy: join the truth against the most recent served estimate
	// of this query (if the ring still holds one) BEFORE drift accounting
	// computes a fresh estimate below — the q-error per arm should score
	// what was actually served, not a post-hoc recomputation.
	if e.tel != nil {
		e.tel.Accuracy.Truth(q.Key(), float64(card))
	}
	// Drift accounting: how wrong was the live model about this truth?
	// Queries the estimator cannot answer (no pool match, no fallback) are
	// skipped — there is no estimate to score.
	e.revalidate()
	if est, err := e.est.EstimateCardCtx(ctx, q); err == nil {
		if e.drift.Observe(est, float64(card)) {
			e.trainer.Kick()
		}
	}
	return e.col.Offer(q, card, time.Now())
}

// EstimateContainment estimates q1 ⊂% q2 in [0,1] on the LIVE model
// generation (ContainmentModel.EstimateContainment answers from the static
// handle the estimator was built with). It is also the only containment
// entry point of a deployment resumed from a checkpoint without a
// standalone model.
func (e *AdaptiveEstimator) EstimateContainment(ctx context.Context, q1, q2 Query) (float64, error) {
	if err := contain.Validate(q1, q2); err != nil {
		return 0, err
	}
	out, err := e.box.EstimateRatesCtx(ctx, [][2]Query{{q1, q2}})
	if err != nil {
		return 0, err
	}
	return out[0], nil
}

// Retrain runs one synchronous retrain cycle over the staged feedback and
// reports whether a new model generation was promoted. The background
// trainer does this on its own schedule; Retrain exists for tests,
// operational tooling, and deployments driving the loop manually.
func (e *AdaptiveEstimator) Retrain(ctx context.Context) (promoted bool, err error) {
	return e.trainer.RetrainNow(ctx)
}

// StagedFeedback returns the number of feedback records waiting for the
// background trainer. Cheaper than AdaptationStats for per-request use
// (one mutex, no window snapshot).
func (e *AdaptiveEstimator) StagedFeedback() int {
	return e.col.Staged()
}

// ModelGeneration returns the live model generation: 1 at construction,
// incremented by every promotion. In-flight estimates that loaded an older
// generation finish on it; every estimate observes exactly one generation.
func (e *AdaptiveEstimator) ModelGeneration() uint64 {
	return e.box.Generation()
}

// AdaptationStats returns a snapshot of the feedback loop: ingestion,
// retraining and drift counters plus the live generation.
func (e *AdaptiveEstimator) AdaptationStats() AdaptationStats {
	return AdaptationStats{
		Generation: e.box.Generation(),
		Collector:  e.col.Stats(),
		Trainer:    e.trainer.Stats(),
		Drift:      e.drift.Stats(),
	}
}

// DurabilityStats reports the durability layer's state: WAL counters,
// checkpoint history, recovery activity. Nil without WithDataDir (the
// healthz serializer drops the section entirely for memory-only
// deployments).
type DurabilityStats struct {
	durable.StoreStats
	// CheckpointErrors counts failed checkpoint attempts (serving continued;
	// the WAL still covers the un-checkpointed state).
	CheckpointErrors uint64 `json:"checkpoint_errors"`
	// ReplaySkipped counts journaled records recovery could not re-parse
	// (schema changed underneath the data dir) and dropped.
	ReplaySkipped uint64 `json:"replay_skipped"`
	// Degraded reports degraded durability RIGHT NOW: a WAL append failed
	// and feedback is being staged in memory only until the re-probe loop
	// re-journals it. Reupgrades counts recoveries back to full
	// durability; ReupgradeCheckpoints the catch-up checkpoints they
	// wrote.
	Degraded             bool   `json:"durability_degraded"`
	Reupgrades           uint64 `json:"reupgrades"`
	ReupgradeCheckpoints uint64 `json:"reupgrade_checkpoints"`
}

// DurabilityStats returns the durability snapshot, or nil for a memory-only
// estimator.
func (e *AdaptiveEstimator) DurabilityStats() *DurabilityStats {
	if e.store == nil {
		return nil
	}
	cs := e.col.Stats()
	return &DurabilityStats{
		StoreStats:           e.store.Stats(),
		CheckpointErrors:     e.ckptErrs.Load(),
		ReplaySkipped:        e.replaySkipped.Load(),
		Degraded:             cs.Degraded,
		Reupgrades:           cs.Reupgrades,
		ReupgradeCheckpoints: e.reupgradeCkpts.Load(),
	}
}

// Close stops the background trainer (waiting for an in-flight cycle),
// cancels its labeling work and releases the pool subscription. A durable
// estimator then writes a final checkpoint of the current generation —
// staged-but-untrained feedback stays in the WAL beyond the checkpoint's
// applied LSN, so the next boot re-stages it — syncs and closes the store.
// The estimator still answers estimates afterwards — on its last promoted
// generation — but no longer adapts. Idempotent.
func (e *AdaptiveEstimator) Close() {
	if e.closed.Swap(true) {
		return
	}
	e.cancel()
	e.trainer.Stop()
	if e.store != nil {
		close(e.reprobeStop)
		<-e.reprobeDone
		e.checkpoint(e.box.Current())
		_ = e.store.Sync()
		_ = e.store.Close()
	}
	e.CardinalityEstimator.Close()
}
