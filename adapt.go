package crn

import (
	"context"
	"time"

	"crn/internal/card"
	icrn "crn/internal/crn"
	"crn/internal/online"
)

// This file is the facade over internal/online: the execution-feedback
// adaptation loop of the §5.2 deployment. A DBMS that serves estimates also
// executes queries, so (query, true cardinality) ground truth arrives
// continuously; an AdaptiveEstimator ingests that feedback, grows the pool
// with it, incrementally retrains the containment model in the background,
// and atomically hot-swaps improved model generations under live traffic.

// AdaptiveEstimator is a CardinalityEstimator with the online-adaptation
// loop attached. All CardinalityEstimator methods work unchanged (and run
// against the current model generation through one atomic load per pass);
// RecordFeedback feeds the loop, the background trainer promotes improved
// generations, and Close tears the loop down.
//
// Construction starts the background trainer immediately; a deployment
// that wants full manual control passes WithRetrainInterval(-1) and calls
// Retrain itself.
type AdaptiveEstimator struct {
	*CardinalityEstimator
	sys     *System
	col     *online.Collector
	trainer *online.Trainer
	drift   *online.DriftMonitor
	cancel  context.CancelFunc
}

// CollectorStats reports feedback-ingestion counters (see
// AdaptiveEstimator.AdaptationStats).
type CollectorStats = online.CollectorStats

// TrainerStats reports background-retraining counters.
type TrainerStats = online.TrainerStats

// DriftStats reports the drift monitor's windowed q-error quantiles and
// trigger state.
type DriftStats = online.DriftStats

// AdaptationStats is a point-in-time snapshot of the whole adaptation
// loop, shaped for health endpoints.
type AdaptationStats struct {
	// Generation is the live model generation (1 at startup, +1 per
	// promotion).
	Generation uint64         `json:"generation"`
	Collector  CollectorStats `json:"collector"`
	Trainer    TrainerStats   `json:"trainer"`
	Drift      DriftStats     `json:"drift"`
}

// AdaptiveEstimator builds the paper's Cnt2Crd(CRN) estimator with the
// online-adaptation loop attached. It accepts every CardinalityEstimator
// option plus the adaptation options (WithFeedbackBuffer, WithRetrainBatch,
// WithRetrainInterval, WithRetrainEpochs, WithPromoteTolerance,
// WithFeedbackPairs, WithDriftTrigger).
//
// The returned estimator owns a background trainer goroutine and a pool
// subscription; call Close when discarding it. The supplied model is
// generation 1; the model handle itself is never mutated (retraining works
// on clones), so it remains valid for containment estimation throughout.
func (s *System) AdaptiveEstimator(m *ContainmentModel, p *QueriesPool, opts ...EstimatorOption) *AdaptiveEstimator {
	set := estimatorSettings{cacheSize: icrn.DefaultRepCacheSize}
	est := card.New(m.rates, p)
	set.est = est
	for _, o := range opts {
		o(&set)
	}
	box := online.NewModelBox(m.model, s.enc, set.cacheSize, p)
	est.Rates = box
	ce := &CardinalityEstimator{est: est, pool: p, box: box}
	ce.initCoalescer(set)

	cfg := set.adapt
	ae := &AdaptiveEstimator{
		CardinalityEstimator: ce,
		sys:                  s,
		col:                  online.NewCollector(p, cfg.BufferCap),
		drift:                online.NewDriftMonitor(cfg.DriftThreshold, cfg.DriftWindow, cfg.DriftMinSamples),
	}
	// The trainer's labeling oracle runs under a context cancelled by
	// Close, so an in-flight retrain aborts promptly at teardown.
	ctx, cancel := context.WithCancel(context.Background())
	ae.cancel = cancel
	ae.trainer = online.NewTrainer(cfg, box, ae.col, p, ctxOracle{ctx: ctx, ex: s.exec}, ae.drift)
	ae.trainer.Start()
	return ae
}

// RecordFeedback ingests one piece of execution feedback: the SQL text of
// a query the workload actually executed and its observed true
// cardinality. The query is parsed and validated (unparseable text wraps
// ErrDialect), its truth is compared against the live estimate to feed the
// drift monitor (a drifted window kicks an early retrain), and the record
// is staged for the background trainer — deduplicated against the pool and
// the staged buffer, bounded by the feedback buffer. accepted reports
// whether the record was staged (false: duplicate or buffer full).
//
// The call never blocks on retraining; its cost is one parse plus one
// estimate (for drift accounting) plus a buffered append.
func (e *AdaptiveEstimator) RecordFeedback(ctx context.Context, sql string, card int64) (accepted bool, err error) {
	q, err := e.sys.ParseQuery(sql)
	if err != nil {
		return false, err
	}
	return e.RecordFeedbackQuery(ctx, q, card)
}

// RecordFeedbackQuery is RecordFeedback for an already parsed query.
func (e *AdaptiveEstimator) RecordFeedbackQuery(ctx context.Context, q Query, card int64) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	if card < 0 {
		// Invalid feedback must not touch the drift window; the collector
		// rejects it with the error and counts it.
		return e.col.Offer(q, card, time.Now())
	}
	// Drift accounting: how wrong was the live model about this truth?
	// Queries the estimator cannot answer (no pool match, no fallback) are
	// skipped — there is no estimate to score.
	e.revalidate()
	if est, err := e.est.EstimateCardCtx(ctx, q); err == nil {
		if e.drift.Observe(est, float64(card)) {
			e.trainer.Kick()
		}
	}
	return e.col.Offer(q, card, time.Now())
}

// Retrain runs one synchronous retrain cycle over the staged feedback and
// reports whether a new model generation was promoted. The background
// trainer does this on its own schedule; Retrain exists for tests,
// operational tooling, and deployments driving the loop manually.
func (e *AdaptiveEstimator) Retrain(ctx context.Context) (promoted bool, err error) {
	return e.trainer.RetrainNow(ctx)
}

// StagedFeedback returns the number of feedback records waiting for the
// background trainer. Cheaper than AdaptationStats for per-request use
// (one mutex, no window snapshot).
func (e *AdaptiveEstimator) StagedFeedback() int {
	return e.col.Staged()
}

// ModelGeneration returns the live model generation: 1 at construction,
// incremented by every promotion. In-flight estimates that loaded an older
// generation finish on it; every estimate observes exactly one generation.
func (e *AdaptiveEstimator) ModelGeneration() uint64 {
	return e.box.Generation()
}

// AdaptationStats returns a snapshot of the feedback loop: ingestion,
// retraining and drift counters plus the live generation.
func (e *AdaptiveEstimator) AdaptationStats() AdaptationStats {
	return AdaptationStats{
		Generation: e.box.Generation(),
		Collector:  e.col.Stats(),
		Trainer:    e.trainer.Stats(),
		Drift:      e.drift.Stats(),
	}
}

// Close stops the background trainer (waiting for an in-flight cycle),
// cancels its labeling work and releases the pool subscription. The
// estimator still answers estimates afterwards — on its last promoted
// generation — but no longer adapts.
func (e *AdaptiveEstimator) Close() {
	e.cancel()
	e.trainer.Stop()
	e.CardinalityEstimator.Close()
}
