package crn

// Benchmarks for the online-adaptation acceptance point: single-query
// estimate throughput with the background trainer idle vs. actively
// retraining and hot-swapping model generations. Run with
//
//	go test -bench EstimateCardinalityTrainer -cpu 4 -benchtime 2s
//
// ns/op is per single-query request on the concurrent serving
// configuration (coalescing on); the active/idle ratio is the cost of
// running the adaptation loop under live traffic. The PR 5 acceptance
// criterion is active within 10% of idle: estimates never block on
// retraining (the trainer works on a clone and publishes by one atomic
// store), so the remaining gap is only CPU contention with the background
// labeling and training work.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// adaptBenchEnv builds an adaptive estimator over the shared benchmark
// system: a capacity-bounded pool (so sustained feedback exercises
// eviction and surgical cache invalidation) and a pre-labeled feedback
// stream the active benchmark can push without executing queries on the
// clock.
func adaptBenchEnv(b *testing.B) (*AdaptiveEstimator, []Query, []struct {
	Q    Query
	Card int64
}) {
	b.Helper()
	batchBenchEnv(b) // builds the shared system, model, workload
	adaptOnce.Do(func() {
		ctx := context.Background()
		for i := 0; i < 360; i++ {
			sql := fmt.Sprintf(
				"SELECT * FROM title WHERE title.production_year > %d AND title.kind_id < %d",
				1900+(i*3)%100, 2+i%6)
			q, err := batchSys.ParseQuery(sql)
			if err != nil {
				adaptErr = err
				return
			}
			card, err := batchSys.TrueCardinality(ctx, q)
			if err != nil {
				adaptErr = err
				return
			}
			adaptFeedback = append(adaptFeedback, struct {
				Q    Query
				Card int64
			}{q, card})
		}
	})
	if adaptErr != nil {
		b.Fatal(adaptErr)
	}
	ctx := context.Background()
	pool := batchSys.NewQueriesPool(WithPoolCap(256))
	if err := batchSys.SeedPool(ctx, pool, 120, 11); err != nil {
		b.Fatal(err)
	}
	base, err := batchSys.AnalyzeBaseline()
	if err != nil {
		b.Fatal(err)
	}
	ae := batchSys.AdaptiveEstimator(batchModel, pool,
		WithFallback(base),
		WithCoalescing(64, 0),
		WithRetrainInterval(-1), // the active benchmark drives cycles itself
		WithRetrainEpochs(2),
		WithFeedbackPairs(2),
		WithPromoteTolerance(100), // promote every cycle: maximize hot-swaps
	)
	b.Cleanup(ae.Close)
	// Warm the serving cache to steady state.
	for i := 0; i < 2; i++ {
		if _, err := ae.EstimateCardinalityBatch(ctx, batchQueries); err != nil {
			b.Fatal(err)
		}
	}
	return ae, batchQueries, adaptFeedback
}

var (
	adaptOnce     sync.Once
	adaptErr      error
	adaptFeedback []struct {
		Q    Query
		Card int64
	}
)

// BenchmarkEstimateCardinalityTrainerIdle is the baseline: the adaptation
// loop is attached but quiescent (nothing staged, no retrains).
func BenchmarkEstimateCardinalityTrainerIdle(b *testing.B) {
	ae, queries, _ := adaptBenchEnv(b)
	var next atomic.Int64
	b.SetParallelism(4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		parallelBenchLoop(b, pb, ae.CardinalityEstimator, queries, &next)
	})
}

// BenchmarkEstimateCardinalityTrainerActive measures the same traffic
// while a background goroutine stages feedback and runs retrain cycles —
// labeling, incremental training, promotion, pool growth with LRU
// eviction, pre-warmed cache hot-swap — at a one-cycle-per-second cadence
// (aggressive for production, where retrains run on the order of tens of
// seconds to minutes). Unpaced back-to-back retraining is excluded on
// purpose: tens of generation swaps per second measure a permanently cold
// serving stack, not trainer interference.
func BenchmarkEstimateCardinalityTrainerActive(b *testing.B) {
	ae, queries, feedback := adaptBenchEnv(b)
	ctx := context.Background()
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		next := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			for k := 0; k < 4; k++ {
				lq := feedback[next%len(feedback)]
				next++
				if _, err := ae.RecordFeedbackQuery(ctx, lq.Q, lq.Card); err != nil {
					b.Error(err)
					return
				}
			}
			if _, err := ae.Retrain(ctx); err != nil {
				b.Error(err)
				return
			}
			select {
			case <-stop:
				return
			case <-time.After(time.Second):
			}
		}
	}()
	// Let the first retrain cycle spin up so the measurement starts under
	// genuine trainer load.
	time.Sleep(10 * time.Millisecond)

	var next atomic.Int64
	b.SetParallelism(4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		parallelBenchLoop(b, pb, ae.CardinalityEstimator, queries, &next)
	})
	b.StopTimer()
	close(stop)
	<-done
	st := ae.AdaptationStats()
	b.ReportMetric(float64(st.Trainer.Promotions), "promotions")
	if st.Trainer.Retrains == 0 {
		b.Fatal("trainer never retrained during the active benchmark")
	}
}
