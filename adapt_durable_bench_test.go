package crn

// Benchmarks for the PR 6 durability acceptance point: the cost a WAL
// append adds to the feedback ingestion path. Run with
//
//	go test -bench RecordFeedback -benchtime 2000x
//
// ns/op is per RecordFeedbackQuery call — drift scoring against the live
// model, validation, dedup, staging, and (in the durable variants) the
// write-ahead journal append. The PR 6 acceptance criterion is the
// default-policy durable path within 10% of the in-memory path: under
// "interval" the append is a buffered copy (the background syncer owns
// the fsync), so the only on-path costs are framing and a checksum.
// "always" prices a full group-commit fsync per record — the upper bound,
// dominated by device sync latency, included for visibility rather than
// gated.

import (
	"context"
	"fmt"
	"testing"
)

// feedbackBenchEnv builds an adaptive estimator sized so every one of the
// b.N unique feedback records stages without overflow, plus the parsed
// queries themselves (parsing happens off the clock: the metered path is
// staging, not SQL decoding).
func feedbackBenchEnv(b *testing.B, opts ...EstimatorOption) (*AdaptiveEstimator, []Query) {
	b.Helper()
	batchBenchEnv(b) // builds the shared system and model
	ctx := context.Background()
	pool := batchSys.NewQueriesPool()
	if err := batchSys.SeedPool(ctx, pool, 60, 11); err != nil {
		b.Fatal(err)
	}
	all := append([]EstimatorOption{
		WithRetrainInterval(-1),
		WithFeedbackBuffer(b.N + 16),
		WithDriftTrigger(1e9, 64), // never trip: retrains would pollute timing
	}, opts...)
	ae, err := batchSys.OpenAdaptiveEstimator(batchModel, pool, all...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(ae.Close)
	qs := make([]Query, b.N)
	for i := range qs {
		q, err := batchSys.ParseQuery(fmt.Sprintf(
			"SELECT * FROM title WHERE title.production_year > %d", 1000+i))
		if err != nil {
			b.Fatal(err)
		}
		qs[i] = q
	}
	return ae, qs
}

func runFeedbackBench(b *testing.B, ae *AdaptiveEstimator, qs []Query) {
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc, err := ae.RecordFeedbackQuery(ctx, qs[i], int64(i%100+1))
		if err != nil {
			b.Fatal(err)
		}
		if !acc {
			b.Fatalf("record %d not accepted", i)
		}
	}
}

// BenchmarkRecordFeedbackMemory is the in-memory staging baseline (PR 5
// behavior: no data dir, nothing durable).
func BenchmarkRecordFeedbackMemory(b *testing.B) {
	ae, qs := feedbackBenchEnv(b)
	runFeedbackBench(b, ae, qs)
}

// BenchmarkRecordFeedbackDurable journals through the WAL at the default
// "interval" sync policy. Acceptance: within 10% of Memory.
func BenchmarkRecordFeedbackDurable(b *testing.B) {
	ae, qs := feedbackBenchEnv(b, WithDataDir(b.TempDir()), WithWALSync("interval"))
	runFeedbackBench(b, ae, qs)
}

// BenchmarkRecordFeedbackDurableAlways journals with an fsync per record —
// the group-commit upper bound, not gated.
func BenchmarkRecordFeedbackDurableAlways(b *testing.B) {
	ae, qs := feedbackBenchEnv(b, WithDataDir(b.TempDir()), WithWALSync("always"))
	runFeedbackBench(b, ae, qs)
}
