package crn

import (
	"context"
	"testing"
)

// TestDurableKillAndRestart is the acceptance test of the durability
// subsystem: a promoted-and-grown deployment is closed (simulating an
// orderly kill) and reopened against the same data directory. The
// restarted estimator must resume the promoted generation and the grown
// pool, serve bit-identical estimates for the warm working set, and
// replay feedback that was journaled but never trained.
func TestDurableKillAndRestart(t *testing.T) {
	ctx := context.Background()
	sys, model, p := adaptFixture(t)
	dir := t.TempDir()

	ae, err := sys.OpenAdaptiveEstimator(model, p,
		WithRetrainInterval(-1),
		WithRetrainEpochs(2),
		WithFeedbackPairs(4),
		WithPromoteTolerance(100), // force promotion: this test is about state, not quality
		WithDataDir(dir),
		WithWALSync("always"),
		WithCheckpointRetain(2),
	)
	if err != nil {
		t.Fatal(err)
	}

	feedback := driftedWorkload(t, sys, 0, 24)
	for _, lq := range feedback[:16] {
		if _, err := ae.RecordFeedbackQuery(ctx, lq.Q, lq.Card); err != nil {
			t.Fatal(err)
		}
	}
	promoted, err := ae.Retrain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !promoted {
		t.Fatal("fixture retrain did not promote")
	}
	// Promotion must have checkpointed, before any shutdown runs.
	if !HasCheckpoint(dir) {
		t.Fatal("no checkpoint on disk after promotion")
	}

	// Journal more feedback that the trainer never sees: it must survive
	// the restart via WAL replay.
	for _, lq := range feedback[16:] {
		if _, err := ae.RecordFeedbackQuery(ctx, lq.Q, lq.Card); err != nil {
			t.Fatal(err)
		}
	}
	stagedAtKill := ae.StagedFeedback()
	if stagedAtKill == 0 {
		t.Fatal("fixture produced no staged feedback")
	}

	gen := ae.ModelGeneration()
	poolLen := p.Len()
	probes := driftedWorkload(t, sys, 1, 12)
	before := make([]float64, len(probes))
	for i, lq := range probes {
		if before[i], err = ae.EstimateCardinality(ctx, lq.Q); err != nil {
			t.Fatal(err)
		}
	}
	ds := ae.DurabilityStats()
	if ds == nil {
		t.Fatal("DurabilityStats = nil with a data dir configured")
	}
	if ds.WAL.Appends == 0 || ds.Checkpoints == 0 {
		t.Fatalf("durability counters never moved: %+v", ds)
	}
	ae.Close()

	// ---- restart: nil model, empty pool — everything comes from disk ----
	p2 := sys.NewQueriesPool()
	ae2, err := sys.OpenAdaptiveEstimator(nil, p2,
		WithRetrainInterval(-1),
		WithRetrainEpochs(2),
		WithFeedbackPairs(4),
		WithPromoteTolerance(100),
		WithDataDir(dir),
		WithWALSync("always"),
		WithCheckpointRetain(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer ae2.Close()

	if got := ae2.ModelGeneration(); got != gen {
		t.Fatalf("restarted generation = %d, want %d", got, gen)
	}
	if got := p2.Len(); got != poolLen {
		t.Fatalf("restarted pool size = %d, want %d", got, poolLen)
	}
	for i, lq := range probes {
		after, err := ae2.EstimateCardinality(ctx, lq.Q)
		if err != nil {
			t.Fatal(err)
		}
		if after != before[i] {
			t.Fatalf("probe %d: estimate %v after restart, %v before — must be bit-identical", i, after, before[i])
		}
	}
	// Un-trained journaled feedback is staged again.
	ds2 := ae2.DurabilityStats()
	if ds2 == nil || ds2.ReplayedRecords == 0 {
		t.Fatalf("restart replayed nothing: %+v", ds2)
	}
	if got := ae2.StagedFeedback(); got != stagedAtKill {
		t.Fatalf("restarted staged feedback = %d, want %d (the un-trained records)", got, stagedAtKill)
	}
	// The replayed records are trainable: the next cycle promotes gen+1.
	if promoted, err := ae2.Retrain(ctx); err != nil || !promoted {
		t.Fatalf("post-restart retrain: promoted=%v err=%v", promoted, err)
	}
	if got := ae2.ModelGeneration(); got != gen+1 {
		t.Fatalf("post-restart promotion reached generation %d, want %d", got, gen+1)
	}
}

// TestSecondRestartAfterPromotion reopens the SAME data dir a third time
// after the post-restart promotion, pinning that generation numbering
// keeps ascending across restarts instead of resetting.
func TestSecondRestartAfterPromotion(t *testing.T) {
	ctx := context.Background()
	sys, model, p := adaptFixture(t)
	dir := t.TempDir()
	open := func(m *ContainmentModel, pl *QueriesPool) *AdaptiveEstimator {
		t.Helper()
		ae, err := sys.OpenAdaptiveEstimator(m, pl,
			WithRetrainInterval(-1), WithRetrainEpochs(1), WithFeedbackPairs(2),
			WithPromoteTolerance(100), WithDataDir(dir), WithWALSync("always"))
		if err != nil {
			t.Fatal(err)
		}
		return ae
	}

	ae := open(model, p)
	for _, lq := range driftedWorkload(t, sys, 0, 12) {
		if _, err := ae.RecordFeedbackQuery(ctx, lq.Q, lq.Card); err != nil {
			t.Fatal(err)
		}
	}
	if promoted, err := ae.Retrain(ctx); err != nil || !promoted {
		t.Fatalf("promoted=%v err=%v", promoted, err)
	}
	gen := ae.ModelGeneration()
	ae.Close()

	ae2 := open(nil, sys.NewQueriesPool())
	if got := ae2.ModelGeneration(); got != gen {
		t.Fatalf("first restart generation = %d, want %d", got, gen)
	}
	ae2.Close()

	ae3 := open(nil, sys.NewQueriesPool())
	defer ae3.Close()
	if got := ae3.ModelGeneration(); got != gen {
		t.Fatalf("second restart generation = %d, want %d", got, gen)
	}
}

// TestNoDataDirBehavesLikeBefore pins the compatibility contract: without
// WithDataDir the adaptive estimator must run fully in-memory — no
// durability stats, feedback accepted, promotion functional.
func TestNoDataDirBehavesLikeBefore(t *testing.T) {
	ctx := context.Background()
	sys, model, p := adaptFixture(t)
	ae, err := sys.OpenAdaptiveEstimator(model, p,
		WithRetrainInterval(-1), WithRetrainEpochs(1), WithFeedbackPairs(2),
		WithPromoteTolerance(100))
	if err != nil {
		t.Fatal(err)
	}
	defer ae.Close()
	if ae.DurabilityStats() != nil {
		t.Fatal("DurabilityStats must be nil without a data dir")
	}
	for _, lq := range driftedWorkload(t, sys, 0, 12) {
		if _, err := ae.RecordFeedbackQuery(ctx, lq.Q, lq.Card); err != nil {
			t.Fatal(err)
		}
	}
	if promoted, err := ae.Retrain(ctx); err != nil || !promoted {
		t.Fatalf("promoted=%v err=%v", promoted, err)
	}
}

// TestOpenWithoutModelOrCheckpointFails pins the error path: a fresh data
// dir cannot conjure a model out of nothing.
func TestOpenWithoutModelOrCheckpointFails(t *testing.T) {
	sys, _, p := adaptFixture(t)
	if _, err := sys.OpenAdaptiveEstimator(nil, p, WithDataDir(t.TempDir())); err == nil {
		t.Fatal("open with nil model and empty data dir must fail")
	}
	if _, err := sys.OpenAdaptiveEstimator(nil, p); err == nil {
		t.Fatal("open with nil model and no data dir must fail")
	}
}

// TestLabelFreeFeedbackSavesOracleCalls exercises satellite (a): with
// WithLabelFreeFeedback enabled, containment rates for feedback pairs
// whose intersection cardinality is already known — |Q1∩Q2|/|Q1| — are
// derived from journaled truths instead of oracle executions, and the
// split is visible in AdaptationStats.
func TestLabelFreeFeedbackSavesOracleCalls(t *testing.T) {
	ctx := context.Background()
	sys, model, p := adaptFixture(t)
	ae, err := sys.OpenAdaptiveEstimator(model, p,
		WithRetrainInterval(-1), WithRetrainEpochs(1), WithFeedbackPairs(4),
		WithPromoteTolerance(100), WithLabelFreeFeedback(true))
	if err != nil {
		t.Fatal(err)
	}
	defer ae.Close()

	for _, lq := range driftedWorkload(t, sys, 0, 24) {
		if _, err := ae.RecordFeedbackQuery(ctx, lq.Q, lq.Card); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ae.Retrain(ctx); err != nil {
		t.Fatal(err)
	}
	st := ae.AdaptationStats()
	if st.Trainer.LabelFreePairs == 0 {
		t.Fatalf("label-free labeling never fired: %+v", st.Trainer)
	}
	t.Logf("pairs labeled without the oracle: %d (oracle pairs: %d)",
		st.Trainer.LabelFreePairs, st.Trainer.OraclePairs)
}
