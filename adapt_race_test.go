package crn

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
)

// TestHotSwapUnderLoad is the hot-swap race gate (run under -race in CI):
// estimate traffic hammers the adaptive estimator — through the coalesced
// shared-batch path and through the solo fast path — while the trainer
// concurrently retrains and promotes model generations. It asserts that no
// estimate ever errors or returns a non-finite value (a torn model read
// would), that the observed generation is monotonic per goroutine, that
// promotions really happened mid-load, and that the per-generation cache
// stays coherent: after quiescence, cached answers are bit-identical to
// answers recomputed with a flushed cache on the same generation.
func TestHotSwapUnderLoad(t *testing.T) {
	for _, tc := range []struct {
		name    string
		readers int
		opts    []EstimatorOption
	}{
		// Many concurrent readers over a coalescing estimator: shared
		// batched passes race the promotions.
		{"coalesced", 4, []EstimatorOption{WithCoalescing(8, 0)}},
		// One serial reader over the same coalescing configuration: every
		// request takes the coalescer's solo fast path.
		{"solo", 1, []EstimatorOption{WithCoalescing(8, 0)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ctx := context.Background()
			sys, model, p := adaptFixture(t)
			ae := sys.AdaptiveEstimator(model, p, append(tc.opts,
				WithRetrainInterval(-1), // promotions driven by this test
				WithRetrainEpochs(1),
				WithFeedbackPairs(2),
				WithPromoteTolerance(100), // promote every cycle: maximize swaps
			)...)
			defer ae.Close()

			probes := make([]Query, 0, 8)
			for i := 0; i < 8; i++ {
				q, err := sys.ParseQuery(fmt.Sprintf(
					"SELECT * FROM title WHERE title.production_year > %d", 1940+7*i))
				if err != nil {
					t.Fatal(err)
				}
				probes = append(probes, q)
			}
			// Pre-label the feedback stream so the promoter loop spends its
			// time retraining, not executing queries.
			feedback := driftedWorkload(t, sys, 2, 24)

			var stop atomic.Bool
			var served atomic.Int64
			var wg sync.WaitGroup
			errs := make(chan error, tc.readers+1)
			for g := 0; g < tc.readers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					lastGen := uint64(0)
					for i := 0; !stop.Load(); i++ {
						gen := ae.ModelGeneration()
						if gen < lastGen {
							errs <- fmt.Errorf("generation went backwards: %d -> %d", lastGen, gen)
							return
						}
						lastGen = gen
						v, err := ae.EstimateCardinality(ctx, probes[(g+i)%len(probes)])
						if err != nil {
							errs <- fmt.Errorf("estimate under promotion: %w", err)
							return
						}
						if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
							errs <- fmt.Errorf("torn estimate: %v", v)
							return
						}
						served.Add(1)
					}
				}(g)
			}

			// Promoter: stream feedback and retrain until at least three
			// generations were promoted under live traffic. Every cycle
			// first waits for fresh estimate traffic, so each promotion
			// really races in-flight estimates (tiny retrains would
			// otherwise finish before the readers get going).
			const wantPromotions = 3
			go func() {
				defer stop.Store(true)
				next := 0
				for ae.AdaptationStats().Trainer.Promotions < wantPromotions {
					for waitFor := served.Load() + int64(tc.readers); served.Load() < waitFor; {
					}
					for k := 0; k < 4 && next < len(feedback); k++ {
						lq := feedback[next]
						next++
						if _, err := ae.RecordFeedbackQuery(ctx, lq.Q, lq.Card); err != nil {
							errs <- fmt.Errorf("feedback: %w", err)
							return
						}
					}
					if _, err := ae.Retrain(ctx); err != nil {
						errs <- fmt.Errorf("retrain: %w", err)
						return
					}
					if next >= len(feedback) {
						errs <- fmt.Errorf("feedback exhausted before %d promotions: %+v",
							wantPromotions, ae.AdaptationStats().Trainer)
						return
					}
				}
			}()
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}

			st := ae.AdaptationStats()
			if st.Trainer.Promotions < wantPromotions {
				t.Fatalf("want >= %d promotions under load, got %+v", wantPromotions, st.Trainer)
			}
			if got := ae.ModelGeneration(); got != st.Trainer.Promotions+1 {
				t.Fatalf("generation %d != promotions %d + 1", got, st.Trainer.Promotions)
			}
			if served.Load() == 0 {
				t.Fatal("no estimates served during promotions")
			}

			// Cache coherence after promotion: warmed answers on the final
			// generation must be bit-identical to answers recomputed after an
			// explicit flush, and batch must equal single.
			warm := make([]float64, len(probes))
			for i, q := range probes {
				v, err := ae.EstimateCardinality(ctx, q)
				if err != nil {
					t.Fatal(err)
				}
				warm[i] = v
			}
			batch, err := ae.EstimateCardinalityBatch(ctx, probes)
			if err != nil {
				t.Fatal(err)
			}
			ae.InvalidateRepresentations()
			for i, q := range probes {
				v, err := ae.EstimateCardinality(ctx, q)
				if err != nil {
					t.Fatal(err)
				}
				if v != warm[i] {
					t.Fatalf("probe %d: cached %v != recomputed %v after promotion", i, warm[i], v)
				}
				if batch[i] != warm[i] {
					t.Fatalf("probe %d: batch %v != single %v", i, batch[i], warm[i])
				}
			}
		})
	}
}
