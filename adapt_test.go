package crn

import (
	"context"
	"fmt"
	"testing"
	"time"

	"crn/internal/metrics"
	"crn/internal/workload"
)

// adaptFixture builds a system with a deliberately under-trained seed
// model — the "drifted away" starting point: the model was fit on a stale
// sliver of an old workload and serves a workload it has never seen.
func adaptFixture(t *testing.T) (*System, *ContainmentModel, *QueriesPool) {
	t.Helper()
	ctx := context.Background()
	sys := testSystem(t)
	mcfg := DefaultModelConfig()
	mcfg.Hidden = 16
	mcfg.Epochs = 2
	// Patience stays positive so incremental retraining (which inherits the
	// model config) restores its best-validation weights per cycle.
	mcfg.Patience = 5
	model, err := sys.TrainContainmentModel(ctx,
		WithPairs(80), WithSeed(5), WithModelConfig(mcfg))
	if err != nil {
		t.Fatal(err)
	}
	p := sys.NewQueriesPool()
	if err := sys.SeedPool(ctx, p, 30, 11); err != nil {
		t.Fatal(err)
	}
	return sys, model, p
}

// labeledWorkload generates n mixed 0-2-join queries with their true
// cardinalities.
func labeledWorkload(t *testing.T, sys *System, seed int64, n int) []workload.LabeledQuery {
	t.Helper()
	gen := workload.NewGenerator(sys.Schema(), sys.DB(), seed)
	per := n / 3
	qs, err := gen.QueriesWithJoinDistribution(map[int]int{0: n - 2*per, 1: per, 2: per})
	if err != nil {
		t.Fatal(err)
	}
	labeled, err := workload.LabelQueries(sys.exec, qs, 0)
	if err != nil {
		t.Fatal(err)
	}
	return labeled
}

// driftedWorkload is the query family the workload drifted TO: conjunctive
// production-year/kind ranges over title — a "new application feature" the
// seed model's sparse training barely covered. which varies the family's
// parameters so feedback and probe sets are built from disjoint queries;
// only non-empty queries are kept (an empty result carries no containment
// signal, and the paper's workloads are rejection-sampled the same way).
func driftedWorkload(t *testing.T, sys *System, which, n int) []workload.LabeledQuery {
	t.Helper()
	var qs []Query
	for i := 0; len(qs) < n && i < 400; i++ {
		year := 1905 + (i*7)%90
		kind := 1 + (i+which)%6
		var sql string
		switch {
		case i%3 == which%3:
			sql = fmt.Sprintf("SELECT * FROM title WHERE title.production_year > %d AND title.kind_id = %d", year, kind)
		case i%3 == (which+1)%3:
			sql = fmt.Sprintf("SELECT * FROM title WHERE title.production_year < %d", year+which)
		default:
			sql = fmt.Sprintf("SELECT * FROM title WHERE title.production_year > %d AND title.kind_id < %d", year, 2+kind)
		}
		q, err := sys.ParseQuery(sql)
		if err != nil {
			t.Fatal(err)
		}
		qs = append(qs, q)
	}
	labeled, err := workload.LabelQueries(sys.exec, qs, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := labeled[:0]
	for _, lq := range labeled {
		if lq.Card > 0 {
			out = append(out, lq)
		}
	}
	return out
}

// medianQError evaluates an estimator over a labeled workload.
func medianQError(t *testing.T, est *CardinalityEstimator, probes []workload.LabeledQuery) float64 {
	t.Helper()
	ctx := context.Background()
	errs := make([]float64, 0, len(probes))
	for _, lq := range probes {
		got, err := est.EstimateCardinality(ctx, lq.Q)
		if err != nil {
			t.Fatal(err)
		}
		errs = append(errs, metrics.CardQError(float64(lq.Card), got))
	}
	return metrics.Median(errs)
}

// TestAdaptationImprovesDriftedModel is the end-to-end acceptance test of
// the online-adaptation subsystem: a model seeded on a sparse, stale
// workload serves a drifted-to query family badly; streaming that family's
// execution feedback through the adaptation loop grows the pool, retrains
// and promotes new model generations, and afterwards
//
//  1. the adaptive deployment's median q-error on unseen probes of the new
//     workload beats the frozen deployment (same seed model, same seed
//     pool, no feedback) — the end-to-end win of closing the loop, and
//  2. the promoted model itself beats the frozen model on the §3.3
//     validation metric (mean containment-rate q-error) over held-out
//     probe/pool pairs — the model improvement isolated from pool growth.
func TestAdaptationImprovesDriftedModel(t *testing.T) {
	ctx := context.Background()
	sys, model, p := adaptFixture(t)
	ae := sys.AdaptiveEstimator(model, p,
		WithRetrainInterval(-1), // the test drives retraining explicitly
		WithRetrainEpochs(16),
		WithFeedbackPairs(8),
		WithFeedbackBuffer(512),
	)
	defer ae.Close()

	// The frozen counterfactual: same seed model, an identically seeded
	// pool, no feedback ever.
	frozenPool := sys.NewQueriesPool()
	if err := sys.SeedPool(ctx, frozenPool, 30, 11); err != nil {
		t.Fatal(err)
	}
	frozen := sys.CardinalityEstimator(model, frozenPool)
	defer frozen.Close()

	// Feedback and probes draw from the drifted-to family with disjoint
	// parameters (adaptation must generalize, not memorize the probes).
	feedback := driftedWorkload(t, sys, 0, 60)
	probes := driftedWorkload(t, sys, 1, 40)
	seen := make(map[string]bool, len(feedback))
	for _, lq := range feedback {
		seen[lq.Q.Key()] = true
	}
	kept := probes[:0]
	for _, lq := range probes {
		if !seen[lq.Q.Key()] {
			kept = append(kept, lq)
		}
	}
	probes = kept

	// Stream execution feedback in rounds, retraining between them.
	rounds := 2
	per := len(feedback) / rounds
	for r := 0; r < rounds; r++ {
		for _, lq := range feedback[r*per : (r+1)*per] {
			if _, err := ae.RecordFeedbackQuery(ctx, lq.Q, lq.Card); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := ae.Retrain(ctx); err != nil {
			t.Fatal(err)
		}
	}
	st := ae.AdaptationStats()
	if st.Trainer.Promotions == 0 {
		t.Fatalf("no generation was promoted: %+v", st.Trainer)
	}
	if got := ae.ModelGeneration(); got != st.Trainer.Promotions+1 {
		t.Fatalf("generation = %d, promotions = %d", got, st.Trainer.Promotions)
	}
	if st.Collector.Drained == 0 || st.Drift.QError.Total == 0 {
		t.Fatalf("loop counters never moved: %+v", st)
	}

	// (1) End-to-end: adaptive deployment vs frozen deployment.
	frozenMed := medianQError(t, frozen, probes)
	adaptedMed := medianQError(t, ae.CardinalityEstimator, probes)
	t.Logf("median card q-error on the drifted workload: frozen deployment %.3f, adaptive %.3f (gen %d, %d promotions)",
		frozenMed, adaptedMed, ae.ModelGeneration(), st.Trainer.Promotions)
	if adaptedMed >= frozenMed {
		t.Fatalf("adaptation must improve the deployment: frozen median %.3f, adaptive %.3f",
			frozenMed, adaptedMed)
	}

	// (2) Model-isolated: mean rate q-error over held-out probe/pool pairs
	// (the §3.3 validation metric the promotion gate optimizes).
	var rp []workload.Pair
	for _, lq := range probes {
		if len(rp) >= 160 {
			break
		}
		for _, e := range p.Matching(lq.Q) {
			if e.Card > 0 && e.Q.Key() != lq.Q.Key() {
				rp = append(rp, workload.Pair{Q1: e.Q, Q2: lq.Q}, workload.Pair{Q1: lq.Q, Q2: e.Q})
				break // one partner per probe side keeps labeling cheap
			}
		}
	}
	labeled, err := workload.LabelPairs(sys.exec, rp, 0)
	if err != nil {
		t.Fatal(err)
	}
	qpairs := make([][2]Query, len(labeled))
	for i, lp := range labeled {
		qpairs[i] = [2]Query{lp.Q1, lp.Q2}
	}
	frozenRates, err := model.EstimateContainmentBatch(ctx, qpairs)
	if err != nil {
		t.Fatal(err)
	}
	promotedRates, err := ae.box.Current().Rates.EstimateRatesCtx(ctx, qpairs)
	if err != nil {
		t.Fatal(err)
	}
	var frozenRateQ, promotedRateQ float64
	for i, lp := range labeled {
		frozenRateQ += metrics.RateQError(lp.Rate, frozenRates[i])
		promotedRateQ += metrics.RateQError(lp.Rate, promotedRates[i])
	}
	frozenRateQ /= float64(len(labeled))
	promotedRateQ /= float64(len(labeled))
	t.Logf("mean rate q-error on held-out pairs: frozen model %.2f, promoted model %.2f", frozenRateQ, promotedRateQ)
	if promotedRateQ >= frozenRateQ {
		t.Fatalf("the promoted model must improve the validation metric: frozen %.2f, promoted %.2f",
			frozenRateQ, promotedRateQ)
	}
}

// TestServingNeverBlocksOnRetraining pins the no-blocking property:
// estimates issued WHILE a retrain cycle runs all complete successfully —
// the trainer works on a clone and publishes via one atomic store, so the
// hot path has nothing to wait on.
func TestServingNeverBlocksOnRetraining(t *testing.T) {
	ctx := context.Background()
	sys, model, p := adaptFixture(t)
	ae := sys.AdaptiveEstimator(model, p,
		WithRetrainInterval(-1), WithRetrainEpochs(4), WithFeedbackPairs(4))
	defer ae.Close()

	for _, lq := range labeledWorkload(t, sys, 31, 24) {
		if _, err := ae.RecordFeedbackQuery(ctx, lq.Q, lq.Card); err != nil {
			t.Fatal(err)
		}
	}
	probe, err := sys.ParseQuery("SELECT * FROM title WHERE title.production_year > 1960")
	if err != nil {
		t.Fatal(err)
	}

	retrained := make(chan error, 1)
	go func() {
		_, err := ae.Retrain(ctx)
		retrained <- err
	}()
	served := 0
	deadline := time.After(60 * time.Second)
	for done := false; !done; {
		select {
		case err := <-retrained:
			if err != nil {
				t.Fatal(err)
			}
			done = true
		case <-deadline:
			t.Fatal("retrain never finished")
		default:
			if _, err := ae.EstimateCardinality(ctx, probe); err != nil {
				t.Fatal(err)
			}
			served++
		}
	}
	if served == 0 {
		t.Fatal("no estimate was served during retraining")
	}
	t.Logf("served %d estimates during one retrain cycle", served)
}

// TestDriftTriggerKicksEarlyRetrain wires the drift monitor end to end:
// feedback whose truths disagree wildly with the live estimates trips the
// windowed threshold and the background trainer retrains without waiting
// for its schedule.
func TestDriftTriggerKicksEarlyRetrain(t *testing.T) {
	ctx := context.Background()
	sys, model, p := adaptFixture(t)
	ae := sys.AdaptiveEstimator(model, p,
		WithRetrainInterval(-1), // no schedule: only the drift kick can retrain
		WithRetrainEpochs(1),
		WithFeedbackPairs(2),
		WithPromoteTolerance(100),
		WithDriftTrigger(1.05, 8), // trip almost immediately on a bad model
	)
	defer ae.Close()

	// Stream real feedback; the under-trained model's estimates are far
	// enough off that the windowed median q-error exceeds the threshold.
	for i, lq := range labeledWorkload(t, sys, 37, 40) {
		if _, err := ae.RecordFeedbackQuery(ctx, lq.Q, lq.Card); err != nil {
			t.Fatal(err)
		}
		if ae.AdaptationStats().Drift.Trips > 0 {
			t.Logf("drift tripped after %d feedback records", i+1)
			break
		}
	}
	st := ae.AdaptationStats()
	if st.Drift.Trips == 0 {
		t.Fatalf("drift never tripped: %+v", st.Drift)
	}
	// The kick reaches the background loop: a retrain runs with no
	// scheduled interval configured.
	deadline := time.After(60 * time.Second)
	for ae.AdaptationStats().Trainer.Retrains == 0 {
		select {
		case <-deadline:
			t.Fatalf("drift kick never retrained: %+v", ae.AdaptationStats().Trainer)
		case <-time.After(20 * time.Millisecond):
		}
	}
	if got := ae.AdaptationStats().Trainer.DriftRetrains; got == 0 {
		t.Errorf("drift retrains = %d, want > 0", got)
	}
}
