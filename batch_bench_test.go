package crn

// Benchmarks for the serving hot path: EstimateCardinalityBatch against a
// loop of single EstimateCardinality calls on the same 64-query workload.
// The batch call encodes each distinct query once, pushes the recurring
// pool entries through the CRN set modules once per call instead of once
// per probe, and runs the pair head matrix-batched — the amortization that
// pays for batched serving. Compare with:
//
//	go test -bench 'Cardinality(Batch|SingleLoop)64' -benchtime 5x
//
// ns/op covers the whole 64-query workload in both benchmarks, so the
// ratio of the two numbers is the batch speedup.

import (
	"context"
	"sync"
	"testing"

	"crn/internal/workload"
)

const batchBenchQueries = 64

var (
	batchOnce    sync.Once
	batchEst     *CardinalityEstimator
	batchQueries []Query
	batchErr     error

	// Shared with parallel_bench_test.go, which builds the coalescing
	// serving configuration over the same trained system and pool.
	batchSys   *System
	batchModel *ContainmentModel
	batchPool  *QueriesPool
)

func batchBenchEnv(b *testing.B) (*CardinalityEstimator, []Query) {
	b.Helper()
	batchOnce.Do(func() {
		ctx := context.Background()
		sys, err := OpenSynthetic(ctx, WithTitles(800), WithDataSeed(7))
		if err != nil {
			batchErr = err
			return
		}
		mcfg := DefaultModelConfig()
		mcfg.Hidden = 16
		mcfg.Epochs = 4
		mcfg.Patience = 2
		model, err := sys.TrainContainmentModel(ctx,
			WithPairs(500), WithSeed(3), WithModelConfig(mcfg))
		if err != nil {
			batchErr = err
			return
		}
		p := sys.NewQueriesPool()
		if err := sys.SeedPool(ctx, p, 120, 11); err != nil {
			batchErr = err
			return
		}
		base, err := sys.AnalyzeBaseline()
		if err != nil {
			batchErr = err
			return
		}
		batchEst = sys.CardinalityEstimator(model, p, WithFallback(base))
		batchSys, batchModel, batchPool = sys, model, p

		// A mixed 0-2 join workload, the distribution the pool covers.
		gen := workload.NewGenerator(sys.Schema(), sys.DB(), 17)
		qs, err := gen.QueriesWithJoinDistribution(map[int]int{0: 22, 1: 21, 2: 21})
		if err != nil {
			batchErr = err
			return
		}
		batchQueries = qs[:batchBenchQueries]

		// One warm-up pass so both benchmarks measure steady-state serving
		// (executor memoization populated, allocator warmed).
		if _, err := batchEst.EstimateCardinalityBatch(ctx, batchQueries); err != nil {
			batchErr = err
		}
	})
	if batchErr != nil {
		b.Fatal(batchErr)
	}
	return batchEst, batchQueries
}

// BenchmarkEstimateCardinalityBatch64 estimates 64 queries per iteration
// with one batched call.
func BenchmarkEstimateCardinalityBatch64(b *testing.B) {
	est, queries := batchBenchEnv(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.EstimateCardinalityBatch(ctx, queries); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(queries)), "queries/op")
}

// BenchmarkEstimateCardinalitySingleLoop64 estimates the same 64 queries
// per iteration with one call each — the pre-batch serving pattern.
func BenchmarkEstimateCardinalitySingleLoop64(b *testing.B) {
	est, queries := batchBenchEnv(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			if _, err := est.EstimateCardinality(ctx, q); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(queries)), "queries/op")
}
