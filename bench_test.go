package crn

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §3 for the experiment index). All benchmarks
// share one trained environment, built lazily on first use at the Small
// scale; each benchmark iteration re-runs its experiment's predictions from
// scratch (the memoization cache is reset), so ns/op reflects honest
// end-to-end evaluation cost. Headline q-errors are attached as custom
// benchmark metrics.
//
// Run a single experiment with e.g.
//
//	go test -bench BenchmarkTable07 -benchtime 1x
//
// and the whole suite with `go test -bench . -benchtime 1x`.

import (
	"strconv"
	"sync"
	"testing"

	"crn/internal/experiments"
	"crn/internal/metrics"
)

var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
	benchErr  error
)

func benchEnvironment(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() {
		// BenchConfig keeps the full suite to minutes; the headline
		// reproduction numbers come from `cmd/repro -scale small`.
		benchEnv, benchErr = experiments.Build(experiments.BenchConfig(), nil)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchEnv
}

// runExperiment executes one experiment per iteration and reports its
// headline metrics (the mean and median q-error of the last table row,
// which by construction is the paper's proposed model).
func runExperiment(b *testing.B, id string) {
	env := benchEnvironment(b)
	b.ResetTimer()
	var last experiments.Result
	for i := 0; i < b.N; i++ {
		experiments.ResetCache()
		r, err := experiments.Run(env, id, nil)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.StopTimer()
	reportHeadline(b, last)
}

// reportHeadline attaches the final row's summary columns as custom metrics
// when they parse as numbers (the error tables all do).
func reportHeadline(b *testing.B, r experiments.Result) {
	if len(r.Table.Rows) == 0 {
		return
	}
	row := r.Table.Rows[len(r.Table.Rows)-1]
	if len(row) >= 8 { // model, 50th, ..., max, mean layout
		if v, err := strconv.ParseFloat(row[1], 64); err == nil {
			b.ReportMetric(v, "q50")
		}
		if v, err := strconv.ParseFloat(row[7], 64); err == nil {
			b.ReportMetric(v, "qmean")
		}
	}
}

// --- One benchmark per paper artifact --------------------------------------

func BenchmarkTable02_JoinDistributionCnt(b *testing.B)  { runExperiment(b, "table2") }
func BenchmarkFigure04_Convergence(b *testing.B)         { runExperiment(b, "fig4") }
func BenchmarkTable03_ContainmentCntTest1(b *testing.B)  { runExperiment(b, "table3") }
func BenchmarkFigure05_BoxesCntTest1(b *testing.B)       { runExperiment(b, "fig5") }
func BenchmarkTable04_ContainmentCntTest2(b *testing.B)  { runExperiment(b, "table4") }
func BenchmarkFigure06_BoxesCntTest2(b *testing.B)       { runExperiment(b, "fig6") }
func BenchmarkTable05_JoinDistributionCrd(b *testing.B)  { runExperiment(b, "table5") }
func BenchmarkTable06_CardinalityCrdTest1(b *testing.B)  { runExperiment(b, "table6") }
func BenchmarkFigure09_BoxesCrdTest1(b *testing.B)       { runExperiment(b, "fig9") }
func BenchmarkTable07_CardinalityCrdTest2(b *testing.B)  { runExperiment(b, "table7") }
func BenchmarkFigure10_BoxesCrdTest2(b *testing.B)       { runExperiment(b, "fig10") }
func BenchmarkTable08_CardinalityHighJoins(b *testing.B) { runExperiment(b, "table8") }
func BenchmarkTable09_PerJoinBreakdown(b *testing.B)     { runExperiment(b, "table9") }
func BenchmarkFigure11_PerJoinMedians(b *testing.B)      { runExperiment(b, "fig11") }
func BenchmarkTable10_ScaleWorkload(b *testing.B)        { runExperiment(b, "table10") }
func BenchmarkFigure12_BoxesScale(b *testing.B)          { runExperiment(b, "fig12") }
func BenchmarkFigure13_AllModels(b *testing.B)           { runExperiment(b, "fig13") }
func BenchmarkTable11_ImprovedPostgres(b *testing.B)     { runExperiment(b, "table11") }
func BenchmarkTable12_ImprovedMSCN(b *testing.B)         { runExperiment(b, "table12") }
func BenchmarkTable13_ImprovedVsCRN(b *testing.B)        { runExperiment(b, "table13") }
func BenchmarkTable14_PoolSizeSweep(b *testing.B)        { runExperiment(b, "table14") }
func BenchmarkTable15_PredictionTime(b *testing.B)       { runExperiment(b, "table15") }

// Ablation benches: the design choices DESIGN.md calls out.

func BenchmarkTopKCandidateSweep(b *testing.B)    { runExperiment(b, "topk") }
func BenchmarkAblationFinalFunction(b *testing.B) { runExperiment(b, "ablation_final") }
func BenchmarkAblationEpsilonGuard(b *testing.B)  { runExperiment(b, "ablation_eps") }
func BenchmarkAblationPoolAnchors(b *testing.B)   { runExperiment(b, "ablation_anchor") }
func BenchmarkAblationWorkers(b *testing.B)       { runExperiment(b, "ablation_workers") }
func BenchmarkAblationOracleRates(b *testing.B)   { runExperiment(b, "ablation_oracle") }
func BenchmarkPlanQuality(b *testing.B)           { runExperiment(b, "planquality") }
func BenchmarkSamplingBaselines(b *testing.B)     { runExperiment(b, "baselines") }

// BenchmarkFigure03_HiddenSizeSweep retrains the CRN at a few hidden sizes
// per iteration (the §3.4 hyperparameter search); it is the most expensive
// benchmark in the suite.
func BenchmarkFigure03_HiddenSizeSweep(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure3(env, []int{16, 32}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCRN_TrainingCosts reproduces §3.5's cost accounting: epoch time,
// prediction latency, parameter count, serialized size.
func BenchmarkCRN_TrainingCosts(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	var last experiments.Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Costs(env)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.StopTimer()
	_ = last
}

// BenchmarkContainmentPrediction measures the paper's §3.5.2 single-pair
// prediction latency.
func BenchmarkContainmentPrediction(b *testing.B) {
	env := benchEnvironment(b)
	pairs := env.ValPairs
	if len(pairs) == 0 {
		b.Skip("no validation pairs")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lp := pairs[i%len(pairs)]
		if _, err := env.CRNRates.EstimateRate(lp.Q1, lp.Q2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCnt2CrdPrediction measures end-to-end pool-based cardinality
// estimation latency for a single query (§7.4).
func BenchmarkCnt2CrdPrediction(b *testing.B) {
	env := benchEnvironment(b)
	est := env.Cnt2CrdCRN()
	queries := env.CrdTest2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lq := queries[i%len(queries)]
		if _, err := est.EstimateCard(lq.Q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrueCardinality measures the exact executor, the ground-truth
// substrate every label depends on.
func BenchmarkTrueCardinality(b *testing.B) {
	env := benchEnvironment(b)
	queries := env.CrdTest2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lq := queries[i%len(queries)]
		if _, err := env.Exec.Cardinality(lq.Q); err != nil {
			b.Fatal(err)
		}
	}
}

// Sanity guard: percentile plumbing used by every benchmark table.
func BenchmarkSummarize(b *testing.B) {
	errs := make([]float64, 1200)
	for i := range errs {
		errs[i] = 1 + float64(i%97)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = metrics.Summarize(errs)
	}
}
