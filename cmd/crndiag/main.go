// Command crndiag explains pool-based cardinality estimates: it builds a
// reduced experiment environment, evaluates Cnt2Crd(CRN) on the crd_test2
// workload, and for the worst-estimated queries prints the per-pool-entry
// contributions — estimated vs true x_rate and y_rate, the old query's
// cardinality, and the resulting per-entry estimate. Use it to attribute
// tail errors to specific containment predictions.
//
// Usage:
//
//	crndiag [-titles 2000] [-pairs 6000] [-worst 8] [-entries 5]
//
// With -kernels it instead prints the inner-loop kernel set package nn
// selected for this host ("avx2+fma" or "generic") and exits — used by
// scripts/bench.sh to decide whether the SIMD kernel gate applies.
//
// With -watch it instead becomes a terminal dashboard over a running
// crnserve: it polls the server's /metrics exposition (-metrics URL) every
// -interval and renders QPS, per-stage latency quantiles, cache/index hit
// rates, breaker state, and the live per-arm q-error distributions. -n
// bounds the number of frames (0: poll forever):
//
//	crndiag -watch -metrics http://localhost:8080/metrics -interval 2s
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"crn/internal/experiments"
	"crn/internal/metrics"
	"crn/internal/nn"
	"crn/internal/query"
)

func main() {
	titles := flag.Int("titles", 2000, "database size")
	pairs := flag.Int("pairs", 6000, "training pairs")
	epochs := flag.Int("epochs", 16, "CRN training epochs")
	worst := flag.Int("worst", 8, "how many worst queries to explain")
	entries := flag.Int("entries", 5, "pool entries to dump per query")
	kernels := flag.Bool("kernels", false, "print the selected nn kernel ISA and exit")
	watch := flag.Bool("watch", false, "poll a crnserve /metrics endpoint and render a terminal dashboard")
	metricsURL := flag.String("metrics", "http://localhost:8080/metrics", "metrics endpoint polled by -watch")
	interval := flag.Duration("interval", 2*time.Second, "poll interval of -watch")
	frames := flag.Int("n", 0, "frames to render before exiting under -watch (0: forever)")
	flag.Parse()

	if *kernels {
		fmt.Println(nn.KernelISA())
		return
	}
	if *watch {
		if err := watchLoop(*metricsURL, *interval, *frames, os.Stdout); err != nil {
			fail("watch: %v", err)
		}
		return
	}

	cfg := experiments.SmallConfig()
	cfg.DBTitles = *titles
	cfg.TrainPairs = *pairs
	cfg.CRN.Epochs = *epochs
	cfg.MSCN.Epochs = *epochs
	log := func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	env, err := experiments.Build(cfg, log)
	if err != nil {
		fail("build: %v", err)
	}

	est := env.Cnt2CrdCRN()
	type scored struct {
		i    int
		qerr float64
		est  float64
	}
	var all []scored
	for i, lq := range env.CrdTest2 {
		e, err := est.EstimateCard(lq.Q)
		if err != nil {
			fail("estimate: %v", err)
		}
		all = append(all, scored{i, metrics.CardQError(float64(lq.Card), e), e})
	}
	sort.Slice(all, func(a, b int) bool { return all[a].qerr > all[b].qerr })

	for rank := 0; rank < *worst && rank < len(all); rank++ {
		s := all[rank]
		lq := env.CrdTest2[s.i]
		fmt.Printf("\n#%d q-error %s  true %d  est %.1f  joins %d\n  %s\n",
			rank+1, metrics.FormatQ(s.qerr), lq.Card, s.est, lq.Q.NumJoins(), lq.Q.SQL())
		matches := env.Pool.Matching(lq.Q)
		fmt.Printf("  pool matches: %d\n", len(matches))
		for mi, m := range matches {
			if mi >= *entries {
				fmt.Printf("  ... %d more\n", len(matches)-mi)
				break
			}
			dumpEntry(env, lq.Q, m.Q, m.Card)
		}
	}
}

func dumpEntry(env *experiments.Env, qnew, qold query.Query, oldCard int64) {
	xHat, err := env.CRNRates.EstimateRate(qold, qnew)
	if err != nil {
		fail("rate: %v", err)
	}
	yHat, err := env.CRNRates.EstimateRate(qnew, qold)
	if err != nil {
		fail("rate: %v", err)
	}
	xTrue, err := env.Exec.ContainmentRate(qold, qnew)
	if err != nil {
		fail("truth: %v", err)
	}
	yTrue, err := env.Exec.ContainmentRate(qnew, qold)
	if err != nil {
		fail("truth: %v", err)
	}
	contrib := "skipped (y<=eps)"
	if yHat > 1e-3 {
		contrib = fmt.Sprintf("%.1f", xHat/yHat*float64(oldCard))
	}
	fmt.Printf("    |Qold|=%-8d x̂=%.4f (true %.4f)  ŷ=%.4f (true %.4f)  -> %s\n",
		oldCard, xHat, xTrue, yHat, yTrue, contrib)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "crndiag: "+format+"\n", args...)
	os.Exit(1)
}
