package main

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"crn/internal/telemetry"
)

// The -watch dashboard: poll a crnserve /metrics endpoint, parse the
// Prometheus text exposition with the telemetry package's own reader, and
// render one compact frame per tick — QPS and outcome mix, per-stage
// latency quantiles, cache/index hit rates, breaker state, and the live
// per-arm q-error distributions. Rates and stage quantiles are windowed
// between consecutive polls (the first frame shows cumulative values);
// q-error is cumulative, since feedback joins arrive sparsely.

// watchStages is the render order of the stage breakdown.
var watchStages = []string{
	telemetry.StageAdmission,
	telemetry.StageCoalesceWait,
	telemetry.StageCacheLookup,
	telemetry.StageCandidateSelection,
	telemetry.StageNNForward,
	telemetry.StageFinalize,
}

// watchLoop polls url every interval and writes one frame per poll to out;
// iterations <= 0 loops forever.
func watchLoop(url string, interval time.Duration, iterations int, out io.Writer) error {
	client := &http.Client{Timeout: 10 * time.Second}
	var prev map[string]*telemetry.ParsedFamily
	var prevAt time.Time
	for i := 0; iterations <= 0 || i < iterations; i++ {
		if i > 0 {
			time.Sleep(interval)
		}
		fams, err := fetchMetrics(client, url)
		if err != nil {
			return err
		}
		now := time.Now()
		fmt.Fprint(out, renderFrame(fams, prev, now.Sub(prevAt)))
		prev, prevAt = fams, now
	}
	return nil
}

func fetchMetrics(client *http.Client, url string) (map[string]*telemetry.ParsedFamily, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return telemetry.ParseText(resp.Body)
}

// sampleOr returns the value of name{key=value} or 0.
func sampleOr(fams map[string]*telemetry.ParsedFamily, name, key, value string) float64 {
	v, _ := fams[name].Sample(key, value)
	return v
}

// counterDelta returns the windowed (or, without prev, cumulative) value
// of name{key=value}.
func counterDelta(cur, prev map[string]*telemetry.ParsedFamily, name, key, value string) float64 {
	d := sampleOr(cur, name, key, value)
	if prev != nil {
		d -= sampleOr(prev, name, key, value)
	}
	if d < 0 {
		d = 0 // counter reset (server restart): show the new epoch
	}
	return d
}

// windowHist returns the stage/latency histogram for the current window.
func windowHist(cur, prev map[string]*telemetry.ParsedFamily, name, key, value string) *telemetry.ParsedHist {
	h := cur[name].Hist(key, value)
	if h == nil {
		return nil
	}
	if p := prev[name].Hist(key, value); p != nil {
		return h.Sub(p)
	}
	return h
}

// rate renders hits/(hits+misses) as a percentage, "-" when idle.
func rate(hit, miss float64) string {
	if hit+miss == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", hit/(hit+miss)*100)
}

func breakerName(state float64) string {
	switch state {
	case 1:
		return "OPEN"
	case 2:
		return "half-open"
	default:
		return "closed"
	}
}

// renderFrame formats one dashboard frame from the current parse and the
// previous one (nil on the first poll; elapsed is then ignored).
func renderFrame(cur, prev map[string]*telemetry.ParsedFamily, elapsed time.Duration) string {
	var b strings.Builder
	const reqFam = "crn_estimate_requests_total"

	var total float64
	outcomes := map[string]float64{}
	if f := cur[reqFam]; f != nil {
		for _, s := range f.Samples {
			d := counterDelta(cur, prev, reqFam, "outcome", s.Labels["outcome"])
			outcomes[s.Labels["outcome"]] = d
			total += d
		}
	}
	window := "cumulative"
	qps := "-"
	if prev != nil && elapsed > 0 {
		window = elapsed.Round(time.Millisecond).String() + " window"
		qps = fmt.Sprintf("%.1f", total/elapsed.Seconds())
	}
	up := sampleOr(cur, "crn_process_uptime_seconds", "", "")
	fmt.Fprintf(&b, "crn %s  up %s  qps %s  breaker %s  (%s)\n",
		time.Now().Format("15:04:05"),
		(time.Duration(up) * time.Second).String(),
		qps,
		breakerName(sampleOr(cur, "crn_breaker_state", "", "")),
		window)

	keys := make([]string, 0, len(outcomes))
	for k := range outcomes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b.WriteString("  requests ")
	for _, k := range keys {
		fmt.Fprintf(&b, " %s %.0f", k, outcomes[k])
	}
	b.WriteByte('\n')

	b.WriteString("  stages µs")
	for _, stage := range watchStages {
		h := windowHist(cur, prev, "crn_estimate_stage_duration_seconds", "stage", stage)
		if h == nil || h.Count == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %s p50 %.1f p99 %.1f", stage,
			h.Quantile(0.50)*1e6, h.Quantile(0.99)*1e6)
	}
	b.WriteByte('\n')

	fmt.Fprintf(&b, "  cache rep %s hit  index %s indexed  coalesce %s avg batch\n",
		rate(counterDelta(cur, prev, "crn_repcache_lookups_total", "result", "hit"),
			counterDelta(cur, prev, "crn_repcache_lookups_total", "result", "miss")),
		rate(counterDelta(cur, prev, "crn_pool_selections_total", "path", "indexed"),
			counterDelta(cur, prev, "crn_pool_selections_total", "path", "fallback")),
		avgBatch(cur, prev))

	b.WriteString("  qerror  ")
	for _, arm := range []string{"crn", "fallback"} {
		h := cur["crn_accuracy_qerror"].Hist("arm", arm)
		if h == nil || h.Count == 0 {
			fmt.Fprintf(&b, " %s -", arm)
			continue
		}
		fmt.Fprintf(&b, " %s p50 %.2f p95 %.2f (n=%d)", arm,
			h.Quantile(0.50), h.Quantile(0.95), h.Count)
	}
	b.WriteString("\n\n")
	return b.String()
}

// avgBatch renders the mean coalesced batch size over the window, "-"
// when no batch ran.
func avgBatch(cur, prev map[string]*telemetry.ParsedFamily) string {
	h := windowHist(cur, prev, "crn_coalesce_batch_size", "", "")
	if h == nil || h.Count == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", h.Sum/float64(h.Count))
}
