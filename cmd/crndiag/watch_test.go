package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"crn/internal/telemetry"
)

// fakeExposition builds a minimal but lint-clean exposition with the
// families -watch consumes, scaled by n so consecutive polls see moving
// counters.
func fakeExposition(n uint64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# HELP crn_estimate_requests_total Estimate requests by outcome.\n# TYPE crn_estimate_requests_total counter\n")
	fmt.Fprintf(&b, "crn_estimate_requests_total{outcome=\"ok\"} %d\n", 100*n)
	fmt.Fprintf(&b, "crn_estimate_requests_total{outcome=\"fallback\"} %d\n", 2*n)
	fmt.Fprintf(&b, "# HELP crn_process_uptime_seconds Uptime.\n# TYPE crn_process_uptime_seconds gauge\ncrn_process_uptime_seconds %d\n", 60*n)
	fmt.Fprintf(&b, "# HELP crn_breaker_state Breaker state.\n# TYPE crn_breaker_state gauge\ncrn_breaker_state 0\n")
	fmt.Fprintf(&b, "# HELP crn_estimate_stage_duration_seconds Stage spans.\n# TYPE crn_estimate_stage_duration_seconds histogram\n")
	for _, stage := range []string{"admission", "nn_forward"} {
		fmt.Fprintf(&b, "crn_estimate_stage_duration_seconds_bucket{stage=%q,le=\"0.001\"} %d\n", stage, 90*n)
		fmt.Fprintf(&b, "crn_estimate_stage_duration_seconds_bucket{stage=%q,le=\"+Inf\"} %d\n", stage, 100*n)
		fmt.Fprintf(&b, "crn_estimate_stage_duration_seconds_sum{stage=%q} %f\n", stage, float64(n)/10)
		fmt.Fprintf(&b, "crn_estimate_stage_duration_seconds_count{stage=%q} %d\n", stage, 100*n)
	}
	fmt.Fprintf(&b, "# HELP crn_repcache_lookups_total Cache lookups.\n# TYPE crn_repcache_lookups_total counter\n")
	fmt.Fprintf(&b, "crn_repcache_lookups_total{result=\"hit\"} %d\ncrn_repcache_lookups_total{result=\"miss\"} %d\n", 75*n, 25*n)
	fmt.Fprintf(&b, "# HELP crn_accuracy_qerror Live q-error.\n# TYPE crn_accuracy_qerror histogram\n")
	fmt.Fprintf(&b, "crn_accuracy_qerror_bucket{arm=\"crn\",le=\"2\"} %d\n", 8*n)
	fmt.Fprintf(&b, "crn_accuracy_qerror_bucket{arm=\"crn\",le=\"+Inf\"} %d\n", 10*n)
	fmt.Fprintf(&b, "crn_accuracy_qerror_sum{arm=\"crn\"} %d\ncrn_accuracy_qerror_count{arm=\"crn\"} %d\n", 20*n, 10*n)
	return b.String()
}

// TestWatchLoopFrames: two -watch frames against a canned exposition — the
// first renders cumulative values, the second a windowed delta with a QPS
// figure, and broken-pipe-free termination after -n frames.
func TestWatchLoopFrames(t *testing.T) {
	var polls atomic.Uint64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := polls.Add(1)
		w.Header().Set("Content-Type", telemetry.ExpositionContentType)
		fmt.Fprint(w, fakeExposition(n))
	}))
	defer ts.Close()

	var out strings.Builder
	if err := watchLoop(ts.URL, 0, 2, &out); err != nil {
		t.Fatal(err)
	}
	frames := strings.Split(strings.TrimRight(out.String(), "\n"), "\n\n")
	if len(frames) != 2 {
		t.Fatalf("got %d frames, want 2:\n%s", len(frames), out.String())
	}
	if !strings.Contains(frames[0], "(cumulative)") {
		t.Errorf("first frame not cumulative:\n%s", frames[0])
	}
	if !strings.Contains(frames[1], "window)") || !strings.Contains(frames[1], "qps ") {
		t.Errorf("second frame not windowed:\n%s", frames[1])
	}
	for _, want := range []string{"breaker closed", "ok 100", "nn_forward p50", "rep 75.0% hit", "crn p50"} {
		if !strings.Contains(frames[1], want) {
			t.Errorf("second frame missing %q:\n%s", want, frames[1])
		}
	}
}

// TestWatchLoopErrorStatus: a non-200 metrics endpoint fails the loop with
// a useful error rather than rendering garbage.
func TestWatchLoopErrorStatus(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	var out strings.Builder
	err := watchLoop(ts.URL, 0, 1, &out)
	if err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("err = %v, want status 503 error", err)
	}
}
