// Command crneval evaluates a trained CRN model interactively: containment
// rates between two queries, or pool-based cardinality estimates for one
// query, always alongside the exact ground truth from the executor.
//
// Usage:
//
//	crneval -model crn.model -q1 "SELECT * FROM title WHERE title.kind_id = 1" \
//	        -q2 "SELECT * FROM title WHERE title.kind_id < 4"
//
//	crneval -model crn.model -pool 300 \
//	        -q "SELECT * FROM title, cast_info WHERE title.id = cast_info.movie_id"
//
// The -titles/-db-seed flags must match the values used by crntrain.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"crn"
	"crn/internal/metrics"
)

func main() {
	titles := flag.Int("titles", 4000, "synthetic database size (title rows)")
	dbSeed := flag.Int64("db-seed", 1, "database generation seed")
	modelPath := flag.String("model", "crn.model", "model file from crntrain")
	q1SQL := flag.String("q1", "", "first query (containment mode)")
	q2SQL := flag.String("q2", "", "second query (containment mode)")
	qSQL := flag.String("q", "", "query (cardinality mode)")
	poolSize := flag.Int("pool", 300, "queries-pool size (cardinality mode)")
	poolSeed := flag.Int64("pool-seed", 7, "queries-pool generation seed")
	flag.Parse()

	ctx := context.Background()
	sys, err := crn.OpenSynthetic(ctx, crn.WithTitles(*titles), crn.WithDataSeed(*dbSeed))
	if err != nil {
		fail("open database: %v", err)
	}
	blob, err := os.ReadFile(*modelPath)
	if err != nil {
		fail("read model: %v", err)
	}
	model, err := sys.LoadContainmentModel(blob)
	if err != nil {
		fail("load model: %v", err)
	}

	switch {
	case *q1SQL != "" && *q2SQL != "":
		q1, err := sys.ParseQuery(*q1SQL)
		if err != nil {
			fail("parse -q1: %v", err)
		}
		q2, err := sys.ParseQuery(*q2SQL)
		if err != nil {
			fail("parse -q2: %v", err)
		}
		est, err := model.EstimateContainment(ctx, q1, q2)
		if err != nil {
			fail("estimate: %v", err)
		}
		truth, err := sys.TrueContainment(ctx, q1, q2)
		if err != nil {
			fail("execute: %v", err)
		}
		fmt.Printf("Q1 ⊂%% Q2 estimated: %6.2f%%\n", est*100)
		fmt.Printf("Q1 ⊂%% Q2 actual:    %6.2f%%\n", truth*100)
		fmt.Printf("q-error:            %s\n", metrics.FormatQ(metrics.RateQError(truth, est)))
	case *qSQL != "":
		q, err := sys.ParseQuery(*qSQL)
		if err != nil {
			fail("parse -q: %v", err)
		}
		p := sys.NewQueriesPool()
		if err := sys.SeedPool(ctx, p, *poolSize, *poolSeed); err != nil {
			fail("seed pool: %v", err)
		}
		base, err := sys.AnalyzeBaseline()
		if err != nil {
			fail("analyze: %v", err)
		}
		est := sys.CardinalityEstimator(model, p, crn.WithFallback(base))
		got, err := est.EstimateCardinality(ctx, q)
		if err != nil {
			fail("estimate: %v", err)
		}
		truth, err := sys.TrueCardinality(ctx, q)
		if err != nil {
			fail("execute: %v", err)
		}
		baseline, err := base.EstimateCard(q)
		if err != nil {
			fail("baseline: %v", err)
		}
		fmt.Printf("actual cardinality:        %d\n", truth)
		fmt.Printf("Cnt2Crd(CRN) estimate:     %.0f  (q-error %s)\n",
			got, metrics.FormatQ(metrics.CardQError(float64(truth), got)))
		fmt.Printf("PostgreSQL-style estimate: %.0f  (q-error %s)\n",
			baseline, metrics.FormatQ(metrics.CardQError(float64(truth), baseline)))
	default:
		fail("provide either -q1 and -q2 (containment) or -q (cardinality)")
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "crneval: "+format+"\n", args...)
	os.Exit(1)
}
