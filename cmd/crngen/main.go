// Command crngen generates labeled workloads over the synthetic database:
// containment-rate pair datasets (the paper's §3.1.2 three-step
// construction), cardinality query workloads (§6.1), and queries-pool
// contents (§6.2). Output is tab-separated SQL with labels, suitable for
// training or inspection.
//
// Usage:
//
//	crngen -kind pairs  -n 1000 -dist 0:400,1:300,2:300 > pairs.tsv
//	crngen -kind queries -n 450 -dist 0:150,1:150,2:150 > queries.tsv
//	crngen -kind pool   -n 300 > pool.tsv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"crn/internal/datagen"
	"crn/internal/exec"
	"crn/internal/query"
	"crn/internal/schema"
	"crn/internal/workload"
)

func main() {
	titles := flag.Int("titles", 4000, "synthetic database size (title rows)")
	dbSeed := flag.Int64("db-seed", 1, "database generation seed")
	genSeed := flag.Int64("seed", 42, "workload generation seed")
	kind := flag.String("kind", "pairs", "what to generate: pairs, queries or pool")
	n := flag.Int("n", 100, "number of pairs/queries")
	dist := flag.String("dist", "", "join distribution like 0:40,1:30,2:30 (default: uniform 0-2)")
	scaleGen := flag.Bool("scale-generator", false, "use the scale workload's generator (§6.1)")
	unlabeled := flag.Bool("unlabeled", false, "skip executing queries for labels")
	flag.Parse()

	dgCfg := datagen.DefaultConfig()
	dgCfg.Titles = *titles
	dgCfg.Seed = *dbSeed
	d, err := datagen.Generate(dgCfg)
	if err != nil {
		fail("generate database: %v", err)
	}
	ex, err := exec.New(d)
	if err != nil {
		fail("executor: %v", err)
	}
	s := schema.IMDB()
	var gen *workload.Generator
	if *scaleGen {
		gen = workload.NewScaleGenerator(s, d, *genSeed)
	} else {
		gen = workload.NewGenerator(s, d, *genSeed)
	}

	distMap, err := parseDist(*dist, *n)
	if err != nil {
		fail("parse -dist: %v", err)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	switch *kind {
	case "pairs":
		pairs, err := gen.PairsWithJoinDistribution(distMap)
		if err != nil {
			fail("generate pairs: %v", err)
		}
		if *unlabeled {
			for _, p := range pairs {
				fmt.Fprintf(w, "%s\t%s\n", p.Q1.SQL(), p.Q2.SQL())
			}
			return
		}
		labeled, err := workload.LabelPairs(ex, pairs, 0)
		if err != nil {
			fail("label pairs: %v", err)
		}
		for _, lp := range labeled {
			fmt.Fprintf(w, "%s\t%s\t%.6f\n", lp.Q1.SQL(), lp.Q2.SQL(), lp.Rate)
		}
	case "queries":
		qs, err := gen.QueriesWithJoinDistribution(distMap)
		if err != nil {
			fail("generate queries: %v", err)
		}
		emitQueries(w, ex, qs, *unlabeled)
	case "pool":
		qs, err := gen.PoolQueries(*n)
		if err != nil {
			fail("generate pool: %v", err)
		}
		emitQueries(w, ex, qs, *unlabeled)
	default:
		fail("unknown -kind %q (pairs|queries|pool)", *kind)
	}
}

func emitQueries(w *bufio.Writer, ex *exec.Executor, qs []query.Query, unlabeled bool) {
	if unlabeled {
		for _, q := range qs {
			fmt.Fprintf(w, "%s\n", q.SQL())
		}
		return
	}
	labeled, err := workload.LabelQueries(ex, qs, 0)
	if err != nil {
		fail("label queries: %v", err)
	}
	for _, lq := range labeled {
		fmt.Fprintf(w, "%s\t%d\n", lq.Q.SQL(), lq.Card)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "crngen: "+format+"\n", args...)
	os.Exit(1)
}

func parseDist(spec string, n int) (map[int]int, error) {
	if spec == "" {
		return workload.CntTest1Dist(n), nil
	}
	out := make(map[int]int)
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad entry %q", part)
		}
		j, err := strconv.Atoi(kv[0])
		if err != nil {
			return nil, err
		}
		c, err := strconv.Atoi(kv[1])
		if err != nil {
			return nil, err
		}
		out[j] = c
	}
	return out, nil
}
