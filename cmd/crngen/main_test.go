package main

import "testing"

func TestParseDist(t *testing.T) {
	d, err := parseDist("0:40,1:30, 2:30", 100)
	if err != nil {
		t.Fatal(err)
	}
	if d[0] != 40 || d[1] != 30 || d[2] != 30 {
		t.Errorf("dist = %v", d)
	}
	// Empty spec defaults to the cnt_test1 distribution.
	d, err = parseDist("", 300)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range d {
		total += n
	}
	if total != 300 {
		t.Errorf("default dist total = %d", total)
	}
	for _, bad := range []string{"0-40", "x:1", "0:y"} {
		if _, err := parseDist(bad, 10); err == nil {
			t.Errorf("%q should fail", bad)
		}
	}
}
