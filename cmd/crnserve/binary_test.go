package main

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"crn/internal/wire"
)

func postBinary(t *testing.T, url string, frame []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, wire.ContentType, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestBinaryBatchMatchesJSON pins the tentpole contract: the binary protocol
// returns bit-identical cardinalities to the JSON path for the same batch.
func TestBinaryBatchMatchesJSON(t *testing.T) {
	ts := httptest.NewServer(testServer(t).handler())
	defer ts.Close()

	queries := []string{
		"SELECT * FROM title WHERE title.production_year > 1980",
		"SELECT * FROM title WHERE title.kind_id = 2",
		"SELECT * FROM title",
	}

	_, jsonBody := postJSON(t, ts.URL+"/estimate/batch", map[string]any{"queries": queries})
	var jr batchResponse
	if err := json.Unmarshal(jsonBody, &jr); err != nil {
		t.Fatal(err)
	}

	status, body := postBinary(t, ts.URL+"/estimate/batch", wire.AppendRequest(nil, queries))
	if status != http.StatusOK {
		t.Fatalf("binary batch: status %d body %s", status, body)
	}
	cards, err := wire.DecodeResponse(body)
	if err != nil {
		t.Fatalf("decode response: %v", err)
	}
	if len(cards) != len(queries) {
		t.Fatalf("got %d cardinalities, want %d", len(cards), len(queries))
	}
	for i := range cards {
		if math.Float64bits(cards[i]) != math.Float64bits(jr.Cardinalities[i]) {
			t.Errorf("query %d: binary %v != json %v", i, cards[i], jr.Cardinalities[i])
		}
	}
}

func TestBinaryBatchErrors(t *testing.T) {
	srv := testServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	// Malformed frame.
	if status, _ := postBinary(t, ts.URL+"/estimate/batch", []byte{0x42, 1, 2}); status != http.StatusBadRequest {
		t.Errorf("malformed frame: status %d", status)
	}
	// Empty batch.
	if status, _ := postBinary(t, ts.URL+"/estimate/batch", wire.AppendRequest(nil, nil)); status != http.StatusBadRequest {
		t.Errorf("empty batch: status %d", status)
	}
	// Unparseable dialect maps through statusFor like the JSON path.
	status, body := postBinary(t, ts.URL+"/estimate/batch",
		wire.AppendRequest(nil, []string{"SELECT count(*) FROM title"}))
	if status != http.StatusBadRequest {
		t.Errorf("dialect error: status %d body %s", status, body)
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
		t.Errorf("error body not JSON: %s (%v)", body, err)
	}

	// Kill switch: binary gets 415, JSON keeps working.
	srv.binaryBatch = false
	defer func() { srv.binaryBatch = true }()
	frame := wire.AppendRequest(nil, []string{"SELECT * FROM title"})
	if status, _ := postBinary(t, ts.URL+"/estimate/batch", frame); status != http.StatusUnsupportedMediaType {
		t.Errorf("disabled: status %d, want 415", status)
	}
	resp, _ := postJSON(t, ts.URL+"/estimate/batch",
		map[string]any{"queries": []string{"SELECT * FROM title"}})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("json with binary disabled: status %d", resp.StatusCode)
	}
}

func TestHealthzWireSection(t *testing.T) {
	ts := httptest.NewServer(testServer(t).handler())
	defer ts.Close()

	queries := []string{"SELECT * FROM title WHERE title.production_year > 1985"}
	frame := wire.AppendRequest(nil, queries)
	for i := 0; i < 3; i++ {
		if status, body := postBinary(t, ts.URL+"/estimate/batch", frame); status != http.StatusOK {
			t.Fatalf("binary batch %d: status %d body %s", i, status, body)
		}
	}
	postJSON(t, ts.URL+"/estimate/batch", map[string]any{"queries": queries})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz struct {
		Wire wireSnapshot `json:"wire"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	w := hz.Wire
	if !w.BinaryEnabled {
		t.Error("binary_enabled = false")
	}
	if w.Binary.Requests < 3 || w.JSON.Requests < 1 {
		t.Errorf("request counts: binary=%d json=%d", w.Binary.Requests, w.JSON.Requests)
	}
	if w.Binary.BytesIn < uint64(3*len(frame)) || w.Binary.BytesOut == 0 {
		t.Errorf("binary bytes: in=%d out=%d", w.Binary.BytesIn, w.Binary.BytesOut)
	}
	if w.JSON.BytesIn == 0 || w.JSON.BytesOut == 0 {
		t.Errorf("json bytes: in=%d out=%d", w.JSON.BytesIn, w.JSON.BytesOut)
	}
	// Three binary requests = six buffer gets (body + response each); after
	// the first request warmed the pool the rest must reuse.
	if w.BufferGets < 6 {
		t.Errorf("buffer gets = %d, want >= 6", w.BufferGets)
	}
	if w.BufferReuseRate <= 0 {
		t.Errorf("buffer reuse rate = %v, want > 0", w.BufferReuseRate)
	}
}
