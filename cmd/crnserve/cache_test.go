package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestRecordInvalidatesAndEstimateSeesNewEntry drives the serving-side
// cache-correctness scenario end to end: over an empty pool the estimator
// has nothing to match (422), a /record adds the first pool entry (and
// flushes the representation cache), and the very next /estimate must
// reflect that entry (200 with a cardinality).
func TestRecordInvalidatesAndEstimateSeesNewEntry(t *testing.T) {
	base := testServer(t)
	empty := base.sys.NewQueriesPool()
	srv := newServer(base.sys, base.model, empty,
		base.sys.CardinalityEstimator(base.model, empty), nil)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	probe := "SELECT * FROM title WHERE title.production_year > 1960"

	status, _, err := postJSONErr(ts.URL+"/estimate", map[string]string{"query": probe})
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("empty pool estimate: status %d, want 422", status)
	}

	status, body, err := postJSONErr(ts.URL+"/record",
		map[string]string{"query": "SELECT * FROM title WHERE title.production_year > 1950"})
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusOK {
		t.Fatalf("/record: status %d body %s", status, body)
	}

	status, body, err = postJSONErr(ts.URL+"/estimate", map[string]string{"query": probe})
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusOK {
		t.Fatalf("estimate after record: status %d body %s (new pool entry not visible)", status, body)
	}
	var er estimateResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Cardinality == nil || *er.Cardinality < 0 {
		t.Fatalf("cardinality after record = %v", er.Cardinality)
	}

	// The batch path must agree with the single path over the mutated pool.
	status, body, err = postJSONErr(ts.URL+"/estimate/batch", map[string]any{"queries": []string{probe}})
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusOK {
		t.Fatalf("/estimate/batch after record: status %d body %s", status, body)
	}
	var br batchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Cardinalities) != 1 || br.Cardinalities[0] != *er.Cardinality {
		t.Fatalf("batch %v != single %v after record", br.Cardinalities, *er.Cardinality)
	}
}

// TestHealthzReportsRepCache checks the cache counters surface on /healthz
// and move under load.
func TestHealthzReportsRepCache(t *testing.T) {
	ts := httptest.NewServer(testServer(t).handler())
	defer ts.Close()

	// Two identical batch estimates: the second should hit the cache.
	for i := 0; i < 2; i++ {
		status, body, err := postJSONErr(ts.URL+"/estimate/batch", map[string]any{"queries": []string{
			"SELECT * FROM title WHERE title.production_year > 1980",
		}})
		if err != nil {
			t.Fatal(err)
		}
		if status != http.StatusOK {
			t.Fatalf("batch %d: status %d body %s", i, status, body)
		}
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hr healthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	if hr.RepCache.Capacity == 0 {
		t.Errorf("healthz rep_cache missing: %+v", hr.RepCache)
	}
	if hr.RepCache.Hits+hr.RepCache.Misses == 0 {
		t.Errorf("rep_cache counters never moved: %+v", hr.RepCache)
	}
}
