package main

// Kill-switch and hardening coverage for the HTTP surface: liveness vs
// readiness semantics, admission-control status mapping, and the full
// kill-switch demo — disk full plus truth-oracle outage plus an
// estimate-path error storm under sustained concurrent load, during which
// crnserve must keep answering every request (fallback or shed, never a
// hang or crash) and must recover on its own once the faults clear.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"crn"
	"crn/internal/guard/failpoint"
)

// TestLivezReadyzLifecycle pins the probe split: /livez is 200 whenever the
// process serves HTTP; /readyz tracks the serving lifecycle (unready until
// startup completes, unready again once shutdown begins).
func TestLivezReadyzLifecycle(t *testing.T) {
	base := testServer(t)
	srv := newServer(base.sys, base.model, base.pool, base.est, nil)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := get("/livez"); got != http.StatusOK {
		t.Errorf("/livez before ready = %d, want 200 (liveness is process-up, not readiness)", got)
	}
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("/readyz before ready = %d, want 503", got)
	}
	srv.setReady(true)
	if got := get("/readyz"); got != http.StatusOK {
		t.Errorf("/readyz after startup = %d, want 200", got)
	}
	srv.setReady(false) // shutdown drain begins
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("/readyz during shutdown = %d, want 503", got)
	}
	if got := get("/livez"); got != http.StatusOK {
		t.Errorf("/livez during shutdown = %d, want 200", got)
	}
}

// TestOverloadMapsTo429 floods a 1-slot server: overflow must come back as
// 429 with a Retry-After header, admitted requests as 200, and the guard
// plus per-endpoint counters on /healthz must account for the shed.
func TestOverloadMapsTo429(t *testing.T) {
	t.Cleanup(failpoint.DisableAll)
	base := testServer(t)
	fb, err := base.sys.AnalyzeBaseline()
	if err != nil {
		t.Fatal(err)
	}
	est := base.sys.CardinalityEstimator(base.model, base.pool,
		crn.WithFallback(fb), crn.WithMaxInflight(1))
	srv := newServer(base.sys, base.model, base.pool, est, nil)
	srv.setReady(true)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	// Hold each admitted estimate long enough that the flood overlaps it.
	failpoint.Enable(failpoint.EstimateCards, func() error {
		time.Sleep(30 * time.Millisecond)
		return nil
	})

	body, _ := json.Marshal(map[string]string{
		"query": "SELECT * FROM title WHERE title.production_year > 1970",
	})
	const workers = 12
	type outcome struct {
		status     int
		retryAfter string
	}
	outcomes := make(chan outcome, workers)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			resp, err := http.Post(ts.URL+"/estimate", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("estimate under overload: %v", err)
				return
			}
			resp.Body.Close()
			outcomes <- outcome{resp.StatusCode, resp.Header.Get("Retry-After")}
		}()
	}
	close(start)
	wg.Wait()
	close(outcomes)

	var ok, shed int
	for o := range outcomes {
		switch o.status {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
			if o.retryAfter != "1" {
				t.Errorf("429 without Retry-After: 1 (got %q)", o.retryAfter)
			}
		default:
			t.Errorf("unexpected status %d under overload", o.status)
		}
	}
	if ok == 0 || shed == 0 {
		t.Fatalf("overload split ok=%d shed=%d, want both > 0", ok, shed)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hr healthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	if hr.Guard.Gate.MaxInflight != 1 || hr.Guard.Gate.Shed < uint64(shed) {
		t.Errorf("guard gate counters = %+v, want ceiling 1 and >= %d shed", hr.Guard.Gate, shed)
	}
	ep := hr.Endpoints["estimate"]
	if ep.Requests < workers || ep.Shed < uint64(shed) {
		t.Errorf("endpoint counters = %+v, want >= %d requests and >= %d shed", ep, workers, shed)
	}
}

// TestKillSwitch is the acceptance demo of the hardening layer: with the
// disk full (WAL append fails), the truth oracle down, and the learned
// estimate path erroring on every call, a durable adaptive crnserve under
// sustained concurrent load must answer every request terminally — 200 via
// the fallback, 429 via admission control, never a hang, crash, or 500 —
// flip durability_degraded on, and after the faults clear recover to full
// durability and a closed breaker on its own.
func TestKillSwitch(t *testing.T) {
	t.Cleanup(failpoint.DisableAll)
	base := testServer(t)
	ctx := context.Background()
	pool := base.sys.NewQueriesPool()
	if err := base.sys.SeedPool(ctx, pool, 10, 13); err != nil {
		t.Fatal(err)
	}
	fb, err := base.sys.AnalyzeBaseline()
	if err != nil {
		t.Fatal(err)
	}
	ae, err := base.sys.OpenAdaptiveEstimator(base.model, pool,
		crn.WithRetrainInterval(-1),
		crn.WithRetrainEpochs(1),
		crn.WithFeedbackPairs(2),
		crn.WithPromoteTolerance(10),
		crn.WithDataDir(t.TempDir()),
		crn.WithWALSync("always"),
		crn.WithFallback(fb),
		crn.WithMaxInflight(8),
		crn.WithBreaker(crn.BreakerConfig{
			Window: 16, MinSamples: 4, ErrorRate: 0.5,
			Cooldown: 50 * time.Millisecond, ProbeQuota: 2,
		}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ae.Close)
	srv := newServer(base.sys, base.model, pool, ae.CardinalityEstimator, nil)
	srv.adaptive = ae
	srv.setIngestLimit(8)
	srv.setReady(true)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	// A hang anywhere fails the test via the client deadline instead of the
	// suite timeout.
	client := &http.Client{Timeout: 10 * time.Second}
	post := func(path string, payload any) (int, error) {
		buf, err := json.Marshal(payload)
		if err != nil {
			return 0, err
		}
		resp, err := client.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			return 0, err
		}
		resp.Body.Close()
		return resp.StatusCode, nil
	}
	health := func() healthzResponse {
		t.Helper()
		resp, err := client.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var hr healthzResponse
		if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
			t.Fatal(err)
		}
		return hr
	}

	// Happy path first: the deployment serves before the faults arrive.
	if status, err := post("/estimate", map[string]string{
		"query": "SELECT * FROM title WHERE title.production_year > 1970",
	}); err != nil || status != http.StatusOK {
		t.Fatalf("pre-fault estimate: status %d err %v", status, err)
	}

	// Throw the kill switch: disk full, oracle down, learned path erroring.
	failpoint.EnableError(failpoint.WALAppend, errors.New("no space left on device"))
	failpoint.EnableError(failpoint.OracleCardinality, errors.New("oracle down"))
	failpoint.EnableError(failpoint.OracleContainment, errors.New("oracle down"))
	failpoint.EnableError(failpoint.EstimateCards, errors.New("injected estimate-path failure"))

	const workers = 6
	const perWorker = 10
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				year := 1900 + (w*perWorker+i)%100
				status, err := post("/estimate", map[string]string{
					"query": fmt.Sprintf("SELECT * FROM title WHERE title.production_year > %d", year),
				})
				if err != nil {
					t.Errorf("/estimate during outage: %v", err)
				} else if status != http.StatusOK && status != http.StatusTooManyRequests {
					t.Errorf("/estimate during outage: status %d, want 200 (fallback) or 429 (shed)", status)
				}
				status, err = post("/feedback", map[string]any{
					"query":       fmt.Sprintf("SELECT * FROM title WHERE title.production_year > %d", year),
					"cardinality": 10 + i,
				})
				if err != nil {
					t.Errorf("/feedback during outage: %v", err)
				} else if status != http.StatusOK && status != http.StatusTooManyRequests {
					t.Errorf("/feedback during outage: status %d, want 200 (degraded accept) or 429", status)
				}
			}
		}(w)
	}
	wg.Wait()

	// The deployment is visibly degraded, not broken: durability flag up,
	// breaker open (diverting to the fallback), liveness still green.
	hr := health()
	if hr.Durable == nil || !hr.Durable.Degraded {
		t.Fatalf("durability_degraded not set during outage: %+v", hr.Durable)
	}
	if hr.Guard.Breaker.Trips < 1 {
		t.Errorf("breaker never tripped during the error storm: %+v", hr.Guard.Breaker)
	}
	resp, err := client.Get(ts.URL + "/livez")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/livez during outage = %d, want 200", resp.StatusCode)
	}

	// Clear the faults: the re-probe loop re-journals staged feedback and
	// drops the degraded flag with no operator action.
	failpoint.DisableAll()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if hr = health(); hr.Durable != nil && !hr.Durable.Degraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("durability never re-upgraded after the outage: %+v", hr.Durable)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if hr.Durable.Reupgrades < 1 {
		t.Errorf("re-upgrade not recorded: %+v", hr.Durable)
	}

	// Breaker recovery: after the cooldown, healthy traffic probes the
	// primary path closed and /readyz goes green again.
	time.Sleep(60 * time.Millisecond)
	for i := 0; i < 4; i++ {
		if status, err := post("/estimate", map[string]string{
			"query": "SELECT * FROM title WHERE title.production_year > 1970",
		}); err != nil || status != http.StatusOK {
			t.Fatalf("recovery estimate %d: status %d err %v", i, status, err)
		}
	}
	resp, err = client.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/readyz after recovery = %d, want 200 (%+v)", resp.StatusCode, health().Guard.Breaker)
	}
}
