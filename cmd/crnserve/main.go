// Command crnserve serves cardinality and containment estimates over HTTP —
// the paper's §5.2 deployment scenario: a DBMS continuously executes
// queries, appends them to the queries pool with their actual
// cardinalities, and answers estimation requests concurrently.
//
// At startup it opens the synthetic database, loads (or trains) a CRN
// containment model, seeds the queries pool, and listens. Endpoints:
//
//	POST /estimate        {"query": "SELECT ..."}              -> {"cardinality": 123.0}
//	POST /estimate        {"q1": "...", "q2": "..."}           -> {"containment": 0.42}
//	POST /estimate/batch  {"queries": ["...", "..."]}          -> {"cardinalities": [...], "count": 2}
//	POST /record          {"query": "SELECT ..."}              -> {"cardinality": 17, "added": true, "pool_size": 301}
//	POST /feedback        {"query": "...", "cardinality": 17}  -> {"accepted": true, "staged": 3, ...}
//	GET  /healthz                                              -> {"status": "ok", ...}
//	GET  /livez                                                -> {"status": "alive"}
//	GET  /readyz                                               -> {"status": "ready"} or 503
//	GET  /metrics                                              -> Prometheus text exposition
//
// /estimate/batch amortizes feature encoding and runs the CRN forward pass
// matrix-batched across the whole request. /record executes the query
// exactly and appends it to the pool, sharpening subsequent estimates —
// POST the queries your workload actually runs. /estimate/batch and
// containment estimates run under the request context, so a disconnecting
// client cancels that work.
//
// High-QPS clients can POST /estimate/batch with Content-Type:
// application/x-crn-batch — a length-prefixed little-endian binary frame
// protocol (format spec in the README and internal/wire) that skips JSON
// reflection entirely and runs on pooled buffers; cardinalities are
// bit-identical to the JSON path. JSON stays the default, and
// -binary-batch=false is the kill switch: binary requests then get 415
// while JSON is unaffected. /healthz reports per-codec traffic and the
// buffer reuse rate under "wire".
//
// Concurrent single-query /estimate requests are coalesced into shared
// batched passes (bit-identical results, one pool scan per batch instead of
// one per request); tune with -coalesce-batch / -coalesce-wait, observe on
// /healthz ("coalescer", "estimate_latency", "batch_latency", "rep_cache").
// A coalesced request that disconnects abandons its slot immediately, but
// the shared batch — work other callers still need — runs to completion
// (disable coalescing with -coalesce-batch 1 to get strict per-request
// cancellation back). -pprof mounts net/http/pprof under /debug/pprof/.
//
// Large pools: -max-candidates K bounds every estimate to the K most
// containment-comparable pool entries, keeping per-request latency flat as
// /record grows the pool. Bounded selection runs through the pool's inverted
// signature-class index by default — bit-identical candidates at sublinear
// cost, falling back to the linear scan on clauses with too many distinct
// signature patterns (disable with -indexed-selection=false to force the
// scan). -pool-cap N bounds the pool itself with LRU-by-last-match eviction.
// -share-candidates additionally reuses one candidate selection per (batch,
// FROM clause, signature pattern) across each coalesced batch — exact for
// unbounded scans, approximate under -max-candidates. /healthz reports the
// index, scan-split and eviction counters under "pool" and the sharing
// counters under "selection".
//
// Online adaptation (on by default, disable with -adapt=false): /feedback
// ingests execution feedback — a query the workload actually ran and its
// observed true cardinality. Feedback grows the queries pool and feeds a
// background trainer that incrementally retrains the containment model and
// atomically hot-swaps improved generations under live traffic, gated on
// validation q-error (-promote-tolerance). The drift monitor compares live
// estimates against arriving truths; when the windowed median q-error
// exceeds -drift-threshold, a retrain is kicked early. Tune with
// -feedback-buffer, -feedback-min-batch, -retrain-interval,
// -retrain-epochs; observe on /healthz ("online": generation, collector,
// trainer, drift).
//
// Operational guards: -max-inflight sheds estimation requests beyond a
// concurrency ceiling with 429 + Retry-After (and independently bounds
// /record + /feedback, which execute the truth oracle); -request-timeout
// deadlines every estimate; -breaker-error-rate / -breaker-p99 arm a circuit
// breaker that diverts estimates to the baseline fallback while the primary
// path is failing or slow, with half-open probing after -breaker-cooldown.
// /livez answers process liveness (always 200 while serving); /readyz turns
// 503 during startup, shutdown drain, or while the breaker is open. /healthz
// reports guard and per-endpoint counters ("guard", "ingest_gate",
// "endpoints").
//
// Telemetry (on by default, disable with -telemetry=false): the serving
// stack records per-stage latency histograms (admission → coalesce-wait →
// cache-lookup → candidate-selection → NN-forward → finalize), request
// outcomes, subsystem counters, and live per-arm q-error (feedback truths
// joined against recent estimates), all exposed on GET /metrics in
// Prometheus text format with no external dependency. /healthz renders its
// latency, stage and accuracy sections from the same registry.
// -metrics-addr moves /metrics plus /debug/pprof onto a separate listener
// so operational endpoints stay off the public serving port. `crndiag
// -watch` renders a terminal dashboard over /metrics.
//
// Errors map typed facade sentinels to statuses: unparseable dialect -> 400,
// no usable pool match (estimator without fallback) -> 422, shed by
// admission control -> 429, cancelled or breaker-diverted without
// fallback -> 503.
//
// Usage:
//
//	crnserve -addr :8080 -titles 4000 -pairs 5000 -pool 300
//	crnserve -addr :8080 -model crn.model   # skip training, load weights
//	crnserve -addr :8080 -coalesce-batch 128 -coalesce-wait 200us -pprof
//	crnserve -addr :8080 -pool-cap 100000 -max-candidates 64
//	crnserve -addr :8080 -retrain-interval 30s -drift-threshold 16
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"crn"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	titles := flag.Int("titles", 4000, "synthetic database size (title rows)")
	dbSeed := flag.Int64("db-seed", 1, "database generation seed")
	modelPath := flag.String("model", "", "serialized model from crntrain (empty: train at startup)")
	pairs := flag.Int("pairs", 5000, "training pairs when training at startup")
	trainSeed := flag.Int64("train-seed", 1, "workload generation seed for startup training")
	hidden := flag.Int("hidden", 64, "hidden layer size H for startup training")
	epochs := flag.Int("epochs", 30, "training epochs for startup training")
	poolSize := flag.Int("pool", 300, "initial queries-pool size (0: start empty)")
	poolSeed := flag.Int64("pool-seed", 7, "queries-pool generation seed")
	poolCap := flag.Int("pool-cap", 0, "queries-pool capacity; /record evicts the least-recently-matched entry once full (0: unbounded)")
	maxCandidates := flag.Int("max-candidates", 0, "bound each estimate to the K most comparable pool entries via the signature index (0: full scan)")
	indexedSelection := flag.Bool("indexed-selection", true, "serve bounded candidate selection through the pool's inverted signature-class index (bit-identical results; =false restores the full linear scan)")
	shareCandidates := flag.Bool("share-candidates", false, "reuse one candidate selection per (batch, FROM clause, signature pattern) across coalesced batches; approximate when -max-candidates binds")
	noFallback := flag.Bool("no-fallback", false, "fail pool misses with 422 instead of using the PostgreSQL-style baseline")
	coalesceBatch := flag.Int("coalesce-batch", 64, "max concurrent /estimate requests coalesced into one batched pass (< 2 disables coalescing)")
	coalesceWait := flag.Duration("coalesce-wait", 0, "how long to hold a non-full coalescing batch open for stragglers (0: adaptive, never waits)")
	pprofFlag := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ (profiling opt-in)")
	telemetryOn := flag.Bool("telemetry", true, "enable the serving telemetry layer: per-stage timers, /metrics Prometheus exposition, live q-error tracking (=false removes even the nanosecond clock reads)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /debug/pprof on this separate listener so operational endpoints stay off the public port (empty: /metrics rides -addr)")
	binaryBatch := flag.Bool("binary-batch", true, "serve the application/x-crn-batch binary frame protocol on /estimate/batch (=false answers binary requests with 415; JSON unaffected)")
	adapt := flag.Bool("adapt", true, "enable the online-adaptation loop (/feedback ingestion, background retraining, model hot-swap)")
	feedbackBuffer := flag.Int("feedback-buffer", 1024, "staged execution-feedback records before /feedback rejects (adaptation)")
	feedbackMinBatch := flag.Int("feedback-min-batch", 16, "staged records that make a scheduled retrain worthwhile (adaptation)")
	retrainInterval := flag.Duration("retrain-interval", 5*time.Second, "background trainer polling period; negative disables scheduled retraining (adaptation)")
	retrainEpochs := flag.Int("retrain-epochs", 8, "incremental training epochs per retrain cycle (adaptation)")
	promoteTolerance := flag.Float64("promote-tolerance", 0.05, "promotion gate: candidate validation q-error may exceed live by this fraction (adaptation)")
	driftThreshold := flag.Float64("drift-threshold", 0, "windowed median q-error of live estimates vs feedback truths that kicks an early retrain (0: observe only)")
	driftWindow := flag.Int("drift-window", 256, "rolling window size of the drift monitor (adaptation)")
	labelFree := flag.Bool("label-free", false, "label feedback training pairs from the cardinality identity when possible instead of executing the truth oracle (adaptation)")
	dataDir := flag.String("data-dir", "", "durable state directory: feedback WAL + promotion checkpoints, recovered on restart (empty: memory-only)")
	walSync := flag.String("wal-sync", "interval", "feedback WAL sync policy: interval (batched fsync), always (fsync per record), none")
	checkpointRetain := flag.Int("checkpoint-retain", 3, "checkpoints kept on disk; older ones and fully-covered WAL segments are pruned")
	maxInflight := flag.Int("max-inflight", 0, "concurrent estimation requests admitted before shedding with 429; also bounds /record+/feedback (0: unlimited)")
	requestTimeout := flag.Duration("request-timeout", 0, "per-request estimation deadline (0: none)")
	breakerErrorRate := flag.Float64("breaker-error-rate", 0, "windowed error rate that trips the circuit breaker onto the fallback path (0 with -breaker-p99 0: breaker off)")
	breakerP99 := flag.Duration("breaker-p99", 0, "windowed p99 estimate latency that trips the circuit breaker (0: latency trip off)")
	breakerWindow := flag.Int("breaker-window", 128, "outcome window size of the circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 5*time.Second, "open time before the breaker half-opens and probes the primary path")
	shutdownTimeout := flag.Duration("shutdown-timeout", 5*time.Second, "graceful shutdown drain deadline for in-flight requests")
	flag.Parse()

	logger := log.New(os.Stderr, "crnserve: ", log.LstdFlags)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	logger.Printf("opening synthetic database (titles=%d seed=%d)", *titles, *dbSeed)
	sys, err := crn.OpenSynthetic(ctx, crn.WithTitles(*titles), crn.WithDataSeed(*dbSeed))
	if err != nil {
		logger.Fatalf("open database: %v", err)
	}

	// A data dir with a completed checkpoint is a resumable deployment: the
	// checkpoint's model generation and grown pool supersede startup
	// training and seeding (an explicit -model still loads, as the escape
	// hatch for swapping weights under a kept data dir).
	resume := *adapt && *dataDir != "" && crn.HasCheckpoint(*dataDir)
	if resume {
		logger.Printf("data dir %s holds a checkpoint: resuming previous deployment (skipping startup training and pool seeding)", *dataDir)
	}

	var model *crn.ContainmentModel
	if resume && *modelPath == "" {
		// The checkpoint carries the model; OpenAdaptiveEstimator restores it.
	} else if *modelPath != "" {
		blob, err := os.ReadFile(*modelPath)
		if err != nil {
			logger.Fatalf("read model: %v", err)
		}
		model, err = sys.LoadContainmentModel(blob)
		if err != nil {
			logger.Fatalf("load model: %v", err)
		}
		logger.Printf("loaded model from %s", *modelPath)
	} else {
		mcfg := crn.DefaultModelConfig()
		mcfg.Hidden = *hidden
		mcfg.Epochs = *epochs
		logger.Printf("training containment model (pairs=%d hidden=%d epochs=%d)", *pairs, *hidden, *epochs)
		start := time.Now()
		model, err = sys.TrainContainmentModel(ctx,
			crn.WithPairs(*pairs),
			crn.WithSeed(*trainSeed),
			crn.WithModelConfig(mcfg),
			crn.WithProgress(func(epoch int, valQ float64) {
				if epoch%5 == 0 {
					logger.Printf("  epoch %3d: validation mean q-error %.3f", epoch, valQ)
				}
			}),
		)
		if err != nil {
			logger.Fatalf("train: %v", err)
		}
		logger.Printf("trained in %v", time.Since(start).Round(time.Second))
	}

	var poolOpts []crn.PoolOption
	if *poolCap > 0 {
		poolOpts = append(poolOpts, crn.WithPoolCap(*poolCap))
		logger.Printf("pool capacity bounded to %d entries (LRU-by-last-match eviction)", *poolCap)
	}
	if !*indexedSelection {
		poolOpts = append(poolOpts, crn.WithIndexedSelection(false))
		logger.Printf("indexed candidate selection off (full linear scan per bounded selection)")
	}
	pool := sys.NewQueriesPool(poolOpts...)
	if *poolSize > 0 && !resume {
		logger.Printf("seeding queries pool (n=%d)", *poolSize)
		if err := sys.SeedPool(ctx, pool, *poolSize, *poolSeed); err != nil {
			logger.Fatalf("seed pool: %v", err)
		}
	}

	opts := []crn.EstimatorOption{}
	var tel *crn.Telemetry
	if *telemetryOn {
		tel = crn.NewTelemetry()
		opts = append(opts, crn.WithTelemetry(tel))
	}
	if !*noFallback {
		base, err := sys.AnalyzeBaseline()
		if err != nil {
			logger.Fatalf("analyze baseline: %v", err)
		}
		opts = append(opts, crn.WithFallback(base))
	}
	if *coalesceBatch >= 2 {
		opts = append(opts, crn.WithCoalescing(*coalesceBatch, *coalesceWait))
		logger.Printf("request coalescing on (max batch %d, max wait %v)", *coalesceBatch, *coalesceWait)
	}
	if *maxCandidates > 0 {
		opts = append(opts, crn.WithMaxCandidates(*maxCandidates))
		logger.Printf("candidate selection bounded to top-%d pool entries per estimate", *maxCandidates)
	}
	if *shareCandidates {
		opts = append(opts, crn.WithSharedSelection(true))
		logger.Printf("batch-level candidate sharing on (one pool selection per batch share bucket)")
	}
	if *maxInflight > 0 {
		opts = append(opts, crn.WithMaxInflight(*maxInflight))
		logger.Printf("admission control on (max %d concurrent estimates, overflow shed with 429)", *maxInflight)
	}
	if *requestTimeout > 0 {
		opts = append(opts, crn.WithRequestTimeout(*requestTimeout))
		logger.Printf("per-request estimation deadline %v", *requestTimeout)
	}
	if *breakerErrorRate > 0 || *breakerP99 > 0 {
		opts = append(opts, crn.WithBreaker(crn.BreakerConfig{
			Window:     *breakerWindow,
			ErrorRate:  *breakerErrorRate,
			LatencyP99: *breakerP99,
			Cooldown:   *breakerCooldown,
		}))
		logger.Printf("circuit breaker armed (window=%d error-rate=%g p99=%v cooldown=%v)",
			*breakerWindow, *breakerErrorRate, *breakerP99, *breakerCooldown)
	}

	var est *crn.CardinalityEstimator
	var adaptive *crn.AdaptiveEstimator
	if *adapt {
		adaptOpts := append(opts,
			crn.WithFeedbackBuffer(*feedbackBuffer),
			crn.WithRetrainBatch(*feedbackMinBatch),
			crn.WithRetrainInterval(*retrainInterval),
			crn.WithRetrainEpochs(*retrainEpochs),
			crn.WithPromoteTolerance(*promoteTolerance),
			crn.WithDriftTrigger(*driftThreshold, *driftWindow),
			crn.WithLabelFreeFeedback(*labelFree),
		)
		if *dataDir != "" {
			adaptOpts = append(adaptOpts,
				crn.WithDataDir(*dataDir),
				crn.WithWALSync(*walSync),
				crn.WithCheckpointRetain(*checkpointRetain),
			)
		}
		adaptive, err = sys.OpenAdaptiveEstimator(model, pool, adaptOpts...)
		if err != nil {
			logger.Fatalf("open adaptive estimator: %v", err)
		}
		defer adaptive.Close()
		est = adaptive.CardinalityEstimator
		logger.Printf("online adaptation on (buffer=%d min-batch=%d interval=%v epochs=%d tolerance=%.2f drift-threshold=%g label-free=%v)",
			*feedbackBuffer, *feedbackMinBatch, *retrainInterval, *retrainEpochs, *promoteTolerance, *driftThreshold, *labelFree)
		if ds := adaptive.DurabilityStats(); ds != nil {
			logger.Printf("durable state on under %s (wal-sync=%s retain=%d): generation=%d pool=%d staged=%d replayed=%d",
				*dataDir, *walSync, *checkpointRetain,
				adaptive.ModelGeneration(), pool.Len(), adaptive.StagedFeedback(), ds.ReplayedRecords)
		}
	} else {
		if *dataDir != "" {
			logger.Printf("warning: -data-dir is ignored with -adapt=false (durability rides the adaptation loop)")
		}
		est = sys.CardinalityEstimator(model, pool, opts...)
	}

	handler := newServer(sys, model, pool, est, logger)
	handler.adaptive = adaptive
	handler.pprof = *pprofFlag
	handler.binaryBatch = *binaryBatch
	handler.setIngestLimit(*maxInflight)
	handler.setTelemetry(tel)
	handler.metricsOnMain = *metricsAddr == ""
	if *pprofFlag {
		logger.Printf("pprof enabled under /debug/pprof/")
	}
	switch {
	case tel != nil && *metricsAddr == "":
		logger.Printf("telemetry on (/metrics on the serving port; stage timers and live q-error tracking armed)")
	case tel != nil:
		logger.Printf("telemetry on (stage timers and live q-error tracking armed)")
	case *metricsAddr != "":
		logger.Printf("warning: -telemetry=false leaves the %s listener with /debug/pprof only (no /metrics)", *metricsAddr)
	}
	// Construction is done: model published (trained, loaded, or recovered)
	// and any WAL replay absorbed — flip /readyz before the listener opens.
	handler.setReady(true)
	srv := &http.Server{
		Addr:    *addr,
		Handler: handler.handler(),
		// Full-lifecycle timeouts so a stalled or malicious peer cannot pin a
		// connection: headers, whole-request read, whole-response write, and
		// keep-alive idle. WriteTimeout leaves headroom over any
		// -request-timeout since it also covers response serialization.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      90 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	var metricsSrv *http.Server
	if *metricsAddr != "" {
		metricsSrv = &http.Server{
			Addr:              *metricsAddr,
			Handler:           handler.metricsHandler(),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			logger.Printf("operational listener on %s (/metrics + /debug/pprof/)", *metricsAddr)
			if err := metricsSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Printf("metrics listener: %v", err)
			}
		}()
	}
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		// Unready first so load balancers drain before the listener closes.
		handler.setReady(false)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
		if metricsSrv != nil {
			_ = metricsSrv.Shutdown(shutdownCtx)
		}
	}()

	logger.Printf("serving on %s (pool=%d)", *addr, pool.Len())
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Fatalf("serve: %v", err)
	}
	// ListenAndServe returns as soon as the listener closes; wait for
	// Shutdown to finish draining in-flight requests before exiting.
	<-drained
	if adaptive != nil {
		// Graceful teardown: the listener has drained, so no new feedback
		// arrives; stop the trainer and — with -data-dir — flush the WAL and
		// write the final checkpoint (staged feedback stays journaled past
		// the checkpoint LSN and is re-staged on the next boot).
		if adaptive.DurabilityStats() != nil {
			logger.Printf("flushing durable state (generation=%d staged=%d)",
				adaptive.ModelGeneration(), adaptive.StagedFeedback())
		}
		adaptive.Close()
	}
	fmt.Fprintln(os.Stderr, "crnserve: shut down")
}
