package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"crn"
	"crn/internal/telemetry"
)

// drive pushes a little traffic through every instrumented route so the
// metric families below have samples: single estimates, a JSON batch, and
// a /record append.
func drive(t *testing.T, url string) {
	t.Helper()
	for i := 0; i < 3; i++ {
		status, body, err := postJSONErr(url+"/estimate",
			map[string]string{"query": "SELECT * FROM title WHERE title.production_year > 1975"})
		if err != nil || status != http.StatusOK {
			t.Fatalf("estimate: status %d err %v body %s", status, err, body)
		}
	}
	status, body, err := postJSONErr(url+"/estimate/batch", map[string]any{"queries": []string{
		"SELECT * FROM title WHERE title.kind_id = 1",
		"SELECT * FROM title WHERE title.production_year > 1960",
	}})
	if err != nil || status != http.StatusOK {
		t.Fatalf("batch: status %d err %v body %s", status, err, body)
	}
	status, body, err = postJSONErr(url+"/record",
		map[string]string{"query": "SELECT * FROM title WHERE title.kind_id = 3"})
	if err != nil || status != http.StatusOK {
		t.Fatalf("record: status %d err %v body %s", status, err, body)
	}
}

// TestMetricsExposition is the /metrics acceptance: the endpoint serves
// lint-clean Prometheus text exposition whose families cover the guard,
// serve, pool, and wire subsystems plus the estimate path, and the moving
// counters actually moved.
func TestMetricsExposition(t *testing.T) {
	ts := httptest.NewServer(testServer(t).handler())
	defer ts.Close()
	drive(t, ts.URL)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != crn.MetricsContentType {
		t.Errorf("Content-Type = %q, want %q", ct, crn.MetricsContentType)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)

	if problems := telemetry.Lint(strings.NewReader(text)); len(problems) != 0 {
		t.Fatalf("exposition lint: %v", problems)
	}
	fams, err := telemetry.ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	// One family per instrumented subsystem, by name: estimate path,
	// guard, serve (coalescer), pool, cache, wire, HTTP front end.
	for _, name := range []string{
		"crn_estimate_requests_total",
		"crn_estimate_duration_seconds",
		"crn_estimate_stage_duration_seconds",
		"crn_gate_inflight",
		"crn_breaker_state",
		"crn_coalesce_batches_total",
		"crn_pool_entries",
		"crn_repcache_lookups_total",
		"crn_accuracy_qerror",
		"crn_wire_requests_total",
		"crn_http_requests_total",
	} {
		if fams[name] == nil {
			t.Errorf("family %s missing from /metrics", name)
		}
	}
	if v, ok := fams["crn_estimate_requests_total"].Sample("outcome", "ok"); !ok || v < 3 {
		t.Errorf("crn_estimate_requests_total{outcome=ok} = %v (ok=%v), want >= 3", v, ok)
	}
	if v, ok := fams["crn_wire_requests_total"].Sample("codec", "json"); !ok || v < 1 {
		t.Errorf("crn_wire_requests_total{codec=json} = %v (ok=%v), want >= 1", v, ok)
	}
	if h := fams["crn_estimate_duration_seconds"].Hist("", ""); h == nil || h.Count < 3 {
		t.Errorf("crn_estimate_duration_seconds count = %+v, want >= 3", h)
	}
	// The stage decomposition: the per-pass stages must have recorded at
	// least one span each by now.
	for _, stage := range []string{
		telemetry.StageAdmission, telemetry.StageCacheLookup,
		telemetry.StageCandidateSelection, telemetry.StageNNForward,
		telemetry.StageFinalize,
	} {
		if h := fams["crn_estimate_stage_duration_seconds"].Hist("stage", stage); h == nil || h.Count == 0 {
			t.Errorf("stage %s never recorded", stage)
		}
	}
}

// TestHealthzTelemetrySection: with telemetry on, /healthz carries the
// registry-snapshot section — request outcomes, stage quantiles, q-error
// arms — and its latency snapshots come from the same histograms /metrics
// serves.
func TestHealthzTelemetrySection(t *testing.T) {
	ts := httptest.NewServer(testServer(t).handler())
	defer ts.Close()
	drive(t, ts.URL)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hr healthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	if hr.Telemetry == nil {
		t.Fatal("healthz telemetry section missing with telemetry on")
	}
	if hr.Telemetry.Requests["ok"] < 3 {
		t.Errorf("telemetry.requests.ok = %d, want >= 3", hr.Telemetry.Requests["ok"])
	}
	st, ok := hr.Telemetry.Stages[telemetry.StageNNForward]
	if !ok || st.Count == 0 || st.P99Micros < st.P50Micros {
		t.Errorf("nn_forward stage quantiles wrong: %+v (ok=%v)", st, ok)
	}
	if _, ok := hr.Telemetry.QError["crn"]; !ok {
		t.Errorf("qerror arms missing: %+v", hr.Telemetry.QError)
	}
	if hr.EstimateLatency.Count < 3 || hr.EstimateLatency.AvgMicros <= 0 {
		t.Errorf("snapshot-derived estimate latency wrong: %+v", hr.EstimateLatency)
	}
}

// TestMetricsAddrSplit: with metricsOnMain off (the -metrics-addr
// configuration), the public mux stops serving /metrics while the
// operational mux serves /metrics and /debug/pprof.
func TestMetricsAddrSplit(t *testing.T) {
	base := testServer(t)
	split := newServer(base.sys, base.model, base.pool, base.est, nil)
	split.tel = base.tel // reuse the bundle; collectors already registered
	split.metricsOnMain = false

	pub := httptest.NewServer(split.handler())
	defer pub.Close()
	resp, err := http.Get(pub.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("public /metrics with -metrics-addr: status %d, want 404", resp.StatusCode)
	}

	ops := httptest.NewServer(split.metricsHandler())
	defer ops.Close()
	for _, path := range []string{"/metrics", "/debug/pprof/"} {
		resp, err := http.Get(ops.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("operational %s: status %d, want 200", path, resp.StatusCode)
		}
	}
}
