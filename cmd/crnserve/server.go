package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"crn"
	"crn/internal/guard"
	"crn/internal/telemetry"
	"crn/internal/wire"
)

// server is the HTTP front end over the estimation facade: a trained
// containment model, a live queries pool, and a batch-first cardinality
// estimator. All handlers are safe for concurrent use — the pool accepts
// concurrent /record appends while /estimate reads — and every estimation
// runs under the request context, so a disconnecting client cancels its
// work.
type server struct {
	sys   *crn.System
	model *crn.ContainmentModel
	pool  *crn.QueriesPool
	est   *crn.CardinalityEstimator

	// adaptive, when non-nil, is the online-adaptation view of est:
	// /feedback ingests execution feedback through it and /healthz reports
	// the loop's counters. est aliases its CardinalityEstimator, so the
	// estimate handlers need no branching.
	adaptive *crn.AdaptiveEstimator

	started  time.Time
	recorded atomic.Int64 // queries appended via /record
	logger   *log.Logger

	// pprof mounts net/http/pprof under /debug/pprof/ when set (the -pprof
	// flag); off by default so production profiling is an explicit opt-in.
	pprof bool

	// ready gates /readyz: set once startup (training or recovery replay,
	// model publication) completes, cleared when shutdown starts so load
	// balancers stop routing here before the listener closes.
	ready atomic.Bool

	// ingestGate sheds /record and /feedback under overload. Those
	// endpoints execute the truth oracle and so bypass the estimator's own
	// admission gate — without their own ceiling a feedback storm could
	// exhaust the server even while /estimate is protected. Nil: unlimited.
	ingestGate *guard.Gate

	// binaryBatch serves the application/x-crn-batch protocol on
	// /estimate/batch (the -binary-batch flag; default on). When off,
	// binary requests get 415 and JSON is unaffected — the operational kill
	// switch if a client misencodes frames.
	binaryBatch bool
	wireIO      wireStats
	bufPool     wire.BufferPool

	// tel, when non-nil, is the serving telemetry bundle shared with the
	// estimator (the -telemetry flag, default on): GET /metrics serves its
	// registry, /healthz renders latency/stage/accuracy sections from one
	// snapshot of it, and the frame-size histogram children below record
	// /estimate/batch body sizes per codec. Set via setTelemetry before
	// serving.
	tel           *crn.Telemetry
	metricsOnMain bool // mount /metrics on the public mux (no -metrics-addr)
	jsonReqBytes  *telemetry.Histogram
	jsonRespBytes *telemetry.Histogram
	binReqBytes   *telemetry.Histogram
	binRespBytes  *telemetry.Histogram

	estimateLatency latencyStats // single-query /estimate (cardinality mode)
	batchLatency    latencyStats // /estimate/batch

	epEstimate endpointCounters
	epBatch    endpointCounters
	epRecord   endpointCounters
	epFeedback endpointCounters
}

func newServer(sys *crn.System, model *crn.ContainmentModel, pool *crn.QueriesPool, est *crn.CardinalityEstimator, logger *log.Logger) *server {
	return &server{sys: sys, model: model, pool: pool, est: est, started: time.Now(), logger: logger, binaryBatch: true, metricsOnMain: true}
}

// setReady flips the /readyz gate; main sets it once construction (training
// or checkpoint recovery, model publication) finishes and clears it when
// shutdown begins.
func (s *server) setReady(ready bool) { s.ready.Store(ready) }

// setIngestLimit bounds concurrent /record + /feedback requests (0: off).
func (s *server) setIngestLimit(n int) { s.ingestGate = guard.NewGate(n) }

// handler builds the route table.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /estimate", s.counted(&s.epEstimate, s.handleEstimate))
	mux.HandleFunc("POST /estimate/batch", s.counted(&s.epBatch, s.handleEstimateBatch))
	mux.HandleFunc("POST /record", s.counted(&s.epRecord, s.handleRecord))
	if s.adaptive != nil {
		mux.HandleFunc("POST /feedback", s.counted(&s.epFeedback, s.handleFeedback))
	}
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /livez", s.handleLivez)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	if s.tel != nil && s.metricsOnMain {
		mux.HandleFunc("GET /metrics", s.handleMetrics)
	}
	if s.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// latencyStats tracks request latencies with lock-free counters cheap
// enough for the hot path; /healthz renders a snapshot.
type latencyStats struct {
	count   atomic.Int64
	totalNs atomic.Int64
	maxNs   atomic.Int64
}

func (l *latencyStats) observe(d time.Duration) {
	ns := d.Nanoseconds()
	l.count.Add(1)
	l.totalNs.Add(ns)
	for {
		m := l.maxNs.Load()
		if ns <= m || l.maxNs.CompareAndSwap(m, ns) {
			return
		}
	}
}

// latencySnapshot is the wire form of latencyStats.
type latencySnapshot struct {
	Count     int64   `json:"count"`
	AvgMicros float64 `json:"avg_micros"`
	MaxMicros float64 `json:"max_micros"`
}

func (l *latencyStats) snapshot() latencySnapshot {
	n := l.count.Load()
	out := latencySnapshot{Count: n, MaxMicros: float64(l.maxNs.Load()) / 1e3}
	if n > 0 {
		out.AvgMicros = float64(l.totalNs.Load()) / float64(n) / 1e3
	}
	return out
}

// --- Per-endpoint accounting ------------------------------------------------

// endpointCounters tracks outcomes per route with lock-free counters: total
// requests, requests shed with 429 (admission control), and other failures.
type endpointCounters struct {
	requests atomic.Uint64
	shed     atomic.Uint64
	failed   atomic.Uint64
}

// endpointSnapshot is the wire form of endpointCounters.
type endpointSnapshot struct {
	Requests uint64 `json:"requests"`
	Shed     uint64 `json:"shed"`
	Failed   uint64 `json:"failed"`
}

func (c *endpointCounters) snapshot() endpointSnapshot {
	return endpointSnapshot{
		Requests: c.requests.Load(),
		Shed:     c.shed.Load(),
		Failed:   c.failed.Load(),
	}
}

// statusWriter captures the response status so counted can classify the
// outcome without threading counters through every writeError call site.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// counted wraps a handler with per-endpoint outcome accounting.
func (s *server) counted(ep *endpointCounters, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ep.requests.Add(1)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		switch {
		case sw.status == http.StatusTooManyRequests:
			ep.shed.Add(1)
		case sw.status >= 400:
			ep.failed.Add(1)
		}
	}
}

// --- Batch wire accounting ---------------------------------------------------

// wireStats tracks /estimate/batch traffic per codec with lock-free
// counters; /healthz renders the snapshot under "wire".
type wireStats struct {
	jsonRequests   atomic.Uint64
	jsonBytesIn    atomic.Uint64
	jsonBytesOut   atomic.Uint64
	binaryRequests atomic.Uint64
	binaryBytesIn  atomic.Uint64
	binaryBytesOut atomic.Uint64
}

// wireCodecSnapshot is one codec's traffic counters.
type wireCodecSnapshot struct {
	Requests uint64 `json:"requests"`
	BytesIn  uint64 `json:"bytes_in"`
	BytesOut uint64 `json:"bytes_out"`
}

// wireSnapshot is the "wire" section of /healthz: per-codec batch traffic
// plus the pooled-buffer reuse rate of the binary path.
type wireSnapshot struct {
	BinaryEnabled   bool              `json:"binary_enabled"`
	JSON            wireCodecSnapshot `json:"json"`
	Binary          wireCodecSnapshot `json:"binary"`
	BufferGets      uint64            `json:"buffer_gets"`
	BufferMisses    uint64            `json:"buffer_misses"`
	BufferReuseRate float64           `json:"buffer_reuse_rate"`
}

func (s *server) wireSnapshot() wireSnapshot {
	gets, misses := s.bufPool.Stats()
	snap := wireSnapshot{
		BinaryEnabled: s.binaryBatch,
		JSON: wireCodecSnapshot{
			Requests: s.wireIO.jsonRequests.Load(),
			BytesIn:  s.wireIO.jsonBytesIn.Load(),
			BytesOut: s.wireIO.jsonBytesOut.Load(),
		},
		Binary: wireCodecSnapshot{
			Requests: s.wireIO.binaryRequests.Load(),
			BytesIn:  s.wireIO.binaryBytesIn.Load(),
			BytesOut: s.wireIO.binaryBytesOut.Load(),
		},
		BufferGets:   gets,
		BufferMisses: misses,
	}
	if gets > 0 {
		snap.BufferReuseRate = float64(gets-misses) / float64(gets)
	}
	return snap
}

// countingReader counts body bytes actually read on the JSON batch path.
type countingReader struct {
	io.ReadCloser
	n uint64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.ReadCloser.Read(p)
	c.n += uint64(n)
	return n, err
}

// countingWriter counts response bytes written on the JSON batch path.
type countingWriter struct {
	http.ResponseWriter
	n uint64
}

func (w *countingWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.n += uint64(n)
	return n, err
}

// readAllInto reads r to EOF appending into buf (typically pooled), like
// io.ReadAll without the fresh allocation.
func readAllInto(buf []byte, r io.Reader) ([]byte, error) {
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

// --- Wire types -------------------------------------------------------------

// estimateRequest drives /estimate: either Query (cardinality mode) or Q1+Q2
// (containment mode).
type estimateRequest struct {
	Query string `json:"query,omitempty"`
	Q1    string `json:"q1,omitempty"`
	Q2    string `json:"q2,omitempty"`
}

type estimateResponse struct {
	Cardinality *float64 `json:"cardinality,omitempty"`
	Containment *float64 `json:"containment,omitempty"`
}

type batchRequest struct {
	Queries []string `json:"queries"`
}

type batchResponse struct {
	Cardinalities []float64 `json:"cardinalities"`
	Count         int       `json:"count"`
}

type recordRequest struct {
	Query string `json:"query"`
}

type recordResponse struct {
	Cardinality int64 `json:"cardinality"`
	Added       bool  `json:"added"`
	PoolSize    int   `json:"pool_size"`
}

// feedbackRequest drives /feedback: execution feedback for a query the
// workload actually ran. Cardinality is a pointer so a missing field is
// distinguishable from an observed empty result.
type feedbackRequest struct {
	Query       string `json:"query"`
	Cardinality *int64 `json:"cardinality"`
}

type feedbackResponse struct {
	// Accepted reports whether the record was staged for retraining
	// (false: already pooled/staged, or the feedback buffer is full).
	Accepted bool `json:"accepted"`
	// Staged is the number of records waiting for the background trainer.
	Staged int `json:"staged"`
	// Generation is the live model generation at response time.
	Generation uint64 `json:"generation"`
	PoolSize   int    `json:"pool_size"`
}

type healthzResponse struct {
	Status        string  `json:"status"`
	PoolSize      int     `json:"pool_size"`
	Recorded      int64   `json:"recorded"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Pool reports the candidate index and capacity bound: entries and FROM
	// keys, configured capacity (0: unbounded), LRU evictions, bounded
	// (top-K) selections, the candidates they scanned/truncated, and the
	// indexed-vs-linear split (index_hits / index_fallbacks routing,
	// scanned_indexed / scanned_fallback cost). All selection counters stay
	// zero when -max-candidates is 0.
	Pool     crn.PoolStats     `json:"pool"`
	RepCache crn.RepCacheStats `json:"rep_cache"`
	// Selection reports batch-level candidate sharing: candidate selections
	// requested vs answered by reusing an earlier selection of the same
	// batch. Shared stays zero without -share-candidates.
	Selection crn.SelectionStats `json:"selection"`
	// Coalescer reports request-coalescing effectiveness: calls vs batch
	// executions, average and max batch size (batched_items / batches),
	// dedup hits, and abandons. All zeros when -coalesce-batch < 2.
	Coalescer       crn.CoalescerStats `json:"coalescer"`
	EstimateLatency latencySnapshot    `json:"estimate_latency"`
	BatchLatency    latencySnapshot    `json:"batch_latency"`
	// Wire reports /estimate/batch traffic per codec (json vs the
	// application/x-crn-batch binary protocol) and the binary path's
	// pooled-buffer reuse rate.
	Wire wireSnapshot `json:"wire"`
	// Online reports the adaptation loop — live model generation, feedback
	// ingestion, background retraining and drift monitoring — and is
	// omitted when the server runs with -adapt=false.
	Online *crn.AdaptationStats `json:"online,omitempty"`
	// Durable reports the durability layer — WAL appends/syncs/segments,
	// checkpoint history, recovery replay counters — and is omitted without
	// -data-dir.
	Durable *crn.DurabilityStats `json:"durable,omitempty"`
	// Guard reports the estimator's operational guards: admission gate
	// (inflight/peak/shed) and circuit breaker (state, trips, diversions).
	// All zeros unless -max-inflight or a breaker flag is set.
	Guard crn.GuardStats `json:"guard"`
	// IngestGate reports the server-level admission gate over /record and
	// /feedback (the endpoints that execute the truth oracle).
	IngestGate crn.GateStats `json:"ingest_gate"`
	// Endpoints reports per-route request/shed/failure counters.
	Endpoints map[string]endpointSnapshot `json:"endpoints"`
	// Telemetry reports the serving telemetry bundle — request outcomes,
	// per-stage latency quantiles, live per-arm q-error — rendered from one
	// registry gather shared with /metrics. Omitted with -telemetry=false.
	Telemetry *telemetrySummary `json:"telemetry,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// --- Handlers ---------------------------------------------------------------

func (s *server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	var req estimateRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	switch {
	case req.Query != "" && req.Q1 == "" && req.Q2 == "":
		q, err := s.sys.ParseQuery(req.Query)
		if err != nil {
			s.writeError(w, statusFor(err), err)
			return
		}
		start := time.Now()
		card, err := s.est.EstimateCardinality(r.Context(), q)
		s.estimateLatency.observe(time.Since(start))
		if err != nil {
			s.writeError(w, statusFor(err), err)
			return
		}
		s.writeJSON(w, http.StatusOK, estimateResponse{Cardinality: &card})
	case req.Query == "" && req.Q1 != "" && req.Q2 != "":
		q1, err := s.sys.ParseQuery(req.Q1)
		if err != nil {
			s.writeError(w, statusFor(err), err)
			return
		}
		q2, err := s.sys.ParseQuery(req.Q2)
		if err != nil {
			s.writeError(w, statusFor(err), err)
			return
		}
		// Containment runs on the live generation when adaptation is on (and
		// is the only path for a deployment resumed from a checkpoint, where
		// there is no standalone model handle at all).
		var rate float64
		switch {
		case s.adaptive != nil:
			rate, err = s.adaptive.EstimateContainment(r.Context(), q1, q2)
		case s.model != nil:
			rate, err = s.model.EstimateContainment(r.Context(), q1, q2)
		default:
			err = errors.New("containment estimation unavailable: no model loaded")
		}
		if err != nil {
			s.writeError(w, statusFor(err), err)
			return
		}
		s.writeJSON(w, http.StatusOK, estimateResponse{Containment: &rate})
	default:
		s.writeError(w, http.StatusBadRequest,
			errors.New(`provide either "query" (cardinality) or "q1"+"q2" (containment)`))
	}
}

func (s *server) handleEstimateBatch(w http.ResponseWriter, r *http.Request) {
	if ct := r.Header.Get("Content-Type"); ct == wire.ContentType ||
		strings.HasPrefix(ct, wire.ContentType+";") {
		s.handleEstimateBatchBinary(w, r)
		return
	}
	s.wireIO.jsonRequests.Add(1)
	cr := &countingReader{ReadCloser: r.Body}
	r.Body = cr
	cw := &countingWriter{ResponseWriter: w}
	defer func() {
		s.wireIO.jsonBytesIn.Add(cr.n)
		s.wireIO.jsonBytesOut.Add(cw.n)
		s.jsonReqBytes.Observe(float64(cr.n))
		s.jsonRespBytes.Observe(float64(cw.n))
	}()
	var req batchRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(cw, http.StatusBadRequest, err)
		return
	}
	if len(req.Queries) == 0 {
		s.writeError(cw, http.StatusBadRequest, errors.New(`"queries" must be non-empty`))
		return
	}
	cards, status, err := s.estimateBatchSQL(r.Context(), req.Queries)
	if err != nil {
		s.writeError(cw, status, err)
		return
	}
	s.writeJSON(cw, http.StatusOK, batchResponse{Cardinalities: cards, Count: len(cards)})
}

// estimateBatchSQL is the codec-independent core of /estimate/batch: parse
// every query, run the batched estimate, record latency. Both content types
// funnel through it, so JSON and binary responses are bit-identical for the
// same queries.
func (s *server) estimateBatchSQL(ctx context.Context, sqls []string) ([]float64, int, error) {
	queries := make([]crn.Query, len(sqls))
	for i, sql := range sqls {
		q, err := s.sys.ParseQuery(sql)
		if err != nil {
			return nil, statusFor(err), fmt.Errorf("queries[%d]: %w", i, err)
		}
		queries[i] = q
	}
	start := time.Now()
	cards, err := s.est.EstimateCardinalityBatch(ctx, queries)
	s.batchLatency.observe(time.Since(start))
	if err != nil {
		return nil, statusFor(err), err
	}
	return cards, http.StatusOK, nil
}

// maxBatchQueries bounds a binary batch's declared query count before any
// per-query work happens (the JSON path is equivalently bounded by
// maxBodyBytes and parse cost).
const maxBatchQueries = 1 << 16

// handleEstimateBatchBinary serves the application/x-crn-batch frame
// protocol (see internal/wire): pooled buffers carry the request body in
// and the response frame out, the decoder's arena carries the query
// strings, and no JSON reflection runs anywhere on the path. Errors are
// still reported as JSON bodies with the usual status mapping — a client
// that speaks the protocol can always read them.
func (s *server) handleEstimateBatchBinary(w http.ResponseWriter, r *http.Request) {
	if !s.binaryBatch {
		s.writeError(w, http.StatusUnsupportedMediaType,
			errors.New("binary batch protocol disabled (-binary-batch=false); use application/json"))
		return
	}
	s.wireIO.binaryRequests.Add(1)
	body, err := readAllInto(s.bufPool.Get(), http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		s.bufPool.Put(body)
		status := http.StatusBadRequest
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			status = http.StatusRequestEntityTooLarge
		}
		s.writeError(w, status, err)
		return
	}
	s.wireIO.binaryBytesIn.Add(uint64(len(body)))
	s.binReqBytes.Observe(float64(len(body)))
	sqls, err := wire.DecodeRequest(body, maxBatchQueries)
	s.bufPool.Put(body) // decoded strings live in their own arena, not body
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(sqls) == 0 {
		s.writeError(w, http.StatusBadRequest, errors.New("batch must contain at least one query"))
		return
	}
	cards, status, err := s.estimateBatchSQL(r.Context(), sqls)
	if err != nil {
		s.writeError(w, status, err)
		return
	}
	out := s.bufPool.Get()
	if cap(out) < wire.ResponseSize(len(cards)) {
		out = make([]byte, 0, wire.ResponseSize(len(cards)))
	}
	out = wire.AppendResponse(out, cards)
	w.Header().Set("Content-Type", wire.ContentType)
	w.Header().Set("Content-Length", strconv.Itoa(len(out)))
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(out); err != nil && s.logger != nil {
		s.logger.Printf("write response: %v", err)
	}
	s.wireIO.binaryBytesOut.Add(uint64(len(out)))
	s.binRespBytes.Observe(float64(len(out)))
	s.bufPool.Put(out)
}

func (s *server) handleRecord(w http.ResponseWriter, r *http.Request) {
	if err := s.ingestGate.Acquire(); err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	defer s.ingestGate.Release()
	var req recordRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	q, err := s.sys.ParseQuery(req.Query)
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	card, added, err := s.sys.RecordExecuted(r.Context(), s.pool, q)
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	if added {
		s.recorded.Add(1)
		// No cache flush here: the estimator's representation cache is
		// subscribed to the pool and absorbs the mutation surgically (an
		// insert invalidates nothing, an eviction drops exactly the
		// evicted entry's rows), so the warm working set keeps serving.
	}
	s.writeJSON(w, http.StatusOK, recordResponse{
		Cardinality: card,
		Added:       added,
		PoolSize:    s.pool.Len(),
	})
}

// handleFeedback ingests execution feedback: the query the workload ran
// and the true cardinality it observed. The record feeds the adaptation
// loop (pool growth, background retraining, drift monitoring); the call
// itself never blocks on training.
func (s *server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	if err := s.ingestGate.Acquire(); err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	defer s.ingestGate.Release()
	var req feedbackRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Query == "" || req.Cardinality == nil {
		s.writeError(w, http.StatusBadRequest,
			errors.New(`provide "query" and its observed "cardinality"`))
		return
	}
	if *req.Cardinality < 0 {
		s.writeError(w, http.StatusBadRequest,
			errors.New(`"cardinality" must be a non-negative observed row count`))
		return
	}
	accepted, err := s.adaptive.RecordFeedback(r.Context(), req.Query, *req.Cardinality)
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	// Lightweight accessors, not AdaptationStats: the full snapshot sorts
	// the whole drift window, which has no place on a per-request path.
	s.writeJSON(w, http.StatusOK, feedbackResponse{
		Accepted:   accepted,
		Staged:     s.adaptive.StagedFeedback(),
		Generation: s.adaptive.ModelGeneration(),
		PoolSize:   s.pool.Len(),
	})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := healthzResponse{
		Status:          "ok",
		PoolSize:        s.pool.Len(),
		Recorded:        s.recorded.Load(),
		UptimeSeconds:   time.Since(s.started).Seconds(),
		Pool:            s.pool.Stats(),
		RepCache:        s.est.CacheStats(),
		Selection:       s.est.SelectionStats(),
		Coalescer:       s.est.CoalescerStats(),
		EstimateLatency: s.estimateLatency.snapshot(),
		BatchLatency:    s.batchLatency.snapshot(),
		Wire:            s.wireSnapshot(),
		Guard:           s.est.GuardStats(),
		IngestGate:      s.ingestGate.Stats(),
		Endpoints: map[string]endpointSnapshot{
			"estimate":       s.epEstimate.snapshot(),
			"estimate_batch": s.epBatch.snapshot(),
			"record":         s.epRecord.snapshot(),
			"feedback":       s.epFeedback.snapshot(),
		},
	}
	if s.adaptive != nil {
		st := s.adaptive.AdaptationStats()
		resp.Online = &st
		resp.Durable = s.adaptive.DurabilityStats()
	}
	if s.tel != nil {
		// One coherent gather: every telemetry-backed section — the latency
		// snapshots included — comes from a single pass over the registry's
		// histograms and counters (the same instruments /metrics exposes)
		// instead of field-by-field reads interleaved with the render.
		resp.Telemetry, resp.EstimateLatency, resp.BatchLatency = s.telemetrySnapshot()
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleLivez answers liveness: the process is up and serving HTTP. It
// stays 200 through overload, open breakers, and degraded durability — a
// restart fixes none of those, so orchestrators must not kill on them.
func (s *server) handleLivez(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "alive"})
}

// handleReadyz answers readiness: startup (training or recovery replay,
// model publication) completed, shutdown has not begun, and the circuit
// breaker is not open. An open breaker means primary estimates are being
// diverted — still correct via the fallback, but a load balancer with a
// healthy replica should prefer it.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case !s.ready.Load():
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{
			"status": "unready", "reason": "starting or shutting down",
		})
	case s.est.BreakerOpen():
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{
			"status": "unready", "reason": "circuit breaker open",
		})
	default:
		s.writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}

// --- Plumbing ---------------------------------------------------------------

const maxBodyBytes = 1 << 20 // 1 MiB of JSON is far beyond any sane request

func decodeJSON(r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("invalid JSON body: %w", err)
	}
	return nil
}

// statusFor maps the facade's typed sentinel errors to HTTP status codes —
// the reason the facade exposes them.
func statusFor(err error) int {
	switch {
	case errors.Is(err, crn.ErrDialect), errors.Is(err, crn.ErrNotComparable):
		return http.StatusBadRequest
	case errors.Is(err, crn.ErrNoPoolMatch):
		return http.StatusUnprocessableEntity
	case errors.Is(err, crn.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, crn.ErrBreakerOpen):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func (s *server) writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(body); err != nil && s.logger != nil {
		s.logger.Printf("write response: %v", err)
	}
}

func (s *server) writeError(w http.ResponseWriter, status int, err error) {
	if s.logger != nil && status >= 500 {
		s.logger.Printf("request failed: %v", err)
	}
	if status == http.StatusTooManyRequests {
		// Shed by admission control: momentary pressure, retry immediately
		// after a short pause rather than backing off for long.
		w.Header().Set("Retry-After", "1")
	}
	s.writeJSON(w, status, errorResponse{Error: err.Error()})
}
