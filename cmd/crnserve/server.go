package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"

	"crn"
)

// server is the HTTP front end over the estimation facade: a trained
// containment model, a live queries pool, and a batch-first cardinality
// estimator. All handlers are safe for concurrent use — the pool accepts
// concurrent /record appends while /estimate reads — and every estimation
// runs under the request context, so a disconnecting client cancels its
// work.
type server struct {
	sys   *crn.System
	model *crn.ContainmentModel
	pool  *crn.QueriesPool
	est   *crn.CardinalityEstimator

	// adaptive, when non-nil, is the online-adaptation view of est:
	// /feedback ingests execution feedback through it and /healthz reports
	// the loop's counters. est aliases its CardinalityEstimator, so the
	// estimate handlers need no branching.
	adaptive *crn.AdaptiveEstimator

	started  time.Time
	recorded atomic.Int64 // queries appended via /record
	logger   *log.Logger

	// pprof mounts net/http/pprof under /debug/pprof/ when set (the -pprof
	// flag); off by default so production profiling is an explicit opt-in.
	pprof bool

	estimateLatency latencyStats // single-query /estimate (cardinality mode)
	batchLatency    latencyStats // /estimate/batch
}

func newServer(sys *crn.System, model *crn.ContainmentModel, pool *crn.QueriesPool, est *crn.CardinalityEstimator, logger *log.Logger) *server {
	return &server{sys: sys, model: model, pool: pool, est: est, started: time.Now(), logger: logger}
}

// handler builds the route table.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /estimate", s.handleEstimate)
	mux.HandleFunc("POST /estimate/batch", s.handleEstimateBatch)
	mux.HandleFunc("POST /record", s.handleRecord)
	if s.adaptive != nil {
		mux.HandleFunc("POST /feedback", s.handleFeedback)
	}
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	if s.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// latencyStats tracks request latencies with lock-free counters cheap
// enough for the hot path; /healthz renders a snapshot.
type latencyStats struct {
	count   atomic.Int64
	totalNs atomic.Int64
	maxNs   atomic.Int64
}

func (l *latencyStats) observe(d time.Duration) {
	ns := d.Nanoseconds()
	l.count.Add(1)
	l.totalNs.Add(ns)
	for {
		m := l.maxNs.Load()
		if ns <= m || l.maxNs.CompareAndSwap(m, ns) {
			return
		}
	}
}

// latencySnapshot is the wire form of latencyStats.
type latencySnapshot struct {
	Count     int64   `json:"count"`
	AvgMicros float64 `json:"avg_micros"`
	MaxMicros float64 `json:"max_micros"`
}

func (l *latencyStats) snapshot() latencySnapshot {
	n := l.count.Load()
	out := latencySnapshot{Count: n, MaxMicros: float64(l.maxNs.Load()) / 1e3}
	if n > 0 {
		out.AvgMicros = float64(l.totalNs.Load()) / float64(n) / 1e3
	}
	return out
}

// --- Wire types -------------------------------------------------------------

// estimateRequest drives /estimate: either Query (cardinality mode) or Q1+Q2
// (containment mode).
type estimateRequest struct {
	Query string `json:"query,omitempty"`
	Q1    string `json:"q1,omitempty"`
	Q2    string `json:"q2,omitempty"`
}

type estimateResponse struct {
	Cardinality *float64 `json:"cardinality,omitempty"`
	Containment *float64 `json:"containment,omitempty"`
}

type batchRequest struct {
	Queries []string `json:"queries"`
}

type batchResponse struct {
	Cardinalities []float64 `json:"cardinalities"`
	Count         int       `json:"count"`
}

type recordRequest struct {
	Query string `json:"query"`
}

type recordResponse struct {
	Cardinality int64 `json:"cardinality"`
	Added       bool  `json:"added"`
	PoolSize    int   `json:"pool_size"`
}

// feedbackRequest drives /feedback: execution feedback for a query the
// workload actually ran. Cardinality is a pointer so a missing field is
// distinguishable from an observed empty result.
type feedbackRequest struct {
	Query       string `json:"query"`
	Cardinality *int64 `json:"cardinality"`
}

type feedbackResponse struct {
	// Accepted reports whether the record was staged for retraining
	// (false: already pooled/staged, or the feedback buffer is full).
	Accepted bool `json:"accepted"`
	// Staged is the number of records waiting for the background trainer.
	Staged int `json:"staged"`
	// Generation is the live model generation at response time.
	Generation uint64 `json:"generation"`
	PoolSize   int    `json:"pool_size"`
}

type healthzResponse struct {
	Status        string  `json:"status"`
	PoolSize      int     `json:"pool_size"`
	Recorded      int64   `json:"recorded"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Pool reports the candidate index and capacity bound: entries and FROM
	// keys, configured capacity (0: unbounded), LRU evictions, bounded
	// (top-K) selections and the candidates they scanned/truncated. All
	// selection counters stay zero when -max-candidates is 0.
	Pool     crn.PoolStats     `json:"pool"`
	RepCache crn.RepCacheStats `json:"rep_cache"`
	// Coalescer reports request-coalescing effectiveness: calls vs batch
	// executions, average and max batch size (batched_items / batches),
	// dedup hits, and abandons. All zeros when -coalesce-batch < 2.
	Coalescer       crn.CoalescerStats `json:"coalescer"`
	EstimateLatency latencySnapshot    `json:"estimate_latency"`
	BatchLatency    latencySnapshot    `json:"batch_latency"`
	// Online reports the adaptation loop — live model generation, feedback
	// ingestion, background retraining and drift monitoring — and is
	// omitted when the server runs with -adapt=false.
	Online *crn.AdaptationStats `json:"online,omitempty"`
	// Durable reports the durability layer — WAL appends/syncs/segments,
	// checkpoint history, recovery replay counters — and is omitted without
	// -data-dir.
	Durable *crn.DurabilityStats `json:"durable,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// --- Handlers ---------------------------------------------------------------

func (s *server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	var req estimateRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	switch {
	case req.Query != "" && req.Q1 == "" && req.Q2 == "":
		q, err := s.sys.ParseQuery(req.Query)
		if err != nil {
			s.writeError(w, statusFor(err), err)
			return
		}
		start := time.Now()
		card, err := s.est.EstimateCardinality(r.Context(), q)
		s.estimateLatency.observe(time.Since(start))
		if err != nil {
			s.writeError(w, statusFor(err), err)
			return
		}
		s.writeJSON(w, http.StatusOK, estimateResponse{Cardinality: &card})
	case req.Query == "" && req.Q1 != "" && req.Q2 != "":
		q1, err := s.sys.ParseQuery(req.Q1)
		if err != nil {
			s.writeError(w, statusFor(err), err)
			return
		}
		q2, err := s.sys.ParseQuery(req.Q2)
		if err != nil {
			s.writeError(w, statusFor(err), err)
			return
		}
		// Containment runs on the live generation when adaptation is on (and
		// is the only path for a deployment resumed from a checkpoint, where
		// there is no standalone model handle at all).
		var rate float64
		switch {
		case s.adaptive != nil:
			rate, err = s.adaptive.EstimateContainment(r.Context(), q1, q2)
		case s.model != nil:
			rate, err = s.model.EstimateContainment(r.Context(), q1, q2)
		default:
			err = errors.New("containment estimation unavailable: no model loaded")
		}
		if err != nil {
			s.writeError(w, statusFor(err), err)
			return
		}
		s.writeJSON(w, http.StatusOK, estimateResponse{Containment: &rate})
	default:
		s.writeError(w, http.StatusBadRequest,
			errors.New(`provide either "query" (cardinality) or "q1"+"q2" (containment)`))
	}
}

func (s *server) handleEstimateBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Queries) == 0 {
		s.writeError(w, http.StatusBadRequest, errors.New(`"queries" must be non-empty`))
		return
	}
	queries := make([]crn.Query, len(req.Queries))
	for i, sql := range req.Queries {
		q, err := s.sys.ParseQuery(sql)
		if err != nil {
			s.writeError(w, statusFor(err), fmt.Errorf("queries[%d]: %w", i, err))
			return
		}
		queries[i] = q
	}
	start := time.Now()
	cards, err := s.est.EstimateCardinalityBatch(r.Context(), queries)
	s.batchLatency.observe(time.Since(start))
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	s.writeJSON(w, http.StatusOK, batchResponse{Cardinalities: cards, Count: len(cards)})
}

func (s *server) handleRecord(w http.ResponseWriter, r *http.Request) {
	var req recordRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	q, err := s.sys.ParseQuery(req.Query)
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	card, added, err := s.sys.RecordExecuted(r.Context(), s.pool, q)
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	if added {
		s.recorded.Add(1)
		// No cache flush here: the estimator's representation cache is
		// subscribed to the pool and absorbs the mutation surgically (an
		// insert invalidates nothing, an eviction drops exactly the
		// evicted entry's rows), so the warm working set keeps serving.
	}
	s.writeJSON(w, http.StatusOK, recordResponse{
		Cardinality: card,
		Added:       added,
		PoolSize:    s.pool.Len(),
	})
}

// handleFeedback ingests execution feedback: the query the workload ran
// and the true cardinality it observed. The record feeds the adaptation
// loop (pool growth, background retraining, drift monitoring); the call
// itself never blocks on training.
func (s *server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	var req feedbackRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Query == "" || req.Cardinality == nil {
		s.writeError(w, http.StatusBadRequest,
			errors.New(`provide "query" and its observed "cardinality"`))
		return
	}
	if *req.Cardinality < 0 {
		s.writeError(w, http.StatusBadRequest,
			errors.New(`"cardinality" must be a non-negative observed row count`))
		return
	}
	accepted, err := s.adaptive.RecordFeedback(r.Context(), req.Query, *req.Cardinality)
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	// Lightweight accessors, not AdaptationStats: the full snapshot sorts
	// the whole drift window, which has no place on a per-request path.
	s.writeJSON(w, http.StatusOK, feedbackResponse{
		Accepted:   accepted,
		Staged:     s.adaptive.StagedFeedback(),
		Generation: s.adaptive.ModelGeneration(),
		PoolSize:   s.pool.Len(),
	})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := healthzResponse{
		Status:          "ok",
		PoolSize:        s.pool.Len(),
		Recorded:        s.recorded.Load(),
		UptimeSeconds:   time.Since(s.started).Seconds(),
		Pool:            s.pool.Stats(),
		RepCache:        s.est.CacheStats(),
		Coalescer:       s.est.CoalescerStats(),
		EstimateLatency: s.estimateLatency.snapshot(),
		BatchLatency:    s.batchLatency.snapshot(),
	}
	if s.adaptive != nil {
		st := s.adaptive.AdaptationStats()
		resp.Online = &st
		resp.Durable = s.adaptive.DurabilityStats()
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// --- Plumbing ---------------------------------------------------------------

const maxBodyBytes = 1 << 20 // 1 MiB of JSON is far beyond any sane request

func decodeJSON(r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("invalid JSON body: %w", err)
	}
	return nil
}

// statusFor maps the facade's typed sentinel errors to HTTP status codes —
// the reason the facade exposes them.
func statusFor(err error) int {
	switch {
	case errors.Is(err, crn.ErrDialect), errors.Is(err, crn.ErrNotComparable):
		return http.StatusBadRequest
	case errors.Is(err, crn.ErrNoPoolMatch):
		return http.StatusUnprocessableEntity
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func (s *server) writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(body); err != nil && s.logger != nil {
		s.logger.Printf("write response: %v", err)
	}
}

func (s *server) writeError(w http.ResponseWriter, status int, err error) {
	if s.logger != nil && status >= 500 {
		s.logger.Printf("request failed: %v", err)
	}
	s.writeJSON(w, status, errorResponse{Error: err.Error()})
}
