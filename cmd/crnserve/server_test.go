package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"crn"
)

var (
	envOnce sync.Once
	envSrv  *server
	envErr  error
)

// testServer builds one tiny trained serving stack for the whole test
// package; individual tests get fresh httptest servers over its handler but
// share the model (training dominates setup time). Benchmarks share it too
// (TB), which is why BenchmarkServeStages reports quantiles from a windowed
// snapshot delta rather than the cumulative histograms.
func testServer(t testing.TB) *server {
	t.Helper()
	envOnce.Do(func() {
		ctx := context.Background()
		sys, err := crn.OpenSynthetic(ctx, crn.WithTitles(300), crn.WithDataSeed(7))
		if err != nil {
			envErr = err
			return
		}
		mcfg := crn.DefaultModelConfig()
		mcfg.Hidden = 8
		mcfg.Epochs = 2
		mcfg.Patience = 1
		model, err := sys.TrainContainmentModel(ctx,
			crn.WithPairs(150), crn.WithSeed(3), crn.WithModelConfig(mcfg))
		if err != nil {
			envErr = err
			return
		}
		pool := sys.NewQueriesPool()
		if err := sys.SeedPool(ctx, pool, 30, 11); err != nil {
			envErr = err
			return
		}
		base, err := sys.AnalyzeBaseline()
		if err != nil {
			envErr = err
			return
		}
		// Coalescing on, as in the default serving configuration: the
		// equivalence assertions below (batch == single) therefore also pin
		// the coalesced path to the batched path through the HTTP surface.
		// Telemetry on too, so every handler test also exercises the
		// instrumented path and /healthz renders from the registry snapshot.
		tel := crn.NewTelemetry()
		est := sys.CardinalityEstimator(model, pool,
			crn.WithFallback(base), crn.WithCoalescing(16, 0), crn.WithTelemetry(tel))
		envSrv = newServer(sys, model, pool, est, nil)
		envSrv.setTelemetry(tel)
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envSrv
}

func postJSONErr(url string, body any) (int, []byte, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return 0, nil, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, out.Bytes(), nil
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	status, out, err := postJSONErr(url, body)
	if err != nil {
		t.Fatal(err)
	}
	return &http.Response{StatusCode: status}, out
}

func TestEstimateEndpoints(t *testing.T) {
	ts := httptest.NewServer(testServer(t).handler())
	defer ts.Close()

	// Cardinality mode.
	resp, body := postJSON(t, ts.URL+"/estimate",
		map[string]string{"query": "SELECT * FROM title WHERE title.production_year > 1980"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/estimate: status %d body %s", resp.StatusCode, body)
	}
	var er estimateResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Cardinality == nil || *er.Cardinality < 0 {
		t.Errorf("cardinality = %v", er.Cardinality)
	}

	// Containment mode.
	resp, body = postJSON(t, ts.URL+"/estimate", map[string]string{
		"q1": "SELECT * FROM title WHERE title.production_year > 1990",
		"q2": "SELECT * FROM title WHERE title.production_year > 1980",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/estimate containment: status %d body %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Containment == nil || *er.Containment < 0 || *er.Containment > 1 {
		t.Errorf("containment = %v", er.Containment)
	}

	// Batch matches single-call estimates exactly.
	queries := []string{
		"SELECT * FROM title WHERE title.production_year > 1980",
		"SELECT * FROM title WHERE title.kind_id = 2",
		"SELECT * FROM title",
	}
	resp, body = postJSON(t, ts.URL+"/estimate/batch", map[string]any{"queries": queries})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/estimate/batch: status %d body %s", resp.StatusCode, body)
	}
	var br batchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.Count != len(queries) || len(br.Cardinalities) != len(queries) {
		t.Fatalf("batch response = %+v", br)
	}
	for i, q := range queries {
		_, single := postJSON(t, ts.URL+"/estimate", map[string]string{"query": q})
		var sr estimateResponse
		if err := json.Unmarshal(single, &sr); err != nil {
			t.Fatal(err)
		}
		if sr.Cardinality == nil || *sr.Cardinality != br.Cardinalities[i] {
			t.Errorf("query %d: batch %v != single %v", i, br.Cardinalities[i], sr.Cardinality)
		}
	}
}

func TestErrorMapping(t *testing.T) {
	ts := httptest.NewServer(testServer(t).handler())
	defer ts.Close()

	// Dialect errors are 400.
	resp, _ := postJSON(t, ts.URL+"/estimate", map[string]string{"query": "SELECT count(*) FROM title"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad dialect: status %d, want 400", resp.StatusCode)
	}
	// Missing fields are 400.
	resp, _ = postJSON(t, ts.URL+"/estimate", map[string]string{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty request: status %d, want 400", resp.StatusCode)
	}
	// Containment over different FROM clauses is a client error, not a 500.
	resp, _ = postJSON(t, ts.URL+"/estimate", map[string]string{
		"q1": "SELECT * FROM title",
		"q2": "SELECT * FROM cast_info",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("incomparable FROM clauses: status %d, want 400", resp.StatusCode)
	}
	// Unknown routes are 404.
	resp, err := http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown route: status %d, want 404", resp.StatusCode)
	}
}

func TestNoPoolMatchMapsTo422(t *testing.T) {
	base := testServer(t)
	// An estimator without fallback over an empty pool: every estimate
	// misses.
	empty := base.sys.NewQueriesPool()
	bare := newServer(base.sys, base.model, empty,
		base.sys.CardinalityEstimator(base.model, empty), nil)
	ts := httptest.NewServer(bare.handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/estimate", map[string]string{"query": "SELECT * FROM title"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("pool miss: status %d body %s, want 422", resp.StatusCode, body)
	}
}

func TestHealthz(t *testing.T) {
	ts := httptest.NewServer(testServer(t).handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hr healthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	if hr.Status != "ok" || hr.PoolSize <= 0 {
		t.Errorf("healthz = %+v", hr)
	}
}

// TestHealthzServingStats checks the serving counters added for the
// high-concurrency pipeline: /healthz must expose coalescer stats and
// estimate/batch latency counters that move under traffic.
func TestHealthzServingStats(t *testing.T) {
	ts := httptest.NewServer(testServer(t).handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		status, body, err := postJSONErr(ts.URL+"/estimate",
			map[string]string{"query": "SELECT * FROM title WHERE title.production_year > 1970"})
		if err != nil || status != http.StatusOK {
			t.Fatalf("estimate %d: status %d err %v body %s", i, status, err, body)
		}
	}
	status, body, err := postJSONErr(ts.URL+"/estimate/batch", map[string]any{"queries": []string{
		"SELECT * FROM title WHERE title.kind_id = 2",
	}})
	if err != nil || status != http.StatusOK {
		t.Fatalf("batch: status %d err %v body %s", status, err, body)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hr healthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	if hr.Coalescer.Calls == 0 || hr.Coalescer.Batches == 0 {
		t.Errorf("coalescer counters never moved: %+v", hr.Coalescer)
	}
	if hr.Coalescer.BatchedItems < hr.Coalescer.Batches {
		t.Errorf("inconsistent coalescer stats: %+v", hr.Coalescer)
	}
	if hr.EstimateLatency.Count < 3 || hr.EstimateLatency.AvgMicros <= 0 || hr.EstimateLatency.MaxMicros < hr.EstimateLatency.AvgMicros {
		t.Errorf("estimate latency counters wrong: %+v", hr.EstimateLatency)
	}
	if hr.BatchLatency.Count < 1 || hr.BatchLatency.AvgMicros <= 0 {
		t.Errorf("batch latency counters wrong: %+v", hr.BatchLatency)
	}
}

// TestPprofFlagGatesDebugRoutes: the profiling endpoints exist exactly when
// the -pprof flag is set.
func TestPprofFlagGatesDebugRoutes(t *testing.T) {
	base := testServer(t)

	off := httptest.NewServer(base.handler())
	defer off.Close()
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof off: /debug/pprof/ status %d, want 404", resp.StatusCode)
	}

	withPprof := newServer(base.sys, base.model, base.pool, base.est, nil)
	withPprof.pprof = true
	on := httptest.NewServer(withPprof.handler())
	defer on.Close()
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof on: /debug/pprof/ status %d, want 200", resp.StatusCode)
	}
	resp, err = http.Get(on.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof on: /debug/pprof/cmdline status %d, want 200", resp.StatusCode)
	}
}

// TestConcurrentRecordAndEstimate is the serving scenario of §5.2 under the
// race detector: /record appends to the pool while /estimate/batch reads it
// from concurrent goroutines.
func TestConcurrentRecordAndEstimate(t *testing.T) {
	ts := httptest.NewServer(testServer(t).handler())
	defer ts.Close()

	const workers = 8
	const perWorker = 5
	var wg sync.WaitGroup
	errs := make(chan string, workers*perWorker*2)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				year := 1900 + (w*perWorker+i)%100
				record := fmt.Sprintf("SELECT * FROM title WHERE title.production_year > %d", year)
				status, body, err := postJSONErr(ts.URL+"/record", map[string]string{"query": record})
				if err != nil {
					errs <- fmt.Sprintf("/record: %v", err)
				} else if status != http.StatusOK {
					errs <- fmt.Sprintf("/record: status %d body %s", status, body)
				}
				status, body, err = postJSONErr(ts.URL+"/estimate/batch", map[string]any{"queries": []string{
					fmt.Sprintf("SELECT * FROM title WHERE title.production_year > %d", year+1),
					"SELECT * FROM title WHERE title.kind_id = 2",
				}})
				if err != nil {
					errs <- fmt.Sprintf("/estimate/batch: %v", err)
				} else if status != http.StatusOK {
					errs <- fmt.Sprintf("/estimate/batch: status %d body %s", status, body)
				}
				// Single-query estimates exercise the request coalescer
				// concurrently with the pool mutations above.
				status, body, err = postJSONErr(ts.URL+"/estimate", map[string]string{
					"query": fmt.Sprintf("SELECT * FROM title WHERE title.production_year > %d", year+2),
				})
				if err != nil {
					errs <- fmt.Sprintf("/estimate: %v", err)
				} else if status != http.StatusOK {
					errs <- fmt.Sprintf("/estimate: status %d body %s", status, body)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	// The pool grew during the hammering.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hr healthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	if hr.Recorded == 0 {
		t.Error("no queries were recorded")
	}
}

// TestBoundedPoolConfigAndHealthz drives the -pool-cap / -max-candidates
// serving configuration end to end: /record pushes a capacity-bounded pool
// into LRU eviction, bounded estimates run signature-indexed top-K
// selection, and /healthz exposes the index and eviction counters.
func TestBoundedPoolConfigAndHealthz(t *testing.T) {
	base := testServer(t)
	bounded := base.sys.NewQueriesPool(crn.WithPoolCap(4))
	fb, err := base.sys.AnalyzeBaseline()
	if err != nil {
		t.Fatal(err)
	}
	est := base.sys.CardinalityEstimator(base.model, bounded,
		crn.WithFallback(fb), crn.WithMaxCandidates(2))
	srv := newServer(base.sys, base.model, bounded, est, nil)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	// Six recordings into a 4-entry pool: two LRU evictions.
	for i := 0; i < 6; i++ {
		status, body, err := postJSONErr(ts.URL+"/record", map[string]string{
			"query": fmt.Sprintf("SELECT * FROM title WHERE title.production_year > %d", 1900+i),
		})
		if err != nil || status != http.StatusOK {
			t.Fatalf("record %d: status %d err %v body %s", i, status, err, body)
		}
	}
	// A bounded estimate over the 4 pooled "title" candidates: top-2
	// selection must truncate.
	status, body, err := postJSONErr(ts.URL+"/estimate",
		map[string]string{"query": "SELECT * FROM title WHERE title.production_year > 1950"})
	if err != nil || status != http.StatusOK {
		t.Fatalf("bounded estimate: status %d err %v body %s", status, err, body)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hr healthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	if hr.PoolSize != 4 || hr.Pool.Entries != 4 {
		t.Errorf("pool size = %d / %d, want 4 (capacity held)", hr.PoolSize, hr.Pool.Entries)
	}
	if hr.Pool.Capacity != 4 {
		t.Errorf("pool capacity = %d, want 4", hr.Pool.Capacity)
	}
	if hr.Pool.Evictions != 2 {
		t.Errorf("evictions = %d, want 2", hr.Pool.Evictions)
	}
	if hr.Pool.TopKCalls == 0 || hr.Pool.ScannedCandidates == 0 || hr.Pool.TruncatedCalls == 0 {
		t.Errorf("top-K selection counters never moved: %+v", hr.Pool)
	}
}

// adaptiveServer builds a server with the online-adaptation loop attached
// (manual retraining: interval -1, so tests drive promotion explicitly)
// over the shared trained model and a fresh seeded pool.
func adaptiveServer(t *testing.T) *server {
	t.Helper()
	base := testServer(t)
	ctx := context.Background()
	pool := base.sys.NewQueriesPool()
	if err := base.sys.SeedPool(ctx, pool, 10, 13); err != nil {
		t.Fatal(err)
	}
	ae := base.sys.AdaptiveEstimator(base.model, pool,
		crn.WithRetrainInterval(-1),
		crn.WithRetrainEpochs(1),
		crn.WithFeedbackPairs(2),
		crn.WithPromoteTolerance(10))
	t.Cleanup(ae.Close)
	srv := newServer(base.sys, base.model, pool, ae.CardinalityEstimator, nil)
	srv.adaptive = ae
	return srv
}

// TestFeedbackEndpoint drives /feedback end to end: ingestion, validation
// errors, duplicate handling, a manually driven retrain promoting a new
// model generation, and the /healthz "online" section reflecting it all.
func TestFeedbackEndpoint(t *testing.T) {
	srv := adaptiveServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	// Valid feedback is staged.
	sql := "SELECT * FROM title WHERE title.production_year > 1961"
	status, body, err := postJSONErr(ts.URL+"/feedback",
		map[string]any{"query": sql, "cardinality": 40})
	if err != nil || status != http.StatusOK {
		t.Fatalf("feedback: status %d err %v body %s", status, err, body)
	}
	var fr feedbackResponse
	if err := json.Unmarshal(body, &fr); err != nil {
		t.Fatal(err)
	}
	if !fr.Accepted || fr.Staged != 1 || fr.Generation != 1 {
		t.Fatalf("feedback response = %+v", fr)
	}

	// The same query again is a duplicate, not an error.
	status, body, err = postJSONErr(ts.URL+"/feedback",
		map[string]any{"query": sql, "cardinality": 40})
	if err != nil || status != http.StatusOK {
		t.Fatalf("duplicate feedback: status %d err %v", status, err)
	}
	if err := json.Unmarshal(body, &fr); err != nil {
		t.Fatal(err)
	}
	if fr.Accepted || fr.Staged != 1 {
		t.Fatalf("duplicate must not re-stage: %+v", fr)
	}

	// Validation failures map to 400.
	for name, req := range map[string]map[string]any{
		"missing cardinality": {"query": sql},
		"negative":            {"query": sql, "cardinality": -3},
		"bad dialect":         {"query": "DELETE FROM title", "cardinality": 1},
		"missing query":       {"cardinality": 4},
	} {
		status, _, err := postJSONErr(ts.URL+"/feedback", req)
		if err != nil || status != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (err %v)", name, status, err)
		}
	}

	// A second record, then a manual retrain: the generous tolerance gate
	// promotes generation 2 and the pool grew by the feedback.
	poolBefore := srv.pool.Len()
	if status, _, err := postJSONErr(ts.URL+"/feedback", map[string]any{
		"query": "SELECT * FROM title WHERE title.production_year > 1987", "cardinality": 11,
	}); err != nil || status != http.StatusOK {
		t.Fatalf("second feedback: status %d err %v", status, err)
	}
	promoted, err := srv.adaptive.Retrain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !promoted {
		t.Fatalf("retrain did not promote: %+v", srv.adaptive.AdaptationStats())
	}
	if got := srv.pool.Len(); got != poolBefore+2 {
		t.Errorf("pool size = %d, want %d (feedback becomes pool entries)", got, poolBefore+2)
	}

	// Estimates keep working on the promoted generation.
	status, body, err = postJSONErr(ts.URL+"/estimate", map[string]string{"query": sql})
	if err != nil || status != http.StatusOK {
		t.Fatalf("post-promotion estimate: status %d err %v body %s", status, err, body)
	}

	// /healthz surfaces the whole loop.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hr healthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	if hr.Online == nil {
		t.Fatal("healthz must report the online section when adaptation is on")
	}
	if hr.Online.Generation != 2 {
		t.Errorf("generation = %d, want 2", hr.Online.Generation)
	}
	if hr.Online.Trainer.Promotions != 1 || hr.Online.Trainer.Retrains != 1 {
		t.Errorf("trainer stats = %+v", hr.Online.Trainer)
	}
	if hr.Online.Collector.Accepted != 2 || hr.Online.Collector.Duplicates == 0 {
		t.Errorf("collector stats = %+v", hr.Online.Collector)
	}
	if hr.Online.Collector.Staged != 0 {
		t.Errorf("retrain must drain staged feedback: %+v", hr.Online.Collector)
	}
	if hr.Online.Drift.QError.Total == 0 {
		t.Errorf("drift monitor never observed: %+v", hr.Online.Drift)
	}
}

// TestFeedbackDisabledWithoutAdaptation pins that a server without the
// adaptation loop does not expose /feedback and omits the online health
// section.
func TestFeedbackDisabledWithoutAdaptation(t *testing.T) {
	srv := testServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	status, _, err := postJSONErr(ts.URL+"/feedback",
		map[string]any{"query": "SELECT * FROM title", "cardinality": 1})
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusNotFound {
		t.Errorf("/feedback on a non-adaptive server = %d, want 404", status)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hr healthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	if hr.Online != nil {
		t.Errorf("online section must be omitted without adaptation: %+v", hr.Online)
	}
}

// TestHealthzDurableSection drives a durable adaptive server through the
// HTTP surface: /feedback journals to the WAL, /healthz exposes the
// "durable" section, and a non-durable server omits it.
func TestHealthzDurableSection(t *testing.T) {
	base := testServer(t)
	ctx := context.Background()
	pool := base.sys.NewQueriesPool()
	if err := base.sys.SeedPool(ctx, pool, 10, 13); err != nil {
		t.Fatal(err)
	}
	ae, err := base.sys.OpenAdaptiveEstimator(base.model, pool,
		crn.WithRetrainInterval(-1),
		crn.WithRetrainEpochs(1),
		crn.WithFeedbackPairs(2),
		crn.WithPromoteTolerance(10),
		crn.WithDataDir(t.TempDir()),
		crn.WithWALSync("always"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ae.Close)
	srv := newServer(base.sys, base.model, pool, ae.CardinalityEstimator, nil)
	srv.adaptive = ae
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	if status, _, err := postJSONErr(ts.URL+"/feedback", map[string]any{
		"query": "SELECT * FROM title WHERE title.production_year > 1973", "cardinality": 21,
	}); err != nil || status != http.StatusOK {
		t.Fatalf("feedback: status %d err %v", status, err)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hr healthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	if hr.Durable == nil {
		t.Fatal("healthz must report the durable section with a data dir")
	}
	if hr.Durable.WAL.Appends != 1 {
		t.Errorf("wal appends = %d, want 1 (the accepted feedback)", hr.Durable.WAL.Appends)
	}
	if hr.Durable.DataDir == "" {
		t.Errorf("durable stats missing data_dir: %+v", hr.Durable)
	}

	// A server without a data dir omits the section.
	srv2 := adaptiveServer(t)
	ts2 := httptest.NewServer(srv2.handler())
	defer ts2.Close()
	resp2, err := http.Get(ts2.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var hr2 healthzResponse
	if err := json.NewDecoder(resp2.Body).Decode(&hr2); err != nil {
		t.Fatal(err)
	}
	if hr2.Durable != nil {
		t.Errorf("durable section must be omitted without a data dir: %+v", hr2.Durable)
	}
}
