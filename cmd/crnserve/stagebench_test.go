package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"

	"crn/internal/telemetry"
)

// BenchmarkServeStages drives the full HTTP estimate path — mux, JSON
// codec, gate, coalescer, estimator — under parallel load and, when the
// CRN_STAGE_REPORT environment variable names a file, writes the
// per-stage latency breakdown observed during the run there as JSON.
// scripts/bench.sh runs it once to produce the "stage_latency" section of
// the bench report; the quantiles come from a windowed snapshot delta so
// traffic from other tests sharing the package server is excluded.
func BenchmarkServeStages(b *testing.B) {
	srv := testServer(b)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	body := []byte(`{"query":"SELECT * FROM title WHERE title.production_year > 1975"}`)
	url := ts.URL + "/estimate"
	before := stageSnapshots(srv.tel)

	b.SetParallelism(4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp, err := http.Post(url, "application/json", bytes.NewReader(body))
			if err != nil {
				b.Error(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Errorf("status %d", resp.StatusCode)
				return
			}
		}
	})
	b.StopTimer()

	if path := os.Getenv("CRN_STAGE_REPORT"); path != "" && !b.Failed() {
		if err := writeStageReport(path, before, stageSnapshots(srv.tel)); err != nil {
			b.Fatalf("stage report: %v", err)
		}
	}
}

// stageSnapshots captures the six stage histograms plus end-to-end in one
// pass, keyed by stage name.
func stageSnapshots(t *telemetry.Telemetry) map[string]telemetry.HistSnapshot {
	s := t.Stages
	return map[string]telemetry.HistSnapshot{
		telemetry.StageAdmission:          s.Admission.Snapshot(),
		telemetry.StageCoalesceWait:       s.CoalesceWait.Snapshot(),
		telemetry.StageCacheLookup:        s.CacheLookup.Snapshot(),
		telemetry.StageCandidateSelection: s.CandidateSelection.Snapshot(),
		telemetry.StageNNForward:          s.NNForward.Snapshot(),
		telemetry.StageFinalize:           s.Finalize.Snapshot(),
		"e2e":                             t.E2E.Snapshot(),
	}
}

// writeStageReport subtracts the pre-run snapshots and writes
// {stage: {count, p50_us, p99_us}} for every stage that recorded spans
// during the benchmark window.
func writeStageReport(path string, before, after map[string]telemetry.HistSnapshot) error {
	type row struct {
		Count    uint64  `json:"count"`
		P50Us    float64 `json:"p50_us"`
		P99Us    float64 `json:"p99_us"`
		AvgUs    float64 `json:"avg_us"`
		ShareE2E float64 `json:"share_of_e2e"`
	}
	window := make(map[string]telemetry.HistSnapshot, len(after))
	for stage, snap := range after {
		window[stage] = snap.Sub(before[stage])
	}
	e2eSum := window["e2e"].ApproxSum()
	report := make(map[string]row, len(window))
	for stage, w := range window {
		n := w.Total()
		if n == 0 {
			continue
		}
		r := row{
			Count: n,
			P50Us: w.Quantile(0.50) * 1e6,
			P99Us: w.Quantile(0.99) * 1e6,
			AvgUs: w.ApproxSum() / float64(n) * 1e6,
		}
		if stage != "e2e" && e2eSum > 0 {
			r.ShareE2E = w.ApproxSum() / e2eSum
		}
		report[stage] = r
	}
	if len(report) == 0 {
		return fmt.Errorf("no stage spans recorded during benchmark window")
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
