package main

import (
	"math"
	"net/http"
	"net/http/pprof"
	"time"

	"crn"
	"crn/internal/telemetry"
)

// This file wires the serving telemetry bundle into the HTTP front end:
// GET /metrics (Prometheus text exposition over the estimator's registry),
// the server-level collector families (HTTP routes, ingest gate, wire
// codec traffic and frame sizes), the optional separate operational
// listener (-metrics-addr), and the registry-snapshot rendering /healthz
// switches to when telemetry is on.

// setTelemetry attaches the telemetry bundle the estimator records into
// and registers the server-level families on its registry: per-route HTTP
// outcomes, the ingest gate, /estimate/batch codec traffic with frame-size
// histograms, and process uptime. Call once, after setIngestLimit and
// before serving; a nil bundle (the -telemetry=false path) leaves every
// instrument nil and /metrics unrouted.
func (s *server) setTelemetry(t *crn.Telemetry) {
	if t == nil {
		return
	}
	s.tel = t
	reg := t.Registry()

	// Wire layer: frame sizes as histograms (the shape of batch traffic),
	// request/byte totals as collector families over the counters the
	// handlers already maintain — /healthz and /metrics read one source.
	reqBytes := reg.HistogramVec("crn_wire_request_bytes",
		"Request body size of /estimate/batch calls, per codec.",
		"codec", telemetry.SizeOpts)
	respBytes := reg.HistogramVec("crn_wire_response_bytes",
		"Response body size of /estimate/batch calls, per codec.",
		"codec", telemetry.SizeOpts)
	s.jsonReqBytes = reqBytes.With("json")
	s.jsonRespBytes = respBytes.With("json")
	s.binReqBytes = reqBytes.With("binary")
	s.binRespBytes = respBytes.With("binary")
	reg.CollectCounter("crn_wire_requests_total",
		"Batch estimate requests by codec.", "codec", func(emit telemetry.Emit) {
			emit(float64(s.wireIO.jsonRequests.Load()), "json")
			emit(float64(s.wireIO.binaryRequests.Load()), "binary")
		})
	reg.CollectCounter("crn_wire_in_bytes_total",
		"Batch request bytes read by codec.", "codec", func(emit telemetry.Emit) {
			emit(float64(s.wireIO.jsonBytesIn.Load()), "json")
			emit(float64(s.wireIO.binaryBytesIn.Load()), "binary")
		})
	reg.CollectCounter("crn_wire_out_bytes_total",
		"Batch response bytes written by codec.", "codec", func(emit telemetry.Emit) {
			emit(float64(s.wireIO.jsonBytesOut.Load()), "json")
			emit(float64(s.wireIO.binaryBytesOut.Load()), "binary")
		})
	reg.CollectCounter("crn_wire_buffer_ops_total",
		"Binary-path pooled buffer operations (get, miss).", "op", func(emit telemetry.Emit) {
			gets, misses := s.bufPool.Stats()
			emit(float64(gets), "get")
			emit(float64(misses), "miss")
		})
	reg.CollectGauge("crn_wire_binary_enabled",
		"Whether the application/x-crn-batch protocol is being served (the -binary-batch kill switch).",
		"", func(emit telemetry.Emit) {
			v := 0.0
			if s.binaryBatch {
				v = 1
			}
			emit(v, "")
		})

	// HTTP layer: per-route outcome counters, gathered from the atomics
	// the counted middleware maintains.
	routes := []struct {
		name string
		ep   *endpointCounters
	}{
		{"estimate", &s.epEstimate},
		{"estimate_batch", &s.epBatch},
		{"record", &s.epRecord},
		{"feedback", &s.epFeedback},
	}
	reg.CollectCounter("crn_http_requests_total",
		"HTTP requests by route.", "route", func(emit telemetry.Emit) {
			for _, rt := range routes {
				emit(float64(rt.ep.requests.Load()), rt.name)
			}
		})
	reg.CollectCounter("crn_http_shed_total",
		"HTTP requests shed with 429 by route.", "route", func(emit telemetry.Emit) {
			for _, rt := range routes {
				emit(float64(rt.ep.shed.Load()), rt.name)
			}
		})
	reg.CollectCounter("crn_http_failures_total",
		"HTTP requests failed with a non-shed 4xx/5xx by route.", "route", func(emit telemetry.Emit) {
			for _, rt := range routes {
				emit(float64(rt.ep.failed.Load()), rt.name)
			}
		})

	// Ingest gate: the server-level admission bound over /record and
	// /feedback (the endpoints that execute the truth oracle).
	reg.CollectGauge("crn_ingest_inflight",
		"Concurrently admitted /record + /feedback requests.", "", func(emit telemetry.Emit) {
			emit(float64(s.ingestGate.Stats().Inflight), "")
		})
	reg.CollectCounter("crn_ingest_requests_total",
		"Ingest-gate decisions over /record + /feedback (admitted, shed).",
		"decision", func(emit telemetry.Emit) {
			gs := s.ingestGate.Stats()
			emit(float64(gs.Admitted), "admitted")
			emit(float64(gs.Shed), "shed")
		})
	reg.CollectCounter("crn_recorded_queries_total",
		"Queries appended to the pool via /record.", "", func(emit telemetry.Emit) {
			emit(float64(s.recorded.Load()), "")
		})
	reg.GaugeFunc("crn_process_uptime_seconds",
		"Seconds since the server started.", func() float64 {
			return time.Since(s.started).Seconds()
		})
}

// handleMetrics serves the registry in Prometheus text exposition format.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", crn.MetricsContentType)
	if err := s.tel.Registry().WriteText(w); err != nil && s.logger != nil {
		s.logger.Printf("write metrics: %v", err)
	}
}

// metricsHandler builds the route table of the separate operational
// listener (-metrics-addr): /metrics (when telemetry is on) plus
// /debug/pprof unconditionally — the point of the second listener is that
// neither is exposed on the public serving port.
func (s *server) metricsHandler() http.Handler {
	mux := http.NewServeMux()
	if s.tel != nil {
		mux.HandleFunc("GET /metrics", s.handleMetrics)
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// --- /healthz telemetry rendering -------------------------------------------

// stageQuantiles is one stage's latency summary in the /healthz
// "telemetry" section.
type stageQuantiles struct {
	Count     uint64  `json:"count"`
	P50Micros float64 `json:"p50_micros"`
	P99Micros float64 `json:"p99_micros"`
}

// qerrorQuantiles is one estimator arm's live-accuracy summary.
type qerrorQuantiles struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
}

// telemetrySummary is the "telemetry" section of /healthz, rendered from
// one registry gather: request outcomes, per-stage latency quantiles, and
// the per-arm live q-error distributions.
type telemetrySummary struct {
	// Requests counts estimate outcomes (ok, error, shed, fallback).
	Requests map[string]uint64 `json:"requests"`
	// Stages maps stage name -> count and p50/p99 latency.
	Stages map[string]stageQuantiles `json:"stages"`
	// QError maps estimator arm (crn, fallback) -> live q-error quantiles
	// from feedback truths joined against recent estimates.
	QError map[string]qerrorQuantiles `json:"qerror"`
	// AccuracyJoined/Unmatched count feedback truths that did / did not
	// find their estimate in the recent-estimate ring.
	AccuracyJoined    uint64 `json:"accuracy_joined"`
	AccuracyUnmatched uint64 `json:"accuracy_unmatched"`
}

// latencyFromHist renders the legacy latency snapshot shape from a
// histogram snapshot: the average from the approximate sum, the max as the
// upper edge of the highest occupied bucket (clamped to the histogram
// ceiling when the overflow bucket is occupied).
func latencyFromHist(snap telemetry.HistSnapshot) latencySnapshot {
	n := snap.Total()
	out := latencySnapshot{Count: int64(n)}
	if n == 0 {
		return out
	}
	out.AvgMicros = snap.ApproxSum() / float64(n) * 1e6
	max := snap.Max()
	if math.IsInf(max, 1) {
		max = math.Ldexp(1, snap.Opts.MaxExp)
	}
	out.MaxMicros = max * 1e6
	return out
}

// telemetrySnapshot gathers every telemetry-backed /healthz value in one
// pass — each histogram snapshotted exactly once, counters read once — so
// related values in the response come from a single coherent gather
// instead of field-by-field reads spread across the render. Returns the
// summary section plus the estimate/batch latency snapshots derived from
// the same end-to-end histograms /metrics exposes.
func (s *server) telemetrySnapshot() (*telemetrySummary, latencySnapshot, latencySnapshot) {
	t := s.tel
	stageHists := map[string]*telemetry.Histogram{
		telemetry.StageAdmission:          t.Stages.Admission,
		telemetry.StageCoalesceWait:       t.Stages.CoalesceWait,
		telemetry.StageCacheLookup:        t.Stages.CacheLookup,
		telemetry.StageCandidateSelection: t.Stages.CandidateSelection,
		telemetry.StageNNForward:          t.Stages.NNForward,
		telemetry.StageFinalize:           t.Stages.Finalize,
	}
	sum := &telemetrySummary{
		Requests: map[string]uint64{
			telemetry.OutcomeOK:       t.ReqOK.Load(),
			telemetry.OutcomeError:    t.ReqError.Load(),
			telemetry.OutcomeShed:     t.ReqShed.Load(),
			telemetry.OutcomeFallback: t.ReqFallback.Load(),
		},
		Stages: make(map[string]stageQuantiles, len(stageHists)),
		QError: make(map[string]qerrorQuantiles, 2),
	}
	for name, h := range stageHists {
		snap := h.Snapshot()
		sum.Stages[name] = stageQuantiles{
			Count:     snap.Total(),
			P50Micros: snap.Quantile(0.50) * 1e6,
			P99Micros: snap.Quantile(0.99) * 1e6,
		}
	}
	for _, arm := range []telemetry.Arm{telemetry.ArmCRN, telemetry.ArmFallback} {
		snap := t.Accuracy.Hist(arm).Snapshot()
		sum.QError[arm.String()] = qerrorQuantiles{
			Count: snap.Total(),
			P50:   snap.Quantile(0.50),
			P95:   snap.Quantile(0.95),
		}
	}
	sum.AccuracyJoined = t.Accuracy.Joined()
	sum.AccuracyUnmatched = t.Accuracy.Unmatched()
	return sum, latencyFromHist(t.E2E.Snapshot()), latencyFromHist(t.BatchE2E.Snapshot())
}
