// Command crntrain trains a CRN containment-rate model over the synthetic
// database and writes the serialized model to a file. The model is bound to
// the database's featurization (schema one-hots and column min/max
// statistics), so evaluation must use the same -titles/-db-seed values.
// Interrupting with Ctrl-C cancels labeling/training at the next epoch
// boundary.
//
// Usage:
//
//	crntrain -titles 4000 -pairs 6000 -hidden 64 -o crn.model
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"crn"
)

func main() {
	titles := flag.Int("titles", 4000, "synthetic database size (title rows)")
	dbSeed := flag.Int64("db-seed", 1, "database generation seed")
	pairs := flag.Int("pairs", 6000, "training pairs (0-2 joins, §3.1.2)")
	genSeed := flag.Int64("seed", 1, "workload generation seed")
	hidden := flag.Int("hidden", 64, "hidden layer size H")
	epochs := flag.Int("epochs", 60, "maximum training epochs")
	patience := flag.Int("patience", 10, "early-stopping patience")
	loss := flag.String("loss", "q-error", "training loss: q-error, mse or mae")
	out := flag.String("o", "crn.model", "output model file")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	sys, err := crn.OpenSynthetic(ctx, crn.WithTitles(*titles), crn.WithDataSeed(*dbSeed))
	if err != nil {
		fail("open database: %v", err)
	}
	mcfg := crn.DefaultModelConfig()
	mcfg.Hidden = *hidden
	mcfg.Epochs = *epochs
	mcfg.Patience = *patience
	mcfg.Loss = *loss

	start := time.Now()
	model, err := sys.TrainContainmentModel(ctx,
		crn.WithPairs(*pairs),
		crn.WithSeed(*genSeed),
		crn.WithModelConfig(mcfg),
		crn.WithProgress(func(epoch int, valQ float64) {
			fmt.Fprintf(os.Stderr, "epoch %3d: validation mean q-error %.3f\n", epoch, valQ)
		}),
	)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fail("interrupted after %v", time.Since(start).Round(time.Second))
		}
		fail("train: %v", err)
	}
	blob, err := model.Save()
	if err != nil {
		fail("serialize: %v", err)
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fail("write %s: %v", *out, err)
	}
	fmt.Printf("trained in %v, wrote %d bytes to %s\n",
		time.Since(start).Round(time.Second), len(blob), *out)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "crntrain: "+format+"\n", args...)
	os.Exit(1)
}
