// Command repro regenerates the paper's evaluation: every table and figure
// (Tables 2-15, Figures 3-13) over the synthetic IMDb-like database.
//
// Usage:
//
//	repro [-scale tiny|small|full] [-exp all|table3|fig10|...] [-v] [-o results.txt]
//
// The -scale flag selects the environment size (DESIGN.md §1 documents how
// the Small scale maps to the paper's setup); -exp runs one experiment or
// the full suite; -v streams build/training progress; -o additionally
// writes the rendered tables to a file.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"crn/internal/experiments"
)

func main() {
	scale := flag.String("scale", "small", "environment scale: tiny, small or full")
	exp := flag.String("exp", "all", "experiment id (see DESIGN.md) or 'all'")
	verbose := flag.Bool("v", false, "stream build and training progress")
	out := flag.String("o", "", "also write rendered tables to this file")
	seed := flag.Int64("seed", 0, "override the environment seed")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.ExperimentIDs(), "\n"))
		return
	}

	var cfg experiments.Config
	switch *scale {
	case "tiny":
		cfg = experiments.TinyConfig()
	case "small":
		cfg = experiments.SmallConfig()
	case "full":
		cfg = experiments.FullConfig()
	default:
		fmt.Fprintf(os.Stderr, "repro: unknown scale %q (tiny|small|full)\n", *scale)
		os.Exit(2)
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	var log experiments.Logf
	if *verbose {
		log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "[%s] %s\n", time.Now().Format("15:04:05"), fmt.Sprintf(format, args...))
		}
	}

	env, err := experiments.Build(cfg, log)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repro: build environment: %v\n", err)
		os.Exit(1)
	}

	var results []experiments.Result
	if *exp == "all" {
		results, err = experiments.RunAll(env, log)
	} else {
		var r experiments.Result
		r, err = experiments.Run(env, *exp, log)
		results = []experiments.Result{r}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "repro: %v\n", err)
		os.Exit(1)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Reproduction run: scale=%s seed=%d db=%d titles, built in %v\n\n",
		*scale, cfg.Seed, cfg.DBTitles, env.BuildTime.Round(time.Second))
	for _, r := range results {
		b.WriteString(r.Table.Render())
		if r.Plot != "" {
			b.WriteString("\n")
			b.WriteString(r.Plot)
		}
		b.WriteString("\n")
	}
	fmt.Print(b.String())
	if *out != "" {
		if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "repro: write %s: %v\n", *out, err)
			os.Exit(1)
		}
	}
}
