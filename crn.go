// Package crn reproduces "Improved Cardinality Estimation by Learning
// Queries Containment Rates" (Hayek & Shmueli, EDBT 2020) as a
// self-contained Go library.
//
// The containment rate of query Q1 in query Q2 over a database D is the
// fraction of Q1's result rows that also appear in Q2's result. The paper
// (1) learns containment rates directly with a specialized deep model (CRN)
// and (2) turns any containment-rate estimator into a cardinality estimator
// with the help of a queries pool of previously executed queries — improving
// multi-join cardinality estimates by orders of magnitude over PostgreSQL
// and MSCN baselines.
//
// This package is the public facade. A typical session:
//
//	sys, _ := crn.OpenSynthetic(crn.DataConfig{Titles: 4000, Seed: 1})
//	q1, _ := sys.ParseQuery("SELECT * FROM title WHERE title.production_year > 1990")
//	q2, _ := sys.ParseQuery("SELECT * FROM title WHERE title.production_year > 1980")
//
//	model, _ := sys.TrainContainmentModel(crn.TrainConfig{Pairs: 5000})
//	rate, _ := model.EstimateContainment(q1, q2) // ≈ 1.0: q1 ⊆ q2
//
//	pool := sys.NewQueriesPool()
//	sys.RecordExecuted(pool, q2) // executes q2, stores its true cardinality
//	est := sys.CardinalityEstimator(model, pool)
//	card, _ := est.EstimateCardinality(q1)
//
// Everything underneath — the synthetic IMDb-like database, the exact
// executor used for ground truth, the neural-network stack, the MSCN and
// PostgreSQL baselines, and the full experiment harness regenerating every
// table and figure of the paper — lives in internal/ packages and is
// exercised through cmd/repro and the root benchmarks.
package crn

import (
	"fmt"
	"math/rand"

	"crn/internal/algebra"
	"crn/internal/card"
	"crn/internal/contain"
	icrn "crn/internal/crn"
	"crn/internal/datagen"
	"crn/internal/db"
	"crn/internal/exec"
	"crn/internal/feature"
	"crn/internal/optimizer"
	"crn/internal/pg"
	"crn/internal/pool"
	"crn/internal/query"
	"crn/internal/schema"
	"crn/internal/sqlparse"
	"crn/internal/workload"
)

// Query is a conjunctive SELECT * query (tables, equi-joins, column
// predicates); see ParseQuery.
type Query = query.Query

// DataConfig sizes the synthetic IMDb-like database.
type DataConfig struct {
	Titles int   // rows in the fact table `title` (0 = 4000)
	Seed   int64 // generation seed (0 = 1)
}

// System is an opened database with its exact executor: the substrate on
// which models are trained and queries are answered.
type System struct {
	schema *schema.Schema
	db     *db.Database
	exec   *exec.Executor
	enc    *feature.Encoder
}

// OpenSynthetic generates a synthetic IMDb-like database (see
// internal/datagen for the correlation structure) and opens it.
func OpenSynthetic(cfg DataConfig) (*System, error) {
	dg := datagen.DefaultConfig()
	if cfg.Titles > 0 {
		dg.Titles = cfg.Titles
	}
	if cfg.Seed != 0 {
		dg.Seed = cfg.Seed
	}
	d, err := datagen.Generate(dg)
	if err != nil {
		return nil, err
	}
	return Open(d)
}

// Open wraps an existing frozen database.
func Open(d *db.Database) (*System, error) {
	ex, err := exec.New(d)
	if err != nil {
		return nil, err
	}
	enc, err := feature.NewEncoder(d.Schema, d)
	if err != nil {
		return nil, err
	}
	return &System{schema: d.Schema, db: d, exec: ex, enc: enc}, nil
}

// Schema returns the database schema.
func (s *System) Schema() *schema.Schema { return s.schema }

// DB returns the underlying database snapshot.
func (s *System) DB() *db.Database { return s.db }

// ParseQuery parses the supported conjunctive SQL dialect, e.g.
// "SELECT * FROM title, cast_info WHERE title.id = cast_info.movie_id AND
// cast_info.role_id = 2".
func (s *System) ParseQuery(sql string) (Query, error) {
	return sqlparse.Parse(s.schema, sql)
}

// TrueCardinality executes the query exactly and returns its result
// cardinality.
func (s *System) TrueCardinality(q Query) (int64, error) {
	return s.exec.Cardinality(q)
}

// TrueContainment executes both queries and returns the exact containment
// rate q1 ⊂% q2 in [0,1]. The queries must share a FROM clause.
func (s *System) TrueContainment(q1, q2 Query) (float64, error) {
	return s.exec.ContainmentRate(q1, q2)
}

// TrainConfig controls containment-model training.
type TrainConfig struct {
	Pairs    int         // training pairs to generate (0 = 5000)
	Seed     int64       // generator seed (0 = 1)
	Model    icrn.Config // zero value = crn defaults
	Progress func(epoch int, valQError float64)
}

// ContainmentModel is a trained CRN bound to its feature encoder.
type ContainmentModel struct {
	rates *icrn.Rates
	model *icrn.Model
}

// TrainContainmentModel generates a labeled pair workload over the system's
// database (0-2 joins, §3.1.2), trains a CRN on it and returns the model.
func (s *System) TrainContainmentModel(cfg TrainConfig) (*ContainmentModel, error) {
	n := cfg.Pairs
	if n <= 0 {
		n = 5000
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	mcfg := cfg.Model
	if mcfg.Hidden == 0 {
		mcfg = icrn.DefaultConfig()
	}
	gen := workload.NewGenerator(s.schema, s.db, seed)
	pairs, err := gen.TrainingPairs(n)
	if err != nil {
		return nil, err
	}
	labeled, err := workload.LabelPairs(s.exec, pairs, 0)
	if err != nil {
		return nil, err
	}
	rand.New(rand.NewSource(seed+1)).Shuffle(len(labeled), func(i, j int) {
		labeled[i], labeled[j] = labeled[j], labeled[i]
	})
	train, val := workload.SplitPairs(labeled, 0.8)
	encode := func(in []workload.LabeledPair) ([]icrn.Sample, error) {
		out := make([]icrn.Sample, len(in))
		for i, lp := range in {
			v1, err := s.enc.EncodeQuery(lp.Q1)
			if err != nil {
				return nil, err
			}
			v2, err := s.enc.EncodeQuery(lp.Q2)
			if err != nil {
				return nil, err
			}
			out[i] = icrn.Sample{V1: v1, V2: v2, Rate: lp.Rate}
		}
		return out, nil
	}
	trainS, err := encode(train)
	if err != nil {
		return nil, err
	}
	valS, err := encode(val)
	if err != nil {
		return nil, err
	}
	m := icrn.NewModel(mcfg, s.enc.Dim())
	if _, err := m.Train(trainS, valS, func(st icrn.EpochStats) {
		if cfg.Progress != nil {
			cfg.Progress(st.Epoch, st.ValQError)
		}
	}); err != nil {
		return nil, err
	}
	return &ContainmentModel{rates: icrn.NewRates(m, s.enc), model: m}, nil
}

// EstimateContainment estimates q1 ⊂% q2 in [0,1].
func (m *ContainmentModel) EstimateContainment(q1, q2 Query) (float64, error) {
	if err := contain.Validate(q1, q2); err != nil {
		return 0, err
	}
	return m.rates.EstimateRate(q1, q2)
}

// Save serializes the trained model weights.
func (m *ContainmentModel) Save() ([]byte, error) { return m.model.Save() }

// LoadContainmentModel restores a model saved with Save, re-binding it to
// this system's feature encoder.
func (s *System) LoadContainmentModel(data []byte) (*ContainmentModel, error) {
	m, err := icrn.Load(data)
	if err != nil {
		return nil, err
	}
	if m.Dim() != s.enc.Dim() {
		return nil, fmt.Errorf("crn: model dimension %d does not match this database's featurization %d", m.Dim(), s.enc.Dim())
	}
	return &ContainmentModel{rates: icrn.NewRates(m, s.enc), model: m}, nil
}

// QueriesPool is the paper's §5.2 pool of executed queries with known
// cardinalities.
type QueriesPool = pool.Pool

// NewQueriesPool creates an empty pool.
func (s *System) NewQueriesPool() *QueriesPool { return pool.New() }

// RecordExecuted executes q, stores (q, |q|) in the pool, and returns the
// cardinality — the paper's "the DBMS continuously executes queries, we
// store them with their actual cardinalities".
func (s *System) RecordExecuted(p *QueriesPool, q Query) (int64, error) {
	c, err := s.exec.Cardinality(q)
	if err != nil {
		return 0, err
	}
	p.Add(q, c)
	return c, nil
}

// SeedPool fills the pool with n generated queries (equally distributed
// over all FROM clauses, each clause seeded with an empty-predicate query,
// random fills restricted to non-empty results) executed against the
// database — the §6.2 construction.
func (s *System) SeedPool(p *QueriesPool, n int, seed int64) error {
	gen := workload.NewGenerator(s.schema, s.db, seed)
	qs, err := gen.NonEmptyPoolQueries(s.exec, n)
	if err != nil {
		return err
	}
	labeled, err := workload.LabelQueries(s.exec, qs, 0)
	if err != nil {
		return err
	}
	for _, lq := range labeled {
		p.Add(lq.Q, lq.Card)
	}
	return nil
}

// CardinalityEstimator is the pool-based Cnt2Crd estimator.
type CardinalityEstimator struct {
	est *card.Estimator
}

// CardinalityEstimator builds the paper's Cnt2Crd(CRN) estimator from a
// trained containment model and a queries pool.
func (s *System) CardinalityEstimator(m *ContainmentModel, p *QueriesPool) *CardinalityEstimator {
	return &CardinalityEstimator{est: card.New(m.rates, p)}
}

// EstimateCardinality estimates |q| using the pool (Figure 8 algorithm).
func (e *CardinalityEstimator) EstimateCardinality(q Query) (float64, error) {
	return e.est.EstimateCard(q)
}

// WithFallback sets a fallback estimator for queries without a usable pool
// match and returns the receiver.
func (e *CardinalityEstimator) WithFallback(fb BaselineEstimator) *CardinalityEstimator {
	e.est.Fallback = fb
	return e
}

// BaselineEstimator is any query-level cardinality model (the PostgreSQL-
// style profile, MSCN, ...).
type BaselineEstimator = contain.CardEstimator

// AnalyzeBaseline builds the PostgreSQL-style profiling estimator over the
// system's database.
func (s *System) AnalyzeBaseline() (BaselineEstimator, error) {
	return pg.Analyze(s.db, pg.DefaultConfig())
}

// ImproveBaseline wraps an existing cardinality model with the paper's §7
// construction — Cnt2Crd(Crd2Cnt(M)) over the pool — without changing M.
func (s *System) ImproveBaseline(m BaselineEstimator, p *QueriesPool) *CardinalityEstimator {
	return &CardinalityEstimator{est: card.Improved(m, p)}
}

// --- Compound queries (§9 extensions) --------------------------------------

// Expr is a compound query expression (OR / EXCEPT / UNION over
// conjunctive queries with one shared FROM clause).
type Expr = algebra.Expr

// QueryExpr lifts a conjunctive query into an expression.
func QueryExpr(q Query) Expr { return algebra.Leaf{Q: q} }

// OrExpr is the set union of two expressions' results (the paper's OR).
func OrExpr(l, r Expr) Expr { return algebra.Or{L: l, R: r} }

// AndExpr is the set intersection of two expressions' results.
func AndExpr(l, r Expr) Expr { return algebra.And{L: l, R: r} }

// ExceptExpr is the set difference of two expressions' results.
func ExceptExpr(l, r Expr) Expr { return algebra.Except{L: l, R: r} }

// UnionExpr is the bag append of two results (top level only).
func UnionExpr(l, r Expr) Expr { return algebra.Union{L: l, R: r} }

// EstimateCompound estimates |e| with any base estimator via the §9
// inclusion-exclusion identities.
func (s *System) EstimateCompound(m BaselineEstimator, e Expr) (float64, error) {
	return algebra.Cardinality(m, e)
}

// TrueCompound computes |e| exactly from the executor.
func (s *System) TrueCompound(e Expr) (float64, error) {
	return algebra.Cardinality(contain.TruthCard{T: s.exec}, e)
}

// --- Join ordering (the paper's motivating application) --------------------

// OptimizeJoinOrder returns the cheapest left-deep join order for q under
// the given cardinality estimator, plus its estimated C_out cost.
func (s *System) OptimizeJoinOrder(m BaselineEstimator, q Query) (order []string, estimatedCost float64, err error) {
	plan, err := optimizer.New(m).Optimize(q)
	if err != nil {
		return nil, 0, err
	}
	return plan.Order, plan.EstimatedCost, nil
}

// TrueJoinCost evaluates a join order's actual C_out cost (the sum of true
// intermediate result cardinalities).
func (s *System) TrueJoinCost(q Query, order []string) (float64, error) {
	return optimizer.Cost(contain.TruthCard{T: s.exec}, q, order)
}
