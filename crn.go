// Package crn reproduces "Improved Cardinality Estimation by Learning
// Queries Containment Rates" (Hayek & Shmueli, EDBT 2020) as a
// self-contained Go library.
//
// The containment rate of query Q1 in query Q2 over a database D is the
// fraction of Q1's result rows that also appear in Q2's result. The paper
// (1) learns containment rates directly with a specialized deep model (CRN)
// and (2) turns any containment-rate estimator into a cardinality estimator
// with the help of a queries pool of previously executed queries — improving
// multi-join cardinality estimates by orders of magnitude over PostgreSQL
// and MSCN baselines.
//
// This package is the public facade, designed for serving: every entry
// point takes a context for cancellation and deadlines, configuration is
// functional options, estimation has first-class batch calls that amortize
// feature encoding and run the neural forward pass matrix-batched, and
// failures surface typed sentinel errors (ErrDialect, ErrNoPoolMatch,
// ErrDimMismatch) usable with errors.Is. A typical session:
//
//	ctx := context.Background()
//	sys, _ := crn.OpenSynthetic(ctx, crn.WithTitles(4000))
//	q1, _ := sys.ParseQuery("SELECT * FROM title WHERE title.production_year > 1990")
//	q2, _ := sys.ParseQuery("SELECT * FROM title WHERE title.production_year > 1980")
//
//	model, _ := sys.TrainContainmentModel(ctx, crn.WithPairs(5000))
//	rate, _ := model.EstimateContainment(ctx, q1, q2) // ≈ 1.0: q1 ⊆ q2
//
//	pool := sys.NewQueriesPool()
//	sys.RecordExecuted(ctx, pool, q2) // executes q2, stores its true cardinality
//	est := sys.CardinalityEstimator(model, pool)
//	card, _ := est.EstimateCardinality(ctx, q1)
//	cards, _ := est.EstimateCardinalityBatch(ctx, []crn.Query{q1, q2})
//
// Deployments that keep executing queries can close the loop with an
// AdaptiveEstimator: execution feedback (query, true cardinality) streams
// in through RecordFeedback, a background trainer incrementally retrains
// the containment model on it, and improved model generations are
// hot-swapped atomically under live traffic (see adapt.go).
//
// Everything underneath — the synthetic IMDb-like database, the exact
// executor used for ground truth, the neural-network stack, the MSCN and
// PostgreSQL baselines, and the full experiment harness regenerating every
// table and figure of the paper — lives in internal/ packages and is
// exercised through cmd/repro and the root benchmarks. cmd/crnserve wraps
// this facade in an HTTP JSON service (the §5.2 deployment scenario).
package crn

import (
	"context"

	"crn/internal/algebra"
	"crn/internal/contain"
	"crn/internal/datagen"
	"crn/internal/db"
	"crn/internal/exec"
	"crn/internal/feature"
	"crn/internal/guard/failpoint"
	"crn/internal/optimizer"
	"crn/internal/pg"
	"crn/internal/pool"
	"crn/internal/query"
	"crn/internal/schema"
	"crn/internal/sqlparse"
	"crn/internal/workload"
)

// Query is a conjunctive SELECT * query (tables, equi-joins, column
// predicates); see ParseQuery.
type Query = query.Query

// System is an opened database with its exact executor: the substrate on
// which models are trained and queries are answered.
type System struct {
	schema *schema.Schema
	db     *db.Database
	exec   *exec.Executor
	enc    *feature.Encoder
}

// OpenSynthetic generates a synthetic IMDb-like database (see
// internal/datagen for the correlation structure) and opens it. Options
// size the database (WithTitles, WithDataSeed). Cancellation is observed at
// phase boundaries only — generation itself, once started, runs to
// completion (seconds at default sizes).
func OpenSynthetic(ctx context.Context, opts ...OpenOption) (*System, error) {
	dg := datagen.DefaultConfig()
	for _, o := range opts {
		o(&dg)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	d, err := datagen.Generate(dg)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return Open(d)
}

// DataConfig sizes the synthetic IMDb-like database.
//
// Deprecated: use OpenSynthetic with WithTitles / WithDataSeed options.
type DataConfig struct {
	Titles int   // rows in the fact table `title` (0 = 4000)
	Seed   int64 // generation seed (0 = 1)
}

// OpenSyntheticConfig is the config-struct form of OpenSynthetic.
//
// Deprecated: use OpenSynthetic with options.
func OpenSyntheticConfig(cfg DataConfig) (*System, error) {
	var opts []OpenOption
	if cfg.Titles > 0 {
		opts = append(opts, WithTitles(cfg.Titles))
	}
	if cfg.Seed != 0 {
		opts = append(opts, WithDataSeed(cfg.Seed))
	}
	return OpenSynthetic(context.Background(), opts...)
}

// Open wraps an existing frozen database.
func Open(d *db.Database) (*System, error) {
	ex, err := exec.New(d)
	if err != nil {
		return nil, err
	}
	enc, err := feature.NewEncoder(d.Schema, d)
	if err != nil {
		return nil, err
	}
	return &System{schema: d.Schema, db: d, exec: ex, enc: enc}, nil
}

// Schema returns the database schema.
func (s *System) Schema() *schema.Schema { return s.schema }

// DB returns the underlying database snapshot.
func (s *System) DB() *db.Database { return s.db }

// ParseQuery parses the supported conjunctive SQL dialect, e.g.
// "SELECT * FROM title, cast_info WHERE title.id = cast_info.movie_id AND
// cast_info.role_id = 2". Failures wrap ErrDialect.
func (s *System) ParseQuery(sql string) (Query, error) {
	return sqlparse.Parse(s.schema, sql)
}

// TrueCardinality executes the query exactly and returns its result
// cardinality. The exact scan honors ctx cancellation.
func (s *System) TrueCardinality(ctx context.Context, q Query) (int64, error) {
	return s.exec.CardinalityCtx(ctx, q)
}

// TrueContainment executes both queries and returns the exact containment
// rate q1 ⊂% q2 in [0,1]. The queries must share a FROM clause.
func (s *System) TrueContainment(ctx context.Context, q1, q2 Query) (float64, error) {
	return s.exec.ContainmentRateCtx(ctx, q1, q2)
}

// ctxOracle threads a request context into the executor behind the
// context-free workload.Oracle interface used by generation and labeling.
// Both methods carry failpoints (oracle/cardinality, oracle/containment):
// the truth oracle is the adaptation loop's external dependency, and the
// fault-matrix suite must be able to make it time out or error en masse.
type ctxOracle struct {
	ctx context.Context
	ex  *exec.Executor
}

func (o ctxOracle) Cardinality(q query.Query) (int64, error) {
	if err := failpoint.Inject(failpoint.OracleCardinality); err != nil {
		return 0, err
	}
	return o.ex.CardinalityCtx(o.ctx, q)
}

func (o ctxOracle) ContainmentRate(q1, q2 query.Query) (float64, error) {
	if err := failpoint.Inject(failpoint.OracleContainment); err != nil {
		return 0, err
	}
	return o.ex.ContainmentRateCtx(o.ctx, q1, q2)
}

// QueriesPool is the paper's §5.2 pool of executed queries with known
// cardinalities. It is safe for concurrent use: the serving deployment
// appends every executed query while estimators read concurrently.
type QueriesPool = pool.Pool

// NewQueriesPool creates an empty pool. Options bound it (WithPoolCap);
// the zero-option pool is unbounded, as in the paper.
func (s *System) NewQueriesPool(opts ...PoolOption) *QueriesPool { return pool.New(opts...) }

// RecordExecuted executes q, stores (q, |q|) in the pool, and returns the
// cardinality — the paper's "the DBMS continuously executes queries, we
// store them with their actual cardinalities". added reports whether the
// pool accepted the entry (false: an equivalent query was already pooled);
// it comes from the pool's own atomic insert, so concurrent recordings of
// the same query see exactly one true.
func (s *System) RecordExecuted(ctx context.Context, p *QueriesPool, q Query) (card int64, added bool, err error) {
	c, err := s.exec.CardinalityCtx(ctx, q)
	if err != nil {
		return 0, false, err
	}
	return c, p.Add(q, c), nil
}

// SeedPool fills the pool with n generated queries (equally distributed
// over all FROM clauses, each clause seeded with an empty-predicate query,
// random fills restricted to non-empty results) executed against the
// database — the §6.2 construction.
func (s *System) SeedPool(ctx context.Context, p *QueriesPool, n int, seed int64) error {
	gen := workload.NewGenerator(s.schema, s.db, seed)
	oracle := ctxOracle{ctx: ctx, ex: s.exec}
	qs, err := gen.NonEmptyPoolQueries(oracle, n)
	if err != nil {
		return err
	}
	labeled, err := workload.LabelQueries(oracle, qs, 0)
	if err != nil {
		return err
	}
	for _, lq := range labeled {
		p.Add(lq.Q, lq.Card)
	}
	return nil
}

// BaselineEstimator is any query-level cardinality model (the PostgreSQL-
// style profile, MSCN, ...).
type BaselineEstimator = contain.CardEstimator

// AnalyzeBaseline builds the PostgreSQL-style profiling estimator over the
// system's database.
func (s *System) AnalyzeBaseline() (BaselineEstimator, error) {
	return pg.Analyze(s.db, pg.DefaultConfig())
}

// --- Compound queries (§9 extensions) --------------------------------------

// Expr is a compound query expression (OR / EXCEPT / UNION over
// conjunctive queries with one shared FROM clause).
type Expr = algebra.Expr

// QueryExpr lifts a conjunctive query into an expression.
func QueryExpr(q Query) Expr { return algebra.Leaf{Q: q} }

// OrExpr is the set union of two expressions' results (the paper's OR).
func OrExpr(l, r Expr) Expr { return algebra.Or{L: l, R: r} }

// AndExpr is the set intersection of two expressions' results.
func AndExpr(l, r Expr) Expr { return algebra.And{L: l, R: r} }

// ExceptExpr is the set difference of two expressions' results.
func ExceptExpr(l, r Expr) Expr { return algebra.Except{L: l, R: r} }

// UnionExpr is the bag append of two results (top level only).
func UnionExpr(l, r Expr) Expr { return algebra.Union{L: l, R: r} }

// EstimateCompound estimates |e| with any base estimator via the §9
// inclusion-exclusion identities.
func (s *System) EstimateCompound(m BaselineEstimator, e Expr) (float64, error) {
	return algebra.Cardinality(m, e)
}

// TrueCompound computes |e| exactly from the executor.
func (s *System) TrueCompound(e Expr) (float64, error) {
	return algebra.Cardinality(contain.TruthCard{T: s.exec}, e)
}

// --- Join ordering (the paper's motivating application) --------------------

// OptimizeJoinOrder returns the cheapest left-deep join order for q under
// the given cardinality estimator, plus its estimated C_out cost.
func (s *System) OptimizeJoinOrder(m BaselineEstimator, q Query) (order []string, estimatedCost float64, err error) {
	plan, err := optimizer.New(m).Optimize(q)
	if err != nil {
		return nil, 0, err
	}
	return plan.Order, plan.EstimatedCost, nil
}

// TrueJoinCost evaluates a join order's actual C_out cost (the sum of true
// intermediate result cardinalities).
func (s *System) TrueJoinCost(q Query, order []string) (float64, error) {
	return optimizer.Cost(contain.TruthCard{T: s.exec}, q, order)
}
