package crn

import (
	"math"
	"testing"

	icrn "crn/internal/crn"
)

func testSystem(t *testing.T) *System {
	t.Helper()
	sys, err := OpenSynthetic(DataConfig{Titles: 400, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func tinyTrainConfig() TrainConfig {
	mcfg := icrn.DefaultConfig()
	mcfg.Hidden = 16
	mcfg.Epochs = 6
	mcfg.Patience = 3
	return TrainConfig{Pairs: 300, Seed: 3, Model: mcfg}
}

func TestFacadeEndToEnd(t *testing.T) {
	sys := testSystem(t)
	q1, err := sys.ParseQuery("SELECT * FROM title WHERE title.production_year > 1990")
	if err != nil {
		t.Fatal(err)
	}
	q2, err := sys.ParseQuery("SELECT * FROM title WHERE title.production_year > 1950")
	if err != nil {
		t.Fatal(err)
	}
	c1, err := sys.TrueCardinality(q1)
	if err != nil {
		t.Fatal(err)
	}
	rate, err := sys.TrueContainment(q1, q2)
	if err != nil {
		t.Fatal(err)
	}
	if c1 > 0 && rate != 1 {
		t.Errorf("q1 ⊆ q2 should be fully contained, got %v", rate)
	}

	var epochs int
	cfg := tinyTrainConfig()
	cfg.Progress = func(epoch int, val float64) { epochs = epoch }
	model, err := sys.TrainContainmentModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if epochs == 0 {
		t.Error("progress callback never fired")
	}
	est, err := model.EstimateContainment(q1, q2)
	if err != nil {
		t.Fatal(err)
	}
	if est < 0 || est > 1 {
		t.Errorf("estimated rate %v out of [0,1]", est)
	}

	// Pool-based cardinality estimation.
	p := sys.NewQueriesPool()
	if err := sys.SeedPool(p, 50, 11); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RecordExecuted(p, q2); err != nil {
		t.Fatal(err)
	}
	card := sys.CardinalityEstimator(model, p)
	got, err := card.EstimateCardinality(q1)
	if err != nil {
		t.Fatal(err)
	}
	if got < 0 || math.IsNaN(got) {
		t.Errorf("cardinality estimate = %v", got)
	}
}

func TestFacadeSaveLoad(t *testing.T) {
	sys := testSystem(t)
	model, err := sys.TrainContainmentModel(tinyTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	blob, err := model.Save()
	if err != nil {
		t.Fatal(err)
	}
	again, err := sys.LoadContainmentModel(blob)
	if err != nil {
		t.Fatal(err)
	}
	q1, _ := sys.ParseQuery("SELECT * FROM title WHERE title.kind_id = 2")
	q2, _ := sys.ParseQuery("SELECT * FROM title WHERE title.kind_id < 5")
	a, err := model.EstimateContainment(q1, q2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := again.EstimateContainment(q1, q2)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("loaded model differs: %v vs %v", a, b)
	}
	if _, err := sys.LoadContainmentModel([]byte("bad")); err == nil {
		t.Error("corrupt blob should fail")
	}
}

func TestEstimateContainmentValidatesFROM(t *testing.T) {
	sys := testSystem(t)
	model, err := sys.TrainContainmentModel(tinyTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	q1, _ := sys.ParseQuery("SELECT * FROM title")
	q2, _ := sys.ParseQuery("SELECT * FROM cast_info")
	if _, err := model.EstimateContainment(q1, q2); err == nil {
		t.Error("different FROM clauses must be rejected")
	}
}

func TestImproveBaseline(t *testing.T) {
	sys := testSystem(t)
	base, err := sys.AnalyzeBaseline()
	if err != nil {
		t.Fatal(err)
	}
	p := sys.NewQueriesPool()
	if err := sys.SeedPool(p, 40, 13); err != nil {
		t.Fatal(err)
	}
	improved := sys.ImproveBaseline(base, p)
	q, _ := sys.ParseQuery("SELECT * FROM title WHERE title.production_year > 1970")
	got, err := improved.EstimateCardinality(q)
	if err != nil {
		t.Fatal(err)
	}
	if got < 0 || math.IsNaN(got) {
		t.Errorf("improved estimate = %v", got)
	}
}

func TestFallback(t *testing.T) {
	sys := testSystem(t)
	model, err := sys.TrainContainmentModel(tinyTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	empty := sys.NewQueriesPool()
	base, err := sys.AnalyzeBaseline()
	if err != nil {
		t.Fatal(err)
	}
	est := sys.CardinalityEstimator(model, empty).WithFallback(base)
	q, _ := sys.ParseQuery("SELECT * FROM title")
	got, err := est.EstimateCardinality(q)
	if err != nil {
		t.Fatal(err)
	}
	if got <= 0 {
		t.Errorf("fallback estimate = %v", got)
	}
	// Without fallback the empty pool errors.
	bare := sys.CardinalityEstimator(model, empty)
	if _, err := bare.EstimateCardinality(q); err == nil {
		t.Error("empty pool without fallback should fail")
	}
}

func TestCompoundExpressions(t *testing.T) {
	sys := testSystem(t)
	q1, _ := sys.ParseQuery("SELECT * FROM title WHERE title.production_year > 1950")
	q2, _ := sys.ParseQuery("SELECT * FROM title WHERE title.kind_id = 2")
	or := OrExpr(QueryExpr(q1), QueryExpr(q2))
	truth, err := sys.TrueCompound(or)
	if err != nil {
		t.Fatal(err)
	}
	c1, _ := sys.TrueCardinality(q1)
	c2, _ := sys.TrueCardinality(q2)
	qi, _ := q1.Intersect(q2)
	ci, _ := sys.TrueCardinality(qi)
	if math.Abs(truth-float64(c1+c2-ci)) > 1e-9 {
		t.Errorf("OR = %v, want %d", truth, c1+c2-ci)
	}
	base, err := sys.AnalyzeBaseline()
	if err != nil {
		t.Fatal(err)
	}
	est, err := sys.EstimateCompound(base, ExceptExpr(QueryExpr(q1), QueryExpr(q2)))
	if err != nil {
		t.Fatal(err)
	}
	if est < 0 || math.IsNaN(est) {
		t.Errorf("EXCEPT estimate = %v", est)
	}
	if _, err := sys.TrueCompound(UnionExpr(QueryExpr(q1), QueryExpr(q2))); err != nil {
		t.Errorf("UNION: %v", err)
	}
}

func TestJoinOrderFacade(t *testing.T) {
	sys := testSystem(t)
	base, err := sys.AnalyzeBaseline()
	if err != nil {
		t.Fatal(err)
	}
	q, _ := sys.ParseQuery(`SELECT * FROM title, cast_info, movie_keyword
		WHERE title.id = cast_info.movie_id AND title.id = movie_keyword.movie_id
		AND cast_info.role_id = 2`)
	order, cost, err := sys.OptimizeJoinOrder(base, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || cost < 0 {
		t.Errorf("order = %v, cost = %v", order, cost)
	}
	trueCost, err := sys.TrueJoinCost(q, order)
	if err != nil {
		t.Fatal(err)
	}
	if trueCost < 0 {
		t.Errorf("true cost = %v", trueCost)
	}
	if _, err := sys.TrueJoinCost(q, []string{"title"}); err == nil {
		t.Error("bad order should fail")
	}
}

func TestOpenSyntheticDefaults(t *testing.T) {
	sys, err := OpenSynthetic(DataConfig{Titles: 200})
	if err != nil {
		t.Fatal(err)
	}
	if sys.DB().NumRows("title") != 200 {
		t.Errorf("titles = %d", sys.DB().NumRows("title"))
	}
	if sys.Schema().NumTables() != 6 {
		t.Errorf("tables = %d", sys.Schema().NumTables())
	}
}
