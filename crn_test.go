package crn

import (
	"context"
	"errors"
	"math"
	"testing"

	icrn "crn/internal/crn"
)

func testSystem(t *testing.T) *System {
	t.Helper()
	sys, err := OpenSynthetic(context.Background(), WithTitles(400), WithDataSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func tinyTrainOptions() []TrainOption {
	mcfg := DefaultModelConfig()
	mcfg.Hidden = 16
	mcfg.Epochs = 6
	mcfg.Patience = 3
	return []TrainOption{WithPairs(300), WithSeed(3), WithModelConfig(mcfg)}
}

func TestFacadeEndToEnd(t *testing.T) {
	ctx := context.Background()
	sys := testSystem(t)
	q1, err := sys.ParseQuery("SELECT * FROM title WHERE title.production_year > 1990")
	if err != nil {
		t.Fatal(err)
	}
	q2, err := sys.ParseQuery("SELECT * FROM title WHERE title.production_year > 1950")
	if err != nil {
		t.Fatal(err)
	}
	c1, err := sys.TrueCardinality(ctx, q1)
	if err != nil {
		t.Fatal(err)
	}
	rate, err := sys.TrueContainment(ctx, q1, q2)
	if err != nil {
		t.Fatal(err)
	}
	if c1 > 0 && rate != 1 {
		t.Errorf("q1 ⊆ q2 should be fully contained, got %v", rate)
	}

	var epochs int
	opts := append(tinyTrainOptions(), WithProgress(func(epoch int, val float64) { epochs = epoch }))
	model, err := sys.TrainContainmentModel(ctx, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if epochs == 0 {
		t.Error("progress callback never fired")
	}
	est, err := model.EstimateContainment(ctx, q1, q2)
	if err != nil {
		t.Fatal(err)
	}
	if est < 0 || est > 1 {
		t.Errorf("estimated rate %v out of [0,1]", est)
	}

	// Pool-based cardinality estimation.
	p := sys.NewQueriesPool()
	if err := sys.SeedPool(ctx, p, 50, 11); err != nil {
		t.Fatal(err)
	}
	if _, added, err := sys.RecordExecuted(ctx, p, q2); err != nil || !added {
		t.Fatalf("record: added=%v err=%v", added, err)
	}
	if _, added, err := sys.RecordExecuted(ctx, p, q2); err != nil || added {
		t.Fatalf("duplicate record: added=%v err=%v", added, err)
	}
	card := sys.CardinalityEstimator(model, p)
	got, err := card.EstimateCardinality(ctx, q1)
	if err != nil {
		t.Fatal(err)
	}
	if got < 0 || math.IsNaN(got) {
		t.Errorf("cardinality estimate = %v", got)
	}
}

func TestDeprecatedConfigShims(t *testing.T) {
	sys, err := OpenSyntheticConfig(DataConfig{Titles: 300, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	mcfg := DefaultModelConfig()
	mcfg.Hidden = 8
	mcfg.Epochs = 2
	mcfg.Patience = 1
	model, err := sys.TrainContainmentModelConfig(TrainConfig{Pairs: 120, Seed: 3, Model: mcfg})
	if err != nil {
		t.Fatal(err)
	}
	p := sys.NewQueriesPool()
	if err := sys.SeedPool(context.Background(), p, 20, 5); err != nil {
		t.Fatal(err)
	}
	base, err := sys.AnalyzeBaseline()
	if err != nil {
		t.Fatal(err)
	}
	est := sys.CardinalityEstimator(model, p).WithFallback(base)
	q, _ := sys.ParseQuery("SELECT * FROM title")
	if _, err := est.EstimateCardinality(context.Background(), q); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeSaveLoad(t *testing.T) {
	ctx := context.Background()
	sys := testSystem(t)
	model, err := sys.TrainContainmentModel(ctx, tinyTrainOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := model.Save()
	if err != nil {
		t.Fatal(err)
	}
	again, err := sys.LoadContainmentModel(blob)
	if err != nil {
		t.Fatal(err)
	}
	q1, _ := sys.ParseQuery("SELECT * FROM title WHERE title.kind_id = 2")
	q2, _ := sys.ParseQuery("SELECT * FROM title WHERE title.kind_id < 5")
	a, err := model.EstimateContainment(ctx, q1, q2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := again.EstimateContainment(ctx, q1, q2)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("loaded model differs: %v vs %v", a, b)
	}
	if _, err := sys.LoadContainmentModel([]byte("bad")); err == nil {
		t.Error("corrupt blob should fail")
	}
}

func TestDimMismatchSentinel(t *testing.T) {
	sys := testSystem(t)
	// A model serialized against a different featurization dimension must
	// be rejected with the typed sentinel.
	mcfg := DefaultModelConfig()
	mcfg.Hidden = 8
	blob, err := icrn.NewModel(mcfg, 3).Save()
	if err != nil {
		t.Fatal(err)
	}
	_, err = sys.LoadContainmentModel(blob)
	if err == nil {
		t.Fatal("dimension mismatch should fail")
	}
	if !errors.Is(err, ErrDimMismatch) {
		t.Errorf("error should wrap ErrDimMismatch, got %v", err)
	}
}

func TestDialectSentinel(t *testing.T) {
	sys := testSystem(t)
	_, err := sys.ParseQuery("SELECT count(*) FROM title")
	if err == nil {
		t.Fatal("expected a parse error")
	}
	if !errors.Is(err, ErrDialect) {
		t.Errorf("parse error should wrap ErrDialect, got %v", err)
	}
}

func TestEstimateContainmentValidatesFROM(t *testing.T) {
	ctx := context.Background()
	sys := testSystem(t)
	model, err := sys.TrainContainmentModel(ctx, tinyTrainOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	q1, _ := sys.ParseQuery("SELECT * FROM title")
	q2, _ := sys.ParseQuery("SELECT * FROM cast_info")
	_, err = model.EstimateContainment(ctx, q1, q2)
	if err == nil {
		t.Fatal("different FROM clauses must be rejected")
	}
	if !errors.Is(err, ErrNotComparable) {
		t.Errorf("error should wrap ErrNotComparable, got %v", err)
	}
}

func TestImproveBaseline(t *testing.T) {
	ctx := context.Background()
	sys := testSystem(t)
	base, err := sys.AnalyzeBaseline()
	if err != nil {
		t.Fatal(err)
	}
	p := sys.NewQueriesPool()
	if err := sys.SeedPool(ctx, p, 40, 13); err != nil {
		t.Fatal(err)
	}
	improved := sys.ImproveBaseline(base, p, WithFinal(TrimmedMean))
	q, _ := sys.ParseQuery("SELECT * FROM title WHERE title.production_year > 1970")
	got, err := improved.EstimateCardinality(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if got < 0 || math.IsNaN(got) {
		t.Errorf("improved estimate = %v", got)
	}
}

func TestFallbackAndNoPoolMatchSentinel(t *testing.T) {
	ctx := context.Background()
	sys := testSystem(t)
	model, err := sys.TrainContainmentModel(ctx, tinyTrainOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	empty := sys.NewQueriesPool()
	base, err := sys.AnalyzeBaseline()
	if err != nil {
		t.Fatal(err)
	}
	est := sys.CardinalityEstimator(model, empty, WithFallback(base))
	q, _ := sys.ParseQuery("SELECT * FROM title")
	got, err := est.EstimateCardinality(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if got <= 0 {
		t.Errorf("fallback estimate = %v", got)
	}
	// Without fallback the empty pool errors with the typed sentinel.
	bare := sys.CardinalityEstimator(model, empty)
	_, err = bare.EstimateCardinality(ctx, q)
	if err == nil {
		t.Fatal("empty pool without fallback should fail")
	}
	if !errors.Is(err, ErrNoPoolMatch) {
		t.Errorf("error should wrap ErrNoPoolMatch, got %v", err)
	}
}

// TestBatchEqualsSingle asserts the core batch contract: batched estimation
// returns exactly what per-query calls return.
func TestBatchEqualsSingle(t *testing.T) {
	ctx := context.Background()
	sys := testSystem(t)
	model, err := sys.TrainContainmentModel(ctx, tinyTrainOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	sqls := []string{
		"SELECT * FROM title WHERE title.production_year > 1990",
		"SELECT * FROM title WHERE title.production_year > 1950",
		"SELECT * FROM title WHERE title.kind_id = 2",
		"SELECT * FROM title WHERE title.kind_id < 5 AND title.production_year < 1980",
		"SELECT * FROM title",
	}
	queries := make([]Query, len(sqls))
	for i, s := range sqls {
		q, err := sys.ParseQuery(s)
		if err != nil {
			t.Fatal(err)
		}
		queries[i] = q
	}

	// Containment: every ordered pair, batched vs single.
	var pairs [][2]Query
	for _, a := range queries {
		for _, b := range queries {
			pairs = append(pairs, [2]Query{a, b})
		}
	}
	batched, err := model.EstimateContainmentBatch(ctx, pairs)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pairs {
		single, err := model.EstimateContainment(ctx, p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		if batched[i] != single {
			t.Errorf("pair %d: batch %v != single %v", i, batched[i], single)
		}
	}

	// Cardinality: batched vs single over a seeded pool.
	p := sys.NewQueriesPool()
	if err := sys.SeedPool(ctx, p, 60, 11); err != nil {
		t.Fatal(err)
	}
	base, err := sys.AnalyzeBaseline()
	if err != nil {
		t.Fatal(err)
	}
	est := sys.CardinalityEstimator(model, p, WithFallback(base))
	batchCards, err := est.EstimateCardinalityBatch(ctx, queries)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		single, err := est.EstimateCardinality(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if batchCards[i] != single {
			t.Errorf("query %d: batch %v != single %v", i, batchCards[i], single)
		}
	}
}

// TestContextCancellation covers the cancellation contract of every layer:
// exact execution, training (pre-cancelled and mid-training), and
// estimation all abort with context.Canceled.
func TestContextCancellation(t *testing.T) {
	sys := testSystem(t)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()

	q, _ := sys.ParseQuery("SELECT * FROM title WHERE title.production_year > 1990")
	if _, err := sys.TrueCardinality(cancelled, q); !errors.Is(err, context.Canceled) {
		t.Errorf("TrueCardinality: want context.Canceled, got %v", err)
	}
	if _, err := sys.TrainContainmentModel(cancelled, tinyTrainOptions()...); !errors.Is(err, context.Canceled) {
		t.Errorf("TrainContainmentModel (pre-cancelled): want context.Canceled, got %v", err)
	}

	// Cancel from inside the progress callback: the next epoch boundary
	// must observe it.
	ctx, cancelMid := context.WithCancel(context.Background())
	opts := append(tinyTrainOptions(), WithProgress(func(epoch int, _ float64) {
		if epoch == 1 {
			cancelMid()
		}
	}))
	if _, err := sys.TrainContainmentModel(ctx, opts...); !errors.Is(err, context.Canceled) {
		t.Errorf("TrainContainmentModel (mid-training): want context.Canceled, got %v", err)
	}

	// Estimation on a trained model.
	model, err := sys.TrainContainmentModel(context.Background(), tinyTrainOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := model.EstimateContainment(cancelled, q, q); !errors.Is(err, context.Canceled) {
		t.Errorf("EstimateContainment: want context.Canceled, got %v", err)
	}
	p := sys.NewQueriesPool()
	if err := sys.SeedPool(context.Background(), p, 20, 11); err != nil {
		t.Fatal(err)
	}
	est := sys.CardinalityEstimator(model, p)
	if _, err := est.EstimateCardinality(cancelled, q); !errors.Is(err, context.Canceled) {
		t.Errorf("EstimateCardinality: want context.Canceled, got %v", err)
	}
	if _, err := est.EstimateCardinalityBatch(cancelled, []Query{q, q}); !errors.Is(err, context.Canceled) {
		t.Errorf("EstimateCardinalityBatch: want context.Canceled, got %v", err)
	}
	if err := sys.SeedPool(cancelled, sys.NewQueriesPool(), 10, 3); !errors.Is(err, context.Canceled) {
		t.Errorf("SeedPool: want context.Canceled, got %v", err)
	}
}

func TestCompoundExpressions(t *testing.T) {
	ctx := context.Background()
	sys := testSystem(t)
	q1, _ := sys.ParseQuery("SELECT * FROM title WHERE title.production_year > 1950")
	q2, _ := sys.ParseQuery("SELECT * FROM title WHERE title.kind_id = 2")
	or := OrExpr(QueryExpr(q1), QueryExpr(q2))
	truth, err := sys.TrueCompound(or)
	if err != nil {
		t.Fatal(err)
	}
	c1, _ := sys.TrueCardinality(ctx, q1)
	c2, _ := sys.TrueCardinality(ctx, q2)
	qi, _ := q1.Intersect(q2)
	ci, _ := sys.TrueCardinality(ctx, qi)
	if math.Abs(truth-float64(c1+c2-ci)) > 1e-9 {
		t.Errorf("OR = %v, want %d", truth, c1+c2-ci)
	}
	base, err := sys.AnalyzeBaseline()
	if err != nil {
		t.Fatal(err)
	}
	est, err := sys.EstimateCompound(base, ExceptExpr(QueryExpr(q1), QueryExpr(q2)))
	if err != nil {
		t.Fatal(err)
	}
	if est < 0 || math.IsNaN(est) {
		t.Errorf("EXCEPT estimate = %v", est)
	}
	if _, err := sys.TrueCompound(UnionExpr(QueryExpr(q1), QueryExpr(q2))); err != nil {
		t.Errorf("UNION: %v", err)
	}
}

func TestJoinOrderFacade(t *testing.T) {
	sys := testSystem(t)
	base, err := sys.AnalyzeBaseline()
	if err != nil {
		t.Fatal(err)
	}
	q, _ := sys.ParseQuery(`SELECT * FROM title, cast_info, movie_keyword
		WHERE title.id = cast_info.movie_id AND title.id = movie_keyword.movie_id
		AND cast_info.role_id = 2`)
	order, cost, err := sys.OptimizeJoinOrder(base, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || cost < 0 {
		t.Errorf("order = %v, cost = %v", order, cost)
	}
	trueCost, err := sys.TrueJoinCost(q, order)
	if err != nil {
		t.Fatal(err)
	}
	if trueCost < 0 {
		t.Errorf("true cost = %v", trueCost)
	}
	if _, err := sys.TrueJoinCost(q, []string{"title"}); err == nil {
		t.Error("bad order should fail")
	}
}

func TestOpenSyntheticDefaults(t *testing.T) {
	sys, err := OpenSynthetic(context.Background(), WithTitles(200))
	if err != nil {
		t.Fatal(err)
	}
	if sys.DB().NumRows("title") != 200 {
		t.Errorf("titles = %d", sys.DB().NumRows("title"))
	}
	if sys.Schema().NumTables() != 6 {
		t.Errorf("tables = %d", sys.Schema().NumTables())
	}
}
