package crn

import (
	"crn/internal/card"
	"crn/internal/contain"
	icrn "crn/internal/crn"
	"crn/internal/guard"
	"crn/internal/sqlparse"
)

// Typed sentinel errors of the facade. Errors returned by the API wrap
// these, so callers branch with errors.Is instead of matching message
// strings — the contract cmd/crnserve relies on to map failures to HTTP
// status codes.
var (
	// ErrDialect reports query text outside the supported conjunctive SQL
	// dialect (returned, wrapped, by ParseQuery).
	ErrDialect = sqlparse.ErrDialect

	// ErrNoPoolMatch reports a query with no usable queries-pool match —
	// no pooled query shares its FROM clause or every candidate was
	// skipped — on an estimator without a fallback.
	ErrNoPoolMatch = card.ErrNoPoolMatch

	// ErrDimMismatch reports a serialized model whose feature dimension
	// does not match the opened database's featurization (returned,
	// wrapped, by LoadContainmentModel).
	ErrDimMismatch = icrn.ErrDimMismatch

	// ErrNotComparable reports a containment request over queries with
	// different FROM clauses — containment is undefined between them (§2).
	ErrNotComparable = contain.ErrNotComparable

	// ErrOverloaded reports a request shed by the admission gate
	// (WithMaxInflight): admitting it would have exceeded the concurrency
	// ceiling. Retryable backpressure — cmd/crnserve maps it to HTTP 429
	// with a Retry-After header.
	ErrOverloaded = guard.ErrOverloaded

	// ErrBreakerOpen reports an estimate diverted by an open circuit
	// breaker (WithBreaker) on an estimator without a fallback to absorb
	// the diverted traffic. With WithFallback configured the diversion is
	// answered by the fallback instead and no error is returned.
	ErrBreakerOpen = guard.ErrBreakerOpen
)
