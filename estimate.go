package crn

import (
	"context"
	"errors"
	"runtime"
	"time"

	"crn/internal/card"
	"crn/internal/contain"
	icrn "crn/internal/crn"
	"crn/internal/guard"
	"crn/internal/online"
	"crn/internal/serve"
	"crn/internal/telemetry"
)

// CardinalityEstimator is the pool-based Cnt2Crd estimator of §5. It is
// safe for concurrent use on a trained model; the pool may grow
// concurrently via RecordExecuted.
//
// CRN-backed estimators carry a serving cache: for every stable pool entry
// (and any recurring probe) the set-module encodings AND the precomputed
// pair-head partial products are memoized by canonical query key across
// requests, the recurring working set held in a zero-copy resident tier —
// so in steady state a single-query estimate computes only its own probe
// side. The cache revalidates against the pool's version counter before
// every estimate (a /record-style mutation flushes it by construction) and
// can be flushed explicitly with InvalidateRepresentations; estimates with
// and without the cache are bit-identical.
//
// With WithCoalescing, concurrent EstimateCardinality calls are
// additionally micro-batched into shared estimation passes; coalesced
// results are bit-identical to uncoalesced calls.
type CardinalityEstimator struct {
	est   *card.Estimator
	cache *icrn.RepCache
	pool  *QueriesPool
	coal  *serve.Coalescer[Query, float64]

	// box, when non-nil, is the atomic model-generation indirection of an
	// AdaptiveEstimator: the rate model and its representation cache are
	// read through one atomic pointer load per estimation pass, so a
	// background promotion swaps both coherently under live traffic.
	box *online.ModelBox

	// Operational guards (all optional, all nil-safe): gate sheds load
	// beyond WithMaxInflight, reqTimeout deadline-bounds each call, and
	// breaker diverts an unhealthy learned path to the fallback estimator.
	gate       *guard.Gate
	breaker    *guard.Breaker
	reqTimeout time.Duration
	// wheel amortizes the per-request deadline for non-cancellable parent
	// contexts: one shared timer per granule instead of one per request
	// (see guard.DeadlineWheel). Cancellable parents — every HTTP request
	// context — fall back to context.WithTimeout for real cancel
	// propagation.
	wheel *guard.DeadlineWheel

	// tel, when non-nil, records per-request latency spans, outcome
	// counters and subsystem collector families (see WithTelemetry). Nil
	// keeps the estimate path free of clock reads.
	tel *telemetry.Telemetry
}

// applyGuards wires the admission gate, request timeout and circuit
// breaker from the collected options.
func (e *CardinalityEstimator) applyGuards(set estimatorSettings) {
	e.gate = guard.NewGate(set.maxInflight)
	e.reqTimeout = set.reqTimeout
	e.wheel = guard.NewDeadlineWheel(set.reqTimeout)
	if set.breaker != nil {
		e.breaker = guard.NewBreaker(*set.breaker)
	}
}

// applyTelemetry threads the telemetry bundle through every layer the
// estimator owns — stage histograms into the coalescer, card estimator,
// rate adapter and pool; collector families over the guard, cache,
// coalescer and pool stats the facade already keeps. Called once at
// construction, before any traffic, because the subsystem telemetry
// fields are read without synchronization.
func (e *CardinalityEstimator) applyTelemetry(set estimatorSettings) {
	t := set.tel
	if t == nil {
		return
	}
	e.tel = t
	e.est.Tel = t
	e.coal.SetTelemetry(t.Stages.CoalesceWait, t.CoalesceBatch)
	if e.pool != nil {
		e.pool.SetTelemetry(t.TopKScanned, t.TopKPruned)
	}
	if e.box != nil {
		e.box.SetStages(t.Stages)
	} else if r, ok := e.est.Rates.(*icrn.Rates); ok {
		// Stage-instrument a private copy so sibling estimators sharing the
		// model's adapter stay untouched.
		r2 := *r
		r2.Stages = t.Stages
		e.est.Rates = &r2
	}
	e.registerCollectors()
}

// registerCollectors bridges the estimator's existing stats atomics onto
// the registry as gather-time collector families, so /healthz and /metrics
// render from the same source of truth without a second set of hot-path
// writes.
func (e *CardinalityEstimator) registerCollectors() {
	r := e.tel.Registry()

	// Admission gate.
	r.GaugeFunc("crn_gate_inflight", "Currently admitted estimate calls.",
		func() float64 { return float64(e.gate.Stats().Inflight) })
	r.CollectCounter("crn_gate_requests_total",
		"Admission decisions: admitted into the estimate path vs shed with ErrOverloaded.",
		"decision", func(emit telemetry.Emit) {
			gs := e.gate.Stats()
			emit(float64(gs.Admitted), "admitted")
			emit(float64(gs.Shed), "shed")
		})

	// Circuit breaker.
	r.GaugeFunc("crn_breaker_state", "Circuit breaker state: 0 closed, 1 half-open, 2 open.",
		func() float64 {
			switch e.breaker.State() {
			case guard.BreakerOpen:
				return 2
			case guard.BreakerHalfOpen:
				return 1
			}
			return 0
		})
	r.CollectCounter("crn_breaker_events_total",
		"Circuit-breaker lifecycle events and diverted requests.",
		"event", func(emit telemetry.Emit) {
			bs := e.breaker.Stats()
			emit(float64(bs.Trips), "trip")
			emit(float64(bs.Closes), "close")
			emit(float64(bs.Diverted), "diverted")
		})

	// Representation cache.
	r.CollectCounter("crn_repcache_lookups_total",
		"Representation-cache lookups by result.",
		"result", func(emit telemetry.Emit) {
			cs := e.CacheStats()
			emit(float64(cs.Hits), "hit")
			emit(float64(cs.Misses), "miss")
		})
	r.GaugeFunc("crn_repcache_entries", "Cached representations across both tiers.",
		func() float64 { return float64(e.CacheStats().Size) })
	r.GaugeFunc("crn_repcache_resident", "Representations in the zero-copy resident tier.",
		func() float64 { return float64(e.CacheStats().Resident) })

	// Request coalescer.
	r.CollectCounter("crn_coalesce_calls_total",
		"Coalescer call dispositions: total Do invocations, calls answered by another call's slot, solo fast-path runs, early abandonments.",
		"kind", func(emit telemetry.Emit) {
			cs := e.coal.Stats()
			emit(float64(cs.Calls), "call")
			emit(float64(cs.Deduped), "deduped")
			emit(float64(cs.Solo), "solo")
			emit(float64(cs.Abandoned), "abandoned")
		})
	r.CollectCounter("crn_coalesce_batches_total", "Batch executions (solo runs included).",
		"", func(emit telemetry.Emit) { emit(float64(e.coal.Stats().Batches), "") })

	// Queries pool.
	if e.pool != nil {
		r.GaugeFunc("crn_pool_entries", "Pooled executed queries.",
			func() float64 { return float64(e.pool.Stats().Entries) })
		r.CollectCounter("crn_pool_evictions_total", "Entries evicted by the capacity bound.",
			"", func(emit telemetry.Emit) { emit(float64(e.pool.Stats().Evictions), "") })
		r.CollectCounter("crn_pool_selections_total",
			"Bounded top-K selections by serving path (signature-class index vs linear scan).",
			"path", func(emit telemetry.Emit) {
				ps := e.pool.Stats()
				emit(float64(ps.IndexHits), "indexed")
				emit(float64(ps.IndexFallbacks), "fallback")
			})
		r.CollectCounter("crn_pool_scanned_total",
			"Candidates visited by bounded selection, by serving path.",
			"path", func(emit telemetry.Emit) {
				ps := e.pool.Stats()
				emit(float64(ps.ScannedIndexed), "indexed")
				emit(float64(ps.ScannedFallback), "fallback")
			})
	}

	// Batch-level candidate sharing.
	r.CollectCounter("crn_candidate_selections_total",
		"Per-probe candidate gatherings: requested across all batches, and the subset answered by reusing an earlier selection of the same batch.",
		"kind", func(emit telemetry.Emit) {
			ss := e.est.SelectionStats()
			emit(float64(ss.Selections), "requested")
			emit(float64(ss.Shared), "shared")
		})
}

// finish closes out one request's telemetry: end-to-end latency (into the
// batch histogram when batch is set) and the outcome counter. fellBack
// marks answers diverted to the fallback estimator (breaker-open routing
// or the degraded-answer path).
func (e *CardinalityEstimator) finish(st telemetry.StageTimer, batch bool, err error, fellBack bool) {
	if e.tel == nil {
		return
	}
	hist := e.tel.E2E
	if batch {
		hist = e.tel.BatchE2E
	}
	hist.ObserveDuration(st.Total())
	switch {
	case fellBack && err == nil:
		e.tel.ReqFallback.Inc()
	case err != nil:
		e.tel.ReqError.Inc()
	default:
		e.tel.ReqOK.Inc()
	}
}

// shed counts one request shed at the admission gate.
func (e *CardinalityEstimator) shed(st telemetry.StageTimer, batch bool) {
	if e.tel == nil {
		return
	}
	hist := e.tel.E2E
	if batch {
		hist = e.tel.BatchE2E
	}
	hist.ObserveDuration(st.Total())
	e.tel.ReqShed.Inc()
}

// withTimeout applies the configured per-request deadline (a no-op cancel
// is returned when none is configured). Non-cancellable parents get a
// shared-timer deadline from the wheel — no allocation-and-timer per
// request; cancellable parents get a real context.WithTimeout.
func (e *CardinalityEstimator) withTimeout(ctx context.Context) (context.Context, context.CancelFunc) {
	if e.reqTimeout <= 0 {
		return ctx, func() {}
	}
	if wctx, ok := e.wheel.Context(ctx); ok {
		return wctx, func() {}
	}
	return context.WithTimeout(ctx, e.reqTimeout)
}

// activeCache resolves the representation cache estimates run against: the
// current generation's cache for an adaptive estimator, the fixed one
// otherwise. May be nil (ImproveBaseline, WithoutRepCache); RepCache
// methods are nil-safe.
func (e *CardinalityEstimator) activeCache() *icrn.RepCache {
	if e.box != nil {
		return e.box.Current().Rates.Cache
	}
	return e.cache
}

// RepCacheStats reports representation-cache effectiveness (see
// CardinalityEstimator.CacheStats).
type RepCacheStats = icrn.RepCacheStats

// CoalescerStats reports request-coalescing effectiveness (see
// CardinalityEstimator.CoalescerStats).
type CoalescerStats = serve.Stats

// CardinalityEstimator builds the paper's Cnt2Crd(CRN) estimator from a
// trained containment model and a queries pool. Options tune the Figure 8
// algorithm (WithFinal, WithEpsilon, WithFallback, WithWorkers) and the
// serving-side representation cache (WithRepCacheSize, WithoutRepCache).
func (s *System) CardinalityEstimator(m *ContainmentModel, p *QueriesPool, opts ...EstimatorOption) *CardinalityEstimator {
	set := estimatorSettings{cacheSize: icrn.DefaultRepCacheSize}
	est := card.New(m.rates, p)
	set.est = est
	for _, o := range opts {
		o(&set)
	}
	ce := &CardinalityEstimator{est: est, pool: p}
	if set.cacheSize > 0 {
		// Bind a private cached view of the rate adapter, leaving the
		// model's own adapter (and any sibling estimator) untouched.
		ce.cache = icrn.NewRepCache(set.cacheSize)
		rates := *m.rates
		rates.Cache = ce.cache
		est.Rates = &rates
		if p != nil {
			// Surgical invalidation: the cache absorbs pool mutations as they
			// happen (an eviction drops one cached row, an insert none), so
			// record/feedback traffic no longer flushes the warm working set.
			p.Subscribe(ce.cache)
			// Callers predating Close never call it; when such an estimator
			// is garbage collected, reclaim the subscription so discarded
			// estimators cannot pin their caches in the pool's listener list
			// forever. (Close does this deterministically; the cleanup's
			// duplicate Unsubscribe is a no-op.)
			runtime.AddCleanup(ce, func(s poolSub) { s.pool.Unsubscribe(s.cache) },
				poolSub{pool: p, cache: ce.cache})
		}
	}
	ce.initCoalescer(set)
	ce.applyGuards(set)
	ce.applyTelemetry(set)
	return ce
}

// poolSub is the GC-cleanup payload releasing a discarded estimator's
// pool subscription; it must not reference the estimator itself.
type poolSub struct {
	pool  *QueriesPool
	cache *icrn.RepCache
}

// Close releases the estimator's pool subscription (the surgical cache
// invalidation hook). Estimators are usually process-lived; call Close when
// discarding one while its pool lives on.
func (e *CardinalityEstimator) Close() {
	if e.box != nil {
		e.box.Close()
		return
	}
	if e.cache != nil && e.pool != nil {
		e.pool.Unsubscribe(e.cache)
	}
}

// initCoalescer wires the request micro-batcher when WithCoalescing asked
// for one. The batch runner revalidates the cache and answers through the
// same indexed batch pass as EstimateCardinalityBatch, so coalesced results
// are bit-identical to direct calls. Shared batches run under the
// background context the coalescer supplies, because the batch outlives any
// single caller (individual callers that cancel abandon their slot without
// cancelling the shared work); a solo fast-path run receives its one
// caller's context, so an uncontended request stays fully cancellable.
func (e *CardinalityEstimator) initCoalescer(set estimatorSettings) {
	if set.coalesceBatch < 2 {
		return
	}
	e.coal = serve.NewCoalescer(set.coalesceBatch, set.coalesceWait, Query.Key,
		func(ctx context.Context, qs []Query) ([]float64, error) {
			e.revalidate()
			return e.est.EstimateCards(ctx, qs)
		})
}

// ImproveBaseline wraps an existing cardinality model with the paper's §7
// construction — Cnt2Crd(Crd2Cnt(M)) over the pool — without changing M.
// Representation caching does not apply (the wrapped model has no
// set-module representations), so the cache options WithRepCacheSize and
// WithoutRepCache are ignored and CacheStats reports zeros. WithCoalescing
// is honored: request micro-batching is model-agnostic.
func (s *System) ImproveBaseline(m BaselineEstimator, p *QueriesPool, opts ...EstimatorOption) *CardinalityEstimator {
	est := card.Improved(m, p)
	set := estimatorSettings{est: est}
	for _, o := range opts {
		o(&set)
	}
	ce := &CardinalityEstimator{est: est, pool: p}
	ce.initCoalescer(set)
	ce.applyGuards(set)
	ce.applyTelemetry(set)
	return ce
}

// revalidate flushes the representation cache when the pool has mutated
// since the last estimate in a way the cache did not absorb surgically.
// A nil pool is left for the underlying estimator's configuration check to
// report as an error.
func (e *CardinalityEstimator) revalidate() {
	if e.pool != nil {
		e.activeCache().Validate(e.pool.Version())
	}
}

// EstimateCardinality estimates |q| using the pool (Figure 8 algorithm).
// Queries without a usable pool match fail with an error wrapping
// ErrNoPoolMatch unless a fallback is configured.
//
// On a coalescing estimator (WithCoalescing) the call may share one
// batched estimation pass with other concurrent callers — same results,
// bit for bit, at a fraction of the per-request cost. A shared batch fails
// as a whole, so on a coalesced error the query is transparently re-run
// alone and the caller sees its own error (or its own success when another
// query in the batch was the one that failed). A request that ran on the
// coalescer's solo fast path already executed alone, so its error is
// returned directly without the redundant retry.
// Operational guards apply when configured: WithMaxInflight sheds the call
// with ErrOverloaded before any work happens, WithRequestTimeout bounds it
// with a deadline, and an open WithBreaker diverts it to the fallback
// estimator (ErrBreakerOpen without one).
func (e *CardinalityEstimator) EstimateCardinality(ctx context.Context, q Query) (float64, error) {
	st := e.tel.StartTimer()
	if err := e.gate.Acquire(); err != nil {
		e.shed(st, false)
		return 0, err
	}
	defer e.gate.Release()
	ctx, cancel := e.withTimeout(ctx)
	defer cancel()
	if e.tel != nil {
		st.Mark(e.tel.Stages.Admission)
	}
	if e.breaker == nil {
		v, err := e.estimatePrimary(ctx, q)
		e.finish(st, false, err, false)
		return v, err
	}
	allowed, probe := e.breaker.Allow()
	if !allowed {
		v, err := e.fallbackOne(ctx, q)
		e.finish(st, false, err, true)
		return v, err
	}
	var start time.Time
	if e.breaker.TracksLatency() {
		start = time.Now()
	}
	v, err := e.estimatePrimary(ctx, q)
	failed := breakerCountable(ctx, err)
	var lat time.Duration
	if !start.IsZero() {
		lat = time.Since(start)
	}
	if probe {
		e.breaker.RecordProbe(lat, failed)
	} else {
		e.breaker.Record(lat, failed)
	}
	if failed {
		// A countable primary failure with a fallback available: answer
		// degraded instead of erroring — the same routing an open breaker
		// applies, one request early.
		if fv, ferr := e.fallbackOne(ctx, q); ferr == nil {
			e.finish(st, false, nil, true)
			return fv, nil
		}
	}
	e.finish(st, false, err, false)
	return v, err
}

// estimatePrimary is the learned estimate path (pre-guard
// EstimateCardinality): coalesced when configured, with the solo-error
// unwrap and the retry-alone fallback on shared-batch failure.
func (e *CardinalityEstimator) estimatePrimary(ctx context.Context, q Query) (float64, error) {
	e.revalidate()
	if e.coal == nil {
		return e.est.EstimateCardCtx(ctx, q)
	}
	v, err := e.coal.Do(ctx, q)
	if err == nil {
		return v, nil
	}
	var solo *serve.SoloError
	if errors.As(err, &solo) {
		return 0, solo.Err
	}
	if ctx.Err() != nil {
		return 0, ctx.Err()
	}
	return e.est.EstimateCardCtx(ctx, q)
}

// fallbackOne answers one query from the configured fallback estimator —
// the breaker's divert target. Mirrors card.Estimator's own fallback
// dispatch (context-aware when the fallback supports it).
func (e *CardinalityEstimator) fallbackOne(ctx context.Context, q Query) (float64, error) {
	fb := e.est.Fallback
	if fb == nil {
		return 0, guard.ErrBreakerOpen
	}
	var v float64
	var err error
	if cfb, ok := fb.(contain.CtxCardEstimator); ok {
		v, err = cfb.EstimateCardCtx(ctx, q)
	} else if cerr := ctx.Err(); cerr != nil {
		return 0, cerr
	} else {
		v, err = fb.EstimateCard(q)
	}
	if err == nil && e.tel != nil {
		// The divert path bypasses card.EstimateCards, which notes every
		// estimate it serves; note the fallback answer here so execution
		// feedback still joins it into the fallback arm's q-error.
		e.tel.Accuracy.Note(q.Key(), v, telemetry.ArmFallback)
	}
	return v, err
}

// fallbackBatch is fallbackOne over a batch; it fails as a whole like the
// primary batch path.
func (e *CardinalityEstimator) fallbackBatch(ctx context.Context, queries []Query) ([]float64, error) {
	out := make([]float64, len(queries))
	for i, q := range queries {
		v, err := e.fallbackOne(ctx, q)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// breakerCountable reports whether an estimate error should count against
// the circuit breaker. Client errors (bad dialect, no pool match,
// incomparable queries) and caller cancellation say nothing about the
// health of the learned path; internal failures and deadline blowouts do.
func breakerCountable(ctx context.Context, err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrDialect) || errors.Is(err, ErrNoPoolMatch) ||
		errors.Is(err, ErrNotComparable) || errors.Is(err, guard.ErrOverloaded) {
		return false
	}
	if errors.Is(err, context.Canceled) {
		return false
	}
	return true
}

// EstimateCardinalityBatch estimates |q| for every query with one amortized
// containment-rate pass over all pool pairs of the batch: feature encoding
// and the set-module forward of recurring pool entries are shared (and
// memoized across requests by the representation cache), and the CRN head
// runs matrix-batched. Results are identical to per-query
// EstimateCardinality calls; the batch fails as a whole on the first query
// that errors.
// The operational guards apply per batch call: one admission slot, one
// deadline, one breaker outcome — a batch is one unit of serving work.
func (e *CardinalityEstimator) EstimateCardinalityBatch(ctx context.Context, queries []Query) ([]float64, error) {
	st := e.tel.StartTimer()
	if err := e.gate.Acquire(); err != nil {
		e.shed(st, true)
		return nil, err
	}
	defer e.gate.Release()
	ctx, cancel := e.withTimeout(ctx)
	defer cancel()
	if e.tel != nil {
		st.Mark(e.tel.Stages.Admission)
	}
	if e.breaker == nil {
		e.revalidate()
		out, err := e.est.EstimateCards(ctx, queries)
		e.finish(st, true, err, false)
		return out, err
	}
	allowed, probe := e.breaker.Allow()
	if !allowed {
		out, err := e.fallbackBatch(ctx, queries)
		e.finish(st, true, err, true)
		return out, err
	}
	var start time.Time
	if e.breaker.TracksLatency() {
		start = time.Now()
	}
	e.revalidate()
	out, err := e.est.EstimateCards(ctx, queries)
	failed := breakerCountable(ctx, err)
	var lat time.Duration
	if !start.IsZero() {
		lat = time.Since(start)
	}
	if probe {
		e.breaker.RecordProbe(lat, failed)
	} else {
		e.breaker.Record(lat, failed)
	}
	if failed {
		if fout, ferr := e.fallbackBatch(ctx, queries); ferr == nil {
			e.finish(st, true, nil, true)
			return fout, nil
		}
	}
	e.finish(st, true, err, false)
	return out, err
}

// InvalidateRepresentations explicitly discards every cached set-module
// representation. Pool mutations are detected automatically via the pool's
// version counter; call this after swapping the model or encoder underneath
// a long-lived estimator, or from a serving write path that wants the flush
// to happen eagerly rather than on the next estimate.
func (e *CardinalityEstimator) InvalidateRepresentations() {
	e.activeCache().Invalidate()
}

// CacheStats reports representation-cache hits, misses and tier occupancy.
// Estimators without a cache — ImproveBaseline always, CardinalityEstimator
// under WithoutRepCache — report all zeros (the nil cache's Stats is a
// guarded no-op, so this is safe to call unconditionally).
func (e *CardinalityEstimator) CacheStats() RepCacheStats {
	return e.activeCache().Stats()
}

// CoalescerStats reports request-coalescing counters; all zeros for an
// estimator without WithCoalescing.
func (e *CardinalityEstimator) CoalescerStats() CoalescerStats {
	return e.coal.Stats()
}

// SelectionStats reports batch-level candidate-sharing counters: how many
// per-probe candidate selections the estimator performed and how many were
// answered by reusing an earlier selection of the same batch. Shared stays
// zero without WithSharedSelection.
func (e *CardinalityEstimator) SelectionStats() SelectionStats {
	return e.est.SelectionStats()
}

// GateStats reports admission-gate counters (see GuardStats).
type GateStats = guard.GateStats

// BreakerStats reports circuit-breaker state and counters (see GuardStats).
type BreakerStats = guard.BreakerStats

// GuardStats is a point-in-time snapshot of the estimator's operational
// guards, shaped for health endpoints. Unconfigured guards report zero
// values (breaker state "closed", gate ceiling 0 = unlimited).
type GuardStats struct {
	Gate    GateStats    `json:"gate"`
	Breaker BreakerStats `json:"breaker"`
}

// GuardStats returns the admission-gate and circuit-breaker snapshot.
func (e *CardinalityEstimator) GuardStats() GuardStats {
	return GuardStats{Gate: e.gate.Stats(), Breaker: e.breaker.Stats()}
}

// BreakerOpen reports whether the circuit breaker is currently open
// (readiness probes route traffic away while it is). Always false without
// WithBreaker.
func (e *CardinalityEstimator) BreakerOpen() bool {
	return e.breaker.State() == guard.BreakerOpen
}

// WithFallback sets a fallback estimator for queries without a usable pool
// match and returns the receiver.
//
// Deprecated: pass the WithFallback EstimatorOption to CardinalityEstimator
// or ImproveBaseline instead.
func (e *CardinalityEstimator) WithFallback(fb BaselineEstimator) *CardinalityEstimator {
	e.est.Fallback = fb
	return e
}
