package crn

import (
	"context"

	"crn/internal/card"
)

// CardinalityEstimator is the pool-based Cnt2Crd estimator of §5. It is
// safe for concurrent use on a trained model; the pool may grow
// concurrently via RecordExecuted.
type CardinalityEstimator struct {
	est *card.Estimator
}

// CardinalityEstimator builds the paper's Cnt2Crd(CRN) estimator from a
// trained containment model and a queries pool. Options tune the Figure 8
// algorithm (WithFinal, WithEpsilon, WithFallback, WithWorkers).
func (s *System) CardinalityEstimator(m *ContainmentModel, p *QueriesPool, opts ...EstimatorOption) *CardinalityEstimator {
	est := card.New(m.rates, p)
	for _, o := range opts {
		o(est)
	}
	return &CardinalityEstimator{est: est}
}

// ImproveBaseline wraps an existing cardinality model with the paper's §7
// construction — Cnt2Crd(Crd2Cnt(M)) over the pool — without changing M.
func (s *System) ImproveBaseline(m BaselineEstimator, p *QueriesPool, opts ...EstimatorOption) *CardinalityEstimator {
	est := card.Improved(m, p)
	for _, o := range opts {
		o(est)
	}
	return &CardinalityEstimator{est: est}
}

// EstimateCardinality estimates |q| using the pool (Figure 8 algorithm).
// Queries without a usable pool match fail with an error wrapping
// ErrNoPoolMatch unless a fallback is configured.
func (e *CardinalityEstimator) EstimateCardinality(ctx context.Context, q Query) (float64, error) {
	return e.est.EstimateCardCtx(ctx, q)
}

// EstimateCardinalityBatch estimates |q| for every query with one amortized
// containment-rate pass over all pool pairs of the batch: feature encoding
// and the set-module forward of recurring pool entries are shared, and the
// CRN head runs matrix-batched. Results are identical to per-query
// EstimateCardinality calls; the batch fails as a whole on the first query
// that errors.
func (e *CardinalityEstimator) EstimateCardinalityBatch(ctx context.Context, queries []Query) ([]float64, error) {
	return e.est.EstimateCards(ctx, queries)
}

// WithFallback sets a fallback estimator for queries without a usable pool
// match and returns the receiver.
//
// Deprecated: pass the WithFallback EstimatorOption to CardinalityEstimator
// or ImproveBaseline instead.
func (e *CardinalityEstimator) WithFallback(fb BaselineEstimator) *CardinalityEstimator {
	e.est.Fallback = fb
	return e
}
