package crn

import (
	"context"

	"crn/internal/card"
	icrn "crn/internal/crn"
)

// CardinalityEstimator is the pool-based Cnt2Crd estimator of §5. It is
// safe for concurrent use on a trained model; the pool may grow
// concurrently via RecordExecuted.
//
// CRN-backed estimators carry a representation cache: the set-module
// encodings of the stable pool entries are memoized by canonical query key
// across requests, so a pool entry is encoded once per pool version instead
// of once per batch. The cache revalidates against the pool's version
// counter before every estimate (a /record-style mutation flushes it by
// construction) and can be flushed explicitly with
// InvalidateRepresentations; estimates with and without the cache are
// bit-identical.
type CardinalityEstimator struct {
	est   *card.Estimator
	cache *icrn.RepCache
	pool  *QueriesPool
}

// RepCacheStats reports representation-cache effectiveness (see
// CardinalityEstimator.CacheStats).
type RepCacheStats = icrn.RepCacheStats

// CardinalityEstimator builds the paper's Cnt2Crd(CRN) estimator from a
// trained containment model and a queries pool. Options tune the Figure 8
// algorithm (WithFinal, WithEpsilon, WithFallback, WithWorkers) and the
// serving-side representation cache (WithRepCacheSize, WithoutRepCache).
func (s *System) CardinalityEstimator(m *ContainmentModel, p *QueriesPool, opts ...EstimatorOption) *CardinalityEstimator {
	set := estimatorSettings{cacheSize: icrn.DefaultRepCacheSize}
	est := card.New(m.rates, p)
	set.est = est
	for _, o := range opts {
		o(&set)
	}
	ce := &CardinalityEstimator{est: est, pool: p}
	if set.cacheSize > 0 {
		// Bind a private cached view of the rate adapter, leaving the
		// model's own adapter (and any sibling estimator) untouched.
		ce.cache = icrn.NewRepCache(set.cacheSize)
		rates := *m.rates
		rates.Cache = ce.cache
		est.Rates = &rates
	}
	return ce
}

// ImproveBaseline wraps an existing cardinality model with the paper's §7
// construction — Cnt2Crd(Crd2Cnt(M)) over the pool — without changing M.
// Representation caching does not apply (the wrapped model has no
// set-module representations), so cache options are ignored.
func (s *System) ImproveBaseline(m BaselineEstimator, p *QueriesPool, opts ...EstimatorOption) *CardinalityEstimator {
	est := card.Improved(m, p)
	set := estimatorSettings{est: est}
	for _, o := range opts {
		o(&set)
	}
	return &CardinalityEstimator{est: est, pool: p}
}

// revalidate flushes the representation cache when the pool has mutated
// since the last estimate. A nil pool is left for the underlying
// estimator's configuration check to report as an error.
func (e *CardinalityEstimator) revalidate() {
	if e.cache != nil && e.pool != nil {
		e.cache.Validate(e.pool.Version())
	}
}

// EstimateCardinality estimates |q| using the pool (Figure 8 algorithm).
// Queries without a usable pool match fail with an error wrapping
// ErrNoPoolMatch unless a fallback is configured.
func (e *CardinalityEstimator) EstimateCardinality(ctx context.Context, q Query) (float64, error) {
	e.revalidate()
	return e.est.EstimateCardCtx(ctx, q)
}

// EstimateCardinalityBatch estimates |q| for every query with one amortized
// containment-rate pass over all pool pairs of the batch: feature encoding
// and the set-module forward of recurring pool entries are shared (and
// memoized across requests by the representation cache), and the CRN head
// runs matrix-batched. Results are identical to per-query
// EstimateCardinality calls; the batch fails as a whole on the first query
// that errors.
func (e *CardinalityEstimator) EstimateCardinalityBatch(ctx context.Context, queries []Query) ([]float64, error) {
	e.revalidate()
	return e.est.EstimateCards(ctx, queries)
}

// InvalidateRepresentations explicitly discards every cached set-module
// representation. Pool mutations are detected automatically via the pool's
// version counter; call this after swapping the model or encoder underneath
// a long-lived estimator, or from a serving write path that wants the flush
// to happen eagerly rather than on the next estimate.
func (e *CardinalityEstimator) InvalidateRepresentations() {
	if e.cache != nil {
		e.cache.Invalidate()
	}
}

// CacheStats reports representation-cache hits, misses and occupancy; zero
// values for an estimator without a cache.
func (e *CardinalityEstimator) CacheStats() RepCacheStats {
	return e.cache.Stats()
}

// WithFallback sets a fallback estimator for queries without a usable pool
// match and returns the receiver.
//
// Deprecated: pass the WithFallback EstimatorOption to CardinalityEstimator
// or ImproveBaseline instead.
func (e *CardinalityEstimator) WithFallback(fb BaselineEstimator) *CardinalityEstimator {
	e.est.Fallback = fb
	return e
}
