package crn

import (
	"context"
	"fmt"
	"testing"
)

// repCacheFixture builds a trained system with a seeded pool and returns it
// together with a probe query the pool covers.
func repCacheFixture(t *testing.T) (*System, *ContainmentModel, *QueriesPool, Query) {
	t.Helper()
	ctx := context.Background()
	sys := testSystem(t)
	model, err := sys.TrainContainmentModel(ctx, tinyTrainOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	p := sys.NewQueriesPool()
	if err := sys.SeedPool(ctx, p, 40, 11); err != nil {
		t.Fatal(err)
	}
	probe, err := sys.ParseQuery("SELECT * FROM title WHERE title.production_year > 1960")
	if err != nil {
		t.Fatal(err)
	}
	return sys, model, p, probe
}

// TestRepCacheEquivalence pins cached estimation — cold, warm, batch and
// single — to the uncached estimator bit-for-bit.
func TestRepCacheEquivalence(t *testing.T) {
	ctx := context.Background()
	sys, model, p, probe := repCacheFixture(t)

	cached := sys.CardinalityEstimator(model, p)
	uncached := sys.CardinalityEstimator(model, p, WithoutRepCache())

	want, err := uncached.EstimateCardinality(ctx, probe)
	if err != nil {
		t.Fatal(err)
	}
	for _, label := range []string{"cold", "warm"} {
		got, err := cached.EstimateCardinality(ctx, probe)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%s cached estimate %v != uncached %v", label, got, want)
		}
	}
	batch, err := cached.EstimateCardinalityBatch(ctx, []Query{probe, probe})
	if err != nil {
		t.Fatal(err)
	}
	if batch[0] != want || batch[1] != want {
		t.Fatalf("cached batch %v != uncached single %v", batch, want)
	}
	st := cached.CacheStats()
	if st.Hits == 0 {
		t.Errorf("warm estimates should hit the cache: %+v", st)
	}
	if us := uncached.CacheStats(); us != (RepCacheStats{}) {
		t.Errorf("uncached estimator reports cache stats %+v", us)
	}
}

// TestRepCacheInvalidationOnPoolMutation is the facade-level cache
// correctness gate: after the pool gains an entry, the cached estimator's
// answers must equal a fresh, uncached estimator over the mutated pool —
// i.e. the new pool entry is reflected, no stale representation survives.
func TestRepCacheInvalidationOnPoolMutation(t *testing.T) {
	ctx := context.Background()
	sys, model, p, probe := repCacheFixture(t)
	cached := sys.CardinalityEstimator(model, p)

	before, err := cached.EstimateCardinality(ctx, probe) // warm the cache
	if err != nil {
		t.Fatal(err)
	}

	// Mutate the pool: record a query on the probe's FROM clause.
	extra, err := sys.ParseQuery("SELECT * FROM title WHERE title.production_year > 1955")
	if err != nil {
		t.Fatal(err)
	}
	if _, added, err := sys.RecordExecuted(ctx, p, extra); err != nil || !added {
		t.Fatalf("record: added=%v err=%v", added, err)
	}

	after, err := cached.EstimateCardinality(ctx, probe)
	if err != nil {
		t.Fatal(err)
	}
	fresh := sys.CardinalityEstimator(model, p, WithoutRepCache())
	want, err := fresh.EstimateCardinality(ctx, probe)
	if err != nil {
		t.Fatal(err)
	}
	if after != want {
		t.Fatalf("post-mutation cached estimate %v != fresh estimate %v (stale cache?)", after, want)
	}
	// The new entry participates: the estimate is allowed to move, and the
	// explicit invalidation hook must also leave answers correct.
	_ = before
	cached.InvalidateRepresentations()
	again, err := cached.EstimateCardinality(ctx, probe)
	if err != nil {
		t.Fatal(err)
	}
	if again != want {
		t.Fatalf("post-invalidate estimate %v != fresh %v", again, want)
	}
}

// TestRepCacheSizeOption bounds the cache via the option.
func TestRepCacheSizeOption(t *testing.T) {
	ctx := context.Background()
	sys, model, p, probe := repCacheFixture(t)
	est := sys.CardinalityEstimator(model, p, WithRepCacheSize(4))
	if _, err := est.EstimateCardinality(ctx, probe); err != nil {
		t.Fatal(err)
	}
	st := est.CacheStats()
	if st.Capacity != 4 {
		t.Fatalf("capacity = %d, want 4", st.Capacity)
	}
	if st.Size > 4 {
		t.Fatalf("size %d exceeds capacity", st.Size)
	}
}

// TestImproveBaselineCacheStatsNilSafe is the regression gate for the
// nil-cache guard: ImproveBaseline estimators carry no representation
// cache (the wrapped model has no set-module representations), so
// CacheStats must report zeros instead of dereferencing a nil cache —
// and the estimator must otherwise work, including with cache options
// (which it documents as ignored) and coalescing (which it honors).
func TestImproveBaselineCacheStatsNilSafe(t *testing.T) {
	ctx := context.Background()
	sys, _, p, probe := repCacheFixture(t)
	base, err := sys.AnalyzeBaseline()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		est  *CardinalityEstimator
	}{
		{"plain", sys.ImproveBaseline(base, p)},
		{"with-ignored-cache-option", sys.ImproveBaseline(base, p, WithRepCacheSize(64))},
		{"with-coalescing", sys.ImproveBaseline(base, p, WithCoalescing(8, 0))},
	} {
		if st := tc.est.CacheStats(); st != (RepCacheStats{}) {
			t.Errorf("%s: CacheStats = %+v, want zeros", tc.name, st)
		}
		tc.est.InvalidateRepresentations() // must be a no-op, not a panic
		if _, err := tc.est.EstimateCardinality(ctx, probe); err != nil {
			t.Errorf("%s: estimate: %v", tc.name, err)
		}
		if _, err := tc.est.EstimateCardinalityBatch(ctx, []Query{probe}); err != nil {
			t.Errorf("%s: batch: %v", tc.name, err)
		}
		if st := tc.est.CacheStats(); st != (RepCacheStats{}) {
			t.Errorf("%s: post-estimate CacheStats = %+v, want zeros", tc.name, st)
		}
	}
}

// TestNilPoolReturnsErrorNotPanic: a default (cache-on) estimator over a
// nil pool must surface the configuration error, not nil-deref in the
// cache revalidation.
func TestNilPoolReturnsErrorNotPanic(t *testing.T) {
	ctx := context.Background()
	sys, model, _, probe := repCacheFixture(t)
	est := sys.CardinalityEstimator(model, nil)
	if _, err := est.EstimateCardinality(ctx, probe); err == nil {
		t.Fatal("nil pool should error")
	}
	if _, err := est.EstimateCardinalityBatch(ctx, []Query{probe}); err == nil {
		t.Fatal("nil pool batch should error")
	}
}

// TestPoolEvictionInvalidatesRepCache pins the capacity-bounded pool to the
// serving cache's invalidation contract: an LRU eviction bumps the pool
// Version and surgically drops exactly the evicted entry's cached rows
// (the estimator's cache subscribes to the pool), the rest of the resident
// working set stays warm, and cached estimates stay bit-identical to
// uncached ones over the mutated pool.
func TestPoolEvictionInvalidatesRepCache(t *testing.T) {
	ctx := context.Background()
	sys := testSystem(t)
	model, err := sys.TrainContainmentModel(ctx, tinyTrainOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	const capacity = 6
	p := sys.NewQueriesPool(WithPoolCap(capacity))
	record := func(sql string) {
		t.Helper()
		q, err := sys.ParseQuery(sql)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := sys.RecordExecuted(ctx, p, q); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < capacity; i++ {
		record(fmt.Sprintf("SELECT * FROM title WHERE title.production_year > %d", 1900+10*i))
	}

	cached := sys.CardinalityEstimator(model, p)
	uncached := sys.CardinalityEstimator(model, p, WithoutRepCache())
	probe, err := sys.ParseQuery("SELECT * FROM title WHERE title.production_year > 1955")
	if err != nil {
		t.Fatal(err)
	}

	// Warm to steady state: insert, promote, read resident.
	for i := 0; i < 3; i++ {
		if _, err := cached.EstimateCardinality(ctx, probe); err != nil {
			t.Fatal(err)
		}
	}
	warm := cached.CacheStats()
	if warm.Resident == 0 {
		t.Fatalf("resident tier never warmed: %+v", warm)
	}

	// Overflow the pool: the least-recently-matched entry is evicted.
	vBefore := p.Version()
	record("SELECT * FROM title WHERE title.kind_id = 2")
	if p.Len() != capacity {
		t.Fatalf("pool size = %d, want capacity %d", p.Len(), capacity)
	}
	if st := p.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if v := p.Version(); v <= vBefore {
		t.Fatalf("eviction must bump Version: %d -> %d", vBefore, v)
	}

	// The eviction was absorbed surgically: exactly one resident row was
	// dropped (the victim was part of the warmed working set) and the rest
	// of the working set stayed resident — no wholesale flush.
	if st := cached.CacheStats(); st.Resident != warm.Resident-1 {
		t.Fatalf("surgical eviction should drop exactly one resident row: %d -> %d",
			warm.Resident, st.Resident)
	}

	// Post-eviction estimates match the uncached estimator over the mutated
	// pool exactly, and serve from the still-warm cache (no new misses for
	// the surviving working set beyond the freshly recorded entry).
	want, err := uncached.EstimateCardinality(ctx, probe)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cached.EstimateCardinality(ctx, probe)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("post-eviction cached estimate %v != uncached %v", got, want)
	}
	for i := 0; i < 3; i++ {
		if got, err = cached.EstimateCardinality(ctx, probe); err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("warm post-eviction cached estimate %v != uncached %v", got, want)
		}
	}
	st := cached.CacheStats()
	if st.Resident == 0 {
		t.Errorf("resident tier should stay warm across an eviction: %+v", st)
	}
	if st.Misses > warm.Misses+4 {
		t.Errorf("surgical eviction should not re-encode the surviving working set: misses %d -> %d",
			warm.Misses, st.Misses)
	}
}
