package crn

// Facade-level concurrency gates for the high-concurrency serving pipeline:
// EstimateCardinality / EstimateCardinalityBatch / RecordExecuted hammered
// from many goroutines (run under -race in CI), with every concurrent
// answer checked against the sequential answer over the same pool state —
// coalesced, cache-resident and sharded paths must all stay bit-identical
// to a plain per-query estimator.

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"testing"
	"time"
)

// concurrencyFixture builds one trained serving stack with a seeded pool
// and a mixed probe workload the pool covers.
func concurrencyFixture(t *testing.T) (*System, *ContainmentModel, *QueriesPool, []Query) {
	t.Helper()
	ctx := context.Background()
	sys := testSystem(t)
	model, err := sys.TrainContainmentModel(ctx, tinyTrainOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	p := sys.NewQueriesPool()
	if err := sys.SeedPool(ctx, p, 40, 11); err != nil {
		t.Fatal(err)
	}
	probes := make([]Query, 0, 8)
	for _, sql := range []string{
		"SELECT * FROM title WHERE title.production_year > 1960",
		"SELECT * FROM title WHERE title.production_year > 1975",
		"SELECT * FROM title WHERE title.kind_id = 2",
		"SELECT * FROM title WHERE title.kind_id < 5",
		"SELECT * FROM title",
		"SELECT * FROM title WHERE title.production_year < 2000",
		"SELECT * FROM title WHERE title.kind_id > 1",
		"SELECT * FROM title WHERE title.production_year = 1980",
	} {
		q, err := sys.ParseQuery(sql)
		if err != nil {
			t.Fatal(err)
		}
		probes = append(probes, q)
	}
	return sys, model, p, probes
}

// TestCoalescedMatchesUncoalesced pins the coalesced serving path to the
// plain path bit-for-bit, including under concurrency that actually forms
// shared batches.
func TestCoalescedMatchesUncoalesced(t *testing.T) {
	ctx := context.Background()
	sys, model, p, probes := concurrencyFixture(t)

	plain := sys.CardinalityEstimator(model, p)
	coalesced := sys.CardinalityEstimator(model, p, WithCoalescing(16, time.Millisecond))

	want := make([]float64, len(probes))
	for i, q := range probes {
		v, err := plain.EstimateCardinality(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = v
	}

	// Sequential coalesced calls (batches of one).
	for i, q := range probes {
		got, err := coalesced.EstimateCardinality(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want[i] {
			t.Fatalf("sequential coalesced probe %d: %v != %v", i, got, want[i])
		}
	}

	// Concurrent coalesced calls: many goroutines, every answer exact.
	const workers = 16
	const rounds = 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				qi := (w + i) % len(probes)
				got, err := coalesced.EstimateCardinality(ctx, probes[qi])
				if err != nil {
					t.Errorf("worker %d probe %d: %v", w, qi, err)
					return
				}
				if got != want[qi] {
					t.Errorf("worker %d probe %d: coalesced %v != plain %v", w, qi, got, want[qi])
					return
				}
			}
		}(w)
	}
	wg.Wait()

	st := coalesced.CoalescerStats()
	if st.Calls != uint64(len(probes)+workers*rounds) {
		t.Errorf("coalescer saw %d calls, want %d", st.Calls, len(probes)+workers*rounds)
	}
	if st.MaxBatch < 2 {
		t.Errorf("concurrent traffic never shared a batch: %+v", st)
	}
	if ps := plain.CoalescerStats(); ps != (CoalescerStats{}) {
		t.Errorf("plain estimator reports coalescer stats %+v", ps)
	}
}

// TestFacadeConcurrentMixedTraffic is the §5.2 serving scenario as a race
// test: estimates (single, batched, coalesced) and pool-growing
// RecordExecuted calls from many goroutines at once. Afterwards every
// probe's answer must equal a fresh sequential estimate over the final
// pool — no torn cache state, no stale resident tier.
func TestFacadeConcurrentMixedTraffic(t *testing.T) {
	ctx := context.Background()
	sys, model, p, probes := concurrencyFixture(t)

	est := sys.CardinalityEstimator(model, p, WithCoalescing(8, 0))
	plainBatch := probes[:4]

	const workers = 12
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				switch (w + i) % 3 {
				case 0:
					if _, err := est.EstimateCardinality(ctx, probes[(w+i)%len(probes)]); err != nil {
						t.Errorf("estimate: %v", err)
						return
					}
				case 1:
					if _, err := est.EstimateCardinalityBatch(ctx, plainBatch); err != nil {
						t.Errorf("batch: %v", err)
						return
					}
				case 2:
					year := int64(1900 + (w*31+i)%90)
					q, err := sys.ParseQuery("SELECT * FROM title WHERE title.production_year > " +
						strconv.FormatInt(year, 10))
					if err != nil {
						t.Errorf("parse: %v", err)
						return
					}
					if _, _, err := sys.RecordExecuted(ctx, p, q); err != nil {
						t.Errorf("record: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// The pool stopped mutating: concurrent-path answers must now equal a
	// fresh uncached sequential estimator over the final pool.
	fresh := sys.CardinalityEstimator(model, p, WithoutRepCache())
	for i, q := range probes {
		want, err := fresh.EstimateCardinality(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := est.EstimateCardinality(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("probe %d after mixed traffic: %v != fresh %v", i, got, want)
		}
	}
}

// TestSoloErrorSurfacesDirectly pins the facade's solo fast-path error
// handling: an uncontended coalesced request that fails (here: pool miss,
// no fallback) surfaces its typed error once, matchable with errors.Is and
// free of internal wrapper types — and without re-running the estimate,
// which a solo failure makes redundant by construction.
func TestSoloErrorSurfacesDirectly(t *testing.T) {
	ctx := context.Background()
	sys, model, _, _ := concurrencyFixture(t)
	empty := sys.NewQueriesPool()
	est := sys.CardinalityEstimator(model, empty, WithCoalescing(16, 0))
	probe, err := sys.ParseQuery("SELECT * FROM title")
	if err != nil {
		t.Fatal(err)
	}
	_, err = est.EstimateCardinality(ctx, probe)
	if !errors.Is(err, ErrNoPoolMatch) {
		t.Fatalf("solo pool miss = %v, want ErrNoPoolMatch", err)
	}
	if st := est.CoalescerStats(); st.Solo != 1 {
		t.Fatalf("expected exactly one solo execution: %+v", st)
	}
}
