package crn

import (
	"context"
	"fmt"
	"sort"
	"testing"
)

// rebuildPool re-adds every entry of src into a fresh pool built with opts,
// in ascending entry-ID order so the rebuilt pool assigns the same relative
// IDs and candidate-selection tie-breaks coincide with the original.
func rebuildPool(sys *System, src *QueriesPool, opts ...PoolOption) *QueriesPool {
	entries := src.Entries()
	sort.Slice(entries, func(i, j int) bool { return entries[i].ID < entries[j].ID })
	dst := sys.NewQueriesPool(opts...)
	for _, e := range entries {
		dst.Add(e.Q, e.Card)
	}
	return dst
}

// TestIndexedSelectionEquivalence pins the PR 8 acceptance contract at the
// facade: with a binding candidate bound, estimates over the default
// (indexed) pool are bit-identical to estimates over the same entries with
// WithIndexedSelection(false) — the exact PR 4 linear-scan behavior.
func TestIndexedSelectionEquivalence(t *testing.T) {
	ctx := context.Background()
	sys, model, p, probes := topKFixture(t)
	linear := rebuildPool(sys, p, WithIndexedSelection(false))

	indexed := sys.CardinalityEstimator(model, p, WithMaxCandidates(4))
	reference := sys.CardinalityEstimator(model, linear, WithMaxCandidates(4))

	want, err := reference.EstimateCardinalityBatch(ctx, probes)
	if err != nil {
		t.Fatal(err)
	}
	got, err := indexed.EstimateCardinalityBatch(ctx, probes)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("indexed batch[%d] = %v, want %v (must be bit-identical to the linear scan)",
				i, got[i], want[i])
		}
	}
	for i, q := range probes {
		single, err := indexed.EstimateCardinality(ctx, q)
		if err != nil {
			t.Fatalf("single %d: %v", i, err)
		}
		if single != want[i] {
			t.Errorf("indexed single[%d] = %v, want %v", i, single, want[i])
		}
	}
	// Both pools must have used the selection path their configuration
	// promises.
	if st := p.Stats(); st.IndexHits == 0 || st.ScannedFallback != 0 {
		t.Errorf("default pool should serve bounded selection from the index: %+v", st)
	}
	if st := linear.Stats(); st.IndexHits != 0 || st.ScannedIndexed != 0 || st.ScannedFallback == 0 {
		t.Errorf("index-off pool should scan linearly: %+v", st)
	}
}

// TestSharedSelectionUnboundedExact pins the exact half of batch-level
// candidate sharing: with an unbounded scan, probes sharing a FROM clause
// receive the identical candidate set whether or not selection is shared,
// so shared batch estimates are bit-identical to unshared ones — and the
// sharing counters show the reuse actually happened.
func TestSharedSelectionUnboundedExact(t *testing.T) {
	ctx := context.Background()
	sys, model, p, probes := topKFixture(t)

	plain := sys.CardinalityEstimator(model, p)
	shared := sys.CardinalityEstimator(model, p, WithSharedSelection(true))

	want, err := plain.EstimateCardinalityBatch(ctx, probes)
	if err != nil {
		t.Fatal(err)
	}
	got, err := shared.EstimateCardinalityBatch(ctx, probes)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("shared batch[%d] = %v, want %v (unbounded sharing must be exact)", i, got[i], want[i])
		}
	}
	st := shared.SelectionStats()
	if st.Selections != uint64(len(probes)) {
		t.Errorf("selections = %d, want %d", st.Selections, len(probes))
	}
	// Three of the four fixture probes share FROM "title": the first selects,
	// the other two reuse.
	if st.Shared != 2 {
		t.Errorf("shared = %d, want 2 (probes sharing the title clause): %+v", st.Shared, st)
	}
	if ps := plain.SelectionStats(); ps.Shared != 0 {
		t.Errorf("unshared estimator must never share: %+v", ps)
	}
}

// TestSharedSelectionBounded exercises the approximate half: under a
// binding top-K bound, probes sharing a FROM clause AND a signature pattern
// reuse one ranked selection. The first probe of each share bucket must
// still match the unshared estimate exactly, repeats must be deterministic,
// and the stats must count one selection per bucket.
func TestSharedSelectionBounded(t *testing.T) {
	ctx := context.Background()
	sys, model, p, _ := topKFixture(t)

	// Five probes, two signature patterns: year-gt (x4, distinct values) and
	// kind-eq (x1). Bounded sharing buckets the year-gt probes together.
	probes := make([]Query, 0, 5)
	for _, sql := range []string{
		"SELECT * FROM title WHERE title.production_year > 1935",
		"SELECT * FROM title WHERE title.production_year > 1950",
		"SELECT * FROM title WHERE title.kind_id = 2",
		"SELECT * FROM title WHERE title.production_year > 1961",
		"SELECT * FROM title WHERE title.production_year > 1977",
	} {
		q, err := sys.ParseQuery(sql)
		if err != nil {
			t.Fatal(err)
		}
		probes = append(probes, q)
	}

	plain := sys.CardinalityEstimator(model, p, WithMaxCandidates(4))
	shared := sys.CardinalityEstimator(model, p, WithMaxCandidates(4), WithSharedSelection(true))

	want, err := plain.EstimateCardinalityBatch(ctx, probes)
	if err != nil {
		t.Fatal(err)
	}
	got, err := shared.EstimateCardinalityBatch(ctx, probes)
	if err != nil {
		t.Fatal(err)
	}
	// Bucket leaders (first of each pattern) run their own selection and must
	// agree exactly with the unshared estimator.
	for _, i := range []int{0, 2} {
		if got[i] != want[i] {
			t.Errorf("bucket-leader probe %d: shared %v != unshared %v", i, got[i], want[i])
		}
	}
	for i, v := range got {
		if v < 0 {
			t.Errorf("probe %d: negative estimate %v", i, v)
		}
	}
	again, err := shared.EstimateCardinalityBatch(ctx, probes)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != again[i] {
			t.Errorf("shared bounded estimate not deterministic: probe %d %v vs %v", i, got[i], again[i])
		}
	}
	st := shared.SelectionStats()
	if st.Selections != 2*uint64(len(probes)) {
		t.Errorf("selections = %d, want %d", st.Selections, 2*len(probes))
	}
	// Per batch: 5 probes, 2 buckets -> 3 reuses; two batches ran.
	if st.Shared != 6 {
		t.Errorf("shared = %d, want 6: %+v", st.Shared, st)
	}
}

// TestSharedSelectionSingleProbe: sharing must not change the solo path —
// a one-probe batch has nothing to share and takes no share bookkeeping.
func TestSharedSelectionSingleProbe(t *testing.T) {
	ctx := context.Background()
	sys, model, p, probes := topKFixture(t)
	plain := sys.CardinalityEstimator(model, p)
	shared := sys.CardinalityEstimator(model, p, WithSharedSelection(true))
	want, err := plain.EstimateCardinality(ctx, probes[0])
	if err != nil {
		t.Fatal(err)
	}
	got, err := shared.EstimateCardinality(ctx, probes[0])
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("solo shared estimate %v != %v", got, want)
	}
	if st := shared.SelectionStats(); st.Shared != 0 {
		t.Errorf("solo estimate must not share: %+v", st)
	}
}

// TestIndexedSelectionCoexistsWithEviction drives the facade loop the
// serving deployment runs — record, estimate, record — on a bounded
// indexed pool and checks against the same loop over a linear pool.
func TestIndexedSelectionCoexistsWithEviction(t *testing.T) {
	ctx := context.Background()
	sys, model, p, probes := topKFixture(t)
	// Two bounded twins seeded with the fixture pool's entries.
	idxPool := rebuildPool(sys, p, WithPoolCap(30))
	linPool := rebuildPool(sys, p, WithPoolCap(30), WithIndexedSelection(false))

	indexed := sys.CardinalityEstimator(model, idxPool, WithMaxCandidates(4))
	reference := sys.CardinalityEstimator(model, linPool, WithMaxCandidates(4))

	// The cap-30 pools evict the few join-FROM entries; probe only the
	// single-table clauses both pools are guaranteed to retain.
	probes = probes[:3]
	for round := 0; round < 6; round++ {
		q, err := sys.ParseQuery(fmt.Sprintf(
			"SELECT * FROM title WHERE title.production_year > %d AND title.kind_id = %d",
			1900+7*round, round%3))
		if err != nil {
			t.Fatal(err)
		}
		// Same mutation on both pools (Add keeps tick clocks aligned).
		idxPool.Add(q, int64(100+round))
		linPool.Add(q, int64(100+round))
		want, err := reference.EstimateCardinalityBatch(ctx, probes)
		if err != nil {
			t.Fatal(err)
		}
		got, err := indexed.EstimateCardinalityBatch(ctx, probes)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d probe %d: indexed %v != linear %v", round, i, got[i], want[i])
			}
		}
	}
	if st := idxPool.Stats(); st.Evictions == 0 {
		t.Fatalf("bounded fixture never evicted: %+v", st)
	}
}
