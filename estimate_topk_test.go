package crn

import (
	"context"
	"fmt"
	"testing"
)

// topKFixture builds a trained system with a pool dense enough on one FROM
// clause that a small candidate bound actually binds.
func topKFixture(t *testing.T) (*System, *ContainmentModel, *QueriesPool, []Query) {
	t.Helper()
	ctx := context.Background()
	sys := testSystem(t)
	model, err := sys.TrainContainmentModel(ctx, tinyTrainOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	p := sys.NewQueriesPool()
	if err := sys.SeedPool(ctx, p, 40, 11); err != nil {
		t.Fatal(err)
	}
	// Densify the "title" clause so k < candidate count there.
	for i := 0; i < 12; i++ {
		q, err := sys.ParseQuery(fmt.Sprintf(
			"SELECT * FROM title WHERE title.production_year > %d", 1900+5*i))
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := sys.RecordExecuted(ctx, p, q); err != nil {
			t.Fatal(err)
		}
	}
	probes := make([]Query, 0, 4)
	for _, sql := range []string{
		"SELECT * FROM title WHERE title.production_year > 1955",
		"SELECT * FROM title WHERE title.kind_id = 2",
		"SELECT * FROM title WHERE title.production_year > 1930 AND title.kind_id = 1",
		"SELECT * FROM title, cast_info WHERE title.id = cast_info.movie_id",
	} {
		q, err := sys.ParseQuery(sql)
		if err != nil {
			t.Fatal(err)
		}
		probes = append(probes, q)
	}
	return sys, model, p, probes
}

// TestMaxCandidatesEquivalence pins the acceptance contract of bounded
// candidate selection: MaxCandidates = 0 and any K at least the matching
// count produce answers bit-identical to the unbounded estimator, single
// and batched.
func TestMaxCandidatesEquivalence(t *testing.T) {
	ctx := context.Background()
	sys, model, p, probes := topKFixture(t)

	full := sys.CardinalityEstimator(model, p)
	zero := sys.CardinalityEstimator(model, p, WithMaxCandidates(0))
	huge := sys.CardinalityEstimator(model, p, WithMaxCandidates(100000))

	want, err := full.EstimateCardinalityBatch(ctx, probes)
	if err != nil {
		t.Fatal(err)
	}
	for name, est := range map[string]*CardinalityEstimator{"k=0": zero, "k>=pool": huge} {
		got, err := est.EstimateCardinalityBatch(ctx, probes)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s: batch[%d] = %v, want %v (must be bit-identical)", name, i, got[i], want[i])
			}
		}
		for i, q := range probes {
			single, err := est.EstimateCardinality(ctx, q)
			if err != nil {
				t.Fatalf("%s single %d: %v", name, i, err)
			}
			if single != want[i] {
				t.Errorf("%s: single[%d] = %v, want %v", name, i, single, want[i])
			}
		}
	}
	if st := p.Stats(); st.TopKCalls != 0 {
		t.Errorf("non-binding bounds must not run scored selection: %+v", st)
	}
}

// TestMaxCandidatesBounded checks a binding K: estimates succeed, the
// signature index actually truncates, and repeated estimates are
// deterministic.
func TestMaxCandidatesBounded(t *testing.T) {
	ctx := context.Background()
	sys, model, p, probes := topKFixture(t)
	bounded := sys.CardinalityEstimator(model, p, WithMaxCandidates(4))

	first, err := bounded.EstimateCardinalityBatch(ctx, probes)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range first {
		if v < 0 {
			t.Errorf("probe %d: negative estimate %v", i, v)
		}
	}
	st := p.Stats()
	if st.TopKCalls == 0 || st.TruncatedCalls == 0 || st.ScannedCandidates == 0 {
		t.Fatalf("K=4 should bind on the densified clause: %+v", st)
	}
	again, err := bounded.EstimateCardinalityBatch(ctx, probes)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if first[i] != again[i] {
			t.Errorf("bounded estimate not deterministic: probe %d %v vs %v", i, first[i], again[i])
		}
	}

	// The bounded estimator composes with the representation cache: cached
	// and uncached bounded estimates agree exactly.
	uncached := sys.CardinalityEstimator(model, p, WithMaxCandidates(4), WithoutRepCache())
	raw, err := uncached.EstimateCardinalityBatch(ctx, probes)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if first[i] != raw[i] {
			t.Errorf("bounded cached %v != uncached %v at probe %d", first[i], raw[i], i)
		}
	}
}

// TestWithMaxCandidatesZeroOverrides: a later WithMaxCandidates(0) must
// restore the full scan over an earlier bound in a composed option list.
func TestWithMaxCandidatesZeroOverrides(t *testing.T) {
	ctx := context.Background()
	sys, model, p, probes := topKFixture(t)
	full := sys.CardinalityEstimator(model, p)
	restored := sys.CardinalityEstimator(model, p, WithMaxCandidates(2), WithMaxCandidates(0))
	want, err := full.EstimateCardinalityBatch(ctx, probes)
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.EstimateCardinalityBatch(ctx, probes)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("k=0 override did not restore the full scan: probe %d %v != %v", i, got[i], want[i])
		}
	}
}
