// Cardinality estimation with a queries pool — the paper's §5 technique.
//
// The demo trains a containment model, fills a queries pool with previously
// "executed" queries (their true cardinalities recorded, results
// discarded), and then estimates multi-join query cardinalities three ways:
// the PostgreSQL-style profile, the pool-based Cnt2Crd(CRN) estimator, and
// exact execution as ground truth.
//
// Run with:
//
//	go run ./examples/cardinality
package main

import (
	"context"
	"fmt"
	"log"

	"crn"
	"crn/internal/metrics"
)

func main() {
	ctx := context.Background()
	sys, err := crn.OpenSynthetic(ctx, crn.WithTitles(1500))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("training containment model...")
	model, err := sys.TrainContainmentModel(ctx, crn.WithPairs(2500), crn.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}

	// The queries pool: 150 generated queries covering every FROM clause,
	// executed once to record their actual cardinalities (§5.2, §6.2).
	pool := sys.NewQueriesPool()
	if err := sys.SeedPool(ctx, pool, 150, 11); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("queries pool ready: %d executed queries\n\n", pool.Len())

	baseline, err := sys.AnalyzeBaseline()
	if err != nil {
		log.Fatal(err)
	}
	est := sys.CardinalityEstimator(model, pool, crn.WithFallback(baseline))

	// Join-crossing correlated queries: the company block encodes the era,
	// and info values encode era and type, so independence assumptions
	// multiply into severe under-estimates (§1, §6.5).
	queries := []string{
		`SELECT * FROM title WHERE title.production_year > 1984`,
		`SELECT * FROM title, movie_companies
		   WHERE title.id = movie_companies.movie_id
		   AND title.production_year > 1984 AND movie_companies.company_id > 1600`,
		`SELECT * FROM title, movie_companies, movie_info
		   WHERE title.id = movie_companies.movie_id AND title.id = movie_info.movie_id
		   AND title.production_year > 1984 AND movie_companies.company_id > 1600
		   AND movie_info.info_val > 600`,
		`SELECT * FROM cast_info, title, movie_keyword
		   WHERE title.id = cast_info.movie_id AND title.id = movie_keyword.movie_id
		   AND title.kind_id = 5 AND cast_info.person_id > 1200`,
	}

	parsed := make([]crn.Query, len(queries))
	for i, sql := range queries {
		q, err := sys.ParseQuery(sql)
		if err != nil {
			log.Fatal(err)
		}
		parsed[i] = q
	}
	// One batched call estimates the whole workload: the pool pairs of all
	// queries share a single amortized CRN forward pass.
	crnEsts, err := est.EstimateCardinalityBatch(ctx, parsed)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-7s  %10s  %22s  %22s\n", "joins", "actual", "PostgreSQL (q-error)", "Cnt2Crd(CRN) (q-error)")
	for i, q := range parsed {
		truth, err := sys.TrueCardinality(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		pgEst, err := baseline.EstimateCard(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-7d  %10d  %12.0f (%7s)  %12.0f (%7s)\n",
			q.NumJoins(), truth,
			pgEst, metrics.FormatQ(metrics.CardQError(float64(truth), pgEst)),
			crnEsts[i], metrics.FormatQ(metrics.CardQError(float64(truth), crnEsts[i])))
	}
	fmt.Println("\nThe pool anchors every estimate to an executed query's true")
	fmt.Println("cardinality, so errors stay bounded as joins are added (§6.5).")
}
