// Query clustering by containment — one of the practical applications the
// paper's introduction motivates ("containment rates can be used in many
// practical applications, for instance, query clustering, query
// recommendation").
//
// The demo builds a small workload, computes the pairwise containment-rate
// matrix with a trained CRN, converts it to a symmetric similarity
// (max of both directions), and runs single-linkage agglomerative
// clustering. Queries probing the same region of the data end up together
// even when their predicates look different textually.
//
// Run with:
//
//	go run ./examples/clustering
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"crn"
)

func main() {
	ctx := context.Background()
	sys, err := crn.OpenSynthetic(ctx, crn.WithTitles(1500))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training containment model...")
	model, err := sys.TrainContainmentModel(ctx, crn.WithPairs(2500), crn.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}

	// A workload with three latent intents: recent titles, early titles,
	// and series episodes. All share the FROM clause, so containment rates
	// are defined between every pair.
	sqls := []string{
		"SELECT * FROM title WHERE title.production_year > 1990",
		"SELECT * FROM title WHERE title.production_year > 1985 AND title.kind_id = 5",
		"SELECT * FROM title WHERE title.production_year > 1995",
		"SELECT * FROM title WHERE title.production_year < 1915",
		"SELECT * FROM title WHERE title.production_year < 1930 AND title.kind_id = 1",
		"SELECT * FROM title WHERE title.kind_id = 2 AND title.season_nr > 5",
		"SELECT * FROM title WHERE title.kind_id = 2 AND title.episode_nr > 10",
	}
	queries := make([]crn.Query, len(sqls))
	for i, s := range sqls {
		q, err := sys.ParseQuery(s)
		if err != nil {
			log.Fatal(err)
		}
		queries[i] = q
	}

	// Pairwise similarity: sim(i,j) = max(i ⊂% j, j ⊂% i).
	n := len(queries)
	sim := make([][]float64, n)
	for i := range sim {
		sim[i] = make([]float64, n)
		sim[i][i] = 1
	}
	// Both directions of every pair in one batched call: the n queries are
	// encoded once and all n·(n-1) rates come from a single forward pass.
	var pairs [][2]crn.Query
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, [2]crn.Query{queries[i], queries[j]}, [2]crn.Query{queries[j], queries[i]})
		}
	}
	rates, err := model.EstimateContainmentBatch(ctx, pairs)
	if err != nil {
		log.Fatal(err)
	}
	k := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s := rates[k]
			if rates[k+1] > s {
				s = rates[k+1]
			}
			k += 2
			sim[i][j], sim[j][i] = s, s
		}
	}

	fmt.Println("\ncontainment-based similarity matrix:")
	for i := range sim {
		for j := range sim[i] {
			fmt.Printf(" %4.2f", sim[i][j])
		}
		fmt.Printf("   Q%d\n", i)
	}

	clusters := singleLinkage(sim, 0.3)
	fmt.Println("\nclusters (single linkage, similarity >= 0.30):")
	for ci, members := range clusters {
		fmt.Printf("  cluster %d:\n", ci+1)
		for _, m := range members {
			fmt.Printf("    Q%d: %s\n", m, sqls[m])
		}
	}
}

// singleLinkage merges queries into clusters whenever their similarity
// exceeds the threshold, then returns clusters sorted by first member.
func singleLinkage(sim [][]float64, threshold float64) [][]int {
	n := len(sim)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if sim[i][j] >= threshold {
				parent[find(i)] = find(j)
			}
		}
	}
	groups := map[int][]int{}
	for i := 0; i < n; i++ {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	var out [][]int
	for _, g := range groups {
		sort.Ints(g)
		out = append(out, g)
	}
	sort.Slice(out, func(a, b int) bool { return out[a][0] < out[b][0] })
	return out
}
