// Improving an existing cardinality model without changing it — the
// paper's §7 construction: Improved M = Cnt2Crd(Crd2Cnt(M)).
//
// The demo takes the PostgreSQL-style estimator M, converts it to a
// containment-rate model via Crd2Cnt, then back to a cardinality model via
// the queries pool, and compares M against Improved M on a correlated
// multi-join workload.
//
// Run with:
//
//	go run ./examples/improve
package main

import (
	"context"
	"fmt"
	"log"

	"crn"
	"crn/internal/metrics"
)

func main() {
	ctx := context.Background()
	sys, err := crn.OpenSynthetic(ctx, crn.WithTitles(2000))
	if err != nil {
		log.Fatal(err)
	}
	baseline, err := sys.AnalyzeBaseline()
	if err != nil {
		log.Fatal(err)
	}

	// No neural network anywhere in this example: the pool plus the two
	// transformations upgrade the classical estimator by themselves.
	pool := sys.NewQueriesPool()
	if err := sys.SeedPool(ctx, pool, 150, 13); err != nil {
		log.Fatal(err)
	}
	improved := sys.ImproveBaseline(baseline, pool)

	// Multi-join queries whose predicates align with the planted
	// correlations: independence-based estimates are biased the same way
	// for Qnew and the pooled Qold, so the bias cancels in the containment
	// ratio x/y — the mechanism behind the §7 improvement.
	queries := []string{
		`SELECT * FROM title, movie_companies, movie_info
		   WHERE title.id = movie_companies.movie_id AND title.id = movie_info.movie_id
		   AND title.production_year > 1984 AND movie_companies.company_id > 1600
		   AND movie_info.info_val > 600`,
		`SELECT * FROM cast_info, movie_info_idx, title
		   WHERE title.id = cast_info.movie_id AND title.id = movie_info_idx.movie_id
		   AND title.kind_id = 5 AND cast_info.person_id > 1200
		   AND movie_info_idx.info_val > 40`,
		`SELECT * FROM movie_companies, movie_info, movie_keyword, title
		   WHERE title.id = movie_companies.movie_id AND title.id = movie_info.movie_id
		   AND title.id = movie_keyword.movie_id
		   AND title.production_year > 1984 AND movie_companies.company_id > 1600`,
		`SELECT * FROM cast_info, movie_info, title
		   WHERE title.id = cast_info.movie_id AND title.id = movie_info.movie_id
		   AND title.production_year < 1930 AND movie_info.info_val < 300
		   AND cast_info.role_id < 4`,
		`SELECT * FROM movie_info, movie_info_idx, title
		   WHERE title.id = movie_info.movie_id AND title.id = movie_info_idx.movie_id
		   AND title.kind_id = 5 AND movie_info.info_val > 600
		   AND movie_info_idx.info_val > 40`,
	}

	var pgErrs, impErrs []float64
	fmt.Printf("%-7s %10s %24s %24s\n", "joins", "actual", "PostgreSQL (q-error)", "Improved PG (q-error)")
	for _, sql := range queries {
		q, err := sys.ParseQuery(sql)
		if err != nil {
			log.Fatal(err)
		}
		truth, err := sys.TrueCardinality(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		pgEst, err := baseline.EstimateCard(q)
		if err != nil {
			log.Fatal(err)
		}
		impEst, err := improved.EstimateCardinality(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		pgQ := metrics.CardQError(float64(truth), pgEst)
		impQ := metrics.CardQError(float64(truth), impEst)
		pgErrs = append(pgErrs, pgQ)
		impErrs = append(impErrs, impQ)
		fmt.Printf("%-7d %10d %14.0f (%7s) %14.0f (%7s)\n",
			q.NumJoins(), truth, pgEst, metrics.FormatQ(pgQ), impEst, metrics.FormatQ(impQ))
	}
	fmt.Printf("\nmean q-error: PostgreSQL %s, Improved PostgreSQL %s\n",
		metrics.FormatQ(metrics.Mean(pgErrs)), metrics.FormatQ(metrics.Mean(impErrs)))
	fmt.Println("The base model is embedded unchanged; only the estimation")
	fmt.Println("path around it differs (paper §7.1). Workload-level results —")
	fmt.Println("including the much larger Improved-MSCN gain — are Tables 11-12")
	fmt.Println("of `go run ./cmd/repro` (see EXPERIMENTS.md).")
}
