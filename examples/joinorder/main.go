// Join ordering — the application that motivates the paper: "a traditional
// query optimizer is crucially dependent on cardinality estimation, which
// enables choosing among different plan alternatives" (§5).
//
// The demo optimizes multi-join queries twice — once with the
// PostgreSQL-style estimates, once with exact cardinalities — and scores
// both chosen join orders by their true C_out cost (the total number of
// intermediate rows a pipeline materializes). Misestimates translate
// directly into more expensive plans.
//
// Run with:
//
//	go run ./examples/joinorder
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"crn"
	"crn/internal/contain"
	"crn/internal/exec"
)

func main() {
	ctx := context.Background()
	sys, err := crn.OpenSynthetic(ctx, crn.WithTitles(3000))
	if err != nil {
		log.Fatal(err)
	}
	pgEst, err := sys.AnalyzeBaseline()
	if err != nil {
		log.Fatal(err)
	}
	// The exact executor as an oracle estimator: the best possible planner.
	ex, err := exec.New(sys.DB())
	if err != nil {
		log.Fatal(err)
	}
	oracle := contain.TruthCard{T: ex}

	queries := []string{
		// Correlated filters: the era-blocked companies and era-coded info
		// values make the true intermediate sizes diverge from the
		// independence-based estimates.
		`SELECT * FROM title, movie_companies, movie_info, cast_info
		   WHERE title.id = movie_companies.movie_id AND title.id = movie_info.movie_id
		   AND title.id = cast_info.movie_id
		   AND title.production_year > 1984 AND movie_companies.company_id > 1600
		   AND movie_info.info_val > 600`,
		`SELECT * FROM title, cast_info, movie_keyword, movie_info_idx
		   WHERE title.id = cast_info.movie_id AND title.id = movie_keyword.movie_id
		   AND title.id = movie_info_idx.movie_id
		   AND title.kind_id = 5 AND cast_info.person_id > 1200
		   AND movie_info_idx.info_val > 40`,
	}
	for i, sql := range queries {
		q, err := sys.ParseQuery(sql)
		if err != nil {
			log.Fatal(err)
		}
		pgOrder, _, err := sys.OptimizeJoinOrder(pgEst, q)
		if err != nil {
			log.Fatal(err)
		}
		bestOrder, _, err := sys.OptimizeJoinOrder(oracle, q)
		if err != nil {
			log.Fatal(err)
		}
		pgCost, err := sys.TrueJoinCost(q, pgOrder)
		if err != nil {
			log.Fatal(err)
		}
		bestCost, err := sys.TrueJoinCost(q, bestOrder)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query %d (%d joins)\n", i+1, q.NumJoins())
		fmt.Printf("  PostgreSQL-estimate plan: %-55s true cost %10.0f\n",
			strings.Join(pgOrder, " ⋈ "), pgCost)
		fmt.Printf("  true-cardinality plan:    %-55s true cost %10.0f\n",
			strings.Join(bestOrder, " ⋈ "), bestCost)
		if bestCost > 0 {
			fmt.Printf("  plan cost penalty from misestimation: %.2fx\n\n", pgCost/bestCost)
		}
	}
	fmt.Println("Cardinality quality decides plan quality — the reason the paper")
	fmt.Println("attacks multi-join estimation (run `go run ./cmd/repro -exp planquality`")
	fmt.Println("for the full per-estimator comparison).")
}
