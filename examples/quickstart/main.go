// Quickstart: open a synthetic IMDb-like database, train a containment-rate
// model (CRN), and compare its estimates against exact execution.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"crn"
)

func main() {
	ctx := context.Background()
	// A small database keeps the example fast; see cmd/repro for the
	// paper-scale pipeline.
	sys, err := crn.OpenSynthetic(ctx, crn.WithTitles(1500))
	if err != nil {
		log.Fatal(err)
	}

	q1, err := sys.ParseQuery(
		"SELECT * FROM title WHERE title.production_year > 1990")
	if err != nil {
		log.Fatal(err)
	}
	q2, err := sys.ParseQuery(
		"SELECT * FROM title WHERE title.production_year > 1975")
	if err != nil {
		log.Fatal(err)
	}

	// Ground truth by exact execution: q1's extra predicates make it a
	// subset of q2, so q1 is 100%-contained in q2.
	truth, err := sys.TrueContainment(ctx, q1, q2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("true containment  Q1 ⊂%% Q2: %6.2f%%\n", truth*100)

	// Train a CRN on generated query pairs labeled by execution (§3 of the
	// paper). A couple of thousand pairs train in seconds at this scale.
	fmt.Println("training containment model...")
	model, err := sys.TrainContainmentModel(ctx,
		crn.WithPairs(4000),
		crn.WithSeed(7),
		crn.WithProgress(func(epoch int, valQ float64) {
			if epoch%10 == 0 {
				fmt.Printf("  epoch %3d: validation mean q-error %.2f\n", epoch, valQ)
			}
		}),
	)
	if err != nil {
		log.Fatal(err)
	}

	est, err := model.EstimateContainment(ctx, q1, q2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CRN estimate      Q1 ⊂%% Q2: %6.2f%%\n", est*100)

	rev, err := model.EstimateContainment(ctx, q2, q1)
	if err != nil {
		log.Fatal(err)
	}
	revTruth, err := sys.TrueContainment(ctx, q2, q1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("true containment  Q2 ⊂%% Q1: %6.2f%%\n", revTruth*100)
	fmt.Printf("CRN estimate      Q2 ⊂%% Q1: %6.2f%%\n", rev*100)

	// Models serialize to a few hundred kilobytes (§3.5.3).
	blob, err := model.Save()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serialized model: %d bytes\n", len(blob))
	fmt.Println()
	fmt.Println("Note: this demo trains for seconds on a toy database; estimates are")
	fmt.Println("rough. The evaluation-grade pipeline (20k pairs, 12k-title database)")
	fmt.Println("lives behind `go run ./cmd/repro -scale small` — see EXPERIMENTS.md.")
}
