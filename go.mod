module crn

go 1.24
