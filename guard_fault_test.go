package crn

// The fault-matrix suite: every operational failure mode the hardening
// layer claims to contain, driven through the public facade with the
// failpoint registry. Each test stages one fault — disk full mid-WAL-append,
// checkpoint publication failure, an estimate-path error storm, overload
// beyond the admission ceiling, a panicking retrain cycle — and asserts the
// deployment's contract: serving keeps answering, durability degrades and
// re-upgrades instead of rejecting feedback, and recovery is observable in
// the stats surfaces health endpoints read.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"crn/internal/guard/failpoint"
)

// guardFixture is adaptFixture plus the classical fallback — the serving
// shape the guards assume (a breaker without a fallback has nowhere to
// divert).
func guardFixture(t *testing.T) (*System, *ContainmentModel, *QueriesPool, BaselineEstimator) {
	t.Helper()
	sys, model, p := adaptFixture(t)
	base, err := sys.AnalyzeBaseline()
	if err != nil {
		t.Fatal(err)
	}
	return sys, model, p, base
}

// waitFor polls cond until it holds or the deadline lapses.
func waitFor(t *testing.T, d time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(10 * time.Millisecond)
	}
	return cond()
}

// TestWALOutageDegradesAndRecovers stages ENOSPC at the WAL append: feedback
// must keep being accepted (staged in memory, durability_degraded set), and
// once the disk recovers the re-probe loop must re-journal the staged
// records, write a catch-up checkpoint, and clear the flag — after which a
// restart recovers every record, including those accepted during the outage.
func TestWALOutageDegradesAndRecovers(t *testing.T) {
	t.Cleanup(failpoint.DisableAll)
	sys, model, p := adaptFixture(t)
	ctx := context.Background()
	dir := t.TempDir()
	ae, err := sys.OpenAdaptiveEstimator(model, p,
		WithRetrainInterval(-1), WithDataDir(dir), WithWALSync("always"))
	if err != nil {
		t.Fatal(err)
	}
	closed := false
	t.Cleanup(func() {
		if !closed {
			ae.Close()
		}
	})

	// Healthy append first: the WAL works, nothing is degraded.
	if ok, err := ae.RecordFeedback(ctx, "SELECT * FROM title WHERE title.production_year > 1961", 40); err != nil || !ok {
		t.Fatalf("healthy feedback: accepted=%v err=%v", ok, err)
	}
	if ds := ae.DurabilityStats(); ds.Degraded {
		t.Fatalf("degraded before any fault: %+v", ds)
	}

	// Disk full: the append fails, but feedback is NOT rejected — it stages
	// in memory and the deployment flags degraded durability.
	failpoint.EnableError(failpoint.WALAppend, errors.New("no space left on device"))
	if ok, err := ae.RecordFeedback(ctx, "SELECT * FROM title WHERE title.production_year > 1987", 11); err != nil || !ok {
		t.Fatalf("feedback during WAL outage: accepted=%v err=%v (must degrade, not reject)", ok, err)
	}
	ds := ae.DurabilityStats()
	if !ds.Degraded {
		t.Fatalf("durability_degraded not set during outage: %+v", ds)
	}
	if got := ae.StagedFeedback(); got != 2 {
		t.Fatalf("staged = %d, want 2 (outage record staged in memory)", got)
	}

	// Disk recovers: the re-probe loop re-journals, checkpoints, and clears
	// the flag without any caller involvement.
	failpoint.Disable(failpoint.WALAppend)
	// The flag clears when the records are re-journaled; the catch-up
	// checkpoint lands just after — wait for both.
	if !waitFor(t, 10*time.Second, func() bool {
		ds := ae.DurabilityStats()
		return !ds.Degraded && ds.ReupgradeCheckpoints >= 1
	}) {
		t.Fatalf("durability never re-upgraded: %+v", ae.DurabilityStats())
	}
	if ds = ae.DurabilityStats(); ds.Reupgrades < 1 {
		t.Fatalf("re-upgrade not recorded: %+v", ds)
	}

	// Restart: both records — the journaled one and the one accepted during
	// the outage — come back.
	ae.Close()
	closed = true
	ae2, err := sys.OpenAdaptiveEstimator(model, sys.NewQueriesPool(),
		WithRetrainInterval(-1), WithDataDir(dir), WithWALSync("always"))
	if err != nil {
		t.Fatal(err)
	}
	defer ae2.Close()
	if got := ae2.StagedFeedback(); got != 2 {
		t.Errorf("recovered staged = %d, want 2 (no feedback lost across the outage)", got)
	}
}

// TestCheckpointRenameFailureIsContained fails the atomic publication step
// of a checkpoint: the promotion must still land (serving switches to the
// new generation), the failure must only be counted, and the next healthy
// checkpoint must publish.
func TestCheckpointRenameFailureIsContained(t *testing.T) {
	t.Cleanup(failpoint.DisableAll)
	sys, model, p := adaptFixture(t)
	ctx := context.Background()
	dir := t.TempDir()
	ae, err := sys.OpenAdaptiveEstimator(model, p,
		WithRetrainInterval(-1), WithRetrainEpochs(1),
		WithFeedbackPairs(2), WithPromoteTolerance(10),
		WithDataDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer ae.Close()
	probe, err := sys.ParseQuery("SELECT * FROM title WHERE title.production_year > 1950")
	if err != nil {
		t.Fatal(err)
	}

	feed := func(sql string, card int64) {
		t.Helper()
		if ok, err := ae.RecordFeedback(ctx, sql, card); err != nil || !ok {
			t.Fatalf("feedback %q: accepted=%v err=%v", sql, ok, err)
		}
	}
	feed("SELECT * FROM title WHERE title.production_year > 1961", 40)
	feed("SELECT * FROM title WHERE title.production_year > 1987", 11)

	failpoint.EnableError(failpoint.CheckpointRename, errors.New("rename: read-only file system"))
	promoted, err := ae.Retrain(ctx)
	if err != nil {
		t.Fatalf("retrain with failing checkpoint: %v (checkpoint failure must not fail the cycle)", err)
	}
	if !promoted {
		t.Fatalf("retrain did not promote: %+v", ae.AdaptationStats())
	}
	if got := ae.DurabilityStats().CheckpointErrors; got < 1 {
		t.Fatalf("checkpoint_errors = %d, want >= 1", got)
	}
	if HasCheckpoint(dir) {
		t.Fatal("failed rename must not publish a checkpoint")
	}
	// Serving continues on the promoted generation.
	if _, err := ae.EstimateCardinality(ctx, probe); err != nil {
		t.Fatalf("estimate after failed checkpoint: %v", err)
	}

	// The disk heals: the next promotion checkpoints normally.
	failpoint.Disable(failpoint.CheckpointRename)
	errsBefore := ae.DurabilityStats().CheckpointErrors
	feed("SELECT * FROM title WHERE title.production_year > 1971", 30)
	feed("SELECT * FROM title WHERE title.production_year > 1993", 7)
	if promoted, err := ae.Retrain(ctx); err != nil || !promoted {
		t.Fatalf("healthy retrain: promoted=%v err=%v", promoted, err)
	}
	if !HasCheckpoint(dir) {
		t.Fatal("healthy promotion did not publish a checkpoint")
	}
	if got := ae.DurabilityStats().CheckpointErrors; got != errsBefore {
		t.Errorf("checkpoint_errors moved on the healthy cycle: %d -> %d", errsBefore, got)
	}
}

// TestBreakerDivertsErrorStormToFallback storms the learned estimate path
// with injected errors: every caller must still get an answer (the fallback
// absorbs countable failures), the breaker must trip and divert, and after
// the storm half-open probing must close it again.
func TestBreakerDivertsErrorStormToFallback(t *testing.T) {
	t.Cleanup(failpoint.DisableAll)
	sys, model, p, base := guardFixture(t)
	ctx := context.Background()
	est := sys.CardinalityEstimator(model, p,
		WithFallback(base),
		WithBreaker(BreakerConfig{
			Window: 16, MinSamples: 4, ErrorRate: 0.5,
			Cooldown: 50 * time.Millisecond, ProbeQuota: 2,
		}))
	probe, err := sys.ParseQuery("SELECT * FROM title WHERE title.production_year > 1950")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := est.EstimateCardinality(ctx, probe); err != nil {
		t.Fatalf("healthy estimate: %v", err)
	}

	failpoint.EnableError(failpoint.EstimateCards, errors.New("injected estimate-path failure"))
	for i := 0; i < 8; i++ {
		if _, err := est.EstimateCardinality(ctx, probe); err != nil {
			t.Fatalf("estimate %d during storm: %v (fallback must absorb the failure)", i, err)
		}
	}
	if !est.BreakerOpen() {
		t.Fatalf("breaker never tripped: %+v", est.GuardStats().Breaker)
	}
	bs := est.GuardStats().Breaker
	if bs.Trips < 1 {
		t.Fatalf("trips = %d, want >= 1", bs.Trips)
	}
	// While open, requests divert straight to the fallback — no primary
	// attempts, still no errors.
	for i := 0; i < 3; i++ {
		if _, err := est.EstimateCardinality(ctx, probe); err != nil {
			t.Fatalf("diverted estimate %d: %v", i, err)
		}
	}
	if got := est.GuardStats().Breaker.Diverted; got < 3 {
		t.Errorf("diverted = %d, want >= 3", got)
	}

	// Storm over: after the cooldown, half-open probes find the primary
	// healthy and close the breaker.
	failpoint.Disable(failpoint.EstimateCards)
	time.Sleep(60 * time.Millisecond)
	for i := 0; i < 4; i++ {
		if _, err := est.EstimateCardinality(ctx, probe); err != nil {
			t.Fatalf("recovery estimate %d: %v", i, err)
		}
	}
	if est.BreakerOpen() {
		t.Fatalf("breaker never closed after recovery: %+v", est.GuardStats().Breaker)
	}
	if got := est.GuardStats().Breaker.Closes; got < 1 {
		t.Errorf("closes = %d, want >= 1", got)
	}
}

// TestOverloadShedsBeyondInflightCeiling floods a gated estimator with 10x
// its admission ceiling: the overflow must shed with ErrOverloaded (never
// queue, never crash), admitted work must succeed, and the gate counters
// must account for every request.
func TestOverloadShedsBeyondInflightCeiling(t *testing.T) {
	t.Cleanup(failpoint.DisableAll)
	sys, model, p, base := guardFixture(t)
	ctx := context.Background()
	const ceiling = 2
	est := sys.CardinalityEstimator(model, p,
		WithFallback(base), WithMaxInflight(ceiling))
	probe, err := sys.ParseQuery("SELECT * FROM title WHERE title.production_year > 1950")
	if err != nil {
		t.Fatal(err)
	}
	// Slow the estimate path so concurrent requests genuinely overlap.
	failpoint.Enable(failpoint.EstimateCards, func() error {
		time.Sleep(5 * time.Millisecond)
		return nil
	})

	const workers = ceiling * 10
	const perWorker = 3
	var served, shed int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < perWorker; i++ {
				_, err := est.EstimateCardinality(ctx, probe)
				mu.Lock()
				switch {
				case err == nil:
					served++
				case errors.Is(err, ErrOverloaded):
					shed++
				default:
					t.Errorf("unexpected error under overload: %v", err)
				}
				mu.Unlock()
			}
		}()
	}
	close(start)
	wg.Wait()

	if shed == 0 {
		t.Fatalf("no requests shed at %dx the ceiling (served=%d)", workers/ceiling, served)
	}
	if served == 0 {
		t.Fatal("overload shed everything; admitted requests must still be served")
	}
	gs := est.GuardStats().Gate
	if gs.PeakInflight > ceiling {
		t.Errorf("peak inflight %d exceeded ceiling %d", gs.PeakInflight, ceiling)
	}
	if total := gs.Admitted + gs.Shed; total != workers*perWorker {
		t.Errorf("admitted+shed = %d, want %d (every request accounted)", total, workers*perWorker)
	}
	if int64(gs.Shed) != shed {
		t.Errorf("gate shed counter %d != observed %d", gs.Shed, shed)
	}
}

// TestTrainerPanicKeepsServingBitIdentical crashes a retrain cycle with an
// injected panic: the panic must be contained (counted, returned as an
// error), the serving path must answer bit-identically to before the crash
// (no partial promotion, no pool mutation), and the trainer must retrain
// fine once the fault clears.
func TestTrainerPanicKeepsServingBitIdentical(t *testing.T) {
	t.Cleanup(failpoint.DisableAll)
	sys, model, p := adaptFixture(t)
	ctx := context.Background()
	ae := sys.AdaptiveEstimator(model, p,
		WithRetrainInterval(-1), WithRetrainEpochs(1),
		WithFeedbackPairs(2), WithPromoteTolerance(10))
	defer ae.Close()
	probe, err := sys.ParseQuery("SELECT * FROM title WHERE title.production_year > 1950")
	if err != nil {
		t.Fatal(err)
	}
	before, err := ae.EstimateCardinality(ctx, probe)
	if err != nil {
		t.Fatal(err)
	}
	for _, sql := range []string{
		"SELECT * FROM title WHERE title.production_year > 1961",
		"SELECT * FROM title WHERE title.production_year > 1987",
	} {
		if ok, err := ae.RecordFeedback(ctx, sql, 25); err != nil || !ok {
			t.Fatalf("feedback: accepted=%v err=%v", ok, err)
		}
	}

	failpoint.Enable(failpoint.TrainerRetrain, func() error {
		panic("injected trainer crash")
	})
	promoted, err := ae.Retrain(ctx)
	if promoted || err == nil {
		t.Fatalf("panicked retrain: promoted=%v err=%v, want contained error", promoted, err)
	}
	if got := ae.AdaptationStats().Trainer.Panics; got != 1 {
		t.Errorf("trainer panics = %d, want 1", got)
	}
	if gen := ae.ModelGeneration(); gen != 1 {
		t.Errorf("generation = %d after crashed cycle, want 1 (no partial promotion)", gen)
	}
	after, err := ae.EstimateCardinality(ctx, probe)
	if err != nil {
		t.Fatalf("estimate after trainer crash: %v", err)
	}
	if before != after {
		t.Errorf("serving changed across a crashed retrain: %v -> %v (must be bit-identical)", before, after)
	}

	// Fault cleared: the next cycle retrains and promotes normally.
	failpoint.Disable(failpoint.TrainerRetrain)
	for _, sql := range []string{
		"SELECT * FROM title WHERE title.production_year > 1971",
		"SELECT * FROM title WHERE title.production_year > 1993",
	} {
		if ok, err := ae.RecordFeedback(ctx, sql, 12); err != nil || !ok {
			t.Fatalf("post-crash feedback: accepted=%v err=%v", ok, err)
		}
	}
	if promoted, err := ae.Retrain(ctx); err != nil || !promoted {
		t.Fatalf("post-crash retrain: promoted=%v err=%v (trainer must survive the panic)", promoted, err)
	}
}
