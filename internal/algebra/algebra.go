// Package algebra implements the paper's §9 extensions: estimating
// cardinalities and containment rates of compound queries — OR, EXCEPT and
// UNION over conjunctive queries with identical FROM clauses — on top of
// any base cardinality estimator, via inclusion-exclusion:
//
//	|Q1 OR Q2|     = |Q1| + |Q2| − |Q1∩Q2|
//	|Q1 EXCEPT Q2| = |Q1| − |Q1∩Q2|
//	|Q1 UNION Q2|  = |Q1| + |Q2|            (bag append, paper §9)
//
// Compound expressions are expanded into signed sums of conjunctive
// intersection terms (the indicator algebra 1_or = 1_a + 1_b − 1_a·1_b,
// 1_except = 1_a·(1−1_b)), so arbitrary nesting of OR and EXCEPT reduces to
// base-estimator calls on ordinary conjunctive queries. The result of a
// conjunctive SELECT * query is a set of base-row combinations, so set
// semantics is exact; with an exact base estimator the expansion is exact.
package algebra

import (
	"fmt"

	"crn/internal/contain"
	"crn/internal/query"
)

// Expr is a compound query expression over conjunctive leaves.
type Expr interface {
	// FROMKey returns the shared FROM clause of all leaves, or an error if
	// leaves disagree (compound set operations need union-compatible
	// operands; for SELECT * queries that means identical FROM clauses).
	FROMKey() (string, error)
}

// Leaf wraps a conjunctive query.
type Leaf struct{ Q query.Query }

// Or is the set union of two expressions' results (the paper's OR
// operator: duplicates collapse because result rows are identified by
// base-row combinations).
type Or struct{ L, R Expr }

// And is the set intersection of two expressions' results.
type And struct{ L, R Expr }

// Except is the set difference L \ R (the paper's EXCEPT operator).
type Except struct{ L, R Expr }

// Union is the bag append of two results: |L| + |R| regardless of overlap
// (the paper's UNION reading). It may only appear at the top level of a
// cardinality computation, since bags have no indicator algebra.
type Union struct{ L, R Expr }

// FROMKey implements Expr.
func (l Leaf) FROMKey() (string, error) { return l.Q.FROMKey(), nil }

// FROMKey implements Expr.
func (o Or) FROMKey() (string, error) { return sharedFrom(o.L, o.R) }

// FROMKey implements Expr.
func (a And) FROMKey() (string, error) { return sharedFrom(a.L, a.R) }

// FROMKey implements Expr.
func (e Except) FROMKey() (string, error) { return sharedFrom(e.L, e.R) }

// FROMKey implements Expr.
func (u Union) FROMKey() (string, error) { return sharedFrom(u.L, u.R) }

func sharedFrom(l, r Expr) (string, error) {
	fl, err := l.FROMKey()
	if err != nil {
		return "", err
	}
	fr, err := r.FROMKey()
	if err != nil {
		return "", err
	}
	if fl != fr {
		return "", fmt.Errorf("algebra: FROM clauses differ (%q vs %q)", fl, fr)
	}
	return fl, nil
}

// term is one signed conjunctive intersection in the expansion.
type term struct {
	sign    int
	queries []query.Query // to be intersected
}

// expand rewrites an expression into signed conjunctive terms. Union is
// rejected here; Cardinality handles it at the top level.
func expand(e Expr) ([]term, error) {
	switch v := e.(type) {
	case Leaf:
		return []term{{sign: 1, queries: []query.Query{v.Q}}}, nil
	case Or:
		if _, err := v.FROMKey(); err != nil {
			return nil, err
		}
		l, err := expand(v.L)
		if err != nil {
			return nil, err
		}
		r, err := expand(v.R)
		if err != nil {
			return nil, err
		}
		// 1_or = 1_l + 1_r - 1_l·1_r
		out := append(append([]term{}, l...), r...)
		prod, err := crossTerms(l, r)
		if err != nil {
			return nil, err
		}
		for _, t := range prod {
			t.sign = -t.sign
			out = append(out, t)
		}
		return out, nil
	case And:
		if _, err := v.FROMKey(); err != nil {
			return nil, err
		}
		l, err := expand(v.L)
		if err != nil {
			return nil, err
		}
		r, err := expand(v.R)
		if err != nil {
			return nil, err
		}
		return crossTerms(l, r)
	case Except:
		if _, err := v.FROMKey(); err != nil {
			return nil, err
		}
		l, err := expand(v.L)
		if err != nil {
			return nil, err
		}
		// 1_except = 1_l - 1_l·1_r
		prod, err := expand(And{v.L, v.R})
		if err != nil {
			return nil, err
		}
		out := append([]term{}, l...)
		for _, t := range prod {
			t.sign = -t.sign
			out = append(out, t)
		}
		return out, nil
	case Union:
		return nil, fmt.Errorf("algebra: UNION is bag-semantic and only allowed at the top level")
	}
	return nil, fmt.Errorf("algebra: unknown expression type %T", e)
}

// crossTerms multiplies two signed sums of indicators.
func crossTerms(l, r []term) ([]term, error) {
	var out []term
	for _, a := range l {
		for _, b := range r {
			qs := append(append([]query.Query{}, a.queries...), b.queries...)
			out = append(out, term{sign: a.sign * b.sign, queries: qs})
		}
	}
	return out, nil
}

// intersectAll folds a term's queries into one conjunctive query.
func intersectAll(qs []query.Query) (query.Query, error) {
	out := qs[0]
	for _, q := range qs[1:] {
		var err error
		out, err = out.Intersect(q)
		if err != nil {
			return query.Query{}, err
		}
	}
	return out, nil
}

// Cardinality estimates |e| using the base estimator. Union nodes are
// handled top-down as plain sums; OR/EXCEPT/AND expand by
// inclusion-exclusion. Negative totals (possible with inexact estimators)
// clamp to zero.
func Cardinality(est contain.CardEstimator, e Expr) (float64, error) {
	if u, ok := e.(Union); ok {
		l, err := Cardinality(est, u.L)
		if err != nil {
			return 0, err
		}
		r, err := Cardinality(est, u.R)
		if err != nil {
			return 0, err
		}
		return l + r, nil
	}
	terms, err := expand(e)
	if err != nil {
		return 0, err
	}
	var total float64
	for _, t := range terms {
		q, err := intersectAll(t.queries)
		if err != nil {
			return 0, err
		}
		c, err := est.EstimateCard(q)
		if err != nil {
			return 0, err
		}
		total += float64(t.sign) * c
	}
	if total < 0 {
		total = 0
	}
	return total, nil
}

// ContainmentRate estimates e1 ⊂% e2 = |e1 ∩ e2| / |e1| for compound
// expressions with a shared FROM clause (0 when |e1| is 0, matching §2).
// Union operands are not supported (bag containment is not defined by the
// paper); use Or for set union.
func ContainmentRate(est contain.CardEstimator, e1, e2 Expr) (float64, error) {
	if _, err := sharedFrom(e1, e2); err != nil {
		return 0, err
	}
	c1, err := Cardinality(est, e1)
	if err != nil {
		return 0, err
	}
	if c1 <= 0 {
		return 0, nil
	}
	ci, err := Cardinality(est, And{e1, e2})
	if err != nil {
		return 0, err
	}
	rate := ci / c1
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	return rate, nil
}

// NumTerms reports how many base-estimator calls Cardinality(e) will make;
// useful to bound the blow-up of deeply nested expressions.
func NumTerms(e Expr) (int, error) {
	if u, ok := e.(Union); ok {
		l, err := NumTerms(u.L)
		if err != nil {
			return 0, err
		}
		r, err := NumTerms(u.R)
		if err != nil {
			return 0, err
		}
		return l + r, nil
	}
	terms, err := expand(e)
	if err != nil {
		return 0, err
	}
	return len(terms), nil
}
