package algebra

import (
	"math"
	"math/rand"
	"testing"

	"crn/internal/contain"
	"crn/internal/datagen"
	"crn/internal/db"
	"crn/internal/exec"
	"crn/internal/query"
	"crn/internal/schema"
	"crn/internal/sqlparse"
)

var s = schema.IMDB()

func fixture(t *testing.T) (*db.Database, contain.CardEstimator) {
	t.Helper()
	cfg := datagen.DefaultConfig()
	cfg.Titles = 300
	d, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := exec.New(d)
	if err != nil {
		t.Fatal(err)
	}
	return d, contain.TruthCard{T: ex}
}

// maskEval evaluates a single-table expression by direct row filtering —
// an oracle independent of the inclusion-exclusion expansion.
func maskEval(d *db.Database, e Expr) []bool {
	switch v := e.(type) {
	case Leaf:
		tab := d.Table(v.Q.Tables[0])
		mask := make([]bool, tab.NumRows())
		for i := range mask {
			mask[i] = true
		}
		for _, p := range v.Q.Preds {
			col := tab.Column(p.Col.Column)
			for i := range mask {
				if mask[i] && !p.Matches(col[i]) {
					mask[i] = false
				}
			}
		}
		return mask
	case Or:
		l, r := maskEval(d, v.L), maskEval(d, v.R)
		out := make([]bool, len(l))
		for i := range out {
			out[i] = l[i] || r[i]
		}
		return out
	case And:
		l, r := maskEval(d, v.L), maskEval(d, v.R)
		out := make([]bool, len(l))
		for i := range out {
			out[i] = l[i] && r[i]
		}
		return out
	case Except:
		l, r := maskEval(d, v.L), maskEval(d, v.R)
		out := make([]bool, len(l))
		for i := range out {
			out[i] = l[i] && !r[i]
		}
		return out
	}
	panic("maskEval: unsupported")
}

func countMask(m []bool) float64 {
	var n float64
	for _, ok := range m {
		if ok {
			n++
		}
	}
	return n
}

func leafQ(t *testing.T, sql string) Leaf {
	t.Helper()
	return Leaf{Q: sqlparse.MustParse(s, sql)}
}

func randomLeaf(t *testing.T, rng *rand.Rand, d *db.Database) Leaf {
	t.Helper()
	td, _ := s.Table(schema.Title)
	nonKey := td.NonKeyColumns()
	var preds []query.Predicate
	n := rng.Intn(3)
	for i := 0; i < n; i++ {
		col := nonKey[rng.Intn(len(nonKey))]
		vals := d.Table(schema.Title).Column(col.Name)
		preds = append(preds, query.Predicate{
			Col: schema.ColumnRef{Table: col.Table, Column: col.Name},
			Op:  schema.Operators()[rng.Intn(3)],
			Val: vals[rng.Intn(len(vals))],
		})
	}
	q, err := query.New(s, []string{schema.Title}, nil, preds)
	if err != nil {
		t.Fatal(err)
	}
	return Leaf{Q: q}
}

func randomExpr(t *testing.T, rng *rand.Rand, d *db.Database, depth int) Expr {
	t.Helper()
	if depth == 0 || rng.Float64() < 0.4 {
		return randomLeaf(t, rng, d)
	}
	l := randomExpr(t, rng, d, depth-1)
	r := randomExpr(t, rng, d, depth-1)
	switch rng.Intn(3) {
	case 0:
		return Or{l, r}
	case 1:
		return And{l, r}
	default:
		return Except{l, r}
	}
}

// The headline property: over an exact base estimator, the
// inclusion-exclusion expansion equals direct set evaluation for random
// nested OR/AND/EXCEPT expressions.
func TestExpansionMatchesSetSemantics(t *testing.T) {
	d, oracle := fixture(t)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 60; i++ {
		e := randomExpr(t, rng, d, 2)
		got, err := Cardinality(oracle, e)
		if err != nil {
			t.Fatal(err)
		}
		want := countMask(maskEval(d, e))
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("expr %d: expansion %v, set semantics %v", i, got, want)
		}
	}
}

func TestPaperIdentities(t *testing.T) {
	d, oracle := fixture(t)
	q1 := leafQ(t, "SELECT * FROM title WHERE title.production_year > 1950")
	q2 := leafQ(t, "SELECT * FROM title WHERE title.kind_id = 2")

	c1 := countMask(maskEval(d, q1))
	c2 := countMask(maskEval(d, q2))
	ci := countMask(maskEval(d, And{q1, q2}))

	except, err := Cardinality(oracle, Except{q1, q2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(except-(c1-ci)) > 1e-9 {
		t.Errorf("EXCEPT: got %v, want |Q1|-|Q1∩Q2| = %v", except, c1-ci)
	}
	or, err := Cardinality(oracle, Or{q1, q2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(or-(c1+c2-ci)) > 1e-9 {
		t.Errorf("OR: got %v, want %v", or, c1+c2-ci)
	}
	union, err := Cardinality(oracle, Union{q1, q2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(union-(c1+c2)) > 1e-9 {
		t.Errorf("UNION: got %v, want |Q1|+|Q2| = %v", union, c1+c2)
	}
}

func TestCompoundContainment(t *testing.T) {
	d, oracle := fixture(t)
	q1 := leafQ(t, "SELECT * FROM title WHERE title.production_year > 1950")
	q2 := leafQ(t, "SELECT * FROM title WHERE title.production_year > 1900")
	// (q1 OR q2) == q2 since q1 ⊆ q2, so (q1 OR q2) ⊂% q2 = 1.
	rate, err := ContainmentRate(oracle, Or{q1, q2}, q2)
	if err != nil {
		t.Fatal(err)
	}
	if countMask(maskEval(d, q2)) > 0 && math.Abs(rate-1) > 1e-9 {
		t.Errorf("(q1 OR q2) ⊂%% q2 = %v, want 1", rate)
	}
	// (q2 EXCEPT q1) ⊂% q1 = 0 (disjoint by construction).
	rate, err = ContainmentRate(oracle, Except{q2, q1}, q1)
	if err != nil {
		t.Fatal(err)
	}
	if rate != 0 {
		t.Errorf("(q2 EXCEPT q1) ⊂%% q1 = %v, want 0", rate)
	}
}

func TestFROMMismatchRejected(t *testing.T) {
	_, oracle := fixture(t)
	q1 := leafQ(t, "SELECT * FROM title")
	q2 := leafQ(t, "SELECT * FROM cast_info")
	if _, err := Cardinality(oracle, Or{q1, q2}); err == nil {
		t.Error("OR across FROM clauses should fail")
	}
	if _, err := ContainmentRate(oracle, q1, q2); err == nil {
		t.Error("containment across FROM clauses should fail")
	}
}

func TestUnionOnlyTopLevel(t *testing.T) {
	_, oracle := fixture(t)
	q1 := leafQ(t, "SELECT * FROM title WHERE title.kind_id = 1")
	q2 := leafQ(t, "SELECT * FROM title WHERE title.kind_id = 2")
	// Union at top level is fine.
	if _, err := Cardinality(oracle, Union{q1, q2}); err != nil {
		t.Errorf("top-level UNION failed: %v", err)
	}
	// Union nested under OR is rejected.
	if _, err := Cardinality(oracle, Or{Union{q1, q2}, q1}); err == nil {
		t.Error("nested UNION should fail")
	}
	// Nested unions under a top-level union are still fine (plain sums).
	if _, err := Cardinality(oracle, Union{Union{q1, q2}, q1}); err != nil {
		t.Error("chained top-level UNION should work")
	}
}

func TestNumTerms(t *testing.T) {
	_, _ = fixture(t)
	q1 := leafQ(t, "SELECT * FROM title WHERE title.kind_id = 1")
	q2 := leafQ(t, "SELECT * FROM title WHERE title.kind_id = 2")
	n, err := NumTerms(Or{q1, q2})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 { // |a| + |b| - |a∩b|
		t.Errorf("Or terms = %d, want 3", n)
	}
	n, err = NumTerms(Except{q1, q2})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("Except terms = %d, want 2", n)
	}
	n, err = NumTerms(Union{q1, Or{q1, q2}})
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("Union terms = %d, want 4", n)
	}
}

func TestNegativeClamp(t *testing.T) {
	// A wildly inconsistent estimator can drive inclusion-exclusion
	// negative; Cardinality clamps at zero.
	weird := contain.CardFunc(func(q query.Query) (float64, error) {
		if len(q.Preds) >= 2 {
			return 1000, nil // intersections "bigger" than operands
		}
		return 1, nil
	})
	q1 := Leaf{Q: sqlparse.MustParse(s, "SELECT * FROM title WHERE title.kind_id = 1")}
	q2 := Leaf{Q: sqlparse.MustParse(s, "SELECT * FROM title WHERE title.kind_id = 2")}
	got, err := Cardinality(weird, Or{q1, q2})
	if err != nil {
		t.Fatal(err)
	}
	if got < 0 {
		t.Errorf("cardinality should clamp at 0, got %v", got)
	}
}
