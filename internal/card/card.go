// Package card implements the paper's novel cardinality-estimation
// technique (§5): given a containment-rate estimation model and a queries
// pool of previously executed queries with known cardinalities, the
// cardinality of a new query Qnew is estimated from every matching old
// query Qold via the Cnt2Crd transformation (§5.1.1)
//
//	|Qnew| = (Qold ⊂% Qnew) / (Qnew ⊂% Qold) · |Qold|
//
// collecting one estimate per old query and collapsing them with a final
// function F (Median by default) — the EstimateCardinality algorithm of
// Figure 8. The package also provides the Improved-M construction of §7:
// Improved M = Cnt2Crd(Crd2Cnt(M)), which upgrades any existing cardinality
// model without changing the model itself.
package card

import (
	"fmt"
	"runtime"
	"sync"

	"crn/internal/contain"
	"crn/internal/pool"
	"crn/internal/query"
)

// DefaultEpsilon is the y_rate guard of Figure 8: matching old queries with
// Qnew ⊂% Qold ≤ ε are skipped, since the transformation divides by that
// rate ("if y_rate <= epsilon: continue" — the paper's "y equals zero"
// comment implies a tight guard; selective old queries with small but real
// overlap are still informative).
const DefaultEpsilon = 1e-3

// Estimator estimates cardinalities with the pool-based technique. It
// implements contain.CardEstimator.
type Estimator struct {
	// Rates estimates containment rates between query pairs.
	Rates contain.RateEstimator
	// Pool supplies the old queries and their actual cardinalities.
	Pool *pool.Pool
	// Final collapses per-old-query estimates (nil = Median, the paper's
	// choice).
	Final pool.FinalFunc
	// Epsilon is the y_rate guard (0 = DefaultEpsilon).
	Epsilon float64
	// Fallback, if non-nil, answers queries with no usable pool match
	// (different FROM clause or all matches skipped); the paper suggests
	// falling back to a basic cardinality model (§5.2). A nil Fallback
	// makes such queries an error.
	Fallback contain.CardEstimator
	// Workers sets the parallelism of the pool scan (Figure 8's loop is
	// embarrassingly parallel, §5.3); 0 means GOMAXPROCS, 1 is serial.
	Workers int
}

// New creates a pool-based estimator with the paper's defaults (Median
// final function, ε = 1e-3, serial scan).
func New(rates contain.RateEstimator, qp *pool.Pool) *Estimator {
	return &Estimator{Rates: rates, Pool: qp, Final: pool.Median, Epsilon: DefaultEpsilon, Workers: 1}
}

// EstimateCard runs the EstimateCardinality algorithm of Figure 8.
func (e *Estimator) EstimateCard(qnew query.Query) (float64, error) {
	if e.Rates == nil || e.Pool == nil {
		return 0, fmt.Errorf("card: estimator needs a rate model and a queries pool")
	}
	matches := e.Pool.Matching(qnew)
	results, err := e.perOldEstimates(qnew, matches)
	if err != nil {
		return 0, err
	}
	if len(results) == 0 {
		if e.Fallback != nil {
			return e.Fallback.EstimateCard(qnew)
		}
		return 0, fmt.Errorf("card: no matching pool query for FROM %q", qnew.FROMKey())
	}
	final := e.Final
	if final == nil {
		final = pool.Median
	}
	return final(results), nil
}

// perOldEstimates computes x_rate/y_rate·|Qold| for every usable match.
func (e *Estimator) perOldEstimates(qnew query.Query, matches []pool.Entry) ([]float64, error) {
	eps := e.Epsilon
	if eps <= 0 {
		eps = DefaultEpsilon
	}
	// Old queries with empty results carry no information: the containment
	// rate of an empty query is 0 by definition (§2), so x_rate/y_rate·0
	// degenerates to 0 regardless of the rates. Drop them before scanning.
	usable := matches[:0]
	for _, m := range matches {
		if m.Card > 0 {
			usable = append(usable, m)
		}
	}
	matches = usable

	// Batched fast path: one x_rate + one y_rate batch over all matches.
	if batch, ok := e.Rates.(contain.BatchRateEstimator); ok && len(matches) > 1 {
		pairs := make([][2]query.Query, 0, 2*len(matches))
		for _, m := range matches {
			pairs = append(pairs, [2]query.Query{m.Q, qnew}, [2]query.Query{qnew, m.Q})
		}
		rates, err := batch.EstimateRates(pairs)
		if err != nil {
			return nil, err
		}
		var results []float64
		for i, m := range matches {
			xRate, yRate := rates[2*i], rates[2*i+1]
			if yRate <= eps {
				continue
			}
			results = append(results, xRate/yRate*float64(m.Card))
		}
		return results, nil
	}
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(matches) {
		workers = len(matches)
	}
	if workers <= 1 {
		var results []float64
		for _, m := range matches {
			est, ok, err := e.estimateFrom(qnew, m, eps)
			if err != nil {
				return nil, err
			}
			if ok {
				results = append(results, est)
			}
		}
		return results, nil
	}
	type res struct {
		est float64
		ok  bool
		err error
	}
	out := make([]res, len(matches))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				est, ok, err := e.estimateFrom(qnew, matches[i], eps)
				out[i] = res{est, ok, err}
			}
		}()
	}
	for i := range matches {
		next <- i
	}
	close(next)
	wg.Wait()
	var results []float64
	for _, r := range out {
		if r.err != nil {
			return nil, r.err
		}
		if r.ok {
			results = append(results, r.est)
		}
	}
	return results, nil
}

// estimateFrom applies the Cnt2Crd transformation to one old query.
func (e *Estimator) estimateFrom(qnew query.Query, m pool.Entry, eps float64) (float64, bool, error) {
	xRate, err := e.Rates.EstimateRate(m.Q, qnew) // Qold ⊂% Qnew
	if err != nil {
		return 0, false, err
	}
	yRate, err := e.Rates.EstimateRate(qnew, m.Q) // Qnew ⊂% Qold
	if err != nil {
		return 0, false, err
	}
	if yRate <= eps {
		return 0, false, nil
	}
	return xRate / yRate * float64(m.Card), true, nil
}

// Cnt2Crd is the transformation of §5.1 as a function: it converts a
// containment-rate model plus a queries pool into a cardinality model.
func Cnt2Crd(rates contain.RateEstimator, qp *pool.Pool) contain.CardEstimator {
	return New(rates, qp)
}

// Improved applies the three-step construction of §7 to an existing
// cardinality model M: Improved M = Cnt2Crd(Crd2Cnt(M)) over the given
// pool, improving M's estimates without changing M itself.
func Improved(m contain.CardEstimator, qp *pool.Pool) *Estimator {
	return New(contain.Crd2Cnt{M: m}, qp)
}

var _ contain.CardEstimator = (*Estimator)(nil)
