// Package card implements the paper's novel cardinality-estimation
// technique (§5): given a containment-rate estimation model and a queries
// pool of previously executed queries with known cardinalities, the
// cardinality of a new query Qnew is estimated from every matching old
// query Qold via the Cnt2Crd transformation (§5.1.1)
//
//	|Qnew| = (Qold ⊂% Qnew) / (Qnew ⊂% Qold) · |Qold|
//
// collecting one estimate per old query and collapsing them with a final
// function F (Median by default) — the EstimateCardinality algorithm of
// Figure 8. The package also provides the Improved-M construction of §7:
// Improved M = Cnt2Crd(Crd2Cnt(M)), which upgrades any existing cardinality
// model without changing the model itself.
//
// The deployment of §5.2 is a DBMS answering estimation requests while it
// keeps executing queries, so the estimator is batch-first: EstimateCards
// runs one amortized rate pass over the pool pairs of every query in the
// batch, and all entry points accept a context for cancellation.
package card

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"crn/internal/contain"
	"crn/internal/guard/failpoint"
	"crn/internal/pool"
	"crn/internal/query"
	"crn/internal/telemetry"
)

// DefaultEpsilon is the y_rate guard of Figure 8: matching old queries with
// Qnew ⊂% Qold ≤ ε are skipped, since the transformation divides by that
// rate ("if y_rate <= epsilon: continue" — the paper's "y equals zero"
// comment implies a tight guard; selective old queries with small but real
// overlap are still informative).
const DefaultEpsilon = 1e-3

// ErrNoPoolMatch is the sentinel returned (wrapped) when a query has no
// usable pool match — no pooled query shares its FROM clause, or every
// candidate was skipped by the ε guard — and no Fallback is configured.
// Callers match it with errors.Is.
var ErrNoPoolMatch = errors.New("card: no matching pool query")

// Estimator estimates cardinalities with the pool-based technique. It
// implements contain.CardEstimator and contain.CtxCardEstimator.
type Estimator struct {
	// Rates estimates containment rates between query pairs.
	Rates contain.RateEstimator
	// Pool supplies the old queries and their actual cardinalities.
	Pool *pool.Pool
	// Final collapses per-old-query estimates (nil = Median, the paper's
	// choice).
	Final pool.FinalFunc
	// Epsilon is the y_rate guard (0 = DefaultEpsilon).
	Epsilon float64
	// Fallback, if non-nil, answers queries with no usable pool match
	// (different FROM clause or all matches skipped); the paper suggests
	// falling back to a basic cardinality model (§5.2). A nil Fallback
	// makes such queries an error.
	Fallback contain.CardEstimator
	// Workers sets the parallelism of the pool scan when the rate model has
	// no batch interface (Figure 8's loop is embarrassingly parallel,
	// §5.3); 0 means GOMAXPROCS, 1 is serial. Batch-capable rate models
	// parallelize internally instead.
	Workers int
	// MaxCandidates bounds the per-query pool scan: when positive, only the
	// MaxCandidates most containment-comparable old queries (Pool.TopK's
	// signature ranking) enter the Figure 8 loop, making per-estimate cost
	// O(K) in pool size instead of O(pool). 0 scans every FROM-clause match
	// (the paper's algorithm, bit-identical to pre-bound behavior); any K at
	// least the matching count is likewise bit-identical, because TopK
	// degenerates to the full scan in original order.
	MaxCandidates int
	// ShareCandidates deduplicates candidate selection across one
	// EstimateCards batch: probes that provably (unbounded gathering — same
	// FROM clause) or plausibly (bounded TopK — same FROM clause AND same
	// probe-signature pattern) select the same candidate set reuse the first
	// probe's selection instead of re-probing the pool. Containment rates
	// are still estimated per (probe, candidate) pair, so with
	// MaxCandidates = 0 results are bit-identical to unshared estimation;
	// with a binding MaxCandidates, same-pattern probes with different
	// predicate values reuse a top-K ranked for the first probe's values —
	// an approximation, so sharing is opt-in (default off).
	ShareCandidates bool

	// Tel, when non-nil, receives the estimator's stage spans (candidate
	// selection, finalize) and notes every served estimate with its arm
	// (CRN vs fallback) into the live accuracy ring. Set before serving;
	// nil keeps the path free of clock reads.
	Tel *telemetry.Telemetry

	// selections / sharedSels count candidate selections performed and
	// reused across all EstimateCards calls (atomics; see SelectionStats).
	selections uint64
	sharedSels uint64
}

// SelectionStats is a point-in-time snapshot of batch candidate selection.
type SelectionStats struct {
	// Selections counts per-probe candidate gatherings requested across all
	// batches; Shared counts how many of them were answered by reusing an
	// earlier selection of the same batch instead of probing the pool.
	Selections uint64 `json:"selections"`
	Shared     uint64 `json:"shared"`
}

// SelectionStats returns the estimator's candidate-selection counters.
func (e *Estimator) SelectionStats() SelectionStats {
	return SelectionStats{
		Selections: atomic.LoadUint64(&e.selections),
		Shared:     atomic.LoadUint64(&e.sharedSels),
	}
}

// shareKey buckets one batch's probes into groups whose candidate selection
// is reusable: the FROM clause alone for unbounded gathering (AppendMatching
// returns every clause entry in pool order for any probe — sharing is
// exact), plus the probe signature's value-free pattern (query PatternKey)
// for bounded TopK selection.
func shareKey(q query.Query, bounded bool) string {
	if !bounded {
		return q.FROMKey()
	}
	sig := q.Signature()
	return q.FROMKey() + "\x00" + sig.PatternKey()
}

// New creates a pool-based estimator with the paper's defaults (Median
// final function, ε = 1e-3, serial scan).
func New(rates contain.RateEstimator, qp *pool.Pool) *Estimator {
	return &Estimator{Rates: rates, Pool: qp, Final: pool.Median, Epsilon: DefaultEpsilon, Workers: 1}
}

// EstimateCard runs the EstimateCardinality algorithm of Figure 8.
func (e *Estimator) EstimateCard(qnew query.Query) (float64, error) {
	return e.EstimateCardCtx(context.Background(), qnew)
}

// EstimateCardCtx is EstimateCard with cancellation; it implements
// contain.CtxCardEstimator.
func (e *Estimator) EstimateCardCtx(ctx context.Context, qnew query.Query) (float64, error) {
	out, err := e.EstimateCards(ctx, []query.Query{qnew})
	if err != nil {
		return 0, err
	}
	return out[0], nil
}

// EstimateCards runs Figure 8 for a whole batch of queries with one
// amortized containment-rate pass: the pool pairs of every query are
// concatenated and estimated together, so the rate model's per-call
// overhead — and, for the CRN, the set-module encodings of recurring pool
// entries — is paid once per batch instead of once per query. Results are
// identical to per-query EstimateCard calls. The call fails as a whole on
// the first query that has no usable pool match and no Fallback.
func (e *Estimator) EstimateCards(ctx context.Context, queries []query.Query) ([]float64, error) {
	if e.Rates == nil || e.Pool == nil {
		return nil, fmt.Errorf("card: estimator needs a rate model and a queries pool")
	}
	if err := failpoint.Inject(failpoint.EstimateCards); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	eps := e.Epsilon
	if eps <= 0 {
		eps = DefaultEpsilon
	}
	final := e.Final
	if final == nil {
		final = pool.Median
	}
	var st telemetry.StageTimer
	var acc *telemetry.Accuracy
	if e.Tel != nil {
		// Sampled pass timer: most passes skip the clock entirely, the
		// sampled ones record candidate-selection and finalize spans at
		// inverse-probability weight (see telemetry.SampleRate).
		st = e.Tel.Stages.Sample()
		acc = e.Tel.Accuracy
	}

	// Gather every query's pool candidates into one arena and lay their
	// rate pairs out in one flat list: (Qold, Qnew) then (Qnew, Qold) per
	// candidate. The arena amortizes the per-probe copy Matching would
	// make — under request coalescing this path runs for every single-query
	// estimate, so its allocation count is serving-hot.
	type span struct {
		lo, hi int // usable entries in arena[lo:hi]
		off    int // first pair index in the flat list
	}
	spans := make([]span, len(queries))
	arena := make([]pool.Entry, 0, 8*len(queries))
	total := 0
	// Batch-level candidate sharing: one pool selection per share bucket,
	// reused by every later probe of the same bucket (rate pairs stay
	// per-probe — only the selection is shared). See ShareCandidates.
	var shareIdx map[string]int
	if e.ShareCandidates && len(queries) > 1 {
		shareIdx = make(map[string]int, len(queries))
	}
	for i, qnew := range queries {
		atomic.AddUint64(&e.selections, 1)
		var sk string
		if shareIdx != nil {
			sk = shareKey(qnew, e.MaxCandidates > 0)
			if j, ok := shareIdx[sk]; ok {
				sp := spans[j]
				spans[i] = span{lo: sp.lo, hi: sp.hi, off: 2 * total}
				total += sp.hi - sp.lo
				atomic.AddUint64(&e.sharedSels, 1)
				continue
			}
		}
		lo := len(arena)
		if e.MaxCandidates > 0 {
			arena = e.Pool.AppendTopK(arena, qnew, e.MaxCandidates)
		} else {
			arena = e.Pool.AppendMatching(arena, qnew)
		}
		// Old queries with empty results carry no information: the
		// containment rate of an empty query is 0 by definition (§2), so
		// x_rate/y_rate·0 degenerates to 0 regardless of the rates.
		w := lo
		for _, m := range arena[lo:] {
			if m.Card > 0 {
				arena[w] = m
				w++
			}
		}
		arena = arena[:w]
		spans[i] = span{lo: lo, hi: w, off: 2 * total}
		total += w - lo
		if shareIdx != nil {
			shareIdx[sk] = i
		}
	}
	if e.Tel != nil {
		st.Mark(e.Tel.Stages.CandidateSelection)
	}

	var rates []float64
	var err error
	if idxEst, ok := e.Rates.(contain.IndexedRateEstimator); ok {
		// Zero-copy layout: each probe enters the shared query list once,
		// each pool entry once per batch (recognized by its stable ID when
		// several probes share a FROM clause); pairs are index tuples. No
		// canonical keys are rendered anywhere on this path.
		list := make([]query.Query, 0, len(queries)+total)
		idx := make([][2]int, 0, 2*total)
		seen := make(map[int64]int, total)
		for i, qnew := range queries {
			qi := len(list)
			list = append(list, qnew)
			for _, m := range arena[spans[i].lo:spans[i].hi] {
				mi, ok := seen[m.ID]
				if !ok {
					mi = len(list)
					list = append(list, m.Q)
					seen[m.ID] = mi
				}
				idx = append(idx, [2]int{mi, qi}, [2]int{qi, mi})
			}
		}
		rates, err = idxEst.EstimateRatesIndexed(ctx, list, idx)
	} else {
		pairs := make([][2]query.Query, 0, 2*total)
		for i, qnew := range queries {
			for _, m := range arena[spans[i].lo:spans[i].hi] {
				pairs = append(pairs, [2]query.Query{m.Q, qnew}, [2]query.Query{qnew, m.Q})
			}
		}
		rates, err = e.estimateRates(ctx, pairs)
	}
	// The rate model times its own cache-lookup and forward spans (see
	// crn.Rates.Stages); Touch excludes that interval from finalize.
	st.Touch()
	if err != nil {
		return nil, err
	}

	out := make([]float64, len(queries))
	var results []float64 // reused across queries; final() must not retain it
	for i, qnew := range queries {
		sp := spans[i]
		results = results[:0]
		for mi, m := range arena[sp.lo:sp.hi] {
			xRate := rates[sp.off+2*mi]   // Qold ⊂% Qnew
			yRate := rates[sp.off+2*mi+1] // Qnew ⊂% Qold
			if yRate <= eps {
				continue
			}
			results = append(results, xRate/yRate*float64(m.Card))
		}
		if len(results) == 0 {
			est, err := e.fallbackCard(ctx, qnew)
			if err != nil {
				return nil, err
			}
			out[i] = est
			acc.Note(qnew.Key(), est, telemetry.ArmFallback)
			continue
		}
		out[i] = final(results)
		acc.Note(qnew.Key(), out[i], telemetry.ArmCRN)
	}
	if e.Tel != nil {
		st.Mark(e.Tel.Stages.Finalize)
	}
	return out, nil
}

// estimateRates dispatches one flat pair list to the richest interface the
// rate model offers: cancellable batch, plain batch, or a per-pair loop
// parallelized over Workers goroutines.
func (e *Estimator) estimateRates(ctx context.Context, pairs [][2]query.Query) ([]float64, error) {
	if len(pairs) == 0 {
		return nil, nil
	}
	switch r := e.Rates.(type) {
	case contain.CtxBatchRateEstimator:
		return r.EstimateRatesCtx(ctx, pairs)
	case contain.BatchRateEstimator:
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return r.EstimateRates(pairs)
	}
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pairs) {
		workers = len(pairs)
	}
	out := make([]float64, len(pairs))
	if workers <= 1 {
		for i, p := range pairs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			r, err := e.Rates.EstimateRate(p[0], p[1])
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}
	errs := make([]error, len(pairs))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if ctx.Err() != nil {
					continue
				}
				out[i], errs[i] = e.Rates.EstimateRate(pairs[i][0], pairs[i][1])
			}
		}()
	}
	for i := range pairs {
		next <- i
	}
	close(next)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// fallbackCard answers a query without a usable pool match.
func (e *Estimator) fallbackCard(ctx context.Context, qnew query.Query) (float64, error) {
	if e.Fallback == nil {
		return 0, fmt.Errorf("%w for FROM %q", ErrNoPoolMatch, qnew.FROMKey())
	}
	if fb, ok := e.Fallback.(contain.CtxCardEstimator); ok {
		return fb.EstimateCardCtx(ctx, qnew)
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return e.Fallback.EstimateCard(qnew)
}

// Cnt2Crd is the transformation of §5.1 as a function: it converts a
// containment-rate model plus a queries pool into a cardinality model.
func Cnt2Crd(rates contain.RateEstimator, qp *pool.Pool) contain.CardEstimator {
	return New(rates, qp)
}

// Improved applies the three-step construction of §7 to an existing
// cardinality model M: Improved M = Cnt2Crd(Crd2Cnt(M)) over the given
// pool, improving M's estimates without changing M itself.
func Improved(m contain.CardEstimator, qp *pool.Pool) *Estimator {
	return New(contain.Crd2Cnt{M: m}, qp)
}

var (
	_ contain.CardEstimator    = (*Estimator)(nil)
	_ contain.CtxCardEstimator = (*Estimator)(nil)
)
