package card

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"crn/internal/contain"
	"crn/internal/datagen"
	"crn/internal/exec"
	"crn/internal/pool"
	"crn/internal/query"
	"crn/internal/schema"
	"crn/internal/sqlparse"
)

var s = schema.IMDB()

func fixture(t *testing.T) (*exec.Executor, *pool.Pool) {
	t.Helper()
	cfg := datagen.DefaultConfig()
	cfg.Titles = 400
	d, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := exec.New(d)
	if err != nil {
		t.Fatal(err)
	}
	qp := pool.New()
	sqls := []string{
		"SELECT * FROM title",
		"SELECT * FROM title WHERE title.production_year > 1950",
		"SELECT * FROM title WHERE title.kind_id < 5",
		"SELECT * FROM title, cast_info WHERE title.id = cast_info.movie_id",
		"SELECT * FROM title, cast_info WHERE title.id = cast_info.movie_id AND cast_info.role_id < 6",
	}
	for _, sql := range sqls {
		q := sqlparse.MustParse(s, sql)
		c, err := ex.Cardinality(q)
		if err != nil {
			t.Fatal(err)
		}
		qp.Add(q, c)
	}
	return ex, qp
}

// With an exact containment oracle and any non-empty matching pool, the
// Cnt2Crd estimate is exactly the true cardinality: every old query gives
// x/y·|Qold| = (|Qi|/|Qold|)/(|Qi|/|Qnew|)·|Qold| = |Qnew| when rates are
// exact. This isolates the technique from model error.
func TestOracleRatesRecoverExactCardinality(t *testing.T) {
	ex, qp := fixture(t)
	est := New(contain.TruthRate{T: ex}, qp)
	queries := []string{
		"SELECT * FROM title WHERE title.production_year > 1960",
		"SELECT * FROM title WHERE title.kind_id = 2 AND title.production_year < 1990",
		"SELECT * FROM title, cast_info WHERE title.id = cast_info.movie_id AND cast_info.nr_order < 3",
	}
	for _, sql := range queries {
		q := sqlparse.MustParse(s, sql)
		truth, err := ex.Cardinality(q)
		if err != nil {
			t.Fatal(err)
		}
		if truth == 0 {
			continue
		}
		got, err := est.EstimateCard(q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-float64(truth)) > 1e-6*float64(truth) {
			t.Errorf("%s: Cnt2Crd(oracle) = %v, truth = %d", sql, got, truth)
		}
	}
}

func TestNoMatchWithoutFallbackFails(t *testing.T) {
	ex, qp := fixture(t)
	est := New(contain.TruthRate{T: ex}, qp)
	q := sqlparse.MustParse(s, "SELECT * FROM movie_keyword")
	if _, err := est.EstimateCard(q); err == nil {
		t.Error("unmatched FROM clause should fail without fallback")
	}
}

func TestFallbackUsedWhenNoMatch(t *testing.T) {
	ex, qp := fixture(t)
	est := New(contain.TruthRate{T: ex}, qp)
	est.Fallback = contain.CardFunc(func(q query.Query) (float64, error) { return 42, nil })
	q := sqlparse.MustParse(s, "SELECT * FROM movie_keyword")
	got, err := est.EstimateCard(q)
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Errorf("fallback result = %v", got)
	}
}

func TestEpsilonGuardSkipsDisjointOldQueries(t *testing.T) {
	// Pool with one old query that is disjoint from the probe: y_rate = 0
	// must be skipped, leaving no results -> error without fallback.
	cfg := datagen.DefaultConfig()
	cfg.Titles = 200
	d, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := exec.New(d)
	if err != nil {
		t.Fatal(err)
	}
	qp := pool.New()
	old := sqlparse.MustParse(s, "SELECT * FROM title WHERE title.production_year < 1900")
	c, err := ex.Cardinality(old)
	if err != nil {
		t.Fatal(err)
	}
	qp.Add(old, c)
	est := New(contain.TruthRate{T: ex}, qp)
	probe := sqlparse.MustParse(s, "SELECT * FROM title WHERE title.production_year > 1990")
	if _, err := est.EstimateCard(probe); err == nil {
		t.Error("all-skipped pool should fail without fallback")
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	ex, qp := fixture(t)
	serial := New(contain.TruthRate{T: ex}, qp)
	parallel := New(contain.TruthRate{T: ex}, qp)
	parallel.Workers = 4
	for _, sql := range []string{
		"SELECT * FROM title WHERE title.production_year > 1930",
		"SELECT * FROM title, cast_info WHERE title.id = cast_info.movie_id AND cast_info.person_id > 600",
	} {
		q := sqlparse.MustParse(s, sql)
		a, errA := serial.EstimateCard(q)
		b, errB := parallel.EstimateCard(q)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("error mismatch: %v vs %v", errA, errB)
		}
		if errA == nil && math.Abs(a-b) > 1e-9 {
			t.Errorf("parallel %v != serial %v", b, a)
		}
	}
}

func TestFinalFunctionChoice(t *testing.T) {
	// Rates model that yields a known spread of per-old estimates.
	ex, qp := fixture(t)
	q := sqlparse.MustParse(s, "SELECT * FROM title WHERE title.production_year > 1960")
	est := New(contain.TruthRate{T: ex}, qp)
	est.Final = pool.Mean
	got, err := est.EstimateCard(q)
	if err != nil {
		t.Fatal(err)
	}
	truth, _ := ex.Cardinality(q)
	// Oracle rates: every pool entry gives the exact answer, so mean ==
	// median == truth.
	if math.Abs(got-float64(truth)) > 1e-6*float64(truth) {
		t.Errorf("mean-final estimate = %v, truth = %d", got, truth)
	}
}

func TestErrorPropagation(t *testing.T) {
	_, qp := fixture(t)
	boom := errors.New("boom")
	bad := contain.RateFunc(func(q1, q2 query.Query) (float64, error) { return 0, boom })
	est := New(bad, qp)
	q := sqlparse.MustParse(s, "SELECT * FROM title")
	if _, err := est.EstimateCard(q); !errors.Is(err, boom) {
		t.Errorf("expected boom, got %v", err)
	}
	// Parallel path propagates too.
	est.Workers = 4
	if _, err := est.EstimateCard(q); !errors.Is(err, boom) {
		t.Errorf("parallel: expected boom, got %v", err)
	}
}

func TestMisconfiguredEstimator(t *testing.T) {
	est := &Estimator{}
	if _, err := est.EstimateCard(query.Query{Tables: []string{"title"}}); err == nil {
		t.Error("estimator without rates/pool should fail")
	}
}

func TestImprovedConstruction(t *testing.T) {
	ex, qp := fixture(t)
	// Improved(truth-cardinality model) must also recover near-exact
	// cardinalities: Crd2Cnt(truth) gives exact rates, Cnt2Crd inverts.
	improved := Improved(contain.TruthCard{T: ex}, qp)
	q := sqlparse.MustParse(s, "SELECT * FROM title WHERE title.kind_id = 3")
	truth, err := ex.Cardinality(q)
	if err != nil {
		t.Fatal(err)
	}
	if truth == 0 {
		t.Skip("empty truth on this seed")
	}
	got, err := improved.EstimateCard(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-float64(truth)) > 1e-6*float64(truth) {
		t.Errorf("Improved(oracle) = %v, truth = %d", got, truth)
	}
}

// Property over many probes: with oracle rates the technique is exact for
// every query whose FROM clause the pool covers and whose result is
// non-empty.
func TestOracleExactnessSweep(t *testing.T) {
	ex, qp := fixture(t)
	est := New(contain.TruthRate{T: ex}, qp)
	for year := 1900; year <= 2000; year += 10 {
		sql := fmt.Sprintf("SELECT * FROM title WHERE title.production_year < %d", year)
		q := sqlparse.MustParse(s, sql)
		truth, err := ex.Cardinality(q)
		if err != nil {
			t.Fatal(err)
		}
		if truth == 0 {
			continue
		}
		got, err := est.EstimateCard(q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-float64(truth)) > 1e-6*float64(truth) {
			t.Errorf("year %d: got %v want %d", year, got, truth)
		}
	}
}
