// Package contain defines the estimator interfaces of the reproduction and
// the Crd2Cnt transformation of §4.1: any cardinality estimation model M can
// be converted into a containment-rate estimation model M' by
//
//	Q1 ⊂% Q2  =  |M(Q1∩Q2)| / |M(Q1)|
//
// where Q1∩Q2 is the intersection query (same SELECT/FROM, conjoined WHERE
// clauses). The inverse direction — Cnt2Crd, turning a containment model
// into a cardinality model with the help of a queries pool — lives in
// package card.
package contain

import (
	"context"
	"errors"
	"fmt"

	"crn/internal/query"
)

// ErrNotComparable is the sentinel wrapped when two queries cannot be
// compared for containment because their FROM clauses differ (§2 defines
// containment only over identical FROM clauses).
var ErrNotComparable = errors.New("queries are not containment-comparable")

// CardEstimator estimates result cardinalities of conjunctive queries.
// Implemented by pg.Estimator, mscn.Estimator, the exec oracle adapter and
// the pool-based Cnt2Crd estimator.
type CardEstimator interface {
	EstimateCard(q query.Query) (float64, error)
}

// RateEstimator estimates containment rates Q1 ⊂% Q2 as fractions in [0,1].
// Implemented by the CRN adapter and by Crd2Cnt-wrapped cardinality models.
type RateEstimator interface {
	EstimateRate(q1, q2 query.Query) (float64, error)
}

// BatchRateEstimator is an optional fast path for rate estimators that can
// amortize work over many pairs at once (neural models batch their forward
// passes). Pairs are (Q1, Q2) with the rate Q1 ⊂% Q2 returned per pair.
type BatchRateEstimator interface {
	RateEstimator
	EstimateRates(pairs [][2]query.Query) ([]float64, error)
}

// BatchCardEstimator is the cardinality analogue of BatchRateEstimator.
type BatchCardEstimator interface {
	CardEstimator
	EstimateCards(queries []query.Query) ([]float64, error)
}

// CtxBatchRateEstimator is the serving-grade rate interface: batched AND
// cancellable. Implementations check ctx between internal chunks so a
// cancelled request stops consuming CPU promptly.
type CtxBatchRateEstimator interface {
	BatchRateEstimator
	EstimateRatesCtx(ctx context.Context, pairs [][2]query.Query) ([]float64, error)
}

// CtxCardEstimator is a cardinality estimator that honors cancellation.
// Estimators dispatch on it before falling back to the plain interface.
type CtxCardEstimator interface {
	CardEstimator
	EstimateCardCtx(ctx context.Context, q query.Query) (float64, error)
}

// IndexedRateEstimator is the zero-copy batch interface: pairs reference a
// shared query list by index, so a query recurring in many pairs — the
// probe of a pool scan appears in two pairs per candidate — is encoded once
// and never re-keyed. The pool-based estimator prefers it over the
// query-valued batch interfaces, whose per-pair canonical-key deduplication
// costs more than the neural forward pass at serving batch sizes.
type IndexedRateEstimator interface {
	EstimateRatesIndexed(ctx context.Context, queries []query.Query, pairs [][2]int) ([]float64, error)
}

// Crd2Cnt wraps a cardinality estimator into a containment-rate estimator
// (the paper's Crd2Cnt transformation, §4.1.1). The resulting rate is
// clamped to [0,1]: a sound cardinality model already satisfies
// |Q1∩Q2| ≤ |Q1|, but learned models can violate it.
type Crd2Cnt struct {
	M CardEstimator
	// Name identifies the underlying model in experiment tables, e.g.
	// "Crd2Cnt(PostgreSQL)".
	Name string
}

// EstimateRate implements RateEstimator.
func (c Crd2Cnt) EstimateRate(q1, q2 query.Query) (float64, error) {
	qi, err := q1.Intersect(q2)
	if err != nil {
		return 0, err
	}
	c1, err := c.M.EstimateCard(q1)
	if err != nil {
		return 0, err
	}
	if c1 <= 0 {
		// By definition Q1 ⊂% Q2 = 0 when |Q1| = 0 (§2).
		return 0, nil
	}
	ci, err := c.M.EstimateCard(qi)
	if err != nil {
		return 0, err
	}
	rate := ci / c1
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	return rate, nil
}

// EstimateRates implements BatchRateEstimator: when the wrapped model
// supports batched cardinality estimation, both per-pair cardinalities are
// computed in two batched calls.
func (c Crd2Cnt) EstimateRates(pairs [][2]query.Query) ([]float64, error) {
	bm, ok := c.M.(BatchCardEstimator)
	if !ok {
		out := make([]float64, len(pairs))
		for i, p := range pairs {
			r, err := c.EstimateRate(p[0], p[1])
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}
	q1s := make([]query.Query, len(pairs))
	qis := make([]query.Query, len(pairs))
	for i, p := range pairs {
		qi, err := p[0].Intersect(p[1])
		if err != nil {
			return nil, err
		}
		q1s[i] = p[0]
		qis[i] = qi
	}
	c1s, err := bm.EstimateCards(q1s)
	if err != nil {
		return nil, err
	}
	cis, err := bm.EstimateCards(qis)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(pairs))
	for i := range pairs {
		if c1s[i] <= 0 {
			out[i] = 0
			continue
		}
		r := cis[i] / c1s[i]
		if r < 0 {
			r = 0
		}
		if r > 1 {
			r = 1
		}
		out[i] = r
	}
	return out, nil
}

var _ BatchRateEstimator = Crd2Cnt{}

// CardFunc adapts a plain function to CardEstimator.
type CardFunc func(q query.Query) (float64, error)

// EstimateCard implements CardEstimator.
func (f CardFunc) EstimateCard(q query.Query) (float64, error) { return f(q) }

// RateFunc adapts a plain function to RateEstimator.
type RateFunc func(q1, q2 query.Query) (float64, error)

// EstimateRate implements RateEstimator.
func (f RateFunc) EstimateRate(q1, q2 query.Query) (float64, error) { return f(q1, q2) }

// TruthCard adapts an exact oracle (the executor) to CardEstimator; used in
// tests and to bound achievable accuracy in ablations.
type TruthCard struct {
	T interface {
		Cardinality(q query.Query) (int64, error)
	}
}

// EstimateCard implements CardEstimator.
func (t TruthCard) EstimateCard(q query.Query) (float64, error) {
	c, err := t.T.Cardinality(q)
	if err != nil {
		return 0, err
	}
	return float64(c), nil
}

// TruthRate adapts an exact oracle to RateEstimator.
type TruthRate struct {
	T interface {
		ContainmentRate(q1, q2 query.Query) (float64, error)
	}
}

// EstimateRate implements RateEstimator.
func (t TruthRate) EstimateRate(q1, q2 query.Query) (float64, error) {
	return t.T.ContainmentRate(q1, q2)
}

// Validate sanity-checks that two queries are containment-comparable,
// returning a descriptive error otherwise. Estimators use it to fail fast
// on malformed pairs.
func Validate(q1, q2 query.Query) error {
	if !q1.Comparable(q2) {
		return fmt.Errorf("contain: %w (FROM %q vs %q)", ErrNotComparable, q1.FROMKey(), q2.FROMKey())
	}
	return nil
}
