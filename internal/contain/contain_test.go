package contain

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"crn/internal/datagen"
	"crn/internal/exec"
	"crn/internal/query"
	"crn/internal/schema"
	"crn/internal/sqlparse"
)

var s = schema.IMDB()

func oracle(t *testing.T) *exec.Executor {
	t.Helper()
	cfg := datagen.DefaultConfig()
	cfg.Titles = 300
	d, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := exec.New(d)
	if err != nil {
		t.Fatal(err)
	}
	return ex
}

// Crd2Cnt over an exact cardinality oracle must reproduce the exact
// containment rate — the algebra of §4.1.1 is exact when M is exact.
func TestCrd2CntOnOracleIsExact(t *testing.T) {
	ex := oracle(t)
	rates := Crd2Cnt{M: TruthCard{T: ex}, Name: "Crd2Cnt(truth)"}
	pairs := [][2]string{
		{
			"SELECT * FROM title WHERE title.production_year > 1950",
			"SELECT * FROM title WHERE title.production_year > 1900",
		},
		{
			"SELECT * FROM title, cast_info WHERE title.id = cast_info.movie_id AND cast_info.role_id = 2",
			"SELECT * FROM title, cast_info WHERE title.id = cast_info.movie_id AND title.kind_id < 5",
		},
	}
	for _, p := range pairs {
		q1 := sqlparse.MustParse(s, p[0])
		q2 := sqlparse.MustParse(s, p[1])
		got, err := rates.EstimateRate(q1, q2)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ex.ContainmentRate(q1, q2)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("%s vs %s: Crd2Cnt(oracle) = %v, truth = %v", q1, q2, got, want)
		}
	}
}

func TestCrd2CntClampsToUnitInterval(t *testing.T) {
	// A deliberately unsound model: intersection estimated larger than Q1.
	bad := CardFunc(func(q query.Query) (float64, error) {
		return float64(10 + len(q.Preds)*100), nil
	})
	rates := Crd2Cnt{M: bad}
	q1 := sqlparse.MustParse(s, "SELECT * FROM title WHERE title.kind_id = 1")
	q2 := sqlparse.MustParse(s, "SELECT * FROM title WHERE title.kind_id = 2")
	rate, err := rates.EstimateRate(q1, q2)
	if err != nil {
		t.Fatal(err)
	}
	if rate < 0 || rate > 1 {
		t.Errorf("rate not clamped: %v", rate)
	}
}

func TestCrd2CntZeroCardinality(t *testing.T) {
	zero := CardFunc(func(q query.Query) (float64, error) { return 0, nil })
	rates := Crd2Cnt{M: zero}
	q := sqlparse.MustParse(s, "SELECT * FROM title")
	rate, err := rates.EstimateRate(q, q)
	if err != nil {
		t.Fatal(err)
	}
	if rate != 0 {
		t.Errorf("zero-cardinality rate = %v, want 0 (definition §2)", rate)
	}
}

func TestCrd2CntDifferentFROMFails(t *testing.T) {
	rates := Crd2Cnt{M: CardFunc(func(query.Query) (float64, error) { return 1, nil })}
	q1 := sqlparse.MustParse(s, "SELECT * FROM title")
	q2 := sqlparse.MustParse(s, "SELECT * FROM cast_info")
	if _, err := rates.EstimateRate(q1, q2); err == nil {
		t.Error("different FROM clauses should fail")
	}
}

func TestCrd2CntPropagatesModelError(t *testing.T) {
	boom := errors.New("boom")
	rates := Crd2Cnt{M: CardFunc(func(query.Query) (float64, error) { return 0, boom })}
	q := sqlparse.MustParse(s, "SELECT * FROM title")
	if _, err := rates.EstimateRate(q, q); !errors.Is(err, boom) {
		t.Errorf("error not propagated: %v", err)
	}
}

func TestTruthAdapters(t *testing.T) {
	ex := oracle(t)
	q := sqlparse.MustParse(s, "SELECT * FROM title WHERE title.kind_id = 3")
	card, err := TruthCard{T: ex}.EstimateCard(q)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := ex.Cardinality(q)
	if card != float64(want) {
		t.Errorf("TruthCard = %v, want %d", card, want)
	}
	rate, err := TruthRate{T: ex}.EstimateRate(q, q)
	if err != nil {
		t.Fatal(err)
	}
	if want > 0 && rate != 1 {
		t.Errorf("TruthRate self = %v", rate)
	}
}

func TestValidate(t *testing.T) {
	q1 := sqlparse.MustParse(s, "SELECT * FROM title")
	q2 := sqlparse.MustParse(s, "SELECT * FROM cast_info")
	if err := Validate(q1, q1); err != nil {
		t.Errorf("same FROM should validate: %v", err)
	}
	if err := Validate(q1, q2); err == nil {
		t.Error("different FROM should not validate")
	}
}

// countingCard counts EstimateCard calls and supports the batch interface.
type countingCard struct {
	singles int
	batches int
}

func (c *countingCard) EstimateCard(q query.Query) (float64, error) {
	c.singles++
	return float64(10 + len(q.Preds)), nil
}

func (c *countingCard) EstimateCards(qs []query.Query) ([]float64, error) {
	c.batches++
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = float64(10 + len(q.Preds))
	}
	return out, nil
}

func TestCrd2CntBatchedPathMatchesSingle(t *testing.T) {
	q1 := sqlparse.MustParse(s, "SELECT * FROM title WHERE title.kind_id = 1")
	q2 := sqlparse.MustParse(s, "SELECT * FROM title WHERE title.kind_id < 5")
	q3 := sqlparse.MustParse(s, "SELECT * FROM title WHERE title.production_year > 1950")
	pairs := [][2]query.Query{{q1, q2}, {q2, q3}, {q3, q1}}

	batched := &countingCard{}
	viaBatch, err := Crd2Cnt{M: batched}.EstimateRates(pairs)
	if err != nil {
		t.Fatal(err)
	}
	if batched.batches != 2 || batched.singles != 0 {
		t.Errorf("batched path not used: %d batches, %d singles", batched.batches, batched.singles)
	}
	// Same values through the per-pair path.
	single := Crd2Cnt{M: CardFunc(func(q query.Query) (float64, error) {
		return float64(10 + len(q.Preds)), nil
	})}
	for i, p := range pairs {
		want, err := single.EstimateRate(p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(viaBatch[i]-want) > 1e-12 {
			t.Errorf("pair %d: batch %v, single %v", i, viaBatch[i], want)
		}
	}
	// A non-batch model falls back to per-pair estimation inside
	// EstimateRates.
	fallback, err := single.EstimateRates(pairs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pairs {
		if math.Abs(fallback[i]-viaBatch[i]) > 1e-12 {
			t.Errorf("fallback pair %d differs", i)
		}
	}
}

// Property: for random query pairs over random data, Crd2Cnt(oracle) always
// returns the true containment rate in [0,1].
func TestCrd2CntOracleProperty(t *testing.T) {
	ex := oracle(t)
	rates := Crd2Cnt{M: TruthCard{T: ex}}
	rng := rand.New(rand.NewSource(31))
	ops := schema.Operators()
	for i := 0; i < 30; i++ {
		y1 := 1880 + rng.Intn(130)
		y2 := 1880 + rng.Intn(130)
		k := 1 + rng.Intn(7)
		q1, err := query.New(s, []string{schema.Title}, nil, []query.Predicate{
			{Col: schema.ColumnRef{Table: schema.Title, Column: "production_year"}, Op: ops[rng.Intn(3)], Val: int64(y1)},
		})
		if err != nil {
			t.Fatal(err)
		}
		q2, err := query.New(s, []string{schema.Title}, nil, []query.Predicate{
			{Col: schema.ColumnRef{Table: schema.Title, Column: "production_year"}, Op: ops[rng.Intn(3)], Val: int64(y2)},
			{Col: schema.ColumnRef{Table: schema.Title, Column: "kind_id"}, Op: schema.OpEQ, Val: int64(k)},
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := rates.EstimateRate(q1, q2)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ex.ContainmentRate(q1, q2)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-12 || got < 0 || got > 1 {
			t.Fatalf("rate mismatch: got %v want %v", got, want)
		}
	}
}
