package crn

// Benchmarks for the compute core on the two hot paths: one full training
// epoch (forward + backward + Adam over a shuffled sample set) and the
// serving-side PredictBatch. Shapes mirror the repository-scale model
// (H=64, feature dimension ~70, 1-3 element sets per query). Run with
//
//	go test ./internal/crn -run '^$' -bench 'TrainEpoch|PredictBatch' -benchmem
//
// `make bench` records the whole suite into BENCH_2.json.

import (
	"math/rand"
	"testing"
)

const (
	benchDim    = 70
	benchHidden = 64
)

func benchSamples(rng *rand.Rand, n int) []Sample {
	out := make([]Sample, n)
	for i := range out {
		out[i] = Sample{
			V1:   randSet(rng, benchDim, 1+i%3),
			V2:   randSet(rng, benchDim, 1+(i+1)%3),
			Rate: rng.Float64(),
		}
	}
	return out
}

func benchModel() *Model {
	cfg := DefaultConfig()
	cfg.Hidden = benchHidden
	cfg.Epochs = 1
	cfg.Patience = 0
	return NewModel(cfg, benchDim)
}

// BenchmarkTrainEpoch measures one full training epoch: 2048 samples in
// batches of 64, q-error loss, Adam updates.
func BenchmarkTrainEpoch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	train := benchSamples(rng, 2048)
	m := benchModel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Train(train, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictBatch measures the allocation profile of batched
// inference: 256 pairs per call on a fixed model.
func BenchmarkPredictBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	pairs := benchSamples(rng, 256)
	m := benchModel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictBatch(pairs)
	}
}

// BenchmarkPredictShared measures the factorized serving path: 64 unique
// sets probed all-pairs (4096 head evaluations) with one set-module pass.
func BenchmarkPredictShared(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	sets := make([][][]float64, 64)
	for i := range sets {
		sets[i] = randSet(rng, benchDim, 1+i%3)
	}
	var pairs [][2]int
	for i := range sets {
		for j := range sets {
			pairs = append(pairs, [2]int{i, j})
		}
	}
	m := benchModel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictShared(sets, pairs)
	}
}
