// Package crn implements the paper's primary contribution: the Containment
// Rate Network (§3.2), a specialized deep-learning model that estimates the
// containment rate Q1 ⊂% Q2 of two queries over a specific database.
//
// The model runs in three stages:
//
//  1. each query is converted to a set of feature vectors (package feature);
//  2. each set is compressed to one representative vector by its own
//     one-layer set module MLPi with average pooling (§3.2.2):
//     Qvec_i = 1/|V_i| Σ ReLU(v·U_i + b_i);
//  3. the two representative vectors are combined by
//     Expand(v1,v2) = [v1, v2, |v1−v2|, v1⊙v2] and passed through the
//     two-layer head MLPout with a Sigmoid output in [0,1] (§3.2.3).
//
// Note on ⊙: the paper's text calls it the dot product, but the declared
// head input size 4H requires the elementwise product (the dimensions only
// work out that way); this is also the standard Expand used by siamese
// heads, so we implement the elementwise product.
//
// Training minimizes the mean q-error of predicted containment rates with
// Adam and early stopping on a validation split (§3.2.4, §3.3).
//
// Performance: the training loop and every serving entry point run on
// nn.Workspace scratch arenas — one warmed buffer set per batch shape, so
// the steady state allocates nothing per batch (see the package nn docs for
// the workspace contract). Serving additionally offers a RepCache that
// memoizes set-module representations by canonical query key across
// requests; see RepCache for its invalidation semantics. Optimized and
// unoptimized paths are numerically pinned to each other by the tests in
// equivalence_test.go.
package crn

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
	"time"

	"crn/internal/metrics"
	"crn/internal/nn"
)

// ErrDimMismatch is the sentinel for feature-dimension disagreements: a
// serialized model is bound to the featurization (schema one-hots, column
// statistics) it was trained with, and re-binding it to a database with a
// different vector dimension L is an error callers can match with errors.Is.
var ErrDimMismatch = errors.New("crn: model dimension mismatch")

// Config collects the model and training hyperparameters. The paper's
// defaults (§3.5: H=512, batch 128, learning rate 0.001) are scaled down by
// DefaultConfig to fit this repository's smaller synthetic database; both
// are valid settings of the same model.
type Config struct {
	Hidden    int     // H, the shared hidden width of all modules (§3.4)
	LR        float64 // Adam learning rate
	BatchSize int
	Epochs    int     // maximum epochs; early stopping may end sooner
	Patience  int     // early-stopping patience in epochs (0 disables)
	Seed      int64   // weight init and batch shuffling seed
	Loss      string  // "q-error" (paper default), "mse" or "mae"
	RateFloor float64 // clamp for rates inside the q-error loss
	// LRDecay, when in (0,1), multiplies the learning rate once validation
	// has not improved for Patience/2 epochs (reduce-on-plateau), helping
	// the small-budget training escape plateaus the paper's 120-epoch runs
	// ride out.
	LRDecay float64
}

// DefaultConfig returns the repository-scale defaults.
func DefaultConfig() Config {
	return Config{
		Hidden:    64,
		LR:        0.001,
		BatchSize: 64,
		Epochs:    60,
		Patience:  10,
		Seed:      1,
		Loss:      "q-error",
		RateFloor: 1e-3,
		LRDecay:   0.3,
	}
}

// PaperConfig returns the paper's full-scale hyperparameters (§3.5).
func PaperConfig() Config {
	c := DefaultConfig()
	c.Hidden = 512
	c.BatchSize = 128
	c.Epochs = 120
	return c
}

// Sample is one training pair: the feature-vector sets of both queries and
// the true containment rate Q1 ⊂% Q2 as a fraction in [0,1].
type Sample struct {
	V1, V2 [][]float64
	Rate   float64
}

// EpochStats records one training epoch for the convergence and
// hyperparameter experiments (Figures 3 and 4).
type EpochStats struct {
	Epoch     int
	TrainLoss float64
	ValQError float64 // mean q-error on the validation set
	Duration  time.Duration
}

// Model is a trained (or initialized) CRN.
type Model struct {
	cfg Config
	dim int // feature vector dimension L

	enc1, enc2 *nn.SetEncoder // MLP1, MLP2
	out1, out2 *nn.Dense      // MLPout's two layers: 4H->2H, 2H->1

	// wsFree recycles prediction workspaces across calls. Unlike a
	// sync.Pool it is never cleared by the garbage collector, so the
	// steady-state serving loop keeps its warmed arenas for the model's
	// whole lifetime; the channel bounds how many arenas idle concurrency
	// can strand.
	wsFree chan *nn.Workspace

	// foldCache memoizes the folded pair-head weights (see headFold):
	// they depend only on the frozen trained weights, so serving computes
	// them once per model instead of once per request. Training invalidates
	// the fold (weights mutate); the pointer swap makes the invalidation
	// safe against concurrent readers, which keep their loaded fold.
	foldCache atomic.Pointer[headFold]
}

// NewModel initializes an untrained CRN for feature dimension dim.
func NewModel(cfg Config, dim int) *Model {
	if cfg.Hidden <= 0 {
		panic("crn: Hidden must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	h := cfg.Hidden
	return &Model{
		cfg:    cfg,
		dim:    dim,
		enc1:   nn.NewSetEncoder(rng, dim, h),
		enc2:   nn.NewSetEncoder(rng, dim, h),
		out1:   nn.NewDense(rng, 4*h, 2*h),
		out2:   nn.NewDense(rng, 2*h, 1),
		wsFree: make(chan *nn.Workspace, 8),
	}
}

// getWS borrows a workspace from the model's free list (or creates one).
func (m *Model) getWS() *nn.Workspace {
	select {
	case ws := <-m.wsFree:
		return ws
	default:
		return nn.NewWorkspace()
	}
}

// putWS resets a workspace and returns it to the free list; surplus
// workspaces beyond the list's capacity are dropped for the GC.
func (m *Model) putWS(ws *nn.Workspace) {
	ws.Reset()
	select {
	case m.wsFree <- ws:
	default:
	}
}

// Config returns the model's configuration.
func (m *Model) Config() Config { return m.cfg }

// Dim returns the expected feature vector dimension L.
func (m *Model) Dim() int { return m.dim }

// Params returns all trainable tensors: U1, b1, U2, b2, Uout1, bout1,
// Uout2, bout2 (§3.5.3).
func (m *Model) Params() []*nn.Param {
	var out []*nn.Param
	out = append(out, m.enc1.Params()...)
	out = append(out, m.enc2.Params()...)
	out = append(out, m.out1.Params()...)
	out = append(out, m.out2.Params()...)
	return out
}

// NumParams returns the scalar parameter count; for hidden width H and
// input width L it equals 2·L·H + 8·H² + 6·H + 1 + (2H + ... biases), the
// paper's §3.5.3 accounting.
func (m *Model) NumParams() int { return nn.NumParams(m.Params()) }

// forwardCache holds intermediates of one forward pass for backprop. All
// matrices are workspace-backed when a workspace is supplied, so a training
// loop reuses one buffer set per batch shape.
type forwardCache struct {
	b1, b2           nn.SetBatch
	h1, h2           *nn.Matrix // per-element hidden activations
	q1, q2           *nn.Matrix // pooled representative vectors
	expanded         *nn.Matrix // n×4H
	a1               *nn.Matrix // ReLU(out1) activations
	preSig, sigmoids *nn.Matrix
}

// buildSideBatch concatenates one side of the pairs straight into a
// workspace-backed SetBatch, with no intermediate [][][]float64 staging.
func buildSideBatch(ws *nn.Workspace, pairs []Sample, second bool, dim int) nn.SetBatch {
	side := func(p Sample) [][]float64 {
		if second {
			return p.V2
		}
		return p.V1
	}
	total := 0
	for _, p := range pairs {
		total += len(side(p))
	}
	x := ws.Take(total, dim)
	offsets := ws.TakeInts(len(pairs) + 1)
	row := 0
	for i, p := range pairs {
		offsets[i] = row
		for _, v := range side(p) {
			dst := x.Row(row)
			// Zero-pad short vectors so recycled storage cannot leak a
			// previous batch's values into the tail.
			for n := copy(dst, v); n < len(dst); n++ {
				dst[n] = 0
			}
			row++
		}
	}
	offsets[len(pairs)] = row
	return nn.SetBatch{X: x, Offsets: offsets}
}

// forward runs the three CRN stages over a batch of pairs, writing every
// intermediate into ws (nil ws allocates) and reusing the cache struct.
func (m *Model) forward(ws *nn.Workspace, pairs []Sample, c *forwardCache) *forwardCache {
	if c == nil {
		c = &forwardCache{}
	}
	n := len(pairs)
	c.b1 = buildSideBatch(ws, pairs, false, m.dim)
	c.b2 = buildSideBatch(ws, pairs, true, m.dim)
	c.q1, c.h1 = m.enc1.ForwardWS(ws, c.b1)
	c.q2, c.h2 = m.enc2.ForwardWS(ws, c.b2)

	h := m.cfg.Hidden
	c.expanded = ws.Take(n, 4*h)
	for i := 0; i < n; i++ {
		r1, r2 := c.q1.Row(i), c.q2.Row(i)
		dst := c.expanded.Row(i)
		for j := 0; j < h; j++ {
			dst[j] = r1[j]
			dst[h+j] = r2[j]
			dst[2*h+j] = math.Abs(r1[j] - r2[j])
			dst[3*h+j] = r1[j] * r2[j]
		}
	}
	c.a1 = m.out1.ForwardReLU(ws, c.expanded)
	c.preSig = m.out2.ForwardWS(ws, c.a1)
	c.sigmoids = nn.SigmoidForwardWS(ws, c.preSig)
	return c
}

// backward propagates the loss gradient dOut (n×1, w.r.t. the sigmoid
// outputs) and accumulates parameter gradients. The set encoders are the
// first layer, so no input gradients are materialized anywhere.
func (m *Model) backward(ws *nn.Workspace, c *forwardCache, dOut *nn.Matrix) {
	dPre := nn.SigmoidBackwardWS(ws, dOut, c.sigmoids)
	dA1 := m.out2.BackwardWS(ws, c.a1, dPre, true)
	dExp := m.out1.BackwardReLU(ws, c.expanded, c.a1, dA1, true)

	h := m.cfg.Hidden
	n := dExp.Rows
	dQ1 := ws.Take(n, h)
	dQ2 := ws.Take(n, h)
	for i := 0; i < n; i++ {
		r1, r2 := c.q1.Row(i), c.q2.Row(i)
		src := dExp.Row(i)
		d1, d2 := dQ1.Row(i), dQ2.Row(i)
		for j := 0; j < h; j++ {
			sign := 0.0
			if diff := r1[j] - r2[j]; diff > 0 {
				sign = 1
			} else if diff < 0 {
				sign = -1
			}
			d1[j] = src[j] + sign*src[2*h+j] + r2[j]*src[3*h+j]
			d2[j] = src[h+j] - sign*src[2*h+j] + r1[j]*src[3*h+j]
		}
	}
	m.enc1.BackwardWS(ws, c.b1, c.h1, dQ1)
	m.enc2.BackwardWS(ws, c.b2, c.h2, dQ2)
}

// Predict estimates the containment rate of one encoded pair in [0,1].
func (m *Model) Predict(v1, v2 [][]float64) float64 {
	var out [1]float64
	m.PredictBatchInto(out[:], []Sample{{V1: v1, V2: v2}})
	return out[0]
}

// PredictBatch estimates containment rates for a batch of encoded pairs.
// It is safe for concurrent use on a trained model.
func (m *Model) PredictBatch(pairs []Sample) []float64 {
	out := make([]float64, len(pairs))
	m.PredictBatchInto(out, pairs)
	return out
}

// PredictBatchInto is PredictBatch writing into a caller-owned slice
// (len(dst) must be ≥ len(pairs)). The forward pass runs on a pooled
// workspace, so steady-state batched inference allocates nothing.
func (m *Model) PredictBatchInto(dst []float64, pairs []Sample) {
	ws := m.getWS()
	defer m.putWS(ws) // deferred so a shape-check panic cannot strand the arena
	var c forwardCache
	m.forward(ws, pairs, &c)
	copy(dst, c.sigmoids.Data)
}

// EncodeSets runs both set modules (MLP1, MLP2) once over a list of unique
// feature-vector sets, returning one representative vector per set and per
// module. Together with PredictPairsFrom it factors the forward pass so a
// query recurring in many pairs — every pool entry does, twice per probe —
// is pushed through the set modules once per batch instead of once per pair.
// Safe for concurrent use on a trained model.
func (m *Model) EncodeSets(sets [][][]float64) (reps1, reps2 *nn.Matrix) {
	return m.EncodeSetsWS(nil, sets)
}

// EncodeSetsWS is EncodeSets with workspace-backed storage: the returned
// matrices live in ws and are valid until its next Reset.
func (m *Model) EncodeSetsWS(ws *nn.Workspace, sets [][][]float64) (reps1, reps2 *nn.Matrix) {
	b := nn.BuildSetBatchWS(ws, sets, m.dim)
	reps1, _ = m.enc1.ForwardWS(ws, b)
	reps2, _ = m.enc2.ForwardWS(ws, b)
	return reps1, reps2
}

// headFold is the pair-head weight layout precomputed for serving: MLPout's
// first weight matrix split into its four H-row blocks W1..W4 with the
// per-side blocks folded (W1+W3, W2+W3 — see PairPredictor for the
// factorization). The fold depends only on the trained weights, so it is
// computed once per model (headFold on Model) and shared by every predictor
// and every cached partial product; w3/w4/b1/w2 are views into the live
// parameter storage, valid while the weights stay frozen (training
// invalidates the fold).
type headFold struct {
	h        int
	w13, w23 *nn.Matrix // H×2H folded per-side weights: W1+W3, W2+W3
	w3, w4   []float64  // raw W3 and W4 blocks (views)
	b1, w2   []float64  // first-layer bias, second-layer weights (views)
	b2       float64
}

// headFold returns the memoized folded head weights, computing them on
// first use. Concurrent first calls may both compute; the CAS keeps one
// winner and both results are bit-identical (same frozen weights, same
// deterministic arithmetic).
func (m *Model) headFold() *headFold {
	if f := m.foldCache.Load(); f != nil {
		return f
	}
	h := m.cfg.Hidden
	cols := 2 * h
	w1 := m.out1.W.W // 4H×2H, row-major
	f := &headFold{
		h:   h,
		w13: nn.NewMatrix(h, cols),
		w23: nn.NewMatrix(h, cols),
		w3:  w1[2*h*cols : 3*h*cols],
		w4:  w1[3*h*cols : 4*h*cols],
		b1:  m.out1.B.W,
		w2:  m.out2.W.W,
		b2:  m.out2.B.W[0],
	}
	for i := range f.w13.Data {
		f.w13.Data[i] = w1[i] + f.w3[i]
		f.w23.Data[i] = w1[h*cols+i] + f.w3[i]
	}
	m.foldCache.CompareAndSwap(nil, f)
	if g := m.foldCache.Load(); g != nil {
		return g
	}
	// An invalidation raced between the CAS and the re-load; the locally
	// built fold is still a consistent snapshot, so serve with it rather
	// than hand the caller a nil.
	return f
}

// invalidateHeadFold discards the memoized fold; called whenever the
// weights are about to change (training) or have just changed (best-weight
// restore), so serving after training refolds from the new weights.
func (m *Model) invalidateHeadFold() { m.foldCache.Store(nil) }

// PairPredictor is the precomputed serving head for one batch of
// representations: the per-representation partial products of the factorized
// Expand layer, built once and shared across every (possibly concurrent)
// pair-chunk evaluation. Safe for concurrent Predict calls.
//
// The head input Expand(v1,v2) = [v1, v2, |v1−v2|, v1⊙v2] splits MLPout's
// first weight matrix into four H-row blocks W1..W4. With the identity
// |a−b| = a+b−2·min(a,b), the pre-activation becomes
//
//	v1·(W1+W3) + v2·(W2+W3) + Σ_k (v1⊙v2)[k]·W4[k] − 2·min(v1,v2)[k]·W3[k]
//
// where the per-pair sum runs only over coordinates nonzero in BOTH
// representations (the set modules pool ReLU outputs, so representations
// are non-negative and min(a,0) = 0 = a·0). The first two terms depend on
// one representation each and are precomputed, then reused across every
// pair that mentions the representation — the queries-pool scan of a
// 64-probe batch mentions each pool entry up to 128 times, so per pair only
// the sparse intersection term remains.
//
// Rows come from up to two sources: an optional resident base (the cache's
// pool-resident precompute, rows [0, baseRows)) and the request-local extra
// matrices (rows from baseRows up). The optional rowOf table translates
// pair indices first, letting the serving path address cached rows in
// place with no per-request copying.
type PairPredictor struct {
	f        *headFold
	baseRows int
	// resident base rows (nil matrices when baseRows == 0).
	bR1, bR2, bP1, bP2 *nn.Matrix
	// request-local rows.
	reps1, reps2 *nn.Matrix
	p1, p2       *nn.Matrix // reps1·(W1+W3), reps2·(W2+W3)
	// rowOf, when non-nil, maps pair indices to row indices.
	rowOf []int
}

// NewPairPredictor precomputes the per-side partial products for the given
// representations (reps1 through MLP1, reps2 through MLP2 — the two outputs
// of EncodeSets), using the model's memoized weight fold.
func (m *Model) NewPairPredictor(reps1, reps2 *nn.Matrix) *PairPredictor {
	return m.NewPairPredictorWS(nil, reps1, reps2)
}

// NewPairPredictorWS is NewPairPredictor with the partial products taken
// from ws; the predictor is then valid until the workspace's next Reset.
func (m *Model) NewPairPredictorWS(ws *nn.Workspace, reps1, reps2 *nn.Matrix) *PairPredictor {
	f := m.headFold()
	cols := 2 * f.h
	p1 := ws.Take(reps1.Rows, cols)
	nn.MatMul(p1, reps1, f.w13)
	p2 := ws.Take(reps2.Rows, cols)
	nn.MatMul(p2, reps2, f.w23)
	return &PairPredictor{
		f:     f,
		reps1: reps1, reps2: reps2,
		p1: p1, p2: p2,
	}
}

// rows1 resolves row i of the MLP1 side against the base/extra split.
func (p *PairPredictor) rows1(i int) (rep, pp []float64) {
	if i < p.baseRows {
		return p.bR1.Row(i), p.bP1.Row(i)
	}
	i -= p.baseRows
	return p.reps1.Row(i), p.p1.Row(i)
}

// rows2 resolves row i of the MLP2 side against the base/extra split.
func (p *PairPredictor) rows2(i int) (rep, pp []float64) {
	if i < p.baseRows {
		return p.bR2.Row(i), p.bP2.Row(i)
	}
	i -= p.baseRows
	return p.reps2.Row(i), p.p2.Row(i)
}

// Predict evaluates the head for each pair (i, j) of representation
// indices. Safe for concurrent use; results are bit-identical across chunk
// boundaries and batch compositions.
func (p *PairPredictor) Predict(pairs [][2]int) []float64 {
	out := make([]float64, len(pairs))
	p.PredictInto(out, pairs, nil)
	return out
}

// PredictInto is Predict writing into a caller-owned slice (len(dst) must
// be ≥ len(pairs)) with workspace-backed scratch, so concurrent chunk
// evaluations stay allocation-free: give each goroutine its own workspace.
func (p *PairPredictor) PredictInto(dst []float64, pairs [][2]int, ws *nn.Workspace) {
	h := p.f.h
	cols := 2 * h
	out := dst[:len(pairs)]
	z := ws.Take(1, cols).Data
	for i, pair := range pairs {
		i1, i2 := pair[0], pair[1]
		if p.rowOf != nil {
			i1, i2 = p.rowOf[i1], p.rowOf[i2]
		}
		r1, q1 := p.rows1(i1)
		r2, q2 := p.rows2(i2)
		q1 = q1[:cols]
		q2 = q2[:cols]
		zz := z[:cols]
		for j := range zz {
			zz[j] = q1[j] + q2[j]
		}
		for k := 0; k < h; k++ {
			a, b := r1[k], r2[k]
			if a == 0 || b == 0 {
				continue
			}
			mn := a
			if b < a {
				mn = b
			}
			mn *= -2
			pr := a * b
			// This is the serving hot loop (every pair pays it h times);
			// nn.Axpy2 routes it through the dispatched kernel set, so it
			// vectorizes with the rest of the model on AVX2 hosts.
			nn.Axpy2(zz, p.f.w3[k*cols:(k+1)*cols], p.f.w4[k*cols:(k+1)*cols], mn, pr)
		}
		// Bias, ReLU, second layer, sigmoid — scalar output per pair, with
		// the hidden-layer contraction fused in one dispatched pass.
		s := p.f.b2 + nn.BiasReLUDot(zz, p.f.b1, p.f.w2)
		out[i] = 1 / (1 + math.Exp(-s))
	}
}

// PredictPairsFrom evaluates the CRN head for each pair of precomputed
// representative vectors; see PairPredictor for the factorization. All
// estimation paths — single and batch — share this routine, so their
// results are bit-identical.
func (m *Model) PredictPairsFrom(reps1, reps2 *nn.Matrix, pairs [][2]int) []float64 {
	return m.NewPairPredictor(reps1, reps2).Predict(pairs)
}

// PredictShared estimates rates for pairs expressed as indices into a list
// of unique query encodings: one set-module pass over the unique sets, one
// matrix-batched head pass over the pairs.
func (m *Model) PredictShared(sets [][][]float64, pairs [][2]int) []float64 {
	reps1, reps2 := m.EncodeSets(sets)
	return m.PredictPairsFrom(reps1, reps2, pairs)
}

// Train fits the model on train, early-stopping on val, and returns the
// per-epoch statistics. progress, if non-nil, is invoked after every epoch.
func (m *Model) Train(train, val []Sample, progress func(EpochStats)) ([]EpochStats, error) {
	return m.TrainCtx(context.Background(), train, val, progress)
}

// TrainCtx is Train with cancellation: the context is checked before every
// epoch, so cancel/deadline aborts between epochs with the context's error
// (and the per-epoch statistics accumulated so far). The best weights seen
// before cancellation are NOT restored — an aborted training is an error,
// not a usable model.
func (m *Model) TrainCtx(ctx context.Context, train, val []Sample, progress func(EpochStats)) ([]EpochStats, error) {
	if len(train) == 0 {
		return nil, fmt.Errorf("crn: empty training set")
	}
	// Weights are about to mutate: drop the serving-side weight fold now and
	// again on exit, so predictors built after training refold from the
	// final (possibly restored-best) weights.
	m.invalidateHeadFold()
	defer m.invalidateHeadFold()
	loss := m.lossFn()
	opt := nn.NewAdam(m.cfg.LR)
	rng := rand.New(rand.NewSource(m.cfg.Seed + 1))
	stopper := &nn.EarlyStopper{Patience: m.cfg.Patience}

	// One workspace and one staging buffer set serve every batch of the
	// run: after the first epoch the inner loop is allocation-free apart
	// from the loss gradient. The workspace comes from the model's free
	// list, so repeated training runs (and the interleaved validation
	// predictions) reuse the same warmed arenas.
	ws := m.getWS()
	defer m.putWS(ws)
	var fc forwardCache
	batch := make([]Sample, 0, m.cfg.BatchSize)
	targets := make([]float64, 0, m.cfg.BatchSize)

	best := snapshotParams(m.Params())
	bestVal := math.Inf(1)
	badStreak := 0
	var stats []EpochStats
	for epoch := 1; epoch <= m.cfg.Epochs; epoch++ {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		start := time.Now()
		perm := nn.Shuffle(rng, len(train))
		var totalLoss float64
		var batches int
		for _, idx := range nn.Batches(perm, m.cfg.BatchSize) {
			batch = batch[:0]
			targets = targets[:0]
			for _, j := range idx {
				batch = append(batch, train[j])
				targets = append(targets, train[j].Rate)
			}
			ws.Reset()
			c := m.forward(ws, batch, &fc)
			l, grad := loss.Eval(c.sigmoids.Data, targets)
			totalLoss += l
			batches++
			dOut := &nn.Matrix{Rows: len(batch), Cols: 1, Data: grad}
			m.backward(ws, c, dOut)
			opt.Step(m.Params())
		}
		valErr := m.ValidationQError(val)
		st := EpochStats{
			Epoch:     epoch,
			TrainLoss: totalLoss / float64(batches),
			ValQError: valErr,
			Duration:  time.Since(start),
		}
		stats = append(stats, st)
		if progress != nil {
			progress(st)
		}
		if len(val) > 0 && m.cfg.Patience > 0 {
			if valErr < bestVal {
				bestVal = valErr
				best = snapshotParamsInto(best, m.Params())
				badStreak = 0
			} else {
				badStreak++
				if m.cfg.LRDecay > 0 && m.cfg.LRDecay < 1 && badStreak == m.cfg.Patience/2 {
					opt.LR *= m.cfg.LRDecay
				}
			}
			if stopper.Observe(epoch, valErr) {
				break
			}
		}
	}
	if len(val) > 0 && m.cfg.Patience > 0 {
		if err := restoreParams(m.Params(), best); err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// ContinueTraining applies additional training epochs starting from the
// model's current weights — the paper's §9 "Database updates" second
// approach ("incrementally train the model starting from its current state,
// by applying new updated training samples, instead of re-training from
// scratch"). The optimizer restarts but the learned weights persist, so a
// modest number of epochs adapts the model to a drifted database.
//
// Fine-tuning on a small adaptation set usually wants a reduced learning
// rate (SetLR): the full training rate lets a few hundred fresh samples
// drag well-fit weights far from the bulk of what the model knows.
func (m *Model) ContinueTraining(train, val []Sample, epochs int, progress func(EpochStats)) ([]EpochStats, error) {
	if epochs <= 0 {
		return nil, fmt.Errorf("crn: epochs must be positive")
	}
	saved := m.cfg
	m.cfg.Epochs = epochs
	defer func() { m.cfg = saved }()
	return m.Train(train, val, progress)
}

// SetLR overrides the learning rate used by subsequent training runs
// (non-positive values are ignored). Incremental fine-tuning typically
// scales the original rate down by 4-10x.
func (m *Model) SetLR(lr float64) {
	if lr > 0 {
		m.cfg.LR = lr
	}
}

// LR returns the configured learning rate.
func (m *Model) LR() float64 { return m.cfg.LR }

// ValidationQError computes the mean q-error of predictions over a sample
// set, the validation metric of §3.3 (Figures 3 and 4). It runs once per
// training epoch, so its prediction buffer comes from the model's workspace
// free list rather than the allocator: the buffer workspace is held across
// chunks (no Reset until the return), while each PredictBatchInto borrows
// its own arena — steady-state validation allocates nothing.
func (m *Model) ValidationQError(val []Sample) float64 {
	if len(val) == 0 {
		return math.NaN()
	}
	const chunk = 512
	ws := m.getWS()
	defer m.putWS(ws)
	preds := ws.Take(1, chunk).Data
	var sum float64
	for lo := 0; lo < len(val); lo += chunk {
		hi := lo + chunk
		if hi > len(val) {
			hi = len(val)
		}
		m.PredictBatchInto(preds[:hi-lo], val[lo:hi])
		for i, p := range preds[:hi-lo] {
			sum += metrics.QError(val[lo+i].Rate, p, m.rateFloor())
		}
	}
	return sum / float64(len(val))
}

func (m *Model) rateFloor() float64 {
	if m.cfg.RateFloor > 0 {
		return m.cfg.RateFloor
	}
	return 1e-3
}

func (m *Model) lossFn() nn.Loss {
	switch m.cfg.Loss {
	case "mse":
		return nn.MSELoss{}
	case "mae":
		return nn.MAELoss{}
	default:
		return nn.QErrorLoss{Floor: m.rateFloor()}
	}
}

func snapshotParams(params []*nn.Param) []nn.ParamSnapshot {
	return snapshotParamsInto(nil, params)
}

// snapshotParamsInto reuses a previous snapshot's buffers, so tracking the
// best weights across epochs allocates only on the first improvement.
func snapshotParamsInto(snaps []nn.ParamSnapshot, params []*nn.Param) []nn.ParamSnapshot {
	if len(snaps) != len(params) {
		snaps = make([]nn.ParamSnapshot, len(params))
	}
	for i, p := range params {
		snaps[i] = p.SnapshotInto(snaps[i])
	}
	return snaps
}

func restoreParams(params []*nn.Param, snaps []nn.ParamSnapshot) error {
	if len(params) != len(snaps) {
		return fmt.Errorf("crn: snapshot mismatch")
	}
	for i, p := range params {
		if err := p.Restore(snaps[i]); err != nil {
			return err
		}
	}
	return nil
}

// modelBlob is the gob wire format of a serialized model.
type modelBlob struct {
	Cfg    Config
	Dim    int
	Params []byte
}

// Save serializes the model (configuration and weights) with encoding/gob;
// the paper reports ~1.5MB for the full-scale model (§3.5.3).
func (m *Model) Save() ([]byte, error) {
	params, err := nn.EncodeParams(m.Params())
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(modelBlob{Cfg: m.cfg, Dim: m.dim, Params: params}); err != nil {
		return nil, fmt.Errorf("crn: save: %w", err)
	}
	return buf.Bytes(), nil
}

// Load reconstructs a model serialized by Save.
func Load(data []byte) (*Model, error) {
	var blob modelBlob
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&blob); err != nil {
		return nil, fmt.Errorf("crn: load: %w", err)
	}
	m := NewModel(blob.Cfg, blob.Dim)
	if err := nn.DecodeParams(blob.Params, m.Params()); err != nil {
		return nil, err
	}
	return m, nil
}
