package crn

import (
	"math"
	"math/rand"
	"testing"

	"crn/internal/nn"
)

func randSet(rng *rand.Rand, dim, n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.Float64()
		}
		out[i] = v
	}
	return out
}

func TestNumParamsMatchesPaperFormula(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hidden = 16
	const dim = 10
	m := NewModel(cfg, dim)
	h, l := cfg.Hidden, dim
	// §3.5.3: 2·L·H + 8·H² + 6·H + 1 counts U1,U2 (2LH), Uout1 (4H·2H=8H²),
	// Uout2 (2H), b1+b2 (2H), bout1 (2H), bout2 (1).
	want := 2*l*h + 8*h*h + 6*h + 1
	if got := m.NumParams(); got != want {
		t.Errorf("NumParams = %d, want %d (paper formula)", got, want)
	}
}

func TestPredictInUnitInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := DefaultConfig()
	cfg.Hidden = 8
	m := NewModel(cfg, 12)
	for i := 0; i < 50; i++ {
		p := m.Predict(randSet(rng, 12, 1+rng.Intn(5)), randSet(rng, 12, 1+rng.Intn(5)))
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("prediction out of [0,1]: %v", p)
		}
	}
}

func TestPredictDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := DefaultConfig()
	cfg.Hidden = 8
	m := NewModel(cfg, 6)
	v1 := randSet(rng, 6, 3)
	v2 := randSet(rng, 6, 2)
	a := m.Predict(v1, v2)
	b := m.Predict(v1, v2)
	if a != b {
		t.Errorf("prediction not deterministic: %v vs %v", a, b)
	}
}

// Full-model gradient check: compare backprop gradients with central
// differences on a tiny CRN under the MSE loss (smooth, so numeric
// differences are reliable).
func TestModelGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := DefaultConfig()
	cfg.Hidden = 4
	cfg.Loss = "mse"
	const dim = 5
	m := NewModel(cfg, dim)
	pairs := []Sample{
		{V1: randSet(rng, dim, 2), V2: randSet(rng, dim, 3), Rate: 0.4},
		{V1: randSet(rng, dim, 1), V2: randSet(rng, dim, 1), Rate: 0.9},
	}
	targets := []float64{pairs[0].Rate, pairs[1].Rate}
	loss := nn.MSELoss{}

	forward := func() float64 {
		c := m.forward(nil, pairs, nil)
		l, _ := loss.Eval(c.sigmoids.Data, targets)
		return l
	}
	c := m.forward(nil, pairs, nil)
	_, grad := loss.Eval(c.sigmoids.Data, targets)
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
	m.backward(nil, c, &nn.Matrix{Rows: len(pairs), Cols: 1, Data: grad})

	const h = 1e-6
	for pi, p := range m.Params() {
		for i := range p.W {
			orig := p.W[i]
			p.W[i] = orig + h
			fp := forward()
			p.W[i] = orig - h
			fm := forward()
			p.W[i] = orig
			num := (fp - fm) / (2 * h)
			if diff := math.Abs(num - p.Grad[i]); diff > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("param %d[%d]: analytic %v numeric %v", pi, i, p.Grad[i], num)
			}
		}
	}
}

// A tiny learnable task: rate is 1 when the two sets share their single
// active feature, else 0. The model must fit it to low training error.
func TestTrainLearnsSyntheticRule(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const dim = 8
	mkSample := func() Sample {
		i := rng.Intn(dim)
		j := rng.Intn(dim)
		v1 := make([]float64, dim)
		v2 := make([]float64, dim)
		v1[i] = 1
		v2[j] = 1
		rate := 0.05
		if i == j {
			rate = 0.95
		}
		return Sample{V1: [][]float64{v1}, V2: [][]float64{v2}, Rate: rate}
	}
	var train, val []Sample
	for i := 0; i < 600; i++ {
		train = append(train, mkSample())
	}
	for i := 0; i < 100; i++ {
		val = append(val, mkSample())
	}
	cfg := DefaultConfig()
	cfg.Hidden = 16
	cfg.Epochs = 40
	cfg.Patience = 40
	m := NewModel(cfg, dim)
	stats, err := m.Train(train, val, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) == 0 {
		t.Fatal("no epochs recorded")
	}
	final := m.ValidationQError(val)
	if final > 3 {
		t.Errorf("validation mean q-error after training = %v, want < 3", final)
	}
	// Loss should broadly decrease.
	if stats[len(stats)-1].TrainLoss >= stats[0].TrainLoss {
		t.Errorf("training loss did not decrease: %v -> %v", stats[0].TrainLoss, stats[len(stats)-1].TrainLoss)
	}
}

func TestTrainEmptySetFails(t *testing.T) {
	m := NewModel(DefaultConfig(), 4)
	if _, err := m.Train(nil, nil, nil); err == nil {
		t.Error("empty training set should fail")
	}
}

func TestEarlyStoppingTriggers(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const dim = 4
	mk := func() Sample {
		return Sample{V1: randSet(rng, dim, 1), V2: randSet(rng, dim, 1), Rate: rng.Float64()}
	}
	var train, val []Sample
	for i := 0; i < 50; i++ {
		train = append(train, mk())
	}
	for i := 0; i < 20; i++ {
		val = append(val, mk())
	}
	cfg := DefaultConfig()
	cfg.Hidden = 4
	cfg.Epochs = 100
	cfg.Patience = 3
	m := NewModel(cfg, dim)
	stats, err := m.Train(train, val, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Random targets: validation error cannot keep improving for 100 epochs.
	if len(stats) == 100 {
		t.Log("warning: early stopping never triggered on noise (possible but unlikely)")
	}
}

func TestProgressCallback(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const dim = 4
	var train []Sample
	for i := 0; i < 30; i++ {
		train = append(train, Sample{V1: randSet(rng, dim, 1), V2: randSet(rng, dim, 1), Rate: 0.5})
	}
	cfg := DefaultConfig()
	cfg.Hidden = 4
	cfg.Epochs = 3
	cfg.Patience = 0
	m := NewModel(cfg, dim)
	var calls int
	if _, err := m.Train(train, nil, func(EpochStats) { calls++ }); err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Errorf("progress callback calls = %d, want 3", calls)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	cfg := DefaultConfig()
	cfg.Hidden = 8
	const dim = 6
	m := NewModel(cfg, dim)
	v1 := randSet(rng, dim, 2)
	v2 := randSet(rng, dim, 3)
	want := m.Predict(v1, v2)

	data, err := m.Save()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Load(data)
	if err != nil {
		t.Fatal(err)
	}
	if got := m2.Predict(v1, v2); got != want {
		t.Errorf("loaded model predicts %v, want %v", got, want)
	}
	if m2.Dim() != dim || m2.Config().Hidden != cfg.Hidden {
		t.Error("loaded model metadata mismatch")
	}
	if _, err := Load([]byte("junk")); err == nil {
		t.Error("corrupt blob should fail")
	}
}

func TestValidationQErrorEmpty(t *testing.T) {
	m := NewModel(DefaultConfig(), 4)
	if v := m.ValidationQError(nil); !math.IsNaN(v) {
		t.Errorf("empty validation should be NaN, got %v", v)
	}
}

func TestLossSelection(t *testing.T) {
	for _, name := range []string{"q-error", "mse", "mae"} {
		cfg := DefaultConfig()
		cfg.Loss = name
		m := NewModel(cfg, 4)
		if m.lossFn() == nil {
			t.Fatalf("no loss for %q", name)
		}
	}
}

// Incremental training (§9 "Database updates"): after the underlying data
// drifts, a few continued epochs adapt the model without retraining from
// scratch — validation error on the drifted labels must improve.
func TestContinueTrainingAdaptsToDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	const dim = 8
	mk := func(flip bool) Sample {
		i := rng.Intn(dim)
		j := rng.Intn(dim)
		v1 := make([]float64, dim)
		v2 := make([]float64, dim)
		v1[i] = 1
		v2[j] = 1
		rate := 0.05
		match := i == j
		if flip {
			match = !match
		}
		if match {
			rate = 0.95
		}
		return Sample{V1: [][]float64{v1}, V2: [][]float64{v2}, Rate: rate}
	}
	var oldTrain, newTrain, newVal []Sample
	for i := 0; i < 500; i++ {
		oldTrain = append(oldTrain, mk(false))
		newTrain = append(newTrain, mk(true))
	}
	for i := 0; i < 100; i++ {
		newVal = append(newVal, mk(true))
	}
	cfg := DefaultConfig()
	cfg.Hidden = 16
	cfg.Epochs = 25
	cfg.Patience = 25
	m := NewModel(cfg, dim)
	if _, err := m.Train(oldTrain, nil, nil); err != nil {
		t.Fatal(err)
	}
	before := m.ValidationQError(newVal)
	if _, err := m.ContinueTraining(newTrain, newVal, 25, nil); err != nil {
		t.Fatal(err)
	}
	after := m.ValidationQError(newVal)
	if after >= before {
		t.Errorf("incremental training did not adapt: %v -> %v", before, after)
	}
	if _, err := m.ContinueTraining(newTrain, newVal, 0, nil); err == nil {
		t.Error("zero epochs should fail")
	}
	// Config restored after continuation.
	if m.Config().Epochs != cfg.Epochs {
		t.Errorf("config not restored: %d", m.Config().Epochs)
	}
}

func TestPredictBatchMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	cfg := DefaultConfig()
	cfg.Hidden = 8
	const dim = 6
	m := NewModel(cfg, dim)
	pairs := make([]Sample, 5)
	for i := range pairs {
		pairs[i] = Sample{V1: randSet(rng, dim, 1+i%3), V2: randSet(rng, dim, 1+(i+1)%3)}
	}
	batch := m.PredictBatch(pairs)
	for i, p := range pairs {
		single := m.Predict(p.V1, p.V2)
		if math.Abs(single-batch[i]) > 1e-12 {
			t.Errorf("batch[%d] = %v, single = %v", i, batch[i], single)
		}
	}
}

// TestPredictSharedMatchesReferenceForward pins the factorized serving head
// (EncodeSets + PairPredictor) to the reference training-time forward pass:
// the block-folded |a−b| = a+b−2·min identity must reproduce PredictBatch
// up to floating-point reassociation, including negative feature values
// (the ReLU set modules make the REPRESENTATIONS non-negative regardless
// of input sign — the invariant the sparse intersection skip relies on).
func TestPredictSharedMatchesReferenceForward(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cfg := DefaultConfig()
	cfg.Hidden = 16
	const dim = 14
	m := NewModel(cfg, dim)

	var sets [][][]float64
	for i := 0; i < 12; i++ {
		set := randSet(rng, dim, 1+rng.Intn(5))
		for _, v := range set {
			for j := range v {
				v[j] -= 0.5 // exercise negative inputs too
			}
		}
		sets = append(sets, set)
	}
	var pairs [][2]int
	var samples []Sample
	for a := 0; a < len(sets); a++ {
		for b := 0; b < len(sets); b++ {
			pairs = append(pairs, [2]int{a, b})
			samples = append(samples, Sample{V1: sets[a], V2: sets[b]})
		}
	}
	shared := m.PredictShared(sets, pairs)
	reference := m.PredictBatch(samples)
	for i := range shared {
		if math.Abs(shared[i]-reference[i]) > 1e-9 {
			t.Fatalf("pair %d: factorized %v != reference %v", i, shared[i], reference[i])
		}
	}
}

// TestValidationQErrorAllocFree pins the per-epoch validation metric to the
// workspace free list: after warm-up, computing it allocates nothing — its
// prediction buffer and the forward-pass arenas all come from recycled
// storage.
func TestValidationQErrorAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const dim = 6
	val := make([]Sample, 700) // spans two prediction chunks
	for i := range val {
		v1 := make([]float64, dim)
		v2 := make([]float64, dim)
		v1[rng.Intn(dim)] = 1
		v2[rng.Intn(dim)] = 1
		val[i] = Sample{V1: [][]float64{v1}, V2: [][]float64{v2}, Rate: rng.Float64()}
	}
	cfg := DefaultConfig()
	cfg.Hidden = 8
	m := NewModel(cfg, dim)
	m.ValidationQError(val) // warm the free list and grow the arenas
	m.ValidationQError(val)
	allocs := testing.AllocsPerRun(10, func() { m.ValidationQError(val) })
	if allocs > 0 {
		t.Errorf("ValidationQError allocates %.1f objects per call, want 0", allocs)
	}
}
