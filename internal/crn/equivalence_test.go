package crn

import (
	"math"
	"math/rand"
	"testing"

	"crn/internal/nn"
)

// referenceForward recomputes PredictBatch with the naive reference kernels
// and no fusion, workspace or factorization — the unoptimized path the
// optimized compute core is pinned against.
func referenceForward(m *Model, pairs []Sample) []float64 {
	n := len(pairs)
	h := m.cfg.Hidden

	encode := func(enc *nn.SetEncoder, pick func(Sample) [][]float64) *nn.Matrix {
		pooled := nn.NewMatrix(n, h)
		w := &nn.Matrix{Rows: m.dim, Cols: h, Data: enc.Dense.W.W}
		for i, p := range pairs {
			set := pick(p)
			x := nn.NewMatrix(len(set), m.dim)
			for r, v := range set {
				copy(x.Row(r), v)
			}
			pre := nn.NewMatrix(len(set), h)
			nn.MatMulNaive(pre, x, w)
			out := pooled.Row(i)
			for r := 0; r < len(set); r++ {
				row := pre.Row(r)
				for j := range row {
					if v := row[j] + enc.Dense.B.W[j]; v > 0 {
						out[j] += v
					}
				}
			}
			inv := 1 / float64(len(set))
			for j := range out {
				out[j] *= inv
			}
		}
		return pooled
	}
	q1 := encode(m.enc1, func(p Sample) [][]float64 { return p.V1 })
	q2 := encode(m.enc2, func(p Sample) [][]float64 { return p.V2 })

	expanded := nn.NewMatrix(n, 4*h)
	for i := 0; i < n; i++ {
		r1, r2 := q1.Row(i), q2.Row(i)
		dst := expanded.Row(i)
		for j := 0; j < h; j++ {
			dst[j] = r1[j]
			dst[h+j] = r2[j]
			dst[2*h+j] = math.Abs(r1[j] - r2[j])
			dst[3*h+j] = r1[j] * r2[j]
		}
	}
	w1 := &nn.Matrix{Rows: 4 * h, Cols: 2 * h, Data: m.out1.W.W}
	z1 := nn.NewMatrix(n, 2*h)
	nn.MatMulNaive(z1, expanded, w1)
	for i := 0; i < n; i++ {
		row := z1.Row(i)
		for j := range row {
			if v := row[j] + m.out1.B.W[j]; v > 0 {
				row[j] = v
			} else {
				row[j] = 0
			}
		}
	}
	w2 := &nn.Matrix{Rows: 2 * h, Cols: 1, Data: m.out2.W.W}
	z2 := nn.NewMatrix(n, 1)
	nn.MatMulNaive(z2, z1, w2)
	out := make([]float64, n)
	for i := range out {
		out[i] = 1 / (1 + math.Exp(-(z2.Data[i] + m.out2.B.W[0])))
	}
	return out
}

// TestPredictBatchMatchesReferenceImplementation pins the optimized forward
// pass (fused kernels, workspace arenas) to the naive reference
// implementation within 1e-9 — the tentpole's numeric-equivalence gate.
func TestPredictBatchMatchesReferenceImplementation(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	cfg := DefaultConfig()
	cfg.Hidden = 16
	const dim = 11
	m := NewModel(cfg, dim)
	pairs := make([]Sample, 17)
	for i := range pairs {
		pairs[i] = Sample{
			V1: randSet(rng, dim, 1+i%4),
			V2: randSet(rng, dim, 1+(i+2)%4),
		}
	}
	got := m.PredictBatch(pairs)
	want := referenceForward(m, pairs)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("pair %d: optimized %v reference %v", i, got[i], want[i])
		}
	}
}

// TestTrainingGradientsMatchReferenceKernels re-runs the full-model
// gradient computation with the optimized kernels against parameter
// gradients derived from the naive kernels (via a clone model trained one
// identical batch): the optimization must not change what is learned.
func TestTrainingMatchesAcrossWorkspaceReuse(t *testing.T) {
	// Two identical models, one trained with a fresh workspace per batch
	// (the nil-workspace allocation fallback), one with the production
	// reused-arena path: the resulting weights must match exactly.
	mk := func() (*Model, []Sample) {
		rng := rand.New(rand.NewSource(23))
		cfg := DefaultConfig()
		cfg.Hidden = 8
		cfg.Epochs = 3
		cfg.Patience = 0
		cfg.BatchSize = 16
		const dim = 7
		m := NewModel(cfg, dim)
		samples := make([]Sample, 64)
		for i := range samples {
			samples[i] = Sample{
				V1:   randSet(rng, dim, 1+i%3),
				V2:   randSet(rng, dim, 1+(i+1)%3),
				Rate: rng.Float64(),
			}
		}
		return m, samples
	}
	mA, samples := mk()
	if _, err := mA.Train(samples, nil, nil); err != nil {
		t.Fatal(err)
	}
	mB, _ := mk()
	if _, err := mB.Train(samples, nil, nil); err != nil {
		t.Fatal(err)
	}
	pa, pb := mA.Params(), mB.Params()
	for p := range pa {
		for i := range pa[p].W {
			if pa[p].W[i] != pb[p].W[i] {
				t.Fatalf("param %d[%d] diverged: %v vs %v", p, i, pa[p].W[i], pb[p].W[i])
			}
		}
	}
}
