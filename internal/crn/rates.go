package crn

import (
	"context"
	"runtime"
	"sync"

	"crn/internal/feature"
	"crn/internal/nn"
	"crn/internal/query"
)

// headChunk bounds the number of pairs per head forward pass; chunking keeps
// peak memory flat on large batches and gives cancellation checks a
// bounded-latency hook between passes.
const headChunk = 2048

// Rates adapts a trained Model and a feature Encoder to the query-level
// containment-rate interface used by the cardinality technique. Each batch
// call runs the set modules once per listed query and evaluates the pair
// head in matrix-batched chunks — the amortization that makes batched
// serving profitable (a pool entry occurs in two pairs per probe, and
// across every probe of a batch). Rates is stateless apart from the frozen
// model and encoder (and the optional representation cache, which is itself
// concurrency-safe), so it is safe for concurrent use.
type Rates struct {
	M   *Model
	Enc *feature.Encoder

	// Cache, when non-nil, memoizes set-module representations by
	// canonical query key across calls, so the stable pool entries of a
	// serving deployment are encoded once per pool version instead of once
	// per batch. The cache owner is responsible for invalidation (see
	// RepCache); cached and uncached paths are bit-identical because a
	// representation depends only on its own query.
	Cache *RepCache
}

// NewRates creates the adapter (no representation cache; set Cache or use
// the facade, which wires one per estimator).
func NewRates(m *Model, enc *feature.Encoder) *Rates {
	return &Rates{M: m, Enc: enc}
}

// EstimateRate implements contain.RateEstimator.
func (r *Rates) EstimateRate(q1, q2 query.Query) (float64, error) {
	out, err := r.EstimateRates([][2]query.Query{{q1, q2}})
	if err != nil {
		return 0, err
	}
	return out[0], nil
}

// EstimateRates implements contain.BatchRateEstimator.
func (r *Rates) EstimateRates(pairs [][2]query.Query) ([]float64, error) {
	return r.EstimateRatesCtx(context.Background(), pairs)
}

// EstimateRatesCtx implements contain.CtxBatchRateEstimator: queries are
// deduplicated across all pairs by canonical key, then estimated through
// the indexed path.
func (r *Rates) EstimateRatesCtx(ctx context.Context, pairs [][2]query.Query) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(pairs) == 0 {
		return nil, nil
	}
	index := make(map[string]int)
	var queries []query.Query
	idx := make([][2]int, len(pairs))
	for i, p := range pairs {
		for side := 0; side < 2; side++ {
			q := p[side]
			key := q.Key()
			j, ok := index[key]
			if !ok {
				j = len(queries)
				index[key] = j
				queries = append(queries, q)
			}
			idx[i][side] = j
		}
	}
	return r.EstimateRatesIndexed(ctx, queries, idx)
}

// representations produces the two per-query representation matrices (one
// row per listed query, through MLP1 and MLP2 respectively), consulting the
// cache when one is configured. Cache misses are encoded in one batched
// set-module pass and inserted; every row is bit-identical with and without
// the cache because a representation depends only on its own query's set.
func (r *Rates) representations(ws *nn.Workspace, queries []query.Query) (reps1, reps2 *nn.Matrix, err error) {
	if r.Cache == nil {
		sets := make([][][]float64, len(queries))
		for i, q := range queries {
			v, err := r.Enc.EncodeQuery(q)
			if err != nil {
				return nil, nil, err
			}
			sets[i] = v
		}
		reps1, reps2 = r.M.EncodeSetsWS(ws, sets)
		return reps1, reps2, nil
	}
	h := r.M.cfg.Hidden
	reps1 = ws.Take(len(queries), h)
	reps2 = ws.Take(len(queries), h)
	var missSets [][][]float64
	var missRows []int
	var missKeys []string
	for i, q := range queries {
		key := q.Key()
		if r.Cache.lookup(key, reps1.Row(i), reps2.Row(i)) {
			continue
		}
		v, err := r.Enc.EncodeQuery(q)
		if err != nil {
			return nil, nil, err
		}
		missSets = append(missSets, v)
		missRows = append(missRows, i)
		missKeys = append(missKeys, key)
	}
	if len(missSets) > 0 {
		m1, m2 := r.M.EncodeSetsWS(ws, missSets)
		for k, i := range missRows {
			copy(reps1.Row(i), m1.Row(k))
			copy(reps2.Row(i), m2.Row(k))
			r.Cache.insert(missKeys[k], m1.Row(k), m2.Row(k))
		}
	}
	return reps1, reps2, nil
}

// EstimateRatesIndexed implements contain.IndexedRateEstimator: one
// set-module pass over the query list (cache hits skip even that), then
// head passes in chunks of headChunk pairs, parallelized over GOMAXPROCS
// goroutines and checking ctx before every chunk. All scratch — encoded
// sets, representations, folded head weights, per-chunk accumulators —
// lives in pooled workspaces, so the steady-state serving hot path spends
// its time in the matrix math, not in the allocator.
func (r *Rates) EstimateRatesIndexed(ctx context.Context, queries []query.Query, idx [][2]int) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(idx) == 0 {
		return nil, nil
	}
	ws := r.M.getWS()
	defer r.M.putWS(ws)
	reps1, reps2, err := r.representations(ws, queries)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// One precomputation (weight fold + per-representation partial
	// products) shared by every chunk below.
	pred := r.M.NewPairPredictorWS(ws, reps1, reps2)

	out := make([]float64, len(idx))
	nChunks := (len(idx) + headChunk - 1) / headChunk
	workers := runtime.GOMAXPROCS(0)
	if workers > nChunks {
		workers = nChunks
	}
	if workers <= 1 {
		for lo := 0; lo < len(idx); lo += headChunk {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			hi := lo + headChunk
			if hi > len(idx) {
				hi = len(idx)
			}
			pred.PredictInto(out[lo:hi], idx[lo:hi], ws)
		}
		return out, ctx.Err()
	}
	// The head pass only reads trained weights, so chunks evaluate
	// concurrently without synchronization; each worker borrows its own
	// scratch workspace.
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cws := nn.GetWorkspace()
			defer nn.PutWorkspace(cws)
			for lo := range next {
				if ctx.Err() != nil {
					continue
				}
				hi := lo + headChunk
				if hi > len(idx) {
					hi = len(idx)
				}
				pred.PredictInto(out[lo:hi], idx[lo:hi], cws)
			}
		}()
	}
	for lo := 0; lo < len(idx); lo += headChunk {
		next <- lo
	}
	close(next)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
