package crn

import (
	"context"
	"runtime"
	"sync"

	"crn/internal/feature"
	"crn/internal/query"
)

// headChunk bounds the number of pairs per head forward pass; chunking keeps
// peak memory flat on large batches and gives cancellation checks a
// bounded-latency hook between passes.
const headChunk = 2048

// Rates adapts a trained Model and a feature Encoder to the query-level
// containment-rate interface used by the cardinality technique. Each batch
// call runs the set modules once per listed query and evaluates the pair
// head in matrix-batched chunks — the amortization that makes batched
// serving profitable (a pool entry occurs in two pairs per probe, and
// across every probe of a batch). Rates is stateless apart from the frozen
// model and encoder, so it is safe for concurrent use.
type Rates struct {
	M   *Model
	Enc *feature.Encoder
}

// NewRates creates the adapter.
func NewRates(m *Model, enc *feature.Encoder) *Rates {
	return &Rates{M: m, Enc: enc}
}

// EstimateRate implements contain.RateEstimator.
func (r *Rates) EstimateRate(q1, q2 query.Query) (float64, error) {
	out, err := r.EstimateRates([][2]query.Query{{q1, q2}})
	if err != nil {
		return 0, err
	}
	return out[0], nil
}

// EstimateRates implements contain.BatchRateEstimator.
func (r *Rates) EstimateRates(pairs [][2]query.Query) ([]float64, error) {
	return r.EstimateRatesCtx(context.Background(), pairs)
}

// EstimateRatesCtx implements contain.CtxBatchRateEstimator: queries are
// deduplicated across all pairs by canonical key, then estimated through
// the indexed path.
func (r *Rates) EstimateRatesCtx(ctx context.Context, pairs [][2]query.Query) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(pairs) == 0 {
		return nil, nil
	}
	index := make(map[string]int)
	var queries []query.Query
	idx := make([][2]int, len(pairs))
	for i, p := range pairs {
		for side := 0; side < 2; side++ {
			q := p[side]
			key := q.Key()
			j, ok := index[key]
			if !ok {
				j = len(queries)
				index[key] = j
				queries = append(queries, q)
			}
			idx[i][side] = j
		}
	}
	return r.EstimateRatesIndexed(ctx, queries, idx)
}

// EstimateRatesIndexed implements contain.IndexedRateEstimator: one
// set-module pass over the query list, then head passes in chunks of
// headChunk pairs, parallelized over GOMAXPROCS goroutines and checking ctx
// before every chunk. Queries are encoded directly — no canonical-key
// rendering, no cache traffic — so the serving hot path spends its time in
// the matrix math, not in string building.
func (r *Rates) EstimateRatesIndexed(ctx context.Context, queries []query.Query, idx [][2]int) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(idx) == 0 {
		return nil, nil
	}
	sets := make([][][]float64, len(queries))
	for i, q := range queries {
		v, err := r.Enc.EncodeQuery(q)
		if err != nil {
			return nil, err
		}
		sets[i] = v
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	reps1, reps2 := r.M.EncodeSets(sets)
	// One precomputation (weight fold + per-representation partial
	// products) shared by every chunk below.
	pred := r.M.NewPairPredictor(reps1, reps2)

	out := make([]float64, len(idx))
	nChunks := (len(idx) + headChunk - 1) / headChunk
	workers := runtime.GOMAXPROCS(0)
	if workers > nChunks {
		workers = nChunks
	}
	if workers <= 1 {
		for lo := 0; lo < len(idx); lo += headChunk {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			hi := lo + headChunk
			if hi > len(idx) {
				hi = len(idx)
			}
			copy(out[lo:hi], pred.Predict(idx[lo:hi]))
		}
		return out, ctx.Err()
	}
	// The head pass only reads trained weights, so chunks evaluate
	// concurrently without synchronization.
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for lo := range next {
				if ctx.Err() != nil {
					continue
				}
				hi := lo + headChunk
				if hi > len(idx) {
					hi = len(idx)
				}
				copy(out[lo:hi], pred.Predict(idx[lo:hi]))
			}
		}()
	}
	for lo := 0; lo < len(idx); lo += headChunk {
		next <- lo
	}
	close(next)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
