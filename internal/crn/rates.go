package crn

import (
	"sync"

	"crn/internal/feature"
	"crn/internal/query"
)

// Rates adapts a trained Model and a feature Encoder to the query-level
// containment-rate interface used by the cardinality technique: it encodes
// queries on demand (with a cache, since the queries-pool entries recur on
// every estimation) and batches forward passes.
type Rates struct {
	M   *Model
	Enc *feature.Encoder

	mu    sync.RWMutex
	cache map[string][][]float64
}

// NewRates creates the adapter with an empty encoding cache.
func NewRates(m *Model, enc *feature.Encoder) *Rates {
	return &Rates{M: m, Enc: enc, cache: make(map[string][][]float64)}
}

// EstimateRate implements contain.RateEstimator.
func (r *Rates) EstimateRate(q1, q2 query.Query) (float64, error) {
	out, err := r.EstimateRates([][2]query.Query{{q1, q2}})
	if err != nil {
		return 0, err
	}
	return out[0], nil
}

// EstimateRates implements contain.BatchRateEstimator with a single batched
// forward pass.
func (r *Rates) EstimateRates(pairs [][2]query.Query) ([]float64, error) {
	samples := make([]Sample, len(pairs))
	for i, p := range pairs {
		v1, err := r.encode(p[0])
		if err != nil {
			return nil, err
		}
		v2, err := r.encode(p[1])
		if err != nil {
			return nil, err
		}
		samples[i] = Sample{V1: v1, V2: v2}
	}
	return r.M.PredictBatch(samples), nil
}

func (r *Rates) encode(q query.Query) ([][]float64, error) {
	key := q.Key()
	r.mu.RLock()
	v, ok := r.cache[key]
	r.mu.RUnlock()
	if ok {
		return v, nil
	}
	v, err := r.Enc.EncodeQuery(q)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	// Bound the cache; pool entries plus a workload fit comfortably.
	if len(r.cache) > 1<<16 {
		r.cache = make(map[string][][]float64)
	}
	r.cache[key] = v
	r.mu.Unlock()
	return v, nil
}
