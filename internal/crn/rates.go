package crn

import (
	"context"
	"runtime"
	"sync"

	"crn/internal/feature"
	"crn/internal/nn"
	"crn/internal/query"
	"crn/internal/telemetry"
)

// headChunk bounds the number of pairs per head forward pass; chunking keeps
// peak memory flat on large batches and gives cancellation checks a
// bounded-latency hook between passes.
const headChunk = 2048

// Rates adapts a trained Model and a feature Encoder to the query-level
// containment-rate interface used by the cardinality technique. Each batch
// call runs the set modules once per listed query and evaluates the pair
// head in matrix-batched chunks — the amortization that makes batched
// serving profitable (a pool entry occurs in two pairs per probe, and
// across every probe of a batch). Rates is stateless apart from the frozen
// model and encoder (and the optional representation cache, which is itself
// concurrency-safe), so it is safe for concurrent use.
type Rates struct {
	M   *Model
	Enc *feature.Encoder

	// Cache, when non-nil, memoizes set-module representations by
	// canonical query key across calls, so the stable pool entries of a
	// serving deployment are encoded once per pool version instead of once
	// per batch. The cache owner is responsible for invalidation (see
	// RepCache); cached and uncached paths are bit-identical because a
	// representation depends only on its own query.
	Cache *RepCache

	// Stages, when non-nil, receives the adapter's per-pass stage spans:
	// cache resolution (pairPredictor — cache tiers plus the set-module
	// pass over misses) and the matrix-batched head forward. Set before
	// serving traffic; nil keeps the hot path free of clock reads.
	Stages *telemetry.StageSet
}

// NewRates creates the adapter (no representation cache; set Cache or use
// the facade, which wires one per estimator).
func NewRates(m *Model, enc *feature.Encoder) *Rates {
	return &Rates{M: m, Enc: enc}
}

// EstimateRate implements contain.RateEstimator.
func (r *Rates) EstimateRate(q1, q2 query.Query) (float64, error) {
	out, err := r.EstimateRates([][2]query.Query{{q1, q2}})
	if err != nil {
		return 0, err
	}
	return out[0], nil
}

// EstimateRates implements contain.BatchRateEstimator.
func (r *Rates) EstimateRates(pairs [][2]query.Query) ([]float64, error) {
	return r.EstimateRatesCtx(context.Background(), pairs)
}

// EstimateRatesCtx implements contain.CtxBatchRateEstimator: queries are
// deduplicated across all pairs by canonical key, then estimated through
// the indexed path.
func (r *Rates) EstimateRatesCtx(ctx context.Context, pairs [][2]query.Query) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(pairs) == 0 {
		return nil, nil
	}
	index := make(map[string]int)
	var queries []query.Query
	idx := make([][2]int, len(pairs))
	for i, p := range pairs {
		for side := 0; side < 2; side++ {
			q := p[side]
			key := q.Key()
			j, ok := index[key]
			if !ok {
				j = len(queries)
				index[key] = j
				queries = append(queries, q)
			}
			idx[i][side] = j
		}
	}
	return r.EstimateRatesIndexed(ctx, queries, idx)
}

// pairPredictor builds the precomputed serving head for one request's query
// list. Without a cache it encodes every query and multiplies out the
// partial products; with a cache it resolves as much as possible from the
// two cache tiers:
//
//   - Resident-tier hits (the stable pool entries, in steady state) cost a
//     map read — their representation and partial-product rows are
//     referenced in place in the published snapshot, no lock, no copy, no
//     arithmetic. This is the pool-resident head precompute: a single-query
//     estimate computes only its own probe side.
//   - Sharded-tier hits copy their packed entry into the request's extra
//     rows and are promoted to the resident tier afterwards.
//   - Misses are feature-encoded and pushed through the set modules in one
//     batched pass, their partial products computed in two small matmuls,
//     then inserted into the sharded tier.
//
// Every resolved row is bit-identical with and without the cache because
// each row depends only on its own query and the frozen weights, and no
// kernel lets batch composition affect a row's summation order.
func (r *Rates) pairPredictor(ws *nn.Workspace, queries []query.Query) (*PairPredictor, error) {
	if r.Cache == nil {
		sets := make([][][]float64, len(queries))
		for i, q := range queries {
			v, err := r.Enc.EncodeQuery(q)
			if err != nil {
				return nil, err
			}
			sets[i] = v
		}
		reps1, reps2 := r.M.EncodeSetsWS(ws, sets)
		return r.M.NewPairPredictorWS(ws, reps1, reps2), nil
	}

	f := r.M.headFold()
	h, cols := f.h, 2*f.h
	n := len(queries)
	// Capture the flush generation before any cache read: values computed
	// in this request are written back only if no flush intervenes.
	gen := r.Cache.gen.Load()
	snap := r.Cache.resident.Load()
	base := snap.rows()

	// Pass 1: resolve resident rows and assign extra slots.
	rowOf := ws.TakeInts(n)
	extraSlot := ws.TakeInts(n) // -1: resident; otherwise row in the extras
	keys := make([]string, n)
	nExtra := 0
	for i := range queries {
		key := queries[i].Key()
		keys[i] = key
		if snap != nil {
			if ri, ok := snap.byKey[key]; ok {
				r.Cache.hitResident()
				rowOf[i] = ri
				extraSlot[i] = -1
				continue
			}
		}
		extraSlot[i] = nExtra
		rowOf[i] = base + nExtra
		nExtra++
	}

	// Pass 2: fill the extra rows from the sharded tier or by computing.
	reps1 := ws.Take(nExtra, h)
	reps2 := ws.Take(nExtra, h)
	p1 := ws.Take(nExtra, cols)
	p2 := ws.Take(nExtra, cols)
	var missSets [][][]float64
	var missQ []int // query positions of the misses
	var promos []promotion
	for i := range queries {
		k := extraSlot[i]
		if k < 0 {
			continue
		}
		if r.Cache.lookup(keys[i], reps1.Row(k), reps2.Row(k), p1.Row(k), p2.Row(k)) {
			// Second sighting: promote so the next request reads it from
			// the resident tier in place.
			promos = append(promos, promotion{
				key:  keys[i],
				rep1: reps1.Row(k), rep2: reps2.Row(k),
				pp1: p1.Row(k), pp2: p2.Row(k),
			})
			continue
		}
		v, err := r.Enc.EncodeQuery(queries[i])
		if err != nil {
			return nil, err
		}
		missSets = append(missSets, v)
		missQ = append(missQ, i)
	}
	if len(missSets) > 0 {
		m1, m2 := r.M.EncodeSetsWS(ws, missSets)
		mp1 := ws.Take(len(missSets), cols)
		nn.MatMul(mp1, m1, f.w13)
		mp2 := ws.Take(len(missSets), cols)
		nn.MatMul(mp2, m2, f.w23)
		for j, i := range missQ {
			k := extraSlot[i]
			copy(reps1.Row(k), m1.Row(j))
			copy(reps2.Row(k), m2.Row(j))
			copy(p1.Row(k), mp1.Row(j))
			copy(p2.Row(k), mp2.Row(j))
			r.Cache.insert(gen, keys[i], reps1.Row(k), reps2.Row(k), p1.Row(k), p2.Row(k))
		}
	}
	r.Cache.promote(gen, promos)

	pred := &PairPredictor{
		f:        f,
		baseRows: base,
		reps1:    reps1, reps2: reps2,
		p1: p1, p2: p2,
		rowOf: rowOf,
	}
	if snap != nil {
		pred.bR1, pred.bR2 = snap.reps1, snap.reps2
		pred.bP1, pred.bP2 = snap.pp1, snap.pp2
	}
	return pred, nil
}

// Warm precomputes and caches the serving-side state for the given
// queries: set-module representations and factorized-head partial
// products, inserted into the sharded tier on the first pass and promoted
// into the zero-copy resident tier on the second. A freshly promoted model
// generation warms its cache with the pool's working set off the hot path,
// so the first estimates after a hot-swap already run at steady-state cost
// instead of re-encoding the whole pool. A Rates without a cache is a
// no-op.
func (r *Rates) Warm(queries []query.Query) error {
	if r.Cache == nil || len(queries) == 0 {
		return nil
	}
	ws := r.M.getWS()
	defer r.M.putWS(ws)
	if _, err := r.pairPredictor(ws, queries); err != nil {
		return err
	}
	ws.Reset()
	_, err := r.pairPredictor(ws, queries)
	return err
}

// EstimateRatesIndexed implements contain.IndexedRateEstimator: one
// set-module pass over the cache-missing queries (resident cache hits cost
// a map read, see pairPredictor), then head passes in chunks of headChunk
// pairs, parallelized over GOMAXPROCS goroutines and checking ctx before
// every chunk. All request-local scratch — encoded sets, extra
// representation rows, per-chunk accumulators — lives in pooled workspaces,
// so the steady-state serving hot path spends its time in the pair-head
// math, not in the allocator or the precompute.
func (r *Rates) EstimateRatesIndexed(ctx context.Context, queries []query.Query, idx [][2]int) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(idx) == 0 {
		return nil, nil
	}
	ws := r.M.getWS()
	defer r.M.putWS(ws)
	// Sampled pass timer (nil-safe on a nil stage set): most passes skip
	// the clock entirely, the sampled ones record cache-lookup and
	// nn-forward spans at inverse-probability weight.
	st := r.Stages.Sample()
	// One precomputation — weight fold (memoized on the model),
	// representations and partial products (resolved against the serving
	// cache) — shared by every chunk below.
	pred, err := r.pairPredictor(ws, queries)
	if err != nil {
		return nil, err
	}
	if r.Stages != nil {
		st.Mark(r.Stages.CacheLookup)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	out := make([]float64, len(idx))
	nChunks := (len(idx) + headChunk - 1) / headChunk
	workers := runtime.GOMAXPROCS(0)
	if workers > nChunks {
		workers = nChunks
	}
	if workers <= 1 {
		for lo := 0; lo < len(idx); lo += headChunk {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			hi := lo + headChunk
			if hi > len(idx) {
				hi = len(idx)
			}
			pred.PredictInto(out[lo:hi], idx[lo:hi], ws)
		}
		if r.Stages != nil {
			st.Mark(r.Stages.NNForward)
		}
		return out, ctx.Err()
	}
	// The head pass only reads trained weights, so chunks evaluate
	// concurrently without synchronization; each worker borrows its own
	// scratch workspace.
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cws := nn.GetWorkspace()
			defer nn.PutWorkspace(cws)
			for lo := range next {
				if ctx.Err() != nil {
					continue
				}
				hi := lo + headChunk
				if hi > len(idx) {
					hi = len(idx)
				}
				pred.PredictInto(out[lo:hi], idx[lo:hi], cws)
			}
		}()
	}
	for lo := 0; lo < len(idx); lo += headChunk {
		next <- lo
	}
	close(next)
	wg.Wait()
	if r.Stages != nil {
		st.Mark(r.Stages.NNForward)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
