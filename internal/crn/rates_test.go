package crn

import (
	"context"
	"math"
	"testing"

	"crn/internal/datagen"
	"crn/internal/feature"
	"crn/internal/query"
	"crn/internal/schema"
	"crn/internal/sqlparse"
)

func ratesFixture(t *testing.T) (*Rates, *schema.Schema) {
	t.Helper()
	s := schema.IMDB()
	cfg := datagen.DefaultConfig()
	cfg.Titles = 200
	d, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := feature.NewEncoder(s, d)
	if err != nil {
		t.Fatal(err)
	}
	mcfg := DefaultConfig()
	mcfg.Hidden = 8
	m := NewModel(mcfg, enc.Dim())
	return NewRates(m, enc), s
}

func TestRatesSingleMatchesBatch(t *testing.T) {
	r, s := ratesFixture(t)
	q1 := sqlparse.MustParse(s, "SELECT * FROM title WHERE title.kind_id = 1")
	q2 := sqlparse.MustParse(s, "SELECT * FROM title WHERE title.kind_id < 5")
	q3 := sqlparse.MustParse(s, "SELECT * FROM title WHERE title.production_year > 1950")
	single, err := r.EstimateRate(q1, q2)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := r.EstimateRates([][2]query.Query{{q1, q2}, {q2, q3}, {q3, q1}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(single-batch[0]) > 1e-12 {
		t.Errorf("batch[0] = %v, single = %v", batch[0], single)
	}
	for i, v := range batch {
		if v < 0 || v > 1 {
			t.Errorf("batch[%d] = %v out of [0,1]", i, v)
		}
	}
}

func TestRatesIndexedMatchesBatch(t *testing.T) {
	r, s := ratesFixture(t)
	q1 := sqlparse.MustParse(s, "SELECT * FROM title WHERE title.kind_id = 1")
	q2 := sqlparse.MustParse(s, "SELECT * FROM title WHERE title.kind_id < 5")
	q3 := sqlparse.MustParse(s, "SELECT * FROM title WHERE title.production_year > 1950")
	batch, err := r.EstimateRates([][2]query.Query{{q1, q2}, {q2, q3}, {q3, q1}, {q1, q1}})
	if err != nil {
		t.Fatal(err)
	}
	// The same pairs expressed as indices into a shared list — including a
	// duplicated listing of q1, which must not change any estimate.
	indexed, err := r.EstimateRatesIndexed(context.Background(),
		[]query.Query{q1, q2, q3, q1},
		[][2]int{{0, 1}, {1, 2}, {2, 0}, {0, 3}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range batch {
		if batch[i] != indexed[i] {
			t.Errorf("pair %d: batch %v != indexed %v", i, batch[i], indexed[i])
		}
	}
	// Calls are deterministic.
	a, _ := r.EstimateRate(q1, q1)
	b, _ := r.EstimateRate(q1, q1)
	if a != b {
		t.Error("repeated prediction differs")
	}
}

func TestRatesErrorsOnUnknownColumn(t *testing.T) {
	r, _ := ratesFixture(t)
	bad := query.Query{
		Tables: []string{schema.Title},
		Preds:  []query.Predicate{{Col: schema.ColumnRef{Table: schema.Title, Column: "ghost"}, Op: schema.OpEQ}},
	}
	if _, err := r.EstimateRate(bad, bad); err == nil {
		t.Error("unknown column should fail")
	}
}
