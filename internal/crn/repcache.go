package crn

import (
	"sync"
	"sync/atomic"
)

// RepCache memoizes the set-module representations (the EncodeSets outputs)
// of queries by canonical key across requests. In the §5.2 serving
// deployment every batched estimate pushes each matching pool entry through
// MLP1 and MLP2; the pool is stable between executions, so those encodings
// are recomputed endlessly. With a cache a pool entry is encoded once per
// pool version instead of once per batch.
//
// Correctness model: a cached representation depends only on the query's
// canonical text, the feature encoder's statistics and the frozen model
// weights. Invalidation is therefore conservative and explicit:
//
//   - Validate(poolVersion) clears the cache whenever the observed pool
//     version changes — the facade calls it before every estimate, so a
//     /record (or any pool mutation) flushes stale state by construction.
//     This is deliberately stricter than the dependency set above requires
//     (pool growth does not change any cached representation): it trades
//     hit rate under record-heavy workloads for invalidation that stays
//     correct even if representations ever grow a pool dependency. In the
//     estimate-dominated §5.2 deployment the pool working set re-warms in
//     one batch.
//   - Invalidate() clears unconditionally, for model or encoder swaps.
//
// Capacity is bounded: when full, an arbitrary eighth of the entries is
// evicted (the pool working set is orders of magnitude below any sensible
// capacity, so eviction is a safety valve, not a tuning knob). All methods
// are safe for concurrent use.
type RepCache struct {
	mu      sync.RWMutex
	entries map[string]repEntry
	version atomic.Uint64
	started atomic.Bool // version observed at least once
	cap     int

	hits, misses atomic.Uint64
}

type repEntry struct {
	rep1, rep2 []float64
}

// DefaultRepCacheSize is the default entry bound of a serving cache.
const DefaultRepCacheSize = 8192

// NewRepCache creates a cache bounded to capacity entries
// (capacity <= 0 uses DefaultRepCacheSize).
func NewRepCache(capacity int) *RepCache {
	if capacity <= 0 {
		capacity = DefaultRepCacheSize
	}
	return &RepCache{entries: make(map[string]repEntry), cap: capacity}
}

// Validate flushes the cache if the observed pool version differs from the
// last one seen. The first observation adopts the version without flushing.
// The unchanged-version case — every estimate in steady-state serving —
// is a lock-free pair of atomic loads, so concurrent estimates do not
// contend here.
func (c *RepCache) Validate(version uint64) {
	if c == nil {
		return
	}
	if c.started.Load() && c.version.Load() == version {
		return
	}
	c.mu.Lock()
	switch {
	case !c.started.Load():
		c.started.Store(true)
	case c.version.Load() != version:
		c.entries = make(map[string]repEntry)
	}
	c.version.Store(version)
	c.mu.Unlock()
}

// Invalidate unconditionally discards every cached representation.
func (c *RepCache) Invalidate() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.entries = make(map[string]repEntry)
	c.mu.Unlock()
}

// RepCacheStats is a point-in-time snapshot of cache effectiveness.
type RepCacheStats struct {
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Size     int    `json:"size"`
	Capacity int    `json:"capacity"`
}

// Stats returns hit/miss counters and the current size.
func (c *RepCache) Stats() RepCacheStats {
	if c == nil {
		return RepCacheStats{}
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return RepCacheStats{Hits: c.hits.Load(), Misses: c.misses.Load(), Size: len(c.entries), Capacity: c.cap}
}

// lookup copies the cached representations for key into dst1/dst2 and
// reports whether it hit. dst1/dst2 must have the model's hidden length.
func (c *RepCache) lookup(key string, dst1, dst2 []float64) bool {
	c.mu.RLock()
	e, ok := c.entries[key]
	if ok {
		copy(dst1, e.rep1)
		copy(dst2, e.rep2)
	}
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return ok
}

// insert stores the representations for key, cloning both slices.
func (c *RepCache) insert(key string, rep1, rep2 []float64) {
	buf := make([]float64, len(rep1)+len(rep2))
	r1 := buf[:len(rep1):len(rep1)]
	r2 := buf[len(rep1):]
	copy(r1, rep1)
	copy(r2, rep2)
	c.mu.Lock()
	if len(c.entries) >= c.cap {
		if _, exists := c.entries[key]; !exists {
			drop := c.cap / 8
			if drop < 1 {
				drop = 1
			}
			for k := range c.entries {
				delete(c.entries, k)
				drop--
				if drop <= 0 {
					break
				}
			}
		}
	}
	c.entries[key] = repEntry{rep1: r1, rep2: r2}
	c.mu.Unlock()
}
