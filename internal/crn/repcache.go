package crn

import (
	"sync"
	"sync/atomic"

	"crn/internal/nn"
)

// RepCache is the serving cache of the §5.2 deployment: it memoizes, per
// query (by canonical key), everything the pair head needs that does not
// depend on the partner query — the set-module representations (the
// EncodeSets outputs) AND the per-representation partial products of the
// factorized head (see PairPredictor). The queries pool is stable between
// executions, so without a cache those values are recomputed endlessly:
// every estimate pays O(pool·dim) re-encoding and re-multiplying for
// entries that have not changed. With the cache, a pool entry is computed
// once per pool version and a single-query estimate computes only its own
// probe side.
//
// The cache is organized in two tiers:
//
//   - A resident tier for the recurring working set (in steady state: the
//     pool entries, plus repeated probes). It is an immutable snapshot —
//     four matrices with one row per resident query plus a key→row index —
//     republished copy-on-write when entries are promoted. The serving hot
//     path reads it with one atomic load and references rows in place:
//     no lock, no copy, O(1) per query.
//   - A sharded tier for queries seen once. It is a lock-striped map
//     (repShards power-of-two shards, selected by a hash of the canonical
//     key), so concurrent misses and first-sightings never contend on a
//     single mutex. Hits copy the entry out; an entry hit in the sharded
//     tier has recurred, so it is promoted to the resident tier and the
//     next request reads it lock- and copy-free.
//
// Correctness model: a cached entry depends only on the query's canonical
// text, the feature encoder's statistics and the frozen model weights.
// Invalidation is therefore conservative and explicit:
//
//   - Validate(poolVersion) clears the cache whenever the observed pool
//     version advances past the last version the cache has absorbed — the
//     facade calls it before every estimate, so a pool mutation the cache
//     did not witness flushes stale state by construction. This is
//     deliberately stricter than the dependency set above requires (pool
//     growth does not change any cached entry): it trades hit rate under
//     record-heavy workloads for invalidation that stays correct even if
//     cached values ever grow a pool dependency.
//   - PoolMutated(version, evictedKey) — the pool.MutationListener hook —
//     absorbs mutations surgically for a cache subscribed to its pool (the
//     facade subscribes every estimator cache): an eviction drops exactly
//     the evicted entry's cached rows, an insert drops nothing, and the
//     absorbed version keeps the next Validate on its no-flush fast path.
//     Under sustained record/feedback traffic the cached working set
//     therefore stays warm instead of re-encoding after every mutation.
//   - Invalidate() clears unconditionally, for model or encoder swaps.
//
// Capacity is bounded per tier: the resident tier stops promoting at the
// configured capacity, and each shard evicts an arbitrary eighth of its
// entries when its share of the capacity fills (the serving working set is
// orders of magnitude below any sensible capacity, so eviction is a safety
// valve, not a tuning knob). All methods are safe for concurrent use, and
// cached values are bit-identical to recomputation because every kernel's
// per-row result is independent of batch composition (see package nn).
type RepCache struct {
	shards   [repShards]repShard
	resident atomic.Pointer[residentSnap]

	// flushMu serializes version transitions and full flushes; the
	// unchanged-version fast path never takes it.
	flushMu sync.Mutex
	// promoteMu serializes copy-on-write republications of the resident
	// snapshot.
	promoteMu sync.Mutex

	version atomic.Uint64
	started atomic.Bool // version observed at least once
	cap     int
	// gen counts flushes. Requests capture it before reading the cache and
	// hand it back with their insert/promote writebacks; a mismatch means a
	// flush (pool mutation, model swap) happened mid-request, and values
	// computed against the pre-flush state must not re-enter the cache.
	gen atomic.Uint64
	// size counts sharded-tier entries across all shards, so admission
	// control enforces the global capacity without locking every shard.
	size atomic.Int64

	hits, misses, promoted atomic.Uint64
}

// repShards is the lock-stripe count of the sharded tier. Power of two so
// shard selection is a mask; 16 stripes keep the probability of two
// concurrent requests contending on one mutex low at any realistic core
// count without bloating the struct.
const repShards = 16

type repShard struct {
	mu      sync.RWMutex
	entries map[string]repEntry
}

// repEntry packs one query's cached values in a single slice:
// rep1 | rep2 | pp1 | pp2 (lengths h, h, 2h, 2h).
type repEntry struct {
	data []float64
}

// residentSnap is one immutable publication of the resident tier. byKey
// maps canonical query keys to row indices valid in all four matrices.
// Never mutated after publication — readers hold it without locks.
// Surgical eviction republishes the map without the evicted key while
// sharing the matrices (the dead row is tombstoned, not reclaimed); the
// next promotion compacts tombstones away.
type residentSnap struct {
	byKey map[string]int
	reps1 *nn.Matrix // n×h rows through MLP1
	reps2 *nn.Matrix // n×h rows through MLP2
	pp1   *nn.Matrix // n×2h rows: reps1·(W1+W3)
	pp2   *nn.Matrix // n×2h rows: reps2·(W2+W3)
	dead  int        // tombstoned rows not reachable through byKey
}

// rows returns the number of resident rows (live and tombstoned alike):
// the base-row offset request-local extras are addressed past.
func (s *residentSnap) rows() int {
	if s == nil {
		return 0
	}
	return s.reps1.Rows
}

// deadRows returns the number of tombstoned rows.
func (s *residentSnap) deadRows() int {
	if s == nil {
		return 0
	}
	return s.dead
}

// DefaultRepCacheSize is the default entry bound of a serving cache.
const DefaultRepCacheSize = 8192

// NewRepCache creates a cache bounded to capacity entries per tier
// (capacity <= 0 uses DefaultRepCacheSize).
func NewRepCache(capacity int) *RepCache {
	if capacity <= 0 {
		capacity = DefaultRepCacheSize
	}
	c := &RepCache{cap: capacity}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]repEntry)
	}
	return c
}

// fnv1a hashes a key for shard selection.
func fnv1a(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

// shard selects the lock stripe for a key (FNV-1a over the canonical key,
// masked to the power-of-two stripe count).
func (c *RepCache) shard(key string) *repShard {
	return &c.shards[fnv1a(key)&(repShards-1)]
}

// Validate flushes the cache if the observed pool version advances past
// the last version absorbed (by a previous Validate or, for subscribed
// caches, by PoolMutated). The first observation adopts the version without
// flushing. The comparison is monotone — pool versions only grow — so an
// estimate that loaded the pool version just before a concurrent, already
// absorbed mutation cannot trigger a spurious flush. The caught-up case —
// every estimate in steady-state serving — is a lock-free pair of atomic
// loads, so concurrent estimates do not contend here.
func (c *RepCache) Validate(version uint64) {
	if c == nil {
		return
	}
	if c.started.Load() && version <= c.version.Load() {
		return
	}
	c.flushMu.Lock()
	switch {
	case !c.started.Load():
		c.started.Store(true)
		c.version.Store(version)
	case version > c.version.Load():
		c.flush()
		c.version.Store(version)
	}
	c.flushMu.Unlock()
}

// PoolMutated implements pool.MutationListener: it absorbs one pool
// mutation surgically instead of waiting for Validate's wholesale flush.
// An eviction drops the evicted query's cached rows from both tiers (an
// insert requires nothing — cached entries depend only on their own query
// text and the frozen weights), then the seen version is raised so the
// next Validate recognizes the mutation as handled. Called under the
// pool's write lock, so it must not call back into the pool.
func (c *RepCache) PoolMutated(version uint64, evictedKey string) {
	if c == nil {
		return
	}
	if evictedKey != "" {
		c.remove(evictedKey)
	}
	c.flushMu.Lock()
	c.started.Store(true)
	if version > c.version.Load() {
		c.version.Store(version)
	}
	c.flushMu.Unlock()
}

// remove drops one key from both tiers: a sharded-tier delete, and a
// copy-on-write republication of the resident key map that tombstones the
// row (matrices are shared, the row's storage is reclaimed by the next
// promotion's compaction). Unknown keys are a no-op.
func (c *RepCache) remove(key string) {
	s := c.shard(key)
	s.mu.Lock()
	if _, ok := s.entries[key]; ok {
		delete(s.entries, key)
		c.size.Add(-1)
	}
	s.mu.Unlock()

	c.promoteMu.Lock()
	defer c.promoteMu.Unlock()
	old := c.resident.Load()
	if old == nil {
		return
	}
	if _, ok := old.byKey[key]; !ok {
		return
	}
	next := &residentSnap{
		byKey: make(map[string]int, len(old.byKey)-1),
		reps1: old.reps1, reps2: old.reps2,
		pp1: old.pp1, pp2: old.pp2,
		dead: old.dead + 1,
	}
	for k, v := range old.byKey {
		if k != key {
			next.byKey[k] = v
		}
	}
	c.resident.Store(next)
}

// Invalidate unconditionally discards every cached entry in both tiers.
func (c *RepCache) Invalidate() {
	if c == nil {
		return
	}
	c.flushMu.Lock()
	c.flush()
	c.flushMu.Unlock()
}

// flush clears both tiers. Callers hold flushMu. The generation bump
// happens first, under promoteMu, and each shard is cleared under its own
// lock: a writeback that captured the old generation either observes the
// bump and drops itself, or completes before the corresponding clear and
// is wiped by it — stale values cannot survive a flush either way.
func (c *RepCache) flush() {
	c.promoteMu.Lock()
	c.gen.Add(1)
	c.resident.Store(nil)
	c.promoteMu.Unlock()
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		c.size.Add(-int64(len(s.entries)))
		s.entries = make(map[string]repEntry)
		s.mu.Unlock()
	}
}

// RepCacheStats is a point-in-time snapshot of cache effectiveness.
type RepCacheStats struct {
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Size     int    `json:"size"`     // entries across both tiers
	Resident int    `json:"resident"` // entries in the zero-copy resident tier
	Promoted uint64 `json:"promoted"` // lifetime promotions into the resident tier
	Capacity int    `json:"capacity"`
	Shards   int    `json:"shards"`
}

// Stats returns hit/miss counters and tier occupancy. Safe on a nil cache
// (estimators without representation caching report zeros).
func (c *RepCache) Stats() RepCacheStats {
	if c == nil {
		return RepCacheStats{}
	}
	st := RepCacheStats{
		Hits:     c.hits.Load(),
		Misses:   c.misses.Load(),
		Promoted: c.promoted.Load(),
		Capacity: c.cap,
		Shards:   repShards,
	}
	snap := c.resident.Load()
	st.Resident = snap.rows() - snap.deadRows()
	st.Size = st.Resident
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		st.Size += len(s.entries)
		s.mu.RUnlock()
	}
	return st
}

// lookup copies the sharded-tier entry for key into the four destination
// rows and reports whether it hit. The caller resolves the resident tier
// first (via resident.Load); a sharded hit means the entry recurred and is
// a promotion candidate. Destination lengths must match the entry layout
// (h, h, 2h, 2h for the model's hidden width).
func (c *RepCache) lookup(key string, rep1, rep2, pp1, pp2 []float64) bool {
	s := c.shard(key)
	s.mu.RLock()
	e, ok := s.entries[key]
	if ok && len(e.data) == len(rep1)+len(rep2)+len(pp1)+len(pp2) {
		off := 0
		off += copy(rep1, e.data[off:])
		off += copy(rep2, e.data[off:])
		off += copy(pp1, e.data[off:])
		copy(pp2, e.data[off:])
	} else {
		ok = false
	}
	s.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return ok
}

// hitResident records a resident-tier hit (the lookup itself is the
// caller's map read on the snapshot).
func (c *RepCache) hitResident() { c.hits.Add(1) }

// insert stores a first-seen entry in the sharded tier, cloning all four
// slices into one packed buffer. gen is the generation the caller captured
// before computing the entry: if a flush intervened, the entry reflects
// pre-flush state and is dropped. When the tier is at capacity, roughly an
// eighth of the entries is evicted first (walking shards from the target
// one), so sustained unique-probe traffic cannot grow the tier unboundedly.
func (c *RepCache) insert(gen uint64, key string, rep1, rep2, pp1, pp2 []float64) {
	buf := make([]float64, 0, len(rep1)+len(rep2)+len(pp1)+len(pp2))
	buf = append(buf, rep1...)
	buf = append(buf, rep2...)
	buf = append(buf, pp1...)
	buf = append(buf, pp2...)
	s := c.shard(key)
	s.mu.Lock()
	if c.gen.Load() != gen {
		// Flushed since the caller read the cache; see flush for why this
		// check under the shard lock cannot race with the shard clear.
		s.mu.Unlock()
		return
	}
	_, exists := s.entries[key]
	s.entries[key] = repEntry{data: buf}
	if !exists && int(c.size.Add(1)) > c.cap {
		s.mu.Unlock()
		c.evict(key)
		return
	}
	s.mu.Unlock()
}

// evict removes about an eighth of the capacity from the sharded tier
// (always at least enough to return under the bound), sparing keep — the
// entry whose insertion triggered the eviction.
func (c *RepCache) evict(keep string) {
	target := int64(c.cap) - int64(c.cap)/8
	if target < 0 {
		target = 0
	}
	start := int(fnv1a(keep) & (repShards - 1))
	for i := 0; i < repShards && c.size.Load() > target; i++ {
		s := &c.shards[(start+i)%repShards]
		s.mu.Lock()
		for k := range s.entries {
			if k == keep {
				continue
			}
			delete(s.entries, k)
			if c.size.Add(-1) <= target {
				break
			}
		}
		s.mu.Unlock()
	}
}

// promotion is one entry to move into the resident tier; the row slices
// may live in request-local workspace storage (promote copies them).
type promotion struct {
	key                  string
	rep1, rep2, pp1, pp2 []float64
}

// promote republishes the resident snapshot with the given entries
// appended (copy-on-write). gen is the generation the caller captured
// before reading the cache: promotions gathered before a flush are
// discarded, so stale rows cannot resurrect into a freshly flushed tier.
// Keys already resident — promoted concurrently by another request — and
// keys duplicated within the batch are skipped, as is everything beyond
// the capacity bound. Promoted keys are removed from the sharded tier.
func (c *RepCache) promote(gen uint64, promos []promotion) {
	if len(promos) == 0 {
		return
	}
	c.promoteMu.Lock()
	if c.gen.Load() != gen {
		c.promoteMu.Unlock()
		return
	}
	old := c.resident.Load()
	oldLive := old.rows() - old.deadRows()
	fresh := promos[:0]
	seen := make(map[string]bool, len(promos))
	for _, p := range promos {
		if seen[p.key] {
			continue
		}
		if old != nil {
			if _, ok := old.byKey[p.key]; ok {
				continue
			}
		}
		if oldLive+len(fresh) >= c.cap {
			break
		}
		seen[p.key] = true
		fresh = append(fresh, p)
	}
	if len(fresh) == 0 {
		c.promoteMu.Unlock()
		return
	}
	h := len(fresh[0].rep1)
	cols := len(fresh[0].pp1)
	if old != nil && old.reps1.Cols != h {
		// Layout changed underneath a stale snapshot (model swap without
		// Invalidate): refuse to mix row widths.
		c.promoteMu.Unlock()
		return
	}
	n := oldLive + len(fresh)
	next := &residentSnap{
		byKey: make(map[string]int, n),
		reps1: nn.NewMatrix(n, h),
		reps2: nn.NewMatrix(n, h),
		pp1:   nn.NewMatrix(n, cols),
		pp2:   nn.NewMatrix(n, cols),
	}
	row := 0
	if old != nil && old.dead == 0 {
		// No tombstones: one bulk copy, old row numbering preserved.
		for k, v := range old.byKey {
			next.byKey[k] = v
		}
		copy(next.reps1.Data, old.reps1.Data)
		copy(next.reps2.Data, old.reps2.Data)
		copy(next.pp1.Data, old.pp1.Data)
		copy(next.pp2.Data, old.pp2.Data)
		row = old.rows()
	} else if old != nil {
		// Surgical evictions tombstoned rows: compact live rows only, so the
		// dead rows' storage is reclaimed here.
		for k, v := range old.byKey {
			next.byKey[k] = row
			copy(next.reps1.Row(row), old.reps1.Row(v))
			copy(next.reps2.Row(row), old.reps2.Row(v))
			copy(next.pp1.Row(row), old.pp1.Row(v))
			copy(next.pp2.Row(row), old.pp2.Row(v))
			row++
		}
	}
	for _, p := range fresh {
		next.byKey[p.key] = row
		copy(next.reps1.Row(row), p.rep1)
		copy(next.reps2.Row(row), p.rep2)
		copy(next.pp1.Row(row), p.pp1)
		copy(next.pp2.Row(row), p.pp2)
		row++
	}
	c.resident.Store(next)
	c.promoted.Add(uint64(len(fresh)))
	c.promoteMu.Unlock()

	for _, p := range fresh {
		s := c.shard(p.key)
		s.mu.Lock()
		if _, ok := s.entries[p.key]; ok {
			delete(s.entries, p.key)
			c.size.Add(-1)
		}
		s.mu.Unlock()
	}
}
