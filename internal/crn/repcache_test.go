package crn

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"crn/internal/query"
	"crn/internal/sqlparse"
)

// cacheRow builds the four packed row slices (h=1, 2h=2) used by the small
// cache tests: rep1, rep2, pp1, pp2 with recognizable values derived from v.
func cacheRow(v float64) ([]float64, []float64, []float64, []float64) {
	return []float64{v}, []float64{v + 1}, []float64{v + 2, v + 3}, []float64{v + 4, v + 5}
}

func lookupRow(c *RepCache, key string) (bool, [6]float64) {
	r1, r2 := make([]float64, 1), make([]float64, 1)
	p1, p2 := make([]float64, 2), make([]float64, 2)
	ok := c.lookup(key, r1, r2, p1, p2)
	return ok, [6]float64{r1[0], r2[0], p1[0], p1[1], p2[0], p2[1]}
}

func TestRepCacheLookupInsertStats(t *testing.T) {
	c := NewRepCache(64)
	if ok, _ := lookupRow(c, "a"); ok {
		t.Fatal("empty cache should miss")
	}
	r1, r2, p1, p2 := cacheRow(10)
	c.insert(c.gen.Load(), "a", r1, r2, p1, p2)
	ok, got := lookupRow(c, "a")
	if !ok {
		t.Fatal("inserted key should hit")
	}
	if got != [6]float64{10, 11, 12, 13, 14, 15} {
		t.Fatalf("lookup copied %v", got)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Size != 1 || st.Capacity != 64 || st.Shards != repShards {
		t.Fatalf("stats = %+v", st)
	}
	// Inserted slices are clones: mutating the source must not leak in.
	s1, s2, s3, s4 := cacheRow(20)
	c.insert(c.gen.Load(), "b", s1, s2, s3, s4)
	s1[0], s3[1] = -1, -1
	if _, got := lookupRow(c, "b"); got[0] != 20 || got[3] != 23 {
		t.Errorf("insert must clone its inputs: %v", got)
	}
	// A stale-layout entry (different widths than the caller expects) is a
	// miss, never a partial copy.
	wide := make([]float64, 3)
	if c.lookup("a", wide, wide, wide, wide) {
		t.Error("layout-mismatched lookup must miss")
	}
}

func TestRepCacheInvalidateAndValidate(t *testing.T) {
	c := NewRepCache(8)
	a1, a2, a3, a4 := cacheRow(1)
	c.insert(c.gen.Load(), "a", a1, a2, a3, a4)
	c.Invalidate()
	if c.Stats().Size != 0 {
		t.Fatal("Invalidate should clear")
	}
	c.insert(c.gen.Load(), "a", a1, a2, a3, a4)
	c.Validate(3) // first observation adopts without flushing
	if c.Stats().Size != 1 {
		t.Fatal("first Validate must not flush")
	}
	c.Validate(3) // same version: no flush
	if c.Stats().Size != 1 {
		t.Fatal("same-version Validate must not flush")
	}
	c.Validate(4) // version bump: flush
	if c.Stats().Size != 0 {
		t.Fatal("version change must flush")
	}
}

func TestRepCachePromotion(t *testing.T) {
	c := NewRepCache(8)
	r1, r2, p1, p2 := cacheRow(7)
	c.promote(c.gen.Load(), []promotion{{key: "a", rep1: r1, rep2: r2, pp1: p1, pp2: p2}})
	snap := c.resident.Load()
	if snap == nil || snap.rows() != 1 {
		t.Fatalf("promotion did not publish: %+v", snap)
	}
	ri, ok := snap.byKey["a"]
	if !ok || snap.reps1.Row(ri)[0] != 7 || snap.pp2.Row(ri)[1] != 12 {
		t.Fatalf("resident row wrong: %v", snap)
	}
	// Promotion copies: mutating the source must not reach the snapshot.
	r1[0] = -1
	if snap.reps1.Row(ri)[0] != 7 {
		t.Error("promote must copy its inputs")
	}
	// Promoting a resident key again is a no-op (no duplicate rows).
	c.promote(c.gen.Load(), []promotion{{key: "a", rep1: r1, rep2: r2, pp1: p1, pp2: p2}})
	if got := c.resident.Load().rows(); got != 1 {
		t.Fatalf("duplicate promotion grew resident tier to %d", got)
	}
	// A second key appends while the first row's values survive.
	q1, q2, q3, q4 := cacheRow(20)
	c.promote(c.gen.Load(), []promotion{{key: "b", rep1: q1, rep2: q2, pp1: q3, pp2: q4}})
	snap = c.resident.Load()
	if snap.rows() != 2 || snap.reps1.Row(snap.byKey["a"])[0] != 7 || snap.reps1.Row(snap.byKey["b"])[0] != 20 {
		t.Fatalf("append lost rows: %+v", snap.byKey)
	}
	// Promotion removes the entry from the sharded tier.
	y1, y2, y3, y4 := cacheRow(30)
	c.insert(c.gen.Load(), "c", y1, y2, y3, y4)
	x1, x2, x3, x4 := cacheRow(30)
	c.promote(c.gen.Load(), []promotion{{key: "c", rep1: x1, rep2: x2, pp1: x3, pp2: x4}})
	st := c.Stats()
	if st.Resident != 3 || st.Size != 3 || st.Promoted != 3 {
		t.Fatalf("post-promotion stats = %+v", st)
	}
	// Invalidate drops the resident tier too.
	c.Invalidate()
	if c.resident.Load() != nil || c.Stats().Resident != 0 {
		t.Fatal("Invalidate must drop the resident snapshot")
	}
}

// TestRepCacheStaleWritebacksDropped is the regression gate for the
// flush-vs-writeback race: inserts and promotions whose values were
// computed before a flush (pool mutation, model swap) must not re-enter
// the freshly flushed cache.
func TestRepCacheStaleWritebacksDropped(t *testing.T) {
	c := NewRepCache(8)
	gen := c.gen.Load() // a request captures the generation, then computes
	c.Invalidate()      // ... a flush lands mid-request ...
	r1, r2, p1, p2 := cacheRow(7)
	c.insert(gen, "a", r1, r2, p1, p2) // ... and the writebacks must drop
	c.promote(gen, []promotion{{key: "b", rep1: r1, rep2: r2, pp1: p1, pp2: p2}})
	if st := c.Stats(); st.Size != 0 || st.Resident != 0 {
		t.Fatalf("stale writeback survived the flush: %+v", st)
	}
	// Current-generation writebacks still land.
	c.insert(c.gen.Load(), "a", r1, r2, p1, p2)
	c.promote(c.gen.Load(), []promotion{{key: "b", rep1: r1, rep2: r2, pp1: p1, pp2: p2}})
	if st := c.Stats(); st.Size != 2 || st.Resident != 1 {
		t.Fatalf("fresh writeback dropped: %+v", st)
	}
}

// TestRepCachePromotionDedupsWithinBatch: duplicate keys in one promotion
// batch (a batch estimate may carry the same probe twice) must produce one
// resident row, not an unreachable duplicate that eats capacity.
func TestRepCachePromotionDedupsWithinBatch(t *testing.T) {
	c := NewRepCache(8)
	r1, r2, p1, p2 := cacheRow(7)
	c.promote(c.gen.Load(), []promotion{
		{key: "a", rep1: r1, rep2: r2, pp1: p1, pp2: p2},
		{key: "a", rep1: r1, rep2: r2, pp1: p1, pp2: p2},
	})
	snap := c.resident.Load()
	if snap.rows() != 1 || len(snap.byKey) != 1 {
		t.Fatalf("duplicate promotion created %d rows (%d keys)", snap.rows(), len(snap.byKey))
	}
}

func TestRepCachePromotionRespectsCapacity(t *testing.T) {
	c := NewRepCache(4)
	var promos []promotion
	for i := 0; i < 10; i++ {
		r1, r2, p1, p2 := cacheRow(float64(i))
		promos = append(promos, promotion{key: fmt.Sprintf("k%d", i), rep1: r1, rep2: r2, pp1: p1, pp2: p2})
	}
	c.promote(c.gen.Load(), promos)
	if got := c.resident.Load().rows(); got > 4 {
		t.Fatalf("resident tier exceeded capacity: %d", got)
	}
}

func TestRepCacheCapacityBound(t *testing.T) {
	c := NewRepCache(32) // 2 entries per shard
	for i := 0; i < 300; i++ {
		r1, r2, p1, p2 := cacheRow(float64(i))
		c.insert(c.gen.Load(), fmt.Sprintf("k%d", i), r1, r2, p1, p2)
	}
	if s := c.Stats().Size; s > 32+repShards {
		t.Fatalf("cache exceeded capacity: %d", s)
	}
	// Re-inserting an existing key at capacity must not evict others.
	before := c.Stats().Size
	for k := 0; k < 3; k++ {
		z1, z2, z3, z4 := cacheRow(1)
		c.insert(c.gen.Load(), "k299", z1, z2, z3, z4)
	}
	if after := c.Stats().Size; after < before {
		t.Fatalf("overwrite shrank cache: %d -> %d", before, after)
	}
	// Nil cache is inert.
	var nc *RepCache
	nc.Invalidate()
	nc.Validate(1)
	if st := nc.Stats(); st != (RepCacheStats{}) {
		t.Fatalf("nil stats = %+v", st)
	}
}

// TestRepCacheShardSpread sanity-checks that the key hash actually stripes:
// a few hundred distinct keys must not all land in one shard.
func TestRepCacheShardSpread(t *testing.T) {
	c := NewRepCache(10000)
	for i := 0; i < 256; i++ {
		r1, r2, p1, p2 := cacheRow(float64(i))
		c.insert(c.gen.Load(), fmt.Sprintf("SELECT * FROM t WHERE t.a > %d", i), r1, r2, p1, p2)
	}
	max := 0
	for i := range c.shards {
		if n := len(c.shards[i].entries); n > max {
			max = n
		}
	}
	if max == 256 {
		t.Fatal("all keys hashed to one shard")
	}
}

// TestRatesCachedMatchesUncached is the core cache-equivalence gate:
// estimates through a cached Rates — cold, warm (sharded-tier hits),
// resident (pool-resident precompute hits), and after invalidation — are
// bit-identical to the uncached adapter.
func TestRatesCachedMatchesUncached(t *testing.T) {
	r, s := ratesFixture(t)
	cached := &Rates{M: r.M, Enc: r.Enc, Cache: NewRepCache(64)}

	qs := []query.Query{
		sqlparse.MustParse(s, "SELECT * FROM title WHERE title.kind_id = 1"),
		sqlparse.MustParse(s, "SELECT * FROM title WHERE title.kind_id < 5"),
		sqlparse.MustParse(s, "SELECT * FROM title WHERE title.production_year > 1950"),
		sqlparse.MustParse(s, "SELECT * FROM title"),
	}
	var idx [][2]int
	for i := range qs {
		for j := range qs {
			idx = append(idx, [2]int{i, j})
		}
	}
	ctx := context.Background()
	want, err := r.EstimateRatesIndexed(ctx, qs, idx)
	if err != nil {
		t.Fatal(err)
	}
	for pass, label := range []string{"cold", "warm", "resident", "post-invalidate"} {
		if label == "post-invalidate" {
			cached.Cache.Invalidate()
		}
		got, err := cached.EstimateRatesIndexed(ctx, qs, idx)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s pass %d pair %d: cached %v uncached %v", label, pass, i, got[i], want[i])
			}
		}
		if label == "resident" {
			if st := cached.Cache.Stats(); st.Resident == 0 {
				t.Fatalf("third pass should serve from the resident tier: %+v", st)
			}
		}
	}
	st := cached.Cache.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Errorf("expected both hits and misses, got %+v", st)
	}
	if st.Promoted == 0 {
		t.Errorf("recurring queries were never promoted: %+v", st)
	}
}

// TestRepCacheConcurrentUse hammers lookup/insert/promote/invalidate from
// many goroutines; run under -race this is the cache's thread-safety gate.
func TestRepCacheConcurrentUse(t *testing.T) {
	c := NewRepCache(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r1, r2 := make([]float64, 1), make([]float64, 1)
			p1, p2 := make([]float64, 2), make([]float64, 2)
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (w*7+i)%40)
				if snap := c.resident.Load(); snap != nil {
					if ri, ok := snap.byKey[key]; ok {
						_ = snap.reps1.Row(ri)[0]
						c.hitResident()
						continue
					}
				}
				if c.lookup(key, r1, r2, p1, p2) {
					c.promote(c.gen.Load(), []promotion{{key: key, rep1: r1, rep2: r2, pp1: p1, pp2: p2}})
				} else {
					a, b, d, e := cacheRow(float64(i))
					c.insert(c.gen.Load(), key, a, b, d, e)
				}
				switch i % 50 {
				case 17:
					c.Invalidate()
				case 33:
					c.Validate(uint64(i))
				}
				c.Stats()
			}
		}(w)
	}
	wg.Wait()
}

// TestRepCacheSurgicalRemove pins the PR 5 surgical-invalidation path: a
// pool eviction delivered through PoolMutated drops exactly the evicted
// key's rows from both tiers, leaves every other entry warm, raises the
// absorbed version so the next Validate does not flush, and the next
// promotion compacts tombstoned resident rows away.
func TestRepCacheSurgicalRemove(t *testing.T) {
	c := NewRepCache(8)
	c.Validate(1)
	a1, a2, a3, a4 := cacheRow(1)
	b1, b2, b3, b4 := cacheRow(2)
	s1, s2, s3, s4 := cacheRow(3)
	c.promote(c.gen.Load(), []promotion{
		{key: "a", rep1: a1, rep2: a2, pp1: a3, pp2: a4},
		{key: "b", rep1: b1, rep2: b2, pp1: b3, pp2: b4},
	})
	c.insert(c.gen.Load(), "s", s1, s2, s3, s4)

	// Insert-only mutation: nothing is dropped, version is absorbed.
	c.PoolMutated(2, "")
	if st := c.Stats(); st.Resident != 2 || st.Size != 3 {
		t.Fatalf("insert mutation must not drop anything: %+v", st)
	}
	c.Validate(2)
	if st := c.Stats(); st.Size != 3 {
		t.Fatalf("absorbed version must not flush on Validate: %+v", st)
	}

	// Evict a resident key: one tombstone, the other row stays readable.
	c.PoolMutated(3, "a")
	snap := c.resident.Load()
	if _, ok := snap.byKey["a"]; ok {
		t.Fatal("evicted key must leave the resident map")
	}
	if st := c.Stats(); st.Resident != 1 || st.Size != 2 {
		t.Fatalf("stats after resident eviction = %+v", st)
	}
	if snap.reps1.Row(snap.byKey["b"])[0] != 2 {
		t.Fatal("surviving resident row corrupted")
	}

	// Evict a sharded-tier key.
	c.PoolMutated(4, "s")
	if ok, _ := lookupRow(c, "s"); ok {
		t.Fatal("evicted sharded entry must miss")
	}
	// Unknown keys are a no-op.
	c.PoolMutated(5, "never-seen")
	c.Validate(5)
	if st := c.Stats(); st.Size != 1 || st.Resident != 1 {
		t.Fatalf("post-absorption stats = %+v", st)
	}

	// The next promotion compacts the tombstone away: two live keys, two
	// rows, values intact.
	d1, d2, d3, d4 := cacheRow(9)
	c.promote(c.gen.Load(), []promotion{{key: "d", rep1: d1, rep2: d2, pp1: d3, pp2: d4}})
	snap = c.resident.Load()
	if snap.rows() != 2 || snap.deadRows() != 0 {
		t.Fatalf("promotion should compact tombstones: rows=%d dead=%d", snap.rows(), snap.deadRows())
	}
	if snap.reps1.Row(snap.byKey["b"])[0] != 2 || snap.reps1.Row(snap.byKey["d"])[0] != 9 {
		t.Fatal("compaction scrambled rows")
	}
}

// TestRepCacheValidateMonotone pins the monotone comparison: an estimate
// that loaded the pool version just before a concurrent, already absorbed
// mutation (so it validates with an OLDER version than the cache has seen)
// must not flush the cache.
func TestRepCacheValidateMonotone(t *testing.T) {
	c := NewRepCache(8)
	c.Validate(7)
	a1, a2, a3, a4 := cacheRow(1)
	c.insert(c.gen.Load(), "a", a1, a2, a3, a4)
	c.PoolMutated(9, "") // listener absorbed version 9
	c.Validate(8)        // stale observer
	if c.Stats().Size != 1 {
		t.Fatal("older-version Validate after absorption must not flush")
	}
	c.Validate(10) // genuinely unabsorbed mutation: flush
	if c.Stats().Size != 0 {
		t.Fatal("unabsorbed newer version must flush")
	}
}
