package crn

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"crn/internal/query"
	"crn/internal/sqlparse"
)

func TestRepCacheLookupInsertStats(t *testing.T) {
	c := NewRepCache(4)
	d1 := make([]float64, 2)
	d2 := make([]float64, 2)
	if c.lookup("a", d1, d2) {
		t.Fatal("empty cache should miss")
	}
	c.insert("a", []float64{1, 2}, []float64{3, 4})
	if !c.lookup("a", d1, d2) {
		t.Fatal("inserted key should hit")
	}
	if d1[0] != 1 || d1[1] != 2 || d2[0] != 3 || d2[1] != 4 {
		t.Fatalf("lookup copied %v %v", d1, d2)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Size != 1 || st.Capacity != 4 {
		t.Fatalf("stats = %+v", st)
	}
	// Inserted slices are clones: mutating the source must not leak in.
	src1, src2 := []float64{9, 9}, []float64{8, 8}
	c.insert("b", src1, src2)
	src1[0] = -1
	c.lookup("b", d1, d2)
	if d1[0] != 9 {
		t.Error("insert must clone its inputs")
	}
}

func TestRepCacheInvalidateAndValidate(t *testing.T) {
	c := NewRepCache(8)
	c.insert("a", []float64{1}, []float64{2})
	c.Invalidate()
	if c.Stats().Size != 0 {
		t.Fatal("Invalidate should clear")
	}
	c.insert("a", []float64{1}, []float64{2})
	c.Validate(3) // first observation adopts without flushing
	if c.Stats().Size != 1 {
		t.Fatal("first Validate must not flush")
	}
	c.Validate(3) // same version: no flush
	if c.Stats().Size != 1 {
		t.Fatal("same-version Validate must not flush")
	}
	c.Validate(4) // version bump: flush
	if c.Stats().Size != 0 {
		t.Fatal("version change must flush")
	}
}

func TestRepCacheCapacityBound(t *testing.T) {
	c := NewRepCache(8)
	for i := 0; i < 100; i++ {
		c.insert(fmt.Sprintf("k%d", i), []float64{float64(i)}, []float64{0})
	}
	if s := c.Stats().Size; s > 8 {
		t.Fatalf("cache exceeded capacity: %d", s)
	}
	// Re-inserting an existing key at capacity must not evict others.
	before := c.Stats().Size
	for k := 0; k < 3; k++ {
		c.insert("k99", []float64{1}, []float64{2})
	}
	if after := c.Stats().Size; after < before {
		t.Fatalf("overwrite shrank cache: %d -> %d", before, after)
	}
	// Nil cache is inert.
	var nc *RepCache
	nc.Invalidate()
	nc.Validate(1)
	if st := nc.Stats(); st != (RepCacheStats{}) {
		t.Fatalf("nil stats = %+v", st)
	}
}

// TestRatesCachedMatchesUncached is the core cache-equivalence gate:
// estimates through a cached Rates — cold, warm, and after invalidation —
// are bit-identical to the uncached adapter.
func TestRatesCachedMatchesUncached(t *testing.T) {
	r, s := ratesFixture(t)
	cached := &Rates{M: r.M, Enc: r.Enc, Cache: NewRepCache(64)}

	qs := []query.Query{
		sqlparse.MustParse(s, "SELECT * FROM title WHERE title.kind_id = 1"),
		sqlparse.MustParse(s, "SELECT * FROM title WHERE title.kind_id < 5"),
		sqlparse.MustParse(s, "SELECT * FROM title WHERE title.production_year > 1950"),
		sqlparse.MustParse(s, "SELECT * FROM title"),
	}
	var idx [][2]int
	for i := range qs {
		for j := range qs {
			idx = append(idx, [2]int{i, j})
		}
	}
	ctx := context.Background()
	want, err := r.EstimateRatesIndexed(ctx, qs, idx)
	if err != nil {
		t.Fatal(err)
	}
	for pass, label := range []string{"cold", "warm", "post-invalidate"} {
		if label == "post-invalidate" {
			cached.Cache.Invalidate()
		}
		got, err := cached.EstimateRatesIndexed(ctx, qs, idx)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s pass %d pair %d: cached %v uncached %v", label, pass, i, got[i], want[i])
			}
		}
	}
	st := cached.Cache.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Errorf("expected both hits and misses, got %+v", st)
	}
}

// TestRepCacheConcurrentUse hammers lookup/insert/invalidate from many
// goroutines; run under -race this is the cache's thread-safety gate.
func TestRepCacheConcurrentUse(t *testing.T) {
	c := NewRepCache(32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			d1, d2 := make([]float64, 4), make([]float64, 4)
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (w*7+i)%40)
				if !c.lookup(key, d1, d2) {
					c.insert(key, []float64{1, 2, 3, 4}, []float64{5, 6, 7, 8})
				}
				switch i % 50 {
				case 17:
					c.Invalidate()
				case 33:
					c.Validate(uint64(i))
				}
				c.Stats()
			}
		}(w)
	}
	wg.Wait()
}
