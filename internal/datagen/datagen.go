// Package datagen synthesizes the IMDb-like database used by the
// reproduction. The real IMDb snapshot the paper evaluates on (2.5M titles)
// is not redistributable, so we generate a scaled-down database over the same
// six-table schema whose defining property — the one the paper exploits — is
// preserved: strong within-table and join-crossing correlations.
//
// Correlations are planted through latent per-movie variables (genre, era,
// country) drawn jointly: a movie's genre biases its era and country, and all
// satellite-table attributes (companies, cast, info values, keywords) are
// drawn from genre/era/country-specific blocks with Zipfian skew. A
// predicate on title.production_year therefore carries information about
// movie_companies.company_id three tables away — the "join crossing
// correlations" (Leis et al.) that break independence-assumption estimators
// and that the paper's evaluation targets.
package datagen

import (
	"fmt"
	"math/rand"

	"crn/internal/db"
	"crn/internal/schema"
)

// Config controls database size and shape. The zero value is not valid; use
// DefaultConfig and override fields as needed.
type Config struct {
	Seed   int64
	Titles int // number of rows in the fact table `title`

	// Average satellite rows per title. Actual per-title counts are drawn
	// uniformly from [0, 2*avg], so some titles have no rows in a satellite
	// table (joins can shrink results, as in real IMDb).
	CompaniesPerTitle float64
	CastPerTitle      float64
	InfoPerTitle      float64
	InfoIdxPerTitle   float64
	KeywordsPerTitle  float64

	// Domain sizes per latent block. Larger values mean more distinct
	// company/person/keyword ids.
	CompaniesPerBlock int
	PersonsPerBlock   int
	KeywordsPerBlock  int
}

// DefaultConfig returns the configuration used by unit tests and the default
// experiment scale (~45k rows in total).
func DefaultConfig() Config {
	return Config{
		Seed:              1,
		Titles:            4000,
		CompaniesPerTitle: 2.0,
		CastPerTitle:      3.0,
		InfoPerTitle:      2.0,
		InfoIdxPerTitle:   1.2,
		KeywordsPerTitle:  1.8,
		CompaniesPerBlock: 40,
		PersonsPerBlock:   300,
		KeywordsPerBlock:  120,
	}
}

// Latent dimensions of the movie clusters.
const (
	numGenres    = 8
	numEras      = 5
	numCountries = 10
)

// Generate builds and freezes a synthetic database for the given config.
func Generate(cfg Config) (*db.Database, error) {
	if cfg.Titles <= 0 {
		return nil, fmt.Errorf("datagen: Titles must be positive, got %d", cfg.Titles)
	}
	if cfg.CompaniesPerBlock <= 0 || cfg.PersonsPerBlock <= 0 || cfg.KeywordsPerBlock <= 0 {
		return nil, fmt.Errorf("datagen: block sizes must be positive")
	}
	s := schema.IMDB()
	d := db.NewDatabase(s)
	rng := rand.New(rand.NewSource(cfg.Seed))

	zipfCompany := rand.NewZipf(rng, 1.3, 1, uint64(cfg.CompaniesPerBlock-1))
	zipfPerson := rand.NewZipf(rng, 1.2, 1, uint64(cfg.PersonsPerBlock-1))
	zipfKeyword := rand.NewZipf(rng, 1.4, 1, uint64(cfg.KeywordsPerBlock-1))

	for i := 0; i < cfg.Titles; i++ {
		id := int64(i + 1)
		genre := rng.Intn(numGenres)
		era := correlatedEra(rng, genre)
		country := correlatedCountry(rng, genre)

		kind := kindFor(rng, genre)
		year := yearFor(rng, era)
		season, episode := seriesFor(rng, kind)
		if err := d.AppendRow(schema.Title, id, kind, year, season, episode); err != nil {
			return nil, err
		}

		// movie_companies: modern eras attract more companies; company ids
		// live in era-major (era, country) blocks, so ranges of company_id
		// correlate strongly with production_year across the join.
		nmc := drawCount(rng, cfg.CompaniesPerTitle*(0.5+0.25*float64(era)))
		for k := 0; k < nmc; k++ {
			block := int64(era*numCountries + country)
			companyID := block*int64(cfg.CompaniesPerBlock) + int64(zipfCompany.Uint64()) + 1
			companyType := int64(1 + (genre+k)%4)
			if err := d.AppendRow(schema.MovieCompany, id, companyID, companyType); err != nil {
				return nil, err
			}
		}

		// cast_info: series have smaller recurring casts; person ids live in
		// genre blocks (actors stick to genres), so person_id correlates
		// with title.kind_id across the join.
		castAvg := cfg.CastPerTitle
		if kind == 2 {
			castAvg *= 0.6
		}
		nci := drawCount(rng, castAvg)
		for k := 0; k < nci; k++ {
			personID := int64(genre*cfg.PersonsPerBlock) + int64(zipfPerson.Uint64()) + 1
			roleID := roleFor(rng, genre, k)
			if err := d.AppendRow(schema.CastInfo, id, personID, roleID, int64(k+1)); err != nil {
				return nil, err
			}
		}

		// movie_info: info types are genre-typical (75%); values encode era
		// and type with tight noise, so value ranges pin down the era.
		nmi := drawCount(rng, cfg.InfoPerTitle)
		for k := 0; k < nmi; k++ {
			var infoType int64
			if rng.Float64() < 0.75 {
				infoType = int64(1 + (genre*2)%20)
			} else {
				infoType = int64(1 + rng.Intn(20))
			}
			infoVal := int64(era*150) + infoType*10 + int64(rng.Intn(40))
			if err := d.AppendRow(schema.MovieInfo, id, infoType, infoVal); err != nil {
				return nil, err
			}
		}

		// movie_info_idx: rating-like values strongly tied to genre.
		nmx := drawCount(rng, cfg.InfoIdxPerTitle)
		for k := 0; k < nmx; k++ {
			infoType := int64(1 + rng.Intn(5))
			infoVal := int64(10+genre*8) + int64(rng.Intn(12))
			if err := d.AppendRow(schema.MovieInfoIdx, id, infoType, infoVal); err != nil {
				return nil, err
			}
		}

		// movie_keyword: keyword ids live in genre blocks; modern titles are
		// tagged more heavily.
		nmk := drawCount(rng, cfg.KeywordsPerTitle*(0.6+0.2*float64(era)))
		for k := 0; k < nmk; k++ {
			keywordID := int64(genre*cfg.KeywordsPerBlock) + int64(zipfKeyword.Uint64()) + 1
			if err := d.AppendRow(schema.MovieKeyword, id, keywordID); err != nil {
				return nil, err
			}
		}
	}
	d.Freeze()
	return d, nil
}

// correlatedEra draws an era whose distribution is peaked at a
// genre-dependent mode: 85% at the mode, the rest uniform. The strength is
// deliberately high — the paper evaluates on IMDb precisely because its
// correlations break independence-assumption estimators.
func correlatedEra(rng *rand.Rand, genre int) int {
	mode := genre % numEras
	if rng.Float64() < 0.9 {
		return mode
	}
	return rng.Intn(numEras)
}

// correlatedCountry draws a country biased (80%) toward a genre-dependent
// home country.
func correlatedCountry(rng *rand.Rand, genre int) int {
	home := (genre * 3) % numCountries
	if rng.Float64() < 0.8 {
		return home
	}
	return rng.Intn(numCountries)
}

// kindFor maps genre to title.kind_id in [1,7] with 8% noise.
func kindFor(rng *rand.Rand, genre int) int64 {
	if rng.Float64() < 0.92 {
		return int64(1 + genre%7)
	}
	return int64(1 + rng.Intn(7))
}

// yearFor maps era to a production year band: era e covers
// [1880+26e, 1880+26e+25].
func yearFor(rng *rand.Rand, era int) int64 {
	return int64(1880 + era*26 + rng.Intn(26))
}

// seriesFor assigns season/episode numbers to series (kind_id == 2) and
// zeroes elsewhere.
func seriesFor(rng *rand.Rand, kind int64) (season, episode int64) {
	if kind != 2 {
		return 0, 0
	}
	season = int64(1 + rng.Intn(15))
	episode = int64(1 + rng.Intn(50))
	return season, episode
}

// roleFor maps genre and cast position to role_id in [1,11]: the first two
// positions are genre-typical lead roles, the rest spread out.
func roleFor(rng *rand.Rand, genre, position int) int64 {
	if position < 2 && rng.Float64() < 0.7 {
		return int64(1 + genre%4)
	}
	return int64(1 + rng.Intn(11))
}

// drawCount draws a per-title satellite row count uniform on [0, 2*avg],
// which has mean avg and allows empty satellites.
func drawCount(rng *rand.Rand, avg float64) int {
	hi := int(2*avg + 0.5)
	if hi <= 0 {
		return 0
	}
	return rng.Intn(hi + 1)
}
