package datagen

import (
	"math"
	"testing"

	"crn/internal/db"
	"crn/internal/schema"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Titles = 500
	return cfg
}

func mustGenerate(t *testing.T, cfg Config) *db.Database {
	t.Helper()
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGenerateBasicShape(t *testing.T) {
	cfg := smallConfig()
	d := mustGenerate(t, cfg)
	if !d.Frozen() {
		t.Fatal("generated database should be frozen")
	}
	if got := d.NumRows(schema.Title); got != cfg.Titles {
		t.Errorf("title rows = %d, want %d", got, cfg.Titles)
	}
	// Satellite counts land near avg*titles (uniform [0,2avg] has mean avg).
	checks := []struct {
		table string
		avg   float64
	}{
		{schema.CastInfo, cfg.CastPerTitle},
		{schema.MovieInfo, cfg.InfoPerTitle},
	}
	for _, c := range checks {
		got := float64(d.NumRows(c.table))
		want := c.avg * float64(cfg.Titles)
		if got < want*0.7 || got > want*1.3 {
			t.Errorf("%s rows = %v, want about %v", c.table, got, want)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := mustGenerate(t, smallConfig())
	b := mustGenerate(t, smallConfig())
	for _, tab := range []string{schema.Title, schema.MovieCompany, schema.CastInfo} {
		ta, tb := a.Table(tab), b.Table(tab)
		if ta.NumRows() != tb.NumRows() {
			t.Fatalf("%s row count differs: %d vs %d", tab, ta.NumRows(), tb.NumRows())
		}
		for _, col := range ta.Columns() {
			ca, cb := ta.Column(col), tb.Column(col)
			for i := range ca {
				if ca[i] != cb[i] {
					t.Fatalf("%s.%s row %d differs: %d vs %d", tab, col, i, ca[i], cb[i])
				}
			}
		}
	}
}

func TestGenerateSeedChangesData(t *testing.T) {
	cfg2 := smallConfig()
	cfg2.Seed = 99
	a := mustGenerate(t, smallConfig())
	b := mustGenerate(t, cfg2)
	ca := a.Table(schema.Title).Column("production_year")
	cb := b.Table(schema.Title).Column("production_year")
	same := true
	for i := 0; i < min(len(ca), len(cb)); i++ {
		if ca[i] != cb[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should produce different data")
	}
}

func TestDomains(t *testing.T) {
	d := mustGenerate(t, smallConfig())
	title := d.Table(schema.Title)
	for i, k := range title.Column("kind_id") {
		if k < 1 || k > 7 {
			t.Fatalf("kind_id[%d] = %d out of [1,7]", i, k)
		}
	}
	for i, y := range title.Column("production_year") {
		if y < 1880 || y > 2010 {
			t.Fatalf("production_year[%d] = %d out of range", i, y)
		}
	}
	kinds := title.Column("kind_id")
	for i, s := range title.Column("season_nr") {
		if kinds[i] != 2 && s != 0 {
			t.Fatalf("non-series title %d has season %d", i, s)
		}
	}
}

// The planted correlation: production_year (an era proxy) must be predictive
// of company_id block across the title⋈movie_companies join. We verify with
// a coarse mutual-information-style check: the company-id era block
// distribution differs sharply between early and late movies.
func TestJoinCrossingCorrelation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Titles = 2000
	d := mustGenerate(t, cfg)
	title := d.Table(schema.Title)
	years := title.Column("production_year")
	idx := d.KeyIndex(schema.ColumnRef{Table: schema.MovieCompany, Column: "movie_id"})
	companies := d.Table(schema.MovieCompany).Column("company_id")

	blockOf := func(companyID int64) int {
		// Era is the high-order part of the block index.
		return int((companyID - 1) / int64(cfg.CompaniesPerBlock) / numCountries)
	}
	var early, late [numEras]float64
	var nEarly, nLate float64
	for i, y := range years {
		movieID := int64(i + 1)
		for _, row := range idx[movieID] {
			b := blockOf(companies[row])
			if y < 1920 {
				early[b]++
				nEarly++
			} else if y > 1985 {
				late[b]++
				nLate++
			}
		}
	}
	if nEarly < 50 || nLate < 50 {
		t.Fatalf("not enough joined rows: early=%v late=%v", nEarly, nLate)
	}
	// L1 distance between the two conditional distributions should be large
	// (independent data would give ~0).
	var l1 float64
	for b := 0; b < numEras; b++ {
		l1 += math.Abs(early[b]/nEarly - late[b]/nLate)
	}
	if l1 < 0.5 {
		t.Errorf("join-crossing correlation too weak: L1=%v", l1)
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.Titles = 0
	if _, err := Generate(bad); err == nil {
		t.Error("Titles=0 should fail")
	}
	bad = DefaultConfig()
	bad.PersonsPerBlock = 0
	if _, err := Generate(bad); err == nil {
		t.Error("zero block size should fail")
	}
}

func TestSatelliteSkew(t *testing.T) {
	d := mustGenerate(t, smallConfig())
	// Zipf skew: the most frequent keyword should be much more common than
	// the median keyword.
	counts := map[int64]int{}
	for _, k := range d.Table(schema.MovieKeyword).Column("keyword_id") {
		counts[k]++
	}
	maxC := 0
	total := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
		total += c
	}
	if len(counts) == 0 {
		t.Fatal("no keywords generated")
	}
	avg := float64(total) / float64(len(counts))
	if float64(maxC) < 3*avg {
		t.Errorf("keyword distribution not skewed: max=%d avg=%.1f", maxC, avg)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
