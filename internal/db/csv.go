package db

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"crn/internal/schema"
)

// LoadCSV builds a frozen database from one CSV file per schema table in
// dir: <table>.csv with a header row naming the catalog columns (any
// order) and integer-coded values. This is the bring-your-own-data path: a
// real IMDb extract exported table-by-table loads directly.
func LoadCSV(s *schema.Schema, dir string) (*Database, error) {
	d := NewDatabase(s)
	for _, td := range s.Tables {
		path := filepath.Join(dir, td.Name+".csv")
		if err := loadTableCSV(d, td, path); err != nil {
			return nil, err
		}
	}
	d.Freeze()
	return d, nil
}

func loadTableCSV(d *Database, td schema.TableDef, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("db: open %s: %w", path, err)
	}
	defer f.Close()
	r := csv.NewReader(f)
	r.ReuseRecord = true
	header, err := r.Read()
	if err != nil {
		return fmt.Errorf("db: read header of %s: %w", path, err)
	}
	// Map file column order to catalog order.
	perm := make([]int, len(td.Columns))
	for i, c := range td.Columns {
		perm[i] = -1
		for j, h := range header {
			if h == c.Name {
				perm[i] = j
				break
			}
		}
		if perm[i] == -1 {
			return fmt.Errorf("db: %s: missing column %q", path, c.Name)
		}
	}
	row := make([]Value, len(td.Columns))
	line := 1
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("db: %s line %d: %w", path, line+1, err)
		}
		line++
		for i, j := range perm {
			v, err := strconv.ParseInt(rec[j], 10, 64)
			if err != nil {
				return fmt.Errorf("db: %s line %d column %q: %w", path, line, td.Columns[i].Name, err)
			}
			row[i] = v
		}
		if err := d.AppendRow(td.Name, row...); err != nil {
			return err
		}
	}
}

// WriteCSV exports every table of the database as <table>.csv under dir
// (created if absent), the inverse of LoadCSV.
func WriteCSV(d *Database, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("db: mkdir %s: %w", dir, err)
	}
	for _, td := range d.Schema.Tables {
		if err := writeTableCSV(d, td, filepath.Join(dir, td.Name+".csv")); err != nil {
			return err
		}
	}
	return nil
}

func writeTableCSV(d *Database, td schema.TableDef, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("db: create %s: %w", path, err)
	}
	defer f.Close()
	w := csv.NewWriter(f)
	header := make([]string, len(td.Columns))
	for i, c := range td.Columns {
		header[i] = c.Name
	}
	if err := w.Write(header); err != nil {
		return err
	}
	t := d.Table(td.Name)
	cols := make([][]Value, len(td.Columns))
	for i, c := range td.Columns {
		cols[i] = t.Column(c.Name)
	}
	rec := make([]string, len(td.Columns))
	for row := 0; row < t.NumRows(); row++ {
		for i := range cols {
			rec[i] = strconv.FormatInt(cols[i][row], 10)
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return fmt.Errorf("db: write %s: %w", path, err)
	}
	return f.Close()
}
