package db

import (
	"os"
	"path/filepath"
	"testing"

	"crn/internal/schema"
)

func TestCSVRoundTrip(t *testing.T) {
	s := testSchema()
	d := NewDatabase(s)
	for i := int64(0); i < 25; i++ {
		if err := d.AppendRow("t", i, i%5); err != nil {
			t.Fatal(err)
		}
		if err := d.AppendRow("c", i%7, i*3); err != nil {
			t.Fatal(err)
		}
	}
	d.Freeze()
	dir := t.TempDir()
	if err := WriteCSV(d, dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCSV(s, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Frozen() {
		t.Fatal("loaded database should be frozen")
	}
	for _, tab := range []string{"t", "c"} {
		orig, got := d.Table(tab), loaded.Table(tab)
		if orig.NumRows() != got.NumRows() {
			t.Fatalf("%s rows %d != %d", tab, got.NumRows(), orig.NumRows())
		}
		for _, col := range orig.Columns() {
			a, b := orig.Column(col), got.Column(col)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s.%s[%d]: %d != %d", tab, col, i, b[i], a[i])
				}
			}
		}
	}
	// Stats identical after round trip.
	ref := schema.ColumnRef{Table: "t", Column: "a"}
	sa, _ := d.Stats(ref)
	sb, _ := loaded.Stats(ref)
	if sa != sb {
		t.Errorf("stats differ: %+v vs %+v", sa, sb)
	}
}

func TestLoadCSVHeaderReorder(t *testing.T) {
	s := testSchema()
	dir := t.TempDir()
	// Columns in reverse order relative to the catalog.
	writeFile(t, filepath.Join(dir, "t.csv"), "a,id\n7,1\n9,2\n")
	writeFile(t, filepath.Join(dir, "c.csv"), "b,tid\n5,1\n")
	d, err := LoadCSV(s, dir)
	if err != nil {
		t.Fatal(err)
	}
	col := d.Table("t").Column("a")
	if col[0] != 7 || col[1] != 9 {
		t.Errorf("reordered load failed: %v", col)
	}
}

func TestLoadCSVErrors(t *testing.T) {
	s := testSchema()

	t.Run("missing file", func(t *testing.T) {
		if _, err := LoadCSV(s, t.TempDir()); err == nil {
			t.Error("missing files should fail")
		}
	})
	t.Run("missing column", func(t *testing.T) {
		dir := t.TempDir()
		writeFile(t, filepath.Join(dir, "t.csv"), "id\n1\n")
		writeFile(t, filepath.Join(dir, "c.csv"), "tid,b\n1,2\n")
		if _, err := LoadCSV(s, dir); err == nil {
			t.Error("missing column should fail")
		}
	})
	t.Run("non-integer value", func(t *testing.T) {
		dir := t.TempDir()
		writeFile(t, filepath.Join(dir, "t.csv"), "id,a\n1,x\n")
		writeFile(t, filepath.Join(dir, "c.csv"), "tid,b\n1,2\n")
		if _, err := LoadCSV(s, dir); err == nil {
			t.Error("non-integer value should fail")
		}
	})
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
