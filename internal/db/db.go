// Package db implements the in-memory column store that backs the
// reproduction: typed integer columns, per-column statistics and foreign-key
// adjacency indexes. A Database is an immutable snapshot once Freeze has been
// called — exactly the "immutable snapshot of the database" on which the
// paper trains and evaluates its models (§3.3).
package db

import (
	"fmt"
	"sort"

	"crn/internal/schema"
)

// Value is the domain of every column. The paper's featurization handles
// numeric values (strings are future work, §9); all synthetic IMDb columns
// are integer-coded.
type Value = int64

// Table stores one relation column-wise.
type Table struct {
	Name string
	cols map[string][]Value
	// order preserves catalog column order for deterministic iteration.
	order []string
	rows  int
}

// NewTable creates an empty table with the given columns.
func NewTable(name string, columns []string) *Table {
	t := &Table{Name: name, cols: make(map[string][]Value, len(columns))}
	for _, c := range columns {
		t.cols[c] = nil
		t.order = append(t.order, c)
	}
	return t
}

// AppendRow appends one row; values must be given in catalog column order.
func (t *Table) AppendRow(values ...Value) error {
	if len(values) != len(t.order) {
		return fmt.Errorf("db: table %s has %d columns, got %d values", t.Name, len(t.order), len(values))
	}
	for i, c := range t.order {
		t.cols[c] = append(t.cols[c], values[i])
	}
	t.rows++
	return nil
}

// NumRows returns the row count.
func (t *Table) NumRows() int { return t.rows }

// Column returns the backing slice of the named column (shared, do not
// mutate) or nil if the column does not exist.
func (t *Table) Column(name string) []Value { return t.cols[name] }

// Columns returns the column names in catalog order.
func (t *Table) Columns() []string { return append([]string(nil), t.order...) }

// ColumnStats summarizes one column for featurization (value normalization
// needs min/max) and for the PostgreSQL-style estimator (n_distinct).
type ColumnStats struct {
	Min, Max  Value
	NDistinct int
	NumRows   int
}

// Normalize maps v into [0,1] using the column's min/max, the featurization
// rule of the paper (§3.2.1). Degenerate single-valued columns map to 0.
func (s ColumnStats) Normalize(v Value) float64 {
	if s.Max <= s.Min {
		return 0
	}
	x := float64(v-s.Min) / float64(s.Max-s.Min)
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Database is a set of tables conforming to a schema, plus derived statistics
// and indexes. Build one with NewDatabase + AppendRow, then Freeze it.
type Database struct {
	Schema *schema.Schema
	tables map[string]*Table

	frozen bool
	stats  map[string]ColumnStats // "table.column" -> stats
	// fkIndex maps a key column ("table.column") to join-value -> row ids.
	fkIndex map[string]map[Value][]int32
}

// NewDatabase creates an empty database with one table per schema table.
func NewDatabase(s *schema.Schema) *Database {
	d := &Database{Schema: s, tables: make(map[string]*Table, len(s.Tables))}
	for _, td := range s.Tables {
		cols := make([]string, len(td.Columns))
		for i, c := range td.Columns {
			cols[i] = c.Name
		}
		d.tables[td.Name] = NewTable(td.Name, cols)
	}
	return d
}

// Table returns the named table, or nil if absent.
func (d *Database) Table(name string) *Table { return d.tables[name] }

// AppendRow appends a row to the named table. It fails on frozen databases.
func (d *Database) AppendRow(table string, values ...Value) error {
	if d.frozen {
		return fmt.Errorf("db: database is frozen")
	}
	t := d.tables[table]
	if t == nil {
		return fmt.Errorf("db: unknown table %q", table)
	}
	return t.AppendRow(values...)
}

// Freeze finalizes the database: computes per-column statistics and builds
// hash indexes on every key column. After Freeze the database is immutable
// and safe for concurrent readers.
func (d *Database) Freeze() {
	if d.frozen {
		return
	}
	d.stats = make(map[string]ColumnStats)
	d.fkIndex = make(map[string]map[Value][]int32)
	for _, td := range d.Schema.Tables {
		t := d.tables[td.Name]
		for _, c := range td.Columns {
			col := t.Column(c.Name)
			d.stats[c.Qualified()] = computeStats(col)
			if c.Key {
				idx := make(map[Value][]int32)
				for i, v := range col {
					idx[v] = append(idx[v], int32(i))
				}
				d.fkIndex[c.Qualified()] = idx
			}
		}
	}
	d.frozen = true
}

// Frozen reports whether Freeze has been called.
func (d *Database) Frozen() bool { return d.frozen }

// Stats returns the statistics of the referenced column. The second result
// is false for unknown columns or unfrozen databases.
func (d *Database) Stats(ref schema.ColumnRef) (ColumnStats, bool) {
	s, ok := d.stats[ref.String()]
	return s, ok
}

// KeyIndex returns the row-id index of a key column (join-value -> rows),
// or nil if none exists.
func (d *Database) KeyIndex(ref schema.ColumnRef) map[Value][]int32 {
	return d.fkIndex[ref.String()]
}

// NumRows returns the row count of the named table (0 for unknown tables).
func (d *Database) NumRows(table string) int {
	if t := d.tables[table]; t != nil {
		return t.NumRows()
	}
	return 0
}

// TotalRows returns the summed row count across all tables.
func (d *Database) TotalRows() int {
	n := 0
	for _, t := range d.tables {
		n += t.NumRows()
	}
	return n
}

func computeStats(col []Value) ColumnStats {
	if len(col) == 0 {
		return ColumnStats{}
	}
	sorted := append([]Value(nil), col...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	nd := 1
	for i := 1; i < len(sorted); i++ {
		if sorted[i] != sorted[i-1] {
			nd++
		}
	}
	return ColumnStats{Min: sorted[0], Max: sorted[len(sorted)-1], NDistinct: nd, NumRows: len(col)}
}

// SortedValues returns an ascending copy of the referenced column's values;
// used by the histogram builder of the PostgreSQL-style estimator.
func (d *Database) SortedValues(ref schema.ColumnRef) []Value {
	t := d.tables[ref.Table]
	if t == nil {
		return nil
	}
	col := t.Column(ref.Column)
	sorted := append([]Value(nil), col...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted
}
