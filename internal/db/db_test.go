package db

import (
	"testing"
	"testing/quick"

	"crn/internal/schema"
)

func testSchema() *schema.Schema {
	return schema.New(
		[]schema.TableDef{
			{Name: "t", Columns: []schema.Column{
				{Table: "t", Name: "id", Key: true},
				{Table: "t", Name: "a"},
			}},
			{Name: "c", Columns: []schema.Column{
				{Table: "c", Name: "tid", Key: true},
				{Table: "c", Name: "b"},
			}},
		},
		[]schema.JoinEdge{{
			Left:  schema.ColumnRef{Table: "t", Column: "id"},
			Right: schema.ColumnRef{Table: "c", Column: "tid"},
		}},
	)
}

func TestAppendAndFreeze(t *testing.T) {
	d := NewDatabase(testSchema())
	for i := int64(0); i < 10; i++ {
		if err := d.AppendRow("t", i, i%3); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 20; i++ {
		if err := d.AppendRow("c", i%10, i); err != nil {
			t.Fatal(err)
		}
	}
	if d.Frozen() {
		t.Fatal("database frozen before Freeze")
	}
	d.Freeze()
	if !d.Frozen() {
		t.Fatal("database not frozen after Freeze")
	}
	if err := d.AppendRow("t", 99, 99); err == nil {
		t.Error("AppendRow after Freeze should fail")
	}
	if got := d.NumRows("t"); got != 10 {
		t.Errorf("NumRows(t) = %d, want 10", got)
	}
	if got := d.TotalRows(); got != 30 {
		t.Errorf("TotalRows = %d, want 30", got)
	}
}

func TestAppendRowErrors(t *testing.T) {
	d := NewDatabase(testSchema())
	if err := d.AppendRow("nope", 1); err == nil {
		t.Error("unknown table should fail")
	}
	if err := d.AppendRow("t", 1); err == nil {
		t.Error("wrong arity should fail")
	}
}

func TestStats(t *testing.T) {
	d := NewDatabase(testSchema())
	vals := []int64{5, 1, 3, 3, 9}
	for i, v := range vals {
		if err := d.AppendRow("t", int64(i), v); err != nil {
			t.Fatal(err)
		}
	}
	d.Freeze()
	s, ok := d.Stats(schema.ColumnRef{Table: "t", Column: "a"})
	if !ok {
		t.Fatal("stats missing")
	}
	if s.Min != 1 || s.Max != 9 || s.NDistinct != 4 || s.NumRows != 5 {
		t.Errorf("stats = %+v", s)
	}
	if _, ok := d.Stats(schema.ColumnRef{Table: "t", Column: "zzz"}); ok {
		t.Error("unknown column should have no stats")
	}
}

func TestNormalize(t *testing.T) {
	s := ColumnStats{Min: 10, Max: 20}
	cases := []struct {
		v    int64
		want float64
	}{{10, 0}, {20, 1}, {15, 0.5}, {5, 0}, {25, 1}}
	for _, c := range cases {
		if got := s.Normalize(c.v); got != c.want {
			t.Errorf("Normalize(%d) = %v, want %v", c.v, got, c.want)
		}
	}
	deg := ColumnStats{Min: 7, Max: 7}
	if got := deg.Normalize(7); got != 0 {
		t.Errorf("degenerate Normalize = %v, want 0", got)
	}
}

func TestNormalizeInUnitIntervalProperty(t *testing.T) {
	f := func(min, max, v int64) bool {
		if min > max {
			min, max = max, min
		}
		s := ColumnStats{Min: min, Max: max}
		x := s.Normalize(v)
		return x >= 0 && x <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestKeyIndex(t *testing.T) {
	d := NewDatabase(testSchema())
	for i := int64(0); i < 6; i++ {
		if err := d.AppendRow("c", i%2, i); err != nil {
			t.Fatal(err)
		}
	}
	d.Freeze()
	idx := d.KeyIndex(schema.ColumnRef{Table: "c", Column: "tid"})
	if idx == nil {
		t.Fatal("missing key index")
	}
	if len(idx[0]) != 3 || len(idx[1]) != 3 {
		t.Errorf("index buckets = %d,%d want 3,3", len(idx[0]), len(idx[1]))
	}
	// Non-key columns have no index.
	if d.KeyIndex(schema.ColumnRef{Table: "c", Column: "b"}) != nil {
		t.Error("non-key column should have no index")
	}
}

func TestSortedValues(t *testing.T) {
	d := NewDatabase(testSchema())
	for _, v := range []int64{3, 1, 2} {
		if err := d.AppendRow("t", v, v*10); err != nil {
			t.Fatal(err)
		}
	}
	d.Freeze()
	got := d.SortedValues(schema.ColumnRef{Table: "t", Column: "a"})
	want := []int64{10, 20, 30}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedValues = %v, want %v", got, want)
		}
	}
	if d.SortedValues(schema.ColumnRef{Table: "zzz", Column: "a"}) != nil {
		t.Error("unknown table should return nil")
	}
}

func TestFreezeIdempotent(t *testing.T) {
	d := NewDatabase(testSchema())
	if err := d.AppendRow("t", 1, 2); err != nil {
		t.Fatal(err)
	}
	d.Freeze()
	d.Freeze() // must not panic or reset
	if !d.Frozen() {
		t.Error("database should stay frozen")
	}
}

func TestEmptyColumnStats(t *testing.T) {
	d := NewDatabase(testSchema())
	d.Freeze()
	s, ok := d.Stats(schema.ColumnRef{Table: "t", Column: "a"})
	if !ok {
		t.Fatal("stats should exist for empty column")
	}
	if s.NumRows != 0 || s.NDistinct != 0 {
		t.Errorf("empty stats = %+v", s)
	}
}
