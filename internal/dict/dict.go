// Package dict implements the paper's §9 "Strings" extension: string
// literals are mapped ("hashed into the integer domain", the paper's
// phrasing; we intern to dense codes, which is collision-free) so that an
// equality predicate on a string column becomes an ordinary integer
// equality predicate the CRN featurization already handles. Order
// comparisons on interned strings are meaningless, so only equality is
// exposed.
package dict

import (
	"fmt"
	"sync"

	"crn/internal/schema"
)

// Dictionary interns per-column string literals to integer codes. It is
// safe for concurrent use; loading data and parsing queries may intern
// concurrently.
type Dictionary struct {
	mu       sync.RWMutex
	byColumn map[string]map[string]int64
	reverse  map[string][]string
}

// New creates an empty dictionary.
func New() *Dictionary {
	return &Dictionary{
		byColumn: make(map[string]map[string]int64),
		reverse:  make(map[string][]string),
	}
}

// Intern returns the code of literal in the column's domain, assigning the
// next dense code on first sight. Codes start at 1 (0 is reserved for
// "absent").
func (d *Dictionary) Intern(col schema.ColumnRef, literal string) int64 {
	key := col.String()
	d.mu.Lock()
	defer d.mu.Unlock()
	m := d.byColumn[key]
	if m == nil {
		m = make(map[string]int64)
		d.byColumn[key] = m
	}
	if code, ok := m[literal]; ok {
		return code
	}
	code := int64(len(m) + 1)
	m[literal] = code
	d.reverse[key] = append(d.reverse[key], literal)
	return code
}

// Code looks up an existing literal without interning.
func (d *Dictionary) Code(col schema.ColumnRef, literal string) (int64, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	code, ok := d.byColumn[col.String()][literal]
	return code, ok
}

// Literal inverts Code.
func (d *Dictionary) Literal(col schema.ColumnRef, code int64) (string, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	lits := d.reverse[col.String()]
	if code < 1 || int(code) > len(lits) {
		return "", false
	}
	return lits[code-1], true
}

// Size returns the number of distinct literals interned for the column.
func (d *Dictionary) Size(col schema.ColumnRef) int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.byColumn[col.String()])
}

// MustCode is Code that fails loudly; used by parsers that must reject
// literals absent from the database ("the value does not occur" would make
// the predicate unsatisfiable, which equality on code 0 encodes instead).
func (d *Dictionary) MustCode(col schema.ColumnRef, literal string) (int64, error) {
	if code, ok := d.Code(col, literal); ok {
		return code, nil
	}
	return 0, fmt.Errorf("dict: literal %q not in the domain of %s", literal, col)
}
