package dict

import (
	"sync"
	"testing"

	"crn/internal/schema"
)

var col = schema.ColumnRef{Table: "title", Column: "kind_id"}

func TestInternAndLookup(t *testing.T) {
	d := New()
	a := d.Intern(col, "movie")
	b := d.Intern(col, "series")
	if a == b {
		t.Error("distinct literals share a code")
	}
	if again := d.Intern(col, "movie"); again != a {
		t.Errorf("re-intern changed code: %d vs %d", again, a)
	}
	code, ok := d.Code(col, "movie")
	if !ok || code != a {
		t.Errorf("Code = %d,%v", code, ok)
	}
	lit, ok := d.Literal(col, a)
	if !ok || lit != "movie" {
		t.Errorf("Literal = %q,%v", lit, ok)
	}
	if _, ok := d.Code(col, "ghost"); ok {
		t.Error("unknown literal should miss")
	}
	if _, ok := d.Literal(col, 99); ok {
		t.Error("unknown code should miss")
	}
	if d.Size(col) != 2 {
		t.Errorf("Size = %d", d.Size(col))
	}
}

func TestCodesStartAtOne(t *testing.T) {
	d := New()
	if code := d.Intern(col, "x"); code != 1 {
		t.Errorf("first code = %d, want 1 (0 is reserved)", code)
	}
}

func TestColumnsAreIndependent(t *testing.T) {
	d := New()
	other := schema.ColumnRef{Table: "title", Column: "production_year"}
	a := d.Intern(col, "same")
	b := d.Intern(other, "same")
	if a != 1 || b != 1 {
		t.Errorf("per-column domains should be independent: %d, %d", a, b)
	}
}

func TestMustCode(t *testing.T) {
	d := New()
	d.Intern(col, "x")
	if _, err := d.MustCode(col, "x"); err != nil {
		t.Errorf("MustCode known literal: %v", err)
	}
	if _, err := d.MustCode(col, "ghost"); err == nil {
		t.Error("MustCode unknown literal should fail")
	}
}

func TestConcurrentIntern(t *testing.T) {
	d := New()
	var wg sync.WaitGroup
	words := []string{"a", "b", "c", "d"}
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				d.Intern(col, words[i%len(words)])
			}
		}()
	}
	wg.Wait()
	if d.Size(col) != len(words) {
		t.Errorf("Size = %d, want %d", d.Size(col), len(words))
	}
	// Codes must be a dense permutation of 1..4.
	seen := map[int64]bool{}
	for _, w := range words {
		code, ok := d.Code(col, w)
		if !ok || code < 1 || code > 4 || seen[code] {
			t.Fatalf("bad code %d for %q", code, w)
		}
		seen[code] = true
	}
}
