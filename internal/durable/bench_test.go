package durable

// Benchmarks for the durability hot paths. BenchmarkWALAppend measures a
// single journaled feedback record under each sync policy:
//
//   - none:     buffered write, no fsync anywhere — the floor.
//   - interval: buffered write, background flush+fsync every SyncEvery —
//     the default serving policy; the append itself never waits on disk.
//   - always:   fsync inside Append — the group-commit upper bound, priced
//     by the device's sync latency, not by this code.
//
// BenchmarkRecoveryReplay measures boot-time WAL replay throughput over a
// populated log (decode + checksum + callback per record).

import (
	"fmt"
	"testing"
	"time"
)

func BenchmarkWALAppend(b *testing.B) {
	for _, pol := range []SyncPolicy{SyncNone, SyncInterval, SyncAlways} {
		b.Run(pol.String(), func(b *testing.B) {
			w, err := OpenWAL(b.TempDir(), WALOptions{Sync: pol})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			obs := time.Unix(1000, 0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sql := fmt.Sprintf("SELECT * FROM title WHERE title.production_year > %d", 1900+i)
				if _, err := w.Append(sql, int64(i), obs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkRecoveryReplay(b *testing.B) {
	const records = 10000
	dir := b.TempDir()
	w, err := OpenWAL(dir, WALOptions{Sync: SyncNone})
	if err != nil {
		b.Fatal(err)
	}
	obs := time.Unix(1000, 0)
	for i := 0; i < records; i++ {
		sql := fmt.Sprintf("SELECT * FROM title WHERE title.production_year > %d AND title.kind_id = %d", 1900+i%120, 1+i%7)
		if _, err := w.Append(sql, int64(i), obs); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := OpenWAL(dir, WALOptions{Sync: SyncNone})
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		if _, err := r.Replay(0, func(FeedbackRecord) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
		if n != records {
			b.Fatalf("replayed %d, want %d", n, records)
		}
		if err := r.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(records), "records/op")
}
