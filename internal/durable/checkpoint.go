package durable

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"crn/internal/guard/failpoint"
)

// A checkpoint is one directory holding everything needed to resume the
// adapted deployment without replaying the whole WAL:
//
//	checkpoints/ckpt-<generation>-<appliedLSN>/
//	    manifest.json   sizes + CRC-32C of every blob, written last
//	    model.bin       promoted model weights (icrn snapshot bytes)
//	    pool.bin        queries pool snapshot (pool.Save bytes, LRU order)
//	    drift.json      drift-window samples
//
// Both directory-name fields are zero-padded hex, so lexicographic order of
// directory names IS (generation, appliedLSN) order — the newest checkpoint
// sorts last. Atomicity comes from the standard temp-dir + rename dance:
// blobs and manifest are written into a ".tmp-" sibling, fsynced, and the
// directory is renamed into place (then the parent fsynced). A reader never
// sees a half-written checkpoint; ".tmp-" leftovers from a crash are inert
// and swept by Prune.

const (
	ckptPrefix    = "ckpt-"
	ckptTmpPrefix = ".tmp-"
	manifestName  = "manifest.json"
	modelBlobName = "model.bin"
	poolBlobName  = "pool.bin"
	driftBlobName = "drift.json"
)

// ErrNoCheckpoint reports that no valid checkpoint exists (fresh data dir,
// or every candidate failed validation).
var ErrNoCheckpoint = errors.New("durable: no valid checkpoint")

// Checkpoint is the in-memory form of one checkpoint, on both the write and
// the read path. Blob semantics (how to decode Model/Pool bytes) belong to
// the caller; this package only guarantees they come back bit-identical.
type Checkpoint struct {
	// Generation is the model generation the checkpoint captures.
	Generation uint64
	// AppliedLSN is the highest WAL LSN whose record is reflected in the
	// checkpointed state; recovery replays strictly newer records.
	AppliedLSN uint64
	// Model is the serialized model weights.
	Model []byte
	// Pool is the serialized queries pool.
	Pool []byte
	// Drift is the drift-window sample history, oldest first.
	Drift []float64
	// WrittenAt records when the checkpoint was persisted.
	WrittenAt time.Time
}

// manifest is the on-disk integrity record. It is written after the blobs,
// so its presence with matching checksums proves the whole directory.
type manifest struct {
	Version    int             `json:"version"`
	Generation uint64          `json:"generation"`
	AppliedLSN uint64          `json:"applied_lsn"`
	WrittenAt  time.Time       `json:"written_at"`
	Files      map[string]fsum `json:"files"`
}

type fsum struct {
	Size int64  `json:"size"`
	CRC  uint32 `json:"crc32c"`
}

func ckptDirName(gen, lsn uint64) string {
	return fmt.Sprintf("%s%016x-%016x", ckptPrefix, gen, lsn)
}

func parseCkptDirName(name string) (gen, lsn uint64, ok bool) {
	rest, found := strings.CutPrefix(name, ckptPrefix)
	if !found || len(rest) != 33 || rest[16] != '-' {
		return 0, 0, false
	}
	g, err1 := strconv.ParseUint(rest[:16], 16, 64)
	l, err2 := strconv.ParseUint(rest[17:], 16, 64)
	if err1 != nil || err2 != nil {
		return 0, 0, false
	}
	return g, l, true
}

// WriteCheckpoint persists ck under dir atomically and returns the final
// checkpoint path. An existing checkpoint for the same (generation,
// appliedLSN) is overwritten (same bytes by construction — promotion
// assigns fresh generations, so collisions only happen on idempotent
// re-writes such as a Close after a no-feedback run).
func WriteCheckpoint(dir string, ck *Checkpoint) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("durable: write checkpoint: %w", err)
	}
	final := filepath.Join(dir, ckptDirName(ck.Generation, ck.AppliedLSN))
	tmp := filepath.Join(dir, ckptTmpPrefix+ckptDirName(ck.Generation, ck.AppliedLSN))
	// A stale temp dir from a crashed writer must not poison this write.
	if err := os.RemoveAll(tmp); err != nil {
		return "", fmt.Errorf("durable: write checkpoint: %w", err)
	}
	if err := os.Mkdir(tmp, 0o755); err != nil {
		return "", fmt.Errorf("durable: write checkpoint: %w", err)
	}
	driftBytes, err := json.Marshal(ck.Drift)
	if err != nil {
		return "", fmt.Errorf("durable: encode drift state: %w", err)
	}
	man := manifest{
		Version:    1,
		Generation: ck.Generation,
		AppliedLSN: ck.AppliedLSN,
		WrittenAt:  ck.WrittenAt,
		Files:      make(map[string]fsum, 3),
	}
	for name, blob := range map[string][]byte{
		modelBlobName: ck.Model,
		poolBlobName:  ck.Pool,
		driftBlobName: driftBytes,
	} {
		if err := writeFileSync(filepath.Join(tmp, name), blob); err != nil {
			return "", err
		}
		man.Files[name] = fsum{Size: int64(len(blob)), CRC: crc32.Checksum(blob, castagnoli)}
	}
	manBytes, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return "", fmt.Errorf("durable: encode manifest: %w", err)
	}
	if err := writeFileSync(filepath.Join(tmp, manifestName), manBytes); err != nil {
		return "", err
	}
	if err := syncDir(tmp); err != nil {
		return "", err
	}
	if err := os.RemoveAll(final); err != nil {
		return "", fmt.Errorf("durable: write checkpoint: %w", err)
	}
	if err := failpoint.Inject(failpoint.CheckpointRename); err != nil {
		return "", fmt.Errorf("durable: publish checkpoint: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return "", fmt.Errorf("durable: publish checkpoint: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return "", err
	}
	return final, nil
}

// listCheckpoints returns the completed checkpoint directory names under
// dir, sorted oldest to newest (lexicographic = (generation, LSN) order).
// Temp leftovers and foreign entries are ignored.
func listCheckpoints(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("durable: list checkpoints: %w", err)
	}
	var names []string
	for _, e := range ents {
		if _, _, ok := parseCkptDirName(e.Name()); ok && e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// readCheckpoint loads and validates one checkpoint directory.
func readCheckpoint(path string) (*Checkpoint, error) {
	manBytes, err := os.ReadFile(filepath.Join(path, manifestName))
	if err != nil {
		return nil, fmt.Errorf("durable: read manifest: %w", err)
	}
	var man manifest
	if err := json.Unmarshal(manBytes, &man); err != nil {
		return nil, fmt.Errorf("durable: decode manifest: %w", err)
	}
	if man.Version != 1 {
		return nil, fmt.Errorf("durable: unsupported checkpoint version %d", man.Version)
	}
	blobs := make(map[string][]byte, len(man.Files))
	for name, sum := range man.Files {
		b, err := os.ReadFile(filepath.Join(path, name))
		if err != nil {
			return nil, fmt.Errorf("durable: read checkpoint blob %s: %w", name, err)
		}
		if int64(len(b)) != sum.Size || crc32.Checksum(b, castagnoli) != sum.CRC {
			return nil, fmt.Errorf("durable: checkpoint blob %s fails checksum", name)
		}
		blobs[name] = b
	}
	for _, required := range []string{modelBlobName, poolBlobName, driftBlobName} {
		if _, ok := blobs[required]; !ok {
			return nil, fmt.Errorf("durable: checkpoint missing blob %s", required)
		}
	}
	var drift []float64
	if err := json.Unmarshal(blobs[driftBlobName], &drift); err != nil {
		return nil, fmt.Errorf("durable: decode drift state: %w", err)
	}
	return &Checkpoint{
		Generation: man.Generation,
		AppliedLSN: man.AppliedLSN,
		Model:      blobs[modelBlobName],
		Pool:       blobs[poolBlobName],
		Drift:      drift,
		WrittenAt:  man.WrittenAt,
	}, nil
}

// LoadCheckpoint returns the newest checkpoint under dir that passes
// validation, falling back to older ones when a manifest or blob is corrupt
// (the point-in-time part of point-in-time recovery: an older checkpoint
// plus a longer WAL replay reaches the same state). ErrNoCheckpoint when
// none qualifies. skipped counts the invalid candidates stepped over.
func LoadCheckpoint(dir string) (ck *Checkpoint, skipped int, err error) {
	names, err := listCheckpoints(dir)
	if err != nil {
		return nil, 0, err
	}
	var lastErr error
	for i := len(names) - 1; i >= 0; i-- {
		ck, err := readCheckpoint(filepath.Join(dir, names[i]))
		if err == nil {
			return ck, skipped, nil
		}
		lastErr = err
		skipped++
	}
	if lastErr != nil {
		return nil, skipped, fmt.Errorf("%w (newest failure: %v)", ErrNoCheckpoint, lastErr)
	}
	return nil, skipped, ErrNoCheckpoint
}

// PruneCheckpoints keeps the newest retain checkpoints under dir and
// removes the rest plus any ".tmp-" leftovers. It returns the number of
// checkpoints removed and the smallest AppliedLSN among those retained —
// the WAL must keep every record after that LSN so each retained checkpoint
// stays independently recoverable. minRetainedLSN is 0 when nothing is
// retained.
func PruneCheckpoints(dir string, retain int) (removed int, minRetainedLSN uint64, err error) {
	if retain < 1 {
		retain = 1
	}
	names, err := listCheckpoints(dir)
	if err != nil {
		return 0, 0, err
	}
	cut := len(names) - retain
	if cut < 0 {
		cut = 0
	}
	for _, name := range names[:cut] {
		if err := os.RemoveAll(filepath.Join(dir, name)); err != nil {
			return removed, 0, fmt.Errorf("durable: prune checkpoint: %w", err)
		}
		removed++
	}
	// Sweep crashed writers' temp dirs while we are here.
	if ents, err := os.ReadDir(dir); err == nil {
		for _, e := range ents {
			if strings.HasPrefix(e.Name(), ckptTmpPrefix) {
				_ = os.RemoveAll(filepath.Join(dir, e.Name()))
			}
		}
	}
	if removed > 0 {
		if err := syncDir(dir); err != nil {
			return removed, 0, err
		}
	}
	minRetainedLSN = ^uint64(0)
	retained := names[cut:]
	for _, name := range retained {
		if _, lsn, ok := parseCkptDirName(name); ok && lsn < minRetainedLSN {
			minRetainedLSN = lsn
		}
	}
	if len(retained) == 0 {
		minRetainedLSN = 0
	}
	return removed, minRetainedLSN, nil
}

// writeFileSync writes data to path and fsyncs before closing.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("durable: write %s: %w", filepath.Base(path), err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("durable: write %s: %w", filepath.Base(path), err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("durable: sync %s: %w", filepath.Base(path), err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("durable: close %s: %w", filepath.Base(path), err)
	}
	return nil
}
