package durable

import (
	"encoding/binary"
	"testing"
	"time"
)

// FuzzWALDecode feeds arbitrary bytes to the WAL record decoder. The
// contract under any input — truncated frames, bit flips, adversarial
// length fields — is: return a clean error or a valid prefix, never
// panic, never read out of bounds, and never hand back a record whose
// re-encoding disagrees with what was decoded.
func FuzzWALDecode(f *testing.F) {
	// Seed with well-formed frames so mutations explore near-valid space.
	var seed []byte
	seed = appendRecord(seed, FeedbackRecord{LSN: 1, SQL: "SELECT * FROM t", Card: 7, ObservedAt: time.Unix(3, 4)})
	seed = appendRecord(seed, FeedbackRecord{LSN: 2, SQL: "", Card: 0, ObservedAt: time.Unix(0, 0)})
	f.Add(seed)
	f.Add(seed[:len(seed)-3]) // torn tail
	flipped := append([]byte(nil), seed...)
	flipped[len(flipped)/2] ^= 0x80
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}) // absurd length field
	huge := make([]byte, 8)
	binary.LittleEndian.PutUint32(huge, maxRecordSize+1)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := parseRecord(data)
		if err == nil {
			if n <= 0 || n > len(data) {
				t.Fatalf("parseRecord consumed %d of %d bytes", n, len(data))
			}
			// A successfully decoded record must re-encode byte-identically.
			re := appendRecord(nil, rec)
			if len(re) != n {
				t.Fatalf("re-encode length %d != consumed %d", len(re), n)
			}
			for i := range re {
				if re[i] != data[i] {
					t.Fatalf("re-encode mismatch at byte %d", i)
				}
			}
		}

		// scanRecords must consume a prefix and deliver strictly
		// sequential LSNs regardless of input shape.
		next := uint64(1)
		valid, scanErr := scanRecords(data, 1, func(r FeedbackRecord) error {
			if r.LSN != next {
				t.Fatalf("scan delivered LSN %d, want %d", r.LSN, next)
			}
			next++
			return nil
		})
		if valid < 0 || valid > len(data) {
			t.Fatalf("scanRecords valid offset %d out of range [0,%d]", valid, len(data))
		}
		_ = scanErr // any error is acceptable; panics are not
	})
}
