package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"crn/internal/telemetry"
)

// Store ties the WAL and the checkpoint directory together under one data
// directory and implements the recovery protocol:
//
//	<dataDir>/wal/            feedback log segments
//	<dataDir>/checkpoints/    atomic promotion checkpoints
//
// Boot: Open the store, call Recover to get the newest valid checkpoint
// (nil on a fresh directory), rebuild the in-memory state from it, then
// Replay the WAL from the checkpoint's AppliedLSN to re-stage feedback the
// checkpoint does not cover. Run: Append every accepted feedback record;
// Checkpoint on every promotion (which also prunes old checkpoints and the
// WAL segments every retained checkpoint covers).
type Store struct {
	dir     string
	wal     *WAL
	ckptDir string
	retain  int

	mu          sync.Mutex
	checkpoints uint64
	replayed    uint64
	skippedCkpt uint64
	lastCkptLSN uint64
	lastCkptGen uint64
	lastCkptAt  time.Time

	// ckptHist, when non-nil, records end-to-end checkpoint duration
	// (write + retention). Set via SetTelemetry before serving.
	ckptHist *telemetry.Histogram
}

// SetTelemetry attaches the store's durability histograms: WAL fsync
// latency and checkpoint duration. Call before appends begin; the fields
// are read without synchronization.
func (s *Store) SetTelemetry(fsync, checkpoint *telemetry.Histogram) {
	s.wal.SetTelemetry(fsync)
	s.ckptHist = checkpoint
}

// StoreOptions configures Open.
type StoreOptions struct {
	// WAL configures the feedback log.
	WAL WALOptions
	// Retain is how many checkpoints to keep (default 3, minimum 1).
	Retain int
}

// Open opens (creating if necessary) the durable store rooted at dir.
func Open(dir string, opts StoreOptions) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("durable: empty data dir")
	}
	if opts.Retain < 1 {
		opts.Retain = 3
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: open store: %w", err)
	}
	wal, err := OpenWAL(filepath.Join(dir, "wal"), opts.WAL)
	if err != nil {
		return nil, err
	}
	return &Store{
		dir:     dir,
		wal:     wal,
		ckptDir: filepath.Join(dir, "checkpoints"),
		retain:  opts.Retain,
	}, nil
}

// HasCheckpoint reports whether dir contains at least one completed
// checkpoint directory, without opening or validating anything — the cheap
// boot-time question "is there a deployment to resume here?".
func HasCheckpoint(dir string) bool {
	names, err := listCheckpoints(filepath.Join(dir, "checkpoints"))
	return err == nil && len(names) > 0
}

// Recover loads the newest valid checkpoint, falling back to older ones on
// corruption. It returns (nil, nil) on a fresh data directory — the caller
// starts from its seed state and replays the WAL from LSN 0.
func (s *Store) Recover() (*Checkpoint, error) {
	ck, skipped, err := LoadCheckpoint(s.ckptDir)
	s.mu.Lock()
	s.skippedCkpt += uint64(skipped)
	s.mu.Unlock()
	if err != nil {
		if HasCheckpoint(s.dir) {
			// Checkpoints exist but none validates: surface it — silently
			// booting from seed would discard the adapted deployment.
			return nil, err
		}
		return nil, nil
	}
	s.mu.Lock()
	s.lastCkptGen = ck.Generation
	s.lastCkptLSN = ck.AppliedLSN
	s.lastCkptAt = ck.WrittenAt
	s.mu.Unlock()
	return ck, nil
}

// Append journals one feedback record; see WAL.Append.
func (s *Store) Append(sql string, card int64, observedAt time.Time) (uint64, error) {
	return s.wal.Append(sql, card, observedAt)
}

// Replay delivers every journaled record with LSN > since; see WAL.Replay.
func (s *Store) Replay(since uint64, fn func(FeedbackRecord) error) (int, error) {
	n, err := s.wal.Replay(since, fn)
	s.mu.Lock()
	s.replayed += uint64(n)
	s.mu.Unlock()
	return n, err
}

// Sync forces buffered WAL records down; see WAL.Sync.
func (s *Store) Sync() error { return s.wal.Sync() }

// LastLSN returns the newest journaled LSN.
func (s *Store) LastLSN() uint64 { return s.wal.LastLSN() }

// Checkpoint atomically persists ck, then applies retention: old
// checkpoints beyond the retain count are removed and WAL segments fully
// covered by every retained checkpoint are pruned. Retention failures are
// reported but the checkpoint itself is durable once Checkpoint returns
// a nil error from the write step.
func (s *Store) Checkpoint(ck *Checkpoint) error {
	if s.ckptHist != nil {
		start := time.Now()
		defer func() { s.ckptHist.ObserveDuration(time.Since(start)) }()
	}
	if _, err := WriteCheckpoint(s.ckptDir, ck); err != nil {
		return err
	}
	s.mu.Lock()
	s.checkpoints++
	s.lastCkptGen = ck.Generation
	s.lastCkptLSN = ck.AppliedLSN
	s.lastCkptAt = ck.WrittenAt
	s.mu.Unlock()
	_, minLSN, err := PruneCheckpoints(s.ckptDir, s.retain)
	if err != nil {
		return err
	}
	if minLSN > 0 {
		// Keep every record any retained checkpoint might still need: prune
		// only through the OLDEST retained checkpoint's applied LSN, so
		// falling back to it still finds its replay suffix.
		if _, err := s.wal.PruneThrough(minLSN); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes and closes the WAL. It does NOT write a final checkpoint —
// that needs serialized model/pool state only the owner has; callers
// checkpoint first, then Close.
func (s *Store) Close() error { return s.wal.Close() }

// StoreStats is the durability section of the serving stats.
type StoreStats struct {
	DataDir string   `json:"data_dir"`
	WAL     WALStats `json:"wal"`
	// Checkpoints counts checkpoints written by this process.
	Checkpoints uint64 `json:"checkpoints"`
	// LastCheckpointGen/LSN identify the newest checkpoint (written or
	// recovered); zero when none exists yet.
	LastCheckpointGen uint64    `json:"last_checkpoint_generation"`
	LastCheckpointLSN uint64    `json:"last_checkpoint_lsn"`
	LastCheckpointAt  time.Time `json:"last_checkpoint_at"`
	// ReplayedRecords counts WAL records re-delivered by recovery.
	ReplayedRecords uint64 `json:"replayed_records"`
	// SkippedCheckpoints counts corrupt checkpoints recovery stepped over.
	SkippedCheckpoints uint64 `json:"skipped_checkpoints"`
	// Retain is the checkpoint retention bound.
	Retain int `json:"retain"`
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	st := StoreStats{
		DataDir:            s.dir,
		Checkpoints:        s.checkpoints,
		LastCheckpointGen:  s.lastCkptGen,
		LastCheckpointLSN:  s.lastCkptLSN,
		LastCheckpointAt:   s.lastCkptAt,
		ReplayedRecords:    s.replayed,
		SkippedCheckpoints: s.skippedCkpt,
		Retain:             s.retain,
	}
	s.mu.Unlock()
	st.WAL = s.wal.Stats()
	return st
}
