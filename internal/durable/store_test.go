package durable

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func testCkpt(gen, lsn uint64) *Checkpoint {
	return &Checkpoint{
		Generation: gen,
		AppliedLSN: lsn,
		Model:      []byte(fmt.Sprintf("model-gen-%d", gen)),
		Pool:       []byte(fmt.Sprintf("pool-gen-%d", gen)),
		Drift:      []float64{0.1, 0.2, float64(gen)},
		WrittenAt:  time.Unix(int64(1000+gen), 0).UTC(),
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := testCkpt(3, 42)
	if _, err := WriteCheckpoint(dir, want); err != nil {
		t.Fatal(err)
	}
	got, skipped, err := LoadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("skipped = %d, want 0", skipped)
	}
	if got.Generation != want.Generation || got.AppliedLSN != want.AppliedLSN {
		t.Fatalf("loaded gen/lsn = %d/%d, want %d/%d", got.Generation, got.AppliedLSN, want.Generation, want.AppliedLSN)
	}
	if !bytes.Equal(got.Model, want.Model) || !bytes.Equal(got.Pool, want.Pool) {
		t.Fatal("model/pool blobs did not round trip")
	}
	if len(got.Drift) != len(want.Drift) {
		t.Fatalf("drift len = %d, want %d", len(got.Drift), len(want.Drift))
	}
	for i := range want.Drift {
		if got.Drift[i] != want.Drift[i] {
			t.Fatalf("drift[%d] = %v, want %v", i, got.Drift[i], want.Drift[i])
		}
	}
}

func TestLoadCheckpointEmptyDir(t *testing.T) {
	if _, _, err := LoadCheckpoint(t.TempDir()); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("err = %v, want ErrNoCheckpoint", err)
	}
}

func TestLoadCheckpointFallsBackOnCorruption(t *testing.T) {
	dir := t.TempDir()
	for gen := uint64(1); gen <= 3; gen++ {
		if _, err := WriteCheckpoint(dir, testCkpt(gen, gen*10)); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt the newest checkpoint's model blob.
	newest := filepath.Join(dir, ckptDirName(3, 30), modelBlobName)
	if err := os.WriteFile(newest, []byte("model-gen-X"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, skipped, err := LoadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Generation != 2 || skipped != 1 {
		t.Fatalf("fell back to gen %d (skipped %d), want gen 2 (skipped 1)", got.Generation, skipped)
	}
}

func TestLoadCheckpointIgnoresTornTmpDir(t *testing.T) {
	dir := t.TempDir()
	if _, err := WriteCheckpoint(dir, testCkpt(1, 5)); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-checkpoint: the tmp dir exists but was never renamed.
	tmp := filepath.Join(dir, ckptTmpPrefix+ckptDirName(2, 9))
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(tmp, modelBlobName), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _, err := LoadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Generation != 1 {
		t.Fatalf("loaded gen %d, want 1 (tmp dir must be ignored)", got.Generation)
	}
	// Pruning sweeps the tmp leftovers.
	if _, _, err := PruneCheckpoints(dir, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("tmp checkpoint dir survived pruning: %v", err)
	}
}

func TestPruneCheckpoints(t *testing.T) {
	dir := t.TempDir()
	for gen := uint64(1); gen <= 5; gen++ {
		if _, err := WriteCheckpoint(dir, testCkpt(gen, gen*10)); err != nil {
			t.Fatal(err)
		}
	}
	removed, minLSN, err := PruneCheckpoints(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 3 {
		t.Fatalf("removed = %d, want 3", removed)
	}
	// Retained: gens 4 and 5 → min applied LSN is 40.
	if minLSN != 40 {
		t.Fatalf("minRetainedLSN = %d, want 40", minLSN)
	}
	names, err := listCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("%d checkpoints remain, want 2", len(names))
	}
}

func TestStoreRecoverFreshAndAfterCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, StoreOptions{WAL: WALOptions{Sync: SyncAlways}})
	if err != nil {
		t.Fatal(err)
	}
	if ck, err := s.Recover(); err != nil || ck != nil {
		t.Fatalf("fresh Recover = %v, %v; want nil, nil", ck, err)
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Append(fmt.Sprintf("SELECT * FROM t WHERE t.a = %d", i), int64(i), time.Unix(1, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(testCkpt(2, 3)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, StoreOptions{WAL: WALOptions{Sync: SyncAlways}})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ck, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if ck == nil || ck.Generation != 2 || ck.AppliedLSN != 3 {
		t.Fatalf("recovered %+v, want gen 2 / lsn 3", ck)
	}
	// Records past the checkpoint's applied LSN must still be replayable.
	var lsns []uint64
	if _, err := s2.Replay(ck.AppliedLSN, func(r FeedbackRecord) error {
		lsns = append(lsns, r.LSN)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(lsns) != 2 || lsns[0] != 4 || lsns[1] != 5 {
		t.Fatalf("replayed LSNs %v, want [4 5]", lsns)
	}
	if !HasCheckpoint(dir) {
		t.Fatal("HasCheckpoint = false after checkpointing")
	}
	if HasCheckpoint(t.TempDir()) {
		t.Fatal("HasCheckpoint = true on an empty dir")
	}
}

func TestStoreRecoverFailsWhenAllCheckpointsCorrupt(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(testCkpt(1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Destroy the only checkpoint's manifest.
	manifest := filepath.Join(dir, "checkpoints", ckptDirName(1, 0), manifestName)
	if err := os.WriteFile(manifest, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := s2.Recover(); err == nil {
		t.Fatal("Recover must fail when checkpoints exist but none validates")
	}
}

func TestStoreCheckpointPrunesWAL(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, StoreOptions{
		WAL:    WALOptions{Sync: SyncAlways, SegmentBytes: 256},
		Retain: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 1; i <= 40; i++ {
		if _, err := s.Append(fmt.Sprintf("SELECT * FROM t WHERE t.a = %d", i), int64(i), time.Unix(1, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(testCkpt(2, 35)); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.WAL.PrunedSegments == 0 {
		t.Fatalf("checkpoint at lsn 35 pruned no WAL segments: %+v", st.WAL)
	}
	// Everything after the checkpoint watermark must still replay.
	var lsns []uint64
	if _, err := s.Replay(35, func(r FeedbackRecord) error {
		lsns = append(lsns, r.LSN)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(lsns) != 5 || lsns[0] != 36 {
		t.Fatalf("post-prune Replay(35) = %v, want [36..40]", lsns)
	}
	if st.LastCheckpointGen != 2 || st.LastCheckpointLSN != 35 {
		t.Fatalf("stats checkpoint watermark = gen %d / lsn %d, want 2/35", st.LastCheckpointGen, st.LastCheckpointLSN)
	}
}
