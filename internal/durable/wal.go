// Package durable makes the *adapted* deployment the unit that survives a
// restart. Everything the serving stack learns online — promoted model
// generations, the feedback-grown queries pool, staged execution feedback,
// the drift window — otherwise lives only in memory, so a crash silently
// falls back to the seed model and throws away every correction the
// workload paid for with real executions.
//
// Three cooperating pieces:
//
//   - WAL: a segmented, checksummed append-only log of validated execution
//     feedback. Every record the collector accepts is appended (and carries
//     a monotonic LSN) before it is staged, so feedback that has not yet
//     made it into a promoted generation is recoverable by replay.
//   - Checkpoints: atomic on-promotion snapshots (model weights, pool with
//     LRU recency, drift window, last-applied LSN) written to a temp
//     directory, fsynced, and renamed into place — a reader either sees a
//     complete checkpoint or none. A retention policy prunes old
//     checkpoints together with the WAL segments they fully cover.
//   - Store: the recovery protocol over both — load the newest valid
//     checkpoint (falling back to older ones on checksum failure), then
//     replay WAL-since-LSN so un-checkpointed feedback re-enters the
//     training pipeline. Torn tail records are truncated, never fatal.
//
// The package deliberately speaks strings and bytes (SQL text, serialized
// model/pool blobs): it knows nothing about queries, models or pools, so it
// sits below internal/online with no upward dependencies — and a future
// replication follower can tail the same WAL format without importing the
// serving stack.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"crn/internal/guard/failpoint"
	"crn/internal/telemetry"
)

// SyncPolicy selects when WAL appends reach stable storage.
type SyncPolicy uint8

const (
	// SyncInterval (the default) batches durability: appends land in an
	// in-process buffer and a background syncer flushes and fsyncs every
	// SyncEvery. A crash loses at most one sync window of feedback — an
	// acceptable trade for keeping the append off the feedback hot path,
	// since lost records are execution feedback the workload will simply
	// re-observe.
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs every append before it is acknowledged (group
	// committed: one fsync covers every record appended up to it). Nothing
	// acknowledged is ever lost; appends cost a disk flush.
	SyncAlways
	// SyncNone never fsyncs explicitly — the OS page cache decides. Fastest,
	// loses up to the whole page cache on power failure; process crashes
	// (the common case) still lose nothing once the buffer is flushed.
	SyncNone
)

// ParseSyncPolicy resolves a policy from its flag spelling ("interval",
// "always", "none"; empty selects the default).
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "interval":
		return SyncInterval, nil
	case "always":
		return SyncAlways, nil
	case "none":
		return SyncNone, nil
	}
	return SyncInterval, fmt.Errorf("durable: unknown wal sync policy %q (want interval, always or none)", s)
}

// String returns the flag spelling.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncNone:
		return "none"
	}
	return "interval"
}

// FeedbackRecord is one durably logged piece of execution feedback: the SQL
// text of a query the workload actually ran, its observed true cardinality,
// and the monotonic log sequence number assigned at append.
type FeedbackRecord struct {
	LSN        uint64
	SQL        string
	Card       int64
	ObservedAt time.Time
}

// Record framing. Every record is
//
//	uint32 payload length | uint32 CRC-32C of payload | payload
//
// with the payload
//
//	uint64 LSN | uint64 cardinality | int64 observed-at (unix nanos) | SQL bytes
//
// all little-endian. The CRC covers the whole payload, so a bit flip
// anywhere in a record is detected; the length prefix bounds the read, so a
// torn (partially written) tail record is detected by running out of bytes.
const (
	frameHeaderSize = 8
	payloadFixed    = 24
	// maxRecordSize bounds a single record (1 MiB matches the serving
	// layer's request body bound). A length prefix beyond it is treated as
	// corruption rather than an allocation request.
	maxRecordSize = 1 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt marks WAL bytes that fail validation (checksum mismatch,
// impossible length, non-monotonic LSN) and truncated tail records alike.
// Scanning stops at the first corrupt record; everything before it is good.
var ErrCorrupt = errors.New("durable: corrupt wal record")

// appendRecord encodes rec into dst and returns the extended slice.
func appendRecord(dst []byte, rec FeedbackRecord) []byte {
	payloadLen := payloadFixed + len(rec.SQL)
	var hdr [frameHeaderSize + payloadFixed]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(payloadLen))
	binary.LittleEndian.PutUint64(hdr[8:16], rec.LSN)
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(rec.Card))
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(rec.ObservedAt.UnixNano()))
	crc := crc32.Update(0, castagnoli, hdr[frameHeaderSize:])
	crc = crc32.Update(crc, castagnoli, []byte(rec.SQL))
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	dst = append(dst, hdr[:]...)
	return append(dst, rec.SQL...)
}

// parseRecord decodes the record at the head of b. It returns the decoded
// record and the number of bytes consumed, or ErrCorrupt when the bytes are
// torn or invalid. It never panics on arbitrary input (see FuzzWALDecode).
func parseRecord(b []byte) (FeedbackRecord, int, error) {
	if len(b) < frameHeaderSize {
		return FeedbackRecord{}, 0, fmt.Errorf("%w: torn frame header (%d bytes)", ErrCorrupt, len(b))
	}
	payloadLen := int(binary.LittleEndian.Uint32(b[0:4]))
	if payloadLen < payloadFixed || payloadLen > maxRecordSize {
		return FeedbackRecord{}, 0, fmt.Errorf("%w: impossible payload length %d", ErrCorrupt, payloadLen)
	}
	if len(b) < frameHeaderSize+payloadLen {
		return FeedbackRecord{}, 0, fmt.Errorf("%w: torn payload (%d of %d bytes)", ErrCorrupt, len(b)-frameHeaderSize, payloadLen)
	}
	payload := b[frameHeaderSize : frameHeaderSize+payloadLen]
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(b[4:8]); got != want {
		return FeedbackRecord{}, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	rec := FeedbackRecord{
		LSN:        binary.LittleEndian.Uint64(payload[0:8]),
		Card:       int64(binary.LittleEndian.Uint64(payload[8:16])),
		ObservedAt: time.Unix(0, int64(binary.LittleEndian.Uint64(payload[16:24]))),
		SQL:        string(payload[payloadFixed:]),
	}
	return rec, frameHeaderSize + payloadLen, nil
}

// scanRecords walks the records serialized in data, calling fn for each.
// firstLSN is the LSN the first record must carry; LSNs must then increase
// by exactly one (the segment invariant), so a reordered or spliced file is
// detected even when every individual checksum passes. It returns the
// number of valid bytes consumed; err is ErrCorrupt-wrapped when scanning
// stopped before the end of data. fn returning an error aborts the scan
// with that error.
func scanRecords(data []byte, firstLSN uint64, fn func(FeedbackRecord) error) (int, error) {
	off := 0
	next := firstLSN
	for off < len(data) {
		rec, n, err := parseRecord(data[off:])
		if err != nil {
			return off, err
		}
		if rec.LSN != next {
			return off, fmt.Errorf("%w: lsn %d where %d expected", ErrCorrupt, rec.LSN, next)
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return off, err
			}
		}
		off += n
		next++
	}
	return off, nil
}

// WALOptions configures a WAL.
type WALOptions struct {
	// Sync is the durability policy (default SyncInterval).
	Sync SyncPolicy
	// SyncEvery is the background flush period under SyncInterval
	// (default 50ms).
	SyncEvery time.Duration
	// SegmentBytes rolls to a fresh segment file once the current one
	// reaches this size (default 4 MiB). Small segments prune sooner after
	// checkpoints; large segments amortize file churn.
	SegmentBytes int64
}

func (o WALOptions) withDefaults() WALOptions {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 50 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	return o
}

const segSuffix = ".wal"

// segName renders the file name of the segment whose first record carries
// the given LSN.
func segName(firstLSN uint64) string {
	return fmt.Sprintf("%016x%s", firstLSN, segSuffix)
}

// parseSegName inverts segName.
func parseSegName(name string) (uint64, bool) {
	if !strings.HasSuffix(name, segSuffix) || len(name) != 16+len(segSuffix) {
		return 0, false
	}
	v, err := strconv.ParseUint(strings.TrimSuffix(name, segSuffix), 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// WAL is the segmented feedback log. Appends are serialized by one mutex —
// the collector upstream already serializes offers, so a short critical
// section here adds no new contention point. Buffered bytes become visible
// to the OS (and to Replay) on Sync, roll and Close; fsync cadence follows
// the sync policy.
type WAL struct {
	dir  string
	opts WALOptions

	mu      sync.Mutex
	f       *os.File
	buf     []byte // appended since the last flush to the file
	size    int64  // flushed bytes in the current segment
	segLSN  uint64 // first LSN of the current segment
	nextLSN uint64
	dirty   bool // flushed-but-not-fsynced bytes exist
	closed  bool
	// lastErr is the sticky I/O error: set when a flush, fsync or roll
	// fails (disk full, device error), cleared when one later succeeds.
	// While set, Append retries the failed flush first (append-as-probe)
	// and rejects the new record cleanly if the disk is still down, so the
	// collector can degrade to in-memory staging instead of crashing the
	// feedback path.
	lastErr error

	stopSync chan struct{}
	syncDone chan struct{}

	appends   atomic.Uint64
	bytes     atomic.Uint64
	syncs     atomic.Uint64
	rolls     atomic.Uint64
	tornBytes atomic.Uint64
	pruned    atomic.Uint64
	ioErrs    atomic.Uint64
	panics    atomic.Uint64

	// fsyncHist, when non-nil, records the latency of every fsync of the
	// segment file — the dominant cost of the durability path and the first
	// thing to inspect when feedback appends slow down. Set via SetTelemetry
	// before appends begin.
	fsyncHist *telemetry.Histogram
}

// SetTelemetry attaches the fsync-latency histogram. Call before the WAL
// serves appends: the field is read without synchronization.
func (w *WAL) SetTelemetry(fsync *telemetry.Histogram) {
	w.fsyncHist = fsync
}

// fsyncLocked syncs the segment file, timing the call when telemetry is
// attached.
func (w *WAL) fsyncLocked() error {
	if w.fsyncHist == nil {
		return w.f.Sync()
	}
	start := time.Now()
	err := w.f.Sync()
	w.fsyncHist.ObserveDuration(time.Since(start))
	return err
}

// OpenWAL opens (creating if necessary) the log in dir. The tail segment is
// scanned; a torn or corrupt tail is truncated to the last valid record —
// recovery from a crash mid-append is silent and bounded. Appending resumes
// at the next LSN after the last durable record.
func OpenWAL(dir string, opts WALOptions) (*WAL, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: open wal: %w", err)
	}
	w := &WAL{dir: dir, opts: opts, nextLSN: 1, segLSN: 1}
	segs, err := w.segments()
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		if err := w.createSegmentLocked(1); err != nil {
			return nil, err
		}
	} else {
		// Only the tail segment needs scanning: its name tells us the first
		// LSN, the records tell us the last, and crashes can only tear the
		// tail. Earlier segments are re-validated lazily at Replay.
		last := segs[len(segs)-1]
		path := filepath.Join(dir, segName(last))
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("durable: open wal: %w", err)
		}
		valid, scanErr := scanRecords(data, last, func(rec FeedbackRecord) error {
			w.nextLSN = rec.LSN + 1
			return nil
		})
		if scanErr != nil && !errors.Is(scanErr, ErrCorrupt) {
			return nil, scanErr
		}
		if valid < len(data) {
			if err := os.Truncate(path, int64(valid)); err != nil {
				return nil, fmt.Errorf("durable: truncate torn wal tail: %w", err)
			}
			w.tornBytes.Add(uint64(len(data) - valid))
		}
		if w.nextLSN < last {
			w.nextLSN = last // empty tail segment: next record is its first
		}
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("durable: open wal: %w", err)
		}
		w.f = f
		w.size = int64(valid)
		w.segLSN = last
	}
	if opts.Sync == SyncInterval {
		w.stopSync = make(chan struct{})
		w.syncDone = make(chan struct{})
		go w.syncLoop()
	}
	return w, nil
}

// segments returns the first LSNs of the on-disk segment files, ascending.
func (w *WAL) segments() ([]uint64, error) {
	ents, err := os.ReadDir(w.dir)
	if err != nil {
		return nil, fmt.Errorf("durable: list wal segments: %w", err)
	}
	var out []uint64
	for _, e := range ents {
		if lsn, ok := parseSegName(e.Name()); ok {
			out = append(out, lsn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// createSegmentLocked starts a fresh segment whose first record will carry
// firstLSN, and fsyncs the directory so the file itself survives a crash.
func (w *WAL) createSegmentLocked(firstLSN uint64) error {
	f, err := os.OpenFile(filepath.Join(w.dir, segName(firstLSN)), os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("durable: create wal segment: %w", err)
	}
	if err := syncDir(w.dir); err != nil {
		f.Close()
		return err
	}
	w.f = f
	w.size = 0
	w.segLSN = firstLSN
	return nil
}

// Append logs one feedback record and returns its LSN. Under SyncAlways the
// record is on stable storage when Append returns; under the other policies
// it is buffered (flushed by the background syncer, an explicit Sync, a
// segment roll, or Close).
//
// Error semantics under disk faults: an error with LSN 0 means the record
// was rejected cleanly (nothing buffered, no LSN consumed) — the log's
// sticky I/O error is still in force and this Append was its re-probe. An
// error with a non-zero LSN means the record is framed in the log's buffer
// (its LSN is consumed, it will reach the disk when a later flush
// succeeds) but durability could not be confirmed now. Either way the
// caller should treat the record as non-durable and degrade.
func (w *WAL) Append(sql string, card int64, observedAt time.Time) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, errors.New("durable: wal is closed")
	}
	if err := failpoint.Inject(failpoint.WALAppend); err != nil {
		err = fmt.Errorf("durable: wal append: %w", err)
		w.setErrLocked(err)
		return 0, err
	}
	if w.lastErr != nil {
		// Append-as-probe: a previous flush or fsync failed and its bytes
		// are still pending. Retry them before framing new bytes — if the
		// disk is still down the new record is rejected cleanly, keeping
		// the LSN sequence free of records that never existed.
		if err := w.syncLocked(); err != nil {
			return 0, err
		}
	}
	rec := FeedbackRecord{LSN: w.nextLSN, SQL: sql, Card: card, ObservedAt: observedAt}
	before := len(w.buf)
	w.buf = appendRecord(w.buf, rec)
	n := len(w.buf) - before
	w.nextLSN++
	w.appends.Add(1)
	w.bytes.Add(uint64(n))
	w.dirty = true
	if w.size+int64(len(w.buf)) > w.opts.SegmentBytes && w.size+int64(before) > 0 {
		// The segment is full: flush what belongs to it (everything before
		// this record fits by induction; the new record may straddle — keep
		// it whole in the next segment unless it is the segment's only
		// content). A roll failure leaves the record framed in the buffer
		// with its LSN assigned; the oversized segment rolls when the disk
		// recovers.
		if err := w.rollLocked(rec.LSN, before); err != nil {
			w.setErrLocked(err)
			return rec.LSN, err
		}
	}
	if w.opts.Sync == SyncAlways {
		if err := w.syncLocked(); err != nil {
			return rec.LSN, err
		}
	}
	return rec.LSN, nil
}

// rollLocked flushes and fsyncs everything up to byte offset upto of the
// pending buffer into the current segment, closes it, and starts a new
// segment beginning at firstLSN (keeping buf[upto:] pending for it). On
// failure the current segment stays open and the unflushed suffix stays
// buffered, so a later probe can finish the job.
func (w *WAL) rollLocked(firstLSN uint64, upto int) error {
	head := w.buf[:upto]
	if len(head) > 0 {
		if err := failpoint.Inject(failpoint.WALFlush); err != nil {
			return fmt.Errorf("durable: wal write: %w", err)
		}
		wn, err := w.f.Write(head)
		if err != nil {
			return fmt.Errorf("durable: wal write: %w", err)
		}
		w.size += int64(wn)
	}
	if err := failpoint.Inject(failpoint.WALSync); err != nil {
		return fmt.Errorf("durable: wal sync: %w", err)
	}
	if err := w.fsyncLocked(); err != nil {
		return fmt.Errorf("durable: wal sync: %w", err)
	}
	// The head is durable in the old segment: drop it from the buffer
	// before anything else can fail, so a retry cannot write it twice.
	w.buf = append(w.buf[:0], w.buf[upto:]...)
	old := w.f
	if err := w.createSegmentLocked(firstLSN); err != nil {
		// createSegmentLocked mutates nothing on failure: the old segment
		// stays active (oversized) and rolls on a later append.
		return err
	}
	_ = old.Close()
	w.rolls.Add(1)
	return nil
}

// flushLocked moves the pending buffer into the segment file (visible to
// readers, not necessarily on stable storage).
func (w *WAL) flushLocked() error {
	if len(w.buf) == 0 {
		return nil
	}
	if err := failpoint.Inject(failpoint.WALFlush); err != nil {
		return fmt.Errorf("durable: wal write: %w", err)
	}
	n, err := w.f.Write(w.buf)
	if err != nil {
		return fmt.Errorf("durable: wal write: %w", err)
	}
	w.size += int64(n)
	w.buf = w.buf[:0]
	return nil
}

// syncLocked flushes and — policy permitting — fsyncs the current segment.
// It owns the sticky error: any failure sets it, a full success clears it.
func (w *WAL) syncLocked() error {
	if err := w.flushLocked(); err != nil {
		w.setErrLocked(err)
		return err
	}
	if !w.dirty {
		w.lastErr = nil
		return nil
	}
	if w.opts.Sync != SyncNone {
		if err := failpoint.Inject(failpoint.WALSync); err != nil {
			err = fmt.Errorf("durable: wal sync: %w", err)
			w.setErrLocked(err)
			return err
		}
		if err := w.fsyncLocked(); err != nil {
			err = fmt.Errorf("durable: wal sync: %w", err)
			w.setErrLocked(err)
			return err
		}
		w.syncs.Add(1)
	}
	w.dirty = false
	w.lastErr = nil
	return nil
}

// setErrLocked records a failed I/O operation and arms the sticky error.
func (w *WAL) setErrLocked(err error) {
	w.ioErrs.Add(1)
	w.lastErr = err
}

// Sync makes every appended record visible and (except under SyncNone)
// durable.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	return w.syncLocked()
}

// syncLoop is the SyncInterval background flusher. Sync errors are sticky
// (surfaced to the next Append, which degrades the collector) and a panic
// in a flush tick is counted and absorbed rather than crashing the
// process — the loop keeps ticking.
func (w *WAL) syncLoop() {
	defer close(w.syncDone)
	t := time.NewTicker(w.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-w.stopSync:
			return
		case <-t.C:
			w.safeSync()
		}
	}
}

// safeSync runs one background flush tick, converting a panic into a
// counted event. Sync releases the WAL mutex via defer, so recovery leaves
// the lock free.
func (w *WAL) safeSync() {
	defer func() {
		if r := recover(); r != nil {
			w.panics.Add(1)
		}
	}()
	_ = w.Sync()
}

// LastLSN returns the LSN of the most recently appended record (0: none).
func (w *WAL) LastLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextLSN - 1
}

// Replay walks every record with LSN strictly greater than since, in LSN
// order. A corrupt record stops the walk: the error wraps ErrCorrupt and
// the records already delivered are all valid — recovery treats the log as
// ending there. Records buffered but not yet flushed are included.
func (w *WAL) Replay(since uint64, fn func(FeedbackRecord) error) (replayed int, err error) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return 0, errors.New("durable: wal is closed")
	}
	if err := w.flushLocked(); err != nil {
		w.mu.Unlock()
		return 0, err
	}
	segs, err := w.segments()
	w.mu.Unlock()
	if err != nil {
		return 0, err
	}
	for i, first := range segs {
		if i+1 < len(segs) && segs[i+1] <= since+1 {
			continue // every record in this segment has LSN <= since
		}
		data, err := os.ReadFile(filepath.Join(w.dir, segName(first)))
		if err != nil {
			return replayed, fmt.Errorf("durable: replay: %w", err)
		}
		_, err = scanRecords(data, first, func(rec FeedbackRecord) error {
			if rec.LSN <= since {
				return nil
			}
			if err := fn(rec); err != nil {
				return err
			}
			replayed++
			return nil
		})
		if err != nil {
			return replayed, fmt.Errorf("durable: replay segment %s: %w", segName(first), err)
		}
	}
	return replayed, nil
}

// PruneThrough removes segments whose records ALL have LSN <= through — the
// segments a checkpoint at that LSN fully covers. The active segment is
// never removed. Returns the number of segments deleted.
func (w *WAL) PruneThrough(through uint64) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, nil
	}
	segs, err := w.segments()
	if err != nil {
		return 0, err
	}
	removed := 0
	for i, first := range segs {
		if i+1 >= len(segs) {
			break // the active segment stays
		}
		// Segment i holds LSNs [first, segs[i+1]); covered iff the next
		// segment starts at or below through+1.
		if segs[i+1] > through+1 {
			break
		}
		if err := os.Remove(filepath.Join(w.dir, segName(first))); err != nil {
			return removed, fmt.Errorf("durable: prune wal: %w", err)
		}
		removed++
	}
	if removed > 0 {
		w.pruned.Add(uint64(removed))
		if err := syncDir(w.dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

// Close flushes, fsyncs and closes the log. Idempotent.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	flushErr := w.flushLocked()
	if flushErr == nil && w.dirty {
		flushErr = w.fsyncLocked()
		w.dirty = false
	}
	closeErr := w.f.Close()
	w.closed = true
	stop := w.stopSync
	done := w.syncDone
	w.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}

// WALStats is a point-in-time snapshot of the log.
type WALStats struct {
	Segments int    `json:"segments"`
	LastLSN  uint64 `json:"last_lsn"`
	Appends  uint64 `json:"appends"`
	Bytes    uint64 `json:"bytes"`
	// Syncs counts explicit fsyncs (per append under "always", per flush
	// window under "interval", zero under "none").
	Syncs uint64 `json:"syncs"`
	Rolls uint64 `json:"rolls"`
	// TornBytes is how much invalid tail the last open truncated — nonzero
	// exactly when the previous process died mid-append.
	TornBytes uint64 `json:"torn_bytes"`
	// PrunedSegments counts segments removed because a retained checkpoint
	// fully covered them.
	PrunedSegments uint64 `json:"pruned_segments"`
	SyncPolicy     string `json:"sync_policy"`
	// IOErrors counts failed append/flush/fsync operations; LastError is
	// the sticky error currently in force (empty when the log is healthy).
	// FlusherPanics counts background flush ticks that panicked and were
	// absorbed.
	IOErrors      uint64 `json:"io_errors"`
	LastError     string `json:"last_error,omitempty"`
	FlusherPanics uint64 `json:"flusher_panics,omitempty"`
}

// Stats returns the log counters.
func (w *WAL) Stats() WALStats {
	w.mu.Lock()
	last := w.nextLSN - 1
	lastErr := ""
	if w.lastErr != nil {
		lastErr = w.lastErr.Error()
	}
	w.mu.Unlock()
	segs, _ := w.segments()
	return WALStats{
		Segments:       len(segs),
		LastLSN:        last,
		Appends:        w.appends.Load(),
		Bytes:          w.bytes.Load(),
		Syncs:          w.syncs.Load(),
		Rolls:          w.rolls.Load(),
		TornBytes:      w.tornBytes.Load(),
		PrunedSegments: w.pruned.Load(),
		SyncPolicy:     w.opts.Sync.String(),
		IOErrors:       w.ioErrs.Load(),
		LastError:      lastErr,
		FlusherPanics:  w.panics.Load(),
	}
}

// syncDir fsyncs a directory so entry creation/removal survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("durable: sync dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("durable: sync dir: %w", err)
	}
	return nil
}
