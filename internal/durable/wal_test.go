package durable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func mustAppend(t *testing.T, w *WAL, sql string, card int64) uint64 {
	t.Helper()
	lsn, err := w.Append(sql, card, time.Unix(100, 200))
	if err != nil {
		t.Fatalf("Append(%q): %v", sql, err)
	}
	return lsn
}

func collect(t *testing.T, w *WAL, since uint64) []FeedbackRecord {
	t.Helper()
	var out []FeedbackRecord
	if _, err := w.Replay(since, func(r FeedbackRecord) error {
		out = append(out, r)
		return nil
	}); err != nil {
		t.Fatalf("Replay(%d): %v", since, err)
	}
	return out
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	obs := time.Unix(1234, 5678)
	for i := 1; i <= 10; i++ {
		lsn, err := w.Append(fmt.Sprintf("SELECT * FROM t WHERE t.a = %d", i), int64(i*10), obs)
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i) {
			t.Fatalf("lsn = %d, want %d", lsn, i)
		}
	}
	recs := collect(t, w, 0)
	if len(recs) != 10 {
		t.Fatalf("replayed %d records, want 10", len(recs))
	}
	for i, r := range recs {
		want := FeedbackRecord{
			LSN:        uint64(i + 1),
			SQL:        fmt.Sprintf("SELECT * FROM t WHERE t.a = %d", i+1),
			Card:       int64((i + 1) * 10),
			ObservedAt: obs,
		}
		if r.LSN != want.LSN || r.SQL != want.SQL || r.Card != want.Card || !r.ObservedAt.Equal(want.ObservedAt) {
			t.Fatalf("record %d = %+v, want %+v", i, r, want)
		}
	}
	if got := collect(t, w, 7); len(got) != 3 || got[0].LSN != 8 {
		t.Fatalf("Replay(since=7) = %d records starting at %v, want 3 starting at 8", len(got), got)
	}
}

func TestWALSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w, "SELECT * FROM t", 1)
	mustAppend(t, w, "SELECT * FROM u", 2)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if lsn := mustAppend(t, w2, "SELECT * FROM v", 3); lsn != 3 {
		t.Fatalf("post-reopen lsn = %d, want 3", lsn)
	}
	if recs := collect(t, w2, 0); len(recs) != 3 {
		t.Fatalf("replayed %d records after reopen, want 3", len(recs))
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w, "SELECT * FROM t", 1)
	mustAppend(t, w, "SELECT * FROM u", 2)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: a partial frame at the tail.
	path := filepath.Join(dir, segName(1))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x40, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2, err := OpenWAL(dir, WALOptions{Sync: SyncAlways})
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	defer w2.Close()
	if st := w2.Stats(); st.TornBytes != 6 {
		t.Fatalf("torn_bytes = %d, want 6", st.TornBytes)
	}
	if recs := collect(t, w2, 0); len(recs) != 2 {
		t.Fatalf("replayed %d records after truncation, want 2", len(recs))
	}
	// The log must append cleanly after the truncated tail.
	if lsn := mustAppend(t, w2, "SELECT * FROM v", 3); lsn != 3 {
		t.Fatalf("post-truncation lsn = %d, want 3", lsn)
	}
	if recs := collect(t, w2, 0); len(recs) != 3 {
		t.Fatalf("replayed %d records after post-truncation append, want 3", len(recs))
	}
}

func TestWALBitFlipInTailTruncates(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		mustAppend(t, w, fmt.Sprintf("SELECT * FROM t WHERE t.a = %d", i), int64(i))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one payload bit in the middle of the active segment. Corruption
	// in the tail segment is indistinguishable from a torn write, so open
	// truncates from the first bad record onward rather than failing.
	path := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(dir, WALOptions{Sync: SyncAlways})
	if err != nil {
		t.Fatalf("open with tail corruption: %v", err)
	}
	defer w2.Close()
	if st := w2.Stats(); st.TornBytes == 0 {
		t.Fatal("tail corruption did not register as torn bytes")
	}
	got := collect(t, w2, 0)
	if len(got) >= 5 {
		t.Fatalf("replay delivered %d records past corruption, want fewer than 5", len(got))
	}
	for i, r := range got {
		if r.LSN != uint64(i+1) {
			t.Fatalf("replayed lsn[%d] = %d, want %d (prefix must stay contiguous)", i, r.LSN, i+1)
		}
	}
}

func TestWALBitFlipInSealedSegmentStopsReplay(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{Sync: SyncAlways, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 40; i++ {
		mustAppend(t, w, fmt.Sprintf("SELECT * FROM t WHERE t.a = %d", i), int64(i))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the FIRST (sealed, non-tail) segment: replay must surface
	// ErrCorrupt after delivering the contiguous valid prefix, because a
	// sealed segment was fully synced — damage there is real corruption,
	// not a torn write.
	path := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(dir, WALOptions{Sync: SyncAlways, SegmentBytes: 256})
	if err != nil {
		t.Fatalf("open with sealed-segment corruption: %v", err)
	}
	defer w2.Close()
	var got []uint64
	_, replayErr := w2.Replay(0, func(r FeedbackRecord) error {
		got = append(got, r.LSN)
		return nil
	})
	if !errors.Is(replayErr, ErrCorrupt) {
		t.Fatalf("replay error = %v, want ErrCorrupt", replayErr)
	}
	for i, lsn := range got {
		if lsn != uint64(i+1) {
			t.Fatalf("replayed lsn[%d] = %d, want %d (prefix must stay contiguous)", i, lsn, i+1)
		}
	}
}

func TestWALSegmentRollAndPrune(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{Sync: SyncAlways, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 1; i <= 40; i++ {
		mustAppend(t, w, fmt.Sprintf("SELECT * FROM t WHERE t.a = %d", i), int64(i))
	}
	st := w.Stats()
	if st.Segments < 3 {
		t.Fatalf("segments = %d, want >= 3 with 256-byte segments", st.Segments)
	}
	if recs := collect(t, w, 0); len(recs) != 40 {
		t.Fatalf("replayed %d records across segments, want 40", len(recs))
	}

	// Prune through LSN 20: segments whose records ALL have LSN <= 20 go.
	removed, err := w.PruneThrough(20)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("PruneThrough(20) removed nothing")
	}
	// Records > 20 must all survive pruning.
	recs := collect(t, w, 20)
	if len(recs) != 20 || recs[0].LSN != 21 {
		t.Fatalf("after prune: Replay(20) = %d records starting at %v, want 20 starting at 21", len(recs), recs)
	}
	// The active segment is never pruned.
	if st := w.Stats(); st.Segments == 0 {
		t.Fatal("prune removed the active segment")
	}
}

func TestWALSyncIntervalFlushes(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{Sync: SyncInterval, SyncEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w, "SELECT * FROM t", 1)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if w.Stats().Syncs > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background syncer never flushed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// The flushed record must be durable for a fresh reader.
	w2, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if recs := collect(t, w2, 0); len(recs) != 1 {
		t.Fatalf("replayed %d records, want 1", len(recs))
	}
}

func TestWALEmptySQLAndLargeRecord(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	mustAppend(t, w, "", 0)
	big := make([]byte, 64<<10)
	for i := range big {
		big[i] = byte('a' + i%26)
	}
	mustAppend(t, w, string(big), 1)
	recs := collect(t, w, 0)
	if len(recs) != 2 || recs[0].SQL != "" || recs[1].SQL != string(big) {
		t.Fatalf("round trip failed for empty/large SQL (%d records)", len(recs))
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{
		"":         SyncInterval,
		"interval": SyncInterval,
		"Always":   SyncAlways,
		"none":     SyncNone,
	} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseSyncPolicy("everysooften"); err == nil {
		t.Fatal("unknown policy must error")
	}
}
