package exec

import (
	"math/rand"
	"testing"

	"crn/internal/datagen"
	"crn/internal/query"
	"crn/internal/schema"
)

func benchFixture(b *testing.B, titles int) (*Executor, []query.Query) {
	b.Helper()
	cfg := datagen.DefaultConfig()
	cfg.Titles = titles
	d, err := datagen.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	e, err := New(d)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	sats := []string{schema.MovieCompany, schema.CastInfo, schema.MovieInfo, schema.MovieInfoIdx, schema.MovieKeyword}
	var queries []query.Query
	for joins := 0; joins <= 5; joins++ {
		tables := []string{schema.Title}
		var js []query.Join
		for k := 0; k < joins; k++ {
			tables = append(tables, sats[k])
			js = append(js, query.Join{
				Left:  schema.ColumnRef{Table: schema.Title, Column: "id"},
				Right: schema.ColumnRef{Table: sats[k], Column: "movie_id"},
			})
		}
		preds := []query.Predicate{{
			Col: schema.ColumnRef{Table: schema.Title, Column: "production_year"},
			Op:  schema.OpGT,
			Val: int64(1900 + rng.Intn(100)),
		}}
		q, err := query.New(schema.IMDB(), tables, js, preds)
		if err != nil {
			b.Fatal(err)
		}
		queries = append(queries, q)
	}
	return e, queries
}

// BenchmarkCardinality measures exact evaluation cost per join count — the
// labeling substrate behind every training set.
func BenchmarkCardinality(b *testing.B) {
	e, queries := benchFixture(b, 4000)
	for joins, q := range queries {
		q := q
		b.Run(joinName(joins), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// Vary the predicate to defeat the memoization cache.
				qq := q.Clone()
				qq.Preds[0].Val = int64(1880 + i%130)
				if _, err := e.Cardinality(qq); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkContainmentRateTruth(b *testing.B) {
	e, queries := benchFixture(b, 4000)
	q1 := queries[2]
	for i := 0; i < b.N; i++ {
		q2 := q1.Clone()
		q2.Preds[0].Val = int64(1880 + i%130)
		if _, err := e.ContainmentRate(q1, q2); err != nil {
			b.Fatal(err)
		}
	}
}

func joinName(j int) string {
	return string(rune('0'+j)) + "joins"
}
