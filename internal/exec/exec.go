// Package exec evaluates conjunctive queries over the column store exactly,
// producing the ground-truth cardinalities and containment rates that label
// the training and test sets (§3.1.2: "we execute the dataset queries ... to
// obtain their true containment rates").
//
// Evaluation strategy: per-table predicate filters first, then a bottom-up
// weight propagation over the query's join tree. Under bag semantics the
// result rows of a SELECT * join query are identified by tuples of base-table
// row ids, so the result cardinality is
//
//	Σ over filtered root rows Π over child subtrees weight(joinValue)
//
// where weight maps a join value to the number of subtree row combinations
// carrying it. Queries whose FROM clauses contain join-disconnected tables
// are cartesian products of their connected components.
package exec

import (
	"context"
	"fmt"
	"sync"

	"crn/internal/db"
	"crn/internal/query"
)

// Executor computes exact cardinalities and containment rates over one
// frozen database. It memoizes cardinalities by canonical query key and is
// safe for concurrent use.
type Executor struct {
	db *db.Database

	mu    sync.RWMutex
	cache map[string]int64
}

// New creates an Executor over a frozen database.
func New(d *db.Database) (*Executor, error) {
	if !d.Frozen() {
		return nil, fmt.Errorf("exec: database must be frozen")
	}
	return &Executor{db: d, cache: make(map[string]int64)}, nil
}

// CacheSize returns the number of memoized cardinalities.
func (e *Executor) CacheSize() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.cache)
}

// Cardinality returns the exact result cardinality of q.
func (e *Executor) Cardinality(q query.Query) (int64, error) {
	return e.CardinalityCtx(context.Background(), q)
}

// CardinalityCtx is Cardinality with cancellation: the evaluation checks ctx
// between per-table filter scans and join-tree passes, so long-running exact
// executions abort promptly once the caller cancels or the deadline passes.
func (e *Executor) CardinalityCtx(ctx context.Context, q query.Query) (int64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	key := q.Key()
	e.mu.RLock()
	if c, ok := e.cache[key]; ok {
		e.mu.RUnlock()
		return c, nil
	}
	e.mu.RUnlock()
	c, err := e.compute(ctx, q)
	if err != nil {
		return 0, err
	}
	e.mu.Lock()
	// Bound the memoization cache: a long-lived serving process feeds the
	// executor arbitrary client queries, and an unbounded map would grow
	// for the life of the process. A full reset keeps the common case
	// (a bounded working set of repeated queries) fast and the worst case
	// merely a recomputation.
	if len(e.cache) > maxCachedCardinalities {
		e.cache = make(map[string]int64)
	}
	e.cache[key] = c
	e.mu.Unlock()
	return c, nil
}

// maxCachedCardinalities bounds the executor's memoization map (~64k
// entries; keys are canonical SQL, so on the order of a few MiB).
const maxCachedCardinalities = 1 << 16

// ContainmentRate returns Q1 ⊂% Q2 on the database as a fraction in [0,1]:
// |Q1∩Q2| / |Q1|, and 0 when Q1's result is empty (§2). The queries must
// have identical FROM clauses.
func (e *Executor) ContainmentRate(q1, q2 query.Query) (float64, error) {
	return e.ContainmentRateCtx(context.Background(), q1, q2)
}

// ContainmentRateCtx is ContainmentRate with cancellation.
func (e *Executor) ContainmentRateCtx(ctx context.Context, q1, q2 query.Query) (float64, error) {
	c1, err := e.CardinalityCtx(ctx, q1)
	if err != nil {
		return 0, err
	}
	if c1 == 0 {
		return 0, nil
	}
	qi, err := q1.Intersect(q2)
	if err != nil {
		return 0, err
	}
	ci, err := e.CardinalityCtx(ctx, qi)
	if err != nil {
		return 0, err
	}
	return float64(ci) / float64(c1), nil
}

// compute evaluates the query from scratch.
func (e *Executor) compute(ctx context.Context, q query.Query) (int64, error) {
	if len(q.Tables) == 0 {
		return 0, fmt.Errorf("exec: query has no tables")
	}
	masks := make(map[string][]bool, len(q.Tables))
	for _, t := range q.Tables {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		m, err := e.filterMask(t, q.PredsOn(t))
		if err != nil {
			return 0, err
		}
		masks[t] = m
	}
	components := q.Components()
	total := int64(1)
	for _, comp := range components {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		if len(comp.Joins) != len(comp.Tables)-1 {
			return 0, fmt.Errorf("exec: cyclic join graph over %v not supported", comp.Tables)
		}
		c, err := e.componentCardinality(ctx, comp, masks)
		if err != nil {
			return 0, err
		}
		total *= c
		if total == 0 {
			return 0, nil
		}
	}
	return total, nil
}

// filterMask evaluates the conjunction of predicates on one table and
// returns a per-row boolean mask.
func (e *Executor) filterMask(table string, preds []query.Predicate) ([]bool, error) {
	t := e.db.Table(table)
	if t == nil {
		return nil, fmt.Errorf("exec: unknown table %q", table)
	}
	n := t.NumRows()
	mask := make([]bool, n)
	for i := range mask {
		mask[i] = true
	}
	for _, p := range preds {
		col := t.Column(p.Col.Column)
		if col == nil {
			return nil, fmt.Errorf("exec: unknown column %v", p.Col)
		}
		for i, v := range col {
			if mask[i] && !p.Matches(v) {
				mask[i] = false
			}
		}
	}
	return mask, nil
}

// componentCardinality evaluates one connected join tree.
func (e *Executor) componentCardinality(ctx context.Context, c query.Component, masks map[string][]bool) (int64, error) {
	if len(c.Tables) == 1 {
		return countMask(masks[c.Tables[0]]), nil
	}
	// Adjacency: table -> (neighbor table, my join column, neighbor column).
	type edgeTo struct {
		neighbor string
		myCol    string
		nbrCol   string
	}
	adj := make(map[string][]edgeTo, len(c.Tables))
	for _, j := range c.Joins {
		adj[j.Left.Table] = append(adj[j.Left.Table], edgeTo{j.Right.Table, j.Left.Column, j.Right.Column})
		adj[j.Right.Table] = append(adj[j.Right.Table], edgeTo{j.Left.Table, j.Right.Column, j.Left.Column})
	}
	root := c.Tables[0]

	// weights returns, for the subtree rooted at `table` (entered from
	// `from`), a map join-value-of-linkCol -> number of row combinations.
	var weights func(table, from, linkCol string) (map[db.Value]int64, error)
	weights = func(table, from, linkCol string) (map[db.Value]int64, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		t := e.db.Table(table)
		mask := masks[table]
		link := t.Column(linkCol)
		if link == nil {
			return nil, fmt.Errorf("exec: unknown join column %s.%s", table, linkCol)
		}
		// Child weight maps, aligned with adj entries (skipping `from`).
		type childW struct {
			col string
			w   map[db.Value]int64
		}
		var children []childW
		for _, ed := range adj[table] {
			if ed.neighbor == from {
				continue
			}
			w, err := weights(ed.neighbor, table, ed.nbrCol)
			if err != nil {
				return nil, err
			}
			children = append(children, childW{col: ed.myCol, w: w})
		}
		childCols := make([][]db.Value, len(children))
		for i, ch := range children {
			childCols[i] = t.Column(ch.col)
		}
		out := make(map[db.Value]int64)
		for i, ok := range mask {
			if !ok {
				continue
			}
			m := int64(1)
			for ci, ch := range children {
				m *= ch.w[childCols[ci][i]]
				if m == 0 {
					break
				}
			}
			if m != 0 {
				out[link[i]] += m
			}
		}
		return out, nil
	}

	t := e.db.Table(root)
	mask := masks[root]
	var children []struct {
		col []db.Value
		w   map[db.Value]int64
	}
	for _, ed := range adj[root] {
		w, err := weights(ed.neighbor, root, ed.nbrCol)
		if err != nil {
			return 0, err
		}
		children = append(children, struct {
			col []db.Value
			w   map[db.Value]int64
		}{t.Column(ed.myCol), w})
	}
	var total int64
	for i, ok := range mask {
		if !ok {
			continue
		}
		m := int64(1)
		for _, ch := range children {
			m *= ch.w[ch.col[i]]
			if m == 0 {
				break
			}
		}
		total += m
	}
	return total, nil
}

func countMask(mask []bool) int64 {
	var n int64
	for _, ok := range mask {
		if ok {
			n++
		}
	}
	return n
}

// Truth is the subset of Executor used as an oracle by other packages;
// satisfied by *Executor.
type Truth interface {
	Cardinality(q query.Query) (int64, error)
	ContainmentRate(q1, q2 query.Query) (float64, error)
}

var _ Truth = (*Executor)(nil)

// SelectivityOn computes the fraction of rows of `table` passing the
// query's predicates on that table; used by sampling-based featurizations
// (MSCN's sample bitmaps evaluate exactly this on a sample).
func (e *Executor) SelectivityOn(table string, preds []query.Predicate) (float64, error) {
	mask, err := e.filterMask(table, preds)
	if err != nil {
		return 0, err
	}
	if len(mask) == 0 {
		return 0, nil
	}
	return float64(countMask(mask)) / float64(len(mask)), nil
}
