package exec

import (
	"math/rand"
	"testing"

	"crn/internal/datagen"
	"crn/internal/db"
	"crn/internal/query"
	"crn/internal/schema"
)

// bruteForce evaluates q by enumerating all row combinations — the reference
// semantics the executor must reproduce.
func bruteForce(d *db.Database, q query.Query) int64 {
	tables := q.Tables
	var count int64
	rowIdx := make([]int, len(tables))
	var recurse func(depth int)
	recurse = func(depth int) {
		if depth == len(tables) {
			count++
			return
		}
		t := d.Table(tables[depth])
	rows:
		for i := 0; i < t.NumRows(); i++ {
			rowIdx[depth] = i
			for _, p := range q.PredsOn(tables[depth]) {
				if !p.Matches(t.Column(p.Col.Column)[i]) {
					continue rows
				}
			}
			for _, j := range q.Joins {
				li, lOK := indexOf(tables, j.Left.Table)
				ri, rOK := indexOf(tables, j.Right.Table)
				if !lOK || !rOK || li > depth || ri > depth {
					continue
				}
				lv := d.Table(j.Left.Table).Column(j.Left.Column)[rowIdx[li]]
				rv := d.Table(j.Right.Table).Column(j.Right.Column)[rowIdx[ri]]
				if lv != rv {
					continue rows
				}
			}
			recurse(depth + 1)
		}
	}
	recurse(0)
	return count
}

func indexOf(xs []string, x string) (int, bool) {
	for i, v := range xs {
		if v == x {
			return i, true
		}
	}
	return 0, false
}

var imdb = schema.IMDB()

func tinyDB(t *testing.T) *db.Database {
	t.Helper()
	cfg := datagen.DefaultConfig()
	cfg.Titles = 30
	cfg.CompaniesPerBlock = 5
	cfg.PersonsPerBlock = 10
	cfg.KeywordsPerBlock = 8
	d, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func newExec(t *testing.T, d *db.Database) *Executor {
	t.Helper()
	e, err := New(d)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func ref(tb, c string) schema.ColumnRef { return schema.ColumnRef{Table: tb, Column: c} }

func mustQ(t *testing.T, tables []string, joins []query.Join, preds []query.Predicate) query.Query {
	t.Helper()
	q, err := query.New(imdb, tables, joins, preds)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func randomQuery(t *testing.T, rng *rand.Rand, d *db.Database, maxJoins int) query.Query {
	t.Helper()
	numJoins := rng.Intn(maxJoins + 1)
	var tables []string
	var joins []query.Join
	if numJoins == 0 {
		tables = []string{imdb.Tables[rng.Intn(len(imdb.Tables))].Name}
	} else {
		satellites := []string{schema.MovieCompany, schema.CastInfo, schema.MovieInfo, schema.MovieInfoIdx, schema.MovieKeyword}
		rng.Shuffle(len(satellites), func(i, j int) { satellites[i], satellites[j] = satellites[j], satellites[i] })
		tables = append([]string{schema.Title}, satellites[:numJoins]...)
		for _, sat := range satellites[:numJoins] {
			joins = append(joins, query.Join{Left: ref(schema.Title, "id"), Right: ref(sat, "movie_id")})
		}
	}
	var preds []query.Predicate
	for _, tb := range tables {
		td, _ := imdb.Table(tb)
		for _, col := range td.NonKeyColumns() {
			if rng.Float64() > 0.5 {
				continue
			}
			colVals := d.Table(tb).Column(col.Name)
			v := colVals[rng.Intn(len(colVals))]
			op := schema.Operators()[rng.Intn(3)]
			preds = append(preds, query.Predicate{Col: ref(tb, col.Name), Op: op, Val: v})
		}
	}
	return mustQ(t, tables, joins, preds)
}

func TestCardinalityMatchesBruteForce(t *testing.T) {
	d := tinyDB(t)
	e := newExec(t, d)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 60; i++ {
		q := randomQuery(t, rng, d, 3)
		got, err := e.Cardinality(q)
		if err != nil {
			t.Fatalf("query %s: %v", q, err)
		}
		want := bruteForce(d, q)
		if got != want {
			t.Fatalf("query %s: executor=%d brute=%d", q, got, want)
		}
	}
}

func TestCardinalityFullJoin(t *testing.T) {
	d := tinyDB(t)
	e := newExec(t, d)
	// All six tables, five joins, no predicates.
	sats := []string{schema.MovieCompany, schema.CastInfo, schema.MovieInfo, schema.MovieInfoIdx, schema.MovieKeyword}
	tables := append([]string{schema.Title}, sats...)
	var joins []query.Join
	for _, s := range sats {
		joins = append(joins, query.Join{Left: ref(schema.Title, "id"), Right: ref(s, "movie_id")})
	}
	q := mustQ(t, tables, joins, nil)
	got, err := e.Cardinality(q)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: per title, product of per-satellite fan-outs.
	var want int64
	titleIDs := d.Table(schema.Title).Column("id")
	for _, id := range titleIDs {
		m := int64(1)
		for _, s := range sats {
			idx := d.KeyIndex(ref(s, "movie_id"))
			m *= int64(len(idx[id]))
			if m == 0 {
				break
			}
		}
		want += m
	}
	if got != want {
		t.Fatalf("full join: executor=%d reference=%d", got, want)
	}
}

func TestCartesianProduct(t *testing.T) {
	d := tinyDB(t)
	e := newExec(t, d)
	// Two tables, no join clause: cross product.
	q := query.Query{Tables: []string{schema.CastInfo, schema.Title}}
	got, err := e.Cardinality(q)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(d.NumRows(schema.CastInfo)) * int64(d.NumRows(schema.Title))
	if got != want {
		t.Fatalf("cartesian = %d, want %d", got, want)
	}
}

func TestMixedComponents(t *testing.T) {
	d := tinyDB(t)
	e := newExec(t, d)
	// One joined component (title ⋈ cast_info) crossed with a disconnected
	// singleton (movie_keyword): cardinality must be the product.
	joined := mustQ(t,
		[]string{schema.Title, schema.CastInfo},
		[]query.Join{{Left: ref(schema.Title, "id"), Right: ref(schema.CastInfo, "movie_id")}},
		[]query.Predicate{{Col: ref(schema.CastInfo, "role_id"), Op: schema.OpLT, Val: 5}},
	)
	joinedCard, err := e.Cardinality(joined)
	if err != nil {
		t.Fatal(err)
	}
	mixed := query.Query{
		Tables: []string{schema.CastInfo, schema.MovieKeyword, schema.Title},
		Joins:  joined.Joins,
		Preds:  joined.Preds,
	}
	got, err := e.Cardinality(mixed)
	if err != nil {
		t.Fatal(err)
	}
	want := joinedCard * int64(d.NumRows(schema.MovieKeyword))
	if got != want {
		t.Fatalf("mixed components = %d, want %d", got, want)
	}
}

func TestContainmentRateDefinition(t *testing.T) {
	d := tinyDB(t)
	e := newExec(t, d)
	q1 := mustQ(t, []string{schema.Title}, nil, []query.Predicate{
		{Col: ref(schema.Title, "production_year"), Op: schema.OpGT, Val: 1950},
	})
	q2 := mustQ(t, []string{schema.Title}, nil, []query.Predicate{
		{Col: ref(schema.Title, "production_year"), Op: schema.OpGT, Val: 1900},
	})
	// q1 ⊆ q2 analytically: containment of q1 in q2 is 100%.
	rate, err := e.ContainmentRate(q1, q2)
	if err != nil {
		t.Fatal(err)
	}
	c1, _ := e.Cardinality(q1)
	if c1 > 0 && rate != 1.0 {
		t.Errorf("subset containment = %v, want 1.0", rate)
	}
	// Reverse direction matches the cardinality ratio.
	rev, err := e.ContainmentRate(q2, q1)
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := e.Cardinality(q2)
	if c2 > 0 {
		want := float64(c1) / float64(c2)
		if diff := rev - want; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("reverse containment = %v, want %v", rev, want)
		}
	}
}

func TestContainmentRateProperties(t *testing.T) {
	d := tinyDB(t)
	e := newExec(t, d)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 40; i++ {
		q1 := randomQuery(t, rng, d, 2)
		q2 := randomQuery(t, rng, d, 2)
		if !q1.Comparable(q2) {
			continue
		}
		rate, err := e.ContainmentRate(q1, q2)
		if err != nil {
			t.Fatal(err)
		}
		if rate < 0 || rate > 1 {
			t.Fatalf("rate out of [0,1]: %v for %s vs %s", rate, q1, q2)
		}
		// Reflexivity: Q ⊂% Q is 1 for non-empty results, 0 otherwise.
		self, err := e.ContainmentRate(q1, q1)
		if err != nil {
			t.Fatal(err)
		}
		c1, _ := e.Cardinality(q1)
		if c1 > 0 && self != 1.0 {
			t.Fatalf("self containment = %v for %s", self, q1)
		}
		if c1 == 0 && self != 0 {
			t.Fatalf("empty query self containment = %v", self)
		}
	}
}

func TestAntiMonotonicity(t *testing.T) {
	d := tinyDB(t)
	e := newExec(t, d)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 40; i++ {
		q := randomQuery(t, rng, d, 2)
		base, err := e.Cardinality(q)
		if err != nil {
			t.Fatal(err)
		}
		// Adding any predicate never increases cardinality.
		tb := q.Tables[rng.Intn(len(q.Tables))]
		td, _ := imdb.Table(tb)
		nk := td.NonKeyColumns()
		col := nk[rng.Intn(len(nk))]
		vals := d.Table(tb).Column(col.Name)
		p := query.Predicate{
			Col: ref(tb, col.Name),
			Op:  schema.Operators()[rng.Intn(3)],
			Val: vals[rng.Intn(len(vals))],
		}
		narrowed, err := e.Cardinality(q.WithPredicate(p))
		if err != nil {
			t.Fatal(err)
		}
		if narrowed > base {
			t.Fatalf("adding %v increased cardinality %d -> %d for %s", p, base, narrowed, q)
		}
	}
}

func TestIntersectionBound(t *testing.T) {
	d := tinyDB(t)
	e := newExec(t, d)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 40; i++ {
		q1 := randomQuery(t, rng, d, 2)
		q2 := randomQuery(t, rng, d, 2)
		if !q1.Comparable(q2) {
			continue
		}
		qi, err := q1.Intersect(q2)
		if err != nil {
			t.Fatal(err)
		}
		ci, _ := e.Cardinality(qi)
		c1, _ := e.Cardinality(q1)
		c2, _ := e.Cardinality(q2)
		if ci > c1 || ci > c2 {
			t.Fatalf("|Q1∩Q2|=%d exceeds min(%d,%d)", ci, c1, c2)
		}
	}
}

func TestCacheHit(t *testing.T) {
	d := tinyDB(t)
	e := newExec(t, d)
	q := mustQ(t, []string{schema.Title}, nil, nil)
	if _, err := e.Cardinality(q); err != nil {
		t.Fatal(err)
	}
	n := e.CacheSize()
	if _, err := e.Cardinality(q); err != nil {
		t.Fatal(err)
	}
	if e.CacheSize() != n {
		t.Error("repeat query should hit the cache")
	}
	if n != 1 {
		t.Errorf("cache size = %d, want 1", n)
	}
}

func TestErrors(t *testing.T) {
	d := tinyDB(t)
	e := newExec(t, d)
	if _, err := e.Cardinality(query.Query{}); err == nil {
		t.Error("empty query should fail")
	}
	if _, err := e.Cardinality(query.Query{Tables: []string{"ghost"}}); err == nil {
		t.Error("unknown table should fail")
	}
	bad := query.Query{
		Tables: []string{schema.Title},
		Preds:  []query.Predicate{{Col: ref(schema.Title, "ghost"), Op: schema.OpEQ, Val: 1}},
	}
	if _, err := e.Cardinality(bad); err == nil {
		t.Error("unknown column should fail")
	}
	unfrozen := db.NewDatabase(imdb)
	if _, err := New(unfrozen); err == nil {
		t.Error("unfrozen database should be rejected")
	}
}

func TestSelectivityOn(t *testing.T) {
	d := tinyDB(t)
	e := newExec(t, d)
	sel, err := e.SelectivityOn(schema.Title, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sel != 1.0 {
		t.Errorf("no predicates should select everything, got %v", sel)
	}
	sel, err = e.SelectivityOn(schema.Title, []query.Predicate{
		{Col: ref(schema.Title, "production_year"), Op: schema.OpGT, Val: 3000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sel != 0 {
		t.Errorf("impossible predicate should select nothing, got %v", sel)
	}
	if _, err := e.SelectivityOn("ghost", nil); err == nil {
		t.Error("unknown table should fail")
	}
}

func TestConcurrentCardinality(t *testing.T) {
	d := tinyDB(t)
	e := newExec(t, d)
	rng := rand.New(rand.NewSource(23))
	queries := make([]query.Query, 20)
	for i := range queries {
		queries[i] = randomQuery(t, rng, d, 2)
	}
	want := make([]int64, len(queries))
	for i, q := range queries {
		c, err := e.Cardinality(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = c
	}
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func() {
			for i, q := range queries {
				c, err := e.Cardinality(q)
				if err != nil {
					done <- err
					return
				}
				if c != want[i] {
					done <- errMismatch
					return
				}
			}
			done <- nil
		}()
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "concurrent cardinality mismatch" }
