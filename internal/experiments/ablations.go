package experiments

import (
	"fmt"

	"crn/internal/card"
	"crn/internal/metrics"
	"crn/internal/pool"
	"crn/internal/query"
)

// Ablations isolate the design choices the paper makes informally: the
// Median final function (§5.3.1), the y_rate ε guard (Figure 8), the
// empty-predicate anchor queries in the pool (§5.2), and the q-error
// training objective (§3.2.4).

// AblationFinalFuncs compares the final functions F on crd_test2 with the
// environment's Cnt2Crd(CRN) estimator (the paper reports Median best).
func AblationFinalFuncs(env *Env) (Result, error) {
	t := metrics.Table{
		Title:  "Ablation: final function F on crd_test2 (Cnt2Crd(CRN))",
		Header: metrics.SummaryHeader("final function"),
	}
	for _, f := range []struct {
		name string
		fn   pool.FinalFunc
	}{{"median", pool.Median}, {"mean", pool.Mean}, {"trimmed mean", pool.TrimmedMean}} {
		est := env.Cnt2CrdCRN()
		est.Final = f.fn
		errs, err := CardErrors(est, env.CrdTest2)
		if err != nil {
			return Result{}, err
		}
		t.AddRow(metrics.SummaryRow(f.name, metrics.Summarize(errs))...)
	}
	return Result{ID: "ablation_final", Caption: "Final function ablation (§5.3.1)", Table: t}, nil
}

// AblationEpsilon sweeps the y_rate guard ε of the Figure 8 algorithm.
func AblationEpsilon(env *Env) (Result, error) {
	t := metrics.Table{
		Title:  "Ablation: y_rate guard ε on crd_test2 (Cnt2Crd(CRN))",
		Header: metrics.SummaryHeader("epsilon"),
	}
	for _, eps := range []float64{1e-4, 1e-3, 1e-2, 5e-2} {
		est := env.Cnt2CrdCRN()
		est.Epsilon = eps
		errs, err := CardErrors(est, env.CrdTest2)
		if err != nil {
			return Result{}, err
		}
		t.AddRow(metrics.SummaryRow(fmt.Sprintf("%g", eps), metrics.Summarize(errs))...)
	}
	return Result{ID: "ablation_eps", Caption: "Epsilon guard ablation (Fig. 8)", Table: t}, nil
}

// AblationPoolAnchor removes the empty-predicate anchor queries from the
// pool, quantifying the §5.2 guarantee that every probe finds a usable
// match.
func AblationPoolAnchor(env *Env) (Result, error) {
	t := metrics.Table{
		Title:  "Ablation: pool anchor queries on crd_test2 (Cnt2Crd(CRN))",
		Header: metrics.SummaryHeader("pool"),
	}
	full := env.Cnt2CrdCRN()
	errs, err := CardErrors(full, env.CrdTest2)
	if err != nil {
		return Result{}, err
	}
	t.AddRow(metrics.SummaryRow("with anchors", metrics.Summarize(errs))...)

	noAnchor := pool.New()
	for _, e := range env.Pool.Entries() {
		if len(e.Q.Preds) > 0 {
			noAnchor.Add(e.Q, e.Card)
		}
	}
	est := env.Cnt2CrdCRN()
	est.Pool = noAnchor
	errs, err = CardErrors(est, env.CrdTest2)
	if err != nil {
		return Result{}, err
	}
	t.AddRow(metrics.SummaryRow("without anchors", metrics.Summarize(errs))...)
	return Result{ID: "ablation_anchor", Caption: "Pool anchor ablation (§5.2)", Table: t}, nil
}

// AblationLoss retrains the CRN under the paper's three candidate
// objectives (§3.2.4) and reports validation quality; q-error should win.
func AblationLoss(env *Env, log Logf) (Result, error) {
	t := metrics.Table{
		Title:  "Ablation: CRN training objective (validation mean q-error)",
		Header: []string{"loss", "best val q-error", "epochs"},
	}
	for _, loss := range []string{"q-error", "mse", "mae"} {
		cfg := env.Cfg.CRN
		cfg.Loss = loss
		log.logf("ablation: training CRN with %s loss...", loss)
		_, stats, err := TrainCRN(env, cfg, env.TrainPairs, env.ValPairs, nil)
		if err != nil {
			return Result{}, err
		}
		best := stats[0].ValQError
		for _, st := range stats {
			if st.ValQError < best {
				best = st.ValQError
			}
		}
		t.AddRow(loss, metrics.FormatQ(best), fmt.Sprintf("%d", len(stats)))
	}
	return Result{ID: "ablation_loss", Caption: "Training-objective ablation (§3.2.4)", Table: t}, nil
}

// AblationWorkers verifies that parallelizing the pool scan (§5.3) does not
// change estimates while reducing latency; reported as a correctness table.
func AblationWorkers(env *Env) (Result, error) {
	t := metrics.Table{
		Title:  "Ablation: pool-scan parallelism on crd_test2 (Cnt2Crd(CRN))",
		Header: []string{"workers", "median q-error", "mean q-error"},
	}
	for _, w := range []int{1, 2, 4} {
		est := card.New(env.CRNRates, env.Pool)
		est.Fallback = env.PG
		est.Workers = w
		errs, err := CardErrors(est, env.CrdTest2)
		if err != nil {
			return Result{}, err
		}
		t.AddRow(fmt.Sprintf("%d", w), metrics.FormatQ(metrics.Median(errs)), metrics.FormatQ(metrics.Mean(errs)))
	}
	return Result{ID: "ablation_workers", Caption: "Parallel pool scan (§5.3)", Table: t}, nil
}

// oracleCeiling evaluates the technique with exact containment rates — the
// accuracy ceiling of Cnt2Crd given this pool (model error removed).
func OracleCeiling(env *Env) (Result, error) {
	t := metrics.Table{
		Title:  "Ablation: Cnt2Crd with oracle rates vs CRN rates (crd_test2)",
		Header: metrics.SummaryHeader("rates"),
	}
	oracle := card.New(truthRates{env}, env.Pool)
	oracle.Fallback = env.PG
	errs, err := CardErrors(oracle, env.CrdTest2)
	if err != nil {
		return Result{}, err
	}
	t.AddRow(metrics.SummaryRow("oracle rates", metrics.Summarize(errs))...)
	crnErrs, err := env.cardErrs(cardModel{"Cnt2Crd(CRN)", env.Cnt2CrdCRN()}, "crd_test2", env.CrdTest2)
	if err != nil {
		return Result{}, err
	}
	t.AddRow(metrics.SummaryRow("CRN rates", metrics.Summarize(crnErrs))...)
	return Result{ID: "ablation_oracle", Caption: "Oracle-rate ceiling of the technique", Table: t}, nil
}

// truthRates adapts the executor to the rate interface.
type truthRates struct{ env *Env }

func (t truthRates) EstimateRate(q1, q2 query.Query) (float64, error) {
	return t.env.Exec.ContainmentRate(q1, q2)
}
