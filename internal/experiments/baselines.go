package experiments

import (
	"crn/internal/metrics"
	"crn/internal/sampling"
)

// Baselines adds the sampling estimators the paper's related work cites
// (Random Sampling and Index-Based Join Sampling, §4.1/§8) to the
// cardinality comparison on crd_test1 — the workload MSCN was originally
// shown to dominate them on.
func Baselines(env *Env) (Result, error) {
	k := env.Cfg.MSCN1000Samples
	if k <= 0 {
		k = 64
	}
	rs, err := sampling.NewRS(env.DB, k, env.Cfg.Seed+700)
	if err != nil {
		return Result{}, err
	}
	ibjs, err := sampling.NewIBJS(env.DB, k, env.Cfg.Seed+701)
	if err != nil {
		return Result{}, err
	}
	models := []cardModel{
		{"RandomSampling", rs},
		{"IBJS", ibjs},
		{"PostgreSQL", env.PG},
		{"MSCN", env.MSCN},
		{"Cnt2Crd(CRN)", env.Cnt2CrdCRN()},
	}
	t := metrics.Table{
		Title:  "Baselines: sampling estimators vs learned models (crd_test1)",
		Header: metrics.SummaryHeader("model"),
	}
	for _, m := range models {
		errs, err := env.cardErrs(m, "crd_test1", env.CrdTest1)
		if err != nil {
			return Result{}, err
		}
		t.AddRow(metrics.SummaryRow(m.name, metrics.Summarize(errs))...)
	}
	return Result{ID: "baselines", Caption: "Sampling baselines (RS, IBJS) on crd_test1", Table: t}, nil
}
