// Package experiments wires every subsystem together and regenerates the
// paper's evaluation: one runner per table and figure (Tables 2-15, Figures
// 3-13), all driven from a single trained Environment. DESIGN.md carries the
// experiment index mapping each runner to its paper artifact.
package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"crn/internal/card"
	"crn/internal/contain"
	"crn/internal/crn"
	"crn/internal/datagen"
	"crn/internal/db"
	"crn/internal/exec"
	"crn/internal/feature"
	"crn/internal/mscn"
	"crn/internal/pg"
	"crn/internal/pool"
	"crn/internal/schema"
	"crn/internal/workload"
)

// Config scales the whole reproduction. The paper's sizes (100k training
// pairs, H=512, IMDb with 2.5M titles) are the Full preset; the Small
// preset fits CI hardware while preserving every qualitative result.
type Config struct {
	Seed int64

	// Database.
	DBTitles int

	// Training set (pairs with 0-2 joins, 80/20 split).
	TrainPairs int

	// Models.
	CRN             crn.Config
	MSCN            mscn.Config
	MSCN1000Samples int // bitmap width of the sampling MSCN variant

	// PostgreSQL-style statistics resolution. The paper's PostgreSQL runs
	// its default statistics target (100 buckets) against 2.5M titles —
	// one bucket per ~25k rows. Holding that bucket density on a scaled
	// database keeps the estimator's relative resolution faithful; 0 means
	// derive from DBTitles.
	PGBins int
	PGMCVs int

	// Queries pool (§6.2).
	PoolSize int

	// Workload sizes.
	CntTest1Size int
	CntTest2Size int
	CrdTest1Size int
	CrdTest2Size int
	ScaleSize    int

	// Parallelism for labeling and pool scans.
	Workers int
}

// SmallConfig is the default, benchmark-friendly scale.
func SmallConfig() Config {
	crnCfg := crn.DefaultConfig()
	crnCfg.Hidden = 64
	crnCfg.Epochs = 48
	crnCfg.Patience = 12
	crnCfg.LRDecay = 0.3
	mscnCfg := mscn.DefaultConfig()
	mscnCfg.Hidden = 64
	mscnCfg.Epochs = 48
	mscnCfg.Patience = 12
	mscnCfg.LRDecay = 0.3
	return Config{
		Seed:     1,
		DBTitles: 12000,
		// ~60k labeled executions; the executor memoizes shared sub-queries.
		TrainPairs: 20000,
		CRN:        crnCfg,
		MSCN:       mscnCfg,
		// The paper's 1000 samples cover 0.04% of 2.5M titles; 64 of 12k
		// covers 0.5% — the closest functional setting at this scale.
		MSCN1000Samples: 64,
		PoolSize:        300,
		CntTest1Size:    1200,
		CntTest2Size:    1200,
		CrdTest1Size:    450,
		CrdTest2Size:    450,
		ScaleSize:       500,
		Workers:         2,
	}
}

// FullConfig approaches the paper's scale (still bounded for a laptop).
func FullConfig() Config {
	c := SmallConfig()
	c.DBTitles = 40000
	c.TrainPairs = 40000
	c.CRN.Hidden = 128
	c.CRN.Epochs = 60
	c.CRN.Patience = 10
	c.MSCN.Hidden = 128
	c.MSCN.Epochs = 60
	c.MSCN.Patience = 10
	c.MSCN1000Samples = 200
	return c
}

// BenchConfig is the calibration used by the root benchmark suite: large
// enough that every experiment exercises its full code path and the
// relative model ordering is visible, small enough that the whole suite
// (environment build plus every table and figure) runs in minutes. The
// headline reproduction numbers come from `cmd/repro -scale small`
// (SmallConfig); see EXPERIMENTS.md.
func BenchConfig() Config {
	c := SmallConfig()
	c.DBTitles = 3000
	c.TrainPairs = 5000
	c.CRN.Epochs = 16
	c.CRN.Patience = 6
	c.MSCN.Epochs = 16
	c.MSCN.Patience = 6
	c.MSCN1000Samples = 64
	c.CntTest1Size = 600
	c.CntTest2Size = 600
	c.CrdTest1Size = 240
	c.CrdTest2Size = 240
	c.ScaleSize = 250
	return c
}

// TinyConfig is for unit tests of the harness itself.
func TinyConfig() Config {
	c := SmallConfig()
	c.DBTitles = 300
	c.TrainPairs = 400
	c.CRN.Hidden = 16
	c.CRN.Epochs = 4
	c.CRN.Patience = 2
	c.MSCN.Hidden = 16
	c.MSCN.Epochs = 4
	c.MSCN.Patience = 2
	c.MSCN1000Samples = 32
	c.PoolSize = 60
	c.CntTest1Size = 60
	c.CntTest2Size = 60
	c.CrdTest1Size = 30
	c.CrdTest2Size = 30
	c.ScaleSize = 30
	return c
}

// Env is a fully built experimental environment: database, oracle, trained
// models, pool and labeled workloads. Build it once and share across
// experiments; it is read-only afterwards.
type Env struct {
	Cfg    Config
	Schema *schema.Schema
	DB     *db.Database
	Exec   *exec.Executor
	Enc    *feature.Encoder

	PG       *pg.Estimator
	CRN      *crn.Model
	CRNStats []crn.EpochStats
	CRNRates *crn.Rates
	MSCN     *mscn.Estimator
	MSCN1000 *mscn.Estimator

	Pool *pool.Pool

	TrainPairs []workload.LabeledPair // the CRN training set (for sweeps)
	ValPairs   []workload.LabeledPair

	CntTest1 []workload.LabeledPair
	CntTest2 []workload.LabeledPair
	CrdTest1 []workload.LabeledQuery
	CrdTest2 []workload.LabeledQuery
	ScaleWL  []workload.LabeledQuery

	BuildTime time.Duration
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Logf is a printf-style progress sink; nil discards.
type Logf func(format string, args ...any)

func (l Logf) logf(format string, args ...any) {
	if l != nil {
		l(format, args...)
	}
}

// Build constructs the whole environment: synthesize the database, generate
// and label all workloads, train CRN, MSCN and MSCN1000, and fill the
// queries pool.
func Build(cfg Config, log Logf) (*Env, error) {
	start := time.Now()
	s := schema.IMDB()

	log.logf("generating database (%d titles)...", cfg.DBTitles)
	dgCfg := datagen.DefaultConfig()
	dgCfg.Seed = cfg.Seed
	dgCfg.Titles = cfg.DBTitles
	d, err := datagen.Generate(dgCfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: datagen: %w", err)
	}
	ex, err := exec.New(d)
	if err != nil {
		return nil, err
	}
	enc, err := feature.NewEncoder(s, d)
	if err != nil {
		return nil, err
	}
	env := &Env{Cfg: cfg, Schema: s, DB: d, Exec: ex, Enc: enc}

	log.logf("profiling database (PostgreSQL-style ANALYZE)...")
	pgCfg := pg.DefaultConfig()
	pgCfg.HistogramBins = cfg.PGBins
	pgCfg.MCVEntries = cfg.PGMCVs
	if pgCfg.HistogramBins <= 0 {
		// Hold the paper's bucket density (100 buckets per 2.5M titles).
		pgCfg.HistogramBins = maxInt(8, cfg.DBTitles/400)
	}
	if pgCfg.MCVEntries <= 0 {
		pgCfg.MCVEntries = maxInt(5, pgCfg.HistogramBins/2)
	}
	env.PG, err = pg.Analyze(d, pgCfg)
	if err != nil {
		return nil, err
	}

	// Training pairs: 0-2 joins, labeled with true containment rates.
	log.logf("generating and labeling %d training pairs...", cfg.TrainPairs)
	gen := workload.NewGenerator(s, d, cfg.Seed+100)
	pairs, err := gen.TrainingPairs(cfg.TrainPairs)
	if err != nil {
		return nil, err
	}
	labeled, err := workload.LabelPairs(ex, pairs, cfg.Workers)
	if err != nil {
		return nil, err
	}
	rand.New(rand.NewSource(cfg.Seed+101)).Shuffle(len(labeled), func(i, j int) {
		labeled[i], labeled[j] = labeled[j], labeled[i]
	})
	env.TrainPairs, env.ValPairs = workload.SplitPairs(labeled, 0.8)

	// CRN.
	log.logf("training CRN (H=%d, up to %d epochs)...", cfg.CRN.Hidden, cfg.CRN.Epochs)
	env.CRN, env.CRNStats, err = TrainCRN(env, cfg.CRN, env.TrainPairs, env.ValPairs, log)
	if err != nil {
		return nil, err
	}
	env.CRNRates = crn.NewRates(env.CRN, enc)

	// MSCN, trained on the same information (§4.1.2): for every pair,
	// Q1∩Q2 and Q1 with their actual cardinalities, deduplicated.
	log.logf("training MSCN (H=%d)...", cfg.MSCN.Hidden)
	env.MSCN, err = trainMSCNFromPairs(env, cfg.MSCN, 0, log)
	if err != nil {
		return nil, err
	}

	// MSCN1000: the sampling variant, trained on queries from the scale
	// generator (§6.6 trains it with the scale workload's generator to
	// make the comparison harder for CRN).
	log.logf("training MSCN1000 (%d samples/table)...", cfg.MSCN1000Samples)
	env.MSCN1000, err = trainMSCN1000(env, log)
	if err != nil {
		return nil, err
	}

	// Queries pool (§6.2): PoolSize queries equally distributed over all
	// FROM clauses, labeled with actual cardinalities; no overlap with the
	// test workloads (different seed).
	log.logf("building queries pool (%d queries)...", cfg.PoolSize)
	poolGen := workload.NewGenerator(s, d, cfg.Seed+200)
	poolQueries, err := poolGen.NonEmptyPoolQueries(ex, cfg.PoolSize)
	if err != nil {
		return nil, err
	}
	poolLabeled, err := workload.LabelQueries(ex, poolQueries, cfg.Workers)
	if err != nil {
		return nil, err
	}
	env.Pool = pool.New()
	for _, lq := range poolLabeled {
		env.Pool.Add(lq.Q, lq.Card)
	}

	// Test workloads (different seeds than training, §4.2/§6.1).
	log.logf("generating test workloads...")
	tGen := workload.NewGenerator(s, d, cfg.Seed+300)
	cnt1, err := tGen.PairsWithJoinDistribution(workload.CntTest1Dist(cfg.CntTest1Size))
	if err != nil {
		return nil, err
	}
	if env.CntTest1, err = workload.LabelPairs(ex, cnt1, cfg.Workers); err != nil {
		return nil, err
	}
	cnt2, err := tGen.PairsWithJoinDistribution(workload.CntTest2Dist(cfg.CntTest2Size))
	if err != nil {
		return nil, err
	}
	if env.CntTest2, err = workload.LabelPairs(ex, cnt2, cfg.Workers); err != nil {
		return nil, err
	}
	// Cardinality workloads keep only non-empty queries (the MSCN
	// generator convention the paper's crd/scale workloads inherit).
	crd1, err := tGen.NonEmptyQueriesWithJoinDistribution(ex, workload.CrdTest1Dist(cfg.CrdTest1Size))
	if err != nil {
		return nil, err
	}
	if env.CrdTest1, err = workload.LabelQueries(ex, crd1, cfg.Workers); err != nil {
		return nil, err
	}
	crd2, err := tGen.NonEmptyQueriesWithJoinDistribution(ex, workload.CrdTest2Dist(cfg.CrdTest2Size))
	if err != nil {
		return nil, err
	}
	if env.CrdTest2, err = workload.LabelQueries(ex, crd2, cfg.Workers); err != nil {
		return nil, err
	}
	sGen := workload.NewScaleGenerator(s, d, cfg.Seed+400)
	scaleQs, err := sGen.NonEmptyQueriesWithJoinDistribution(ex, workload.ScaleDist(cfg.ScaleSize))
	if err != nil {
		return nil, err
	}
	if env.ScaleWL, err = workload.LabelQueries(ex, scaleQs, cfg.Workers); err != nil {
		return nil, err
	}

	env.BuildTime = time.Since(start)
	log.logf("environment ready in %v", env.BuildTime.Round(time.Second))
	return env, nil
}

// TrainCRN encodes labeled pairs and trains a CRN with the given config;
// exposed separately for the hyperparameter sweep (Figure 3).
func TrainCRN(env *Env, cfg crn.Config, train, val []workload.LabeledPair, log Logf) (*crn.Model, []crn.EpochStats, error) {
	encodePairs := func(in []workload.LabeledPair) ([]crn.Sample, error) {
		out := make([]crn.Sample, len(in))
		for i, lp := range in {
			v1, err := env.Enc.EncodeQuery(lp.Q1)
			if err != nil {
				return nil, err
			}
			v2, err := env.Enc.EncodeQuery(lp.Q2)
			if err != nil {
				return nil, err
			}
			out[i] = crn.Sample{V1: v1, V2: v2, Rate: lp.Rate}
		}
		return out, nil
	}
	trainS, err := encodePairs(train)
	if err != nil {
		return nil, nil, err
	}
	valS, err := encodePairs(val)
	if err != nil {
		return nil, nil, err
	}
	m := crn.NewModel(cfg, env.Enc.Dim())
	stats, err := m.Train(trainS, valS, func(st crn.EpochStats) {
		log.logf("  crn epoch %d: train loss %.3f, val q-error %.3f (%v)",
			st.Epoch, st.TrainLoss, st.ValQError, st.Duration.Round(time.Millisecond))
	})
	if err != nil {
		return nil, nil, err
	}
	return m, stats, nil
}

// trainMSCNFromPairs builds the MSCN training set from the CRN training
// pairs per §4.1.2 and trains an MSCN with numSamples bitmap width.
func trainMSCNFromPairs(env *Env, cfg mscn.Config, numSamples int, log Logf) (*mscn.Estimator, error) {
	f, err := mscn.NewFeaturizer(env.Schema, env.DB, numSamples, env.Cfg.Seed+500)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var train, val []mscn.Sample
	// For each CRN pair (Q1, Q2), MSCN trains on Q1∩Q2 and Q1 with their
	// actual cardinalities, unique queries only (§4.1.2).
	build := func(pairs []workload.LabeledPair, dst *[]mscn.Sample) error {
		for _, lp := range pairs {
			qi, err := lp.Q1.Intersect(lp.Q2)
			if err != nil {
				return err
			}
			for _, q := range []workload.LabeledQuery{{Q: lp.Q1}, {Q: qi}} {
				key := q.Q.Key()
				if seen[key] {
					continue
				}
				seen[key] = true
				cardTrue, err := env.Exec.Cardinality(q.Q)
				if err != nil {
					return err
				}
				sm, err := f.EncodeSample(q.Q, float64(cardTrue))
				if err != nil {
					return err
				}
				*dst = append(*dst, sm)
			}
		}
		return nil
	}
	if err := build(env.TrainPairs, &train); err != nil {
		return nil, err
	}
	if err := build(env.ValPairs, &val); err != nil {
		return nil, err
	}
	dimT, dimJ, dimP := f.Dims()
	m := mscn.NewModel(cfg, dimT, dimJ, dimP)
	if _, err := m.Train(train, val, func(st mscn.EpochStats) {
		log.logf("  mscn epoch %d: train loss %.3f, val q-error %.3f (%v)",
			st.Epoch, st.TrainLoss, st.ValQError, st.Duration.Round(time.Millisecond))
	}); err != nil {
		return nil, err
	}
	return &mscn.Estimator{F: f, M: m}, nil
}

// trainMSCN1000 trains the sampling MSCN variant on queries from the scale
// generator (§6.6).
func trainMSCN1000(env *Env, log Logf) (*mscn.Estimator, error) {
	cfg := env.Cfg.MSCN
	f, err := mscn.NewFeaturizer(env.Schema, env.DB, env.Cfg.MSCN1000Samples, env.Cfg.Seed+600)
	if err != nil {
		return nil, err
	}
	gen := workload.NewScaleGenerator(env.Schema, env.DB, env.Cfg.Seed+601)
	n := len(env.TrainPairs) + len(env.ValPairs)
	if n == 0 {
		return nil, fmt.Errorf("experiments: no training budget for MSCN1000")
	}
	dist := workload.ScaleDist(n)
	// The scale workload has no 5-join queries; neither does this set.
	// Non-empty only, like every MSCN-generator workload.
	queries, err := gen.NonEmptyQueriesWithJoinDistribution(env.Exec, dist)
	if err != nil {
		return nil, err
	}
	labeled, err := workload.LabelQueries(env.Exec, queries, env.Cfg.Workers)
	if err != nil {
		return nil, err
	}
	var train, val []mscn.Sample
	for i, lq := range labeled {
		sm, err := f.EncodeSample(lq.Q, float64(lq.Card))
		if err != nil {
			return nil, err
		}
		if i%5 == 4 {
			val = append(val, sm)
		} else {
			train = append(train, sm)
		}
	}
	dimT, dimJ, dimP := f.Dims()
	m := mscn.NewModel(cfg, dimT, dimJ, dimP)
	if _, err := m.Train(train, val, func(st mscn.EpochStats) {
		log.logf("  mscn1000 epoch %d: train loss %.3f, val q-error %.3f (%v)",
			st.Epoch, st.TrainLoss, st.ValQError, st.Duration.Round(time.Millisecond))
	}); err != nil {
		return nil, err
	}
	return &mscn.Estimator{F: f, M: m}, nil
}

// Cnt2CrdCRN returns the paper's headline estimator Cnt2Crd(CRN) over the
// environment's pool, with the PostgreSQL model as the no-match fallback
// (§5.2 suggests falling back to a basic model; the pool's empty-predicate
// queries make this path all but unreachable).
func (env *Env) Cnt2CrdCRN() *card.Estimator {
	est := card.New(env.CRNRates, env.Pool)
	est.Fallback = env.PG
	est.Workers = env.Cfg.Workers
	return est
}

// ImprovedPG returns Improved PostgreSQL = Cnt2Crd(Crd2Cnt(PostgreSQL)).
func (env *Env) ImprovedPG() *card.Estimator {
	est := card.Improved(env.PG, env.Pool)
	est.Fallback = env.PG
	est.Workers = env.Cfg.Workers
	return est
}

// ImprovedMSCN returns Improved MSCN = Cnt2Crd(Crd2Cnt(MSCN)).
func (env *Env) ImprovedMSCN() *card.Estimator {
	est := card.Improved(env.MSCN, env.Pool)
	est.Fallback = env.PG
	est.Workers = env.Cfg.Workers
	return est
}

// Crd2CntPG returns Crd2Cnt(PostgreSQL), the containment baseline of §4.1.3.
func (env *Env) Crd2CntPG() contain.RateEstimator {
	return contain.Crd2Cnt{M: env.PG, Name: "Crd2Cnt(PostgreSQL)"}
}

// Crd2CntMSCN returns Crd2Cnt(MSCN), the containment baseline of §4.1.2.
func (env *Env) Crd2CntMSCN() contain.RateEstimator {
	return contain.Crd2Cnt{M: env.MSCN, Name: "Crd2Cnt(MSCN)"}
}
