package experiments

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"crn/internal/contain"
	"crn/internal/metrics"
	"crn/internal/query"
	"crn/internal/workload"
)

// Result is one regenerated paper artifact.
type Result struct {
	ID      string // e.g. "table3", "fig5"
	Caption string
	Table   metrics.Table
	// Plot carries an ASCII rendering for figure experiments (box plots on
	// a log q-error axis); empty for plain tables.
	Plot string
}

// errCache memoizes per-(model, workload) q-error vectors so that table and
// figure runners over the same data do not recompute model predictions.
type errCache struct {
	mu sync.Mutex
	m  map[string][]float64
}

var cache = &errCache{m: make(map[string][]float64)}

func (c *errCache) get(key string, compute func() ([]float64, error)) ([]float64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if v, ok := c.m[key]; ok {
		return v, nil
	}
	v, err := compute()
	if err != nil {
		return nil, err
	}
	c.m[key] = v
	return v, nil
}

// ResetCache clears the memoized q-errors (tests and sweeps that rebuild
// the environment must call this).
func ResetCache() {
	cache.mu.Lock()
	defer cache.mu.Unlock()
	cache.m = make(map[string][]float64)
}

// RateErrors evaluates a containment-rate estimator over labeled pairs and
// returns per-pair q-errors.
func RateErrors(rates contain.RateEstimator, pairs []workload.LabeledPair) ([]float64, error) {
	out := make([]float64, len(pairs))
	if batch, ok := rates.(contain.BatchRateEstimator); ok {
		const chunk = 256
		for lo := 0; lo < len(pairs); lo += chunk {
			hi := lo + chunk
			if hi > len(pairs) {
				hi = len(pairs)
			}
			qp := make([][2]query.Query, hi-lo)
			for i := lo; i < hi; i++ {
				qp[i-lo] = [2]query.Query{pairs[i].Q1, pairs[i].Q2}
			}
			rs, err := batch.EstimateRates(qp)
			if err != nil {
				return nil, err
			}
			for i := lo; i < hi; i++ {
				out[i] = metrics.RateQError(pairs[i].Rate, rs[i-lo])
			}
		}
		return out, nil
	}
	for i, p := range pairs {
		r, err := rates.EstimateRate(p.Q1, p.Q2)
		if err != nil {
			return nil, err
		}
		out[i] = metrics.RateQError(p.Rate, r)
	}
	return out, nil
}

// CardErrors evaluates a cardinality estimator over labeled queries and
// returns per-query q-errors.
func CardErrors(est contain.CardEstimator, queries []workload.LabeledQuery) ([]float64, error) {
	out := make([]float64, len(queries))
	for i, lq := range queries {
		c, err := est.EstimateCard(lq.Q)
		if err != nil {
			return nil, err
		}
		out[i] = metrics.CardQError(float64(lq.Card), c)
	}
	return out, nil
}

// rateModel / cardModel bundle a display name with an estimator.
type rateModel struct {
	name  string
	rates contain.RateEstimator
}

type cardModel struct {
	name string
	est  contain.CardEstimator
}

func (env *Env) containmentModels() []rateModel {
	return []rateModel{
		{"Crd2Cnt(PostgreSQL)", env.Crd2CntPG()},
		{"Crd2Cnt(MSCN)", env.Crd2CntMSCN()},
		{"CRN", env.CRNRates},
	}
}

func (env *Env) cardinalityModels() []cardModel {
	return []cardModel{
		{"PostgreSQL", env.PG},
		{"MSCN", env.MSCN},
		{"Cnt2Crd(CRN)", env.Cnt2CrdCRN()},
	}
}

func (env *Env) allCardinalityModels() []cardModel {
	return []cardModel{
		{"PostgreSQL", env.PG},
		{"MSCN", env.MSCN},
		{"MSCN1000", env.MSCN1000},
		{"Improved PostgreSQL", env.ImprovedPG()},
		{"Improved MSCN", env.ImprovedMSCN()},
		{"Cnt2Crd(CRN)", env.Cnt2CrdCRN()},
	}
}

func (env *Env) rateErrs(model rateModel, workloadName string, pairs []workload.LabeledPair) ([]float64, error) {
	key := fmt.Sprintf("rate|%p|%s|%s", env, model.name, workloadName)
	return cache.get(key, func() ([]float64, error) { return RateErrors(model.rates, pairs) })
}

func (env *Env) cardErrs(model cardModel, workloadName string, queries []workload.LabeledQuery) ([]float64, error) {
	key := fmt.Sprintf("card|%p|%s|%s", env, model.name, workloadName)
	return cache.get(key, func() ([]float64, error) { return CardErrors(model.est, queries) })
}

// --- Table 2 / Table 5: workload join distributions ----------------------

// Table2 reproduces the join distribution of the containment workloads.
func Table2(env *Env) Result {
	t := metrics.Table{
		Title:  "Table 2: Distribution of joins (containment workloads)",
		Header: []string{"number of joins", "0", "1", "2", "3", "4", "5", "overall"},
	}
	row := func(name string, pairs []workload.LabeledPair) {
		var qs []query.Query
		for _, p := range pairs {
			qs = append(qs, p.Q1)
		}
		t.AddRow(distRow(name, qs)...)
	}
	row("cnt_test1", env.CntTest1)
	row("cnt_test2", env.CntTest2)
	return Result{ID: "table2", Caption: "Distribution of joins in cnt_test1/cnt_test2", Table: t}
}

// Table5 reproduces the join distribution of the cardinality workloads.
func Table5(env *Env) Result {
	t := metrics.Table{
		Title:  "Table 5: Distribution of joins (cardinality workloads)",
		Header: []string{"number of joins", "0", "1", "2", "3", "4", "5", "overall"},
	}
	for _, w := range []struct {
		name string
		ql   []workload.LabeledQuery
	}{{"crd_test1", env.CrdTest1}, {"crd_test2", env.CrdTest2}, {"scale", env.ScaleWL}} {
		var qs []query.Query
		for _, lq := range w.ql {
			qs = append(qs, lq.Q)
		}
		t.AddRow(distRow(w.name, qs)...)
	}
	return Result{ID: "table5", Caption: "Distribution of joins in crd_test1/crd_test2/scale", Table: t}
}

func distRow(name string, qs []query.Query) []string {
	hist := workload.JoinHistogram(qs)
	row := []string{name}
	total := 0
	for j := 0; j <= 5; j++ {
		row = append(row, fmt.Sprintf("%d", hist[j]))
		total += hist[j]
	}
	return append(row, fmt.Sprintf("%d", total))
}

// --- Figure 3: hidden-size sweep -----------------------------------------

// Figure3 retrains the CRN at several hidden-layer sizes and reports the
// best validation mean q-error of each, reproducing the hyperparameter
// search of §3.4.
func Figure3(env *Env, hiddens []int, log Logf) (Result, error) {
	t := metrics.Table{
		Title:  "Figure 3: validation mean q-error vs hidden layer size",
		Header: []string{"hidden size", "val mean q-error", "epochs", "params"},
	}
	for _, h := range hiddens {
		cfg := env.Cfg.CRN
		cfg.Hidden = h
		log.logf("figure3: training CRN with H=%d...", h)
		m, stats, err := TrainCRN(env, cfg, env.TrainPairs, env.ValPairs, nil)
		if err != nil {
			return Result{}, err
		}
		best := stats[0].ValQError
		for _, st := range stats {
			if st.ValQError < best {
				best = st.ValQError
			}
		}
		t.AddRow(fmt.Sprintf("%d", h), metrics.FormatQ(best),
			fmt.Sprintf("%d", len(stats)), fmt.Sprintf("%d", m.NumParams()))
	}
	return Result{ID: "fig3", Caption: "Hidden layer size sweep (§3.4)", Table: t}, nil
}

// --- Figure 4: convergence ------------------------------------------------

// Figure4 reports the validation mean q-error per training epoch of the
// environment's CRN (§3.5.1).
func Figure4(env *Env) Result {
	t := metrics.Table{
		Title:  "Figure 4: convergence of the validation mean q-error",
		Header: []string{"epoch", "train loss", "val mean q-error", "epoch time"},
	}
	for _, st := range env.CRNStats {
		t.AddRow(fmt.Sprintf("%d", st.Epoch), fmt.Sprintf("%.3f", st.TrainLoss),
			metrics.FormatQ(st.ValQError), st.Duration.Round(time.Millisecond).String())
	}
	return Result{ID: "fig4", Caption: "CRN training convergence (§3.5.1)", Table: t}
}

// --- Tables 3-4 / Figures 5-6: containment estimation ---------------------

func (env *Env) containmentTable(id, title, wname string, pairs []workload.LabeledPair) (Result, error) {
	t := metrics.Table{Title: title, Header: metrics.SummaryHeader("model")}
	for _, m := range env.containmentModels() {
		errs, err := env.rateErrs(m, wname, pairs)
		if err != nil {
			return Result{}, err
		}
		t.AddRow(metrics.SummaryRow(m.name, metrics.Summarize(errs))...)
	}
	return Result{ID: id, Caption: title, Table: t}, nil
}

func (env *Env) containmentBoxes(id, title, wname string, pairs []workload.LabeledPair) (Result, error) {
	t := metrics.Table{Title: title, Header: []string{"model", "p5", "p25", "p50", "p75", "p95"}}
	var names []string
	var boxes []metrics.Box
	for _, m := range env.containmentModels() {
		errs, err := env.rateErrs(m, wname, pairs)
		if err != nil {
			return Result{}, err
		}
		b := metrics.BoxStats(errs)
		t.AddRow(m.name, metrics.FormatQ(b.P5), metrics.FormatQ(b.P25),
			metrics.FormatQ(b.P50), metrics.FormatQ(b.P75), metrics.FormatQ(b.P95))
		names = append(names, m.name)
		boxes = append(boxes, b)
	}
	plot := metrics.RenderBoxes(title+" (log q-error axis)", names, boxes, 64)
	return Result{ID: id, Caption: title, Table: t, Plot: plot}, nil
}

// Table3 reproduces the containment-rate estimation errors on cnt_test1.
func Table3(env *Env) (Result, error) {
	return env.containmentTable("table3", "Table 3: Estimation errors on the cnt_test1 workload", "cnt_test1", env.CntTest1)
}

// Figure5 reproduces the box statistics behind Figure 5 (cnt_test1).
func Figure5(env *Env) (Result, error) {
	return env.containmentBoxes("fig5", "Figure 5: box statistics on the cnt_test1 workload", "cnt_test1", env.CntTest1)
}

// Table4 reproduces the containment generalization errors on cnt_test2.
func Table4(env *Env) (Result, error) {
	return env.containmentTable("table4", "Table 4: Estimation errors on the cnt_test2 workload", "cnt_test2", env.CntTest2)
}

// Figure6 reproduces the box statistics behind Figure 6 (cnt_test2).
func Figure6(env *Env) (Result, error) {
	return env.containmentBoxes("fig6", "Figure 6: box statistics on the cnt_test2 workload", "cnt_test2", env.CntTest2)
}

// --- Tables 6-8 / Figures 9-10: cardinality estimation --------------------

func (env *Env) cardinalityTable(id, title, wname string, models []cardModel, queries []workload.LabeledQuery) (Result, error) {
	t := metrics.Table{Title: title, Header: metrics.SummaryHeader("model")}
	for _, m := range models {
		errs, err := env.cardErrs(m, wname, queries)
		if err != nil {
			return Result{}, err
		}
		t.AddRow(metrics.SummaryRow(m.name, metrics.Summarize(errs))...)
	}
	return Result{ID: id, Caption: title, Table: t}, nil
}

func (env *Env) cardinalityBoxes(id, title, wname string, models []cardModel, queries []workload.LabeledQuery) (Result, error) {
	t := metrics.Table{Title: title, Header: []string{"model", "p5", "p25", "p50", "p75", "p95"}}
	var names []string
	var boxes []metrics.Box
	for _, m := range models {
		errs, err := env.cardErrs(m, wname, queries)
		if err != nil {
			return Result{}, err
		}
		b := metrics.BoxStats(errs)
		t.AddRow(m.name, metrics.FormatQ(b.P5), metrics.FormatQ(b.P25),
			metrics.FormatQ(b.P50), metrics.FormatQ(b.P75), metrics.FormatQ(b.P95))
		names = append(names, m.name)
		boxes = append(boxes, b)
	}
	plot := metrics.RenderBoxes(title+" (log q-error axis)", names, boxes, 64)
	return Result{ID: id, Caption: title, Table: t, Plot: plot}, nil
}

// Table6 reproduces the cardinality errors on crd_test1.
func Table6(env *Env) (Result, error) {
	return env.cardinalityTable("table6", "Table 6: Estimation errors on the crd_test1 workload",
		"crd_test1", env.cardinalityModels(), env.CrdTest1)
}

// Figure9 reproduces the box statistics behind Figure 9 (crd_test1).
func Figure9(env *Env) (Result, error) {
	return env.cardinalityBoxes("fig9", "Figure 9: box statistics on the crd_test1 workload",
		"crd_test1", env.cardinalityModels(), env.CrdTest1)
}

// Table7 reproduces the cardinality generalization errors on crd_test2.
func Table7(env *Env) (Result, error) {
	return env.cardinalityTable("table7", "Table 7: Estimation errors on the crd_test2 workload",
		"crd_test2", env.cardinalityModels(), env.CrdTest2)
}

// Figure10 reproduces the box statistics behind Figure 10 (crd_test2).
func Figure10(env *Env) (Result, error) {
	return env.cardinalityBoxes("fig10", "Figure 10: box statistics on the crd_test2 workload",
		"crd_test2", env.cardinalityModels(), env.CrdTest2)
}

// Table8 reproduces the crd_test2 errors restricted to 3-5 join queries.
func Table8(env *Env) (Result, error) {
	var high []workload.LabeledQuery
	for _, lq := range env.CrdTest2 {
		if lq.Q.NumJoins() >= 3 {
			high = append(high, lq)
		}
	}
	return env.cardinalityTable("table8",
		"Table 8: Estimation errors on crd_test2, queries with 3-5 joins only",
		"crd_test2_high", env.cardinalityModels(), high)
}

// --- Table 9 / Figure 11: per-join breakdown -------------------------------

// Table9 reproduces the per-join-count mean q-errors on crd_test2.
func Table9(env *Env) (Result, error) {
	return env.perJoinTable("table9", "Table 9: Q-error means for each number of joins (crd_test2)", metrics.Mean)
}

// Figure11 reproduces the per-join-count median q-errors (Figure 11's
// series).
func Figure11(env *Env) (Result, error) {
	return env.perJoinTable("fig11", "Figure 11: Q-error medians for each number of joins (crd_test2)", metrics.Median)
}

func (env *Env) perJoinTable(id, title string, agg func([]float64) float64) (Result, error) {
	t := metrics.Table{
		Title:  title,
		Header: []string{"number of joins", "0", "1", "2", "3", "4", "5"},
	}
	for _, m := range env.cardinalityModels() {
		errs, err := env.cardErrs(m, "crd_test2", env.CrdTest2)
		if err != nil {
			return Result{}, err
		}
		byJoin := make(map[int][]float64)
		for i, lq := range env.CrdTest2 {
			byJoin[lq.Q.NumJoins()] = append(byJoin[lq.Q.NumJoins()], errs[i])
		}
		row := []string{m.name}
		for j := 0; j <= 5; j++ {
			if len(byJoin[j]) == 0 {
				row = append(row, "-")
				continue
			}
			row = append(row, metrics.FormatQ(agg(byJoin[j])))
		}
		t.AddRow(row...)
	}
	return Result{ID: id, Caption: title, Table: t}, nil
}

// --- Table 10 / Figures 12-13: scale workload and all models --------------

// Table10 reproduces the generalization to the scale workload, including
// the MSCN1000 comparison of §6.6.
func Table10(env *Env) (Result, error) {
	models := append(env.cardinalityModels(), cardModel{"MSCN1000", env.MSCN1000})
	return env.cardinalityTable("table10", "Table 10: Estimation errors on the scale workload",
		"scale", models, env.ScaleWL)
}

// Figure12 reproduces the box statistics behind Figure 12 (scale workload).
func Figure12(env *Env) (Result, error) {
	models := append(env.cardinalityModels(), cardModel{"MSCN1000", env.MSCN1000})
	return env.cardinalityBoxes("fig12", "Figure 12: box statistics on the scale workload",
		"scale", models, env.ScaleWL)
}

// Figure13 reproduces the all-models comparison on crd_test2.
func Figure13(env *Env) (Result, error) {
	return env.cardinalityBoxes("fig13", "Figure 13: box statistics on crd_test2, all models",
		"crd_test2", env.allCardinalityModels(), env.CrdTest2)
}

// --- Tables 11-13: improving existing models ------------------------------

// Table11 compares PostgreSQL against Improved PostgreSQL on crd_test2.
func Table11(env *Env) (Result, error) {
	models := []cardModel{
		{"PostgreSQL", env.PG},
		{"Improved PostgreSQL", env.ImprovedPG()},
	}
	return env.cardinalityTable("table11", "Table 11: PostgreSQL vs Improved PostgreSQL (crd_test2)",
		"crd_test2", models, env.CrdTest2)
}

// Table12 compares MSCN against Improved MSCN on crd_test2.
func Table12(env *Env) (Result, error) {
	models := []cardModel{
		{"MSCN", env.MSCN},
		{"Improved MSCN", env.ImprovedMSCN()},
	}
	return env.cardinalityTable("table12", "Table 12: MSCN vs Improved MSCN (crd_test2)",
		"crd_test2", models, env.CrdTest2)
}

// Table13 compares the improved models against Cnt2Crd(CRN) on crd_test2.
func Table13(env *Env) (Result, error) {
	models := []cardModel{
		{"Improved PostgreSQL", env.ImprovedPG()},
		{"Improved MSCN", env.ImprovedMSCN()},
		{"Cnt2Crd(CRN)", env.Cnt2CrdCRN()},
	}
	return env.cardinalityTable("table13", "Table 13: Improved models vs Cnt2Crd(CRN) (crd_test2)",
		"crd_test2", models, env.CrdTest2)
}

// --- Table 14: pool-size sweep ---------------------------------------------

// Table14 reproduces the queries-pool size sweep: estimation quality and
// prediction time of Cnt2Crd(CRN) as the pool grows (§7.4).
func Table14(env *Env) (Result, error) {
	t := metrics.Table{
		Title:  "Table 14: Cnt2Crd(CRN) on crd_test2 vs queries pool size",
		Header: []string{"QP size", "median", "mean", "prediction time"},
	}
	sizes := poolSweepSizes(env.Pool.Len())
	for _, n := range sizes {
		sub := env.Pool.Subset(n)
		est := env.Cnt2CrdCRN()
		est.Pool = sub
		start := time.Now()
		errs, err := CardErrors(est, env.CrdTest2)
		if err != nil {
			return Result{}, err
		}
		perQuery := time.Since(start) / time.Duration(len(env.CrdTest2))
		t.AddRow(fmt.Sprintf("%d", n), metrics.FormatQ(metrics.Median(errs)),
			metrics.FormatQ(metrics.Mean(errs)), perQuery.Round(10*time.Microsecond).String())
	}
	return Result{ID: "table14", Caption: "Pool-size sweep (§7.4, Table 14)", Table: t}, nil
}

func poolSweepSizes(max int) []int {
	// The paper sweeps 50..300 in steps of 50; scale proportionally.
	var out []int
	for i := 1; i <= 6; i++ {
		n := max * i / 6
		if n > 0 {
			out = append(out, n)
		}
	}
	sort.Ints(out)
	// Deduplicate tiny pools.
	uniq := out[:0]
	for i, n := range out {
		if i == 0 || n != out[i-1] {
			uniq = append(uniq, n)
		}
	}
	return uniq
}

// --- Top-K candidate bound sweep --------------------------------------------

// TopKSweep measures signature-indexed candidate selection against the full
// pool scan of Figure 8: estimation quality and per-query prediction time
// of Cnt2Crd(CRN) on crd_test2 at several candidate bounds K (0 = the
// paper's unbounded scan). The Median final function is robust to
// subsetting, so moderate K is expected to track the full scan's median
// q-error while bounding the per-estimate cost at O(K); the companion
// accuracy gate (TestTopKAccuracyGate) enforces that expectation on a pool
// dense enough for K to bind.
func TopKSweep(env *Env) (Result, error) {
	t := metrics.Table{
		Title:  "Top-K candidate bound: Cnt2Crd(CRN) on crd_test2",
		Header: []string{"K", "median", "mean", "prediction time"},
	}
	for _, k := range []int{4, 16, 64, 0} {
		est := env.Cnt2CrdCRN()
		est.MaxCandidates = k
		start := time.Now()
		errs, err := CardErrors(est, env.CrdTest2)
		if err != nil {
			return Result{}, err
		}
		perQuery := time.Since(start) / time.Duration(maxInt(1, len(env.CrdTest2)))
		label := "full"
		if k > 0 {
			label = fmt.Sprintf("%d", k)
		}
		t.AddRow(label, metrics.FormatQ(metrics.Median(errs)),
			metrics.FormatQ(metrics.Mean(errs)), perQuery.Round(10*time.Microsecond).String())
	}
	return Result{ID: "topk", Caption: "Candidate-bound sweep (signature-indexed Top-K vs full scan)", Table: t}, nil
}

// --- Table 15: prediction times --------------------------------------------

// Table15 reproduces the average single-query prediction time of every
// model (§7.4). Sampled over a bounded prefix of crd_test2 for stable
// timing.
func Table15(env *Env) (Result, error) {
	queries := env.CrdTest2
	if len(queries) > 100 {
		queries = queries[:100]
	}
	t := metrics.Table{
		Title:  "Table 15: Average prediction time of a single query",
		Header: []string{"model", "prediction time"},
	}
	for _, m := range env.allCardinalityModels() {
		start := time.Now()
		for _, lq := range queries {
			if _, err := m.est.EstimateCard(lq.Q); err != nil {
				return Result{}, err
			}
		}
		per := time.Since(start) / time.Duration(len(queries))
		t.AddRow(m.name, per.Round(10*time.Microsecond).String())
	}
	return Result{ID: "table15", Caption: "Prediction time per model (§7.4, Table 15)", Table: t}, nil
}

// --- §3.5: model computational costs ----------------------------------------

// Costs reports the CRN cost profile of §3.5: epochs to converge, epoch
// time, per-pair prediction time, parameter count and serialized size.
func Costs(env *Env) (Result, error) {
	t := metrics.Table{
		Title:  "CRN model computational costs (§3.5)",
		Header: []string{"quantity", "value"},
	}
	var totalEpoch time.Duration
	for _, st := range env.CRNStats {
		totalEpoch += st.Duration
	}
	epochs := len(env.CRNStats)
	if epochs > 0 {
		t.AddRow("training epochs", fmt.Sprintf("%d", epochs))
		t.AddRow("avg epoch time", (totalEpoch / time.Duration(epochs)).Round(time.Millisecond).String())
		t.AddRow("total training time", totalEpoch.Round(time.Millisecond).String())
		best := env.CRNStats[0].ValQError
		for _, st := range env.CRNStats {
			if st.ValQError < best {
				best = st.ValQError
			}
		}
		t.AddRow("best val mean q-error", metrics.FormatQ(best))
	}
	// Prediction time per pair (§3.5.2), averaged over a batch-1 loop.
	pairs := env.ValPairs
	if len(pairs) > 200 {
		pairs = pairs[:200]
	}
	if len(pairs) > 0 {
		start := time.Now()
		for _, lp := range pairs {
			if _, err := env.CRNRates.EstimateRate(lp.Q1, lp.Q2); err != nil {
				return Result{}, err
			}
		}
		t.AddRow("prediction time per pair", (time.Since(start) / time.Duration(len(pairs))).Round(time.Microsecond).String())
	}
	t.AddRow("learned parameters", fmt.Sprintf("%d", env.CRN.NumParams()))
	blob, err := env.CRN.Save()
	if err != nil {
		return Result{}, err
	}
	t.AddRow("serialized size", fmt.Sprintf("%d bytes", len(blob)))
	return Result{ID: "costs", Caption: "CRN computational costs (§3.5)", Table: t}, nil
}

// --- Orchestration -----------------------------------------------------------

// ExperimentIDs lists every runnable experiment in paper order, followed by
// this repository's ablations.
func ExperimentIDs() []string {
	return []string{
		"table2", "fig3", "fig4", "table3", "fig5", "table4", "fig6",
		"table5", "table6", "fig9", "table7", "fig10", "table8",
		"table9", "fig11", "table10", "fig12", "fig13",
		"table11", "table12", "table13", "table14", "table15", "topk", "costs",
		"ablation_final", "ablation_eps", "ablation_anchor",
		"ablation_workers", "ablation_oracle", "ablation_loss",
		"planquality", "baselines",
	}
}

// Run executes one experiment by ID.
func Run(env *Env, id string, log Logf) (Result, error) {
	switch id {
	case "table2":
		return Table2(env), nil
	case "fig3":
		return Figure3(env, figure3Hiddens(env.Cfg.CRN.Hidden), log)
	case "fig4":
		return Figure4(env), nil
	case "table3":
		return Table3(env)
	case "fig5":
		return Figure5(env)
	case "table4":
		return Table4(env)
	case "fig6":
		return Figure6(env)
	case "table5":
		return Table5(env), nil
	case "table6":
		return Table6(env)
	case "fig9":
		return Figure9(env)
	case "table7":
		return Table7(env)
	case "fig10":
		return Figure10(env)
	case "table8":
		return Table8(env)
	case "table9":
		return Table9(env)
	case "fig11":
		return Figure11(env)
	case "table10":
		return Table10(env)
	case "fig12":
		return Figure12(env)
	case "fig13":
		return Figure13(env)
	case "table11":
		return Table11(env)
	case "table12":
		return Table12(env)
	case "table13":
		return Table13(env)
	case "table14":
		return Table14(env)
	case "table15":
		return Table15(env)
	case "topk":
		return TopKSweep(env)
	case "costs":
		return Costs(env)
	case "ablation_final":
		return AblationFinalFuncs(env)
	case "ablation_eps":
		return AblationEpsilon(env)
	case "ablation_anchor":
		return AblationPoolAnchor(env)
	case "ablation_workers":
		return AblationWorkers(env)
	case "ablation_oracle":
		return OracleCeiling(env)
	case "ablation_loss":
		return AblationLoss(env, log)
	case "planquality":
		return PlanQuality(env, log)
	case "baselines":
		return Baselines(env)
	}
	return Result{}, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, ExperimentIDs())
}

// figure3Hiddens picks the sweep around the configured width (the paper
// sweeps 64..2048 around its chosen 512).
func figure3Hiddens(h int) []int {
	if h <= 4 {
		return []int{2, 4, 8}
	}
	return []int{h / 4, h / 2, h, h * 2}
}

// RunAll executes every experiment in paper order.
func RunAll(env *Env, log Logf) ([]Result, error) {
	var out []Result
	for _, id := range ExperimentIDs() {
		log.logf("running %s...", id)
		r, err := Run(env, id, log)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", id, err)
		}
		out = append(out, r)
	}
	return out, nil
}
