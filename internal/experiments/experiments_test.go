package experiments

import (
	"strings"
	"sync"
	"testing"

	"crn/internal/metrics"
	"crn/internal/pool"
	"crn/internal/workload"
)

// The tiny environment is expensive enough to share across tests.
var (
	tinyOnce sync.Once
	tinyEnv  *Env
	tinyErr  error
)

func tiny(t *testing.T) *Env {
	t.Helper()
	tinyOnce.Do(func() {
		tinyEnv, tinyErr = Build(TinyConfig(), nil)
	})
	if tinyErr != nil {
		t.Fatal(tinyErr)
	}
	return tinyEnv
}

func TestBuildTinyEnvironment(t *testing.T) {
	env := tiny(t)
	if env.CRN == nil || env.MSCN == nil || env.MSCN1000 == nil || env.PG == nil {
		t.Fatal("models missing")
	}
	if env.Pool.Len() != env.Cfg.PoolSize {
		t.Errorf("pool size = %d, want %d", env.Pool.Len(), env.Cfg.PoolSize)
	}
	if len(env.CntTest1) != env.Cfg.CntTest1Size {
		t.Errorf("cnt_test1 = %d", len(env.CntTest1))
	}
	if len(env.CrdTest2) != env.Cfg.CrdTest2Size {
		t.Errorf("crd_test2 = %d", len(env.CrdTest2))
	}
	if len(env.CRNStats) == 0 {
		t.Error("no CRN training stats")
	}
	// Labels are rates in [0,1].
	for _, lp := range env.CntTest1[:10] {
		if lp.Rate < 0 || lp.Rate > 1 {
			t.Fatalf("rate %v out of range", lp.Rate)
		}
	}
}

func TestAllExperimentsRun(t *testing.T) {
	env := tiny(t)
	for _, id := range ExperimentIDs() {
		if id == "fig3" {
			continue // retrains models; covered separately
		}
		r, err := Run(env, id, nil)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if r.ID != id {
			t.Errorf("%s: result ID %q", id, r.ID)
		}
		if len(r.Table.Rows) == 0 {
			t.Errorf("%s: empty table", id)
		}
		if r.Table.Render() == "" {
			t.Errorf("%s: empty render", id)
		}
	}
}

func TestFigure3Sweep(t *testing.T) {
	env := tiny(t)
	r, err := Figure3(env, []int{4, 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Table.Rows) != 2 {
		t.Fatalf("sweep rows = %d", len(r.Table.Rows))
	}
}

func TestUnknownExperiment(t *testing.T) {
	env := tiny(t)
	if _, err := Run(env, "table99", nil); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestTableRendersModelNames(t *testing.T) {
	env := tiny(t)
	r, err := Table7(env)
	if err != nil {
		t.Fatal(err)
	}
	out := r.Table.Render()
	for _, name := range []string{"PostgreSQL", "MSCN", "Cnt2Crd(CRN)"} {
		if !strings.Contains(out, name) {
			t.Errorf("table7 missing %q:\n%s", name, out)
		}
	}
}

func TestTable2Totals(t *testing.T) {
	env := tiny(t)
	r := Table2(env)
	for _, row := range r.Table.Rows {
		if row[len(row)-1] != "60" { // TinyConfig CntTest sizes
			t.Errorf("row %v total != 60", row)
		}
	}
}

func TestCostsIncludesModelSize(t *testing.T) {
	env := tiny(t)
	r, err := Costs(env)
	if err != nil {
		t.Fatal(err)
	}
	out := r.Table.Render()
	for _, want := range []string{"learned parameters", "serialized size", "prediction time per pair"} {
		if !strings.Contains(out, want) {
			t.Errorf("costs missing %q:\n%s", want, out)
		}
	}
}

func TestPoolSweepSizes(t *testing.T) {
	sizes := poolSweepSizes(300)
	if len(sizes) != 6 || sizes[0] != 50 || sizes[5] != 300 {
		t.Errorf("sizes = %v", sizes)
	}
	small := poolSweepSizes(4)
	for i := 1; i < len(small); i++ {
		if small[i] == small[i-1] {
			t.Errorf("duplicate sizes: %v", small)
		}
	}
}

// TestTopKAccuracyGate is the PR-4 acceptance gate for bounded candidate
// selection: over a pool dense enough that K = 64 actually truncates, the
// median q-error of Cnt2Crd(CRN) with the top-64 signature selection must
// stay within 5% of the full pool scan (the Median final function is robust
// to subsetting).
func TestTopKAccuracyGate(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a dense pool with thousands of labeled executions")
	}
	env := tiny(t)

	// A dense pool: the same §6.2 construction as the environment's own
	// pool, but sized so FROM clauses carry well over 64 candidates.
	gen := workload.NewGenerator(env.Schema, env.DB, 987)
	qs, err := gen.NonEmptyPoolQueries(env.Exec, 3200)
	if err != nil {
		t.Fatal(err)
	}
	labeled, err := workload.LabelQueries(env.Exec, qs, env.Cfg.Workers)
	if err != nil {
		t.Fatal(err)
	}
	dense := pool.New()
	for _, lq := range labeled {
		dense.Add(lq.Q, lq.Card)
	}

	full := env.Cnt2CrdCRN()
	full.Pool = dense
	topK := env.Cnt2CrdCRN()
	topK.Pool = dense
	topK.MaxCandidates = 64

	fullErrs, err := CardErrors(full, env.CrdTest2)
	if err != nil {
		t.Fatal(err)
	}
	topKErrs, err := CardErrors(topK, env.CrdTest2)
	if err != nil {
		t.Fatal(err)
	}
	if st := dense.Stats(); st.TruncatedCalls == 0 {
		t.Fatalf("K=64 never truncated — the gate pool is not dense enough: %+v", st)
	}

	medFull := metrics.Median(fullErrs)
	medTopK := metrics.Median(topKErrs)
	t.Logf("median q-error: full scan %.4f, top-64 %.4f (pool %d entries, %d FROM keys)",
		medFull, medTopK, dense.Len(), len(dense.FROMKeys()))
	if medTopK > medFull*1.05 {
		t.Errorf("top-64 median q-error %.4f exceeds full-scan %.4f by more than 5%%", medTopK, medFull)
	}
}
