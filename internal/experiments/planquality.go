package experiments

import (
	"fmt"

	"crn/internal/contain"
	"crn/internal/metrics"
	"crn/internal/optimizer"
	"crn/internal/workload"
)

// PlanQuality makes the paper's motivation quantitative: it optimizes the
// multi-join crd_test2 queries with each cardinality estimator, then
// evaluates the chosen join orders under the *true* C_out cost. The figure
// of merit is the ratio of a plan's true cost to the optimal plan's true
// cost (1.0 = the estimator picked an optimal join order); the paper's
// argument is that better multi-join estimates yield better plans.
func PlanQuality(env *Env, log Logf) (Result, error) {
	queries := multiJoinQueries(env.CrdTest2, 2, 120)
	if len(queries) == 0 {
		return Result{}, fmt.Errorf("experiments: no multi-join queries for plan quality")
	}
	truth := contain.TruthCard{T: env.Exec}
	oracleOpt := optimizer.New(truth)

	// Optimal true costs per query.
	optimal := make([]float64, len(queries))
	for i, lq := range queries {
		p, err := oracleOpt.Optimize(lq.Q)
		if err != nil {
			return Result{}, err
		}
		optimal[i] = p.EstimatedCost // oracle estimate == true cost
	}

	t := metrics.Table{
		Title:  fmt.Sprintf("Plan quality on crd_test2 (%d queries with 2+ joins): true-cost ratio to optimal plan", len(queries)),
		Header: []string{"estimator", "p50", "p90", "max", "mean", "optimal plans"},
	}
	for _, m := range env.cardinalityModels() {
		log.logf("plan quality: optimizing with %s...", m.name)
		opt := optimizer.New(m.est)
		ratios := make([]float64, 0, len(queries))
		optimalCount := 0
		for i, lq := range queries {
			p, err := opt.Optimize(lq.Q)
			if err != nil {
				return Result{}, err
			}
			trueCost, err := optimizer.Cost(truth, lq.Q, p.Order)
			if err != nil {
				return Result{}, err
			}
			ratio := 1.0
			if optimal[i] > 0 {
				ratio = trueCost / optimal[i]
			}
			if ratio < 1 {
				ratio = 1 // guard tiny float noise
			}
			if ratio < 1.0001 {
				optimalCount++
			}
			ratios = append(ratios, ratio)
		}
		s := metrics.Summarize(ratios)
		t.AddRow(m.name,
			metrics.FormatQ(s.P50), metrics.FormatQ(s.P90), metrics.FormatQ(s.Max),
			metrics.FormatQ(s.Mean),
			fmt.Sprintf("%d/%d", optimalCount, len(queries)))
	}
	return Result{ID: "planquality", Caption: "Join-order quality per estimator (C_out ratio)", Table: t}, nil
}

// multiJoinQueries selects up to max labeled queries with at least minJoins
// joins.
func multiJoinQueries(ql []workload.LabeledQuery, minJoins, max int) []workload.LabeledQuery {
	var out []workload.LabeledQuery
	for _, lq := range ql {
		if lq.Q.NumJoins() >= minJoins {
			out = append(out, lq)
			if len(out) >= max {
				break
			}
		}
	}
	return out
}
