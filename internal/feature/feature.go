// Package feature implements the CRN featurization of §3.2.1: a query is a
// collection of sets (T, J, P) whose elements are encoded as vectors of one
// shared dimension L with the segmentation of the paper's Table 1:
//
//	segment   T-seg   J1-seg  J2-seg  C-seg  O-seg  V-seg
//	size      #T      #C      #C      #C     #O     1
//
// yielding L = #T + 3·#C + #O + 1. Unlike MSCN's featurization, all three
// element kinds share the same vector format "in order to ease learning"
// (§3.2.1); the unused segments of each vector are zero.
package feature

import (
	"fmt"

	"crn/internal/db"
	"crn/internal/query"
	"crn/internal/schema"
)

// Encoder converts queries into CRN feature-vector sets. It is bound to a
// schema (one-hot dimensions) and a database snapshot (min/max statistics
// for value normalization) and is safe for concurrent use.
type Encoder struct {
	s *schema.Schema
	d *db.Database

	numTables  int
	numColumns int
	l          int

	// Segment offsets within a vector.
	tSeg, j1Seg, j2Seg, cSeg, oSeg, vSeg int
}

// NewEncoder builds an encoder over a frozen database.
func NewEncoder(s *schema.Schema, d *db.Database) (*Encoder, error) {
	if !d.Frozen() {
		return nil, fmt.Errorf("feature: database must be frozen")
	}
	e := &Encoder{s: s, d: d, numTables: s.NumTables(), numColumns: s.NumColumns()}
	e.tSeg = 0
	e.j1Seg = e.tSeg + e.numTables
	e.j2Seg = e.j1Seg + e.numColumns
	e.cSeg = e.j2Seg + e.numColumns
	e.oSeg = e.cSeg + e.numColumns
	e.vSeg = e.oSeg + schema.NumOperators
	e.l = e.vSeg + 1
	return e, nil
}

// Dim returns the shared vector dimension L = #T + 3·#C + #O + 1.
func (e *Encoder) Dim() int { return e.l }

// EncodeQuery converts a query into its set of feature vectors V: one vector
// per table in T, per join clause in J, and per column predicate in P.
func (e *Encoder) EncodeQuery(q query.Query) ([][]float64, error) {
	out := make([][]float64, 0, len(q.Tables)+len(q.Joins)+len(q.Preds))
	for _, t := range q.Tables {
		v, err := e.EncodeTable(t)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	for _, j := range q.Joins {
		v, err := e.EncodeJoin(j)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	for _, p := range q.Preds {
		v, err := e.EncodePredicate(p)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// EncodeTable produces the vector of a table element: a one-hot in T-seg.
func (e *Encoder) EncodeTable(name string) ([]float64, error) {
	id, ok := e.s.TableID(name)
	if !ok {
		return nil, fmt.Errorf("feature: unknown table %q", name)
	}
	v := make([]float64, e.l)
	v[e.tSeg+id] = 1
	return v, nil
}

// EncodeJoin produces the vector of a join clause: one-hot column ids in
// J1-seg and J2-seg. The join is canonicalized first so featurization is
// independent of how the clause was written.
func (e *Encoder) EncodeJoin(j query.Join) ([]float64, error) {
	c := j.Canonical()
	id1, ok1 := e.s.ColumnID(c.Left)
	id2, ok2 := e.s.ColumnID(c.Right)
	if !ok1 || !ok2 {
		return nil, fmt.Errorf("feature: unknown join column in %v", c)
	}
	v := make([]float64, e.l)
	v[e.j1Seg+id1] = 1
	v[e.j2Seg+id2] = 1
	return v, nil
}

// EncodePredicate produces the vector of a column predicate: one-hot column
// id in C-seg, one-hot operator in O-seg, and the min/max-normalized value
// in V-seg.
func (e *Encoder) EncodePredicate(p query.Predicate) ([]float64, error) {
	cid, ok := e.s.ColumnID(p.Col)
	if !ok {
		return nil, fmt.Errorf("feature: unknown column %v", p.Col)
	}
	oid, ok := e.s.OperatorID(p.Op)
	if !ok {
		return nil, fmt.Errorf("feature: unknown operator %q", p.Op)
	}
	stats, ok := e.d.Stats(p.Col)
	if !ok {
		return nil, fmt.Errorf("feature: no statistics for %v", p.Col)
	}
	v := make([]float64, e.l)
	v[e.cSeg+cid] = 1
	v[e.oSeg+oid] = 1
	v[e.vSeg] = stats.Normalize(p.Val)
	return v, nil
}

// Segments exposes the segment offsets (T, J1, J2, C, O, V) for tests and
// diagnostics.
func (e *Encoder) Segments() (tSeg, j1Seg, j2Seg, cSeg, oSeg, vSeg int) {
	return e.tSeg, e.j1Seg, e.j2Seg, e.cSeg, e.oSeg, e.vSeg
}
