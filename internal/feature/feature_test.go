package feature

import (
	"testing"

	"crn/internal/datagen"
	"crn/internal/db"
	"crn/internal/query"
	"crn/internal/schema"
	"crn/internal/sqlparse"
)

var s = schema.IMDB()

func testDB(t *testing.T) *db.Database {
	t.Helper()
	cfg := datagen.DefaultConfig()
	cfg.Titles = 100
	d, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func newEncoder(t *testing.T) *Encoder {
	t.Helper()
	e, err := NewEncoder(s, testDB(t))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestDimMatchesPaperFormula(t *testing.T) {
	e := newEncoder(t)
	want := s.NumTables() + 3*s.NumColumns() + schema.NumOperators + 1
	if e.Dim() != want {
		t.Errorf("Dim = %d, want %d", e.Dim(), want)
	}
	// With the IMDb schema: 6 + 3*20 + 3 + 1 = 70.
	if e.Dim() != 70 {
		t.Errorf("Dim = %d, want 70 for the IMDb schema", e.Dim())
	}
}

func TestEncodeTableOneHot(t *testing.T) {
	e := newEncoder(t)
	v, err := e.EncodeTable(schema.CastInfo)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != e.Dim() {
		t.Fatalf("vector length %d", len(v))
	}
	nonZero := 0
	for _, x := range v {
		if x != 0 {
			nonZero++
		}
	}
	if nonZero != 1 {
		t.Errorf("table vector should have exactly 1 non-zero, got %d", nonZero)
	}
	tSeg, j1Seg, _, _, _, _ := e.Segments()
	id, _ := s.TableID(schema.CastInfo)
	if v[tSeg+id] != 1 {
		t.Error("one-hot not in T-seg at the table's ordinal")
	}
	for i := j1Seg; i < len(v); i++ {
		if v[i] != 0 {
			t.Errorf("non-T segment position %d is %v", i, v[i])
		}
	}
	if _, err := e.EncodeTable("ghost"); err == nil {
		t.Error("unknown table should fail")
	}
}

func TestEncodeJoinSegments(t *testing.T) {
	e := newEncoder(t)
	j := query.Join{
		Left:  schema.ColumnRef{Table: schema.Title, Column: "id"},
		Right: schema.ColumnRef{Table: schema.CastInfo, Column: "movie_id"},
	}
	v, err := e.EncodeJoin(j)
	if err != nil {
		t.Fatal(err)
	}
	// Same join written in either direction encodes identically.
	rev, err := e.EncodeJoin(query.Join{Left: j.Right, Right: j.Left})
	if err != nil {
		t.Fatal(err)
	}
	for i := range v {
		if v[i] != rev[i] {
			t.Fatalf("join encoding not direction independent at %d", i)
		}
	}
	_, j1Seg, j2Seg, cSeg, _, _ := e.Segments()
	ones := 0
	for i := j1Seg; i < cSeg; i++ {
		if v[i] == 1 {
			ones++
		} else if v[i] != 0 {
			t.Fatalf("unexpected value %v at %d", v[i], i)
		}
	}
	if ones != 2 {
		t.Errorf("join vector should set one bit in each of J1/J2, got %d", ones)
	}
	// One bit in each segment.
	oneIn := func(lo, hi int) int {
		c := 0
		for i := lo; i < hi; i++ {
			if v[i] == 1 {
				c++
			}
		}
		return c
	}
	if oneIn(j1Seg, j2Seg) != 1 || oneIn(j2Seg, cSeg) != 1 {
		t.Error("exactly one bit expected per join segment")
	}
	bad := query.Join{Left: schema.ColumnRef{Table: "x", Column: "y"}, Right: j.Right}
	if _, err := e.EncodeJoin(bad); err == nil {
		t.Error("unknown join column should fail")
	}
}

func TestEncodePredicate(t *testing.T) {
	e := newEncoder(t)
	d := testDB(t)
	col := schema.ColumnRef{Table: schema.Title, Column: "production_year"}
	stats, _ := d.Stats(col)
	p := query.Predicate{Col: col, Op: schema.OpGT, Val: stats.Max}
	v, err := e.EncodePredicate(p)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, cSeg, oSeg, vSeg := e.Segments()
	cid, _ := s.ColumnID(col)
	if v[cSeg+cid] != 1 {
		t.Error("column one-hot missing")
	}
	oid, _ := s.OperatorID(schema.OpGT)
	if v[oSeg+oid] != 1 {
		t.Error("operator one-hot missing")
	}
	if v[vSeg] != 1 {
		t.Errorf("max value should normalize to 1, got %v", v[vSeg])
	}
	p.Val = stats.Min
	v, _ = e.EncodePredicate(p)
	if v[vSeg] != 0 {
		t.Errorf("min value should normalize to 0, got %v", v[vSeg])
	}

	if _, err := e.EncodePredicate(query.Predicate{Col: schema.ColumnRef{Table: "x", Column: "y"}, Op: schema.OpEQ}); err == nil {
		t.Error("unknown column should fail")
	}
	if _, err := e.EncodePredicate(query.Predicate{Col: col, Op: "!=", Val: 0}); err == nil {
		t.Error("unknown operator should fail")
	}
}

func TestEncodeQueryCounts(t *testing.T) {
	e := newEncoder(t)
	q := sqlparse.MustParse(s, `SELECT * FROM title, cast_info, movie_keyword
		WHERE title.id = cast_info.movie_id AND title.id = movie_keyword.movie_id
		AND title.kind_id = 2 AND cast_info.role_id > 3`)
	vecs, err := e.EncodeQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	// 3 tables + 2 joins + 2 predicates.
	if len(vecs) != 7 {
		t.Errorf("EncodeQuery returned %d vectors, want 7", len(vecs))
	}
	for i, v := range vecs {
		if len(v) != e.Dim() {
			t.Errorf("vector %d has length %d", i, len(v))
		}
	}
}

func TestEncodeQueryDeterministic(t *testing.T) {
	e := newEncoder(t)
	q := sqlparse.MustParse(s, "SELECT * FROM title WHERE title.kind_id = 2 AND title.production_year > 1990")
	a, err := e.EncodeQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.EncodeQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("encoding not deterministic at %d,%d", i, j)
			}
		}
	}
}

func TestNewEncoderRequiresFrozenDB(t *testing.T) {
	if _, err := NewEncoder(s, db.NewDatabase(s)); err == nil {
		t.Error("unfrozen database should be rejected")
	}
}
