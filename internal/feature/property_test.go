package feature

import (
	"math/rand"
	"testing"

	"crn/internal/workload"
)

// Featurization invariants over randomly generated queries: every vector
// has dimension L; table vectors have exactly 1 non-zero, join vectors 2,
// predicate vectors 2 one-hots plus a value in [0,1]; and the number of
// vectors equals |T| + |J| + |P|.
func TestEncodingInvariantsOverRandomQueries(t *testing.T) {
	d := testDB(t)
	e, err := NewEncoder(s, d)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(s, d, 5)
	rng := rand.New(rand.NewSource(6))
	tSeg, j1Seg, _, cSeg, oSeg, vSeg := e.Segments()
	for i := 0; i < 200; i++ {
		q, err := gen.InitialQuery(rng.Intn(6))
		if err != nil {
			t.Fatal(err)
		}
		vecs, err := e.EncodeQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		want := len(q.Tables) + len(q.Joins) + len(q.Preds)
		if len(vecs) != want {
			t.Fatalf("%s: %d vectors, want %d", q, len(vecs), want)
		}
		for vi, v := range vecs {
			if len(v) != e.Dim() {
				t.Fatalf("vector %d has dim %d", vi, len(v))
			}
			ones, inVal := 0, 0.0
			for i, x := range v {
				if i == vSeg {
					inVal = x
					continue
				}
				switch x {
				case 0:
				case 1:
					ones++
				default:
					t.Fatalf("non-binary one-hot value %v at %d", x, i)
				}
			}
			if inVal < 0 || inVal > 1 {
				t.Fatalf("V-seg value %v outside [0,1]", inVal)
			}
			switch {
			case vi < len(q.Tables): // table vector
				if ones != 1 {
					t.Fatalf("table vector has %d ones", ones)
				}
			case vi < len(q.Tables)+len(q.Joins): // join vector
				if ones != 2 {
					t.Fatalf("join vector has %d ones", ones)
				}
				// Both bits inside J1/J2 segments.
				for i := tSeg; i < j1Seg; i++ {
					if v[i] != 0 {
						t.Fatal("join vector sets T-seg")
					}
				}
				for i := cSeg; i < len(v); i++ {
					if v[i] != 0 && i < oSeg {
						t.Fatal("join vector sets C-seg")
					}
				}
			default: // predicate vector
				if ones != 2 {
					t.Fatalf("predicate vector has %d ones", ones)
				}
			}
		}
	}
}

// Two structurally equal queries built differently featurize identically.
func TestEncodingCanonical(t *testing.T) {
	d := testDB(t)
	e, err := NewEncoder(s, d)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(s, d, 9)
	for i := 0; i < 50; i++ {
		q, err := gen.InitialQuery(2)
		if err != nil {
			t.Fatal(err)
		}
		clone := q.Clone()
		a, err := e.EncodeQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := e.EncodeQuery(clone)
		if err != nil {
			t.Fatal(err)
		}
		for vi := range a {
			for j := range a[vi] {
				if a[vi][j] != b[vi][j] {
					t.Fatalf("clone featurizes differently at %d,%d", vi, j)
				}
			}
		}
	}
}
