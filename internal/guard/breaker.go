package guard

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ErrBreakerOpen is returned on the estimate path when the circuit
// breaker is open and no fallback estimator is configured to absorb the
// tripped traffic.
var ErrBreakerOpen = errors.New("guard: circuit breaker open")

// BreakerState enumerates the classic three circuit-breaker states.
type BreakerState int32

const (
	// BreakerClosed: healthy, all traffic flows through the primary path.
	BreakerClosed BreakerState = iota
	// BreakerOpen: tripped, primary traffic is diverted until Cooldown.
	BreakerOpen
	// BreakerHalfOpen: cooldown elapsed, a probe quota of requests is let
	// through the primary path to test recovery.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerConfig tunes the circuit breaker. Zero fields take the defaults
// documented per field.
type BreakerConfig struct {
	// Window is how many recent outcomes the rolling window holds
	// (default 128).
	Window int
	// MinSamples is the minimum outcomes in the window before the
	// error-rate and latency trips can fire (default Window/4), so a
	// single early failure cannot trip an idle breaker.
	MinSamples int
	// ErrorRate in [0,1] trips the breaker when the windowed failure
	// fraction reaches it (default 0.5).
	ErrorRate float64
	// LatencyP99 trips the breaker when the windowed p99 latency reaches
	// it. Zero disables the latency trip.
	LatencyP99 time.Duration
	// Cooldown is how long the breaker stays open before probing
	// (default 5s).
	Cooldown time.Duration
	// ProbeQuota is how many consecutive half-open probes must succeed to
	// close the breaker (default 3). Any probe failure reopens it.
	ProbeQuota int
	// Alarm, when non-nil, is polled on closed-state Allow calls; a true
	// return trips the breaker immediately regardless of the window. It
	// must be cheap — the drift monitor's atomic Drifted bit is the
	// intended input.
	Alarm func() bool
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 128
	}
	if c.MinSamples <= 0 {
		c.MinSamples = c.Window / 4
		if c.MinSamples < 1 {
			c.MinSamples = 1
		}
	}
	if c.ErrorRate <= 0 || c.ErrorRate > 1 {
		c.ErrorRate = 0.5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.ProbeQuota <= 0 {
		c.ProbeQuota = 3
	}
	return c
}

type outcome struct {
	latency time.Duration
	failed  bool
}

// Breaker is a three-state circuit breaker over the learned estimate
// path. It trips on windowed error rate, windowed p99 latency, or an
// external alarm (the drift monitor); while open it diverts traffic for a
// cooldown, then half-opens and lets a probe quota through the primary
// path before closing again. A nil *Breaker always allows.
//
// The closed-state happy path is lock-free: Allow is an atomic state load
// (plus the alarm poll), and without a latency trip Record accounts
// outcomes in atomic tumbling-window counters — serving goroutines never
// serialize on the breaker while it is healthy. The mutex guards state
// transitions, the open/half-open paths, and — only when LatencyP99 is
// configured — an exact outcome ring for the p99 computation (that mode
// pays one short critical section per request, noise against a
// millisecond-scale latency threshold).
type Breaker struct {
	cfg BreakerConfig

	// Closed-state accounting without a latency trip: a tumbling window in
	// ONE atomic — samples in the low 32 bits, failures in the high 32 —
	// so a record is a single RMW whose return value already carries both
	// counts. Reset (by one CAS winner) on the first record after samples
	// reaches cfg.Window. Approximate at the boundary under concurrency,
	// which a trip threshold tolerates by design.
	winPacked atomic.Uint64

	state atomic.Int32 // BreakerState; written under mu, read lock-free

	mu        sync.Mutex
	ring      []outcome
	ringLen   int
	ringPos   int
	failures  int
	openedAt  time.Time
	probing   int // half-open probes currently outstanding
	probeOKs  int // consecutive successful probes this half-open episode
	sortSpace []time.Duration

	trips      uint64
	alarmTrips uint64
	closes     uint64
	diverted   uint64

	now func() time.Time // test hook
}

func (b *Breaker) loadState() BreakerState {
	return BreakerState(b.state.Load())
}

// NewBreaker returns a breaker with cfg's zero fields defaulted.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{
		cfg:       cfg,
		ring:      make([]outcome, cfg.Window),
		sortSpace: make([]time.Duration, 0, cfg.Window),
		now:       time.Now,
	}
}

// Allow reports whether the primary path may serve this request, and
// whether the request is a half-open probe. When allowed && probe, the
// caller must report the outcome with RecordProbe; when allowed && !probe,
// with Record; when !allowed, the request goes to the fallback and is not
// recorded.
func (b *Breaker) Allow() (allowed, probe bool) {
	if b == nil {
		return true, false
	}
	// Lock-free happy path: a closed breaker with a quiet alarm admits
	// without touching the mutex.
	if b.loadState() == BreakerClosed && (b.cfg.Alarm == nil || !b.cfg.Alarm()) {
		return true, false
	}
	return b.allowSlow()
}

// allowSlow handles every Allow that is not a quiet closed-state pass:
// alarm trips, the open-state cooldown, and half-open probe admission.
func (b *Breaker) allowSlow() (allowed, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.loadState() {
	case BreakerClosed:
		if b.cfg.Alarm != nil && b.cfg.Alarm() {
			b.tripLocked(true)
			b.diverted++
			return false, false
		}
		return true, false
	case BreakerOpen:
		if b.now().Sub(b.openedAt) >= b.cfg.Cooldown {
			b.state.Store(int32(BreakerHalfOpen))
			b.probing = 0
			b.probeOKs = 0
		} else {
			b.diverted++
			return false, false
		}
		fallthrough
	case BreakerHalfOpen:
		if b.probing+b.probeOKs < b.cfg.ProbeQuota {
			b.probing++
			return true, true
		}
		b.diverted++
		return false, false
	}
	return true, false
}

// Record reports a non-probe primary-path outcome: its latency and
// whether it failed for a reason that should count against the breaker
// (callers exclude client errors, shed load, and caller cancellation).
func (b *Breaker) Record(latency time.Duration, failed bool) {
	if b == nil {
		return
	}
	if b.cfg.LatencyP99 > 0 {
		b.recordRing(latency, failed)
		return
	}
	if b.loadState() != BreakerClosed {
		// An in-flight request from before a trip; its outcome no longer
		// describes the closed-state window.
		return
	}
	// Tumble: the first record after the window fills resets the counters
	// (one CAS winner; losers just account into the fresh epoch).
	if v := b.winPacked.Load(); v&samplesMask >= uint64(b.cfg.Window) {
		b.winPacked.CompareAndSwap(v, 0)
	}
	delta := uint64(1)
	if failed {
		delta = 1<<failureShift | 1
	}
	v := b.winPacked.Add(delta)
	n, f := v&samplesMask, v>>failureShift
	if n >= uint64(b.cfg.MinSamples) && float64(f) >= b.cfg.ErrorRate*float64(n) {
		b.mu.Lock()
		// Re-verify under the lock: a concurrent trip or tumble may have
		// invalidated the lock-free read.
		v = b.winPacked.Load()
		n, f = v&samplesMask, v>>failureShift
		if b.loadState() == BreakerClosed &&
			n >= uint64(b.cfg.MinSamples) && float64(f) >= b.cfg.ErrorRate*float64(n) {
			b.tripLocked(false)
		}
		b.mu.Unlock()
	}
}

// winPacked layout: samples in the low 32 bits, failures in the high 32.
const (
	failureShift = 32
	samplesMask  = 1<<failureShift - 1
)

// recordRing is the exact, mutex-guarded Record used when a latency trip
// is configured: every outcome lands in the ring so the windowed p99 is
// computed over real samples.
func (b *Breaker) recordRing(latency time.Duration, failed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.loadState() != BreakerClosed {
		return
	}
	b.pushLocked(outcome{latency: latency, failed: failed})
	if b.ringLen < b.cfg.MinSamples {
		return
	}
	if float64(b.failures)/float64(b.ringLen) >= b.cfg.ErrorRate {
		b.tripLocked(false)
		return
	}
	if b.p99Locked() >= b.cfg.LatencyP99 {
		b.tripLocked(false)
	}
}

// RecordProbe reports the outcome of a half-open probe admitted by Allow.
// Any failure reopens the breaker; ProbeQuota consecutive successes close
// it with a cleared window.
func (b *Breaker) RecordProbe(latency time.Duration, failed bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.loadState() != BreakerHalfOpen {
		return
	}
	b.probing--
	if failed {
		b.state.Store(int32(BreakerOpen))
		b.openedAt = b.now()
		b.trips++
		return
	}
	b.probeOKs++
	if b.probeOKs >= b.cfg.ProbeQuota {
		b.state.Store(int32(BreakerClosed))
		b.closes++
		b.resetWindowLocked()
	}
}

// Trip forces the breaker open (operational kill switch).
func (b *Breaker) Trip() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.loadState() != BreakerOpen {
		b.tripLocked(false)
	}
}

func (b *Breaker) tripLocked(byAlarm bool) {
	b.state.Store(int32(BreakerOpen))
	b.openedAt = b.now()
	b.trips++
	if byAlarm {
		b.alarmTrips++
	}
	b.resetWindowLocked()
}

func (b *Breaker) resetWindowLocked() {
	b.ringLen = 0
	b.ringPos = 0
	b.failures = 0
	b.winPacked.Store(0)
}

func (b *Breaker) pushLocked(o outcome) {
	if b.ringLen == len(b.ring) {
		if b.ring[b.ringPos].failed {
			b.failures--
		}
	} else {
		b.ringLen++
	}
	b.ring[b.ringPos] = o
	if o.failed {
		b.failures++
	}
	b.ringPos = (b.ringPos + 1) % len(b.ring)
}

func (b *Breaker) p99Locked() time.Duration {
	b.sortSpace = b.sortSpace[:0]
	for i := 0; i < b.ringLen; i++ {
		b.sortSpace = append(b.sortSpace, b.ring[i].latency)
	}
	sort.Slice(b.sortSpace, func(i, j int) bool { return b.sortSpace[i] < b.sortSpace[j] })
	idx := (len(b.sortSpace)*99 + 99) / 100
	if idx > len(b.sortSpace) {
		idx = len(b.sortSpace)
	}
	return b.sortSpace[idx-1]
}

// TracksLatency reports whether Record uses the latency argument (a
// latency trip is configured). Callers skip the clock reads around the
// primary path when it is false. Safe on nil.
func (b *Breaker) TracksLatency() bool {
	return b != nil && b.cfg.LatencyP99 > 0
}

// State reports the breaker's current state. Safe on nil (closed).
// Lock-free — readiness probes may call it on every request.
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	return b.loadState()
}

// BreakerStats is a point-in-time snapshot of the breaker.
type BreakerStats struct {
	// State is the current state name: closed, open, or half-open.
	State string `json:"state"`
	// WindowSamples / WindowFailures describe the closed-state rolling
	// window right now.
	WindowSamples  int `json:"window_samples"`
	WindowFailures int `json:"window_failures"`
	// Trips counts transitions into the open state; AlarmTrips the subset
	// caused by the external alarm (drift monitor).
	Trips      uint64 `json:"trips"`
	AlarmTrips uint64 `json:"alarm_trips"`
	// Closes counts recoveries (half-open probe quota met).
	Closes uint64 `json:"closes"`
	// Diverted counts requests Allow sent to the fallback path.
	Diverted uint64 `json:"diverted"`
}

// Stats snapshots the breaker's counters. Safe on nil (zero value with
// state "closed").
func (b *Breaker) Stats() BreakerStats {
	if b == nil {
		return BreakerStats{State: BreakerClosed.String()}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	v := b.winPacked.Load()
	samples, fails := int(v&samplesMask), int(v>>failureShift)
	if b.cfg.LatencyP99 > 0 {
		samples, fails = b.ringLen, b.failures
	}
	return BreakerStats{
		State:          b.loadState().String(),
		WindowSamples:  samples,
		WindowFailures: fails,
		Trips:          b.trips,
		AlarmTrips:     b.alarmTrips,
		Closes:         b.closes,
		Diverted:       b.diverted,
	}
}
