package guard

import (
	"context"
	"sync/atomic"
	"time"
)

// DeadlineWheel hands out per-request deadline contexts without paying a
// runtime timer per request. Requests whose deadlines land in the same
// granule (Timeout/8 by default) share one expiry channel closed by one
// time.AfterFunc — under load, thousands of requests amortize a handful
// of timers per second. The price is slack: the effective timeout is in
// [Timeout, Timeout+granule), i.e. at most 12.5% longer than configured,
// which a load-shedding deadline tolerates by design (it exists to bound
// runaway requests, not to time anything precisely).
//
// The wheel only serves parents with no cancellation and no deadline of
// their own (Done() == nil, Deadline() unset — context.Background and
// friends): a cancellable parent needs real cancel propagation, which is
// exactly what context.WithTimeout provides, so Context reports ok=false
// and the caller falls back. Contexts from the wheel enforce their
// deadline two ways: Err() compares against the clock (the cooperative
// poll on the compute path), and Done() closes at the shared expiry (the
// blocking select on the coalescer wait path).
type DeadlineWheel struct {
	timeout time.Duration
	granule time.Duration
	cur     atomic.Pointer[wheelBucket]
}

// wheelShards is how many expiry channels a bucket fans out over. A
// blocking select registers (and on wake unregisters) on its channel's
// internal lock; with every in-flight request sharing one channel that
// lock is a global serialization point — round-robin over 16 shards makes
// it contention-free at serving concurrency. One timer still closes them
// all.
const wheelShards = 16

type wheelBucket struct {
	expiry int64 // unix nanoseconds; the shared, granule-aligned deadline
	chs    [wheelShards]chan struct{}
	// ctxs are pre-built contexts over context.Background(), one per
	// shard: the overwhelmingly common non-cancellable parent, served with
	// zero per-request allocation.
	ctxs  [wheelShards]*wheelCtx
	timer *time.Timer
}

// NewDeadlineWheel returns a wheel issuing deadlines of at least timeout.
// Returns nil (and Context always falls back) for timeout <= 0.
func NewDeadlineWheel(timeout time.Duration) *DeadlineWheel {
	if timeout <= 0 {
		return nil
	}
	g := timeout / 8
	if g < time.Millisecond {
		g = time.Millisecond
	}
	return &DeadlineWheel{timeout: timeout, granule: g}
}

// Context returns a deadline context over parent from the shared wheel.
// ok=false when parent carries cancellation or its own deadline — the
// caller must use context.WithTimeout instead. The returned context needs
// no cancel: it holds no per-request resources, and its shared timer fires
// once per granule regardless.
func (w *DeadlineWheel) Context(parent context.Context) (context.Context, bool) {
	if w == nil || parent.Done() != nil {
		return nil, false
	}
	if _, has := parent.Deadline(); has {
		return nil, false
	}
	now := time.Now()
	b := w.bucket(now)
	// Shard selection from clock entropy already in hand (bits 6..: below
	// them the clock quantizes, above them calls within a service time
	// would collide) — no shared round-robin counter to bounce between
	// cores.
	idx := uint64(now.UnixNano()>>6) % wheelShards
	if parent == context.Background() {
		return b.ctxs[idx], true
	}
	return &wheelCtx{parent: parent, expiry: b.expiry, done: b.chs[idx]}, true
}

// bucket returns the current expiry bucket, rotating to a fresh one when
// the cached bucket can no longer guarantee the full timeout.
func (w *DeadlineWheel) bucket(now time.Time) *wheelBucket {
	target := now.UnixNano() + int64(w.timeout)
	for {
		b := w.cur.Load()
		if b != nil && b.expiry >= target && b.expiry < target+int64(w.granule) {
			return b
		}
		g := int64(w.granule)
		expiry := (target + g - 1) / g * g
		nb := &wheelBucket{expiry: expiry}
		for i := range nb.chs {
			nb.chs[i] = make(chan struct{})
			nb.ctxs[i] = &wheelCtx{parent: context.Background(), expiry: expiry, done: nb.chs[i]}
		}
		nb.timer = time.AfterFunc(time.Duration(expiry-now.UnixNano()), func() {
			for _, ch := range nb.chs {
				close(ch)
			}
		})
		if w.cur.CompareAndSwap(b, nb) {
			return nb
		}
		// Another goroutine rotated first; discard ours and retry with
		// theirs (stopping the timer before the channel leaks a close).
		nb.timer.Stop()
	}
}

// wheelCtx is the context.Context handed out by the wheel: parent values,
// a granule-aligned deadline, a shared expiry channel, and a lazy Err.
type wheelCtx struct {
	parent context.Context
	expiry int64
	done   <-chan struct{}
}

func (c *wheelCtx) Deadline() (time.Time, bool) { return time.Unix(0, c.expiry), true }
func (c *wheelCtx) Done() <-chan struct{}       { return c.done }
func (c *wheelCtx) Value(k any) any             { return c.parent.Value(k) }

func (c *wheelCtx) Err() error {
	if err := c.parent.Err(); err != nil {
		return err
	}
	// The compute path polls Err per chunk: a non-blocking receive on the
	// expiry channel is a lock-free check while the channel is open — no
	// clock read per poll (expiry is the channel close, exactly what Done
	// reports).
	select {
	case <-c.done:
		return context.DeadlineExceeded
	default:
		return nil
	}
}
