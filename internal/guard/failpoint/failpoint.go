// Package failpoint is a build-tag-free fault-injection registry: named
// hook points compiled permanently into production code paths (WAL file
// operations, checkpoint publication, the truth oracle, the retrainer)
// that tests arm with error returns, latency, or panics to drive the
// fault-matrix suite.
//
// The design constraint is the disarmed cost, because the hooks sit on
// serving and durability hot paths: Inject with nothing armed anywhere is
// one atomic load of a counter that is zero, a predictable branch, and a
// return — no map lookup, no interface value, no allocation. Only while at
// least one failpoint is armed does Inject fall into the slow path that
// resolves the name.
//
// A failpoint's action is an arbitrary func() error. Returning a non-nil
// error injects that error at the hook; returning nil lets the call
// proceed (useful for latency injection: sleep, return nil); panicking
// propagates the panic out of Inject (how trainer-panic faults are
// staged). Hits are counted either way.
package failpoint

import (
	"sync"
	"sync/atomic"
)

// armed counts enabled failpoints process-wide. Inject's fast path reads
// only this; the registry map is untouched until something is armed.
var armed atomic.Int64

var (
	mu     sync.Mutex
	points = map[string]*point{}
)

type point struct {
	fn   func() error
	hits atomic.Uint64
}

// Enable arms the named failpoint with an action. Re-enabling replaces the
// action and keeps the hit count. Actions run on the goroutine that hits
// the failpoint and must be safe for concurrent calls.
func Enable(name string, fn func() error) {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := points[name]; ok {
		p.fn = fn
		return
	}
	points[name] = &point{fn: fn}
	armed.Add(1)
}

// EnableError arms the named failpoint to return err on every hit.
func EnableError(name string, err error) {
	Enable(name, func() error { return err })
}

// Disable disarms the named failpoint. Unknown names are a no-op.
func Disable(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[name]; ok {
		delete(points, name)
		armed.Add(-1)
	}
}

// DisableAll disarms every failpoint — test teardown.
func DisableAll() {
	mu.Lock()
	defer mu.Unlock()
	armed.Add(-int64(len(points)))
	clear(points)
}

// Inject runs the named failpoint's armed action and returns its error.
// With nothing armed (production), it is one atomic load and a return.
func Inject(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	return inject(name)
}

// inject is the armed slow path, kept out of Inject so the disarmed fast
// path stays inlinable.
func inject(name string) error {
	mu.Lock()
	p, ok := points[name]
	mu.Unlock()
	if !ok {
		return nil
	}
	p.hits.Add(1)
	return p.fn()
}

// Hits reports how many times the named failpoint fired since it was first
// enabled (0 for unknown or disarmed names — counts do not survive
// Disable).
func Hits(name string) uint64 {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := points[name]; ok {
		return p.hits.Load()
	}
	return 0
}

// Names of the failpoints compiled into the repository, in one place so
// tests and the hooks themselves cannot drift apart on spelling.
const (
	// WALAppend fires at the head of WAL.Append, before the record is
	// framed: an injected error simulates an append-time I/O failure
	// (ENOSPC at the write syscall).
	WALAppend = "durable/wal-append"
	// WALFlush fires inside the WAL's flush step, where buffered records
	// hit the file: an injected error simulates the disk filling up under
	// the background syncer or a segment roll.
	WALFlush = "durable/wal-flush"
	// WALSync fires before the WAL fsyncs a flushed segment.
	WALSync = "durable/wal-sync"
	// CheckpointRename fires before a completed checkpoint temp directory
	// is renamed into place — the atomic publication step.
	CheckpointRename = "durable/checkpoint-rename"
	// OracleCardinality / OracleContainment fire in the truth oracle the
	// trainer labels feedback pairs with (and SeedPool seeds from).
	OracleCardinality = "oracle/cardinality"
	OracleContainment = "oracle/containment"
	// TrainerRetrain fires inside a retrain cycle after feedback is
	// drained; arm it with a panicking action to stage a trainer crash.
	TrainerRetrain = "online/trainer-retrain"
	// EstimateCards fires at the head of the pool-based estimate path;
	// arming it with errors simulates an estimate-path error storm (the
	// circuit breaker's trip input), with a sleep a latency storm.
	EstimateCards = "card/estimate"
)
