package failpoint

import (
	"errors"
	"testing"
	"time"
)

func TestInjectDisarmedIsNil(t *testing.T) {
	t.Cleanup(DisableAll)
	if err := Inject("nothing/armed"); err != nil {
		t.Fatalf("disarmed inject: %v", err)
	}
}

func TestEnableErrorAndDisable(t *testing.T) {
	t.Cleanup(DisableAll)
	boom := errors.New("boom")
	EnableError("x/y", boom)
	if err := Inject("x/y"); !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	// Arming one point must not affect others.
	if err := Inject("x/other"); err != nil {
		t.Fatalf("unarmed sibling: %v", err)
	}
	if Hits("x/y") != 1 {
		t.Fatalf("hits: %d", Hits("x/y"))
	}
	Disable("x/y")
	if err := Inject("x/y"); err != nil {
		t.Fatalf("after disable: %v", err)
	}
}

func TestEnableCountdown(t *testing.T) {
	// A stateful action: fail the first 2 hits, then recover — the shape
	// degraded-durability tests use to model a disk that comes back.
	t.Cleanup(DisableAll)
	left := 2
	Enable("disk/full", func() error {
		if left > 0 {
			left--
			return errors.New("ENOSPC")
		}
		return nil
	})
	if Inject("disk/full") == nil || Inject("disk/full") == nil {
		t.Fatalf("first two hits must fail")
	}
	if err := Inject("disk/full"); err != nil {
		t.Fatalf("third hit should pass: %v", err)
	}
	if Hits("disk/full") != 3 {
		t.Fatalf("hits: %d", Hits("disk/full"))
	}
}

func TestLatencyInjection(t *testing.T) {
	t.Cleanup(DisableAll)
	Enable("slow/op", func() error {
		time.Sleep(5 * time.Millisecond)
		return nil
	})
	start := time.Now()
	if err := Inject("slow/op"); err != nil {
		t.Fatalf("latency injection must not error: %v", err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Fatalf("sleep did not happen")
	}
}

func TestPanicPropagates(t *testing.T) {
	t.Cleanup(DisableAll)
	Enable("trainer/crash", func() error { panic("injected") })
	defer func() {
		if recover() == nil {
			t.Fatalf("panic must propagate out of Inject")
		}
	}()
	_ = Inject("trainer/crash")
}

func TestDisableAllRearms(t *testing.T) {
	t.Cleanup(DisableAll)
	EnableError("a", errors.New("a"))
	EnableError("b", errors.New("b"))
	DisableAll()
	if Inject("a") != nil || Inject("b") != nil {
		t.Fatalf("DisableAll must disarm everything")
	}
	EnableError("a", errors.New("a2"))
	if Inject("a") == nil {
		t.Fatalf("re-arming after DisableAll must work")
	}
}

func BenchmarkInjectDisarmed(b *testing.B) {
	DisableAll()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if Inject(WALAppend) != nil {
			b.Fatal("disarmed inject errored")
		}
	}
}
