// Package guard supplies the operational-hardening primitives wrapped
// around the estimate path: an admission gate that sheds load beyond a
// concurrency ceiling instead of queueing it, and a circuit breaker that
// routes traffic to the classical fallback estimator while the learned
// path is unhealthy. Both are allocation-free on the happy path.
package guard

import (
	"errors"
	"sync/atomic"
)

// ErrOverloaded is returned by Gate.Acquire when admitting the request
// would exceed the configured concurrency ceiling. Callers should surface
// it as retryable backpressure (HTTP 429 + Retry-After), not a failure of
// the request itself.
var ErrOverloaded = errors.New("guard: overloaded, request shed")

// Gate is a concurrency-limiting admission gate. It admits up to a fixed
// number of in-flight requests and sheds the rest immediately with
// ErrOverloaded — no queue, so latency under overload stays bounded by
// what the admitted requests cost. A nil *Gate admits everything, which
// lets callers thread an optional gate without branching.
type Gate struct {
	max      int64
	inflight atomic.Int64
	peak     atomic.Int64
	admitted atomic.Uint64
	shed     atomic.Uint64
}

// NewGate returns a gate admitting at most max concurrent requests.
// max <= 0 means unlimited: NewGate returns nil, and the nil methods
// admit everything.
func NewGate(max int) *Gate {
	if max <= 0 {
		return nil
	}
	return &Gate{max: int64(max)}
}

// Acquire admits the caller or sheds it with ErrOverloaded. Every
// successful Acquire must be paired with exactly one Release.
func (g *Gate) Acquire() error {
	if g == nil {
		return nil
	}
	n := g.inflight.Add(1)
	if n > g.max {
		g.inflight.Add(-1)
		g.shed.Add(1)
		return ErrOverloaded
	}
	g.admitted.Add(1)
	// Track the high-water mark; racing CAS losers mean another goroutine
	// recorded an equal-or-higher peak.
	for {
		p := g.peak.Load()
		if n <= p || g.peak.CompareAndSwap(p, n) {
			return nil
		}
	}
}

// Release returns an admission slot acquired with Acquire.
func (g *Gate) Release() {
	if g == nil {
		return
	}
	g.inflight.Add(-1)
}

// GateStats is a point-in-time snapshot of admission counters.
type GateStats struct {
	// MaxInflight is the configured concurrency ceiling (0 = unlimited).
	MaxInflight int `json:"max_inflight"`
	// Inflight is the number of currently admitted requests.
	Inflight int `json:"inflight"`
	// PeakInflight is the highest concurrent admission observed.
	PeakInflight int `json:"peak_inflight"`
	// Admitted counts requests admitted through the gate.
	Admitted uint64 `json:"admitted"`
	// Shed counts requests rejected with ErrOverloaded.
	Shed uint64 `json:"shed"`
}

// Stats snapshots the gate's counters. Safe on a nil gate (all zeros).
func (g *Gate) Stats() GateStats {
	if g == nil {
		return GateStats{}
	}
	return GateStats{
		MaxInflight:  int(g.max),
		Inflight:     int(g.inflight.Load()),
		PeakInflight: int(g.peak.Load()),
		Admitted:     g.admitted.Load(),
		Shed:         g.shed.Load(),
	}
}
