package guard

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGateShedsBeyondCeiling(t *testing.T) {
	g := NewGate(2)
	if err := g.Acquire(); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if err := g.Acquire(); err != nil {
		t.Fatalf("second acquire: %v", err)
	}
	if err := g.Acquire(); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third acquire: want ErrOverloaded, got %v", err)
	}
	g.Release()
	if err := g.Acquire(); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	st := g.Stats()
	if st.Admitted != 3 || st.Shed != 1 || st.Inflight != 2 || st.MaxInflight != 2 {
		t.Fatalf("stats: %+v", st)
	}
	if st.PeakInflight != 2 {
		t.Fatalf("peak: %+v", st)
	}
}

func TestGateNilAndUnlimited(t *testing.T) {
	if g := NewGate(0); g != nil {
		t.Fatalf("NewGate(0) should be nil (unlimited)")
	}
	var g *Gate
	for i := 0; i < 100; i++ {
		if err := g.Acquire(); err != nil {
			t.Fatalf("nil gate must admit: %v", err)
		}
	}
	g.Release()
	if st := g.Stats(); st != (GateStats{}) {
		t.Fatalf("nil gate stats: %+v", st)
	}
}

// TestGateConcurrent hammers the gate from many goroutines and checks the
// inflight invariant never exceeds the ceiling and accounting balances.
func TestGateConcurrent(t *testing.T) {
	const ceiling = 8
	g := NewGate(ceiling)
	var wg sync.WaitGroup
	var maxSeen atomic.Int64
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				if g.Acquire() != nil {
					continue
				}
				n := g.inflight.Load()
				for {
					m := maxSeen.Load()
					if n <= m || maxSeen.CompareAndSwap(m, n) {
						break
					}
				}
				g.Release()
			}
		}()
	}
	wg.Wait()
	if n := maxSeen.Load(); n > ceiling {
		t.Fatalf("observed %d inflight, ceiling %d", n, ceiling)
	}
	st := g.Stats()
	if st.Inflight != 0 {
		t.Fatalf("inflight should drain to zero: %+v", st)
	}
	if st.Admitted+st.Shed != 64*200 {
		t.Fatalf("admitted %d + shed %d != %d", st.Admitted, st.Shed, 64*200)
	}
}

func TestBreakerTripsOnErrorRate(t *testing.T) {
	b := NewBreaker(BreakerConfig{Window: 10, MinSamples: 4, ErrorRate: 0.5, Cooldown: time.Hour})
	for i := 0; i < 3; i++ {
		b.Record(time.Millisecond, true)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("should not trip below MinSamples")
	}
	b.Record(time.Millisecond, true)
	if b.State() != BreakerOpen {
		t.Fatalf("should trip at 4/4 failures, state %v", b.State())
	}
	if ok, _ := b.Allow(); ok {
		t.Fatalf("open breaker must divert")
	}
	st := b.Stats()
	if st.Trips != 1 || st.Diverted != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestBreakerHalfOpenRecovery(t *testing.T) {
	b := NewBreaker(BreakerConfig{Window: 8, MinSamples: 2, ErrorRate: 0.5, Cooldown: time.Minute, ProbeQuota: 2})
	clock := time.Unix(1000, 0)
	b.now = func() time.Time { return clock }

	b.Record(time.Millisecond, true)
	b.Record(time.Millisecond, true)
	if b.State() != BreakerOpen {
		t.Fatalf("want open, got %v", b.State())
	}

	// Before cooldown: diverted.
	if ok, _ := b.Allow(); ok {
		t.Fatalf("should divert during cooldown")
	}
	clock = clock.Add(2 * time.Minute)

	// After cooldown: exactly ProbeQuota probes admitted, the rest diverted.
	ok1, probe1 := b.Allow()
	ok2, probe2 := b.Allow()
	if !ok1 || !probe1 || !ok2 || !probe2 {
		t.Fatalf("want two probes, got (%v,%v) (%v,%v)", ok1, probe1, ok2, probe2)
	}
	if ok, _ := b.Allow(); ok {
		t.Fatalf("probe quota exhausted, should divert")
	}
	b.RecordProbe(time.Millisecond, false)
	b.RecordProbe(time.Millisecond, false)
	if b.State() != BreakerClosed {
		t.Fatalf("want closed after probe quota, got %v", b.State())
	}
	if st := b.Stats(); st.Closes != 1 || st.WindowSamples != 0 {
		t.Fatalf("window should reset on close: %+v", st)
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	b := NewBreaker(BreakerConfig{Window: 8, MinSamples: 2, ErrorRate: 0.5, Cooldown: time.Minute, ProbeQuota: 3})
	clock := time.Unix(1000, 0)
	b.now = func() time.Time { return clock }
	b.Record(0, true)
	b.Record(0, true)
	clock = clock.Add(2 * time.Minute)
	if ok, probe := b.Allow(); !ok || !probe {
		t.Fatalf("want probe")
	}
	b.RecordProbe(0, true)
	if b.State() != BreakerOpen {
		t.Fatalf("probe failure must reopen, got %v", b.State())
	}
	// Reopened: a fresh cooldown starts from the failure.
	if ok, _ := b.Allow(); ok {
		t.Fatalf("should divert after reopen")
	}
}

func TestBreakerAlarmTrip(t *testing.T) {
	alarm := false
	b := NewBreaker(BreakerConfig{Cooldown: time.Hour, Alarm: func() bool { return alarm }})
	if ok, _ := b.Allow(); !ok {
		t.Fatalf("healthy breaker must allow")
	}
	alarm = true
	if ok, _ := b.Allow(); ok {
		t.Fatalf("alarm must trip and divert")
	}
	if st := b.Stats(); st.AlarmTrips != 1 || st.State != "open" {
		t.Fatalf("stats: %+v", st)
	}
}

func TestBreakerLatencyTrip(t *testing.T) {
	b := NewBreaker(BreakerConfig{Window: 8, MinSamples: 4, ErrorRate: 0.99, LatencyP99: 10 * time.Millisecond, Cooldown: time.Hour})
	for i := 0; i < 3; i++ {
		b.Record(time.Millisecond, false)
	}
	b.Record(50*time.Millisecond, false)
	if b.State() != BreakerOpen {
		t.Fatalf("p99 over threshold must trip, got %v", b.State())
	}
}

func TestBreakerNil(t *testing.T) {
	var b *Breaker
	if ok, probe := b.Allow(); !ok || probe {
		t.Fatalf("nil breaker must allow, not probe")
	}
	b.Record(0, true)
	b.RecordProbe(0, true)
	b.Trip()
	if b.State() != BreakerClosed {
		t.Fatalf("nil breaker state")
	}
	if st := b.Stats(); st.State != "closed" {
		t.Fatalf("nil stats: %+v", st)
	}
}

func TestDeadlineWheelEnforcesTimeout(t *testing.T) {
	w := NewDeadlineWheel(20 * time.Millisecond)
	ctx, ok := w.Context(context.Background())
	if !ok {
		t.Fatal("wheel must serve a Background parent")
	}
	dl, has := ctx.Deadline()
	if !has {
		t.Fatal("wheel context must carry a deadline")
	}
	// At least the configured timeout, at most one granule of slack
	// (granule floor is 1ms for timeouts under 8ms).
	if until := time.Until(dl); until < 15*time.Millisecond || until > 30*time.Millisecond {
		t.Fatalf("deadline %v from now, want ~[20ms, 23ms)", until)
	}
	if ctx.Err() != nil {
		t.Fatalf("premature Err: %v", ctx.Err())
	}
	select {
	case <-ctx.Done():
		t.Fatal("Done closed before the deadline")
	default:
	}
	select {
	case <-ctx.Done():
	case <-time.After(100 * time.Millisecond):
		t.Fatal("Done never closed after the deadline")
	}
	if !errors.Is(ctx.Err(), context.DeadlineExceeded) {
		t.Fatalf("Err after deadline = %v, want DeadlineExceeded", ctx.Err())
	}
}

func TestDeadlineWheelSharesBuckets(t *testing.T) {
	w := NewDeadlineWheel(time.Second)
	a, _ := w.Context(context.Background())
	b, _ := w.Context(context.Background())
	da, _ := a.Deadline()
	db, _ := b.Deadline()
	if !da.Equal(db) {
		t.Fatal("back-to-back requests must share one expiry bucket")
	}
	// Expiry channels come from the bucket's fixed shard set — reused
	// across requests in a granule, never allocated per request.
	distinct := map[<-chan struct{}]bool{a.Done(): true, b.Done(): true}
	for i := 0; i < 200; i++ {
		c, _ := w.Context(context.Background())
		distinct[c.Done()] = true
	}
	if len(distinct) > wheelShards {
		t.Fatalf("%d distinct expiry channels in one granule, want <= %d shards", len(distinct), wheelShards)
	}
}

func TestDeadlineWheelRejectsCancellableParents(t *testing.T) {
	w := NewDeadlineWheel(time.Second)
	cctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if _, ok := w.Context(cctx); ok {
		t.Fatal("a cancellable parent needs real cancel propagation; wheel must decline")
	}
	dctx, dcancel := context.WithTimeout(context.Background(), time.Minute)
	defer dcancel()
	if _, ok := w.Context(dctx); ok {
		t.Fatal("a parent with its own deadline must decline")
	}
	if _, ok := NewDeadlineWheel(0).Context(context.Background()); ok {
		t.Fatal("nil wheel (timeout 0) must decline")
	}
}

func TestDeadlineWheelParentValues(t *testing.T) {
	type key struct{}
	parent := context.WithValue(context.Background(), key{}, "v")
	w := NewDeadlineWheel(time.Second)
	ctx, ok := w.Context(parent)
	if !ok {
		t.Fatal("value-only parents have nil Done; wheel must serve them")
	}
	if got := ctx.Value(key{}); got != "v" {
		t.Fatalf("Value = %v, want parent's", got)
	}
}

func TestBreakerWindowEviction(t *testing.T) {
	// Old failures must age out of the ring: 4 failures then many
	// successes should leave the failure count at 0.
	b := NewBreaker(BreakerConfig{Window: 4, MinSamples: 100, ErrorRate: 0.5, Cooldown: time.Hour})
	for i := 0; i < 4; i++ {
		b.Record(0, true)
	}
	for i := 0; i < 4; i++ {
		b.Record(0, false)
	}
	st := b.Stats()
	if st.WindowFailures != 0 || st.WindowSamples != 4 {
		t.Fatalf("eviction: %+v", st)
	}
}
