// Package metrics implements the paper's evaluation protocol: the q-error
// metric (§3.2.4), percentile summaries in the layout of the paper's tables
// (50th/75th/90th/95th/99th/max/mean), the box statistics behind its plots
// (5th/25th/50th/75th/95th), and plain-text table rendering.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// QError is the ratio between an estimated and the actual value (or vice
// versa), the paper's error metric: q-error(y, ŷ) = max(ŷ/y, y/ŷ) ≥ 1.
// Non-positive inputs are clamped to `floor` first, so that empty results
// and zero estimates yield finite, comparable errors (the standard
// cardinality-estimation convention).
func QError(actual, estimate, floor float64) float64 {
	if floor <= 0 {
		floor = 1
	}
	a := math.Max(actual, floor)
	e := math.Max(estimate, floor)
	if e > a {
		return e / a
	}
	return a / e
}

// CardQError is QError with the cardinality floor of one row.
func CardQError(actual, estimate float64) float64 { return QError(actual, estimate, 1) }

// RateQError is QError for containment rates in [0,1]; rates are floored at
// RateFloor so that a 0%-contained pair estimated as 0 scores a perfect 1.
func RateQError(actual, estimate float64) float64 { return QError(actual, estimate, RateFloor) }

// RateFloor is the clamp applied to containment rates before computing
// q-errors. One part in a thousand distinguishes "essentially disjoint" from
// real containment at the workload sizes used here.
const RateFloor = 1e-3

// Summary is one row of the paper's error tables.
type Summary struct {
	P50, P75, P90, P95, P99, Max, Mean float64
	Count                              int
}

// Summarize computes the paper's percentile summary over a sample of
// q-errors. It returns the zero Summary for empty input.
func Summarize(errors []float64) Summary {
	if len(errors) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), errors...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	return Summary{
		P50:   Percentile(sorted, 50),
		P75:   Percentile(sorted, 75),
		P90:   Percentile(sorted, 90),
		P95:   Percentile(sorted, 95),
		P99:   Percentile(sorted, 99),
		Max:   sorted[len(sorted)-1],
		Mean:  sum / float64(len(sorted)),
		Count: len(sorted),
	}
}

// Box holds the five statistics drawn by the paper's box plots: box
// boundaries at the 25th/75th percentiles, whiskers at the 5th/95th, and the
// median line (Figure 5 caption).
type Box struct {
	P5, P25, P50, P75, P95 float64
}

// BoxStats computes box-plot statistics over a sample of q-errors.
func BoxStats(errors []float64) Box {
	if len(errors) == 0 {
		return Box{}
	}
	sorted := append([]float64(nil), errors...)
	sort.Float64s(sorted)
	return Box{
		P5:  Percentile(sorted, 5),
		P25: Percentile(sorted, 25),
		P50: Percentile(sorted, 50),
		P75: Percentile(sorted, 75),
		P95: Percentile(sorted, 95),
	}
}

// Percentile returns the p'th percentile (0 ≤ p ≤ 100) of an ascending
// sorted sample using linear interpolation between closest ranks.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of an unsorted sample.
func Median(values []float64) float64 {
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	return Percentile(sorted, 50)
}

// Mean returns the arithmetic mean, or 0 for empty input.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// TrimmedMean removes `trim` fraction of the sample from each tail (e.g.
// 0.125 from each side for the paper's "without the 25% outliers") before
// averaging. Degenerate trims fall back to the plain mean.
func TrimmedMean(values []float64, trim float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	k := int(trim * float64(len(sorted)))
	if k*2 >= len(sorted) {
		return Mean(sorted)
	}
	return Mean(sorted[k : len(sorted)-k])
}

// Table is a named plain-text table with a header and formatted rows; the
// experiment harness emits one per paper table/figure.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	b.WriteString(t.Title)
	b.WriteString("\n")
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", pad))
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// SummaryRow formats a Summary in the layout of the paper's tables:
// 50th 75th 90th 95th 99th max mean.
func SummaryRow(name string, s Summary) []string {
	return []string{
		name,
		FormatQ(s.P50), FormatQ(s.P75), FormatQ(s.P90), FormatQ(s.P95),
		FormatQ(s.P99), FormatQ(s.Max), FormatQ(s.Mean),
	}
}

// SummaryHeader is the header matching SummaryRow.
func SummaryHeader(label string) []string {
	return []string{label, "50th", "75th", "90th", "95th", "99th", "max", "mean"}
}

// FormatQ formats a q-error the way the paper prints them: two decimals for
// small values, whole numbers beyond 100.
func FormatQ(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "inf"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}
