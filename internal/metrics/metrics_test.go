package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestQErrorBasics(t *testing.T) {
	cases := []struct {
		actual, estimate, want float64
	}{
		{100, 100, 1},
		{100, 200, 2},
		{200, 100, 2},
		{1, 1000, 1000},
		{0, 0, 1},   // both clamped to floor
		{0, 10, 10}, // actual clamped to 1
		{10, 0, 10}, // estimate clamped to 1
	}
	for _, c := range cases {
		if got := CardQError(c.actual, c.estimate); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("CardQError(%v,%v) = %v, want %v", c.actual, c.estimate, got, c.want)
		}
	}
}

func TestQErrorAtLeastOneProperty(t *testing.T) {
	f := func(a, e float64) bool {
		a, e = math.Abs(a), math.Abs(e)
		q := CardQError(a, e)
		return q >= 1 || math.IsNaN(a) || math.IsNaN(e)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQErrorSymmetryProperty(t *testing.T) {
	f := func(a, e float64) bool {
		a, e = math.Abs(a)+1, math.Abs(e)+1
		if math.IsInf(a, 0) || math.IsInf(e, 0) {
			return true
		}
		return math.Abs(CardQError(a, e)-CardQError(e, a)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRateQErrorFloor(t *testing.T) {
	// Both essentially zero: perfect.
	if got := RateQError(0, 0); got != 1 {
		t.Errorf("RateQError(0,0) = %v", got)
	}
	// True rate 0, estimate 0.1 -> q-error 0.1/floor = 100.
	if got := RateQError(0, 0.1); math.Abs(got-100) > 1e-9 {
		t.Errorf("RateQError(0,0.1) = %v, want 100", got)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p, want float64
	}{{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4}, {10, 1.4}}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestSummarize(t *testing.T) {
	errs := make([]float64, 100)
	for i := range errs {
		errs[i] = float64(i + 1)
	}
	s := Summarize(errs)
	if s.Count != 100 {
		t.Errorf("Count = %d", s.Count)
	}
	if s.Max != 100 {
		t.Errorf("Max = %v", s.Max)
	}
	if math.Abs(s.Mean-50.5) > 1e-9 {
		t.Errorf("Mean = %v", s.Mean)
	}
	if s.P50 < 50 || s.P50 > 51 {
		t.Errorf("P50 = %v", s.P50)
	}
	if !(s.P50 <= s.P75 && s.P75 <= s.P90 && s.P90 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.Max) {
		t.Errorf("percentiles not monotone: %+v", s)
	}
	empty := Summarize(nil)
	if empty.Count != 0 || empty.Mean != 0 {
		t.Errorf("empty summary = %+v", empty)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	errs := []float64{5, 1, 3}
	Summarize(errs)
	if errs[0] != 5 || errs[1] != 1 || errs[2] != 3 {
		t.Error("Summarize mutated its input")
	}
}

func TestBoxStats(t *testing.T) {
	errs := make([]float64, 1000)
	for i := range errs {
		errs[i] = float64(i)
	}
	b := BoxStats(errs)
	if !(b.P5 <= b.P25 && b.P25 <= b.P50 && b.P50 <= b.P75 && b.P75 <= b.P95) {
		t.Errorf("box not monotone: %+v", b)
	}
	if math.Abs(b.P50-499.5) > 1 {
		t.Errorf("P50 = %v", b.P50)
	}
}

func TestMeanMedianTrimmed(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 100}
	if got := Mean(vals); math.Abs(got-22) > 1e-12 {
		t.Errorf("Mean = %v", got)
	}
	if got := Median(vals); got != 3 {
		t.Errorf("Median = %v", got)
	}
	// Trim 1 from each side: mean of {2,3,4} = 3.
	if got := TrimmedMean(vals, 0.2); math.Abs(got-3) > 1e-12 {
		t.Errorf("TrimmedMean = %v", got)
	}
	// Trimming 50% from each side of 5 values leaves only the median.
	if got := TrimmedMean(vals, 0.5); math.Abs(got-3) > 1e-12 {
		t.Errorf("TrimmedMean(0.5) = %v, want 3", got)
	}
	// Degenerate trims (nothing would remain) fall back to the plain mean.
	if got := TrimmedMean(vals, 0.6); math.Abs(got-22) > 1e-12 {
		t.Errorf("degenerate TrimmedMean = %v, want 22", got)
	}
	if Mean(nil) != 0 || TrimmedMean(nil, 0.1) != 0 {
		t.Error("empty aggregates should be 0")
	}
}

func TestTrimmedMeanRobustProperty(t *testing.T) {
	f := func(base []float64) bool {
		if len(base) < 8 {
			return true
		}
		vals := make([]float64, len(base))
		for i, v := range base {
			vals[i] = math.Mod(math.Abs(v), 100)
		}
		// An enormous outlier moves the mean but not the trimmed mean much.
		spiked := append(append([]float64(nil), vals...), 1e12)
		return TrimmedMean(spiked, 0.25) <= Mean(spiked)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "Table X: demo", Header: SummaryHeader("model")}
	tb.AddRow(SummaryRow("CRN", Summary{P50: 2.52, P75: 6.17, P90: 23.04, P95: 44.85, P99: 991, Max: 51873, Mean: 111})...)
	out := tb.Render()
	for _, want := range []string{"Table X: demo", "50th", "CRN", "2.52", "51873"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title, header, rule, one row
		t.Errorf("render lines = %d, want 4:\n%s", len(lines), out)
	}
}

func TestRenderBoxes(t *testing.T) {
	names := []string{"PostgreSQL", "CRN"}
	boxes := []Box{
		{P5: 1, P25: 2, P50: 10, P75: 100, P95: 1000},
		{P5: 1, P25: 1.5, P50: 3, P75: 8, P95: 40},
	}
	out := RenderBoxes("demo", names, boxes, 60)
	if !strings.Contains(out, "PostgreSQL") || !strings.Contains(out, "CRN") {
		t.Fatalf("names missing:\n%s", out)
	}
	for _, marker := range []string{"[", "]", "|", "="} {
		if !strings.Contains(out, marker) {
			t.Errorf("marker %q missing:\n%s", marker, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title + 2 boxes + axis + labels
		t.Errorf("lines = %d:\n%s", len(lines), out)
	}
	// Degenerate inputs return empty.
	if RenderBoxes("x", []string{"a"}, nil, 60) != "" {
		t.Error("mismatched inputs should render empty")
	}
	if RenderBoxes("x", nil, nil, 60) != "" {
		t.Error("empty inputs should render empty")
	}
	// Tiny width is clamped, not panicking.
	if RenderBoxes("x", names, boxes, 1) == "" {
		t.Error("small width should still render")
	}
}

func TestFormatQ(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{1.234, "1.23"},
		{99.99, "99.99"},
		{100.4, "100"},
		{12345.6, "12346"},
		{math.Inf(1), "inf"},
	}
	for _, c := range cases {
		if got := FormatQ(c.v); got != c.want {
			t.Errorf("FormatQ(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}
