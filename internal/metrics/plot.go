package metrics

import (
	"fmt"
	"math"
	"strings"
)

// RenderBoxes draws the paper-style box plots as ASCII art on a shared
// logarithmic q-error axis: the box spans the 25th-75th percentiles,
// whiskers the 5th/95th, and '|' marks the median — matching the boxplot
// convention of the paper's Figures 5-13.
func RenderBoxes(title string, names []string, boxes []Box, width int) string {
	if len(names) != len(boxes) || len(boxes) == 0 {
		return ""
	}
	if width < 20 {
		width = 60
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, b := range boxes {
		lo = math.Min(lo, math.Max(b.P5, 1))
		hi = math.Max(hi, math.Max(b.P95, 1))
	}
	if hi <= lo {
		hi = lo * 10
	}
	logLo, logHi := math.Log10(lo), math.Log10(hi)
	span := logHi - logLo
	pos := func(v float64) int {
		if v < 1 {
			v = 1
		}
		x := (math.Log10(v) - logLo) / span
		p := int(x * float64(width-1))
		if p < 0 {
			p = 0
		}
		if p >= width {
			p = width - 1
		}
		return p
	}

	nameW := 0
	for _, n := range names {
		if len(n) > nameW {
			nameW = len(n)
		}
	}
	var sb strings.Builder
	sb.WriteString(title)
	sb.WriteString("\n")
	for i, b := range boxes {
		line := make([]byte, width)
		for j := range line {
			line[j] = ' '
		}
		p5, p25, p50, p75, p95 := pos(b.P5), pos(b.P25), pos(b.P50), pos(b.P75), pos(b.P95)
		for j := p5; j <= p95; j++ {
			line[j] = '-'
		}
		for j := p25; j <= p75; j++ {
			line[j] = '='
		}
		line[p5] = '['
		line[p95] = ']'
		line[p50] = '|'
		sb.WriteString(fmt.Sprintf("%-*s %s\n", nameW, names[i], string(line)))
	}
	// Axis with three log ticks.
	axis := make([]byte, width)
	for j := range axis {
		axis[j] = ' '
	}
	axis[0], axis[width-1], axis[(width-1)/2] = '+', '+', '+'
	mid := math.Pow(10, (logLo+logHi)/2)
	sb.WriteString(fmt.Sprintf("%-*s %s\n", nameW, "", string(axis)))
	sb.WriteString(fmt.Sprintf("%-*s %-*s%s%*s\n", nameW, "",
		width/2, FormatQ(lo), FormatQ(mid), width-width/2-len(FormatQ(mid)), FormatQ(hi)))
	return sb.String()
}
