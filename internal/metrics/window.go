package metrics

import (
	"math"
	"sort"
	"sync"
)

// RollingWindow is a fixed-capacity ring over the most recent observations
// with quantile snapshots, safe for concurrent use. It backs the online
// drift monitor: execution feedback streams q-errors of live estimates
// against arriving truths, and the windowed quantiles decide whether the
// serving model has drifted away from the workload. Observation is O(1)
// under a mutex; snapshots copy and sort the window (a few hundred floats
// at the default sizes), so they are cheap enough for health endpoints but
// should stay off per-request hot paths.
type RollingWindow struct {
	mu    sync.Mutex
	buf   []float64
	n     int // filled slots
	pos   int // next write position
	total uint64
}

// NewRollingWindow creates a window over the last `capacity` observations
// (capacity <= 0 is sized to 256).
func NewRollingWindow(capacity int) *RollingWindow {
	if capacity <= 0 {
		capacity = 256
	}
	return &RollingWindow{buf: make([]float64, capacity)}
}

// Observe appends one observation, displacing the oldest once full.
// Non-finite values are dropped — a NaN would poison every quantile.
func (w *RollingWindow) Observe(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	w.mu.Lock()
	w.buf[w.pos] = v
	w.pos = (w.pos + 1) % len(w.buf)
	if w.n < len(w.buf) {
		w.n++
	}
	w.total++
	w.mu.Unlock()
}

// Reset discards every windowed observation (the lifetime total survives).
func (w *RollingWindow) Reset() {
	w.mu.Lock()
	w.n = 0
	w.pos = 0
	w.mu.Unlock()
}

// Len returns the current number of windowed observations.
func (w *RollingWindow) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// Values returns the windowed observations oldest first — the serialization
// order Restore expects, so a save/restore round trip preserves which
// observation the next one displaces.
func (w *RollingWindow) Values() []float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]float64, 0, w.n)
	if w.n == len(w.buf) {
		out = append(out, w.buf[w.pos:]...) // wrapped: oldest sits at pos
		return append(out, w.buf[:w.pos]...)
	}
	return append(out, w.buf[:w.n]...)
}

// Restore replaces the window's contents with vs (oldest first), keeping at
// most the window capacity of the newest values. The lifetime total resumes
// at the restored count.
func (w *RollingWindow) Restore(vs []float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if over := len(vs) - len(w.buf); over > 0 {
		vs = vs[over:]
	}
	w.n = copy(w.buf, vs)
	w.pos = w.n % len(w.buf)
	w.total = uint64(len(vs))
}

// Quantile returns the p'th percentile (0..100) over the window, or NaN
// for an empty window.
func (w *RollingWindow) Quantile(p float64) float64 {
	w.mu.Lock()
	sorted := append([]float64(nil), w.buf[:w.n]...)
	w.mu.Unlock()
	if len(sorted) == 0 {
		return math.NaN()
	}
	sort.Float64s(sorted)
	return Percentile(sorted, p)
}

// WindowSnapshot is a point-in-time summary of a RollingWindow, shaped for
// health endpoints (zero values, not NaN, for an empty window).
type WindowSnapshot struct {
	Count int     `json:"count"` // observations currently windowed
	Total uint64  `json:"total"` // lifetime observations
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
}

// Snapshot computes the windowed summary.
func (w *RollingWindow) Snapshot() WindowSnapshot {
	w.mu.Lock()
	sorted := append([]float64(nil), w.buf[:w.n]...)
	total := w.total
	w.mu.Unlock()
	snap := WindowSnapshot{Count: len(sorted), Total: total}
	if len(sorted) == 0 {
		return snap
	}
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	snap.P50 = Percentile(sorted, 50)
	snap.P90 = Percentile(sorted, 90)
	snap.P99 = Percentile(sorted, 99)
	snap.Max = sorted[len(sorted)-1]
	snap.Mean = sum / float64(len(sorted))
	return snap
}
