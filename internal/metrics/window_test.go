package metrics

import (
	"math"
	"sync"
	"testing"
)

func TestRollingWindowQuantiles(t *testing.T) {
	w := NewRollingWindow(4)
	if !math.IsNaN(w.Quantile(50)) {
		t.Error("empty window quantile should be NaN")
	}
	if snap := w.Snapshot(); snap.Count != 0 || snap.P50 != 0 {
		t.Errorf("empty snapshot = %+v", snap)
	}
	for _, v := range []float64{1, 2, 3, 4} {
		w.Observe(v)
	}
	if got := w.Quantile(50); got != 2.5 {
		t.Errorf("median of 1..4 = %v", got)
	}
	// Ring displacement: 5 and 6 push out 1 and 2.
	w.Observe(5)
	w.Observe(6)
	if got := w.Quantile(0); got != 3 {
		t.Errorf("window min after displacement = %v, want 3", got)
	}
	snap := w.Snapshot()
	if snap.Count != 4 || snap.Total != 6 || snap.Max != 6 || snap.Mean != 4.5 {
		t.Errorf("snapshot = %+v", snap)
	}
	if snap.P50 != 4.5 {
		t.Errorf("windowed median = %v, want 4.5", snap.P50)
	}
}

func TestRollingWindowDropsNonFinite(t *testing.T) {
	w := NewRollingWindow(8)
	w.Observe(math.NaN())
	w.Observe(math.Inf(1))
	w.Observe(2)
	if w.Len() != 1 {
		t.Fatalf("len = %d, want 1 (non-finite dropped)", w.Len())
	}
	if got := w.Quantile(50); got != 2 {
		t.Errorf("median = %v", got)
	}
}

func TestRollingWindowConcurrent(t *testing.T) {
	w := NewRollingWindow(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				w.Observe(float64(g*200 + i))
				if i%50 == 0 {
					_ = w.Snapshot()
					_ = w.Quantile(90)
				}
			}
		}(g)
	}
	wg.Wait()
	snap := w.Snapshot()
	if snap.Count != 64 || snap.Total != 1600 {
		t.Errorf("snapshot = %+v", snap)
	}
}
