// Package mscn implements the MSCN baseline (Kipf et al., "Learned
// Cardinalities", CIDR 2019), the state-of-the-art learned cardinality
// estimator the paper compares against (§4.1, §6).
//
// MSCN is a multi-set convolutional network: a query is represented as three
// separate sets — tables, joins and predicates — each featurized in its own
// vector format and compressed by its own two-layer set module with average
// pooling; the three pooled vectors are concatenated and passed through a
// two-layer output network whose sigmoid output encodes the cardinality on a
// normalized log scale.
//
// The optional per-table materialized sample bitmaps of the original paper
// (1000 rows per base table; "MSCN1000" in the containment paper's §6.6) are
// supported through Config.NumSamples.
package mscn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"math/rand"
	"time"

	"crn/internal/db"
	"crn/internal/metrics"
	"crn/internal/nn"
	"crn/internal/query"
	"crn/internal/schema"
)

// Config collects model and training hyperparameters.
type Config struct {
	Hidden     int
	LR         float64
	BatchSize  int
	Epochs     int
	Patience   int
	Seed       int64
	NumSamples int // per-table sample bitmap width; 0 disables bitmaps
	// LRDecay, when in (0,1), multiplies the learning rate once validation
	// has stalled for Patience/2 epochs (reduce-on-plateau).
	LRDecay float64
}

// DefaultConfig returns repository-scale defaults mirroring the MSCN paper
// (hidden width scaled to the synthetic database size).
func DefaultConfig() Config {
	return Config{
		Hidden:    64,
		LR:        0.001,
		BatchSize: 64,
		Epochs:    60,
		Patience:  10,
		Seed:      1,
	}
}

// Featurizer converts queries into MSCN's three feature sets. It is bound
// to a schema and database snapshot, and — when sampling is enabled — to a
// fixed set of sampled base-table rows.
type Featurizer struct {
	s *schema.Schema
	d *db.Database

	numSamples int
	sampleRows map[string][]int32

	dimT, dimJ, dimP int
}

// NewFeaturizer builds a featurizer. numSamples > 0 materializes that many
// uniformly sampled rows per base table (without replacement where
// possible) for predicate bitmaps, as in the MSCN paper's sampling variant.
func NewFeaturizer(s *schema.Schema, d *db.Database, numSamples int, seed int64) (*Featurizer, error) {
	if !d.Frozen() {
		return nil, fmt.Errorf("mscn: database must be frozen")
	}
	f := &Featurizer{
		s:          s,
		d:          d,
		numSamples: numSamples,
		sampleRows: make(map[string][]int32),
		dimT:       s.NumTables() + numSamples,
		dimJ:       s.NumJoins(),
		dimP:       s.NumColumns() + schema.NumOperators + 1,
	}
	if numSamples > 0 {
		rng := rand.New(rand.NewSource(seed))
		for _, td := range s.Tables {
			n := d.NumRows(td.Name)
			rows := make([]int32, numSamples)
			if n > 0 {
				perm := rng.Perm(n)
				for i := 0; i < numSamples; i++ {
					rows[i] = int32(perm[i%n])
				}
			}
			f.sampleRows[td.Name] = rows
		}
	}
	return f, nil
}

// Dims returns the element dimensions of the table, join and predicate sets.
func (f *Featurizer) Dims() (dimT, dimJ, dimP int) { return f.dimT, f.dimJ, f.dimP }

// Encode converts a query into its three MSCN feature sets. Empty join or
// predicate sets are represented by a single zero vector so that average
// pooling stays defined (as in the reference implementation).
func (f *Featurizer) Encode(q query.Query) (tv, jv, pv [][]float64, err error) {
	for _, t := range q.Tables {
		id, ok := f.s.TableID(t)
		if !ok {
			return nil, nil, nil, fmt.Errorf("mscn: unknown table %q", t)
		}
		v := make([]float64, f.dimT)
		v[id] = 1
		if f.numSamples > 0 {
			if err := f.fillBitmap(v[f.s.NumTables():], t, q.PredsOn(t)); err != nil {
				return nil, nil, nil, err
			}
		}
		tv = append(tv, v)
	}
	for _, j := range q.Joins {
		id, ok := f.s.JoinID(j.Left, j.Right)
		if !ok {
			return nil, nil, nil, fmt.Errorf("mscn: %v is not a schema join", j)
		}
		v := make([]float64, f.dimJ)
		v[id] = 1
		jv = append(jv, v)
	}
	if len(jv) == 0 {
		jv = append(jv, make([]float64, f.dimJ))
	}
	for _, p := range q.Preds {
		cid, ok := f.s.ColumnID(p.Col)
		if !ok {
			return nil, nil, nil, fmt.Errorf("mscn: unknown column %v", p.Col)
		}
		oid, ok := f.s.OperatorID(p.Op)
		if !ok {
			return nil, nil, nil, fmt.Errorf("mscn: unknown operator %q", p.Op)
		}
		stats, ok := f.d.Stats(p.Col)
		if !ok {
			return nil, nil, nil, fmt.Errorf("mscn: no statistics for %v", p.Col)
		}
		v := make([]float64, f.dimP)
		v[cid] = 1
		v[f.s.NumColumns()+oid] = 1
		v[f.dimP-1] = stats.Normalize(p.Val)
		pv = append(pv, v)
	}
	if len(pv) == 0 {
		pv = append(pv, make([]float64, f.dimP))
	}
	return tv, jv, pv, nil
}

// fillBitmap evaluates the query's predicates on `table` over the
// materialized sample rows, writing one bit per sample.
func (f *Featurizer) fillBitmap(dst []float64, table string, preds []query.Predicate) error {
	t := f.d.Table(table)
	rows := f.sampleRows[table]
	cols := make([][]db.Value, len(preds))
	for i, p := range preds {
		cols[i] = t.Column(p.Col.Column)
		if cols[i] == nil {
			return fmt.Errorf("mscn: unknown column %v", p.Col)
		}
	}
	if t.NumRows() == 0 {
		return nil
	}
	for si, r := range rows {
		bit := 1.0
		for i, p := range preds {
			if !p.Matches(cols[i][r]) {
				bit = 0
				break
			}
		}
		dst[si] = bit
	}
	return nil
}

// Sample is one training example: the three encoded sets and the true
// cardinality.
type Sample struct {
	T, J, P [][]float64
	Card    float64
}

// EncodeSample featurizes a query together with its cardinality label.
func (f *Featurizer) EncodeSample(q query.Query, card float64) (Sample, error) {
	tv, jv, pv, err := f.Encode(q)
	if err != nil {
		return Sample{}, err
	}
	return Sample{T: tv, J: jv, P: pv, Card: card}, nil
}

// EpochStats records one training epoch.
type EpochStats struct {
	Epoch     int
	TrainLoss float64
	ValQError float64
	Duration  time.Duration
}

// Model is the MSCN network.
type Model struct {
	cfg              Config
	dimT, dimJ, dimP int

	encT, encJ, encP *nn.DeepSetEncoder
	out1, out2       *nn.Dense

	logScale float64 // ln(maxCard+1) normalization, fixed at training time
}

// NewModel initializes an untrained MSCN for the given set dimensions.
func NewModel(cfg Config, dimT, dimJ, dimP int) *Model {
	if cfg.Hidden <= 0 {
		panic("mscn: Hidden must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	h := cfg.Hidden
	return &Model{
		cfg:  cfg,
		dimT: dimT, dimJ: dimJ, dimP: dimP,
		encT: nn.NewDeepSetEncoder(rng, dimT, h, h),
		encJ: nn.NewDeepSetEncoder(rng, dimJ, h, h),
		encP: nn.NewDeepSetEncoder(rng, dimP, h, h),
		out1: nn.NewDense(rng, 3*h, h),
		out2: nn.NewDense(rng, h, 1),
	}
}

// Config returns the model configuration.
func (m *Model) Config() Config { return m.cfg }

// LogScale returns the cardinality normalization constant ln(maxCard+1).
func (m *Model) LogScale() float64 { return m.logScale }

// Params returns all trainable tensors.
func (m *Model) Params() []*nn.Param {
	var out []*nn.Param
	out = append(out, m.encT.Params()...)
	out = append(out, m.encJ.Params()...)
	out = append(out, m.encP.Params()...)
	out = append(out, m.out1.Params()...)
	out = append(out, m.out2.Params()...)
	return out
}

// NumParams returns the scalar parameter count.
func (m *Model) NumParams() int { return nn.NumParams(m.Params()) }

type forwardCache struct {
	bT, bJ, bP nn.SetBatch
	cT, cJ, cP *nn.DeepSetCache
	pooled     *nn.Matrix // n×3H concatenation
	a1         *nn.Matrix
	sigmoids   *nn.Matrix
}

func (m *Model) forward(samples []Sample) *forwardCache {
	n := len(samples)
	ts := make([][][]float64, n)
	js := make([][][]float64, n)
	ps := make([][][]float64, n)
	for i, s := range samples {
		ts[i], js[i], ps[i] = s.T, s.J, s.P
	}
	c := &forwardCache{
		bT: nn.BuildSetBatch(ts, m.dimT),
		bJ: nn.BuildSetBatch(js, m.dimJ),
		bP: nn.BuildSetBatch(ps, m.dimP),
	}
	var pT, pJ, pP *nn.Matrix
	pT, c.cT = m.encT.Forward(c.bT)
	pJ, c.cJ = m.encJ.Forward(c.bJ)
	pP, c.cP = m.encP.Forward(c.bP)

	h := m.cfg.Hidden
	c.pooled = nn.NewMatrix(n, 3*h)
	for i := 0; i < n; i++ {
		dst := c.pooled.Row(i)
		copy(dst[:h], pT.Row(i))
		copy(dst[h:2*h], pJ.Row(i))
		copy(dst[2*h:], pP.Row(i))
	}
	c.a1 = nn.ReLUForward(m.out1.Forward(c.pooled))
	c.sigmoids = nn.SigmoidForward(m.out2.Forward(c.a1))
	return c
}

func (m *Model) backward(c *forwardCache, dOut *nn.Matrix) {
	dPre := nn.SigmoidBackward(dOut, c.sigmoids)
	dA1 := m.out2.Backward(c.a1, dPre)
	dZ1 := nn.ReLUBackward(dA1, c.a1)
	dPooled := m.out1.Backward(c.pooled, dZ1)

	h := m.cfg.Hidden
	n := dPooled.Rows
	dT := nn.NewMatrix(n, h)
	dJ := nn.NewMatrix(n, h)
	dP := nn.NewMatrix(n, h)
	for i := 0; i < n; i++ {
		src := dPooled.Row(i)
		copy(dT.Row(i), src[:h])
		copy(dJ.Row(i), src[h:2*h])
		copy(dP.Row(i), src[2*h:])
	}
	m.encT.Backward(c.cT, dT)
	m.encJ.Backward(c.cJ, dJ)
	m.encP.Backward(c.cP, dP)
}

// normalize maps a cardinality to the model's [0,1] log scale.
func (m *Model) normalize(card float64) float64 {
	if card < 0 {
		card = 0
	}
	return math.Log(card+1) / m.logScale
}

// denormalize inverts normalize.
func (m *Model) denormalize(s float64) float64 {
	return math.Exp(s*m.logScale) - 1
}

// EstimateCard predicts the cardinality of one encoded sample.
func (m *Model) EstimateCard(s Sample) float64 {
	c := m.forward([]Sample{s})
	return m.denormalize(c.sigmoids.Data[0])
}

// EstimateCardBatch predicts cardinalities for a batch of encoded samples.
func (m *Model) EstimateCardBatch(samples []Sample) []float64 {
	c := m.forward(samples)
	out := make([]float64, len(samples))
	for i, s := range c.sigmoids.Data {
		out[i] = m.denormalize(s)
	}
	return out
}

// Train fits the model, early-stopping on val (mean cardinality q-error).
func (m *Model) Train(train, val []Sample, progress func(EpochStats)) ([]EpochStats, error) {
	if len(train) == 0 {
		return nil, fmt.Errorf("mscn: empty training set")
	}
	maxCard := 1.0
	for _, s := range train {
		if s.Card > maxCard {
			maxCard = s.Card
		}
	}
	m.logScale = math.Log(maxCard + 1)

	loss := nn.LogQErrorLoss{Scale: m.logScale}
	opt := nn.NewAdam(m.cfg.LR)
	rng := rand.New(rand.NewSource(m.cfg.Seed + 1))
	stopper := &nn.EarlyStopper{Patience: m.cfg.Patience}

	best := paramSnapshots(m.Params())
	bestVal := math.Inf(1)
	badStreak := 0
	var stats []EpochStats
	for epoch := 1; epoch <= m.cfg.Epochs; epoch++ {
		start := time.Now()
		perm := nn.Shuffle(rng, len(train))
		var totalLoss float64
		var batches int
		for _, idx := range nn.Batches(perm, m.cfg.BatchSize) {
			batch := make([]Sample, len(idx))
			targets := make([]float64, len(idx))
			for i, j := range idx {
				batch[i] = train[j]
				targets[i] = m.normalize(train[j].Card)
			}
			c := m.forward(batch)
			l, grad := loss.Eval(c.sigmoids.Data, targets)
			totalLoss += l
			batches++
			m.backward(c, &nn.Matrix{Rows: len(batch), Cols: 1, Data: grad})
			opt.Step(m.Params())
		}
		valErr := m.ValidationQError(val)
		st := EpochStats{
			Epoch:     epoch,
			TrainLoss: totalLoss / float64(batches),
			ValQError: valErr,
			Duration:  time.Since(start),
		}
		stats = append(stats, st)
		if progress != nil {
			progress(st)
		}
		if len(val) > 0 && m.cfg.Patience > 0 {
			if valErr < bestVal {
				bestVal = valErr
				best = paramSnapshots(m.Params())
				badStreak = 0
			} else {
				badStreak++
				if m.cfg.LRDecay > 0 && m.cfg.LRDecay < 1 && badStreak == m.cfg.Patience/2 {
					opt.LR *= m.cfg.LRDecay
				}
			}
			if stopper.Observe(epoch, valErr) {
				break
			}
		}
	}
	if len(val) > 0 && m.cfg.Patience > 0 {
		for i, p := range m.Params() {
			if err := p.Restore(best[i]); err != nil {
				return stats, err
			}
		}
	}
	return stats, nil
}

// ValidationQError computes the mean cardinality q-error over a sample set.
func (m *Model) ValidationQError(val []Sample) float64 {
	if len(val) == 0 {
		return math.NaN()
	}
	const chunk = 512
	var sum float64
	for lo := 0; lo < len(val); lo += chunk {
		hi := lo + chunk
		if hi > len(val) {
			hi = len(val)
		}
		preds := m.EstimateCardBatch(val[lo:hi])
		for i, p := range preds {
			sum += metrics.CardQError(val[lo+i].Card, p)
		}
	}
	return sum / float64(len(val))
}

func paramSnapshots(params []*nn.Param) []nn.ParamSnapshot {
	out := make([]nn.ParamSnapshot, len(params))
	for i, p := range params {
		out[i] = p.Snapshot()
	}
	return out
}

// Estimator pairs a featurizer with a trained model to implement the
// query-level cardinality-estimation interface used by the experiments.
type Estimator struct {
	F *Featurizer
	M *Model
}

// EstimateCard featurizes the query and predicts its cardinality.
func (e *Estimator) EstimateCard(q query.Query) (float64, error) {
	tv, jv, pv, err := e.F.Encode(q)
	if err != nil {
		return 0, err
	}
	return e.M.EstimateCard(Sample{T: tv, J: jv, P: pv}), nil
}

// EstimateCards featurizes and predicts a batch of queries in one forward
// pass (the contain.BatchCardEstimator fast path).
func (e *Estimator) EstimateCards(queries []query.Query) ([]float64, error) {
	samples := make([]Sample, len(queries))
	for i, q := range queries {
		tv, jv, pv, err := e.F.Encode(q)
		if err != nil {
			return nil, err
		}
		samples[i] = Sample{T: tv, J: jv, P: pv}
	}
	return e.M.EstimateCardBatch(samples), nil
}

// modelBlob is the gob wire format of a serialized model.
type modelBlob struct {
	Cfg              Config
	DimT, DimJ, DimP int
	LogScale         float64
	Params           []byte
}

// Save serializes the model configuration, normalization and weights.
func (m *Model) Save() ([]byte, error) {
	params, err := nn.EncodeParams(m.Params())
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	blob := modelBlob{Cfg: m.cfg, DimT: m.dimT, DimJ: m.dimJ, DimP: m.dimP, LogScale: m.logScale, Params: params}
	if err := gob.NewEncoder(&buf).Encode(blob); err != nil {
		return nil, fmt.Errorf("mscn: save: %w", err)
	}
	return buf.Bytes(), nil
}

// Load reconstructs a model serialized by Save.
func Load(data []byte) (*Model, error) {
	var blob modelBlob
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&blob); err != nil {
		return nil, fmt.Errorf("mscn: load: %w", err)
	}
	m := NewModel(blob.Cfg, blob.DimT, blob.DimJ, blob.DimP)
	m.logScale = blob.LogScale
	if err := nn.DecodeParams(blob.Params, m.Params()); err != nil {
		return nil, err
	}
	return m, nil
}
