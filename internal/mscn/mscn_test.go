package mscn

import (
	"math"
	"math/rand"
	"testing"

	"crn/internal/datagen"
	"crn/internal/db"
	"crn/internal/exec"
	"crn/internal/nn"
	"crn/internal/schema"
	"crn/internal/sqlparse"
)

var s = schema.IMDB()

func testDB(t *testing.T) *db.Database {
	t.Helper()
	cfg := datagen.DefaultConfig()
	cfg.Titles = 200
	d, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestFeaturizerDims(t *testing.T) {
	d := testDB(t)
	f, err := NewFeaturizer(s, d, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	dimT, dimJ, dimP := f.Dims()
	if dimT != s.NumTables() {
		t.Errorf("dimT = %d", dimT)
	}
	if dimJ != s.NumJoins() {
		t.Errorf("dimJ = %d", dimJ)
	}
	if dimP != s.NumColumns()+schema.NumOperators+1 {
		t.Errorf("dimP = %d", dimP)
	}
	fs, err := NewFeaturizer(s, d, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	dimT, _, _ = fs.Dims()
	if dimT != s.NumTables()+100 {
		t.Errorf("sampled dimT = %d", dimT)
	}
}

func TestEncodeShapes(t *testing.T) {
	d := testDB(t)
	f, err := NewFeaturizer(s, d, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	q := sqlparse.MustParse(s, `SELECT * FROM title, cast_info
		WHERE title.id = cast_info.movie_id AND title.kind_id = 2`)
	tv, jv, pv, err := f.Encode(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(tv) != 2 || len(jv) != 1 || len(pv) != 1 {
		t.Errorf("set sizes = %d,%d,%d", len(tv), len(jv), len(pv))
	}
	// Empty joins/predicates become a single zero vector.
	q0 := sqlparse.MustParse(s, "SELECT * FROM title")
	_, jv0, pv0, err := f.Encode(q0)
	if err != nil {
		t.Fatal(err)
	}
	if len(jv0) != 1 || len(pv0) != 1 {
		t.Fatalf("padding sizes = %d,%d", len(jv0), len(pv0))
	}
	for _, v := range append(jv0, pv0...) {
		for _, x := range v {
			if x != 0 {
				t.Fatal("padding vector should be all zero")
			}
		}
	}
}

func TestSampleBitmapsReflectSelectivity(t *testing.T) {
	d := testDB(t)
	const samples = 64
	f, err := NewFeaturizer(s, d, samples, 1)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := exec.New(d)
	if err != nil {
		t.Fatal(err)
	}
	q := sqlparse.MustParse(s, "SELECT * FROM title WHERE title.production_year > 1950")
	tv, _, _, err := f.Encode(q)
	if err != nil {
		t.Fatal(err)
	}
	bits := tv[0][s.NumTables():]
	var on float64
	for _, b := range bits {
		on += b
	}
	frac := on / samples
	sel, err := ex.SelectivityOn(schema.Title, q.PredsOn(schema.Title))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(frac-sel) > 0.25 {
		t.Errorf("bitmap fraction %v too far from true selectivity %v", frac, sel)
	}
	// Query with no predicates: all sampled bits on.
	q0 := sqlparse.MustParse(s, "SELECT * FROM title")
	tv0, _, _, err := f.Encode(q0)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range tv0[0][s.NumTables():] {
		if b != 1 {
			t.Fatal("unfiltered bitmap should be all ones")
		}
	}
}

func TestModelGradCheck(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hidden = 4
	m := NewModel(cfg, 3, 2, 4)
	m.logScale = math.Log(1000)
	rng := rand.New(rand.NewSource(5))
	randSet := func(dim, n int) [][]float64 {
		out := make([][]float64, n)
		for i := range out {
			v := make([]float64, dim)
			for j := range v {
				v[j] = rng.Float64()
			}
			out[i] = v
		}
		return out
	}
	samples := []Sample{
		{T: randSet(3, 2), J: randSet(2, 1), P: randSet(4, 3), Card: 50},
		{T: randSet(3, 1), J: randSet(2, 1), P: randSet(4, 1), Card: 500},
	}
	targets := []float64{m.normalize(50), m.normalize(500)}
	loss := nn.MSELoss{}
	forward := func() float64 {
		c := m.forward(samples)
		l, _ := loss.Eval(c.sigmoids.Data, targets)
		return l
	}
	c := m.forward(samples)
	_, grad := loss.Eval(c.sigmoids.Data, targets)
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
	m.backward(c, &nn.Matrix{Rows: len(samples), Cols: 1, Data: grad})
	const h = 1e-6
	for pi, p := range m.Params() {
		for i := range p.W {
			orig := p.W[i]
			p.W[i] = orig + h
			fp := forward()
			p.W[i] = orig - h
			fm := forward()
			p.W[i] = orig
			num := (fp - fm) / (2 * h)
			if diff := math.Abs(num - p.Grad[i]); diff > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("param %d[%d]: analytic %v numeric %v", pi, i, p.Grad[i], num)
			}
		}
	}
}

func TestTrainOnRealQueries(t *testing.T) {
	d := testDB(t)
	f, err := NewFeaturizer(s, d, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := exec.New(d)
	if err != nil {
		t.Fatal(err)
	}
	// A small family of single-table range queries: learnable mapping from
	// predicate value to cardinality.
	var train, val []Sample
	for year := int64(1880); year <= 2005; year += 1 {
		q := sqlparse.MustParse(s, "SELECT * FROM title WHERE title.production_year > "+itoa(year))
		card, err := ex.Cardinality(q)
		if err != nil {
			t.Fatal(err)
		}
		sm, err := f.EncodeSample(q, float64(card))
		if err != nil {
			t.Fatal(err)
		}
		if year%5 == 0 {
			val = append(val, sm)
		} else {
			train = append(train, sm)
		}
	}
	cfg := DefaultConfig()
	cfg.Hidden = 24
	cfg.Epochs = 60
	cfg.Patience = 60
	m := NewModel(cfg, f.dimT, f.dimJ, f.dimP)
	if _, err := m.Train(train, val, nil); err != nil {
		t.Fatal(err)
	}
	got := m.ValidationQError(val)
	if got > 3 {
		t.Errorf("validation q-error after training = %v, want < 3", got)
	}
}

func itoa(v int64) string {
	// small positive ints only
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func TestEstimatorInterface(t *testing.T) {
	d := testDB(t)
	f, err := NewFeaturizer(s, d, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Hidden = 8
	m := NewModel(cfg, f.dimT, f.dimJ, f.dimP)
	m.logScale = math.Log(1000)
	est := &Estimator{F: f, M: m}
	card, err := est.EstimateCard(sqlparse.MustParse(s, "SELECT * FROM title"))
	if err != nil {
		t.Fatal(err)
	}
	if card < 0 || math.IsNaN(card) {
		t.Errorf("estimate = %v", card)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	d := testDB(t)
	f, err := NewFeaturizer(s, d, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Hidden = 8
	m := NewModel(cfg, f.dimT, f.dimJ, f.dimP)
	m.logScale = math.Log(500)
	q := sqlparse.MustParse(s, "SELECT * FROM title WHERE title.kind_id = 3")
	sm, err := f.EncodeSample(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := m.EstimateCard(sm)
	blob, err := m.Save()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Load(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got := m2.EstimateCard(sm); got != want {
		t.Errorf("loaded model predicts %v, want %v", got, want)
	}
	if _, err := Load([]byte("nope")); err == nil {
		t.Error("corrupt blob should fail")
	}
}

func TestTrainEmptyFails(t *testing.T) {
	m := NewModel(DefaultConfig(), 2, 2, 2)
	if _, err := m.Train(nil, nil, nil); err == nil {
		t.Error("empty training set should fail")
	}
}

func TestNormalizeDenormalizeInverse(t *testing.T) {
	m := NewModel(DefaultConfig(), 2, 2, 2)
	m.logScale = math.Log(10001)
	for _, card := range []float64{0, 1, 42, 10000} {
		s := m.normalize(card)
		back := m.denormalize(s)
		if math.Abs(back-card) > 1e-6*(1+card) {
			t.Errorf("normalize/denormalize(%v) = %v", card, back)
		}
		if s < 0 || s > 1 {
			t.Errorf("normalized value %v outside [0,1]", s)
		}
	}
}

func TestFeaturizerRequiresFrozenDB(t *testing.T) {
	if _, err := NewFeaturizer(s, db.NewDatabase(s), 0, 1); err == nil {
		t.Error("unfrozen database should be rejected")
	}
}
