package nn

import (
	"math/rand"
	"testing"
)

func benchMatrices(rows, inner, cols int) (*Matrix, *Matrix, *Matrix) {
	rng := rand.New(rand.NewSource(1))
	a := NewMatrix(rows, inner)
	b := NewMatrix(inner, cols)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	return NewMatrix(rows, cols), a, b
}

func BenchmarkMatMul128(b *testing.B) {
	dst, x, y := benchMatrices(128, 128, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(dst, x, y)
	}
}

func BenchmarkMatMulBatchForward(b *testing.B) {
	// The CRN training shape: batch of set elements (640×70) into H=64.
	dst, x, y := benchMatrices(640, 70, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(dst, x, y)
	}
}

func BenchmarkDenseForwardBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	d := NewDense(rng, 256, 128)
	x := NewMatrix(64, 256)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		y := d.Forward(x)
		d.Backward(x, y)
	}
}

func BenchmarkSetEncoderForward(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	enc := NewSetEncoder(rng, 70, 64)
	samples := make([][][]float64, 64)
	for i := range samples {
		set := make([][]float64, 5)
		for j := range set {
			v := make([]float64, 70)
			for k := range v {
				v[k] = rng.Float64()
			}
			set[j] = v
		}
		samples[i] = set
	}
	batch := BuildSetBatch(samples, 70)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.Forward(batch)
	}
}

func BenchmarkAdamStep(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	d := NewDense(rng, 256, 256)
	for _, p := range d.Params() {
		for i := range p.Grad {
			p.Grad[i] = rng.NormFloat64()
		}
	}
	opt := NewAdam(0.001)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Step(d.Params())
	}
}

func BenchmarkQErrorLoss(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	pred := make([]float64, 128)
	target := make([]float64, 128)
	for i := range pred {
		pred[i] = rng.Float64()
		target[i] = rng.Float64()
	}
	loss := QErrorLoss{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loss.Eval(pred, target)
	}
}
