package nn

import "math/rand"

// DeepSetEncoder is a multi-layer variant of SetEncoder: every element
// vector passes through a stack of Dense+ReLU layers before average pooling.
// MSCN's per-set modules are two such layers (Kipf et al. §4); CRN's are one
// (SetEncoder is the special case of depth 1).
type DeepSetEncoder struct {
	Layers []*Dense
}

// NewDeepSetEncoder builds an encoder with the given layer widths:
// dims[0] is the element dimension, dims[len-1] the pooled output width.
func NewDeepSetEncoder(rng *rand.Rand, dims ...int) *DeepSetEncoder {
	if len(dims) < 2 {
		panic("nn: DeepSetEncoder needs at least input and output dims")
	}
	e := &DeepSetEncoder{}
	for i := 0; i+1 < len(dims); i++ {
		e.Layers = append(e.Layers, NewDense(rng, dims[i], dims[i+1]))
	}
	return e
}

// DeepSetCache holds the forward intermediates needed for Backward; one
// cache per forward call keeps the encoder safe for concurrent prediction.
type DeepSetCache struct {
	batch       SetBatch
	activations []*Matrix // post-ReLU output of each layer
}

// Forward returns pooled per-sample representations and the cache for
// Backward.
func (e *DeepSetEncoder) Forward(b SetBatch) (*Matrix, *DeepSetCache) {
	cache := &DeepSetCache{batch: b}
	x := b.X
	for _, layer := range e.Layers {
		y := ReLUForward(layer.Forward(x))
		cache.activations = append(cache.activations, y)
		x = y
	}
	out := e.Layers[len(e.Layers)-1].Out
	n := b.NumSamples()
	pooled := NewMatrix(n, out)
	for i := 0; i < n; i++ {
		lo, hi := b.Offsets[i], b.Offsets[i+1]
		if hi == lo {
			continue
		}
		dst := pooled.Row(i)
		for r := lo; r < hi; r++ {
			src := x.Row(r)
			for j, v := range src {
				dst[j] += v
			}
		}
		inv := 1 / float64(hi-lo)
		for j := range dst {
			dst[j] *= inv
		}
	}
	return pooled, cache
}

// Backward propagates dPooled through pooling and all layers, accumulating
// parameter gradients.
func (e *DeepSetEncoder) Backward(cache *DeepSetCache, dPooled *Matrix) {
	last := cache.activations[len(cache.activations)-1]
	dAct := NewMatrix(last.Rows, last.Cols)
	for i := 0; i < cache.batch.NumSamples(); i++ {
		lo, hi := cache.batch.Offsets[i], cache.batch.Offsets[i+1]
		if hi == lo {
			continue
		}
		inv := 1 / float64(hi-lo)
		src := dPooled.Row(i)
		for r := lo; r < hi; r++ {
			dst := dAct.Row(r)
			for j, v := range src {
				dst[j] = v * inv
			}
		}
	}
	for li := len(e.Layers) - 1; li >= 0; li-- {
		dPre := ReLUBackward(dAct, cache.activations[li])
		var input *Matrix
		if li == 0 {
			input = cache.batch.X
		} else {
			input = cache.activations[li-1]
		}
		dAct = e.Layers[li].Backward(input, dPre)
	}
}

// Params returns the trainable tensors of all layers.
func (e *DeepSetEncoder) Params() []*Param {
	var out []*Param
	for _, l := range e.Layers {
		out = append(out, l.Params()...)
	}
	return out
}
