package nn

// Kernel dispatch. The matrix kernels in matrix.go and the fused dense/ReLU
// row loops in layers.go funnel every inner loop through the function
// variables below. At package init exactly one implementation set is
// selected — hand-written AVX2+FMA assembly when the CPU supports it (amd64
// builds without the noasm tag; see kernels_amd64.go), the portable Go
// fallbacks in this file otherwise — and the choice never changes for the
// life of the process. Every call site shares the one dispatched set, so
// coalesced, cached, resident and plain serving paths stay mutually
// bit-identical whatever was selected.
//
// Equivalence discipline: the vector implementations may fuse
// multiply-adds (one rounding instead of two) and reassociate sums across
// lanes, so axpy/axpy4/dot/dot4 agree with the generic fallbacks to the
// tolerance gates in kernels_test.go / kernels_simd_test.go rather than
// bitwise — exactly the contract the register-blocked kernels already have
// against the naive references. addBiasReLU and reluMask perform no
// reassociation (elementwise add, compare, mask) and are pinned
// bit-identical to the generic loops.

var (
	// axpy computes dst[j] += a·x[j]. len(x) must be ≥ len(dst).
	axpy func(dst []float64, a float64, x []float64) = axpyGeneric

	// axpy2 computes dst[j] += a0·b0[j] + a1·b1[j] — the CRN head's
	// per-hidden-unit update (see Axpy2). Both b slices must be ≥ len(dst).
	axpy2 func(dst, b0, b1 []float64, a0, a1 float64) = axpy2Generic

	// axpy4 computes dst[j] += a0·b0[j] + a1·b1[j] + a2·b2[j] + a3·b3[j] —
	// the quad-row update of MatMul's dense path and MatMulTransAAcc. Every
	// b slice must be ≥ len(dst).
	axpy4 func(dst, b0, b1, b2, b3 []float64, a0, a1, a2, a3 float64) = axpy4Generic

	// vecMat accumulates dst[j] += Σ_k a[k]·b[k*len(dst)+j] — one dense
	// output row of MatMul in a single call, so the vector implementation
	// can keep a register block of dst columns live across the whole k
	// loop. b is row-major len(a)×len(dst); len(b) must be ≥
	// len(a)·len(dst). Each dst element is accumulated serially in k order,
	// preserving the determinism invariant of matrix.go.
	vecMat func(dst, a, b []float64) = vecMatGeneric

	// dot computes Σ a[k]·b[k] over len(a). len(b) must be ≥ len(a).
	dot func(a, b []float64) float64 = dotGeneric

	// dot4 computes the four dot products of a against b0..b3 in one pass —
	// the quad-column update of MatMulTransB. Every b slice must be ≥ len(a).
	dot4 func(a, b0, b1, b2, b3 []float64) (s0, s1, s2, s3 float64) = dot4Generic

	// addBiasReLU computes row[j] = max(0, row[j]+bias[j]) — the fused
	// epilogue of Dense.ForwardReLU. len(bias) must be ≥ len(row).
	// Bit-identical across implementations.
	addBiasReLU func(row, bias []float64) = addBiasReLUGeneric

	// reluMask computes dst[i] = dy[i] when y[i] > 0, else 0 — the
	// ReLUBackward mask. len(dy) and len(y) must be ≥ len(dst).
	// Bit-identical across implementations.
	reluMask func(dst, dy, y []float64) = reluMaskGeneric

	// biasReLUDot computes Σ_j max(0, z[j]+bias[j])·w[j] — the CRN head's
	// fused hidden-layer epilogue (see BiasReLUDot). len(bias) and len(w)
	// must be ≥ len(z).
	biasReLUDot func(z, bias, w []float64) float64 = biasReLUDotGeneric

	// kernelISA names the selected implementation set.
	kernelISA = "generic"
)

// KernelISA reports which inner-loop kernel set package init selected:
// "avx2+fma" on amd64 hosts with AVX2 and FMA3 (unless built with -tags
// noasm or run with CRN_NOSIMD set), "generic" otherwise.
func KernelISA() string { return kernelISA }

// Axpy2 computes dst[j] += a0·b0[j] + a1·b1[j] through the dispatched
// kernel set — exported for the CRN head's serving loop in internal/crn,
// which runs outside this package's matrix types. Both b slices must be at
// least len(dst) long.
func Axpy2(dst, b0, b1 []float64, a0, a1 float64) { axpy2(dst, b0, b1, a0, a1) }

// BiasReLUDot computes Σ_j max(0, z[j]+bias[j])·w[j] through the dispatched
// kernel set — the CRN head's fused bias + ReLU + output-layer contraction.
// len(bias) and len(w) must be at least len(z).
func BiasReLUDot(z, bias, w []float64) float64 { return biasReLUDot(z, bias, w) }

// --- Generic fallbacks ------------------------------------------------------
//
// These are the portable kernels: the default on non-amd64 architectures
// and under -tags noasm, and the reference the SIMD implementations are
// tested against. They are exactly the loops the register-blocked kernels
// inlined before dispatch existed, so a noasm build reproduces the historic
// results bit for bit.

func axpyGeneric(dst []float64, a float64, x []float64) {
	x = x[:len(dst)]
	for j, v := range x {
		dst[j] += a * v
	}
}

func axpy2Generic(dst, b0, b1 []float64, a0, a1 float64) {
	b0 = b0[:len(dst)]
	b1 = b1[:len(dst)]
	for j, v := range b0 {
		dst[j] += a0*v + a1*b1[j]
	}
}

func axpy4Generic(dst, b0, b1, b2, b3 []float64, a0, a1, a2, a3 float64) {
	b0 = b0[:len(dst)]
	b1 = b1[:len(dst)]
	b2 = b2[:len(dst)]
	b3 = b3[:len(dst)]
	for j, v := range b0 {
		dst[j] += a0*v + a1*b1[j] + a2*b2[j] + a3*b3[j]
	}
}

func vecMatGeneric(dst, a, b []float64) {
	bc := len(dst)
	k := 0
	for ; k+3 < len(a); k += 4 {
		axpy4Generic(dst,
			b[k*bc:k*bc+bc],
			b[(k+1)*bc:(k+1)*bc+bc],
			b[(k+2)*bc:(k+2)*bc+bc],
			b[(k+3)*bc:(k+3)*bc+bc],
			a[k], a[k+1], a[k+2], a[k+3])
	}
	for ; k < len(a); k++ {
		if av := a[k]; av != 0 {
			axpyGeneric(dst, av, b[k*bc:k*bc+bc])
		}
	}
}

func dotGeneric(a, b []float64) float64 {
	b = b[:len(a)]
	var s float64
	for k, av := range a {
		s += av * b[k]
	}
	return s
}

func dot4Generic(a, b0, b1, b2, b3 []float64) (s0, s1, s2, s3 float64) {
	b0 = b0[:len(a)]
	b1 = b1[:len(a)]
	b2 = b2[:len(a)]
	b3 = b3[:len(a)]
	for k, av := range a {
		s0 += av * b0[k]
		s1 += av * b1[k]
		s2 += av * b2[k]
		s3 += av * b3[k]
	}
	return s0, s1, s2, s3
}

func addBiasReLUGeneric(row, bias []float64) {
	bias = bias[:len(row)]
	for j, b := range bias {
		if v := row[j] + b; v > 0 {
			row[j] = v
		} else {
			row[j] = 0
		}
	}
}

func biasReLUDotGeneric(z, bias, w []float64) float64 {
	bias = bias[:len(z)]
	w = w[:len(z)]
	var s float64
	for j, zv := range z {
		if a := zv + bias[j]; a > 0 {
			s += a * w[j]
		}
	}
	return s
}

func reluMaskGeneric(dst, dy, y []float64) {
	dyd := dy[:len(dst)]
	yd := y[:len(dst)]
	for i := range dst {
		if yd[i] > 0 {
			dst[i] = dyd[i]
		} else {
			dst[i] = 0
		}
	}
}
