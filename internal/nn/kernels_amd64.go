//go:build amd64 && !noasm

package nn

import "os"

// Runtime dispatch for the AVX2+FMA kernel set in kernels_amd64.s. The
// selection runs once, before any kernel can be called: main-package inits
// and test setup both happen after package nn's init, so no caller ever
// observes a mid-flight switch. Build with -tags noasm to compile this file
// (and the assembly) out entirely, or set CRN_NOSIMD=1 to keep the generic
// kernels at runtime on a capable host — the operational kill switch for
// comparing or excluding the vector paths without a rebuild.

// cpuid executes CPUID with the given leaf/subleaf (implemented in
// kernels_amd64.s).
func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads XCR0, the OS-enabled extended-state mask (implemented in
// kernels_amd64.s). Only valid once CPUID reports OSXSAVE.
func xgetbv() (eax, edx uint32)

//go:noescape
func axpyAVX2(dst []float64, a float64, x []float64)

//go:noescape
func axpy2AVX2(dst, b0, b1 []float64, a0, a1 float64)

//go:noescape
func axpy4AVX2(dst, b0, b1, b2, b3 []float64, a0, a1, a2, a3 float64)

//go:noescape
func vecMatAVX2(dst, a, b []float64)

//go:noescape
func dotAVX2(a, b []float64) float64

//go:noescape
func dot4AVX2(a, b0, b1, b2, b3 []float64) (s0, s1, s2, s3 float64)

//go:noescape
func addBiasReLUAVX2(row, bias []float64)

//go:noescape
func reluMaskAVX2(dst, dy, y []float64)

//go:noescape
func biasReLUDotAVX2(z, bias, w []float64) float64

func init() {
	if os.Getenv("CRN_NOSIMD") != "" || !hasAVX2FMA() {
		return
	}
	axpy = axpyAVX2
	axpy2 = axpy2AVX2
	axpy4 = axpy4AVX2
	vecMat = vecMatAVX2
	dot = dotAVX2
	dot4 = dot4AVX2
	addBiasReLU = addBiasReLUAVX2
	reluMask = reluMaskAVX2
	biasReLUDot = biasReLUDotAVX2
	kernelISA = "avx2+fma"
}

// hasAVX2FMA reports whether the host CPU supports the vector kernel set
// (AVX2 + FMA3) and the OS has enabled YMM state saving.
func hasAVX2FMA() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const (
		fma     = 1 << 12
		osxsave = 1 << 27
		avx     = 1 << 28
	)
	if ecx1&(fma|osxsave|avx) != fma|osxsave|avx {
		return false
	}
	// XCR0 bits 1 (SSE) and 2 (AVX): the OS context-switches YMM registers.
	if lo, _ := xgetbv(); lo&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	return ebx7&(1<<5) != 0 // AVX2
}
