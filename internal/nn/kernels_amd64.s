//go:build amd64 && !noasm

#include "textflag.h"

// AVX2+FMA inner-loop kernels. Conventions shared by every routine:
//
//   - Lengths come from the FIRST slice argument (the destination for the
//     in-place kernels, the probe row for the dot kernels); the Go wrappers
//     in matrix.go/layers.go guarantee every other slice is at least that
//     long, mirroring the generic kernels' reslicing.
//   - All loads/stores are unaligned (VMOVUPD): matrix rows start at
//     arbitrary offsets inside workspace arenas.
//   - Multiply-accumulate uses FMA (one rounding), so axpy/axpy4/dot/dot4
//     differ from the generic two-rounding loops by ulps — covered by the
//     tolerance gates in kernels_simd_test.go. addBiasReLU and reluMask use
//     only adds, ordered compares and bitmasks, so they are bit-identical
//     to the generic loops (VMAXPD/VCMPPD with the zero operand in the
//     second-source slot reproduces the scalar `v > 0` branch exactly,
//     including NaN -> 0 and -0 -> +0).
//   - Go assembly reverses Intel operand order: VFMADD231PD x, a, acc
//     computes acc += a*x.
//
// func axpyAVX2(dst []float64, a float64, x []float64)
TEXT ·axpyAVX2(SB), NOSPLIT, $0-56
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ x_base+32(FP), SI
	VBROADCASTSD a+24(FP), Y0
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-16, DX

axpy_loop16:
	CMPQ AX, DX
	JGE  axpy_head4
	VMOVUPD (DI)(AX*8), Y4
	VMOVUPD 32(DI)(AX*8), Y5
	VMOVUPD 64(DI)(AX*8), Y6
	VMOVUPD 96(DI)(AX*8), Y7
	VMOVUPD (SI)(AX*8), Y1
	VMOVUPD 32(SI)(AX*8), Y2
	VFMADD231PD Y1, Y0, Y4
	VFMADD231PD Y2, Y0, Y5
	VMOVUPD 64(SI)(AX*8), Y1
	VMOVUPD 96(SI)(AX*8), Y2
	VFMADD231PD Y1, Y0, Y6
	VFMADD231PD Y2, Y0, Y7
	VMOVUPD Y4, (DI)(AX*8)
	VMOVUPD Y5, 32(DI)(AX*8)
	VMOVUPD Y6, 64(DI)(AX*8)
	VMOVUPD Y7, 96(DI)(AX*8)
	ADDQ $16, AX
	JMP  axpy_loop16

axpy_head4:
	MOVQ CX, DX
	ANDQ $-4, DX

axpy_loop4:
	CMPQ AX, DX
	JGE  axpy_tail
	VMOVUPD (DI)(AX*8), Y4
	VMOVUPD (SI)(AX*8), Y1
	VFMADD231PD Y1, Y0, Y4
	VMOVUPD Y4, (DI)(AX*8)
	ADDQ $4, AX
	JMP  axpy_loop4

axpy_tail:
	CMPQ AX, CX
	JGE  axpy_done
	VMOVSD (DI)(AX*8), X4
	VMOVSD (SI)(AX*8), X1
	VFMADD231SD X1, X0, X4
	VMOVSD X4, (DI)(AX*8)
	INCQ AX
	JMP  axpy_tail

axpy_done:
	VZEROUPPER
	RET

// func axpy4AVX2(dst, b0, b1, b2, b3 []float64, a0, a1, a2, a3 float64)
TEXT ·axpy4AVX2(SB), NOSPLIT, $0-152
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ b0_base+24(FP), SI
	MOVQ b1_base+48(FP), R8
	MOVQ b2_base+72(FP), R9
	MOVQ b3_base+96(FP), R10
	VBROADCASTSD a0+120(FP), Y0
	VBROADCASTSD a1+128(FP), Y1
	VBROADCASTSD a2+136(FP), Y2
	VBROADCASTSD a3+144(FP), Y3
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-16, DX

axpy4_loop16:
	CMPQ AX, DX
	JGE  axpy4_head4
	VMOVUPD (DI)(AX*8), Y8
	VMOVUPD 32(DI)(AX*8), Y9
	VMOVUPD 64(DI)(AX*8), Y10
	VMOVUPD 96(DI)(AX*8), Y11
	VMOVUPD (SI)(AX*8), Y4
	VMOVUPD 32(SI)(AX*8), Y5
	VMOVUPD 64(SI)(AX*8), Y6
	VMOVUPD 96(SI)(AX*8), Y7
	VFMADD231PD Y4, Y0, Y8
	VFMADD231PD Y5, Y0, Y9
	VFMADD231PD Y6, Y0, Y10
	VFMADD231PD Y7, Y0, Y11
	VMOVUPD (R8)(AX*8), Y4
	VMOVUPD 32(R8)(AX*8), Y5
	VMOVUPD 64(R8)(AX*8), Y6
	VMOVUPD 96(R8)(AX*8), Y7
	VFMADD231PD Y4, Y1, Y8
	VFMADD231PD Y5, Y1, Y9
	VFMADD231PD Y6, Y1, Y10
	VFMADD231PD Y7, Y1, Y11
	VMOVUPD (R9)(AX*8), Y4
	VMOVUPD 32(R9)(AX*8), Y5
	VMOVUPD 64(R9)(AX*8), Y6
	VMOVUPD 96(R9)(AX*8), Y7
	VFMADD231PD Y4, Y2, Y8
	VFMADD231PD Y5, Y2, Y9
	VFMADD231PD Y6, Y2, Y10
	VFMADD231PD Y7, Y2, Y11
	VMOVUPD (R10)(AX*8), Y4
	VMOVUPD 32(R10)(AX*8), Y5
	VMOVUPD 64(R10)(AX*8), Y6
	VMOVUPD 96(R10)(AX*8), Y7
	VFMADD231PD Y4, Y3, Y8
	VFMADD231PD Y5, Y3, Y9
	VFMADD231PD Y6, Y3, Y10
	VFMADD231PD Y7, Y3, Y11
	VMOVUPD Y8, (DI)(AX*8)
	VMOVUPD Y9, 32(DI)(AX*8)
	VMOVUPD Y10, 64(DI)(AX*8)
	VMOVUPD Y11, 96(DI)(AX*8)
	ADDQ $16, AX
	JMP  axpy4_loop16

axpy4_head4:
	MOVQ CX, DX
	ANDQ $-4, DX

axpy4_loop4:
	CMPQ AX, DX
	JGE  axpy4_tail
	VMOVUPD (DI)(AX*8), Y8
	VMOVUPD (SI)(AX*8), Y4
	VFMADD231PD Y4, Y0, Y8
	VMOVUPD (R8)(AX*8), Y5
	VFMADD231PD Y5, Y1, Y8
	VMOVUPD (R9)(AX*8), Y6
	VFMADD231PD Y6, Y2, Y8
	VMOVUPD (R10)(AX*8), Y7
	VFMADD231PD Y7, Y3, Y8
	VMOVUPD Y8, (DI)(AX*8)
	ADDQ $4, AX
	JMP  axpy4_loop4

axpy4_tail:
	CMPQ AX, CX
	JGE  axpy4_done
	VMOVSD (DI)(AX*8), X8
	VMOVSD (SI)(AX*8), X4
	VFMADD231SD X4, X0, X8
	VMOVSD (R8)(AX*8), X5
	VFMADD231SD X5, X1, X8
	VMOVSD (R9)(AX*8), X6
	VFMADD231SD X6, X2, X8
	VMOVSD (R10)(AX*8), X7
	VFMADD231SD X7, X3, X8
	VMOVSD X8, (DI)(AX*8)
	INCQ AX
	JMP  axpy4_tail

axpy4_done:
	VZEROUPPER
	RET

// func dotAVX2(a, b []float64) float64
TEXT ·dotAVX2(SB), NOSPLIT, $0-56
	MOVQ a_base+0(FP), SI
	MOVQ a_len+8(FP), CX
	MOVQ b_base+24(FP), R8
	VXORPD Y8, Y8, Y8
	VXORPD Y12, Y12, Y12
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-8, DX

dot_loop8:
	CMPQ AX, DX
	JGE  dot_head4
	VMOVUPD (SI)(AX*8), Y0
	VMOVUPD 32(SI)(AX*8), Y1
	VMOVUPD (R8)(AX*8), Y2
	VMOVUPD 32(R8)(AX*8), Y3
	VFMADD231PD Y2, Y0, Y8
	VFMADD231PD Y3, Y1, Y12
	ADDQ $8, AX
	JMP  dot_loop8

dot_head4:
	MOVQ CX, DX
	ANDQ $-4, DX

dot_loop4:
	CMPQ AX, DX
	JGE  dot_fold
	VMOVUPD (SI)(AX*8), Y0
	VMOVUPD (R8)(AX*8), Y2
	VFMADD231PD Y2, Y0, Y8
	ADDQ $4, AX
	JMP  dot_loop4

dot_fold:
	VADDPD Y12, Y8, Y8
	VEXTRACTF128 $1, Y8, X4
	VADDPD X4, X8, X8
	VHADDPD X8, X8, X8

dot_tail:
	CMPQ AX, CX
	JGE  dot_done
	VMOVSD (SI)(AX*8), X0
	VMOVSD (R8)(AX*8), X2
	VFMADD231SD X2, X0, X8
	INCQ AX
	JMP  dot_tail

dot_done:
	VMOVSD X8, ret+48(FP)
	VZEROUPPER
	RET

// func dot4AVX2(a, b0, b1, b2, b3 []float64) (s0, s1, s2, s3 float64)
TEXT ·dot4AVX2(SB), NOSPLIT, $0-152
	MOVQ a_base+0(FP), SI
	MOVQ a_len+8(FP), CX
	MOVQ b0_base+24(FP), R8
	MOVQ b1_base+48(FP), R9
	MOVQ b2_base+72(FP), R10
	MOVQ b3_base+96(FP), R11
	VXORPD Y8, Y8, Y8
	VXORPD Y9, Y9, Y9
	VXORPD Y10, Y10, Y10
	VXORPD Y11, Y11, Y11
	VXORPD Y12, Y12, Y12
	VXORPD Y13, Y13, Y13
	VXORPD Y14, Y14, Y14
	VXORPD Y15, Y15, Y15
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-8, DX

dot4_loop8:
	CMPQ AX, DX
	JGE  dot4_head4
	VMOVUPD (SI)(AX*8), Y0
	VMOVUPD 32(SI)(AX*8), Y1
	VMOVUPD (R8)(AX*8), Y2
	VMOVUPD 32(R8)(AX*8), Y3
	VFMADD231PD Y2, Y0, Y8
	VFMADD231PD Y3, Y1, Y12
	VMOVUPD (R9)(AX*8), Y4
	VMOVUPD 32(R9)(AX*8), Y5
	VFMADD231PD Y4, Y0, Y9
	VFMADD231PD Y5, Y1, Y13
	VMOVUPD (R10)(AX*8), Y6
	VMOVUPD 32(R10)(AX*8), Y7
	VFMADD231PD Y6, Y0, Y10
	VFMADD231PD Y7, Y1, Y14
	VMOVUPD (R11)(AX*8), Y2
	VMOVUPD 32(R11)(AX*8), Y3
	VFMADD231PD Y2, Y0, Y11
	VFMADD231PD Y3, Y1, Y15
	ADDQ $8, AX
	JMP  dot4_loop8

dot4_head4:
	MOVQ CX, DX
	ANDQ $-4, DX

dot4_loop4:
	CMPQ AX, DX
	JGE  dot4_fold
	VMOVUPD (SI)(AX*8), Y0
	VMOVUPD (R8)(AX*8), Y2
	VFMADD231PD Y2, Y0, Y8
	VMOVUPD (R9)(AX*8), Y3
	VFMADD231PD Y3, Y0, Y9
	VMOVUPD (R10)(AX*8), Y4
	VFMADD231PD Y4, Y0, Y10
	VMOVUPD (R11)(AX*8), Y5
	VFMADD231PD Y5, Y0, Y11
	ADDQ $4, AX
	JMP  dot4_loop4

dot4_fold:
	VADDPD Y12, Y8, Y8
	VADDPD Y13, Y9, Y9
	VADDPD Y14, Y10, Y10
	VADDPD Y15, Y11, Y11
	VEXTRACTF128 $1, Y8, X4
	VADDPD X4, X8, X8
	VHADDPD X8, X8, X8
	VEXTRACTF128 $1, Y9, X5
	VADDPD X5, X9, X9
	VHADDPD X9, X9, X9
	VEXTRACTF128 $1, Y10, X6
	VADDPD X6, X10, X10
	VHADDPD X10, X10, X10
	VEXTRACTF128 $1, Y11, X7
	VADDPD X7, X11, X11
	VHADDPD X11, X11, X11

dot4_tail:
	CMPQ AX, CX
	JGE  dot4_done
	VMOVSD (SI)(AX*8), X0
	VMOVSD (R8)(AX*8), X2
	VFMADD231SD X2, X0, X8
	VMOVSD (R9)(AX*8), X3
	VFMADD231SD X3, X0, X9
	VMOVSD (R10)(AX*8), X4
	VFMADD231SD X4, X0, X10
	VMOVSD (R11)(AX*8), X5
	VFMADD231SD X5, X0, X11
	INCQ AX
	JMP  dot4_tail

dot4_done:
	VMOVSD X8, s0+120(FP)
	VMOVSD X9, s1+128(FP)
	VMOVSD X10, s2+136(FP)
	VMOVSD X11, s3+144(FP)
	VZEROUPPER
	RET

// func addBiasReLUAVX2(row, bias []float64)
TEXT ·addBiasReLUAVX2(SB), NOSPLIT, $0-48
	MOVQ row_base+0(FP), DI
	MOVQ row_len+8(FP), CX
	MOVQ bias_base+24(FP), SI
	VXORPD Y0, Y0, Y0
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-8, DX

biasrelu_loop8:
	CMPQ AX, DX
	JGE  biasrelu_head4
	VMOVUPD (DI)(AX*8), Y1
	VMOVUPD 32(DI)(AX*8), Y2
	VMOVUPD (SI)(AX*8), Y3
	VMOVUPD 32(SI)(AX*8), Y4
	VADDPD Y3, Y1, Y1
	VADDPD Y4, Y2, Y2
	VMAXPD Y0, Y1, Y1
	VMAXPD Y0, Y2, Y2
	VMOVUPD Y1, (DI)(AX*8)
	VMOVUPD Y2, 32(DI)(AX*8)
	ADDQ $8, AX
	JMP  biasrelu_loop8

biasrelu_head4:
	MOVQ CX, DX
	ANDQ $-4, DX

biasrelu_loop4:
	CMPQ AX, DX
	JGE  biasrelu_tail
	VMOVUPD (DI)(AX*8), Y1
	VMOVUPD (SI)(AX*8), Y3
	VADDPD Y3, Y1, Y1
	VMAXPD Y0, Y1, Y1
	VMOVUPD Y1, (DI)(AX*8)
	ADDQ $4, AX
	JMP  biasrelu_loop4

biasrelu_tail:
	CMPQ AX, CX
	JGE  biasrelu_done
	VMOVSD (DI)(AX*8), X1
	VMOVSD (SI)(AX*8), X3
	VADDSD X3, X1, X1
	VMAXSD X0, X1, X1
	VMOVSD X1, (DI)(AX*8)
	INCQ AX
	JMP  biasrelu_tail

biasrelu_done:
	VZEROUPPER
	RET

// func reluMaskAVX2(dst, dy, y []float64)
TEXT ·reluMaskAVX2(SB), NOSPLIT, $0-72
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ dy_base+24(FP), SI
	MOVQ y_base+48(FP), R8
	VXORPD Y0, Y0, Y0
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-8, DX

relumask_loop8:
	CMPQ AX, DX
	JGE  relumask_head4
	VMOVUPD (R8)(AX*8), Y1
	VMOVUPD 32(R8)(AX*8), Y2
	VCMPPD $0x1e, Y0, Y1, Y3
	VCMPPD $0x1e, Y0, Y2, Y4
	VMOVUPD (SI)(AX*8), Y5
	VMOVUPD 32(SI)(AX*8), Y6
	VANDPD Y5, Y3, Y5
	VANDPD Y6, Y4, Y6
	VMOVUPD Y5, (DI)(AX*8)
	VMOVUPD Y6, 32(DI)(AX*8)
	ADDQ $8, AX
	JMP  relumask_loop8

relumask_head4:
	MOVQ CX, DX
	ANDQ $-4, DX

relumask_loop4:
	CMPQ AX, DX
	JGE  relumask_tail
	VMOVUPD (R8)(AX*8), Y1
	VCMPPD $0x1e, Y0, Y1, Y3
	VMOVUPD (SI)(AX*8), Y5
	VANDPD Y5, Y3, Y5
	VMOVUPD Y5, (DI)(AX*8)
	ADDQ $4, AX
	JMP  relumask_loop4

relumask_tail:
	CMPQ AX, CX
	JGE  relumask_done
	VMOVSD (R8)(AX*8), X1
	VCMPSD $0x1e, X0, X1, X3
	VMOVSD (SI)(AX*8), X5
	VANDPD X3, X5, X5
	VMOVSD X5, (DI)(AX*8)
	INCQ AX
	JMP  relumask_tail

relumask_done:
	VZEROUPPER
	RET

// func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxArg+0(FP), AX
	MOVL ecxArg+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	MOVL $0, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func vecMatAVX2(dst, a, b []float64)
//
// One dense MatMul output row per call: a register block of 16 dst columns
// stays live in Y8..Y11 across the entire k loop, so dst traffic is one
// load + one store per 16 columns total and the inner loop is pure
// broadcast/load/FMA. Each dst element still accumulates serially in k
// order (determinism invariant).
TEXT ·vecMatAVX2(SB), NOSPLIT, $0-72
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), R8
	MOVQ a_base+24(FP), SI
	MOVQ a_len+32(FP), CX
	MOVQ b_base+48(FP), BX
	MOVQ R8, R9
	SHLQ $3, R9          // b row stride in bytes
	XORQ R10, R10        // j: dst column index
	MOVQ R8, DX
	ANDQ $-16, DX

vm_chunk16:
	CMPQ R10, DX
	JGE  vm_chunk4_setup
	LEAQ (DI)(R10*8), R13
	VMOVUPD (R13), Y8
	VMOVUPD 32(R13), Y9
	VMOVUPD 64(R13), Y10
	VMOVUPD 96(R13), Y11
	LEAQ (BX)(R10*8), R11
	XORQ AX, AX

vm_k16:
	CMPQ AX, CX
	JGE  vm_store16
	VBROADCASTSD (SI)(AX*8), Y0
	VMOVUPD (R11), Y4
	VMOVUPD 32(R11), Y5
	VMOVUPD 64(R11), Y6
	VMOVUPD 96(R11), Y7
	VFMADD231PD Y4, Y0, Y8
	VFMADD231PD Y5, Y0, Y9
	VFMADD231PD Y6, Y0, Y10
	VFMADD231PD Y7, Y0, Y11
	ADDQ R9, R11
	INCQ AX
	JMP  vm_k16

vm_store16:
	VMOVUPD Y8, (R13)
	VMOVUPD Y9, 32(R13)
	VMOVUPD Y10, 64(R13)
	VMOVUPD Y11, 96(R13)
	ADDQ $16, R10
	JMP  vm_chunk16

vm_chunk4_setup:
	MOVQ R8, DX
	ANDQ $-4, DX

vm_chunk4:
	CMPQ R10, DX
	JGE  vm_cols_tail
	LEAQ (DI)(R10*8), R13
	VMOVUPD (R13), Y8
	LEAQ (BX)(R10*8), R11
	XORQ AX, AX

vm_k4:
	CMPQ AX, CX
	JGE  vm_store4
	VBROADCASTSD (SI)(AX*8), Y0
	VMOVUPD (R11), Y4
	VFMADD231PD Y4, Y0, Y8
	ADDQ R9, R11
	INCQ AX
	JMP  vm_k4

vm_store4:
	VMOVUPD Y8, (R13)
	ADDQ $4, R10
	JMP  vm_chunk4

vm_cols_tail:
	CMPQ R10, R8
	JGE  vm_done
	LEAQ (DI)(R10*8), R13
	VMOVSD (R13), X8
	LEAQ (BX)(R10*8), R11
	XORQ AX, AX

vm_ktail:
	CMPQ AX, CX
	JGE  vm_store1
	VMOVSD (SI)(AX*8), X0
	VMOVSD (R11), X4
	VFMADD231SD X4, X0, X8
	ADDQ R9, R11
	INCQ AX
	JMP  vm_ktail

vm_store1:
	VMOVSD X8, (R13)
	INCQ R10
	JMP  vm_cols_tail

vm_done:
	VZEROUPPER
	RET

// func axpy2AVX2(dst, b0, b1 []float64, a0, a1 float64)
TEXT ·axpy2AVX2(SB), NOSPLIT, $0-88
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ b0_base+24(FP), SI
	MOVQ b1_base+48(FP), R8
	VBROADCASTSD a0+72(FP), Y0
	VBROADCASTSD a1+80(FP), Y1
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-16, DX

axpy2_loop16:
	CMPQ AX, DX
	JGE  axpy2_head4
	VMOVUPD (DI)(AX*8), Y8
	VMOVUPD 32(DI)(AX*8), Y9
	VMOVUPD 64(DI)(AX*8), Y10
	VMOVUPD 96(DI)(AX*8), Y11
	VMOVUPD (SI)(AX*8), Y4
	VMOVUPD 32(SI)(AX*8), Y5
	VMOVUPD 64(SI)(AX*8), Y6
	VMOVUPD 96(SI)(AX*8), Y7
	VFMADD231PD Y4, Y0, Y8
	VFMADD231PD Y5, Y0, Y9
	VFMADD231PD Y6, Y0, Y10
	VFMADD231PD Y7, Y0, Y11
	VMOVUPD (R8)(AX*8), Y4
	VMOVUPD 32(R8)(AX*8), Y5
	VMOVUPD 64(R8)(AX*8), Y6
	VMOVUPD 96(R8)(AX*8), Y7
	VFMADD231PD Y4, Y1, Y8
	VFMADD231PD Y5, Y1, Y9
	VFMADD231PD Y6, Y1, Y10
	VFMADD231PD Y7, Y1, Y11
	VMOVUPD Y8, (DI)(AX*8)
	VMOVUPD Y9, 32(DI)(AX*8)
	VMOVUPD Y10, 64(DI)(AX*8)
	VMOVUPD Y11, 96(DI)(AX*8)
	ADDQ $16, AX
	JMP  axpy2_loop16

axpy2_head4:
	MOVQ CX, DX
	ANDQ $-4, DX

axpy2_loop4:
	CMPQ AX, DX
	JGE  axpy2_tail
	VMOVUPD (DI)(AX*8), Y8
	VMOVUPD (SI)(AX*8), Y4
	VFMADD231PD Y4, Y0, Y8
	VMOVUPD (R8)(AX*8), Y5
	VFMADD231PD Y5, Y1, Y8
	VMOVUPD Y8, (DI)(AX*8)
	ADDQ $4, AX
	JMP  axpy2_loop4

axpy2_tail:
	CMPQ AX, CX
	JGE  axpy2_done
	VMOVSD (DI)(AX*8), X8
	VMOVSD (SI)(AX*8), X4
	VFMADD231SD X4, X0, X8
	VMOVSD (R8)(AX*8), X5
	VFMADD231SD X5, X1, X8
	VMOVSD X8, (DI)(AX*8)
	INCQ AX
	JMP  axpy2_tail

axpy2_done:
	VZEROUPPER
	RET

// func biasReLUDotAVX2(z, bias, w []float64) float64
TEXT ·biasReLUDotAVX2(SB), NOSPLIT, $0-80
	MOVQ z_base+0(FP), SI
	MOVQ z_len+8(FP), CX
	MOVQ bias_base+24(FP), R8
	MOVQ w_base+48(FP), R9
	VXORPD Y0, Y0, Y0
	VXORPD Y8, Y8, Y8
	VXORPD Y12, Y12, Y12
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-8, DX

brdot_loop8:
	CMPQ AX, DX
	JGE  brdot_head4
	VMOVUPD (SI)(AX*8), Y1
	VMOVUPD 32(SI)(AX*8), Y2
	VMOVUPD (R8)(AX*8), Y3
	VMOVUPD 32(R8)(AX*8), Y4
	VADDPD Y3, Y1, Y1
	VADDPD Y4, Y2, Y2
	VMAXPD Y0, Y1, Y1
	VMAXPD Y0, Y2, Y2
	VMOVUPD (R9)(AX*8), Y5
	VMOVUPD 32(R9)(AX*8), Y6
	VFMADD231PD Y5, Y1, Y8
	VFMADD231PD Y6, Y2, Y12
	ADDQ $8, AX
	JMP  brdot_loop8

brdot_head4:
	MOVQ CX, DX
	ANDQ $-4, DX

brdot_loop4:
	CMPQ AX, DX
	JGE  brdot_fold
	VMOVUPD (SI)(AX*8), Y1
	VMOVUPD (R8)(AX*8), Y3
	VADDPD Y3, Y1, Y1
	VMAXPD Y0, Y1, Y1
	VMOVUPD (R9)(AX*8), Y5
	VFMADD231PD Y5, Y1, Y8
	ADDQ $4, AX
	JMP  brdot_loop4

brdot_fold:
	VADDPD Y12, Y8, Y8
	VEXTRACTF128 $1, Y8, X4
	VADDPD X4, X8, X8
	VHADDPD X8, X8, X8

brdot_tail:
	CMPQ AX, CX
	JGE  brdot_done
	VMOVSD (SI)(AX*8), X1
	VMOVSD (R8)(AX*8), X3
	VADDSD X3, X1, X1
	VMAXSD X0, X1, X1
	VMOVSD (R9)(AX*8), X5
	VFMADD231SD X5, X1, X8
	INCQ AX
	JMP  brdot_tail

brdot_done:
	VMOVSD X8, ret+72(FP)
	VZEROUPPER
	RET
