package nn

import (
	"math"
	"math/rand"
	"testing"
)

// These tests pin the dispatched kernel set against the generic Go
// fallbacks. On amd64 with AVX2+FMA they exercise the assembly in
// kernels_amd64.s; under -tags noasm (or on other architectures, or with
// CRN_NOSIMD set) the dispatched set IS the generic set and they pass
// trivially — the CI noasm leg keeps that configuration green.
//
// Tolerances follow the established equivalence discipline: the FMA kernels
// (axpy/axpy4/vecMat/dot/dot4) fuse roundings and may split accumulation
// across lanes, so they get the same 1e-9 gate the register-blocked kernels
// have against the naive references; addBiasReLU and reluMask do no
// reassociation and must match bit for bit, including NaN and signed-zero
// handling.

const simdTol = 1e-9

// kernelLens covers empty slices, every lane-tail residue around the 4- and
// 16-wide vector widths, and a few larger sizes.
var kernelLens = []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 23, 31, 32, 33, 63, 64, 65, 100, 127, 128, 129, 257}

func randSlice(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}

func maxAbsDiffSlice(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// checkKernelsOnce runs every dispatched kernel against its generic fallback
// on freshly drawn slices of length n (with extra capacity on the non-dst
// operands, mirroring how matrix.go passes full-row views). Shared by the
// table test and the fuzz target.
func checkKernelsOnce(t *testing.T, rng *rand.Rand, n int, zeroOut bool) {
	t.Helper()
	draw := func(extra int) []float64 {
		s := randSlice(rng, n+extra)
		if zeroOut {
			for i := range s {
				if rng.Intn(2) == 0 {
					s[i] = 0
				}
			}
		}
		return s
	}

	// axpy
	dstA := draw(0)
	dstB := append([]float64(nil), dstA...)
	x := draw(3)
	a := rng.NormFloat64()
	axpy(dstA, a, x)
	axpyGeneric(dstB, a, x)
	if d := maxAbsDiffSlice(dstA, dstB); d > simdTol {
		t.Errorf("axpy n=%d: max diff %g", n, d)
	}

	// axpy2
	dstA = draw(0)
	dstB = append([]float64(nil), dstA...)
	c0, c1 := draw(2), draw(4)
	a0x, a1x := rng.NormFloat64(), rng.NormFloat64()
	axpy2(dstA, c0, c1, a0x, a1x)
	axpy2Generic(dstB, c0, c1, a0x, a1x)
	if d := maxAbsDiffSlice(dstA, dstB); d > simdTol {
		t.Errorf("axpy2 n=%d: max diff %g", n, d)
	}

	// axpy4
	dstA = draw(0)
	dstB = append([]float64(nil), dstA...)
	b0, b1, b2, b3 := draw(1), draw(2), draw(0), draw(5)
	a0, a1, a2, a3 := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
	axpy4(dstA, b0, b1, b2, b3, a0, a1, a2, a3)
	axpy4Generic(dstB, b0, b1, b2, b3, a0, a1, a2, a3)
	if d := maxAbsDiffSlice(dstA, dstB); d > simdTol {
		t.Errorf("axpy4 n=%d: max diff %g", n, d)
	}

	// vecMat: K×n row-major b for a handful of K values, including K not a
	// multiple of 4 and the all-zero-a degenerate row.
	for _, k := range []int{0, 1, 3, 4, 7, 16} {
		av := randSlice(rng, k)
		if zeroOut && k > 0 {
			for i := range av {
				if rng.Intn(2) == 0 {
					av[i] = 0
				}
			}
		}
		bm := draw(k * n)[:k*n]
		dstA = draw(0)
		dstB = append([]float64(nil), dstA...)
		vecMat(dstA, av, bm)
		vecMatGeneric(dstB, av, bm)
		if d := maxAbsDiffSlice(dstA, dstB); d > simdTol {
			t.Errorf("vecMat n=%d k=%d: max diff %g", n, k, d)
		}
	}

	// dot / dot4
	av := draw(0)
	bv := draw(2)
	if d := math.Abs(dot(av, bv) - dotGeneric(av, bv)); d > simdTol {
		t.Errorf("dot n=%d: diff %g", n, d)
	}
	s0, s1, s2, s3 := dot4(av, b0, b1, b2, b3)
	g0, g1, g2, g3 := dot4Generic(av, b0, b1, b2, b3)
	if d := maxAbsDiffSlice([]float64{s0, s1, s2, s3}, []float64{g0, g1, g2, g3}); d > simdTol {
		t.Errorf("dot4 n=%d: max diff %g", n, d)
	}

	// biasReLUDot: the fused bias+ReLU+dot reduction of the CRN head.
	z := draw(0)
	bb := draw(1)
	ww := draw(2)
	if d := math.Abs(biasReLUDot(z, bb, ww) - biasReLUDotGeneric(z, bb, ww)); d > simdTol {
		t.Errorf("biasReLUDot n=%d: diff %g", n, d)
	}

	// addBiasReLU: bit-identical, including negative pre-activations that
	// must clamp to +0.
	rowA := draw(0)
	rowB := append([]float64(nil), rowA...)
	bias := draw(1)
	addBiasReLU(rowA, bias)
	addBiasReLUGeneric(rowB, bias)
	for i := range rowA {
		if math.Float64bits(rowA[i]) != math.Float64bits(rowB[i]) {
			t.Fatalf("addBiasReLU n=%d: bit mismatch at %d: %x vs %x", n, i, math.Float64bits(rowA[i]), math.Float64bits(rowB[i]))
		}
	}

	// reluMask: bit-identical.
	y := draw(2)
	dy := draw(1)
	dstA = make([]float64, n)
	dstB = make([]float64, n)
	reluMask(dstA, dy, y)
	reluMaskGeneric(dstB, dy, y)
	for i := range dstA {
		if math.Float64bits(dstA[i]) != math.Float64bits(dstB[i]) {
			t.Fatalf("reluMask n=%d: bit mismatch at %d", n, i)
		}
	}
}

func TestSIMDKernelsMatchGeneric(t *testing.T) {
	t.Logf("kernel ISA: %s", KernelISA())
	rng := rand.New(rand.NewSource(42))
	for _, n := range kernelLens {
		checkKernelsOnce(t, rng, n, false)
		checkKernelsOnce(t, rng, n, true) // sparsity: ~half the entries zero
	}
}

// TestSIMDKernelsSpecialValues pins the bit-identity contract of the
// non-reassociating kernels on the adversarial values the tolerance tests
// never draw: signed zero and NaN. max(0, x) in the scalar branch maps NaN
// and -0 to +0; the vector implementations must do exactly the same.
func TestSIMDKernelsSpecialValues(t *testing.T) {
	negZero := math.Copysign(0, -1)
	nan := math.NaN()

	row := []float64{negZero, nan, -1, 1, 0, 2, negZero, nan, 0.5}
	bias := make([]float64, len(row))
	want := append([]float64(nil), row...)
	addBiasReLUGeneric(want, bias)
	got := append([]float64(nil), row...)
	addBiasReLU(got, bias)
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Errorf("addBiasReLU special at %d: got %x want %x", i, math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	}

	y := []float64{negZero, 0, 1, -1, nan, 2, 0.1, negZero, 3}
	dy := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	wantDst := make([]float64, len(y))
	reluMaskGeneric(wantDst, dy, y)
	gotDst := make([]float64, len(y))
	reluMask(gotDst, dy, y)
	for i := range gotDst {
		if math.Float64bits(gotDst[i]) != math.Float64bits(wantDst[i]) {
			t.Errorf("reluMask special at %d: got %v want %v", i, gotDst[i], wantDst[i])
		}
	}
}

// TestSIMDMatMulDegenerateShapes runs the full matrix kernels against the
// naive references on the shapes the lane structure finds hardest: single
// rows, single columns, tail lanes just off the 4/16-wide boundaries, and
// batches with entire rows zeroed (the sparse dispatch path).
func TestSIMDMatMulDegenerateShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := []struct{ m, k, n int }{
		{1, 1, 1}, {1, 17, 1}, {1, 1, 17}, {17, 1, 1},
		{1, 64, 33}, {33, 64, 1}, {5, 3, 2}, {4, 4, 4},
		{2, 19, 31}, {31, 19, 2}, {16, 16, 16}, {3, 65, 129},
	}
	for _, sh := range shapes {
		for _, zeroRows := range []bool{false, true} {
			a := NewMatrix(sh.m, sh.k)
			b := NewMatrix(sh.k, sh.n)
			for i := range a.Data {
				a.Data[i] = rng.NormFloat64()
			}
			for i := range b.Data {
				b.Data[i] = rng.NormFloat64()
			}
			if zeroRows {
				for i := 0; i < sh.m; i += 2 {
					row := a.Row(i)
					for j := range row {
						row[j] = 0
					}
				}
			}

			got := NewMatrix(sh.m, sh.n)
			want := NewMatrix(sh.m, sh.n)
			MatMul(got, a, b)
			MatMulNaive(want, a, b)
			if d := maxAbsDiffSlice(got.Data, want.Data); d > simdTol {
				t.Errorf("MatMul %dx%dx%d zero=%v: max diff %g", sh.m, sh.k, sh.n, zeroRows, d)
			}

			gotTB := NewMatrix(sh.m, sh.n)
			wantTB := NewMatrix(sh.m, sh.n)
			bt := NewMatrix(sh.n, sh.k)
			for i := range bt.Data {
				bt.Data[i] = rng.NormFloat64()
			}
			aw := NewMatrix(sh.m, sh.k)
			for i := range aw.Data {
				aw.Data[i] = rng.NormFloat64()
			}
			MatMulTransB(gotTB, aw, bt)
			MatMulTransBNaive(wantTB, aw, bt)
			if d := maxAbsDiffSlice(gotTB.Data, wantTB.Data); d > simdTol {
				t.Errorf("MatMulTransB %dx%dx%d: max diff %g", sh.m, sh.k, sh.n, d)
			}

			gotTA := NewMatrix(sh.k, sh.n)
			wantTA := NewMatrix(sh.k, sh.n)
			ab := NewMatrix(sh.m, sh.k)
			bb := NewMatrix(sh.m, sh.n)
			for i := range ab.Data {
				ab.Data[i] = rng.NormFloat64()
			}
			for i := range bb.Data {
				bb.Data[i] = rng.NormFloat64()
			}
			if zeroRows {
				for i := 0; i < sh.m; i += 2 {
					row := ab.Row(i)
					for j := range row {
						row[j] = 0
					}
				}
			}
			MatMulTransA(gotTA, ab, bb)
			MatMulTransANaive(wantTA, ab, bb)
			if d := maxAbsDiffSlice(gotTA.Data, wantTA.Data); d > simdTol {
				t.Errorf("MatMulTransA %dx%dx%d zero=%v: max diff %g", sh.m, sh.k, sh.n, zeroRows, d)
			}
		}
	}
}

// FuzzSIMDKernels drives the dispatched-vs-generic comparison with
// fuzzer-chosen lengths and seeds, so lane-boundary mistakes (off-by-one
// tails, misaligned pointers from the extra-capacity slices) surface beyond
// the hand-picked table above.
func FuzzSIMDKernels(f *testing.F) {
	f.Add(int64(1), uint(8))
	f.Add(int64(2), uint(17))
	f.Add(int64(3), uint(129))
	f.Add(int64(4), uint(0))
	f.Fuzz(func(t *testing.T, seed int64, n uint) {
		size := int(n % 300)
		rng := rand.New(rand.NewSource(seed))
		checkKernelsOnce(t, rng, size, seed%2 == 0)
	})
}
