package nn

import (
	"math"
	"math/rand"
	"testing"
)

// fillRandom populates a matrix with standard normals, zeroing a fraction
// of entries to exercise the sparse dispatch paths.
func fillRandom(rng *rand.Rand, m *Matrix, zeroFrac float64) {
	for i := range m.Data {
		if rng.Float64() < zeroFrac {
			m.Data[i] = 0
		} else {
			m.Data[i] = rng.NormFloat64()
		}
	}
}

func maxAbsDiff(a, b *Matrix) float64 {
	var worst float64
	for i := range a.Data {
		if d := math.Abs(a.Data[i] - b.Data[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// TestOptimizedKernelsMatchNaive pins the blocked/unrolled kernels to the
// naive reference loops within 1e-9 across shapes that cover every unroll
// remainder (k mod 4, j mod 4) and sparsity regime.
func TestOptimizedKernelsMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := [][3]int{ // rows, inner, cols
		{1, 1, 1}, {2, 3, 5}, {4, 4, 4}, {7, 9, 11},
		{16, 70, 64}, {33, 65, 31}, {64, 256, 128}, {5, 128, 1},
	}
	for _, zf := range []float64{0, 0.5, 0.95} {
		for _, sh := range shapes {
			rows, inner, cols := sh[0], sh[1], sh[2]
			a := NewMatrix(rows, inner)
			b := NewMatrix(inner, cols)
			fillRandom(rng, a, zf)
			fillRandom(rng, b, 0)

			got := NewMatrix(rows, cols)
			want := NewMatrix(rows, cols)
			MatMul(got, a, b)
			MatMulNaive(want, a, b)
			if d := maxAbsDiff(got, want); d > 1e-9 {
				t.Errorf("MatMul %v zf=%v: max diff %v", sh, zf, d)
			}

			// aᵀ·b with a as the (inner × rows) operand.
			at := NewMatrix(inner, rows)
			fillRandom(rng, at, zf)
			got2 := NewMatrix(rows, cols)
			want2 := NewMatrix(rows, cols)
			bt := NewMatrix(inner, cols)
			fillRandom(rng, bt, 0)
			MatMulTransA(got2, at, bt)
			MatMulTransANaive(want2, at, bt)
			if d := maxAbsDiff(got2, want2); d > 1e-9 {
				t.Errorf("MatMulTransA %v zf=%v: max diff %v", sh, zf, d)
			}

			// a·bᵀ with b as a (cols × inner) operand.
			bb := NewMatrix(cols, inner)
			fillRandom(rng, bb, 0)
			got3 := NewMatrix(rows, cols)
			want3 := NewMatrix(rows, cols)
			MatMulTransB(got3, a, bb)
			MatMulTransBNaive(want3, a, bb)
			if d := maxAbsDiff(got3, want3); d > 1e-9 {
				t.Errorf("MatMulTransB %v zf=%v: max diff %v", sh, zf, d)
			}
		}
	}
}

// TestMatMulTransAAccAccumulates verifies the accumulate variant adds on
// top of existing destination contents (the direct-into-Grad contract).
func TestMatMulTransAAccAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := NewMatrix(6, 4)
	b := NewMatrix(6, 3)
	fillRandom(rng, a, 0.3)
	fillRandom(rng, b, 0)
	dst := NewMatrix(4, 3)
	for i := range dst.Data {
		dst.Data[i] = float64(i)
	}
	want := NewMatrix(4, 3)
	MatMulTransANaive(want, a, b)
	for i := range want.Data {
		want.Data[i] += float64(i)
	}
	MatMulTransAAcc(dst, a, b)
	if d := maxAbsDiff(dst, want); d > 1e-9 {
		t.Errorf("accumulate drift: %v", d)
	}
}

// TestMatMulTransAParallelMatchesSerial exercises the fixed-split
// partial-accumulator path (engaged by shape alone, so it runs — and
// produces the same bits — whatever GOMAXPROCS is) against the reference.
func TestMatMulTransAParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := NewMatrix(1024, 96) // 1024×96×64 ≥ transAMinWork: engages the fixed split
	b := NewMatrix(1024, 64)
	if a.Rows*a.Cols*b.Cols < transAMinWork {
		t.Fatal("test shape no longer crosses the parallel threshold; enlarge it")
	}
	fillRandom(rng, a, 0.2)
	fillRandom(rng, b, 0)
	got := NewMatrix(96, 64)
	want := NewMatrix(96, 64)
	MatMulTransA(got, a, b)
	MatMulTransANaive(want, a, b)
	if d := maxAbsDiff(got, want); d > 1e-9 {
		t.Errorf("parallel TransA drift: %v", d)
	}
	// Determinism for a fixed worker split.
	again := NewMatrix(96, 64)
	MatMulTransA(again, a, b)
	for i := range got.Data {
		if got.Data[i] != again.Data[i] {
			t.Fatalf("TransA not deterministic at %d", i)
		}
	}
}

// TestFusedDenseReLUMatchesUnfused pins the fused forward to the two-pass
// composition bit-for-bit.
func TestFusedDenseReLUMatchesUnfused(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := NewDense(rng, 9, 7)
	x := NewMatrix(13, 9)
	fillRandom(rng, x, 0.4)
	fused := d.ForwardReLU(nil, x)
	unfused := ReLUForward(d.Forward(x))
	for i := range fused.Data {
		if fused.Data[i] != unfused.Data[i] {
			t.Fatalf("fused[%d] = %v, two-pass = %v", i, fused.Data[i], unfused.Data[i])
		}
	}
}

// TestFusedDenseReLUGradCheck numerically verifies the fused
// ForwardReLU/BackwardReLU pair, including the needDX input gradient.
func TestFusedDenseReLUGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	d := NewDense(rng, 4, 3)
	x := NewMatrix(5, 4)
	fillRandom(rng, x, 0)

	forward := func() float64 {
		y := d.ForwardReLU(nil, x)
		var loss float64
		for _, v := range y.Data {
			loss += v * v
		}
		return loss
	}
	y := d.ForwardReLU(nil, x)
	dy := NewMatrix(y.Rows, y.Cols)
	for i, v := range y.Data {
		dy.Data[i] = 2 * v
	}
	d.W.ZeroGrad()
	d.B.ZeroGrad()
	dx := d.BackwardReLU(nil, x, y, dy, true)

	check := func(name string, w, grad []float64) {
		t.Helper()
		for i := range w {
			num := numericGrad(forward, w, i)
			if !almostEqual(num, grad[i], 1e-4*(1+math.Abs(num))) {
				t.Fatalf("%s[%d]: analytic %v numeric %v", name, i, grad[i], num)
			}
		}
	}
	check("dW", d.W.W, d.W.Grad)
	check("dB", d.B.W, d.B.Grad)
	check("dX", x.Data, dx.Data)

	// needDX=false must still accumulate parameter gradients identically.
	wGrad := append([]float64(nil), d.W.Grad...)
	d.W.ZeroGrad()
	d.B.ZeroGrad()
	if got := d.BackwardReLU(nil, x, y, dy, false); got != nil {
		t.Fatal("needDX=false should return nil")
	}
	for i := range wGrad {
		if wGrad[i] != d.W.Grad[i] {
			t.Fatalf("dW[%d] differs when skipping dx", i)
		}
	}
}

// TestSetEncoderWSMatchesPlain pins the fused workspace encoder pass —
// forward values and parameter gradients — to the plain allocation path.
func TestSetEncoderWSMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const l, h = 6, 5
	samples := [][][]float64{
		{randVec(rng, l), randVec(rng, l)},
		{randVec(rng, l)},
		{randVec(rng, l), randVec(rng, l), randVec(rng, l)},
	}
	batch := BuildSetBatch(samples, l)

	encA := NewSetEncoder(rand.New(rand.NewSource(3)), l, h)
	encB := NewSetEncoder(rand.New(rand.NewSource(3)), l, h)

	ws := NewWorkspace()
	pooledA, hiddenA := encA.ForwardWS(ws, batch)
	pooledB, hiddenB := encB.Forward(batch)
	for i := range pooledB.Data {
		if pooledA.Data[i] != pooledB.Data[i] {
			t.Fatalf("pooled[%d] differs: %v vs %v", i, pooledA.Data[i], pooledB.Data[i])
		}
	}
	dPooled := NewMatrix(pooledB.Rows, pooledB.Cols)
	for i := range dPooled.Data {
		dPooled.Data[i] = float64(i%5) - 2
	}
	encA.BackwardWS(ws, batch, hiddenA, dPooled)
	encB.Backward(batch, hiddenB, dPooled)
	for p := range encA.Params() {
		ga, gb := encA.Params()[p].Grad, encB.Params()[p].Grad
		for i := range ga {
			if math.Abs(ga[i]-gb[i]) > 1e-12 {
				t.Fatalf("param %d grad[%d]: ws %v plain %v", p, i, ga[i], gb[i])
			}
		}
	}
}
