package nn

import (
	"math"
	"math/rand"
)

// Param is one trainable tensor: weights, accumulated gradient and Adam
// moment estimates, all sharing the tensor's shape.
type Param struct {
	Rows, Cols int
	W          []float64
	Grad       []float64
	M, V       []float64 // Adam first/second moment estimates
}

// NewParam allocates a zeroed parameter tensor.
func NewParam(rows, cols int) *Param {
	n := rows * cols
	return &Param{
		Rows: rows, Cols: cols,
		W:    make([]float64, n),
		Grad: make([]float64, n),
		M:    make([]float64, n),
		V:    make([]float64, n),
	}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() {
	for i := range p.Grad {
		p.Grad[i] = 0
	}
}

// HeInit fills the parameter with He-normal initial weights, the standard
// initialization for ReLU networks.
func (p *Param) HeInit(rng *rand.Rand, fanIn int) {
	std := math.Sqrt(2.0 / float64(fanIn))
	for i := range p.W {
		p.W[i] = rng.NormFloat64() * std
	}
}

// Dense is a fully-connected layer: y = x·W + b.
type Dense struct {
	In, Out int
	W, B    *Param
}

// NewDense creates a dense layer with He-initialized weights and zero bias.
func NewDense(rng *rand.Rand, in, out int) *Dense {
	d := &Dense{In: in, Out: out, W: NewParam(in, out), B: NewParam(1, out)}
	d.W.HeInit(rng, in)
	return d
}

// Forward computes y = x·W + b for a batch x (n×In) and returns y (n×Out).
func (d *Dense) Forward(x *Matrix) *Matrix {
	y := NewMatrix(x.Rows, d.Out)
	w := &Matrix{Rows: d.In, Cols: d.Out, Data: d.W.W}
	MatMul(y, x, w)
	for i := 0; i < y.Rows; i++ {
		row := y.Row(i)
		for j := range row {
			row[j] += d.B.W[j]
		}
	}
	return y
}

// Backward accumulates dW += xᵀ·dy and db += Σ dy, and returns
// dx = dy·Wᵀ. x must be the input that produced dy's forward pass.
func (d *Dense) Backward(x, dy *Matrix) *Matrix {
	gw := &Matrix{Rows: d.In, Cols: d.Out, Data: make([]float64, d.In*d.Out)}
	MatMulTransA(gw, x, dy)
	for i := range gw.Data {
		d.W.Grad[i] += gw.Data[i]
	}
	for i := 0; i < dy.Rows; i++ {
		row := dy.Row(i)
		for j := range row {
			d.B.Grad[j] += row[j]
		}
	}
	dx := NewMatrix(x.Rows, d.In)
	w := &Matrix{Rows: d.In, Cols: d.Out, Data: d.W.W}
	MatMulTransB(dx, dy, w)
	return dx
}

// Params returns the layer's trainable tensors.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// NumParams returns the number of scalar parameters.
func (d *Dense) NumParams() int { return d.In*d.Out + d.Out }

// ReLUForward applies max(0,x) elementwise, returning a new matrix.
func ReLUForward(x *Matrix) *Matrix {
	y := NewMatrix(x.Rows, x.Cols)
	for i, v := range x.Data {
		if v > 0 {
			y.Data[i] = v
		}
	}
	return y
}

// ReLUBackward masks dy by the activation pattern of the forward output y.
func ReLUBackward(dy, y *Matrix) *Matrix {
	dx := NewMatrix(dy.Rows, dy.Cols)
	for i, v := range y.Data {
		if v > 0 {
			dx.Data[i] = dy.Data[i]
		}
	}
	return dx
}

// SigmoidForward applies 1/(1+e^-x) elementwise, returning a new matrix.
func SigmoidForward(x *Matrix) *Matrix {
	y := NewMatrix(x.Rows, x.Cols)
	for i, v := range x.Data {
		y.Data[i] = 1 / (1 + math.Exp(-v))
	}
	return y
}

// SigmoidBackward computes dx = dy ⊙ y(1-y) from the forward output y.
func SigmoidBackward(dy, y *Matrix) *Matrix {
	dx := NewMatrix(dy.Rows, dy.Cols)
	for i, v := range y.Data {
		dx.Data[i] = dy.Data[i] * v * (1 - v)
	}
	return dx
}

// SetBatch is a batch of variable-size sets of feature vectors, stored as
// one concatenated matrix plus per-sample offsets: sample i owns rows
// Offsets[i]:Offsets[i+1] of X. Every set must be non-empty (a query always
// has at least one table, §3.2.1).
type SetBatch struct {
	X       *Matrix
	Offsets []int
}

// NumSamples returns the number of sets in the batch.
func (b SetBatch) NumSamples() int { return len(b.Offsets) - 1 }

// BuildSetBatch concatenates per-sample element vectors into a SetBatch.
// All vectors must have length dim.
func BuildSetBatch(samples [][][]float64, dim int) SetBatch {
	total := 0
	for _, s := range samples {
		total += len(s)
	}
	x := NewMatrix(total, dim)
	offsets := make([]int, len(samples)+1)
	row := 0
	for i, s := range samples {
		offsets[i] = row
		for _, v := range s {
			copy(x.Row(row), v)
			row++
		}
	}
	offsets[len(samples)] = row
	return SetBatch{X: x, Offsets: offsets}
}

// SetEncoder is the paper's per-set module MLPi (§3.2.2): one dense layer
// with ReLU applied to every element vector, followed by average pooling
// over the set: Qvec = 1/|V| Σ ReLU(v·U + b).
type SetEncoder struct {
	Dense *Dense
}

// NewSetEncoder creates a set encoder mapping dim-L element vectors to
// dim-H pooled representations.
func NewSetEncoder(rng *rand.Rand, l, h int) *SetEncoder {
	return &SetEncoder{Dense: NewDense(rng, l, h)}
}

// Forward returns the pooled per-sample representations (n×H) and the
// per-element hidden activations needed for Backward.
func (e *SetEncoder) Forward(b SetBatch) (pooled, hidden *Matrix) {
	hidden = ReLUForward(e.Dense.Forward(b.X))
	n := b.NumSamples()
	pooled = NewMatrix(n, e.Dense.Out)
	for i := 0; i < n; i++ {
		lo, hi := b.Offsets[i], b.Offsets[i+1]
		if hi == lo {
			continue // empty set pools to zero
		}
		out := pooled.Row(i)
		for r := lo; r < hi; r++ {
			row := hidden.Row(r)
			for j, v := range row {
				out[j] += v
			}
		}
		inv := 1 / float64(hi-lo)
		for j := range out {
			out[j] *= inv
		}
	}
	return pooled, hidden
}

// Backward propagates dPooled (n×H) through the pooling and dense layer,
// accumulating parameter gradients. hidden must come from Forward on the
// same batch.
func (e *SetEncoder) Backward(b SetBatch, hidden, dPooled *Matrix) {
	dHidden := NewMatrix(hidden.Rows, hidden.Cols)
	for i := 0; i < b.NumSamples(); i++ {
		lo, hi := b.Offsets[i], b.Offsets[i+1]
		if hi == lo {
			continue
		}
		inv := 1 / float64(hi-lo)
		src := dPooled.Row(i)
		for r := lo; r < hi; r++ {
			dst := dHidden.Row(r)
			for j, v := range src {
				dst[j] = v * inv
			}
		}
	}
	dPre := ReLUBackward(dHidden, hidden)
	e.Dense.Backward(b.X, dPre)
}

// Params returns the encoder's trainable tensors.
func (e *SetEncoder) Params() []*Param { return e.Dense.Params() }
