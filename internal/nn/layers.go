package nn

import (
	"math"
	"math/rand"
)

// Param is one trainable tensor: weights, accumulated gradient and Adam
// moment estimates, all sharing the tensor's shape.
type Param struct {
	Rows, Cols int
	W          []float64
	Grad       []float64
	M, V       []float64 // Adam first/second moment estimates
}

// NewParam allocates a zeroed parameter tensor.
func NewParam(rows, cols int) *Param {
	n := rows * cols
	return &Param{
		Rows: rows, Cols: cols,
		W:    make([]float64, n),
		Grad: make([]float64, n),
		M:    make([]float64, n),
		V:    make([]float64, n),
	}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() {
	for i := range p.Grad {
		p.Grad[i] = 0
	}
}

// HeInit fills the parameter with He-normal initial weights, the standard
// initialization for ReLU networks.
func (p *Param) HeInit(rng *rand.Rand, fanIn int) {
	std := math.Sqrt(2.0 / float64(fanIn))
	for i := range p.W {
		p.W[i] = rng.NormFloat64() * std
	}
}

// Dense is a fully-connected layer: y = x·W + b.
type Dense struct {
	In, Out int
	W, B    *Param

	// wView and gView are prebuilt matrix views over W.W and W.Grad
	// (updated in place, so the backing slices never move): handing the
	// kernels &wView instead of a fresh composite literal keeps the hot
	// paths free of per-call escape allocations.
	wView, gView Matrix
}

// NewDense creates a dense layer with He-initialized weights and zero bias.
func NewDense(rng *rand.Rand, in, out int) *Dense {
	d := &Dense{In: in, Out: out, W: NewParam(in, out), B: NewParam(1, out)}
	d.W.HeInit(rng, in)
	d.wView = Matrix{Rows: in, Cols: out, Data: d.W.W}
	d.gView = Matrix{Rows: in, Cols: out, Data: d.W.Grad}
	return d
}

// weights returns the weight tensor as a matrix view (shared storage).
func (d *Dense) weights() *Matrix { return &d.wView }

// gradW returns the weight gradient as a matrix view (shared storage).
func (d *Dense) gradW() *Matrix { return &d.gView }

// Forward computes y = x·W + b for a batch x (n×In) and returns y (n×Out).
func (d *Dense) Forward(x *Matrix) *Matrix { return d.ForwardWS(nil, x) }

// ForwardWS is Forward writing into a workspace buffer.
func (d *Dense) ForwardWS(ws *Workspace, x *Matrix) *Matrix {
	y := ws.Take(x.Rows, d.Out)
	MatMul(y, x, d.weights())
	bias := d.B.W
	for i := 0; i < y.Rows; i++ {
		row := y.Row(i)[:len(bias)]
		for j, b := range bias {
			row[j] += b
		}
	}
	return y
}

// ForwardReLU computes y = max(0, x·W + b) in one fused pass: the bias add
// and the activation run over the matmul output while it is still hot in
// cache, and no intermediate pre-activation matrix is materialized. The
// output values are bit-identical to ReLUForward(Forward(x)).
func (d *Dense) ForwardReLU(ws *Workspace, x *Matrix) *Matrix {
	y := ws.Take(x.Rows, d.Out)
	MatMul(y, x, d.weights())
	bias := d.B.W
	for i := 0; i < y.Rows; i++ {
		addBiasReLU(y.Row(i)[:len(bias)], bias)
	}
	return y
}

// Backward accumulates dW += xᵀ·dy and db += Σ dy, and returns
// dx = dy·Wᵀ. x must be the input that produced dy's forward pass.
func (d *Dense) Backward(x, dy *Matrix) *Matrix { return d.BackwardWS(nil, x, dy, true) }

// BackwardWS is Backward with workspace-backed scratch. dW accumulates
// straight into W.Grad (no intermediate gradient matrix); when needDX is
// false the input gradient — dead weight for a first layer — is skipped
// entirely and nil is returned.
func (d *Dense) BackwardWS(ws *Workspace, x, dy *Matrix, needDX bool) *Matrix {
	MatMulTransAAcc(d.gradW(), x, dy)
	db := d.B.Grad
	for i := 0; i < dy.Rows; i++ {
		// FMA with multiplier 1 rounds like a plain add, so this stays
		// bit-identical to the scalar accumulation whatever was dispatched.
		axpy(db, 1, dy.Row(i))
	}
	if !needDX {
		return nil
	}
	dx := ws.Take(x.Rows, d.In)
	MatMulTransB(dx, dy, d.weights())
	return dx
}

// BackwardReLU backpropagates through the fused ForwardReLU: y must be the
// fused output, dy the gradient w.r.t. y. The ReLU mask is applied into a
// scratch buffer (dy is left untouched) and the dense backward follows.
func (d *Dense) BackwardReLU(ws *Workspace, x, y, dy *Matrix, needDX bool) *Matrix {
	dPre := ReLUBackwardWS(ws, dy, y)
	return d.BackwardWS(ws, x, dPre, needDX)
}

// Params returns the layer's trainable tensors.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// NumParams returns the number of scalar parameters.
func (d *Dense) NumParams() int { return d.In*d.Out + d.Out }

// ReLUForward applies max(0,x) elementwise, returning a new matrix.
func ReLUForward(x *Matrix) *Matrix { return ReLUForwardWS(nil, x) }

// ReLUForwardWS is ReLUForward writing into a workspace buffer.
func ReLUForwardWS(ws *Workspace, x *Matrix) *Matrix {
	y := ws.Take(x.Rows, x.Cols)
	for i, v := range x.Data {
		if v > 0 {
			y.Data[i] = v
		} else {
			y.Data[i] = 0
		}
	}
	return y
}

// ReLUBackward masks dy by the activation pattern of the forward output y.
func ReLUBackward(dy, y *Matrix) *Matrix { return ReLUBackwardWS(nil, dy, y) }

// ReLUBackwardWS is ReLUBackward writing into a workspace buffer.
func ReLUBackwardWS(ws *Workspace, dy, y *Matrix) *Matrix {
	dx := ws.Take(dy.Rows, dy.Cols)
	reluMask(dx.Data, dy.Data, y.Data)
	return dx
}

// SigmoidForward applies 1/(1+e^-x) elementwise, returning a new matrix.
func SigmoidForward(x *Matrix) *Matrix { return SigmoidForwardWS(nil, x) }

// SigmoidForwardWS is SigmoidForward writing into a workspace buffer.
func SigmoidForwardWS(ws *Workspace, x *Matrix) *Matrix {
	y := ws.Take(x.Rows, x.Cols)
	for i, v := range x.Data {
		y.Data[i] = 1 / (1 + math.Exp(-v))
	}
	return y
}

// SigmoidBackward computes dx = dy ⊙ y(1-y) from the forward output y.
func SigmoidBackward(dy, y *Matrix) *Matrix { return SigmoidBackwardWS(nil, dy, y) }

// SigmoidBackwardWS is SigmoidBackward writing into a workspace buffer.
func SigmoidBackwardWS(ws *Workspace, dy, y *Matrix) *Matrix {
	dx := ws.Take(dy.Rows, dy.Cols)
	yd := y.Data[:len(dx.Data)]
	dyd := dy.Data[:len(dx.Data)]
	for i := range dx.Data {
		v := yd[i]
		dx.Data[i] = dyd[i] * v * (1 - v)
	}
	return dx
}

// SetBatch is a batch of variable-size sets of feature vectors, stored as
// one concatenated matrix plus per-sample offsets: sample i owns rows
// Offsets[i]:Offsets[i+1] of X. Every set must be non-empty (a query always
// has at least one table, §3.2.1).
type SetBatch struct {
	X       *Matrix
	Offsets []int
}

// NumSamples returns the number of sets in the batch.
func (b SetBatch) NumSamples() int { return len(b.Offsets) - 1 }

// BuildSetBatch concatenates per-sample element vectors into a SetBatch.
// All vectors must have length dim.
func BuildSetBatch(samples [][][]float64, dim int) SetBatch {
	return BuildSetBatchWS(nil, samples, dim)
}

// BuildSetBatchWS is BuildSetBatch writing into workspace buffers.
func BuildSetBatchWS(ws *Workspace, samples [][][]float64, dim int) SetBatch {
	total := 0
	for _, s := range samples {
		total += len(s)
	}
	x := ws.Take(total, dim)
	offsets := ws.TakeInts(len(samples) + 1)
	row := 0
	for i, s := range samples {
		offsets[i] = row
		for _, v := range s {
			dst := x.Row(row)
			// Zero-pad short vectors: recycled storage would otherwise
			// leak a previous batch's values into the tail.
			for n := copy(dst, v); n < len(dst); n++ {
				dst[n] = 0
			}
			row++
		}
	}
	offsets[len(samples)] = row
	return SetBatch{X: x, Offsets: offsets}
}

// SetEncoder is the paper's per-set module MLPi (§3.2.2): one dense layer
// with ReLU applied to every element vector, followed by average pooling
// over the set: Qvec = 1/|V| Σ ReLU(v·U + b).
type SetEncoder struct {
	Dense *Dense
}

// NewSetEncoder creates a set encoder mapping dim-L element vectors to
// dim-H pooled representations.
func NewSetEncoder(rng *rand.Rand, l, h int) *SetEncoder {
	return &SetEncoder{Dense: NewDense(rng, l, h)}
}

// Forward returns the pooled per-sample representations (n×H) and the
// per-element hidden activations needed for Backward.
func (e *SetEncoder) Forward(b SetBatch) (pooled, hidden *Matrix) {
	return e.ForwardWS(nil, b)
}

// ForwardWS is Forward with the dense layer and ReLU fused and both outputs
// taken from the workspace.
func (e *SetEncoder) ForwardWS(ws *Workspace, b SetBatch) (pooled, hidden *Matrix) {
	hidden = e.Dense.ForwardReLU(ws, b.X)
	n := b.NumSamples()
	pooled = ws.Take(n, e.Dense.Out)
	for i := 0; i < n; i++ {
		lo, hi := b.Offsets[i], b.Offsets[i+1]
		out := pooled.Row(i)
		if hi == lo {
			for j := range out {
				out[j] = 0 // empty set pools to zero
			}
			continue
		}
		copy(out, hidden.Row(lo))
		for r := lo + 1; r < hi; r++ {
			axpy(out, 1, hidden.Row(r)) // multiplier 1: bit-identical to +=
		}
		inv := 1 / float64(hi-lo)
		for j := range out {
			out[j] *= inv
		}
	}
	return pooled, hidden
}

// Backward propagates dPooled (n×H) through the pooling and dense layer,
// accumulating parameter gradients. hidden must come from Forward on the
// same batch.
func (e *SetEncoder) Backward(b SetBatch, hidden, dPooled *Matrix) {
	e.BackwardWS(nil, b, hidden, dPooled)
}

// BackwardWS is Backward with workspace-backed scratch. The pooling spread
// and the ReLU mask are fused into one pass, and the input gradient — the
// encoder is the first layer, so nothing consumes it — is never computed.
func (e *SetEncoder) BackwardWS(ws *Workspace, b SetBatch, hidden, dPooled *Matrix) {
	dPre := ws.Take(hidden.Rows, hidden.Cols)
	for i := 0; i < b.NumSamples(); i++ {
		lo, hi := b.Offsets[i], b.Offsets[i+1]
		if hi == lo {
			continue
		}
		inv := 1 / float64(hi-lo)
		src := dPooled.Row(i)
		for r := lo; r < hi; r++ {
			act := hidden.Row(r)[:len(src)]
			dst := dPre.Row(r)[:len(src)]
			for j, v := range src {
				if act[j] > 0 {
					dst[j] = v * inv
				} else {
					dst[j] = 0
				}
			}
		}
	}
	e.Dense.BackwardWS(ws, b.X, dPre, false)
}

// Params returns the encoder's trainable tensors.
func (e *SetEncoder) Params() []*Param { return e.Dense.Params() }
