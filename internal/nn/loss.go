package nn

import "math"

// Loss is a scalar training objective over batches of predictions and
// targets. Gradients are with respect to the predictions.
type Loss interface {
	// Eval returns the mean loss over the batch and dL/dpred for each
	// element (already divided by the batch size).
	Eval(pred, target []float64) (loss float64, grad []float64)
	// Name identifies the loss in logs and experiment output.
	Name() string
}

// QErrorLoss is the paper's training objective (§3.2.4): the mean q-error
// max(ŷ/y, y/ŷ), with both sides clamped to Floor to keep the ratio finite
// near zero. The true gradient -y/ŷ² diverges as ŷ→0, so per-element
// gradients are clipped to ±MaxGrad (before batch averaging); clipping
// preserves the descent direction while keeping Adam's moment estimates
// sane — the role TensorFlow's numerics played for the original authors.
type QErrorLoss struct {
	Floor   float64 // value clamp, default 1e-3
	MaxGrad float64 // per-element gradient clip, default 1e4
}

// Name implements Loss.
func (QErrorLoss) Name() string { return "q-error" }

// Eval implements Loss.
func (l QErrorLoss) Eval(pred, target []float64) (float64, []float64) {
	floor := l.Floor
	if floor <= 0 {
		floor = 1e-3
	}
	maxGrad := l.MaxGrad
	if maxGrad <= 0 {
		maxGrad = 1e4
	}
	n := float64(len(pred))
	grad := make([]float64, len(pred))
	var total float64
	for i, p := range pred {
		y := math.Max(target[i], floor)
		p = math.Max(p, floor)
		var g float64
		if p >= y {
			total += p / y
			g = 1 / y
		} else {
			total += y / p
			g = -y / (p * p)
		}
		grad[i] = clip(g, maxGrad) / n
	}
	return total / n, grad
}

// LogQErrorLoss is the q-error expressed over log-normalized predictions,
// used for cardinality models (MSCN) whose outputs live on a normalized log
// scale: for predictions and targets s ∈ [0,1] representing
// (log card − logMin)/(logMax − logMin), the linear-space q-error is
// exp(Scale·|s_pred − s_true|) with Scale = logMax − logMin. Minimizing it
// is the paper's objective computed where it is numerically stable.
type LogQErrorLoss struct {
	Scale   float64 // logMax - logMin of the target normalization
	MaxGrad float64 // per-element gradient clip, default 1e4
}

// Name implements Loss.
func (LogQErrorLoss) Name() string { return "log-q-error" }

// Eval implements Loss.
func (l LogQErrorLoss) Eval(pred, target []float64) (float64, []float64) {
	maxGrad := l.MaxGrad
	if maxGrad <= 0 {
		maxGrad = 1e4
	}
	n := float64(len(pred))
	grad := make([]float64, len(pred))
	var total float64
	for i, p := range pred {
		d := p - target[i]
		q := math.Exp(l.Scale * math.Abs(d))
		total += q
		g := l.Scale * q
		if d < 0 {
			g = -g
		}
		grad[i] = clip(g, maxGrad) / n
	}
	return total / n, grad
}

// MSELoss is the mean squared error, one of the alternative objectives the
// paper evaluated (§3.2.4).
type MSELoss struct{}

// Name implements Loss.
func (MSELoss) Name() string { return "mse" }

// Eval implements Loss.
func (MSELoss) Eval(pred, target []float64) (float64, []float64) {
	n := float64(len(pred))
	grad := make([]float64, len(pred))
	var total float64
	for i, p := range pred {
		d := p - target[i]
		total += d * d
		grad[i] = 2 * d / n
	}
	return total / n, grad
}

// MAELoss is the mean absolute error, the paper's other alternative
// objective (§3.2.4).
type MAELoss struct{}

// Name implements Loss.
func (MAELoss) Name() string { return "mae" }

// Eval implements Loss.
func (MAELoss) Eval(pred, target []float64) (float64, []float64) {
	n := float64(len(pred))
	grad := make([]float64, len(pred))
	var total float64
	for i, p := range pred {
		d := p - target[i]
		if d >= 0 {
			total += d
			grad[i] = 1 / n
		} else {
			total -= d
			grad[i] = -1 / n
		}
	}
	return total / n, grad
}

// LossByName resolves a loss by its Name; it defaults to q-error for
// unknown names (the paper's chosen objective).
func LossByName(name string) Loss {
	switch name {
	case "mse":
		return MSELoss{}
	case "mae":
		return MAELoss{}
	default:
		return QErrorLoss{}
	}
}

func clip(g, lim float64) float64 {
	if g > lim {
		return lim
	}
	if g < -lim {
		return -lim
	}
	return g
}
