// Package nn is the from-scratch neural-network substrate of the
// reproduction: row-major float64 matrices, dense layers, ReLU/Sigmoid
// activations, mean-pooled set encoders (the building block of both CRN and
// MSCN), the Adam optimizer and the paper's q-error training loss. The
// original system trains with TensorFlow (§3.3); this package replaces it
// with a deterministic, dependency-free implementation verified by numeric
// gradient checks.
//
// The matrix kernels come in two tiers: the optimized kernels below
// (register-blocked inner loops, sparsity-aware row dispatch, a parallel
// transpose-accumulate for weight gradients) and the straightforward
// reference kernels in reference.go. The optimized kernels may reassociate
// floating-point sums, so they agree with the reference to the 1e-9 gate
// enforced by the kernel tests rather than bitwise. Results are
// deterministic across machines with the same kernel ISA because no kernel
// lets core count affect any output element's summation order:
// MatMul/MatMulTransB parallelize by partitioning output rows (each element
// is still accumulated serially in fixed k order), and MatMulTransAAcc
// splits its shared dimension into a shape-derived fixed chunk count
// (transASplit), never GOMAXPROCS. Any new kernel must preserve this
// invariant. The inner loops themselves are the dispatched kernel set of
// kernels.go (AVX2+FMA assembly where available, portable Go otherwise;
// see KernelISA) — selection happens once at init, so within a process
// every serving path shares one kernel set and estimates stay bit-identical
// across batch compositions and entry points, while results may differ by
// ulps between hosts that dispatch different ISAs (or a noasm build).
package nn

import (
	"fmt"
	"runtime"
	"sync"
)

// Matrix is a dense row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zeroed Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (shared storage).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// rowWorkers returns how many goroutines a row range is worth: at most
// GOMAXPROCS, and at least minRowsPerWorker rows per goroutine. Callers
// dispatch the serial case without building a closure, so small kernels
// stay allocation-free.
func rowWorkers(rows, minRowsPerWorker int) int {
	workers := runtime.GOMAXPROCS(0)
	if workers > rows/minRowsPerWorker {
		workers = rows / minRowsPerWorker
	}
	return workers
}

// parallelRows runs fn over [0, rows) split across workers when the work is
// large enough to amortize goroutine overhead.
func parallelRows(rows, minRowsPerWorker int, fn func(lo, hi int)) {
	workers := rowWorkers(rows, minRowsPerWorker)
	if workers <= 1 {
		fn(0, rows)
		return
	}
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	for lo := 0; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MatMul computes dst = a·b. dst must not alias a or b.
//
// Each output row is produced by one goroutine with a k-major accumulation:
// rows of a that are mostly zero (one-hot feature vectors) take a
// zero-skipping path, dense rows a 4-way unrolled path that loads/stores the
// destination row once per four inner products.
func MatMul(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("nn: MatMul shape mismatch (%dx%d)·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	if rowWorkers(a.Rows, 16) <= 1 {
		matMulRows(dst, a, b, 0, a.Rows)
		return
	}
	parallelRows(a.Rows, 16, func(lo, hi int) {
		matMulRows(dst, a, b, lo, hi)
	})
}

func matMulRows(dst, a, b *Matrix, lo, hi int) {
	ac, bc := a.Cols, b.Cols
	bd := b.Data
	for i := lo; i < hi; i++ {
		dstRow := dst.Data[i*bc : i*bc+bc]
		for j := range dstRow {
			dstRow[j] = 0
		}
		aRow := a.Data[i*ac : i*ac+ac]
		nz := 0
		for _, v := range aRow {
			if v != 0 {
				nz++
			}
		}
		if nz*4 <= len(aRow) {
			// Sparse row (feature one-hots): touch only nonzero k.
			for k, av := range aRow {
				if av == 0 {
					continue
				}
				axpy(dstRow, av, bd[k*bc:k*bc+bc])
			}
			continue
		}
		vecMat(dstRow, aRow, bd[:ac*bc])
	}
}

// transAMinWork is the flop threshold below which MatMulTransAAcc stays
// serial: per-worker accumulator slabs and the merge pass only pay off on
// large gradients.
const transAMinWork = 1 << 22

// transASplit is the fixed partial-accumulator count of the parallel
// MatMulTransAAcc path. The split depends only on the product's shape —
// never on GOMAXPROCS — so the floating-point summation order, and with it
// every trained weight, is identical on every machine; the scheduler just
// runs the fixed set of goroutines with whatever parallelism exists.
const transASplit = 8

// MatMulTransA computes dst = aᵀ·b (used for weight gradients:
// dW = xᵀ·dy). dst must not alias a or b.
func MatMulTransA(dst, a, b *Matrix) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("nn: MatMulTransA shape mismatch (%dx%d)ᵀ·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	for j := range dst.Data {
		dst.Data[j] = 0
	}
	MatMulTransAAcc(dst, a, b)
}

// MatMulTransAAcc accumulates dst += aᵀ·b without clearing dst first — the
// shape gradient descent needs: Dense.Backward adds dW = xᵀ·dy straight
// into the parameter's Grad with no intermediate matrix. Large products are
// split over the shared outer dimension into transASplit fixed chunks run
// concurrently, each accumulating into a private slab merged back in chunk
// order. The split (and so the result, bit for bit) depends only on the
// shape, not on core count.
func MatMulTransAAcc(dst, a, b *Matrix) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("nn: MatMulTransAAcc shape mismatch (%dx%d)ᵀ·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	rows := a.Rows
	workers := transASplit
	if workers > rows/32 {
		workers = rows / 32
	}
	if workers <= 1 || rows*a.Cols*b.Cols < transAMinWork {
		transAAccRange(dst.Data, a, b, 0, rows)
		return
	}
	// Per-worker accumulators, merged at the end. Worker 0 owns dst itself.
	partials := make([][]float64, workers-1)
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			acc := dst.Data
			if w > 0 {
				acc = takeSlab(len(dst.Data))
				partials[w-1] = acc
			}
			transAAccRange(acc, a, b, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, p := range partials {
		if p == nil {
			continue
		}
		axpy(dst.Data, 1, p)
		putSlab(p)
	}
}

// transAAccRange accumulates rows [lo, hi) of the shared outer dimension
// into acc, four input rows per pass so each destination row is loaded and
// stored once per quad.
func transAAccRange(acc []float64, a, b *Matrix, lo, hi int) {
	ac, bc := a.Cols, b.Cols
	ad, bd := a.Data, b.Data
	k := lo
	for ; k+3 < hi; k += 4 {
		aR0 := ad[k*ac : k*ac+ac]
		aR1 := ad[(k+1)*ac : (k+1)*ac+ac]
		aR2 := ad[(k+2)*ac : (k+2)*ac+ac]
		aR3 := ad[(k+3)*ac : (k+3)*ac+ac]
		aR1 = aR1[:len(aR0)]
		aR2 = aR2[:len(aR0)]
		aR3 = aR3[:len(aR0)]
		bR0 := bd[k*bc : k*bc+bc]
		bR1 := bd[(k+1)*bc : (k+1)*bc+bc]
		bR2 := bd[(k+2)*bc : (k+2)*bc+bc]
		bR3 := bd[(k+3)*bc : (k+3)*bc+bc]
		bR1 = bR1[:len(bR0)]
		bR2 = bR2[:len(bR0)]
		bR3 = bR3[:len(bR0)]
		for i, a0 := range aR0 {
			a1, a2, a3 := aR1[i], aR2[i], aR3[i]
			dr := acc[i*bc : i*bc+bc][:len(bR0)]
			if a0 != 0 && a1 != 0 && a2 != 0 && a3 != 0 {
				axpy4(dr, bR0, bR1, bR2, bR3, a0, a1, a2, a3)
				continue
			}
			if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
				continue
			}
			if a0 != 0 {
				axpy(dr, a0, bR0)
			}
			if a1 != 0 {
				axpy(dr, a1, bR1)
			}
			if a2 != 0 {
				axpy(dr, a2, bR2)
			}
			if a3 != 0 {
				axpy(dr, a3, bR3)
			}
		}
	}
	for ; k < hi; k++ {
		aRow := ad[k*ac : k*ac+ac]
		bRow := bd[k*bc : k*bc+bc]
		for i, av := range aRow {
			if av == 0 {
				continue
			}
			axpy(acc[i*bc:i*bc+bc], av, bRow)
		}
	}
}

// slabPool recycles the per-worker accumulator slabs of MatMulTransAAcc.
var slabPool sync.Pool

func takeSlab(n int) []float64 {
	if s, ok := slabPool.Get().([]float64); ok && cap(s) >= n {
		s = s[:n]
		for i := range s {
			s[i] = 0
		}
		return s
	}
	return make([]float64, n)
}

func putSlab(s []float64) { slabPool.Put(s) } //nolint:staticcheck // slice header boxing is fine here

// MatMulTransB computes dst = a·bᵀ (used for input gradients:
// dx = dy·Wᵀ). dst must not alias a or b.
//
// Four rows of b are dotted against each row of a per pass, so the a row
// streams from cache once per four outputs.
func MatMulTransB(dst, a, b *Matrix) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("nn: MatMulTransB shape mismatch (%dx%d)·(%dx%d)ᵀ->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	if rowWorkers(a.Rows, 16) <= 1 {
		matMulTransBRows(dst, a, b, 0, a.Rows)
		return
	}
	parallelRows(a.Rows, 16, func(lo, hi int) {
		matMulTransBRows(dst, a, b, lo, hi)
	})
}

func matMulTransBRows(dst, a, b *Matrix, lo, hi int) {
	ac, dc := a.Cols, dst.Cols
	bd := b.Data
	for i := lo; i < hi; i++ {
		aRow := a.Data[i*ac : i*ac+ac]
		dstRow := dst.Data[i*dc : i*dc+dc]
		j := 0
		for ; j+3 < b.Rows; j += 4 {
			dstRow[j], dstRow[j+1], dstRow[j+2], dstRow[j+3] = dot4(aRow,
				bd[j*ac:j*ac+ac],
				bd[(j+1)*ac:(j+1)*ac+ac],
				bd[(j+2)*ac:(j+2)*ac+ac],
				bd[(j+3)*ac:(j+3)*ac+ac])
		}
		for ; j < b.Rows; j++ {
			dstRow[j] = dot(aRow, bd[j*ac:j*ac+ac])
		}
	}
}
