// Package nn is the from-scratch neural-network substrate of the
// reproduction: row-major float64 matrices, dense layers, ReLU/Sigmoid
// activations, mean-pooled set encoders (the building block of both CRN and
// MSCN), the Adam optimizer and the paper's q-error training loss. The
// original system trains with TensorFlow (§3.3); this package replaces it
// with a deterministic, dependency-free implementation verified by numeric
// gradient checks.
package nn

import (
	"fmt"
	"runtime"
	"sync"
)

// Matrix is a dense row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zeroed Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (shared storage).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// parallelRows runs fn over [0, rows) split across workers when the work is
// large enough to amortize goroutine overhead.
func parallelRows(rows, minRowsPerWorker int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > rows/minRowsPerWorker {
		workers = rows / minRowsPerWorker
	}
	if workers <= 1 {
		fn(0, rows)
		return
	}
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	for lo := 0; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MatMul computes dst = a·b. dst must not alias a or b.
func MatMul(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("nn: MatMul shape mismatch (%dx%d)·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	parallelRows(a.Rows, 16, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dstRow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
			for j := range dstRow {
				dstRow[j] = 0
			}
			aRow := a.Data[i*a.Cols : (i+1)*a.Cols]
			for k, av := range aRow {
				if av == 0 {
					continue
				}
				bRow := b.Data[k*b.Cols : (k+1)*b.Cols]
				for j, bv := range bRow {
					dstRow[j] += av * bv
				}
			}
		}
	})
}

// MatMulTransA computes dst = aᵀ·b (used for weight gradients:
// dW = xᵀ·dy). dst must not alias a or b.
func MatMulTransA(dst, a, b *Matrix) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("nn: MatMulTransA shape mismatch (%dx%d)ᵀ·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	for j := range dst.Data {
		dst.Data[j] = 0
	}
	// Accumulate row-by-row of the shared outer dimension; single-threaded
	// because every input row touches all of dst.
	for k := 0; k < a.Rows; k++ {
		aRow := a.Data[k*a.Cols : (k+1)*a.Cols]
		bRow := b.Data[k*b.Cols : (k+1)*b.Cols]
		for i, av := range aRow {
			if av == 0 {
				continue
			}
			dstRow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
			for j, bv := range bRow {
				dstRow[j] += av * bv
			}
		}
	}
}

// MatMulTransB computes dst = a·bᵀ (used for input gradients:
// dx = dy·Wᵀ). dst must not alias a or b.
func MatMulTransB(dst, a, b *Matrix) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("nn: MatMulTransB shape mismatch (%dx%d)·(%dx%d)ᵀ->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	parallelRows(a.Rows, 16, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			aRow := a.Data[i*a.Cols : (i+1)*a.Cols]
			dstRow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
			for j := 0; j < b.Rows; j++ {
				bRow := b.Data[j*b.Cols : (j+1)*b.Cols]
				var s float64
				for k, av := range aRow {
					s += av * bRow[k]
				}
				dstRow[j] = s
			}
		}
	})
}
