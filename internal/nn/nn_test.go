package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatMul(t *testing.T) {
	a := &Matrix{Rows: 2, Cols: 3, Data: []float64{1, 2, 3, 4, 5, 6}}
	b := &Matrix{Rows: 3, Cols: 2, Data: []float64{7, 8, 9, 10, 11, 12}}
	dst := NewMatrix(2, 2)
	MatMul(dst, a, b)
	want := []float64{58, 64, 139, 154}
	for i, v := range want {
		if dst.Data[i] != v {
			t.Fatalf("MatMul[%d] = %v, want %v", i, dst.Data[i], v)
		}
	}
}

func TestMatMulTransposedVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewMatrix(4, 3)
	b := NewMatrix(4, 5)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	// aᵀ·b via explicit transpose.
	at := NewMatrix(3, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	want := NewMatrix(3, 5)
	MatMul(want, at, b)
	got := NewMatrix(3, 5)
	MatMulTransA(got, a, b)
	for i := range want.Data {
		if !almostEqual(got.Data[i], want.Data[i], 1e-12) {
			t.Fatalf("MatMulTransA[%d] = %v, want %v", i, got.Data[i], want.Data[i])
		}
	}
	// a·bᵀ with shapes (4x3)·(5x3)ᵀ.
	c := NewMatrix(5, 3)
	for i := range c.Data {
		c.Data[i] = rng.NormFloat64()
	}
	ct := NewMatrix(3, 5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 3; j++ {
			ct.Set(j, i, c.At(i, j))
		}
	}
	want2 := NewMatrix(4, 5)
	MatMul(want2, a, ct)
	got2 := NewMatrix(4, 5)
	MatMulTransB(got2, a, c)
	for i := range want2.Data {
		if !almostEqual(got2.Data[i], want2.Data[i], 1e-12) {
			t.Fatalf("MatMulTransB[%d] = %v, want %v", i, got2.Data[i], want2.Data[i])
		}
	}
}

func TestMatMulPanicsOnShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MatMul(NewMatrix(2, 2), NewMatrix(2, 3), NewMatrix(2, 2))
}

func TestActivations(t *testing.T) {
	x := &Matrix{Rows: 1, Cols: 4, Data: []float64{-2, -0.5, 0.5, 2}}
	y := ReLUForward(x)
	want := []float64{0, 0, 0.5, 2}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Fatalf("ReLU[%d] = %v", i, y.Data[i])
		}
	}
	s := SigmoidForward(x)
	for i, v := range x.Data {
		wantS := 1 / (1 + math.Exp(-v))
		if !almostEqual(s.Data[i], wantS, 1e-12) {
			t.Fatalf("Sigmoid[%d] = %v, want %v", i, s.Data[i], wantS)
		}
		if s.Data[i] <= 0 || s.Data[i] >= 1 {
			t.Fatalf("Sigmoid out of (0,1): %v", s.Data[i])
		}
	}
}

// numericGrad estimates d f / d w[i] by central differences.
func numericGrad(f func() float64, w []float64, i int) float64 {
	const h = 1e-6
	orig := w[i]
	w[i] = orig + h
	fp := f()
	w[i] = orig - h
	fm := f()
	w[i] = orig
	return (fp - fm) / (2 * h)
}

func TestDenseGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	d := NewDense(rng, 3, 2)
	x := NewMatrix(4, 3)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	target := []float64{0.3, -0.2, 0.8, 0.1}

	// Scalar objective: MSE between summed outputs and target.
	forward := func() float64 {
		y := d.Forward(x)
		var loss float64
		for i := 0; i < y.Rows; i++ {
			var s float64
			for _, v := range y.Row(i) {
				s += v
			}
			diff := s - target[i]
			loss += diff * diff
		}
		return loss
	}
	// Analytic gradient.
	y := d.Forward(x)
	dy := NewMatrix(y.Rows, y.Cols)
	for i := 0; i < y.Rows; i++ {
		var s float64
		for _, v := range y.Row(i) {
			s += v
		}
		g := 2 * (s - target[i])
		for j := 0; j < y.Cols; j++ {
			dy.Set(i, j, g)
		}
	}
	d.W.ZeroGrad()
	d.B.ZeroGrad()
	dx := d.Backward(x, dy)

	for i := range d.W.W {
		num := numericGrad(forward, d.W.W, i)
		if !almostEqual(num, d.W.Grad[i], 1e-4*(1+math.Abs(num))) {
			t.Fatalf("dW[%d]: analytic %v numeric %v", i, d.W.Grad[i], num)
		}
	}
	for i := range d.B.W {
		num := numericGrad(forward, d.B.W, i)
		if !almostEqual(num, d.B.Grad[i], 1e-4*(1+math.Abs(num))) {
			t.Fatalf("dB[%d]: analytic %v numeric %v", i, d.B.Grad[i], num)
		}
	}
	for i := range x.Data {
		num := numericGrad(forward, x.Data, i)
		if !almostEqual(num, dx.Data[i], 1e-4*(1+math.Abs(num))) {
			t.Fatalf("dX[%d]: analytic %v numeric %v", i, dx.Data[i], num)
		}
	}
}

func TestSetEncoderGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const l, h = 4, 3
	enc := NewSetEncoder(rng, l, h)
	samples := [][][]float64{
		{randVec(rng, l), randVec(rng, l), randVec(rng, l)},
		{randVec(rng, l)},
		{randVec(rng, l), randVec(rng, l)},
	}
	batch := BuildSetBatch(samples, l)

	forward := func() float64 {
		pooled, _ := enc.Forward(batch)
		var loss float64
		for _, v := range pooled.Data {
			loss += v * v
		}
		return loss
	}
	pooled, hidden := enc.Forward(batch)
	dPooled := NewMatrix(pooled.Rows, pooled.Cols)
	for i, v := range pooled.Data {
		dPooled.Data[i] = 2 * v
	}
	for _, p := range enc.Params() {
		p.ZeroGrad()
	}
	enc.Backward(batch, hidden, dPooled)

	w := enc.Dense.W
	for i := range w.W {
		num := numericGrad(forward, w.W, i)
		if !almostEqual(num, w.Grad[i], 1e-4*(1+math.Abs(num))) {
			t.Fatalf("encoder dW[%d]: analytic %v numeric %v", i, w.Grad[i], num)
		}
	}
	b := enc.Dense.B
	for i := range b.W {
		num := numericGrad(forward, b.W, i)
		if !almostEqual(num, b.Grad[i], 1e-4*(1+math.Abs(num))) {
			t.Fatalf("encoder dB[%d]: analytic %v numeric %v", i, b.Grad[i], num)
		}
	}
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestSetEncoderPoolingIsAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	enc := NewSetEncoder(rng, 2, 2)
	v1, v2 := []float64{1, 0}, []float64{0, 1}
	single1, _ := enc.Forward(BuildSetBatch([][][]float64{{v1}}, 2))
	single2, _ := enc.Forward(BuildSetBatch([][][]float64{{v2}}, 2))
	both, _ := enc.Forward(BuildSetBatch([][][]float64{{v1, v2}}, 2))
	for j := 0; j < 2; j++ {
		want := (single1.At(0, j) + single2.At(0, j)) / 2
		if !almostEqual(both.At(0, j), want, 1e-12) {
			t.Fatalf("pooling not average at %d: %v vs %v", j, both.At(0, j), want)
		}
	}
}

func TestSigmoidBackwardMatchesNumeric(t *testing.T) {
	x := &Matrix{Rows: 1, Cols: 3, Data: []float64{-1, 0.2, 2}}
	forward := func() float64 {
		y := SigmoidForward(x)
		var s float64
		for _, v := range y.Data {
			s += v * v
		}
		return s
	}
	y := SigmoidForward(x)
	dy := NewMatrix(1, 3)
	for i, v := range y.Data {
		dy.Data[i] = 2 * v
	}
	dx := SigmoidBackward(dy, y)
	for i := range x.Data {
		num := numericGrad(forward, x.Data, i)
		if !almostEqual(num, dx.Data[i], 1e-6) {
			t.Fatalf("sigmoid dX[%d]: %v vs %v", i, dx.Data[i], num)
		}
	}
}

func TestQErrorLoss(t *testing.T) {
	l := QErrorLoss{}
	loss, grad := l.Eval([]float64{0.5}, []float64{0.25})
	if !almostEqual(loss, 2, 1e-12) {
		t.Errorf("loss = %v, want 2", loss)
	}
	if grad[0] <= 0 {
		t.Errorf("overestimate should have positive gradient, got %v", grad[0])
	}
	loss, grad = l.Eval([]float64{0.25}, []float64{0.5})
	if !almostEqual(loss, 2, 1e-12) {
		t.Errorf("loss = %v, want 2", loss)
	}
	if grad[0] >= 0 {
		t.Errorf("underestimate should have negative gradient, got %v", grad[0])
	}
	// Perfect prediction: loss 1.
	loss, _ = l.Eval([]float64{0.4}, []float64{0.4})
	if !almostEqual(loss, 1, 1e-12) {
		t.Errorf("perfect loss = %v, want 1", loss)
	}
}

func TestQErrorLossGradClip(t *testing.T) {
	l := QErrorLoss{Floor: 1e-3, MaxGrad: 100}
	_, grad := l.Eval([]float64{1e-3}, []float64{1})
	if math.Abs(grad[0]) > 100 {
		t.Errorf("gradient not clipped: %v", grad[0])
	}
}

func TestQErrorLossAtLeastOneProperty(t *testing.T) {
	l := QErrorLoss{}
	f := func(p, y float64) bool {
		p, y = math.Abs(p), math.Abs(y)
		if math.IsInf(p, 0) || math.IsInf(y, 0) {
			return true
		}
		loss, _ := l.Eval([]float64{p}, []float64{y})
		return loss >= 1-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestLogQErrorLoss(t *testing.T) {
	l := LogQErrorLoss{Scale: math.Log(1000)}
	// One decade apart on a 3-decade scale: q-error should be 10.
	loss, grad := l.Eval([]float64{2.0 / 3}, []float64{1.0 / 3})
	if !almostEqual(loss, 10, 1e-9) {
		t.Errorf("loss = %v, want 10", loss)
	}
	if grad[0] <= 0 {
		t.Errorf("overestimate gradient sign: %v", grad[0])
	}
	loss, _ = l.Eval([]float64{0.5}, []float64{0.5})
	if !almostEqual(loss, 1, 1e-12) {
		t.Errorf("perfect loss = %v", loss)
	}
}

func TestMSEAndMAELoss(t *testing.T) {
	mse := MSELoss{}
	loss, grad := mse.Eval([]float64{1, 2}, []float64{0, 0})
	if !almostEqual(loss, 2.5, 1e-12) {
		t.Errorf("mse = %v", loss)
	}
	if !almostEqual(grad[0], 1, 1e-12) || !almostEqual(grad[1], 2, 1e-12) {
		t.Errorf("mse grad = %v", grad)
	}
	mae := MAELoss{}
	loss, grad = mae.Eval([]float64{1, -2}, []float64{0, 0})
	if !almostEqual(loss, 1.5, 1e-12) {
		t.Errorf("mae = %v", loss)
	}
	if grad[0] <= 0 || grad[1] >= 0 {
		t.Errorf("mae grad = %v", grad)
	}
}

func TestLossByName(t *testing.T) {
	if LossByName("mse").Name() != "mse" {
		t.Error("mse lookup failed")
	}
	if LossByName("mae").Name() != "mae" {
		t.Error("mae lookup failed")
	}
	if LossByName("anything").Name() != "q-error" {
		t.Error("default should be q-error")
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize (w-3)^2 with Adam.
	p := NewParam(1, 1)
	p.W[0] = -5
	opt := NewAdam(0.1)
	for i := 0; i < 2000; i++ {
		p.Grad[0] = 2 * (p.W[0] - 3)
		opt.Step([]*Param{p})
	}
	if !almostEqual(p.W[0], 3, 1e-2) {
		t.Errorf("Adam converged to %v, want 3", p.W[0])
	}
	if opt.StepCount() != 2000 {
		t.Errorf("StepCount = %d", opt.StepCount())
	}
}

func TestAdamStepClearsGradients(t *testing.T) {
	p := NewParam(2, 2)
	for i := range p.Grad {
		p.Grad[i] = 1
	}
	NewAdam(0.01).Step([]*Param{p})
	for i, g := range p.Grad {
		if g != 0 {
			t.Fatalf("grad[%d] = %v after Step", i, g)
		}
	}
}

func TestEarlyStopper(t *testing.T) {
	s := &EarlyStopper{Patience: 2}
	metrics := []float64{5, 4, 3, 3.5, 3.4}
	var stoppedAt int
	for i, m := range metrics {
		if s.Observe(i, m) {
			stoppedAt = i
			break
		}
	}
	if stoppedAt != 4 {
		t.Errorf("stopped at %d, want 4", stoppedAt)
	}
	best, epoch := s.Best()
	if best != 3 || epoch != 2 {
		t.Errorf("best = %v at %d", best, epoch)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d1 := NewDense(rng, 4, 3)
	data, err := EncodeParams(d1.Params())
	if err != nil {
		t.Fatal(err)
	}
	d2 := NewDense(rand.New(rand.NewSource(10)), 4, 3)
	if err := DecodeParams(data, d2.Params()); err != nil {
		t.Fatal(err)
	}
	for i := range d1.W.W {
		if d1.W.W[i] != d2.W.W[i] {
			t.Fatalf("weights differ at %d", i)
		}
	}
	// Shape mismatch is rejected.
	d3 := NewDense(rng, 5, 3)
	if err := DecodeParams(data, d3.Params()); err == nil {
		t.Error("shape mismatch should fail")
	}
	if err := DecodeParams(data, d3.Params()[:1]); err == nil {
		t.Error("tensor count mismatch should fail")
	}
	if err := DecodeParams([]byte("garbage"), d2.Params()); err == nil {
		t.Error("corrupt payload should fail")
	}
}

func TestCopyWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := NewDense(rng, 3, 3)
	b := NewDense(rng, 3, 3)
	if err := CopyWeights(b.Params(), a.Params()); err != nil {
		t.Fatal(err)
	}
	for i := range a.W.W {
		if a.W.W[i] != b.W.W[i] {
			t.Fatal("weights not copied")
		}
	}
	c := NewDense(rng, 2, 2)
	if err := CopyWeights(c.Params(), a.Params()); err == nil {
		t.Error("mismatched shapes should fail")
	}
}

func TestShuffleAndBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	perm := Shuffle(rng, 10)
	seen := make(map[int]bool)
	for _, i := range perm {
		seen[i] = true
	}
	if len(seen) != 10 {
		t.Errorf("Shuffle not a permutation: %v", perm)
	}
	batches := Batches(perm, 3)
	if len(batches) != 4 {
		t.Errorf("batches = %d, want 4", len(batches))
	}
	if len(batches[3]) != 1 {
		t.Errorf("last batch = %d, want 1", len(batches[3]))
	}
	whole := Batches(perm, 0)
	if len(whole) != 1 || len(whole[0]) != 10 {
		t.Errorf("batchSize 0 should produce one batch")
	}
}

func TestNumParams(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := NewDense(rng, 7, 5)
	if got := NumParams(d.Params()); got != 7*5+5 {
		t.Errorf("NumParams = %d", got)
	}
	if d.NumParams() != NumParams(d.Params()) {
		t.Error("Dense.NumParams disagrees with NumParams")
	}
}

func TestBuildSetBatchLayout(t *testing.T) {
	samples := [][][]float64{
		{{1, 2}, {3, 4}},
		{{5, 6}},
	}
	b := BuildSetBatch(samples, 2)
	if b.NumSamples() != 2 {
		t.Fatalf("NumSamples = %d", b.NumSamples())
	}
	if b.X.Rows != 3 || b.X.Cols != 2 {
		t.Fatalf("X shape = %dx%d", b.X.Rows, b.X.Cols)
	}
	if b.Offsets[0] != 0 || b.Offsets[1] != 2 || b.Offsets[2] != 3 {
		t.Fatalf("offsets = %v", b.Offsets)
	}
	if b.X.At(2, 0) != 5 {
		t.Fatalf("row content wrong")
	}
}
