package nn

import "math"

// Adam implements the Adam optimizer (Kingma & Ba, ICLR'15), the optimizer
// used by the paper (§3.3), with the standard default hyperparameters.
type Adam struct {
	LR    float64
	Beta1 float64
	Beta2 float64
	Eps   float64

	step int
}

// NewAdam creates an Adam optimizer with the given learning rate and the
// conventional β1=0.9, β2=0.999, ε=1e-8.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step applies one Adam update to every parameter from its accumulated
// gradient, then clears the gradients. The update, moment decay and
// gradient clear run in one pass per tensor.
func (a *Adam) Step(params []*Param) {
	a.step++
	c1 := 1 - math.Pow(a.Beta1, float64(a.step))
	c2 := 1 - math.Pow(a.Beta2, float64(a.step))
	b1, b2 := a.Beta1, a.Beta2
	g1, g2 := 1-b1, 1-b2
	lr, eps := a.LR, a.Eps
	for _, p := range params {
		grad, mo, vo, w := p.Grad, p.M, p.V, p.W
		mo = mo[:len(grad)]
		vo = vo[:len(grad)]
		w = w[:len(grad)]
		for i, g := range grad {
			m := b1*mo[i] + g1*g
			v := b2*vo[i] + g2*g*g
			mo[i] = m
			vo[i] = v
			w[i] -= lr * (m / c1) / (math.Sqrt(v/c2) + eps)
		}
		p.ZeroGrad()
	}
}

// StepCount returns the number of updates applied so far.
func (a *Adam) StepCount() int { return a.step }

// EarlyStopper implements the paper's early-stopping rule (§3.3): training
// stops when the validation metric has not improved for Patience
// consecutive epochs; the best epoch's metric is retained.
type EarlyStopper struct {
	Patience int

	best      float64
	bestEpoch int
	bad       int
	started   bool
}

// Observe records one epoch's validation metric (lower is better) and
// reports whether training should stop.
func (s *EarlyStopper) Observe(epoch int, metric float64) (stop bool) {
	if !s.started || metric < s.best {
		s.best = metric
		s.bestEpoch = epoch
		s.bad = 0
		s.started = true
		return false
	}
	s.bad++
	return s.bad >= s.Patience
}

// Best returns the best metric observed and its epoch.
func (s *EarlyStopper) Best() (metric float64, epoch int) { return s.best, s.bestEpoch }
