package nn

import "fmt"

// Reference kernels: the textbook triple loops the optimized kernels in
// matrix.go are verified against. They accumulate every destination element
// strictly in increasing k order with no unrolling, blocking or
// parallelism, so their results are the canonical "unoptimized path" of the
// numeric equivalence tests. They are exported for tests and diagnostics
// only; production code uses the optimized kernels.

// MatMulNaive computes dst = a·b with the unoptimized reference loop.
func MatMulNaive(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("nn: MatMulNaive shape mismatch (%dx%d)·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			dst.Set(i, j, s)
		}
	}
}

// MatMulTransANaive computes dst = aᵀ·b with the reference loop.
func MatMulTransANaive(dst, a, b *Matrix) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("nn: MatMulTransANaive shape mismatch (%dx%d)ᵀ·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	for i := 0; i < a.Cols; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Rows; k++ {
				s += a.At(k, i) * b.At(k, j)
			}
			dst.Set(i, j, s)
		}
	}
}

// MatMulTransBNaive computes dst = a·bᵀ with the reference loop.
func MatMulTransBNaive(dst, a, b *Matrix) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("nn: MatMulTransBNaive shape mismatch (%dx%d)·(%dx%d)ᵀ->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Rows; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(j, k)
			}
			dst.Set(i, j, s)
		}
	}
}
