package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"
)

// ParamSnapshot is the serializable state of one parameter tensor. Only the
// weights are persisted; optimizer state is training-session local.
type ParamSnapshot struct {
	Rows, Cols int
	W          []float64
}

// Snapshot captures the parameter's weights.
func (p *Param) Snapshot() ParamSnapshot {
	return ParamSnapshot{Rows: p.Rows, Cols: p.Cols, W: append([]float64(nil), p.W...)}
}

// SnapshotInto is Snapshot reusing a previous snapshot's buffer when the
// capacity fits — best-weights tracking during training snapshots every
// improving epoch, and reuse keeps that allocation-free after the first.
func (p *Param) SnapshotInto(prev ParamSnapshot) ParamSnapshot {
	w := prev.W
	if cap(w) < len(p.W) {
		w = make([]float64, len(p.W))
	}
	w = w[:len(p.W)]
	copy(w, p.W)
	return ParamSnapshot{Rows: p.Rows, Cols: p.Cols, W: w}
}

// Restore loads weights from a snapshot; shapes must match.
func (p *Param) Restore(s ParamSnapshot) error {
	if s.Rows != p.Rows || s.Cols != p.Cols {
		return fmt.Errorf("nn: snapshot shape %dx%d does not match parameter %dx%d",
			s.Rows, s.Cols, p.Rows, p.Cols)
	}
	copy(p.W, s.W)
	return nil
}

// EncodeParams serializes a parameter list with encoding/gob.
func EncodeParams(params []*Param) ([]byte, error) {
	snaps := make([]ParamSnapshot, len(params))
	for i, p := range params {
		snaps[i] = p.Snapshot()
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snaps); err != nil {
		return nil, fmt.Errorf("nn: encode params: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeParams restores a parameter list serialized by EncodeParams; the
// target list must have the same length and shapes.
func DecodeParams(data []byte, params []*Param) error {
	var snaps []ParamSnapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snaps); err != nil {
		return fmt.Errorf("nn: decode params: %w", err)
	}
	if len(snaps) != len(params) {
		return fmt.Errorf("nn: snapshot has %d tensors, model has %d", len(snaps), len(params))
	}
	for i, s := range snaps {
		if err := params[i].Restore(s); err != nil {
			return err
		}
	}
	return nil
}

// CopyWeights copies current weights between two models' parameter lists of
// identical shapes (used to retain the best-epoch weights under early
// stopping).
func CopyWeights(dst, src []*Param) error {
	if len(dst) != len(src) {
		return fmt.Errorf("nn: parameter count mismatch %d vs %d", len(dst), len(src))
	}
	for i := range dst {
		if err := dst[i].Restore(src[i].Snapshot()); err != nil {
			return err
		}
	}
	return nil
}

// NumParams sums the scalar parameter counts of a parameter list.
func NumParams(params []*Param) int {
	n := 0
	for _, p := range params {
		n += len(p.W)
	}
	return n
}

// Shuffle returns a permutation of [0,n) drawn from rng; training loops use
// it to reorder samples between epochs deterministically.
func Shuffle(rng *rand.Rand, n int) []int {
	perm := rng.Perm(n)
	return perm
}

// Batches splits indices into contiguous mini-batches of at most batchSize.
func Batches(indices []int, batchSize int) [][]int {
	if batchSize <= 0 {
		batchSize = len(indices)
	}
	var out [][]int
	for lo := 0; lo < len(indices); lo += batchSize {
		hi := lo + batchSize
		if hi > len(indices) {
			hi = len(indices)
		}
		out = append(out, indices[lo:hi])
	}
	return out
}
