package nn

import "sync"

// Workspace is a reusable scratch arena for forward/backward passes. Instead
// of allocating fresh matrices per batch, kernels take buffers from a
// workspace; Reset recycles every buffer for the next batch, so a training
// run or serving loop converges to zero allocations per call once the arena
// has grown to the largest batch shape seen.
//
// The contract: matrices returned by Take are valid until the next Reset,
// may contain garbage (callers must fully overwrite, or use TakeZero), and
// must not be retained across Reset. A Workspace is NOT safe for concurrent
// use — give each goroutine its own (GetWorkspace/PutWorkspace pool them).
//
// All Take methods are nil-safe: a nil *Workspace degrades to plain
// allocation, so every workspace-threaded code path doubles as the
// allocating fallback.
type Workspace struct {
	mats     []*Matrix
	nextMat  int
	ints     [][]int
	nextInts int
}

// NewWorkspace creates an empty workspace.
func NewWorkspace() *Workspace { return &Workspace{} }

// Reset recycles every buffer handed out since the last Reset. Previously
// returned matrices and slices become invalid (their storage is reused).
func (w *Workspace) Reset() {
	if w == nil {
		return
	}
	w.nextMat = 0
	w.nextInts = 0
}

// Take returns a rows×cols matrix backed by recycled storage. Contents are
// unspecified; callers must overwrite every element they read.
func (w *Workspace) Take(rows, cols int) *Matrix {
	if w == nil {
		return NewMatrix(rows, cols)
	}
	var m *Matrix
	if w.nextMat < len(w.mats) {
		m = w.mats[w.nextMat]
	} else {
		m = &Matrix{}
		w.mats = append(w.mats, m)
	}
	w.nextMat++
	n := rows * cols
	if cap(m.Data) < n {
		m.Data = make([]float64, n)
	}
	m.Rows, m.Cols, m.Data = rows, cols, m.Data[:n]
	return m
}

// TakeZero is Take with the returned matrix zeroed.
func (w *Workspace) TakeZero(rows, cols int) *Matrix {
	m := w.Take(rows, cols)
	for i := range m.Data {
		m.Data[i] = 0
	}
	return m
}

// TakeInts returns a recycled int slice of length n (contents unspecified).
func (w *Workspace) TakeInts(n int) []int {
	if w == nil {
		return make([]int, n)
	}
	var s []int
	if w.nextInts < len(w.ints) {
		s = w.ints[w.nextInts]
	} else {
		w.ints = append(w.ints, nil)
	}
	if cap(s) < n {
		s = make([]int, n)
	}
	s = s[:n]
	w.ints[w.nextInts] = s
	w.nextInts++
	return s
}

// wsPool backs GetWorkspace/PutWorkspace so concurrent serving paths can
// borrow a private arena per request without allocating one each time.
var wsPool = sync.Pool{New: func() any { return NewWorkspace() }}

// GetWorkspace borrows a workspace from the shared pool.
func GetWorkspace() *Workspace { return wsPool.Get().(*Workspace) }

// PutWorkspace resets a workspace and returns it to the shared pool. The
// caller must not use it (or any matrix taken from it) afterwards.
func PutWorkspace(w *Workspace) {
	if w == nil {
		return
	}
	w.Reset()
	wsPool.Put(w)
}
