package nn

import (
	"math/rand"
	"testing"
)

func TestWorkspaceReuseAndGrowth(t *testing.T) {
	ws := NewWorkspace()
	a := ws.Take(4, 4)
	if a.Rows != 4 || a.Cols != 4 || len(a.Data) != 16 {
		t.Fatalf("Take shape: %dx%d len %d", a.Rows, a.Cols, len(a.Data))
	}
	b := ws.Take(2, 2)
	if &a.Data[0] == &b.Data[0] {
		t.Fatal("distinct takes within one cycle must not alias")
	}
	ws.Reset()
	c := ws.Take(3, 5)
	if &c.Data[0] != &a.Data[0] {
		t.Error("after Reset the first take should reuse the first slot's storage")
	}
	// Growth reallocates only the outgrown slot.
	ws.Reset()
	d := ws.Take(100, 100)
	if len(d.Data) != 10000 {
		t.Fatalf("grown take len %d", len(d.Data))
	}
	// TakeZero returns cleared storage even from a dirty slot.
	ws.Reset()
	dirty := ws.Take(10, 10)
	for i := range dirty.Data {
		dirty.Data[i] = 1
	}
	ws.Reset()
	z := ws.TakeZero(10, 10)
	for i, v := range z.Data {
		if v != 0 {
			t.Fatalf("TakeZero[%d] = %v", i, v)
		}
	}
}

func TestWorkspaceTakeInts(t *testing.T) {
	ws := NewWorkspace()
	s := ws.TakeInts(5)
	if len(s) != 5 {
		t.Fatalf("TakeInts len %d", len(s))
	}
	s2 := ws.TakeInts(3)
	s2[0] = 7
	if s[0] == 7 && &s[0] == &s2[0] {
		t.Fatal("distinct int takes must not alias")
	}
	ws.Reset()
	if got := ws.TakeInts(4); len(got) != 4 {
		t.Fatalf("post-reset TakeInts len %d", len(got))
	}
}

func TestNilWorkspaceFallsBackToAllocation(t *testing.T) {
	var ws *Workspace
	m := ws.Take(2, 3)
	if m.Rows != 2 || m.Cols != 3 {
		t.Fatalf("nil Take shape %dx%d", m.Rows, m.Cols)
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("nil Take should be zeroed (NewMatrix semantics)")
		}
	}
	if got := ws.TakeInts(4); len(got) != 4 {
		t.Fatalf("nil TakeInts len %d", len(got))
	}
	ws.Reset() // must not panic
}

// TestWorkspaceForwardAllocationFree locks in the tentpole property: a
// warmed workspace serves a full fused forward/backward pass with zero
// allocations.
func TestWorkspaceForwardAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := NewDense(rng, 32, 16)
	x := NewMatrix(8, 32)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	dy := NewMatrix(8, 16)
	for i := range dy.Data {
		dy.Data[i] = rng.NormFloat64()
	}
	ws := NewWorkspace()
	run := func() {
		ws.Reset()
		y := d.ForwardReLU(ws, x)
		d.BackwardReLU(ws, x, y, dy, true)
	}
	run() // warm the arena
	if n := testing.AllocsPerRun(20, run); n > 0 {
		t.Errorf("fused pass allocates %v times per run on a warmed workspace", n)
	}
}

func TestWorkspacePool(t *testing.T) {
	ws := GetWorkspace()
	ws.Take(4, 4)
	PutWorkspace(ws) // resets before pooling
	w2 := GetWorkspace()
	m := w2.Take(2, 2)
	_ = m
	PutWorkspace(w2)
	PutWorkspace(nil) // must not panic
}

// TestBuildSetBatchWSZeroPadsShortVectors pins the defined behavior for
// undersized element vectors on recycled storage: the tail is zero, exactly
// as the allocating path has always produced.
func TestBuildSetBatchWSZeroPadsShortVectors(t *testing.T) {
	ws := NewWorkspace()
	dirty := ws.Take(2, 4)
	for i := range dirty.Data {
		dirty.Data[i] = 99
	}
	ws.Reset()
	b := BuildSetBatchWS(ws, [][][]float64{{{1, 2}}, {{3}}}, 4)
	want := []float64{1, 2, 0, 0, 3, 0, 0, 0}
	for i, v := range want {
		if b.X.Data[i] != v {
			t.Fatalf("X[%d] = %v, want %v (stale arena values leaked)", i, b.X.Data[i], v)
		}
	}
}
