package online

import (
	"context"
	"sync"
	"sync/atomic"

	"crn/internal/contain"
	icrn "crn/internal/crn"
	"crn/internal/feature"
	"crn/internal/pool"
	"crn/internal/query"
	"crn/internal/telemetry"
)

// Generation is one published model generation: the trained model, its
// serving rate adapter, and the generation number. Each generation owns
// its representation cache (inside Rates), so rows computed under one
// set of weights can never serve another — promotion replaces model and
// cache together in a single pointer store, which is the whole coherence
// argument.
type Generation struct {
	Model *icrn.Model
	Rates *icrn.Rates
	Gen   uint64
}

// ModelBox is the atomic model indirection estimators read through: one
// pointer load per estimation pass resolves the current generation, so an
// in-flight estimate finishes on the generation it loaded while requests
// arriving after a promotion see the new one — no locks on the hot path,
// no torn state, no blocking on retraining.
//
// The box implements the contain rate-estimator interfaces by delegating
// to the current generation, which lets it stand wherever a *crn.Rates
// does (in particular as card.Estimator.Rates).
type ModelBox struct {
	cur atomic.Pointer[Generation]

	enc       *feature.Encoder
	cacheSize int
	pool      *pool.Pool
	stages    *telemetry.StageSet // applied to every generation's Rates

	// promoteMu serializes promotions (the trainer is the only writer in
	// the deployment, but tests and operators may race RetrainNow calls).
	promoteMu sync.Mutex
}

// NewModelBox publishes generation 1 over the given model. cacheSize > 0
// equips every generation with its own representation cache of that
// capacity; p, when non-nil, gets each generation's cache subscribed for
// surgical invalidation (and the previous one unsubscribed on promotion).
func NewModelBox(m *icrn.Model, enc *feature.Encoder, cacheSize int, p *pool.Pool) *ModelBox {
	b := &ModelBox{enc: enc, cacheSize: cacheSize, pool: p}
	b.cur.Store(b.newGeneration(m, 1))
	return b
}

// SetStages attaches the stage-span set every generation's rate adapter
// records into (cache lookup, NN forward). Call before serving: the field
// is read without synchronization when generations are built, and the
// current generation is re-pointed immediately.
func (b *ModelBox) SetStages(s *telemetry.StageSet) {
	b.stages = s
	b.cur.Load().Rates.Stages = s
}

// newGeneration binds a model into a Generation with a fresh cache.
func (b *ModelBox) newGeneration(m *icrn.Model, gen uint64) *Generation {
	rates := icrn.NewRates(m, b.enc)
	rates.Stages = b.stages
	if b.cacheSize > 0 {
		rates.Cache = icrn.NewRepCache(b.cacheSize)
		if b.pool != nil {
			b.pool.Subscribe(rates.Cache)
		}
	}
	return &Generation{Model: m, Rates: rates, Gen: gen}
}

// Current returns the live generation.
func (b *ModelBox) Current() *Generation { return b.cur.Load() }

// Generation returns the live generation number (monotonically increasing
// from 1).
func (b *ModelBox) Generation() uint64 { return b.cur.Load().Gen }

// Promote atomically publishes m as the next generation and returns it.
// The old generation's cache is unsubscribed from the pool; estimates that
// already loaded the old generation finish on it unharmed (its model,
// cache and weight fold all stay internally consistent).
func (b *ModelBox) Promote(m *icrn.Model) *Generation {
	return b.Publish(b.Prepare(m))
}

// Prepare builds the successor generation without publishing it: the
// model is bound to fresh rates with its own cache, already subscribed to
// the pool (mutations between Prepare and Publish are absorbed). The
// caller may warm the unpublished generation's cache — still off the hot
// path — before Publish flips traffic onto it (see Rates.Warm). Every
// prepared generation must be published: the cache subscription is only
// released when a LATER promotion supersedes the generation.
func (b *ModelBox) Prepare(m *icrn.Model) *Generation {
	return b.newGeneration(m, 0) // the generation number is assigned at Publish
}

// Publish atomically flips traffic onto a generation built by Prepare and
// returns it (with its generation number assigned).
func (b *ModelBox) Publish(next *Generation) *Generation {
	b.promoteMu.Lock()
	defer b.promoteMu.Unlock()
	old := b.cur.Load()
	next.Gen = old.Gen + 1
	b.cur.Store(next)
	if b.pool != nil && old.Rates.Cache != nil {
		b.pool.Unsubscribe(old.Rates.Cache)
	}
	return next
}

// Restore republishes a recovered model AT a recorded generation number —
// the boot-time counterpart of Publish. A restarted deployment resumes the
// generation it promoted before the crash instead of renumbering from 1,
// so operators correlating generations across restarts (and the
// kill-and-restart acceptance test) see one continuous sequence. The
// superseded boot generation's cache is unsubscribed exactly as in a
// promotion.
func (b *ModelBox) Restore(m *icrn.Model, gen uint64) *Generation {
	b.promoteMu.Lock()
	defer b.promoteMu.Unlock()
	old := b.cur.Load()
	next := b.newGeneration(m, gen)
	b.cur.Store(next)
	if b.pool != nil && old.Rates.Cache != nil {
		b.pool.Unsubscribe(old.Rates.Cache)
	}
	return next
}

// Close unsubscribes the live generation's cache from the pool.
func (b *ModelBox) Close() {
	b.promoteMu.Lock()
	defer b.promoteMu.Unlock()
	if g := b.cur.Load(); b.pool != nil && g.Rates.Cache != nil {
		b.pool.Unsubscribe(g.Rates.Cache)
	}
}

// --- contain interface delegation -------------------------------------------

// EstimateRate implements contain.RateEstimator on the live generation.
func (b *ModelBox) EstimateRate(q1, q2 query.Query) (float64, error) {
	return b.cur.Load().Rates.EstimateRate(q1, q2)
}

// EstimateRates implements contain.BatchRateEstimator on the live
// generation.
func (b *ModelBox) EstimateRates(pairs [][2]query.Query) ([]float64, error) {
	return b.cur.Load().Rates.EstimateRates(pairs)
}

// EstimateRatesCtx implements contain.CtxBatchRateEstimator on the live
// generation.
func (b *ModelBox) EstimateRatesCtx(ctx context.Context, pairs [][2]query.Query) ([]float64, error) {
	return b.cur.Load().Rates.EstimateRatesCtx(ctx, pairs)
}

// EstimateRatesIndexed implements contain.IndexedRateEstimator on the live
// generation — the interface the pool-based estimator actually serves
// through, so the whole indexed batch pass (and its cache reads) runs on
// one consistent generation resolved by a single atomic load.
func (b *ModelBox) EstimateRatesIndexed(ctx context.Context, queries []query.Query, idx [][2]int) ([]float64, error) {
	return b.cur.Load().Rates.EstimateRatesIndexed(ctx, queries, idx)
}

var (
	_ contain.RateEstimator         = (*ModelBox)(nil)
	_ contain.CtxBatchRateEstimator = (*ModelBox)(nil)
	_ contain.IndexedRateEstimator  = (*ModelBox)(nil)
)
