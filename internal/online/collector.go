package online

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"crn/internal/pool"
	"crn/internal/query"
)

// Record is one piece of execution feedback: a query the DBMS actually ran
// together with its observed true cardinality.
type Record struct {
	Q          query.Query
	Card       int64
	ObservedAt time.Time
}

// Collector validates, deduplicates and stages execution feedback in a
// bounded buffer until the trainer drains it. It sits on the serving write
// path (every /feedback request), so Offer is a short critical section —
// no parsing, no executor calls, no training work.
//
// Deduplication is two-level: against the queries pool (a pooled query's
// truth is already known; re-learning it adds nothing) and against the
// staged buffer itself (the same query reported twice between drains
// counts once). Overflow rejects the newcomer rather than displacing
// staged records: staged feedback is strictly older and therefore closer
// to being trained on.
type Collector struct {
	pool *pool.Pool
	cap  int

	mu     sync.Mutex
	staged []Record
	keys   map[string]bool

	accepted   atomic.Uint64
	duplicates atomic.Uint64
	corrected  atomic.Uint64
	invalid    atomic.Uint64
	overflow   atomic.Uint64
	drained    atomic.Uint64
}

// NewCollector creates a collector staging at most capacity records
// (capacity <= 0 selects the Config default of 1024). The pool, when
// non-nil, is consulted for deduplication.
func NewCollector(p *pool.Pool, capacity int) *Collector {
	if capacity <= 0 {
		capacity = Config{}.withDefaults().BufferCap
	}
	return &Collector{pool: p, cap: capacity, keys: make(map[string]bool)}
}

// Offer stages one feedback record. It reports whether the record was
// accepted; a negative cardinality is an error (feedback must carry an
// observed truth), a duplicate or an overflow is a silent false, counted
// in Stats. Feedback for an already pooled query whose truth is unchanged
// is a duplicate — the pool already carries everything it teaches. When
// its truth MOVED (the data changed underneath the DBMS, the §9 update
// case), the pool entry is corrected in place so Cnt2Crd stops anchoring
// estimates to a stale cardinality, AND the record is staged: a moved
// truth is fresh training signal, and without staging it a
// corrections-dominated drift could never feed the retrainer.
func (c *Collector) Offer(q query.Query, card int64, observedAt time.Time) (bool, error) {
	if card < 0 {
		c.invalid.Add(1)
		return false, fmt.Errorf("online: feedback cardinality must be non-negative, got %d", card)
	}
	key := q.Key()
	if c.pool != nil && c.pool.Contains(q) {
		if !c.pool.UpdateCard(q, card) {
			c.duplicates.Add(1)
			return false, nil
		}
		c.corrected.Add(1)
		// Fall through: stage the corrected record for retraining.
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.keys[key] {
		c.duplicates.Add(1)
		return false, nil
	}
	if len(c.staged) >= c.cap {
		c.overflow.Add(1)
		return false, nil
	}
	c.keys[key] = true
	c.staged = append(c.staged, Record{Q: q, Card: card, ObservedAt: observedAt})
	c.accepted.Add(1)
	return true, nil
}

// Drain removes and returns up to max staged records, oldest first
// (max <= 0 drains everything).
func (c *Collector) Drain(max int) []Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.staged)
	if n == 0 {
		return nil
	}
	if max > 0 && max < n {
		n = max
	}
	out := make([]Record, n)
	copy(out, c.staged[:n])
	rest := copy(c.staged, c.staged[n:])
	for i := rest; i < len(c.staged); i++ {
		c.staged[i] = Record{} // release retained queries
	}
	c.staged = c.staged[:rest]
	for _, r := range out {
		delete(c.keys, r.Q.Key())
	}
	c.drained.Add(uint64(n))
	return out
}

// Staged returns the number of records waiting for the trainer.
func (c *Collector) Staged() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.staged)
}

// CollectorStats is a point-in-time snapshot of feedback ingestion.
type CollectorStats struct {
	Staged   int    `json:"staged"`
	Capacity int    `json:"capacity"`
	Accepted uint64 `json:"accepted"`
	// Duplicates counts feedback whose truth the pool or buffer already
	// carried; Corrected counts pooled entries whose cardinality the
	// feedback moved (data changed underneath the DBMS).
	Duplicates uint64 `json:"duplicates"`
	Corrected  uint64 `json:"corrected"`
	Invalid    uint64 `json:"invalid"`
	Overflow   uint64 `json:"overflow"`
	Drained    uint64 `json:"drained"`
}

// Stats returns the ingestion counters.
func (c *Collector) Stats() CollectorStats {
	return CollectorStats{
		Staged:     c.Staged(),
		Capacity:   c.cap,
		Accepted:   c.accepted.Load(),
		Duplicates: c.duplicates.Load(),
		Corrected:  c.corrected.Load(),
		Invalid:    c.invalid.Load(),
		Overflow:   c.overflow.Load(),
		Drained:    c.drained.Load(),
	}
}
