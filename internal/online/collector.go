package online

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"crn/internal/pool"
	"crn/internal/query"
)

// Record is one piece of execution feedback: a query the DBMS actually ran
// together with its observed true cardinality. LSN is the record's position
// in the durable feedback journal (0 when the deployment runs without one).
type Record struct {
	Q          query.Query
	Card       int64
	ObservedAt time.Time
	LSN        uint64
}

// JournalFunc persists one validated feedback record before it is staged
// and returns the log sequence number it was assigned. An error degrades
// the collector to in-memory staging (see Offer) rather than rejecting the
// record: feedback is signal the workload paid real executions for, and
// losing it to a full disk would be strictly worse than holding it in
// memory until the disk recovers.
type JournalFunc func(sql string, card int64, observedAt time.Time) (uint64, error)

// Collector validates, deduplicates and stages execution feedback in a
// bounded buffer until the trainer drains it. It sits on the serving write
// path (every /feedback request), so Offer is a short critical section —
// no parsing, no executor calls, no training work.
//
// Deduplication is two-level: against the queries pool (a pooled query's
// truth is already known; re-learning it adds nothing) and against the
// staged buffer itself (the same query reported twice between drains
// counts once). Overflow rejects the newcomer rather than displacing
// staged records: staged feedback is strictly older and therefore closer
// to being trained on.
type Collector struct {
	pool *pool.Pool
	cap  int

	mu      sync.Mutex
	staged  []Record
	keys    map[string]bool
	journal JournalFunc // nil: in-memory only

	// degraded marks durability degraded: a journal append failed, and
	// until ReJournal succeeds new feedback is staged in memory only
	// (LSN 0). The flag is the serving layer's durability_degraded signal.
	degraded atomic.Bool

	accepted     atomic.Uint64
	duplicates   atomic.Uint64
	corrected    atomic.Uint64
	invalid      atomic.Uint64
	overflow     atomic.Uint64
	drained      atomic.Uint64
	journalErrs  atomic.Uint64
	appliedLSN   atomic.Uint64
	degradedRecs atomic.Uint64
	reupgrades   atomic.Uint64
}

// NewCollector creates a collector staging at most capacity records
// (capacity <= 0 selects the Config default of 1024). The pool, when
// non-nil, is consulted for deduplication.
func NewCollector(p *pool.Pool, capacity int) *Collector {
	if capacity <= 0 {
		capacity = Config{}.withDefaults().BufferCap
	}
	return &Collector{pool: p, cap: capacity, keys: make(map[string]bool)}
}

// SetJournal installs the durable journal hook: every record Offer accepts
// is appended through it — and rejected with the journal's error when the
// append fails — before it is staged (write-ahead ordering). Install before
// feedback starts flowing; nil disables journaling.
func (c *Collector) SetJournal(j JournalFunc) {
	c.mu.Lock()
	c.journal = j
	c.mu.Unlock()
}

// SetAppliedLSN seeds the applied-LSN watermark at recovery time with the
// checkpoint's value; Drain advances it from there.
func (c *Collector) SetAppliedLSN(lsn uint64) { c.appliedLSN.Store(lsn) }

// AppliedLSN returns the highest journal LSN among records already handed
// to the trainer (drained). Staged records always carry higher LSNs —
// appends assign LSNs in order and Drain is oldest-first — so a checkpoint
// at this watermark misses no drained record, and every staged one is
// recovered by replay.
func (c *Collector) AppliedLSN() uint64 { return c.appliedLSN.Load() }

// Offer stages one feedback record. It reports whether the record was
// accepted; a negative cardinality is an error (feedback must carry an
// observed truth), a duplicate or an overflow is a silent false, counted
// in Stats. Feedback for an already pooled query whose truth is unchanged
// is a duplicate — the pool already carries everything it teaches. When
// its truth MOVED (the data changed underneath the DBMS, the §9 update
// case), the pool entry is corrected in place so Cnt2Crd stops anchoring
// estimates to a stale cardinality, AND the record is staged: a moved
// truth is fresh training signal, and without staging it a
// corrections-dominated drift could never feed the retrainer.
func (c *Collector) Offer(q query.Query, card int64, observedAt time.Time) (bool, error) {
	if card < 0 {
		c.invalid.Add(1)
		return false, fmt.Errorf("online: feedback cardinality must be non-negative, got %d", card)
	}
	key := q.Key()
	if c.pool != nil && c.pool.Contains(q) {
		if !c.pool.UpdateCard(q, card) {
			c.duplicates.Add(1)
			return false, nil
		}
		c.corrected.Add(1)
		// Fall through: stage the corrected record for retraining.
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.keys[key] {
		c.duplicates.Add(1)
		return false, nil
	}
	if len(c.staged) >= c.cap {
		c.overflow.Add(1)
		return false, nil
	}
	var lsn uint64
	switch {
	case c.journal == nil:
		// In-memory deployment: nothing to journal.
	case c.degraded.Load():
		// Durability already degraded: don't hammer the broken disk on the
		// feedback hot path — ReJournal's backoff loop owns the re-probe.
		c.degradedRecs.Add(1)
	default:
		// Write-ahead: the record reaches the journal before the buffer, so
		// a crash between here and the next checkpoint replays it. Journal
		// failure DEGRADES instead of rejecting: the record is staged with
		// LSN 0 (in memory only, lost if we crash before ReJournal catches
		// up — a bounded, flagged narrowing of the durability contract) and
		// the degraded flag routes future feedback past the disk until a
		// re-probe succeeds.
		var err error
		if lsn, err = c.journal(q.SQL(), card, observedAt); err != nil {
			c.journalErrs.Add(1)
			c.degraded.Store(true)
			c.degradedRecs.Add(1)
			lsn = 0
		}
	}
	c.keys[key] = true
	c.staged = append(c.staged, Record{Q: q, Card: card, ObservedAt: observedAt, LSN: lsn})
	c.accepted.Add(1)
	return true, nil
}

// Restage re-stages one journaled record during recovery replay, bypassing
// the journal (the record is already durable — re-appending it would
// double-log every replayed record on every boot) but keeping the
// validation and dedup semantics of Offer. The pool-correction path is
// intentionally shared: a replayed correction record re-corrects the
// checkpointed pool entry, converging on the pre-crash state.
func (c *Collector) Restage(q query.Query, card int64, observedAt time.Time, lsn uint64) (bool, error) {
	if card < 0 {
		c.invalid.Add(1)
		return false, fmt.Errorf("online: feedback cardinality must be non-negative, got %d", card)
	}
	key := q.Key()
	if c.pool != nil && c.pool.Contains(q) {
		if !c.pool.UpdateCard(q, card) {
			c.duplicates.Add(1)
			return false, nil
		}
		c.corrected.Add(1)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.keys[key] {
		c.duplicates.Add(1)
		return false, nil
	}
	if len(c.staged) >= c.cap {
		c.overflow.Add(1)
		return false, nil
	}
	c.keys[key] = true
	c.staged = append(c.staged, Record{Q: q, Card: card, ObservedAt: observedAt, LSN: lsn})
	c.accepted.Add(1)
	return true, nil
}

// Degraded reports whether durability is degraded: journaling failed and
// feedback since then is staged in memory only.
func (c *Collector) Degraded() bool { return c.degraded.Load() }

// ReJournal attempts to restore durability after a degradation: every
// staged record accepted without a journal entry (LSN 0) is appended now,
// oldest first, through the same journal hook. The journal calls double as
// disk probes — the first failure aborts and keeps the collector degraded
// for the next backoff round. Once every staged record is journaled (or
// none needed it), the degraded flag clears and new feedback journals
// inline again. It returns how many records were re-journaled.
//
// Records drained to the trainer while degraded are gone from the staging
// buffer and cannot be re-journaled: a crash loses them. That bounded,
// flagged loss window is the degraded-mode contract.
func (c *Collector) ReJournal() (journaled int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.journal == nil || !c.degraded.Load() {
		return 0, nil
	}
	for i := range c.staged {
		if c.staged[i].LSN != 0 {
			continue
		}
		r := &c.staged[i]
		lsn, jerr := c.journal(r.Q.SQL(), r.Card, r.ObservedAt)
		if jerr != nil {
			c.journalErrs.Add(1)
			return journaled, fmt.Errorf("online: re-journal feedback: %w", jerr)
		}
		r.LSN = lsn
		journaled++
	}
	c.degraded.Store(false)
	c.reupgrades.Add(1)
	return journaled, nil
}

// Drain removes and returns up to max staged records, oldest first
// (max <= 0 drains everything).
func (c *Collector) Drain(max int) []Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.staged)
	if n == 0 {
		return nil
	}
	if max > 0 && max < n {
		n = max
	}
	out := make([]Record, n)
	copy(out, c.staged[:n])
	rest := copy(c.staged, c.staged[n:])
	for i := rest; i < len(c.staged); i++ {
		c.staged[i] = Record{} // release retained queries
	}
	c.staged = c.staged[:rest]
	for _, r := range out {
		delete(c.keys, r.Q.Key())
		if r.LSN > c.appliedLSN.Load() {
			c.appliedLSN.Store(r.LSN)
		}
	}
	c.drained.Add(uint64(n))
	return out
}

// Staged returns the number of records waiting for the trainer.
func (c *Collector) Staged() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.staged)
}

// CollectorStats is a point-in-time snapshot of feedback ingestion.
type CollectorStats struct {
	Staged   int    `json:"staged"`
	Capacity int    `json:"capacity"`
	Accepted uint64 `json:"accepted"`
	// Duplicates counts feedback whose truth the pool or buffer already
	// carried; Corrected counts pooled entries whose cardinality the
	// feedback moved (data changed underneath the DBMS).
	Duplicates uint64 `json:"duplicates"`
	Corrected  uint64 `json:"corrected"`
	Invalid    uint64 `json:"invalid"`
	Overflow   uint64 `json:"overflow"`
	Drained    uint64 `json:"drained"`
	// JournalErrors counts failed journal appends (zero in memory-only
	// deployments). Degraded reports whether durability is degraded right
	// now; DegradedAccepted counts feedback accepted in memory only while
	// degraded, and Reupgrades counts successful returns to full
	// durability.
	JournalErrors    uint64 `json:"journal_errors"`
	Degraded         bool   `json:"durability_degraded"`
	DegradedAccepted uint64 `json:"degraded_accepted"`
	Reupgrades       uint64 `json:"reupgrades"`
}

// Stats returns the ingestion counters.
func (c *Collector) Stats() CollectorStats {
	return CollectorStats{
		Staged:           c.Staged(),
		Capacity:         c.cap,
		Accepted:         c.accepted.Load(),
		Duplicates:       c.duplicates.Load(),
		Corrected:        c.corrected.Load(),
		Invalid:          c.invalid.Load(),
		Overflow:         c.overflow.Load(),
		Drained:          c.drained.Load(),
		JournalErrors:    c.journalErrs.Load(),
		Degraded:         c.degraded.Load(),
		DegradedAccepted: c.degradedRecs.Load(),
		Reupgrades:       c.reupgrades.Load(),
	}
}
