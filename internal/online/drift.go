package online

import (
	"sync/atomic"

	"crn/internal/metrics"
)

// DriftMonitor tracks the q-error of live estimates against arriving
// execution truths over a rolling window. When the windowed median exceeds
// the threshold (with enough samples to mean something), the workload has
// drifted away from what the model was trained on, and the monitor trips —
// the adaptation loop uses the trip to retrain ahead of schedule.
type DriftMonitor struct {
	win        *metrics.RollingWindow
	threshold  float64 // 0: observe-only, never trips
	minSamples int

	drifted atomic.Bool
	trips   atomic.Uint64
}

// NewDriftMonitor creates a monitor over the last `window` observations
// that trips when the windowed median q-error exceeds threshold
// (threshold <= 0 observes without ever tripping).
func NewDriftMonitor(threshold float64, window, minSamples int) *DriftMonitor {
	cfg := Config{DriftWindow: window, DriftMinSamples: minSamples}.withDefaults()
	return &DriftMonitor{
		win:        metrics.NewRollingWindow(cfg.DriftWindow),
		threshold:  threshold,
		minSamples: cfg.DriftMinSamples,
	}
}

// Observe records one (estimate, truth) observation and reports whether
// this observation TRIPPED the monitor — a transition into the drifted
// state, not the state itself. Edge-triggering matters: while a drifted
// window stays drifted, every feedback record would otherwise kick a full
// retrain cycle (sustained drift is instead handled by the trainer's
// scheduled retrains, and the monitor re-arms after a promotion resets
// the window or the median recovers).
func (d *DriftMonitor) Observe(estimate, truth float64) bool {
	d.win.Observe(metrics.CardQError(truth, estimate))
	if d.threshold <= 0 {
		return false
	}
	if d.win.Len() < d.minSamples {
		return false
	}
	now := d.win.Quantile(50) > d.threshold
	if !now {
		d.drifted.Store(false)
		return false
	}
	tripped := !d.drifted.Swap(true)
	if tripped {
		d.trips.Add(1)
	}
	return tripped
}

// Drifted reports whether the last observation left the window drifted.
func (d *DriftMonitor) Drifted() bool { return d.drifted.Load() }

// Reset clears the window — called after a promotion, when the live model
// changed and the accumulated q-errors describe its predecessor.
func (d *DriftMonitor) Reset() {
	d.win.Reset()
	d.drifted.Store(false)
}

// Values returns the windowed q-errors oldest first, for checkpointing.
func (d *DriftMonitor) Values() []float64 { return d.win.Values() }

// Restore refills the window from checkpointed values (oldest first). The
// drifted latch is left cleared: recovery replay re-observes nothing, and
// re-tripping from a restored-but-stale window would kick a retrain the
// moment the process boots.
func (d *DriftMonitor) Restore(vs []float64) {
	d.win.Restore(vs)
	d.drifted.Store(false)
}

// DriftStats is a point-in-time snapshot of drift monitoring.
type DriftStats struct {
	Threshold float64                `json:"threshold"` // 0: observe-only
	Drifted   bool                   `json:"drifted"`
	Trips     uint64                 `json:"trips"`
	QError    metrics.WindowSnapshot `json:"q_error"`
}

// Stats returns the drift state and windowed q-error quantiles.
func (d *DriftMonitor) Stats() DriftStats {
	return DriftStats{
		Threshold: d.threshold,
		Drifted:   d.drifted.Load(),
		Trips:     d.trips.Load(),
		QError:    d.win.Snapshot(),
	}
}
