// Package online is the feedback-driven adaptation layer over the serving
// stack: it turns the train-once/static CRN deployment into the closed
// loop the paper's §5.2 scenario implies. A production DBMS continuously
// executes queries, so ground truth — (query, true cardinality) pairs —
// arrives for free; this package ingests that execution feedback, grows
// the queries pool with it, incrementally retrains the containment model
// in the background, and hot-swaps the improved model under live traffic
// without blocking a single estimate.
//
// Four cooperating pieces:
//
//   - Collector stages validated, deduplicated feedback records in a
//     bounded buffer (the ingest side of the loop; cheap enough to sit on
//     a request path).
//   - ModelBox is the atomic model indirection: estimators read the
//     current model generation through one atomic pointer load, each
//     generation carrying its own representation cache so promotion can
//     never mix rows computed under different weights. In-flight estimates
//     finish on the generation they loaded; the next request sees the
//     promoted one.
//   - Trainer drains staged feedback off the hot path, adds it to the
//     pool, derives fresh containment-rate training pairs from it (each
//     feedback query paired with its most containment-comparable pool
//     neighbors, labeled by the truth oracle), continues training on a
//     clone of the live model, and promotes the clone only when its
//     validation q-error does not regress beyond a configured tolerance.
//   - DriftMonitor keeps windowed quantiles of the q-error between live
//     estimates and arriving truths; crossing the drift threshold kicks
//     the trainer ahead of its schedule.
//
// The package deliberately depends only on internal building blocks
// (crn, pool, workload, feature, metrics); the facade wires it to the
// public API and cmd/crnserve exposes it over HTTP (/feedback).
package online

import "time"

// Config collects the adaptation knobs with serving-grade defaults; the
// zero value of any field selects its default.
type Config struct {
	// BufferCap bounds the collector's staging buffer (default 1024).
	BufferCap int
	// MinBatch is the number of staged records that makes a scheduled
	// retrain worthwhile (default 16). Drift-triggered retrains run with
	// whatever is staged.
	MinBatch int
	// Interval is the trainer's polling period (default 5s). Zero keeps
	// the default; negative disables scheduled retraining (drift kicks and
	// explicit RetrainNow calls still work).
	Interval time.Duration
	// Epochs is the incremental-training budget per retrain (default 8).
	Epochs int
	// LRScale multiplies the model's training learning rate for
	// incremental fine-tuning (default 0.2). Fine-tuning at the full rate
	// lets a small adaptation set drag well-fit weights away from the bulk
	// distribution — the tail improves, the typical pair regresses.
	LRScale float64
	// Tolerance is the promotion gate: the candidate is promoted when its
	// validation q-error is at most (1+Tolerance)× the live model's
	// (default 0.05). Negative demands strict improvement.
	Tolerance float64
	// PairsPerRecord bounds how many pool partners each feedback record is
	// paired with for labeling (default 8); the partners are the record's
	// most containment-comparable pool entries (signature top-K).
	PairsPerRecord int
	// MaxValSet bounds the held-out validation sample set accumulated
	// across retrains for the promotion gate (default 256).
	MaxValSet int
	// Workers is the labeling parallelism (default 1: background labeling
	// must not contend with serving for every core; raise it for faster
	// retrains on machines with headroom).
	Workers int
	// DriftThreshold is the windowed median q-error beyond which the
	// workload is considered drifted and a retrain is kicked early
	// (default 0: drift monitoring records statistics but never trips).
	DriftThreshold float64
	// DriftWindow is the rolling-window size of the drift monitor
	// (default 256).
	DriftWindow int
	// DriftMinSamples is the minimum windowed sample count before the
	// threshold can trip (default 32).
	DriftMinSamples int
	// LabelFree derives containment labels from the cardinality identity
	// rate(Q1 ⊂% Q2) = |Q1∩Q2|/|Q1| whenever all three cardinalities are
	// already known (the feedback truth, the partner's pooled truth, and
	// the intersection query's truth when it is itself one of the two or
	// pooled) instead of executing the intersection against the truth
	// oracle. Pairs the identity cannot resolve still go to the oracle.
	// Default off: the oracle path is the paper's exact labeling.
	LabelFree bool
}

// withDefaults resolves zero fields to the documented defaults.
func (c Config) withDefaults() Config {
	if c.BufferCap <= 0 {
		c.BufferCap = 1024
	}
	if c.MinBatch <= 0 {
		c.MinBatch = 16
	}
	if c.Interval == 0 {
		c.Interval = 5 * time.Second
	}
	if c.Epochs <= 0 {
		c.Epochs = 8
	}
	if c.LRScale <= 0 {
		c.LRScale = 0.2
	}
	if c.Tolerance == 0 {
		c.Tolerance = 0.05
	}
	if c.PairsPerRecord <= 0 {
		c.PairsPerRecord = 8
	}
	if c.MaxValSet <= 0 {
		c.MaxValSet = 256
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.DriftWindow <= 0 {
		c.DriftWindow = 256
	}
	if c.DriftMinSamples <= 0 {
		c.DriftMinSamples = 32
	}
	if c.DriftMinSamples > c.DriftWindow {
		// A window smaller than the sample floor could never trip.
		c.DriftMinSamples = c.DriftWindow
	}
	return c
}
