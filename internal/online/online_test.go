package online

import (
	"context"
	"fmt"
	"testing"
	"time"

	icrn "crn/internal/crn"
	"crn/internal/datagen"
	"crn/internal/exec"
	"crn/internal/feature"
	"crn/internal/pool"
	"crn/internal/query"
	"crn/internal/schema"
	"crn/internal/sqlparse"
)

var s = schema.IMDB()

// fixture builds a small database with its executor, encoder, a tiny
// (untrained) model and a pool seeded with a few executed queries.
func fixture(t *testing.T) (*exec.Executor, *feature.Encoder, *icrn.Model, *pool.Pool) {
	t.Helper()
	cfg := datagen.DefaultConfig()
	cfg.Titles = 300
	d, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := exec.New(d)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := feature.NewEncoder(d.Schema, d)
	if err != nil {
		t.Fatal(err)
	}
	mcfg := icrn.DefaultConfig()
	mcfg.Hidden = 8
	mcfg.Epochs = 2
	mcfg.BatchSize = 16
	m := icrn.NewModel(mcfg, enc.Dim())
	qp := pool.New()
	for _, sql := range []string{
		"SELECT * FROM title",
		"SELECT * FROM title WHERE title.production_year > 1950",
		"SELECT * FROM title WHERE title.kind_id < 5",
		"SELECT * FROM title WHERE title.production_year < 1995",
	} {
		q := sqlparse.MustParse(s, sql)
		c, err := ex.Cardinality(q)
		if err != nil {
			t.Fatal(err)
		}
		qp.Add(q, c)
	}
	return ex, enc, m, qp
}

func mustParse(t *testing.T, sql string) query.Query {
	t.Helper()
	return sqlparse.MustParse(s, sql)
}

func TestCollectorValidateDedupBound(t *testing.T) {
	_, _, _, qp := fixture(t)
	c := NewCollector(qp, 2)
	now := time.Now()

	// Negative cardinality is invalid.
	if ok, err := c.Offer(mustParse(t, "SELECT * FROM title WHERE title.kind_id = 1"), -1, now); ok || err == nil {
		t.Fatal("negative cardinality must be rejected with an error")
	}
	// A query already pooled is a duplicate.
	if ok, err := c.Offer(mustParse(t, "SELECT * FROM title"), 300, now); ok || err != nil {
		t.Fatalf("pooled query must dedup: ok=%v err=%v", ok, err)
	}
	qa := mustParse(t, "SELECT * FROM title WHERE title.kind_id = 1")
	if ok, _ := c.Offer(qa, 10, now); !ok {
		t.Fatal("fresh record must be accepted")
	}
	// Same query staged twice counts once.
	if ok, _ := c.Offer(qa, 10, now); ok {
		t.Fatal("staged duplicate must be rejected")
	}
	if ok, _ := c.Offer(mustParse(t, "SELECT * FROM title WHERE title.kind_id = 2"), 20, now); !ok {
		t.Fatal("second fresh record must be accepted")
	}
	// Buffer full: newcomer rejected, staged records kept.
	if ok, _ := c.Offer(mustParse(t, "SELECT * FROM title WHERE title.kind_id = 3"), 30, now); ok {
		t.Fatal("overflow must reject the newcomer")
	}
	st := c.Stats()
	if st.Staged != 2 || st.Accepted != 2 || st.Duplicates != 2 || st.Invalid != 1 || st.Overflow != 1 {
		t.Fatalf("stats = %+v", st)
	}

	// Drain oldest-first; keys free up for re-offering.
	recs := c.Drain(1)
	if len(recs) != 1 || recs[0].Card != 10 {
		t.Fatalf("drain = %+v", recs)
	}
	if c.Staged() != 1 {
		t.Fatalf("staged after drain = %d", c.Staged())
	}
	if ok, _ := c.Offer(qa, 11, now); !ok {
		t.Fatal("drained key must be offerable again")
	}
	if got := c.Stats().Drained; got != 1 {
		t.Fatalf("drained = %d", got)
	}
	if recs := c.Drain(0); len(recs) != 2 {
		t.Fatalf("drain-all = %d records", len(recs))
	}
}

func TestModelBoxPromoteGenerations(t *testing.T) {
	_, enc, m, qp := fixture(t)
	box := NewModelBox(m, enc, 64, qp)
	defer box.Close()
	if box.Generation() != 1 {
		t.Fatalf("initial generation = %d", box.Generation())
	}
	g1 := box.Current()
	if g1.Model != m || g1.Rates.Cache == nil {
		t.Fatal("generation 1 must carry the model and a cache")
	}

	// Delegated estimation works and stays in [0,1].
	q1 := mustParse(t, "SELECT * FROM title WHERE title.kind_id = 1")
	q2 := mustParse(t, "SELECT * FROM title WHERE title.kind_id < 5")
	rate, err := box.EstimateRate(q1, q2)
	if err != nil || rate < 0 || rate > 1 {
		t.Fatalf("rate = %v err = %v", rate, err)
	}

	clone, err := cloneModel(m)
	if err != nil {
		t.Fatal(err)
	}
	g2 := box.Promote(clone)
	if g2.Gen != 2 || box.Generation() != 2 || box.Current().Model != clone {
		t.Fatalf("promotion did not publish generation 2: %+v", g2)
	}
	if g2.Rates.Cache == g1.Rates.Cache {
		t.Fatal("each generation must own its cache")
	}
	// The clone serves identically (same weights): delegation reads gen 2.
	rate2, err := box.EstimateRate(q1, q2)
	if err != nil || rate2 != rate {
		t.Fatalf("cloned generation must serve identically: %v vs %v (err %v)", rate2, rate, err)
	}
}

func TestDriftMonitorTripsAndResets(t *testing.T) {
	d := NewDriftMonitor(10, 16, 4)
	// Accurate estimates: no trip.
	for i := 0; i < 8; i++ {
		if d.Observe(100, 100) {
			t.Fatal("accurate estimates must not trip")
		}
	}
	// Badly wrong estimates shift the windowed median past the threshold.
	tripped := false
	for i := 0; i < 16; i++ {
		tripped = d.Observe(1, 1000) || tripped
	}
	if !tripped || !d.Drifted() {
		t.Fatal("drifted workload must trip")
	}
	st := d.Stats()
	if st.Trips != 1 || st.QError.Count == 0 || st.QError.P50 <= 10 {
		t.Fatalf("drift stats = %+v", st)
	}
	d.Reset()
	if d.Drifted() || d.Stats().QError.Count != 0 {
		t.Fatal("reset must clear the window and the drifted state")
	}
	// Observe-only monitor (threshold 0) never trips.
	o := NewDriftMonitor(0, 8, 1)
	for i := 0; i < 8; i++ {
		if o.Observe(1, 1e6) {
			t.Fatal("observe-only monitor must not trip")
		}
	}
	if o.Stats().QError.Count != 8 {
		t.Fatal("observe-only monitor must still record")
	}
}

func TestRetrainNowPromotesThroughGate(t *testing.T) {
	ex, enc, m, qp := fixture(t)
	box := NewModelBox(m, enc, 64, qp)
	defer box.Close()
	col := NewCollector(qp, 64)
	cfg := Config{Epochs: 2, Tolerance: 10, PairsPerRecord: 4, Interval: -1}
	tr := NewTrainer(cfg, box, col, qp, ex, nil)
	defer tr.Stop()

	ctx := context.Background()
	// Nothing staged: no-op.
	if promoted, err := tr.RetrainNow(ctx); promoted || err != nil {
		t.Fatalf("empty cycle: promoted=%v err=%v", promoted, err)
	}
	if tr.Stats().Retrains != 0 {
		t.Fatal("empty cycle must not count as a retrain")
	}

	poolBefore := qp.Len()
	for i := 0; i < 6; i++ {
		q := mustParse(t, fmt.Sprintf("SELECT * FROM title WHERE title.production_year > %d", 1951+5*i))
		card, err := ex.Cardinality(q)
		if err != nil {
			t.Fatal(err)
		}
		if ok, err := col.Offer(q, card, time.Now()); !ok || err != nil {
			t.Fatalf("offer %d: ok=%v err=%v", i, ok, err)
		}
	}
	promoted, err := tr.RetrainNow(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !promoted {
		t.Fatalf("generous tolerance should promote: stats=%+v", tr.Stats())
	}
	if qp.Len() != poolBefore+6 {
		t.Errorf("pool should grow by the feedback records: %d -> %d", poolBefore, qp.Len())
	}
	if col.Staged() != 0 {
		t.Error("retrain must drain the collector")
	}
	if box.Generation() != 2 {
		t.Errorf("generation = %d, want 2", box.Generation())
	}
	st := tr.Stats()
	if st.Retrains != 1 || st.Promotions != 1 || st.Rejections != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.ValSamples == 0 || st.LastLiveQError == 0 || st.LastCandidateQError == 0 {
		t.Fatalf("gate measurements missing: %+v", st)
	}
}

func TestRetrainNowRejectsOnStrictGate(t *testing.T) {
	ex, enc, m, qp := fixture(t)
	box := NewModelBox(m, enc, 64, qp)
	defer box.Close()
	col := NewCollector(qp, 64)
	// Tolerance -0.999: the candidate must be ~1000x better than live —
	// unattainable, so the gate rejects and generation 1 keeps serving.
	cfg := Config{Epochs: 1, Tolerance: -0.999, PairsPerRecord: 4, Interval: -1}
	tr := NewTrainer(cfg, box, col, qp, ex, nil)
	defer tr.Stop()

	q := mustParse(t, "SELECT * FROM title WHERE title.production_year > 1970")
	card, err := ex.Cardinality(q)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := col.Offer(q, card, time.Now()); !ok {
		t.Fatal("offer failed")
	}
	promoted, err := tr.RetrainNow(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if promoted || box.Generation() != 1 {
		t.Fatalf("impossible gate must reject: promoted=%v gen=%d", promoted, box.Generation())
	}
	st := tr.Stats()
	if st.Rejections != 1 || st.Promotions != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTrainerKickDrivesBackgroundRetrain(t *testing.T) {
	ex, enc, m, qp := fixture(t)
	box := NewModelBox(m, enc, 64, qp)
	defer box.Close()
	col := NewCollector(qp, 64)
	cfg := Config{Epochs: 1, Tolerance: 10, PairsPerRecord: 2, Interval: -1} // no scheduled retrains
	tr := NewTrainer(cfg, box, col, qp, ex, nil)
	tr.Start()
	tr.Start() // idempotent

	q := mustParse(t, "SELECT * FROM title WHERE title.kind_id > 2")
	card, err := ex.Cardinality(q)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := col.Offer(q, card, time.Now()); !ok {
		t.Fatal("offer failed")
	}
	tr.Kick()
	deadline := time.After(30 * time.Second)
	for tr.Stats().Retrains == 0 {
		select {
		case <-deadline:
			t.Fatal("kicked retrain never ran")
		case <-time.After(10 * time.Millisecond):
		}
	}
	tr.Stop()
	tr.Stop() // idempotent
	if got := tr.Stats().DriftRetrains; got != 1 {
		t.Errorf("drift retrains = %d, want 1", got)
	}
}

// TestOfferCorrectsStalePooledCardinality pins the §9 database-updates
// path: feedback for an already pooled query with an unchanged truth is a
// duplicate, but a moved truth corrects the pool entry in place (so
// Cnt2Crd stops anchoring to a stale cardinality) AND stages the record —
// a moved truth is fresh training signal, and without staging it a
// corrections-dominated drift could never feed the retrainer.
func TestOfferCorrectsStalePooledCardinality(t *testing.T) {
	ex, _, _, qp := fixture(t)
	c := NewCollector(qp, 8)
	q := mustParse(t, "SELECT * FROM title")
	truth, err := ex.Cardinality(q)
	if err != nil {
		t.Fatal(err)
	}
	// Same truth: plain duplicate, nothing moves.
	if ok, _ := c.Offer(q, truth, time.Now()); ok {
		t.Fatal("unchanged pooled truth must not be staged")
	}
	if st := c.Stats(); st.Duplicates != 1 || st.Corrected != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Moved truth: corrected in place, version bumped, staged for training.
	v := qp.Version()
	if ok, _ := c.Offer(q, truth+50, time.Now()); !ok {
		t.Fatal("corrected record must be staged as fresh training signal")
	}
	if st := c.Stats(); st.Corrected != 1 || st.Staged != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if qp.Version() <= v {
		t.Fatal("correction must bump the pool version")
	}
	if m := qp.Matching(q); len(m) == 0 || m[0].Card != truth+50 {
		t.Fatalf("pool entry not corrected: %+v", m)
	}
	recs := c.Drain(0)
	if len(recs) != 1 || recs[0].Card != truth+50 {
		t.Fatalf("drained corrected record = %+v", recs)
	}
}

// TestSplitSamplesKeepsMirrorsTogether pins the promotion-gate leak fix:
// labelRecords emits adjacent mirror pairs, and the train/val split must
// never send one direction to train and the other to validation.
func TestSplitSamplesKeepsMirrorsTogether(t *testing.T) {
	// Tag each mirror-couple by a shared rate value.
	var all []icrn.Sample
	for i := 0; i < 16; i++ {
		all = append(all,
			icrn.Sample{Rate: float64(i)},
			icrn.Sample{Rate: float64(i)})
	}
	train, val := splitSamples(all)
	if len(val) == 0 || len(train) == 0 {
		t.Fatalf("split degenerate: train=%d val=%d", len(train), len(val))
	}
	inTrain := make(map[float64]bool)
	for _, s := range train {
		inTrain[s.Rate] = true
	}
	for _, s := range val {
		if inTrain[s.Rate] {
			t.Fatalf("couple %v split across train and val", s.Rate)
		}
	}
	// Two-sample fallback keeps the last couple whole too.
	train, val = splitSamples(all[:4])
	if len(val) != 2 || val[0].Rate != val[1].Rate {
		t.Fatalf("fallback split broke a couple: val=%+v", val)
	}
	_ = train
}
