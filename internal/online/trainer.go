package online

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	icrn "crn/internal/crn"
	"crn/internal/guard/failpoint"
	"crn/internal/pool"
	"crn/internal/query"
	"crn/internal/workload"
)

// Trainer is the background half of the adaptation loop: it drains staged
// feedback, grows the queries pool with it, derives labeled containment
// pairs from the fresh records, continues training on a clone of the live
// model (the hot path never sees a mutating weight), and promotes the
// clone through the ModelBox when the validation gate passes.
//
// All heavy work — labeling, cloning, gradient steps — happens on the
// trainer's own goroutine (or the caller of RetrainNow); estimate traffic
// observes retraining only as one atomic pointer flip at promotion time.
type Trainer struct {
	cfg    Config
	box    *ModelBox
	col    *Collector
	pool   *pool.Pool
	oracle workload.Oracle
	drift  *DriftMonitor // may be nil

	// trainMu serializes retrain cycles (the loop goroutine and any
	// explicit RetrainNow callers).
	trainMu sync.Mutex

	// valMu guards the held-out validation set accumulated across retrains
	// for the promotion gate.
	valMu  sync.Mutex
	valSet []icrn.Sample

	kick    chan struct{}
	stop    chan struct{}
	done    chan struct{}
	once    sync.Once
	started atomic.Bool

	// onPromote, when set (before Start), runs after every promotion with
	// the freshly published generation, still under the retrain lock — the
	// durability layer checkpoints here, so a checkpoint can never see a
	// half-promoted cycle.
	onPromote func(*Generation)

	retrains       atomic.Uint64
	panics         atomic.Uint64
	promotions     atomic.Uint64
	rejections     atomic.Uint64
	driftRetrains  atomic.Uint64
	trainErrors    atomic.Uint64
	labelErrors    atomic.Uint64
	warmErrors     atomic.Uint64
	oraclePairs    atomic.Uint64
	labelFreePairs atomic.Uint64
	lastLiveErr    atomic.Uint64 // math.Float64bits
	lastCandErr    atomic.Uint64 // math.Float64bits
}

// NewTrainer wires a trainer over the box, collector, pool and truth
// oracle. drift may be nil (no drift-driven early retrains).
func NewTrainer(cfg Config, box *ModelBox, col *Collector, p *pool.Pool, oracle workload.Oracle, drift *DriftMonitor) *Trainer {
	t := &Trainer{
		cfg:    cfg.withDefaults(),
		box:    box,
		col:    col,
		pool:   p,
		oracle: oracle,
		drift:  drift,
		kick:   make(chan struct{}, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	t.lastLiveErr.Store(math.Float64bits(math.NaN()))
	t.lastCandErr.Store(math.Float64bits(math.NaN()))
	return t
}

// SetOnPromote installs the promotion hook; see the field comment. Install
// before Start — the hook is read without synchronization from the retrain
// path.
func (t *Trainer) SetOnPromote(fn func(*Generation)) { t.onPromote = fn }

// Start launches the background loop. Starting twice is a no-op; Stop
// tears the loop down. A panic escaping a scheduler iteration (RetrainNow
// already absorbs its own) is counted and the loop restarted — background
// adaptation must never take the process down.
func (t *Trainer) Start() {
	if t.started.Swap(true) {
		return
	}
	go func() {
		defer close(t.done)
		for !t.loop() {
			t.panics.Add(1)
		}
	}()
}

// Stop terminates the background loop and waits for an in-flight retrain
// cycle to finish. Idempotent; safe on a never-started trainer.
func (t *Trainer) Stop() {
	t.once.Do(func() { close(t.stop) })
	if t.started.Load() {
		<-t.done
	}
}

// Kick requests an early retrain (drift, operator intervention). Non-
// blocking; coalesces with a pending kick.
func (t *Trainer) Kick() {
	select {
	case t.kick <- struct{}{}:
	default:
	}
}

// loop is the scheduler: a retrain runs every Interval when enough
// feedback is staged, or immediately on a kick with whatever is staged.
// It reports true on clean shutdown; a recovered panic reports false so
// Start's wrapper restarts it.
func (t *Trainer) loop() (clean bool) {
	defer func() {
		if r := recover(); r != nil {
			clean = false
		}
	}()
	var tick <-chan time.Time
	if t.cfg.Interval > 0 {
		ticker := time.NewTicker(t.cfg.Interval)
		defer ticker.Stop()
		tick = ticker.C
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-t.stop
		cancel()
	}()
	for {
		select {
		case <-t.stop:
			return true
		case <-tick:
			// A drifted window lowers the bar to "anything staged": the
			// trip itself kicks only once (edge-triggered), so sustained
			// drift is handled here, on the schedule, without waiting for
			// a full batch the drifted workload may never deliver.
			staged := t.col.Staged()
			if staged >= t.cfg.MinBatch ||
				(staged > 0 && t.drift != nil && t.drift.Drifted()) {
				_, _ = t.RetrainNow(ctx)
			}
		case <-t.kick:
			// Count only kicks that produced a real cycle: an empty-buffer
			// kick (or a duplicate kick after a drain) is a no-op, and
			// counting it would let drift_retrains exceed retrains.
			before := t.retrains.Load()
			_, _ = t.RetrainNow(ctx)
			if t.retrains.Load() > before {
				t.driftRetrains.Add(1)
			}
		}
	}
}

// RetrainNow runs one synchronous retrain cycle: drain → pool growth →
// pair derivation → labeling → incremental training on a clone →
// validation gate → promotion. It reports whether a new generation was
// promoted. A cycle with nothing staged is a no-op. Concurrent calls
// serialize.
func (t *Trainer) RetrainNow(ctx context.Context) (promoted bool, err error) {
	t.trainMu.Lock()
	defer t.trainMu.Unlock()
	// A panicking cycle (a bug in labeling or training, or an injected
	// fault) must not take the process down: serving never depends on a
	// retrain completing. The panic becomes a counted error; the drained
	// records are lost to training but remain in the pool and journal.
	defer func() {
		if r := recover(); r != nil {
			t.panics.Add(1)
			t.trainErrors.Add(1)
			promoted = false
			err = fmt.Errorf("online: retrain cycle panicked: %v", r)
		}
	}()
	if t.pool == nil {
		// A configuration error, not a crash: the estimator side reports
		// the nil pool on its own paths, and staged feedback stays staged.
		t.trainErrors.Add(1)
		return false, fmt.Errorf("online: trainer requires a queries pool")
	}
	recs := t.col.Drain(0)
	if len(recs) == 0 {
		return false, nil
	}
	t.retrains.Add(1)
	if err := failpoint.Inject(failpoint.TrainerRetrain); err != nil {
		t.trainErrors.Add(1)
		return false, fmt.Errorf("online: retrain: %w", err)
	}

	// Feedback is ground truth: every record becomes a pool entry, so the
	// Cnt2Crd technique can use it immediately (this alone sharpens
	// estimates, before any retraining). Records the pool rejects as
	// duplicates still contribute training pairs.
	for _, r := range recs {
		t.pool.Add(r.Q, r.Card)
	}

	samples, err := t.labelRecords(ctx, recs)
	if err != nil {
		// Only cancellation aborts labeling (per-record failures are
		// isolated and counted); a cancelled cycle is not a train error.
		return false, err
	}
	if len(samples) == 0 {
		return false, nil
	}
	train, freshVal := splitSamples(samples)
	valSet := t.extendValSet(freshVal)
	if len(train) == 0 || len(valSet) == 0 {
		return false, nil
	}

	live := t.box.Current()
	clone, err := cloneModel(live.Model)
	if err != nil {
		t.trainErrors.Add(1)
		return false, fmt.Errorf("online: clone model: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return false, err
	}
	// The rolling validation set is split in two: tuneVal drives
	// ContinueTraining's early stopping (best-epoch selection), gateVal is
	// withheld from training entirely and scores the promotion gate. A
	// single set would let a candidate that overfit the tuning samples via
	// epoch selection grade itself on the same samples — the bias the gate
	// exists to block. A degenerate split falls back to the whole set
	// (small first cycles), accepting the bias over gating on nothing.
	tuneVal, gateVal := splitCouples(valSet)
	if len(tuneVal) == 0 || len(gateVal) == 0 {
		tuneVal, gateVal = valSet, valSet
	}

	// Incremental training on the clone, off the hot path: the live model's
	// weights never move, so in-flight estimates stay consistent without
	// any synchronization beyond the box's pointer. Fine-tuning runs at a
	// reduced learning rate so the small adaptation set nudges the weights
	// instead of dragging them off the bulk distribution.
	clone.SetLR(clone.LR() * t.cfg.LRScale)
	if _, err := clone.ContinueTraining(train, tuneVal, t.cfg.Epochs, nil); err != nil {
		t.trainErrors.Add(1)
		return false, fmt.Errorf("online: continue training: %w", err)
	}

	// Promotion gate: the candidate must not regress the held-out
	// validation q-error beyond the configured tolerance. The same sample
	// set scores both models, so the comparison is apples to apples.
	candErr := clone.ValidationQError(gateVal)
	liveErr := live.Model.ValidationQError(gateVal)
	t.lastCandErr.Store(math.Float64bits(candErr))
	t.lastLiveErr.Store(math.Float64bits(liveErr))
	if math.IsNaN(candErr) || candErr > liveErr*(1+t.cfg.Tolerance) {
		t.rejections.Add(1)
		return false, nil
	}
	// Build the successor generation and pre-warm its representation cache
	// with the pool's working set BEFORE publishing: the first estimates
	// after the hot-swap then run at steady-state cost instead of paying a
	// cold cache. Warming failure is not fatal — publish anyway and let the
	// hot path warm lazily.
	next := t.box.Prepare(clone)
	t.warm(next)
	t.box.Publish(next)
	t.promotions.Add(1)
	if t.drift != nil {
		// The window described the previous generation's estimates.
		t.drift.Reset()
	}
	if t.onPromote != nil {
		t.onPromote(next)
	}
	return true, nil
}

// warmCap bounds how many pool entries a promotion pre-warms into the
// successor generation's cache; beyond it the tail warms lazily on the
// hot path (matching the cache's own default capacity).
const warmCap = 4096

// warm precomputes the pool working set's representations in an
// unpublished generation's cache (see Rates.Warm). The warm set is the
// most-recently-matched entries, so a bounded warm covers what estimates
// are actually selecting, not an arbitrary map-order subset.
func (t *Trainer) warm(g *Generation) {
	entries := t.pool.HotEntries(warmCap)
	queries := make([]query.Query, len(entries))
	for i, e := range entries {
		queries[i] = e.Q
	}
	if err := g.Rates.Warm(queries); err != nil {
		// Non-fatal (the hot path warms lazily), and counted apart from
		// training failures so the stats stay readable.
		t.warmErrors.Add(1)
	}
}

// labelRecords turns drained feedback into encoded training samples: each
// record is paired with a spread of its FROM-clause pool partners (both
// directions) and the pairs are labeled by the truth oracle — the same
// §3.1.2 labeling the offline pipeline uses, fed by the live workload
// instead of a generator.
//
// Partner selection deliberately stride-samples across ALL matching
// entries rather than taking the top-K most similar: serving pairs every
// probe with its whole candidate set, so the retraining distribution must
// cover dissimilar (low-rate) pairs too — training only on near-neighbors
// sharpens the rates the estimator divides by least and measurably hurts
// Cnt2Crd accuracy.
//
// Labeling failures are isolated per record: one query the oracle cannot
// label costs its own record's contribution (counted in label_errors),
// not the whole drained batch's. Cancellation still aborts the cycle.
func (t *Trainer) labelRecords(ctx context.Context, recs []Record) ([]icrn.Sample, error) {
	var out []icrn.Sample
	var partners []pool.Entry
	var pairs []workload.Pair
	var free []workload.LabeledPair
	for _, r := range recs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		partners = t.pool.AppendMatching(partners[:0], r.Q)
		stride := 1
		if k := t.cfg.PairsPerRecord; len(partners) > k {
			stride = len(partners) / k
		}
		pairs = pairs[:0]
		free = free[:0]
		taken := 0
		for i := 0; i < len(partners) && taken < t.cfg.PairsPerRecord; i += stride {
			p := partners[i]
			if p.Q.Key() == r.Q.Key() || p.Card <= 0 {
				continue
			}
			taken++
			if t.cfg.LabelFree {
				if r1, r2, ok := t.labelFreeRates(r, p); ok {
					free = append(free,
						workload.LabeledPair{Q1: r.Q, Q2: p.Q, Rate: r1},
						workload.LabeledPair{Q1: p.Q, Q2: r.Q, Rate: r2})
					continue
				}
			}
			pairs = append(pairs, workload.Pair{Q1: r.Q, Q2: p.Q}, workload.Pair{Q1: p.Q, Q2: r.Q})
		}
		if len(pairs) == 0 && len(free) == 0 {
			continue
		}
		var labeled []workload.LabeledPair
		if len(pairs) > 0 {
			var err error
			labeled, err = workload.LabelPairs(t.oracle, pairs, t.cfg.Workers)
			if err != nil {
				if ctx.Err() != nil {
					return nil, ctx.Err()
				}
				t.labelErrors.Add(1)
				continue
			}
		}
		// Mirror couples stay adjacent in both groups, so the downstream
		// couple-aware splits keep working under mixed labeling.
		labeled = append(labeled, free...)
		samples, err := t.encodePairs(labeled)
		if err != nil {
			t.labelErrors.Add(1)
			continue
		}
		t.oraclePairs.Add(uint64(len(pairs)))
		t.labelFreePairs.Add(uint64(len(free)))
		out = append(out, samples...)
	}
	return out, nil
}

// labelFreeRates labels both directions of a (feedback record, pool
// partner) pair from the cardinality identity rate(Q1 ⊂% Q2) = |Q1∩Q2|/|Q1|
// (§2) — no oracle execution. All three cardinalities must already be
// known: the record's truth, the partner's pooled truth, and the
// intersection's, which is free when the intersection collapses onto one of
// the two queries (the containment-ordered case) and otherwise needs the
// intersection itself to be pooled. Residual pairs report ok=false and fall
// back to the oracle.
func (t *Trainer) labelFreeRates(r Record, p pool.Entry) (recToPartner, partnerToRec float64, ok bool) {
	qi, err := r.Q.Intersect(p.Q)
	if err != nil {
		return 0, 0, false
	}
	var ci int64
	switch qi.Key() {
	case r.Q.Key():
		ci = r.Card
	case p.Q.Key():
		ci = p.Card
	default:
		var found bool
		if ci, found = t.pool.CardOf(qi); !found {
			return 0, 0, false
		}
	}
	return identityRate(ci, r.Card), identityRate(ci, p.Card), true
}

// identityRate computes |Q1∩Q2|/|Q1| with the empty-Q1 and clamping
// conventions of the executor's ContainmentRate (internal/exec): an empty
// Q1 is contained nowhere (rate 0), and noise in independently observed
// cardinalities must not push the rate outside [0,1].
func identityRate(inter, card int64) float64 {
	if card <= 0 {
		return 0
	}
	rate := float64(inter) / float64(card)
	if rate < 0 {
		return 0
	}
	if rate > 1 {
		return 1
	}
	return rate
}

// encodePairs featurizes labeled pairs into training samples.
func (t *Trainer) encodePairs(labeled []workload.LabeledPair) ([]icrn.Sample, error) {
	enc := t.box.enc
	out := make([]icrn.Sample, 0, len(labeled))
	for _, lp := range labeled {
		v1, err := enc.EncodeQuery(lp.Q1)
		if err != nil {
			return nil, err
		}
		v2, err := enc.EncodeQuery(lp.Q2)
		if err != nil {
			return nil, err
		}
		out = append(out, icrn.Sample{V1: v1, V2: v2, Rate: lp.Rate})
	}
	return out, nil
}

// splitSamples carves a deterministic validation slice out of one cycle's
// samples. labelRecords emits pairs as adjacent mirrors — (Q1,Q2) then
// (Q2,Q1) — so the split works on mirror-couples, sending every fourth
// couple (both directions) to validation: a val sample's reversed twin in
// the training set would leak the gate, letting an overfit candidate
// score as if its training pairs were held out.
func splitSamples(all []icrn.Sample) (train, val []icrn.Sample) {
	for i, s := range all {
		if (i/2)%4 == 3 {
			val = append(val, s)
		} else {
			train = append(train, s)
		}
	}
	if len(val) == 0 && len(all) > 2 {
		val = all[len(all)-2:]
		train = all[:len(all)-2]
	}
	return train, val
}

// splitCouples deals a sample list's mirror-couples alternately into two
// halves (couples stay whole, as in splitSamples).
func splitCouples(all []icrn.Sample) (a, b []icrn.Sample) {
	for i, s := range all {
		if (i/2)%2 == 0 {
			a = append(a, s)
		} else {
			b = append(b, s)
		}
	}
	return a, b
}

// extendValSet folds fresh validation samples into the rolling held-out
// set (FIFO-bounded to MaxValSet) and returns a snapshot for this cycle's
// gate. Keeping validation samples across cycles stops the gate from
// judging the candidate only on the data it was just trained around.
func (t *Trainer) extendValSet(fresh []icrn.Sample) []icrn.Sample {
	t.valMu.Lock()
	defer t.valMu.Unlock()
	t.valSet = append(t.valSet, fresh...)
	if over := len(t.valSet) - t.cfg.MaxValSet; over > 0 {
		t.valSet = append(t.valSet[:0], t.valSet[over:]...)
	}
	out := make([]icrn.Sample, len(t.valSet))
	copy(out, t.valSet)
	return out
}

// cloneModel duplicates a model's configuration and weights through its
// serialization round trip — the clone shares nothing with the original,
// so training it cannot disturb live serving.
func cloneModel(m *icrn.Model) (*icrn.Model, error) {
	blob, err := m.Save()
	if err != nil {
		return nil, err
	}
	return icrn.Load(blob)
}

// TrainerStats is a point-in-time snapshot of the retraining loop.
type TrainerStats struct {
	Retrains   uint64 `json:"retrains"`
	Promotions uint64 `json:"promotions"`
	Rejections uint64 `json:"rejections"`
	// Panics counts retrain cycles (or scheduler iterations) that
	// panicked, were recovered, and left serving untouched.
	Panics        uint64 `json:"panics"`
	DriftRetrains uint64 `json:"drift_retrains"`
	// TrainErrors counts failed retrain cycles (clone/training/config
	// failures); LabelErrors counts records whose pair labeling failed and
	// were skipped (the cycle continued); WarmErrors counts non-fatal
	// promotion cache-warm failures.
	TrainErrors uint64 `json:"train_errors"`
	LabelErrors uint64 `json:"label_errors"`
	WarmErrors  uint64 `json:"warm_errors"`
	// OraclePairs counts feedback pairs labeled by executing the truth
	// oracle; LabelFreePairs counts pairs labeled from the cardinality
	// identity instead — each one is an oracle execution saved.
	OraclePairs    uint64 `json:"oracle_pairs"`
	LabelFreePairs uint64 `json:"label_free_pairs"`
	// LastLiveQError / LastCandidateQError are the promotion gate's most
	// recent measurements (0 until the first gated cycle).
	LastLiveQError      float64 `json:"last_live_q_error"`
	LastCandidateQError float64 `json:"last_candidate_q_error"`
	ValSamples          int     `json:"val_samples"`
}

// Stats returns the retraining counters.
func (t *Trainer) Stats() TrainerStats {
	t.valMu.Lock()
	valN := len(t.valSet)
	t.valMu.Unlock()
	st := TrainerStats{
		Retrains:       t.retrains.Load(),
		Promotions:     t.promotions.Load(),
		Rejections:     t.rejections.Load(),
		Panics:         t.panics.Load(),
		DriftRetrains:  t.driftRetrains.Load(),
		TrainErrors:    t.trainErrors.Load(),
		LabelErrors:    t.labelErrors.Load(),
		WarmErrors:     t.warmErrors.Load(),
		OraclePairs:    t.oraclePairs.Load(),
		LabelFreePairs: t.labelFreePairs.Load(),
		ValSamples:     valN,
	}
	if v := math.Float64frombits(t.lastLiveErr.Load()); !math.IsNaN(v) {
		st.LastLiveQError = v
	}
	if v := math.Float64frombits(t.lastCandErr.Load()); !math.IsNaN(v) {
		st.LastCandidateQError = v
	}
	return st
}
