// Package optimizer implements the application that motivates the paper:
// cost-based join ordering driven by cardinality estimates ("a traditional
// query optimizer is crucially dependent on cardinality estimation, which
// enables choosing among different plan alternatives by using the
// cardinality estimation of intermediate results", §5).
//
// The optimizer performs Selinger-style dynamic programming over connected
// table subsets, producing the cheapest left-deep join order under the
// C_out cost model — the sum of (estimated) intermediate join result
// cardinalities, the standard metric for studying the impact of estimation
// errors on plan quality (Leis et al., "How Good Are Query Optimizers,
// Really?"). Plugging in different estimators (PostgreSQL-style, MSCN,
// Cnt2Crd(CRN), or the exact executor) quantifies how containment-based
// estimation translates into better plans.
package optimizer

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"crn/internal/contain"
	"crn/internal/query"
)

// Plan is a left-deep join order with its estimated C_out cost.
type Plan struct {
	// Order lists the base tables in join order; Order[0] is the leftmost.
	Order []string
	// EstimatedCost is the C_out under the optimizer's estimator: the sum
	// of estimated cardinalities of every intermediate (and final) join
	// result.
	EstimatedCost float64
}

// Optimizer chooses join orders using a pluggable cardinality estimator.
type Optimizer struct {
	Est contain.CardEstimator
	// AllowCrossProducts permits join orders whose prefixes are
	// disconnected (costed as cartesian products). Off by default, like
	// real systems.
	AllowCrossProducts bool
}

// New creates an optimizer over the given estimator.
func New(est contain.CardEstimator) *Optimizer { return &Optimizer{Est: est} }

// Optimize returns the cheapest left-deep join order for q under the
// estimator. Single-table queries yield the trivial plan with zero join
// cost.
func (o *Optimizer) Optimize(q query.Query) (Plan, error) {
	n := len(q.Tables)
	if n == 0 {
		return Plan{}, fmt.Errorf("optimizer: query has no tables")
	}
	if n == 1 {
		return Plan{Order: []string{q.Tables[0]}}, nil
	}
	if n > 16 {
		return Plan{}, fmt.Errorf("optimizer: %d tables exceeds the DP limit", n)
	}

	cards, err := o.subsetCards(q)
	if err != nil {
		return Plan{}, err
	}
	type state struct {
		cost float64
		prev int // previous subset mask
		last int // table index appended to reach this mask
	}
	full := (1 << n) - 1
	states := make([]state, 1<<n)
	for i := range states {
		states[i] = state{cost: math.Inf(1), prev: -1, last: -1}
	}
	for t := 0; t < n; t++ {
		states[1<<t] = state{cost: 0, prev: 0, last: t}
	}
	adj := adjacency(q)
	for mask := 1; mask <= full; mask++ {
		cur := states[mask]
		if math.IsInf(cur.cost, 1) {
			continue
		}
		for t := 0; t < n; t++ {
			if mask&(1<<t) != 0 {
				continue
			}
			if !o.AllowCrossProducts && !connectsTo(adj, mask, t) {
				continue
			}
			next := mask | 1<<t
			// Appending table t materializes the intermediate result of
			// `next`; its (estimated) cardinality is the step cost.
			cost := cur.cost + cards[next]
			if cost < states[next].cost {
				states[next] = state{cost: cost, prev: mask, last: t}
			}
		}
	}
	if math.IsInf(states[full].cost, 1) {
		// Disconnected query with cross products disallowed: retry allowing
		// them (matching executor semantics).
		if !o.AllowCrossProducts {
			saved := o.AllowCrossProducts
			o.AllowCrossProducts = true
			defer func() { o.AllowCrossProducts = saved }()
			return o.Optimize(q)
		}
		return Plan{}, fmt.Errorf("optimizer: no feasible plan")
	}
	// Reconstruct the order.
	order := make([]string, 0, n)
	for mask := full; mask != 0; {
		st := states[mask]
		order = append(order, q.Tables[st.last])
		mask = st.prev
	}
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return Plan{Order: order, EstimatedCost: states[full].cost}, nil
}

// subsetCards estimates the cardinality of every table subset's sub-query.
// Subsets of size 1 are included (needed by Cost) but not charged by the
// C_out model.
func (o *Optimizer) subsetCards(q query.Query) (map[int]float64, error) {
	n := len(q.Tables)
	out := make(map[int]float64, 1<<n)
	for mask := 1; mask < 1<<n; mask++ {
		sub := Subquery(q, mask)
		c, err := o.Est.EstimateCard(sub)
		if err != nil {
			return nil, err
		}
		out[mask] = c
	}
	return out, nil
}

// Subquery restricts q to the tables selected by mask (bit i selects
// q.Tables[i]), keeping the joins and predicates that touch only those
// tables.
func Subquery(q query.Query, mask int) query.Query {
	in := make(map[string]bool)
	var tables []string
	for i, t := range q.Tables {
		if mask&(1<<i) != 0 {
			in[t] = true
			tables = append(tables, t)
		}
	}
	sub := query.Query{Tables: tables}
	for _, j := range q.Joins {
		if in[j.Left.Table] && in[j.Right.Table] {
			sub.Joins = append(sub.Joins, j)
		}
	}
	for _, p := range q.Preds {
		if in[p.Col.Table] {
			sub.Preds = append(sub.Preds, p)
		}
	}
	return sub
}

func adjacency(q query.Query) map[int][]int {
	idx := make(map[string]int, len(q.Tables))
	for i, t := range q.Tables {
		idx[t] = i
	}
	adj := make(map[int][]int)
	for _, j := range q.Joins {
		a, b := idx[j.Left.Table], idx[j.Right.Table]
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	return adj
}

func connectsTo(adj map[int][]int, mask, t int) bool {
	for _, nbr := range adj[t] {
		if mask&(1<<nbr) != 0 {
			return true
		}
	}
	return false
}

// Cost evaluates a concrete join order's C_out under an estimator
// (typically the exact executor adapter, yielding the plan's true cost).
func Cost(est contain.CardEstimator, q query.Query, order []string) (float64, error) {
	if len(order) != len(q.Tables) {
		return 0, fmt.Errorf("optimizer: order has %d tables, query has %d", len(order), len(q.Tables))
	}
	idx := make(map[string]int, len(q.Tables))
	for i, t := range q.Tables {
		idx[t] = i
	}
	mask := 0
	var total float64
	for step, t := range order {
		i, ok := idx[t]
		if !ok {
			return 0, fmt.Errorf("optimizer: unknown table %q in order", t)
		}
		if mask&(1<<i) != 0 {
			return 0, fmt.Errorf("optimizer: duplicate table %q in order", t)
		}
		mask |= 1 << i
		if step == 0 {
			continue // base scan is not charged by C_out
		}
		c, err := est.EstimateCard(Subquery(q, mask))
		if err != nil {
			return 0, err
		}
		total += c
	}
	return total, nil
}

// EnumerateOrders returns every valid left-deep order (connected prefixes
// unless allowCross) — used by tests to verify DP optimality by brute
// force. The count is factorial; callers bound the table count.
func EnumerateOrders(q query.Query, allowCross bool) [][]string {
	n := len(q.Tables)
	adj := adjacency(q)
	var out [][]string
	var rec func(mask int, order []int)
	rec = func(mask int, order []int) {
		if len(order) == n {
			names := make([]string, n)
			for i, t := range order {
				names[i] = q.Tables[t]
			}
			out = append(out, names)
			return
		}
		for t := 0; t < n; t++ {
			if mask&(1<<t) != 0 {
				continue
			}
			if !allowCross && bits.OnesCount(uint(mask)) > 0 && !connectsTo(adj, mask, t) {
				continue
			}
			rec(mask|1<<t, append(order, t))
		}
	}
	rec(0, nil)
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}
