package optimizer

import (
	"math"
	"math/rand"
	"testing"

	"crn/internal/contain"
	"crn/internal/datagen"
	"crn/internal/exec"
	"crn/internal/query"
	"crn/internal/schema"
	"crn/internal/sqlparse"
)

var s = schema.IMDB()

func fixture(t *testing.T) (*exec.Executor, contain.CardEstimator) {
	t.Helper()
	cfg := datagen.DefaultConfig()
	cfg.Titles = 300
	d, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := exec.New(d)
	if err != nil {
		t.Fatal(err)
	}
	return ex, contain.TruthCard{T: ex}
}

func TestSingleTablePlan(t *testing.T) {
	_, oracle := fixture(t)
	o := New(oracle)
	p, err := o.Optimize(sqlparse.MustParse(s, "SELECT * FROM title"))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Order) != 1 || p.Order[0] != "title" || p.EstimatedCost != 0 {
		t.Errorf("plan = %+v", p)
	}
}

func TestEmptyQueryFails(t *testing.T) {
	_, oracle := fixture(t)
	if _, err := New(oracle).Optimize(query.Query{}); err == nil {
		t.Error("empty query should fail")
	}
}

// DP must find the same optimum as brute-force enumeration of all valid
// left-deep orders under the same estimator.
func TestDPMatchesBruteForce(t *testing.T) {
	_, oracle := fixture(t)
	o := New(oracle)
	queries := []string{
		`SELECT * FROM title, cast_info, movie_keyword
		 WHERE title.id = cast_info.movie_id AND title.id = movie_keyword.movie_id
		 AND cast_info.role_id = 2`,
		`SELECT * FROM title, cast_info, movie_companies, movie_info
		 WHERE title.id = cast_info.movie_id AND title.id = movie_companies.movie_id
		 AND title.id = movie_info.movie_id
		 AND title.production_year > 1980 AND movie_info.info_val > 500`,
	}
	for _, sql := range queries {
		q := sqlparse.MustParse(s, sql)
		plan, err := o.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		best := math.Inf(1)
		for _, order := range EnumerateOrders(q, false) {
			c, err := Cost(oracle, q, order)
			if err != nil {
				t.Fatal(err)
			}
			if c < best {
				best = c
			}
		}
		if math.Abs(plan.EstimatedCost-best) > 1e-6*(1+best) {
			t.Errorf("%s: DP cost %v, brute force %v", sql, plan.EstimatedCost, best)
		}
		// The reported cost matches re-costing the returned order.
		recost, err := Cost(oracle, q, plan.Order)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(plan.EstimatedCost-recost) > 1e-6*(1+recost) {
			t.Errorf("plan cost %v != recost %v", plan.EstimatedCost, recost)
		}
	}
}

func TestConnectedPrefixes(t *testing.T) {
	_, oracle := fixture(t)
	o := New(oracle)
	q := sqlparse.MustParse(s, `SELECT * FROM title, cast_info, movie_keyword
		WHERE title.id = cast_info.movie_id AND title.id = movie_keyword.movie_id`)
	plan, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	// Every prefix of the chosen order must be join-connected: title must
	// appear within the first two tables of a star query.
	pos := -1
	for i, tb := range plan.Order {
		if tb == schema.Title {
			pos = i
		}
	}
	if pos > 1 {
		t.Errorf("title at position %d creates a cross product: %v", pos, plan.Order)
	}
}

func TestCrossProductFallback(t *testing.T) {
	_, oracle := fixture(t)
	o := New(oracle)
	// No join clause between the two tables: only cross products exist, so
	// the optimizer must fall back to allowing them.
	q := query.Query{Tables: []string{schema.CastInfo, schema.Title}}
	plan, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Order) != 2 {
		t.Errorf("plan = %+v", plan)
	}
	if plan.EstimatedCost <= 0 {
		t.Errorf("cross product cost = %v", plan.EstimatedCost)
	}
}

// A misestimating optimizer must never beat the oracle optimizer in true
// cost — and on correlated data it should sometimes be strictly worse.
func TestMisestimationCannotBeatOracle(t *testing.T) {
	ex, oracle := fixture(t)
	rng := rand.New(rand.NewSource(3))
	// A deliberately wrong estimator: random noise.
	noisy := contain.CardFunc(func(q query.Query) (float64, error) {
		return float64(1 + rng.Intn(10000)), nil
	})
	oracleOpt := New(oracle)
	noisyOpt := New(noisy)
	queries := []string{
		`SELECT * FROM title, cast_info, movie_keyword
		 WHERE title.id = cast_info.movie_id AND title.id = movie_keyword.movie_id
		 AND cast_info.person_id > 1200`,
		`SELECT * FROM title, movie_companies, movie_info, movie_keyword
		 WHERE title.id = movie_companies.movie_id AND title.id = movie_info.movie_id
		 AND title.id = movie_keyword.movie_id AND movie_companies.company_id > 1600`,
	}
	worse := false
	for _, sql := range queries {
		q := sqlparse.MustParse(s, sql)
		op, err := oracleOpt.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		np, err := noisyOpt.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		oracleCost, err := Cost(contain.TruthCard{T: ex}, q, op.Order)
		if err != nil {
			t.Fatal(err)
		}
		noisyCost, err := Cost(contain.TruthCard{T: ex}, q, np.Order)
		if err != nil {
			t.Fatal(err)
		}
		if noisyCost < oracleCost-1e-9 {
			t.Errorf("%s: noisy plan cost %v beats oracle %v", sql, noisyCost, oracleCost)
		}
		if noisyCost > oracleCost+1e-9 {
			worse = true
		}
	}
	_ = worse // strictly-worse is data dependent; the invariant above is the test
}

func TestCostValidation(t *testing.T) {
	_, oracle := fixture(t)
	q := sqlparse.MustParse(s, `SELECT * FROM title, cast_info WHERE title.id = cast_info.movie_id`)
	if _, err := Cost(oracle, q, []string{"title"}); err == nil {
		t.Error("wrong order length should fail")
	}
	if _, err := Cost(oracle, q, []string{"title", "ghost"}); err == nil {
		t.Error("unknown table should fail")
	}
	if _, err := Cost(oracle, q, []string{"title", "title"}); err == nil {
		t.Error("duplicate table should fail")
	}
}

func TestSubquery(t *testing.T) {
	q := sqlparse.MustParse(s, `SELECT * FROM title, cast_info, movie_keyword
		WHERE title.id = cast_info.movie_id AND title.id = movie_keyword.movie_id
		AND cast_info.role_id = 2 AND title.kind_id = 1`)
	// Mask selecting cast_info and title (order follows q.Tables, sorted:
	// cast_info, movie_keyword, title -> bits 0 and 2).
	sub := Subquery(q, 0b101)
	if len(sub.Tables) != 2 || sub.Tables[0] != "cast_info" || sub.Tables[1] != "title" {
		t.Fatalf("tables = %v", sub.Tables)
	}
	if len(sub.Joins) != 1 {
		t.Errorf("joins = %v", sub.Joins)
	}
	if len(sub.Preds) != 2 {
		t.Errorf("preds = %v", sub.Preds)
	}
}

func TestEnumerateOrdersStar(t *testing.T) {
	q := sqlparse.MustParse(s, `SELECT * FROM title, cast_info, movie_keyword
		WHERE title.id = cast_info.movie_id AND title.id = movie_keyword.movie_id`)
	orders := EnumerateOrders(q, false)
	// Star with center title and 2 satellites: title first (2! tails = 2),
	// or satellite then title then the other (2 ways). Total 4.
	if len(orders) != 4 {
		t.Errorf("connected orders = %d, want 4: %v", len(orders), orders)
	}
	all := EnumerateOrders(q, true)
	if len(all) != 6 {
		t.Errorf("all orders = %d, want 3! = 6", len(all))
	}
}
