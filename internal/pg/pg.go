// Package pg reimplements the PostgreSQL-style profiling cardinality
// estimator the paper uses as its classical baseline (§4.1.3, §6): ANALYZE
// gathers per-column most-common-value (MCV) lists and equi-depth
// histograms; selectivities of conjunctive predicates are combined under the
// attribute-value-independence assumption; and equi-joins are estimated with
// the textbook System-R selectivity 1/max(nd_left, nd_right).
//
// These are exactly the modeling assumptions whose failure on correlated
// data ("join crossing correlations") the paper exploits: per-table
// estimates are decent, but multiplying independent selectivities across
// correlated columns and joins under-estimates exponentially in the number
// of joins (§6.5) — the behaviour this package reproduces by construction.
package pg

import (
	"fmt"
	"sort"

	"crn/internal/db"
	"crn/internal/query"
	"crn/internal/schema"
)

// Config controls ANALYZE resolution.
type Config struct {
	HistogramBins int // equi-depth histogram buckets per column
	MCVEntries    int // most-common-value list length per column
}

// DefaultConfig mirrors PostgreSQL's default statistics target order of
// magnitude (100 histogram buckets).
func DefaultConfig() Config { return Config{HistogramBins: 100, MCVEntries: 20} }

// Estimator is an analyzed database profile; safe for concurrent use.
type Estimator struct {
	s     *schema.Schema
	stats map[string]*colProfile // "table.column"
	rows  map[string]int         // table -> row count
}

// colProfile is the per-column statistics PostgreSQL keeps in pg_statistic.
type colProfile struct {
	numRows   int
	nDistinct int
	min, max  db.Value

	mcvVals  []db.Value
	mcvFracs []float64
	mcvTotal float64

	// Equi-depth histogram over the non-MCV values; bounds has bins+1
	// entries. histTotal is the row fraction the histogram covers.
	bounds    []db.Value
	histTotal float64
}

// Analyze profiles every column of a frozen database.
func Analyze(d *db.Database, cfg Config) (*Estimator, error) {
	if !d.Frozen() {
		return nil, fmt.Errorf("pg: database must be frozen")
	}
	if cfg.HistogramBins <= 0 {
		cfg.HistogramBins = 100
	}
	if cfg.MCVEntries < 0 {
		cfg.MCVEntries = 0
	}
	s := d.Schema
	e := &Estimator{s: s, stats: make(map[string]*colProfile), rows: make(map[string]int)}
	for _, td := range s.Tables {
		e.rows[td.Name] = d.NumRows(td.Name)
		for _, c := range td.Columns {
			ref := schema.ColumnRef{Table: c.Table, Column: c.Name}
			e.stats[ref.String()] = buildProfile(d, ref, cfg)
		}
	}
	return e, nil
}

func buildProfile(d *db.Database, ref schema.ColumnRef, cfg Config) *colProfile {
	base, _ := d.Stats(ref)
	p := &colProfile{
		numRows:   base.NumRows,
		nDistinct: base.NDistinct,
		min:       base.Min,
		max:       base.Max,
	}
	if base.NumRows == 0 {
		return p
	}
	sorted := d.SortedValues(ref)

	// Frequency count over the sorted values.
	type vf struct {
		v db.Value
		n int
	}
	var freqs []vf
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j] == sorted[i] {
			j++
		}
		freqs = append(freqs, vf{sorted[i], j - i})
		i = j
	}
	// MCVs: most frequent values, but only those occurring more than once
	// (PostgreSQL does not store singletons in the MCV list).
	sort.SliceStable(freqs, func(a, b int) bool { return freqs[a].n > freqs[b].n })
	isMCV := make(map[db.Value]bool)
	for i := 0; i < len(freqs) && i < cfg.MCVEntries; i++ {
		if freqs[i].n <= 1 {
			break
		}
		p.mcvVals = append(p.mcvVals, freqs[i].v)
		frac := float64(freqs[i].n) / float64(base.NumRows)
		p.mcvFracs = append(p.mcvFracs, frac)
		p.mcvTotal += frac
		isMCV[freqs[i].v] = true
	}
	// Histogram over the remaining values.
	var rest []db.Value
	for _, v := range sorted {
		if !isMCV[v] {
			rest = append(rest, v)
		}
	}
	p.histTotal = float64(len(rest)) / float64(base.NumRows)
	if len(rest) > 0 {
		bins := cfg.HistogramBins
		if bins > len(rest) {
			bins = len(rest)
		}
		p.bounds = make([]db.Value, bins+1)
		for b := 0; b <= bins; b++ {
			idx := b * (len(rest) - 1) / bins
			p.bounds[b] = rest[idx]
		}
	}
	return p
}

// EstimateCard estimates the result cardinality of a conjunctive query.
// Disconnected FROM clauses multiply as cartesian products, matching the
// executor's semantics.
func (e *Estimator) EstimateCard(q query.Query) (float64, error) {
	if len(q.Tables) == 0 {
		return 0, fmt.Errorf("pg: query has no tables")
	}
	card := 1.0
	for _, t := range q.Tables {
		rows, ok := e.rows[t]
		if !ok {
			return 0, fmt.Errorf("pg: unknown table %q", t)
		}
		sel, err := e.tableSelectivity(t, q.PredsOn(t))
		if err != nil {
			return 0, err
		}
		card *= float64(rows) * sel
	}
	for _, j := range q.Joins {
		sel, err := e.joinSelectivity(j)
		if err != nil {
			return 0, err
		}
		card *= sel
	}
	if card < 0 {
		card = 0
	}
	return card, nil
}

// tableSelectivity combines the predicates on one table under the
// independence assumption.
func (e *Estimator) tableSelectivity(table string, preds []query.Predicate) (float64, error) {
	sel := 1.0
	for _, p := range preds {
		s, err := e.Selectivity(p)
		if err != nil {
			return 0, err
		}
		sel *= s
	}
	return clamp01(sel), nil
}

// Selectivity estimates the fraction of rows satisfying one predicate.
func (e *Estimator) Selectivity(p query.Predicate) (float64, error) {
	prof, ok := e.stats[p.Col.String()]
	if !ok {
		return 0, fmt.Errorf("pg: no statistics for %v", p.Col)
	}
	if prof.numRows == 0 {
		return 0, nil
	}
	switch p.Op {
	case schema.OpEQ:
		return prof.selEQ(p.Val), nil
	case schema.OpLT:
		if p.Val <= prof.min {
			return 0, nil
		}
		if p.Val > prof.max {
			return 1, nil
		}
		return prof.selLT(p.Val), nil
	case schema.OpGT:
		if p.Val >= prof.max {
			return 0, nil
		}
		if p.Val < prof.min {
			return 1, nil
		}
		// sel(>v) = 1 - sel(<v) - sel(=v)
		return clamp01(1 - prof.selLT(p.Val) - prof.selEQ(p.Val)), nil
	}
	return 0, fmt.Errorf("pg: unsupported operator %q", p.Op)
}

// joinSelectivity is the System-R equi-join selectivity 1/max(nd1, nd2),
// PostgreSQL's eqjoinsel without MCV matching.
func (e *Estimator) joinSelectivity(j query.Join) (float64, error) {
	l, ok := e.stats[j.Left.String()]
	if !ok {
		return 0, fmt.Errorf("pg: no statistics for %v", j.Left)
	}
	r, ok := e.stats[j.Right.String()]
	if !ok {
		return 0, fmt.Errorf("pg: no statistics for %v", j.Right)
	}
	nd := l.nDistinct
	if r.nDistinct > nd {
		nd = r.nDistinct
	}
	if nd == 0 {
		return 0, nil
	}
	return 1 / float64(nd), nil
}

// selEQ implements PostgreSQL's eqsel: MCV hit uses the stored frequency;
// otherwise the non-MCV mass is spread evenly over the non-MCV distinct
// values.
func (p *colProfile) selEQ(v db.Value) float64 {
	if v < p.min || v > p.max {
		return 0
	}
	for i, mv := range p.mcvVals {
		if mv == v {
			return p.mcvFracs[i]
		}
	}
	restDistinct := p.nDistinct - len(p.mcvVals)
	if restDistinct <= 0 {
		return 0
	}
	return (1 - p.mcvTotal) / float64(restDistinct)
}

// selLT implements PostgreSQL's scalarltsel: exact MCV contribution plus
// interpolated histogram fraction.
func (p *colProfile) selLT(v db.Value) float64 {
	var sel float64
	for i, mv := range p.mcvVals {
		if mv < v {
			sel += p.mcvFracs[i]
		}
	}
	sel += p.histTotal * p.histFracBelow(v)
	return clamp01(sel)
}

// histFracBelow returns the interpolated fraction of histogram-covered rows
// strictly below v.
func (p *colProfile) histFracBelow(v db.Value) float64 {
	if len(p.bounds) == 0 {
		return 0
	}
	if v <= p.bounds[0] {
		return 0
	}
	last := p.bounds[len(p.bounds)-1]
	if v > last {
		return 1
	}
	bins := len(p.bounds) - 1
	// Find the bucket with bounds[i] < v <= bounds[i+1].
	i := sort.Search(bins, func(i int) bool { return v <= p.bounds[i+1] })
	lo, hi := p.bounds[i], p.bounds[i+1]
	var within float64
	if hi > lo {
		within = float64(v-lo) / float64(hi-lo)
	}
	return (float64(i) + within) / float64(bins)
}

// NumRows returns the profiled row count of a table.
func (e *Estimator) NumRows(table string) int { return e.rows[table] }

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
