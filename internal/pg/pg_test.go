package pg

import (
	"math"
	"testing"

	"crn/internal/datagen"
	"crn/internal/db"
	"crn/internal/exec"
	"crn/internal/metrics"
	"crn/internal/query"
	"crn/internal/schema"
	"crn/internal/sqlparse"
)

var s = schema.IMDB()

func analyzed(t *testing.T, titles int) (*Estimator, *exec.Executor, *db.Database) {
	t.Helper()
	cfg := datagen.DefaultConfig()
	cfg.Titles = titles
	d, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Analyze(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ex, err := exec.New(d)
	if err != nil {
		t.Fatal(err)
	}
	return e, ex, d
}

func TestUnfilteredTableIsExact(t *testing.T) {
	e, _, d := analyzed(t, 300)
	q := sqlparse.MustParse(s, "SELECT * FROM title")
	got, err := e.EstimateCard(q)
	if err != nil {
		t.Fatal(err)
	}
	if got != float64(d.NumRows(schema.Title)) {
		t.Errorf("unfiltered estimate = %v, want %v", got, d.NumRows(schema.Title))
	}
}

func TestSingleColumnRangeIsAccurate(t *testing.T) {
	e, ex, _ := analyzed(t, 2000)
	// Histograms make single-column range predicates accurate: q-error < 2.
	for _, sql := range []string{
		"SELECT * FROM title WHERE title.production_year > 1950",
		"SELECT * FROM title WHERE title.production_year < 1930",
		"SELECT * FROM movie_info WHERE movie_info.info_val > 400",
	} {
		q := sqlparse.MustParse(s, sql)
		est, err := e.EstimateCard(q)
		if err != nil {
			t.Fatal(err)
		}
		truth, err := ex.Cardinality(q)
		if err != nil {
			t.Fatal(err)
		}
		if qe := metrics.CardQError(float64(truth), est); qe > 2 {
			t.Errorf("%s: q-error %v (est %v, true %d)", sql, qe, est, truth)
		}
	}
}

func TestEqualityUsesMCVs(t *testing.T) {
	e, ex, _ := analyzed(t, 2000)
	// kind_id has few distinct values; all should be in the MCV list and
	// equality selectivity should be near exact.
	for kind := int64(1); kind <= 7; kind++ {
		q, err := query.New(s, []string{schema.Title}, nil, []query.Predicate{
			{Col: schema.ColumnRef{Table: schema.Title, Column: "kind_id"}, Op: schema.OpEQ, Val: kind},
		})
		if err != nil {
			t.Fatal(err)
		}
		est, err := e.EstimateCard(q)
		if err != nil {
			t.Fatal(err)
		}
		truth, err := ex.Cardinality(q)
		if err != nil {
			t.Fatal(err)
		}
		if truth == 0 {
			continue
		}
		if qe := metrics.CardQError(float64(truth), est); qe > 1.5 {
			t.Errorf("kind_id=%d: q-error %v (est %v, true %d)", kind, qe, est, truth)
		}
	}
}

func TestOutOfRangeSelectivityZero(t *testing.T) {
	e, _, _ := analyzed(t, 300)
	p := query.Predicate{
		Col: schema.ColumnRef{Table: schema.Title, Column: "production_year"},
		Op:  schema.OpEQ, Val: 5000,
	}
	sel, err := e.Selectivity(p)
	if err != nil {
		t.Fatal(err)
	}
	if sel != 0 {
		t.Errorf("out-of-range equality selectivity = %v", sel)
	}
	p.Op = schema.OpGT
	sel, err = e.Selectivity(p)
	if err != nil {
		t.Fatal(err)
	}
	if sel != 0 {
		t.Errorf("> max selectivity = %v", sel)
	}
	p.Op = schema.OpLT
	p.Val = -100
	sel, err = e.Selectivity(p)
	if err != nil {
		t.Fatal(err)
	}
	if sel != 0 {
		t.Errorf("< min selectivity = %v", sel)
	}
}

func TestLTGTEQPartitionUnity(t *testing.T) {
	e, _, _ := analyzed(t, 1000)
	col := schema.ColumnRef{Table: schema.Title, Column: "production_year"}
	for _, v := range []int64{1900, 1950, 1999} {
		var total float64
		for _, op := range []string{schema.OpLT, schema.OpEQ, schema.OpGT} {
			sel, err := e.Selectivity(query.Predicate{Col: col, Op: op, Val: v})
			if err != nil {
				t.Fatal(err)
			}
			total += sel
		}
		if math.Abs(total-1) > 0.05 {
			t.Errorf("selectivities at %d sum to %v, want ~1", v, total)
		}
	}
}

func TestPKFKJoinEstimate(t *testing.T) {
	e, ex, _ := analyzed(t, 1000)
	q := sqlparse.MustParse(s, "SELECT * FROM title, cast_info WHERE title.id = cast_info.movie_id")
	est, err := e.EstimateCard(q)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := ex.Cardinality(q)
	if err != nil {
		t.Fatal(err)
	}
	// An unfiltered PK-FK join is the FK table size; 1/max(nd) gets this
	// nearly right.
	if qe := metrics.CardQError(float64(truth), est); qe > 2 {
		t.Errorf("PK-FK join q-error = %v (est %v, true %d)", qe, est, truth)
	}
}

// The headline behaviour the paper relies on: under correlated predicates
// the independence assumption under-estimates, and the error grows with the
// number of joins.
func TestUnderestimationGrowsWithJoins(t *testing.T) {
	e, ex, _ := analyzed(t, 3000)
	// Correlated predicates: company ids live in era-major blocks so a
	// company_id range implies a production_year range; info values encode
	// the era directly (era*150 + ...).
	queries := []string{
		// 1 join with cross-table correlated predicates: era 4 movies with
		// era-4-block companies (blocks 40-49 => ids > 40*40 = 1600).
		`SELECT * FROM title, movie_companies WHERE title.id = movie_companies.movie_id
		 AND title.production_year > 1984 AND movie_companies.company_id > 1600`,
		// 2 joins: additionally era-4 info values (>= 4*150 = 600).
		`SELECT * FROM title, movie_companies, movie_info
		 WHERE title.id = movie_companies.movie_id AND title.id = movie_info.movie_id
		 AND title.production_year > 1984 AND movie_companies.company_id > 1600
		 AND movie_info.info_val > 600`,
	}
	var prevRatio float64 = 1
	for i, sql := range queries {
		q := sqlparse.MustParse(s, sql)
		est, err := e.EstimateCard(q)
		if err != nil {
			t.Fatal(err)
		}
		truth, err := ex.Cardinality(q)
		if err != nil {
			t.Fatal(err)
		}
		if truth == 0 {
			t.Skipf("query %d has empty result on this seed", i)
		}
		ratio := float64(truth) / math.Max(est, 1)
		if ratio < prevRatio {
			t.Logf("warning: under-estimation did not grow at %d joins (ratio %v -> %v)", i+1, prevRatio, ratio)
		}
		prevRatio = ratio
	}
	if prevRatio < 2 {
		t.Errorf("expected under-estimation on correlated multi-join query, final true/est ratio = %v", prevRatio)
	}
}

func TestCartesianComponents(t *testing.T) {
	e, _, d := analyzed(t, 200)
	q := query.Query{Tables: []string{schema.CastInfo, schema.Title}}
	got, err := e.EstimateCard(q)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(d.NumRows(schema.CastInfo)) * float64(d.NumRows(schema.Title))
	if math.Abs(got-want) > 1e-6*want {
		t.Errorf("cartesian = %v, want %v", got, want)
	}
}

func TestErrors(t *testing.T) {
	e, _, _ := analyzed(t, 100)
	if _, err := e.EstimateCard(query.Query{}); err == nil {
		t.Error("empty query should fail")
	}
	if _, err := e.EstimateCard(query.Query{Tables: []string{"ghost"}}); err == nil {
		t.Error("unknown table should fail")
	}
	if _, err := e.Selectivity(query.Predicate{
		Col: schema.ColumnRef{Table: "ghost", Column: "x"}, Op: schema.OpEQ,
	}); err == nil {
		t.Error("unknown column should fail")
	}
	if _, err := e.Selectivity(query.Predicate{
		Col: schema.ColumnRef{Table: schema.Title, Column: "kind_id"}, Op: "!=",
	}); err == nil {
		t.Error("unsupported operator should fail")
	}
	if _, err := Analyze(db.NewDatabase(s), DefaultConfig()); err == nil {
		t.Error("unfrozen database should fail")
	}
}

func TestSelectivityAlwaysInUnitInterval(t *testing.T) {
	e, _, d := analyzed(t, 500)
	cols := []schema.ColumnRef{
		{Table: schema.Title, Column: "production_year"},
		{Table: schema.Title, Column: "kind_id"},
		{Table: schema.MovieKeyword, Column: "keyword_id"},
		{Table: schema.CastInfo, Column: "person_id"},
	}
	for _, col := range cols {
		st, _ := d.Stats(col)
		step := (st.Max - st.Min + 5) / 37
		if step < 1 {
			step = 1
		}
		for v := st.Min - 2; v <= st.Max+2; v += step {
			for _, op := range schema.Operators() {
				sel, err := e.Selectivity(query.Predicate{Col: col, Op: op, Val: v})
				if err != nil {
					t.Fatal(err)
				}
				if sel < 0 || sel > 1 {
					t.Fatalf("selectivity(%v %s %d) = %v out of [0,1]", col, op, v, sel)
				}
			}
		}
	}
}

func TestNumRows(t *testing.T) {
	e, _, d := analyzed(t, 150)
	if e.NumRows(schema.Title) != d.NumRows(schema.Title) {
		t.Error("NumRows mismatch")
	}
	if e.NumRows("ghost") != 0 {
		t.Error("unknown table should have 0 rows")
	}
}
