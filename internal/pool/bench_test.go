package pool

import (
	"fmt"
	"testing"

	"crn/internal/query"
	"crn/internal/sqlparse"
)

// benchQueries parses n distinct single-table queries (one FROM clause, so
// they all land in one candidate index — the record-heavy serving shape).
func benchQueries(b *testing.B, n int) []query.Query {
	b.Helper()
	qs := make([]query.Query, n)
	for i := range qs {
		qs[i] = sqlparse.MustParse(s,
			fmt.Sprintf("SELECT * FROM title WHERE title.production_year > %d", i))
	}
	return qs
}

// BenchmarkAddSaturated measures Add on a capacity-bounded pool that is
// already full, so every insert evicts the LRU victim first — the
// record-heavy steady state of a bounded serving pool. Before PR 5 the
// victim search scanned every entry (O(pool) per Add); the lazy min-heap
// makes it O(log pool) amortized.
func BenchmarkAddSaturated(b *testing.B) {
	for _, size := range []int{1000, 10000, 50000} {
		b.Run(fmt.Sprintf("entries=%d", size), func(b *testing.B) {
			qs := benchQueries(b, size+b.N)
			p := New(WithCap(size))
			for i := 0; i < size; i++ {
				p.Add(qs[i], int64(i+1))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Add(qs[size+i], 1)
			}
		})
	}
}

// BenchmarkAddSaturatedWithSelection interleaves candidate selection with
// saturated inserts: TopK stamps the entries it returns (going through the
// whole match set at k=0), which is exactly the traffic that invalidates
// heap records and forces the lazy fix-ups the amortized bound relies on.
func BenchmarkAddSaturatedWithSelection(b *testing.B) {
	const size = 10000
	qs := benchQueries(b, size+b.N)
	p := New(WithCap(size))
	for i := 0; i < size; i++ {
		p.Add(qs[i], int64(i+1))
	}
	probe := sqlparse.MustParse(s, "SELECT * FROM title WHERE title.production_year > 1960")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%8 == 0 {
			p.TopK(probe, 64)
		}
		p.Add(qs[size+i], 1)
	}
}
