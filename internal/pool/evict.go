package pool

import "sync/atomic"

// Eviction bookkeeping for capacity-bounded pools.
//
// Candidate selection stamps last-match ticks under the read lock (atomics,
// no heap access possible there), so the eviction min-heap is maintained
// lazily: every entry has exactly one heap record pushed at Add, and a
// record's tick may go stale when selection re-stamps its entry. The victim
// search pops the heap top and, when its tick is stale, refreshes the record
// in place with the entry's current tick and re-sinks it. Under the write
// lock the last-hit stamps are frozen (stores need the read lock), so each
// record refreshes at most once per eviction and the loop terminates; each
// refresh consumes one past touch, so eviction is O(log n) amortized in the
// touches since the last eviction — replacing the pre-PR-5 full-pool scan
// that made every Add on a saturated pool O(pool).

// evictRec is one heap record: the entry it tracks (by FROM key and stable
// ID, surviving position changes from swap-removal) and the last-match tick
// observed when the record was pushed or last refreshed.
type evictRec struct {
	from string
	id   int64
	tick int64
}

// older orders heap records by (tick, id): the oldest stamp wins, ties
// broken toward the earliest insertion — the same deterministic victim the
// pre-heap linear scan selected.
func (a evictRec) older(b evictRec) bool {
	if a.tick != b.tick {
		return a.tick < b.tick
	}
	return a.id < b.id
}

// heapPush inserts a record. Callers hold the write lock.
func (p *Pool) heapPush(r evictRec) {
	p.evictQ = append(p.evictQ, r)
	i := len(p.evictQ) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !p.evictQ[i].older(p.evictQ[parent]) {
			break
		}
		p.evictQ[i], p.evictQ[parent] = p.evictQ[parent], p.evictQ[i]
		i = parent
	}
}

// heapSink restores the heap property downward from position i.
func (p *Pool) heapSink(i int) {
	n := len(p.evictQ)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && p.evictQ[l].older(p.evictQ[min]) {
			min = l
		}
		if r < n && p.evictQ[r].older(p.evictQ[min]) {
			min = r
		}
		if min == i {
			return
		}
		p.evictQ[i], p.evictQ[min] = p.evictQ[min], p.evictQ[i]
		i = min
	}
}

// heapPop removes the top record. Callers hold the write lock.
func (p *Pool) heapPop() {
	n := len(p.evictQ) - 1
	p.evictQ[0] = p.evictQ[n]
	p.evictQ = p.evictQ[:n]
	if n > 0 {
		p.heapSink(0)
	}
}

// evictLRULocked removes the entry with the oldest last-match tick, lazily
// repairing heap records whose entries were re-stamped since they were
// pushed. Callers hold the write lock.
func (p *Pool) evictLRULocked() {
	for len(p.evictQ) > 0 {
		rec := p.evictQ[0]
		idx := p.byFrom[rec.from]
		if idx == nil {
			p.heapPop() // index vanished underneath a stale record
			continue
		}
		pos, ok := idx.byID[rec.id]
		if !ok {
			p.heapPop() // entry vanished underneath a stale record
			continue
		}
		cur := atomic.LoadInt64(&idx.lastHit[pos])
		if cur != rec.tick {
			// Selection re-stamped the entry after the record was pushed:
			// refresh in place and re-sink. The stamps are frozen under the
			// write lock, so this happens at most once per record per call.
			p.evictQ[0].tick = cur
			p.heapSink(0)
			continue
		}
		p.heapPop()
		p.removeEntryLocked(rec.from, idx, pos)
		return
	}
	// Defensive fallback: a bounded pool whose heap lost sync (cannot happen
	// through the exported API) falls back to the pre-heap linear scan.
	p.evictScanLocked()
}

// evictScanLocked is the pre-heap victim search: a full scan for the oldest
// stamp. Kept only as the defensive fallback of evictLRULocked.
func (p *Pool) evictScanLocked() {
	var victimIdx *fromIndex
	victimFrom := ""
	victimPos := -1
	victimTick := int64(0)
	for from, idx := range p.byFrom {
		for i := range idx.entries {
			t := atomic.LoadInt64(&idx.lastHit[i])
			if victimPos < 0 || t < victimTick ||
				(t == victimTick && idx.entries[i].ID < victimIdx.entries[victimPos].ID) {
				victimIdx, victimFrom, victimPos, victimTick = idx, from, i, t
			}
		}
	}
	if victimPos < 0 {
		return
	}
	p.removeEntryLocked(victimFrom, victimIdx, victimPos)
}

// removeEntryLocked deletes the entry at pos from its FROM index by
// swap-removal (order within a FROM index carries no meaning: candidate
// selection ranks by signature or returns the whole set), fixes the moved
// entry's position record, bumps the version and notifies listeners with
// the evicted key. Callers hold the write lock.
func (p *Pool) removeEntryLocked(from string, idx *fromIndex, pos int) {
	e := idx.entries[pos]
	sig := idx.sigs[pos]
	key := e.Q.Key()
	delete(p.byKey, key)
	delete(idx.byID, e.ID)
	if e.Card > 0 {
		idx.nPos--
	}
	// After the byID delete: indexRemove's compaction decides liveness by
	// byID membership.
	idx.indexRemove(sig, e.ID)
	last := len(idx.entries) - 1
	if pos != last {
		idx.entries[pos] = idx.entries[last]
		idx.sigs[pos] = idx.sigs[last]
		atomic.StoreInt64(&idx.lastHit[pos], atomic.LoadInt64(&idx.lastHit[last]))
		idx.byID[idx.entries[pos].ID] = pos
	}
	idx.entries = idx.entries[:last]
	idx.sigs = idx.sigs[:last]
	idx.lastHit = idx.lastHit[:last]
	if len(idx.entries) == 0 {
		delete(p.byFrom, from)
	}
	p.entries--
	p.version++
	p.evictions.Add(1)
	p.notifyLocked(key)
}
